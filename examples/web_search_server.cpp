// Scenario example: an interactive web-search service (the paper's
// motivating workload).  Queries arrive online at a configurable QPS, each
// parallelized with a parallel-for over index shards; the operator cares
// about the worst response time (max flow), not the average.
//
// The example sweeps load from relaxed to near-saturation and shows how
// the scheduling policy determines tail behaviour: FIFO and steal-16-first
// degrade gracefully, admit-first falls off at high load, and LIFO
// collapses (old queries starve) — the reason maximum flow time is the
// right objective for latency SLOs.
//
//   $ ./web_search_server [qps...]      (defaults: 600 900 1200 1400)
#include <cstdlib>
#include <iostream>
#include <vector>

#include "src/core/experiment.h"
#include "src/workload/distributions.h"

int main(int argc, char** argv) {
  using namespace pjsched;

  std::vector<double> qps_values;
  for (int i = 1; i < argc; ++i) qps_values.push_back(std::atof(argv[i]));
  if (qps_values.empty()) qps_values = {600.0, 900.0, 1200.0, 1400.0};

  const auto dist = workload::bing_distribution();

  core::ExperimentConfig cfg;
  cfg.processors = 16;
  cfg.num_jobs = 8000;
  cfg.units_per_ms = 100.0;  // 10 us work units: realistic steal cost
  cfg.qps_values = qps_values;
  cfg.seed = 2016;

  core::SchedulerSpec opt;
  opt.kind = core::SchedulerKind::kOptBound;
  core::SchedulerSpec fifo;
  fifo.kind = core::SchedulerKind::kFifo;
  core::SchedulerSpec steal16;
  steal16.kind = core::SchedulerKind::kStealKFirst;
  steal16.steal_k = 16;
  steal16.seed = cfg.seed;
  core::SchedulerSpec admit;
  admit.kind = core::SchedulerKind::kAdmitFirst;
  admit.seed = cfg.seed;
  core::SchedulerSpec lifo;
  lifo.kind = core::SchedulerKind::kLifo;
  cfg.schedulers = {opt, fifo, steal16, admit, lifo};

  std::cout << "Web-search service on a 16-way box, Bing-shaped queries "
               "(mean "
            << dist.mean_ms() << " ms)\n"
            << "Worst-case response time by scheduler and load:\n\n";
  const auto rows = core::run_experiment(dist, cfg);
  core::rows_to_table(rows).print(std::cout);

  std::cout << "\nReading the table:\n"
               "  * 'opt-lower-bound' is the unbeatable floor (paper Sec 6).\n"
               "  * FIFO tracks it almost exactly but needs a centralized,\n"
               "    preempting runtime.\n"
               "  * steal-16-first is the practical choice: a distributed\n"
               "    work-stealing runtime within ~1.3x of OPT.\n"
               "  * admit-first degrades as load grows (jobs run nearly\n"
               "    sequentially once all workers hold a job).\n"
               "  * LIFO starves old queries: the max-flow objective "
               "explodes.\n";
  return 0;
}
