// Scenario example: run the *same* workload through the discrete simulator
// and the real threaded runtime, side by side — the validation loop the
// paper's evaluation rests on (its OPT is simulated, its work stealing is
// real TBB).
//
// A small finance-shaped instance is (a) simulated under admit-first and
// steal-16-first, and (b) replayed on the threaded pool with spinning node
// bodies at both admission policies.  Columns are directly comparable in
// milliseconds.  On a many-core host the real numbers approach the
// simulated ones; on a small container the real runtime serializes and the
// simulator shows what the same schedule would do on a full machine.
//
//   $ ./sim_vs_real [jobs] [workers]     (defaults 40, hardware)
#include <cstdlib>
#include <iostream>
#include <thread>

#include "src/core/run.h"
#include "src/metrics/table.h"
#include "src/runtime/replayer.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"

int main(int argc, char** argv) {
  using namespace pjsched;
  const std::size_t jobs =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 40;
  const unsigned workers =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2]))
               : std::max(2u, std::thread::hardware_concurrency());

  const auto dist = workload::finance_distribution();
  workload::GeneratorConfig gen;
  gen.num_jobs = jobs;
  gen.qps = 150.0;
  gen.units_per_ms = 10.0;  // 0.1 ms units keep the replay brief
  gen.seed = 99;
  const auto inst = workload::generate_instance(dist, gen);

  std::cout << "Same instance, simulator vs real runtime (" << jobs
            << " finance jobs @ 150 QPS, " << workers << " workers)\n\n";

  metrics::Table table({"engine", "policy", "max_flow_ms", "mean_flow_ms"});
  for (unsigned k : {0u, 16u}) {
    core::SchedulerSpec spec;
    spec.kind = k == 0 ? core::SchedulerKind::kAdmitFirst
                       : core::SchedulerKind::kStealKFirst;
    spec.steal_k = k;
    spec.seed = 5;
    const auto sim = core::run_scheduler(inst, spec, {workers, 1.0});
    table.add_row({"simulated", sim.scheduler_name,
                   metrics::Table::cell(sim.max_flow / gen.units_per_ms),
                   metrics::Table::cell(sim.mean_flow / gen.units_per_ms)});
  }
  for (unsigned k : {0u, 16u}) {
    runtime::ThreadPool pool({.workers = workers, .steal_k = k, .seed = 5});
    runtime::ReplayOptions opts;
    // One 0.1 ms unit = 100 us of real spinning: wall time == sim time.
    opts.ns_per_unit = 100000.0;
    const auto rep = runtime::replay_instance(pool, inst, opts);
    table.add_row({"real-runtime",
                   k == 0 ? "admit-first" : "steal-16-first",
                   metrics::Table::cell(rep.flow_seconds.max * 1000.0),
                   metrics::Table::cell(rep.flow_seconds.mean * 1000.0)});
  }
  table.print(std::cout);
  std::cout << "\n(The replay spins " << 100.0
            << " us per simulated work unit, so simulated and wall-clock "
               "milliseconds share a scale.)\n";
  return 0;
}
