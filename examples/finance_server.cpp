// Scenario example: an option-pricing finance server (the paper's second
// real-world workload) running on the *real threaded runtime*
// (src/runtime) rather than the simulator — the closest analogue of the
// paper's extended-TBB implementation.
//
// Requests arrive online (Poisson, replayed in real time); each prices an
// option with a Monte-Carlo-style computation split into spawned chunks
// joined with wait_help.  Both admission policies run the same request
// sequence, and their measured wall-clock flow times are compared.
// (Absolute numbers depend on the host's core count — in a 1-core
// container everything serializes — but the runtime mechanics, admission
// policies, and flow accounting are the real thing.)
//
//   $ ./finance_server [requests] [paths_per_request]    (defaults 60, 20000)
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "src/metrics/table.h"
#include "src/runtime/thread_pool.h"
#include "src/sim/rng.h"
#include "src/workload/arrivals.h"

namespace {

using namespace pjsched;

// Prices a range of simulated payoff paths for one request: a stand-in
// for the real CPU-bound kernel, deterministic per (request, path).
double price_chunk(std::uint64_t request, std::size_t lo, std::size_t hi) {
  double acc = 0.0;
  for (std::size_t p = lo; p < hi; ++p) {
    sim::Rng rng(request * 1000003 + p);
    // Geometric-Brownian-ish terminal price over 8 steps.
    double s = 100.0;
    for (int step = 0; step < 8; ++step)
      s *= std::exp(0.01 * rng.normal() - 0.00005);
    acc += std::max(0.0, s - 100.0);  // call payoff at strike 100
  }
  return acc;
}

struct RunOutcome {
  double max_flow_ms = 0.0;
  double mean_flow_ms = 0.0;
  double p99_flow_ms = 0.0;
  std::uint64_t steals = 0;
  std::uint64_t admissions = 0;
  double total_priced = 0.0;  // consumed so the kernel cannot be elided
};

RunOutcome run_policy(unsigned steal_k, std::size_t requests,
                      std::size_t paths) {
  runtime::PoolOptions opts;
  opts.workers = std::max(2u, std::thread::hardware_concurrency());
  opts.steal_k = steal_k;
  opts.seed = 7;
  runtime::ThreadPool pool(opts);

  workload::PoissonArrivals arrivals(/*qps=*/200.0, sim::Rng(99));
  std::atomic<double> sink{0.0};
  const auto add_to_sink = [&sink](double v) {
    double cur = sink.load(std::memory_order_relaxed);
    while (!sink.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
  };

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < requests; ++r) {
    const double at_ms = arrivals.next_ms();
    std::this_thread::sleep_until(
        start + std::chrono::microseconds(static_cast<long>(at_ms * 1000)));
    pool.submit([r, paths, &add_to_sink](runtime::TaskContext& ctx) {
      // Fork the paths into ~16 chunks and join before replying.
      runtime::WaitGroup wg;
      const std::size_t grain = paths / 16 + 1;
      for (std::size_t lo = 0; lo < paths; lo += grain) {
        const std::size_t hi = std::min(paths, lo + grain);
        ctx.spawn([r, lo, hi, &add_to_sink](
                      runtime::TaskContext&) { add_to_sink(price_chunk(r, lo, hi)); },
                  wg);
      }
      ctx.wait_help(wg);
    });
  }
  pool.wait_all();

  const auto summary = pool.recorder().summary();
  RunOutcome out;
  out.max_flow_ms = summary.max * 1000.0;
  out.mean_flow_ms = summary.mean * 1000.0;
  out.p99_flow_ms = summary.p99 * 1000.0;
  out.steals = pool.stats().successful_steals;
  out.admissions = pool.stats().admissions;
  out.total_priced = sink.load();
  pool.shutdown();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pjsched;
  const std::size_t requests =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 60;
  const std::size_t paths =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 20000;

  std::cout << "Option-pricing server on the threaded work-stealing "
               "runtime: "
            << requests << " requests at 200 QPS, " << paths
            << " Monte-Carlo paths each, "
            << std::max(2u, std::thread::hardware_concurrency())
            << " workers\n\n";

  metrics::Table table({"policy", "max_flow_ms", "mean_flow_ms",
                        "p99_flow_ms", "steals", "admissions"});
  double checksum = 0.0;
  for (unsigned k : {0u, 16u}) {
    const auto out = run_policy(k, requests, paths);
    checksum += out.total_priced;
    table.add_row({k == 0 ? "admit-first" : "steal-16-first",
                   metrics::Table::cell(out.max_flow_ms),
                   metrics::Table::cell(out.mean_flow_ms),
                   metrics::Table::cell(out.p99_flow_ms),
                   metrics::Table::cell(out.steals),
                   metrics::Table::cell(out.admissions)});
  }
  table.print(std::cout);
  std::cout << "\n(mean priced value per path-batch: "
            << checksum / (2.0 * static_cast<double>(requests))
            << "; flow times are wall-clock — on a multicore host the "
               "ordering tracks the paper's Figure 2(b).)\n";
  return 0;
}
