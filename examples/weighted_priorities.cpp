// Scenario example: mixed-criticality serving with Biggest-Weight-First
// (paper Section 7).  An API gateway hosts three client tiers — interactive
// (weight 16), standard (weight 4), and batch (weight 1) — and the SLO
// metric is the maximum *weighted* response time: a second of latency on an
// interactive call costs 16x a second on a batch call.
//
// The example compares BWF against weight-oblivious FIFO and clairvoyant
// SJF under increasing load, showing that only BWF keeps max_i w_i F_i
// near the weighted lower bound.
//
//   $ ./weighted_priorities
#include <iostream>

#include "src/core/bounds.h"
#include "src/core/run.h"
#include "src/metrics/table.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"

int main() {
  using namespace pjsched;
  const unsigned m = 16;
  const auto dist = workload::finance_distribution();

  std::cout << "API gateway with three client tiers (weights 16/4/1), "
               "finance-shaped requests, m=16\n\n";

  for (double qps : {700.0, 1000.0}) {
    workload::GeneratorConfig gen;
    gen.num_jobs = 6000;
    gen.qps = qps;
    gen.seed = 314;
    gen.weight_classes = {16.0, 4.0, 1.0};  // sampled uniformly per request
    const auto inst = workload::generate_instance(dist, gen);
    const double wlb =
        core::weighted_combined_lower_bound(inst, m) / gen.units_per_ms;

    std::cout << "QPS " << qps << " (utilization "
              << workload::utilization(dist, qps, m)
              << "), weighted lower bound " << wlb << " weighted-ms:\n";
    metrics::Table table(
        {"scheduler", "wmax_flow_ms", "vs_lower_bound", "max_flow_ms"});
    for (const char* name : {"bwf", "fifo", "sjf"}) {
      const auto res =
          core::run_scheduler(inst, core::parse_scheduler(name), {m, 1.0});
      const double wf = res.max_weighted_flow / gen.units_per_ms;
      table.add_row({res.scheduler_name, metrics::Table::cell(wf),
                     metrics::Table::cell(wf / wlb),
                     metrics::Table::cell(res.max_flow / gen.units_per_ms)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "BWF trades some unweighted max flow for a substantially\n"
               "better weighted objective, and its advantage grows with\n"
               "load — Theorem 7.1 says this is essentially the best an\n"
               "online scheduler can do.\n";
  return 0;
}
