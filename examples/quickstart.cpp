// Quickstart: build a few DAG jobs by hand, run them through three
// schedulers on a simulated 4-processor machine, and print each job's flow
// time and the max-flow objective.
//
//   $ ./quickstart
//
// Walks through the core public API:
//   dag::Dag / dag builders  — describe dynamic multithreaded jobs
//   core::Instance           — jobs + arrival times (+ optional weights)
//   core::run_scheduler      — simulate a named scheduler
//   core::*_lower_bound      — bounds to judge the result against
#include <iostream>

#include "src/core/bounds.h"
#include "src/core/run.h"
#include "src/dag/builders.h"
#include "src/metrics/table.h"

int main() {
  using namespace pjsched;

  // --- 1. Describe jobs as DAGs. -------------------------------------
  // A hand-built diamond: fetch -> {parse, render} -> respond.
  dag::Dag diamond;
  const auto fetch = diamond.add_node(2);    // 2 work units
  const auto parse = diamond.add_node(4);
  const auto render = diamond.add_node(6);
  const auto respond = diamond.add_node(1);
  diamond.add_edge(fetch, parse);
  diamond.add_edge(fetch, render);
  diamond.add_edge(parse, respond);
  diamond.add_edge(render, respond);
  diamond.seal();  // validates (acyclic etc.) and freezes

  core::Instance instance;
  instance.jobs.push_back({/*arrival=*/0.0, /*weight=*/1.0, diamond});
  // Builders for common shapes: a parallel-for job and a sequential one.
  instance.jobs.push_back(
      {/*arrival=*/1.0, 1.0, dag::parallel_for_dag(/*grains=*/8, /*body=*/3)});
  instance.jobs.push_back({/*arrival=*/2.0, 1.0, dag::serial_chain(5, 2)});

  std::cout << "Jobs:\n";
  for (std::size_t i = 0; i < instance.size(); ++i) {
    const auto& g = instance.jobs[i].graph;
    std::cout << "  job " << i << ": arrival " << instance.jobs[i].arrival
              << ", work W=" << g.total_work() << ", span P="
              << g.critical_path() << ", parallelism " << g.parallelism()
              << "\n";
  }

  // --- 2. Run schedulers. --------------------------------------------
  const core::MachineConfig machine{/*processors=*/4, /*speed=*/1.0};
  metrics::Table table({"scheduler", "max_flow", "mean_flow", "job0_flow",
                        "job1_flow", "job2_flow"});
  for (const char* name : {"fifo", "steal-16-first", "admit-first"}) {
    auto spec = core::parse_scheduler(name);
    spec.seed = 42;  // work stealing is randomized; seed for reproducibility
    const auto res = core::run_scheduler(instance, spec, machine);
    table.add_row({res.scheduler_name, metrics::Table::cell(res.max_flow),
                   metrics::Table::cell(res.mean_flow),
                   metrics::Table::cell(res.flow[0]),
                   metrics::Table::cell(res.flow[1]),
                   metrics::Table::cell(res.flow[2])});
  }
  std::cout << "\nResults on m=4, speed 1:\n";
  table.print(std::cout);
  std::cout << "\n(steal-16-first pays 16 failed steal attempts — one time\n"
               " step each in the paper's machine model — before admitting\n"
               " each job; with jobs this tiny that dominates, which is\n"
               " exactly why Theorem 4.1 charges it k+1+eps speed.  On\n"
               " realistic workloads, where one steal is microseconds\n"
               " against milliseconds of work, it is the best policy —\n"
               " see examples/web_search_server.cpp.)\n";

  // --- 3. Judge against lower bounds. ---------------------------------
  std::cout << "\nLower bounds on OPT's max flow:\n"
            << "  span bound  (max_i P_i):        "
            << core::span_lower_bound(instance) << "\n"
            << "  work bound  (max_i W_i/m):      "
            << core::work_lower_bound(instance, machine.processors) << "\n"
            << "  OPT-sim bound (paper Sec. 6):   "
            << core::opt_sim_lower_bound(instance, machine.processors) << "\n";
  return 0;
}
