#!/usr/bin/env python3
"""pjsched_lint: repo-specific concurrency-correctness lint.

Enforces the runtime's memory-model and hot-path conventions (see
docs/static-analysis.md) over ``src/``, with the concurrency rules scoped
to ``src/runtime/``:

  implicit-seq-cst     every atomic load/store/RMW must name its
                       std::memory_order explicitly; compare_exchange must
                       name both the success and the failure order.  Call
                       sites that forward a caller-supplied order argument
                       carry ``// lint: allow(implicit-order): <reason>``.
  unjustified-relaxed  every ``memory_order_relaxed`` site must carry a
                       ``// order:`` justification comment on the same line
                       or within the JUSTIFY_WINDOW preceding lines.
  atomic-operator      ++/--/+=/-= on a std::atomic member: these are
                       seq_cst RMWs in disguise; spell out the operation
                       and its order.
  std-function         ``std::function`` is banned in src/runtime/ (tasks
                       use InlineFn); cold-path exceptions carry a
                       ``// lint: allow(std-function): <reason>`` marker.
  nondeterminism       rand()/std::random_device/wall-clock reads are
                       banned in src/ outside sim/rng.cc — all randomness
                       flows from the seeded sim::Rng, all runtime timing
                       from the monotonic steady_clock; exceptions carry
                       ``// lint: allow(nondeterminism): <reason>``.
  interference         shared per-worker structs (name matches Worker|Shard
                       and body holds atomics or a mutex) must be
                       ``alignas(kDestructiveInterference)`` so the
                       no-false-sharing property is structural; exceptions
                       carry ``// lint: allow(alignment): <reason>``.

File discovery is driven off the build's ``compile_commands.json``
(``--compile-commands``); headers are globbed from the source tree.  Any
path containing a ``build*``/ component is excluded, so stale CMake caches
in build-asan/ etc. are never linted.

Engines: with python-clang (libclang) importable, the implicit-seq-cst rule
runs on a real token stream; otherwise a comment-aware regex fallback is
used.  Both engines apply the same rule; fixtures in testdata/ pin both.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

ATOMIC_OPS = (
    "load",
    "store",
    "exchange",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange_weak",
    "compare_exchange_strong",
)
CAS_OPS = ("compare_exchange_weak", "compare_exchange_strong")

NONDETERMINISM_PATTERNS = (
    (re.compile(r"\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\bdrand48\b"), "drand48"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bsystem_clock\b"), "system_clock (wall clock)"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday (wall clock)"),
    (re.compile(r"\blocaltime\b|\bgmtime\b"), "calendar time"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "time() (wall clock)"),
)

NONDETERMINISM_EXEMPT = ("sim/rng.cc", "sim/rng.h")


# The loader, Finding type, and comment/marker helpers are shared with
# tools/analysis/ (one definition of "the tree", one staleness policy).
sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "analysis"))
from compile_db import (ALLOW_WINDOW, JUSTIFY_WINDOW, Finding,  # noqa: E402
                        StaleCompileCommandsError, compile_args_for,
                        discover_files, has_marker, line_of_offset,
                        strip_comments)


# --------------------------------------------------------------------------
# Rule: implicit-seq-cst (regex engine)


def check_implicit_order_regex(path: str, code: str) -> list[Finding]:
    findings = []
    pattern = re.compile(
        r"[.>]\s*(" + "|".join(ATOMIC_OPS) + r")\s*\(")
    for m in pattern.finditer(code):
        op = m.group(1)
        # Scan the balanced argument list starting at the opening paren.
        depth = 0
        j = m.end() - 1
        while j < len(code):
            if code[j] == "(":
                depth += 1
            elif code[j] == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        args = code[m.end():j]
        line = line_of_offset(code, m.start())
        orders = args.count("memory_order")
        needed = 2 if op in CAS_OPS else 1
        if orders == 0:
            findings.append(Finding(
                path, line, "implicit-seq-cst",
                f"atomic {op}() without an explicit std::memory_order "
                "(implicit seq_cst); every order must be spelled out"))
        elif op in CAS_OPS and orders < needed:
            findings.append(Finding(
                path, line, "implicit-seq-cst",
                f"{op}() names only the success order; the failure order "
                "must be explicit too"))
    return findings


def check_implicit_order_libclang(path: str, compile_args: list[str]):
    """Token-stream variant of the implicit-seq-cst rule.  Returns a list
    of Findings, or None if libclang is unavailable/unusable (caller falls
    back to the regex engine)."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        index = cindex.Index.create()
        tu = index.parse(path, args=compile_args,
                         options=cindex.TranslationUnit.PARSE_INCOMPLETE)
    except Exception as e:  # noqa: BLE001 - degrade, don't crash the gate
        sys.stderr.write(
            f"pjsched_lint: libclang parse failed for {path} ({e}); "
            "falling back to regex engine\n")
        return None
    findings = []
    toks = [t for t in tu.get_tokens(extent=tu.cursor.extent)]
    for i, tok in enumerate(toks):
        if tok.spelling not in ATOMIC_OPS:
            continue
        if i == 0 or toks[i - 1].spelling not in (".", "->"):
            continue
        if i + 1 >= len(toks) or toks[i + 1].spelling != "(":
            continue
        depth, orders, j = 0, 0, i + 1
        while j < len(toks):
            s = toks[j].spelling
            if s == "(":
                depth += 1
            elif s == ")":
                depth -= 1
                if depth == 0:
                    break
            elif s.startswith("memory_order"):
                orders += 1
            j += 1
        op = tok.spelling
        line = tok.location.line
        if orders == 0:
            findings.append(Finding(
                path, line, "implicit-seq-cst",
                f"atomic {op}() without an explicit std::memory_order "
                "(implicit seq_cst); every order must be spelled out"))
        elif op in CAS_OPS and orders < 2:
            findings.append(Finding(
                path, line, "implicit-seq-cst",
                f"{op}() names only the success order; the failure order "
                "must be explicit too"))
    return findings


# --------------------------------------------------------------------------
# Rule: unjustified-relaxed


def check_unjustified_relaxed(path: str, code: str,
                              raw_lines: list[str]) -> list[Finding]:
    findings = []
    for idx, line in enumerate(code.splitlines()):
        if "memory_order_relaxed" not in line:
            continue
        if not has_marker(raw_lines, idx, "order:", JUSTIFY_WINDOW):
            findings.append(Finding(
                path, idx + 1, "unjustified-relaxed",
                "memory_order_relaxed without an `// order:` justification "
                f"comment on the line or within {JUSTIFY_WINDOW} lines above"))
    return findings


# --------------------------------------------------------------------------
# Rule: atomic-operator (++/--/+=/-= on a std::atomic member)

ATOMIC_DECL = re.compile(r"std::atomic<[^<>]+>\s+(\w+)")


def check_atomic_operators(path: str, code: str) -> list[Finding]:
    names = set(ATOMIC_DECL.findall(code))
    if not names:
        return []
    findings = []
    alt = "|".join(re.escape(n) for n in sorted(names))
    ops = re.compile(
        r"(?:(?:\+\+|--)\s*(?:\w+\.)*(" + alt + r")\b"
        r"|\b(" + alt + r")\s*(?:\+\+|--|\+=|-=))")
    for m in ops.finditer(code):
        name = m.group(1) or m.group(2)
        findings.append(Finding(
            path, line_of_offset(code, m.start()), "atomic-operator",
            f"operator ++/--/+=/-= on std::atomic `{name}` is an implicit "
            "seq_cst RMW; use an explicit fetch_add/fetch_sub with a named "
            "order"))
    return findings


# --------------------------------------------------------------------------
# Rule: std-function


def check_std_function(path: str, code: str,
                       raw_lines: list[str]) -> list[Finding]:
    findings = []
    for idx, line in enumerate(code.splitlines()):
        if "std::function" not in line:
            continue
        if not has_marker(raw_lines, idx, "lint: allow(std-function)",
                          ALLOW_WINDOW):
            findings.append(Finding(
                path, idx + 1, "std-function",
                "std::function in src/runtime/ (hot-path callables must be "
                "InlineFn); if this is a justified cold-path use, add "
                "`// lint: allow(std-function): <reason>`"))
    return findings


# --------------------------------------------------------------------------
# Rule: nondeterminism


def check_nondeterminism(path: str, code: str,
                         raw_lines: list[str]) -> list[Finding]:
    rel = path.replace(os.sep, "/")
    if any(rel.endswith(e) for e in NONDETERMINISM_EXEMPT):
        return []
    findings = []
    for idx, line in enumerate(code.splitlines()):
        for pattern, what in NONDETERMINISM_PATTERNS:
            if not pattern.search(line):
                continue
            if has_marker(raw_lines, idx, "lint: allow(nondeterminism)",
                          ALLOW_WINDOW):
                continue
            findings.append(Finding(
                path, idx + 1, "nondeterminism",
                f"{what} outside sim/rng.cc breaks reproducibility; draw "
                "from the seeded sim::Rng / steady_clock, or add `// lint: "
                "allow(nondeterminism): <reason>`"))
    return findings


# --------------------------------------------------------------------------
# Rule: interference

STRUCT_DEF = re.compile(
    r"\b(?:struct|class)\s+(alignas\s*\([^)]*\)\s*)?(\w+)\s*(?::[^&|{;]*)?\{")


def check_interference(path: str, code: str,
                       raw_lines: list[str]) -> list[Finding]:
    findings = []
    for m in STRUCT_DEF.finditer(code):
        alignas_spec, name = m.group(1), m.group(2)
        if not re.search(r"Worker|Shard", name):
            continue
        # Body scan: from the opening brace to its match.
        depth, j = 0, m.end() - 1
        while j < len(code):
            if code[j] == "{":
                depth += 1
            elif code[j] == "}":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        body = code[m.end():j]
        if not re.search(r"std::atomic<|(?:^|\s)Mutex\s+\w+|std::mutex", body):
            continue
        line = line_of_offset(code, m.start())
        if alignas_spec and "kDestructiveInterference" in alignas_spec:
            continue
        if has_marker(raw_lines, line - 1, "lint: allow(alignment)",
                      ALLOW_WINDOW):
            continue
        findings.append(Finding(
            path, line, "interference",
            f"shared mutable per-worker struct `{name}` (atomic/mutex "
            "members) must be alignas(kDestructiveInterference) so false "
            "sharing is structurally impossible, or carry `// lint: "
            "allow(alignment): <reason>`"))
    return findings


# --------------------------------------------------------------------------
# Driver


def lint_file(path: str, root: str, compile_commands: str | None,
              engine: str) -> list[Finding]:
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    raw_lines = text.splitlines()
    code = strip_comments(text)
    rel = os.path.relpath(path, root).replace(os.sep, "/")
    findings: list[Finding] = []

    in_runtime = rel.startswith("src/runtime/")
    if in_runtime:
        r1 = None
        if engine in ("auto", "libclang"):
            r1 = check_implicit_order_libclang(
                path, compile_args_for(path, compile_commands, root))
            if r1 is None and engine == "libclang":
                sys.stderr.write(
                    "pjsched_lint: --engine=libclang requested but libclang "
                    "is unavailable\n")
                sys.exit(2)
        if r1 is None:
            r1 = check_implicit_order_regex(rel, code)
        else:
            # libclang reports absolute paths; normalize to repo-relative.
            for f_ in r1:
                f_.path = rel
        # Escape hatch (either engine): a call that *forwards* a caller's
        # memory_order argument is explicit even though no order is spelled
        # at the call site; it carries an allow marker with the rationale.
        findings += [f_ for f_ in r1
                     if not has_marker(raw_lines, f_.line - 1,
                                       "lint: allow(implicit-order)",
                                       ALLOW_WINDOW)]
        findings += check_unjustified_relaxed(rel, code, raw_lines)
        findings += check_atomic_operators(rel, code)
        findings += check_std_function(rel, code, raw_lines)
        findings += check_interference(rel, code, raw_lines)
    findings += check_nondeterminism(rel, code, raw_lines)
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels up from here)")
    parser.add_argument("--compile-commands", default=None,
                        help="path to the build dir's compile_commands.json")
    parser.add_argument("--engine", choices=("auto", "regex", "libclang"),
                        default="auto",
                        help="implicit-seq-cst engine (default: libclang "
                             "when importable, else regex)")
    parser.add_argument("files", nargs="*",
                        help="explicit files to lint (default: discover "
                             "from compile_commands + src/ glob)")
    args = parser.parse_args()

    root = os.path.abspath(args.root) if args.root else os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    try:
        files = ([os.path.abspath(f) for f in args.files] if args.files
                 else discover_files(root, args.compile_commands,
                                     subdirs=("src",), tool="pjsched_lint"))
    except StaleCompileCommandsError as exc:
        sys.stderr.write(f"pjsched_lint: {exc}\n")
        return 2

    all_findings: list[Finding] = []
    for path in files:
        all_findings += lint_file(path, root, args.compile_commands,
                                  args.engine)
    for finding in all_findings:
        print(finding)
    if all_findings:
        print(f"pjsched_lint: {len(all_findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"pjsched_lint: OK ({len(files)} files clean)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
