#!/usr/bin/env python3
"""Tests for pjsched_lint: each rule has pass/fail fixtures in testdata/,
staged into a temporary repo layout (runtime rules only apply under
src/runtime/), plus a gate test that runs the real linter over the real
tree — the same invocation the `lint` CMake target and CI use."""

import os
import shutil
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(HERE, "pjsched_lint.py")
TESTDATA = os.path.join(HERE, "testdata")
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))


def run_lint(args, cwd=None):
    proc = subprocess.run(
        [sys.executable, LINT] + args,
        capture_output=True, text=True, cwd=cwd, check=False)
    return proc.returncode, proc.stdout, proc.stderr


class FixtureCase(unittest.TestCase):
    """Stages fixtures into <tmp>/src/runtime/ (or <tmp>/src/) and runs
    the linter with --root <tmp> so path-scoped rules engage."""

    def setUp(self):
        self.tmp = tempfile.mkdtemp(prefix="pjsched_lint_test_")
        os.makedirs(os.path.join(self.tmp, "src", "runtime"))

    def tearDown(self):
        shutil.rmtree(self.tmp, ignore_errors=True)

    def stage(self, fixture, rel_dir):
        dst_dir = os.path.join(self.tmp, rel_dir)
        os.makedirs(dst_dir, exist_ok=True)
        dst = os.path.join(dst_dir, fixture)
        shutil.copy(os.path.join(TESTDATA, fixture), dst)
        return dst

    def lint(self, *staged, engine="regex"):
        return run_lint(["--root", self.tmp, "--engine", engine,
                         *staged])

    def assert_rule_fires(self, fixture, rule, rel_dir="src/runtime",
                          min_findings=1):
        staged = self.stage(fixture, rel_dir)
        code, out, _ = self.lint(staged)
        self.assertEqual(code, 1, f"{fixture}: expected findings, got none")
        hits = [l for l in out.splitlines() if f"[{rule}]" in l]
        self.assertGreaterEqual(
            len(hits), min_findings,
            f"{fixture}: expected >={min_findings} [{rule}] findings, "
            f"got:\n{out}")

    def assert_clean(self, fixture, rel_dir="src/runtime"):
        staged = self.stage(fixture, rel_dir)
        code, out, _ = self.lint(staged)
        self.assertEqual(code, 0, f"{fixture}: expected clean, got:\n{out}")

    # implicit-seq-cst -----------------------------------------------------
    def test_implicit_order_fail(self):
        # load, store, fetch_add without orders + single-order CAS = 4.
        self.assert_rule_fires("implicit_order_fail.h", "implicit-seq-cst",
                               min_findings=4)

    def test_implicit_order_pass(self):
        self.assert_clean("implicit_order_pass.h")

    def test_runtime_rules_scoped_to_runtime(self):
        # The same violating fixture outside src/runtime/ is not checked.
        self.assert_clean("implicit_order_fail.h", rel_dir="src/sched")

    # unjustified-relaxed --------------------------------------------------
    def test_relaxed_fail(self):
        self.assert_rule_fires("relaxed_fail.h", "unjustified-relaxed")

    def test_relaxed_pass(self):
        self.assert_clean("relaxed_pass.h")

    # atomic-operator ------------------------------------------------------
    def test_atomic_operator_fail(self):
        self.assert_rule_fires("atomic_operator_fail.h", "atomic-operator",
                               min_findings=2)

    # std-function ---------------------------------------------------------
    def test_std_function_fail(self):
        self.assert_rule_fires("std_function_fail.h", "std-function")

    def test_std_function_pass(self):
        self.assert_clean("std_function_pass.h")

    # nondeterminism -------------------------------------------------------
    def test_nondeterminism_fail(self):
        self.assert_rule_fires("nondeterminism_fail.cc", "nondeterminism",
                               rel_dir="src/util", min_findings=3)

    def test_nondeterminism_pass(self):
        self.assert_clean("nondeterminism_pass.cc", rel_dir="src/util")

    # interference ---------------------------------------------------------
    def test_interference_fail(self):
        self.assert_rule_fires("interference_fail.h", "interference")

    def test_interference_pass(self):
        self.assert_clean("interference_pass.h")

    def test_rng_cc_exempt(self):
        # The one sanctioned randomness source is exempt by path.
        staged = self.stage("nondeterminism_fail.cc", "src/sim")
        exempt = os.path.join(self.tmp, "src", "sim", "rng.cc")
        os.rename(staged, exempt)
        code, out, _ = self.lint(exempt)
        self.assertEqual(code, 0,
                         f"sim/rng.cc must be exempt, got:\n{out}")

    # discovery ------------------------------------------------------------
    def test_build_dirs_excluded(self):
        # A violating file under any build*/ component is never linted,
        # whether discovered or (here) inside src/.
        self.stage("implicit_order_fail.h", "src/runtime/build-scratch")
        self.stage("implicit_order_pass.h", "src/runtime")
        code, out, _ = run_lint(["--root", self.tmp, "--engine", "regex"])
        self.assertEqual(code, 0, f"build*/ not excluded:\n{out}")

    def test_discovery_finds_violations(self):
        self.stage("relaxed_fail.h", "src/runtime")
        code, out, _ = run_lint(["--root", self.tmp, "--engine", "regex"])
        self.assertEqual(code, 1)
        self.assertIn("[unjustified-relaxed]", out)


class GateCase(unittest.TestCase):
    """The real tree must be clean — the same check the lint target runs."""

    def test_repo_is_clean(self):
        compile_commands = os.path.join(REPO_ROOT, "build",
                                        "compile_commands.json")
        args = ["--root", REPO_ROOT]
        if os.path.isfile(compile_commands):
            args += ["--compile-commands", compile_commands]
        code, out, err = run_lint(args)
        self.assertEqual(
            code, 0,
            f"pjsched_lint found violations in the tree:\n{out}\n{err}")


class LibclangEngineCase(unittest.TestCase):
    """Token-stream engine parity, exercised only where libclang exists
    (CI's lint job); regex fixtures above pin behavior everywhere."""

    def setUp(self):
        try:
            import clang.cindex  # noqa: F401
        except ImportError:
            self.skipTest("python-clang not installed")

    def test_libclang_matches_regex_on_fixture(self):
        with tempfile.TemporaryDirectory() as tmp:
            dst_dir = os.path.join(tmp, "src", "runtime")
            os.makedirs(dst_dir)
            dst = os.path.join(dst_dir, "implicit_order_fail.h")
            shutil.copy(os.path.join(TESTDATA, "implicit_order_fail.h"), dst)
            code_lc, out_lc, _ = run_lint(
                ["--root", tmp, "--engine", "libclang", dst])
            code_re, out_re, _ = run_lint(
                ["--root", tmp, "--engine", "regex", dst])
            self.assertEqual(code_lc, code_re)
            self.assertEqual(
                sorted(l.split(": ", 1)[0] for l in out_lc.splitlines()),
                sorted(l.split(": ", 1)[0] for l in out_re.splitlines()))


if __name__ == "__main__":
    unittest.main()
