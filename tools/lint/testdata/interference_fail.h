// Fixture: shared per-worker struct without interference alignment fails.
#pragma once

#include <atomic>

struct WorkerTally {
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> stolen{0};
};
