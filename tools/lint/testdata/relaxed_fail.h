// Fixture: memory_order_relaxed with no `order:` justification must fail.
#pragma once

#include <atomic>

struct RelaxedFail {
  std::atomic<unsigned> ticks{0};

  void tick() { ticks.fetch_add(1, std::memory_order_relaxed); }
};
