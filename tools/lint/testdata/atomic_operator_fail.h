// Fixture: operator RMWs on atomics (implicit seq_cst) must fail.
#pragma once

#include <atomic>

struct AtomicOperatorFail {
  std::atomic<int> hits{0};
  std::atomic<int> misses{0};

  void record_hit() { ++hits; }
  void record_miss() { misses += 1; }
};
