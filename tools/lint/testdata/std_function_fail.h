// Fixture: bare std::function in runtime code must fail.
#pragma once

#include <functional>

struct StdFunctionFail {
  std::function<void()> callback;
};
