// Fixture: every atomic access here must trip the implicit-seq-cst rule.
#pragma once

#include <atomic>

struct ImplicitOrderFail {
  std::atomic<int> counter{0};
  std::atomic<bool> flag{false};

  int read() const { return counter.load(); }         // no order
  void write(int v) { counter.store(v); }             // no order
  int bump() { return counter.fetch_add(1); }         // no order
  bool flip() {
    bool expected = false;
    // Only the success order is named; failure order is implicit.
    return flag.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel);
  }
};
