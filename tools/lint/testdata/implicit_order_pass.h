// Fixture: fully explicit memory orders; must produce no findings.
#pragma once

#include <atomic>

struct ImplicitOrderPass {
  std::atomic<int> counter{0};
  std::atomic<bool> flag{false};

  int read() const {
    // order: relaxed — diagnostic tally, no data published through it.
    return counter.load(std::memory_order_relaxed);
  }
  void write(int v) { counter.store(v, std::memory_order_release); }
  int bump() { return counter.fetch_add(1, std::memory_order_acq_rel); }
  bool flip() {
    bool expected = false;
    return flag.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire);
  }
  // A load(); call in a comment must not fire, nor "x.load()" in a string.
  const char* doc() const { return "counter.load() is commented"; }

  // lint: allow(implicit-order): the order is explicit — forwarded from
  // the caller's `mo` argument.
  int read_with(std::memory_order mo) const { return counter.load(mo); }
};
