// Fixture: ambient randomness and wall-clock reads must fail.
#include <chrono>
#include <cstdlib>
#include <random>

unsigned ambient_seed() {
  std::random_device rd;  // nondeterministic seed source
  return rd();
}

int ambient_rand() { return rand() % 6; }

long wall_clock_ns() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}
