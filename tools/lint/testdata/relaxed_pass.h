// Fixture: every relaxed site is justified; must produce no findings.
#pragma once

#include <atomic>

struct RelaxedPass {
  std::atomic<unsigned> ticks{0};

  void tick() {
    // order: relaxed — monotonic diagnostic counter; readers only ever
    // print it, no synchronization piggybacks on the value.
    ticks.fetch_add(1, std::memory_order_relaxed);
  }
  unsigned read() const {
    return ticks.load(std::memory_order_relaxed);  // order: same as tick()
  }
};
