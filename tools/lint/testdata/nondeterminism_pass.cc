// Fixture: seeded randomness and monotonic time; must produce no findings.
#include <chrono>
#include <cstdint>

std::uint64_t seeded_draw(std::uint64_t seed) {
  // SplitMix64 step — pure function of the seed, reproducible by design.
  seed += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = seed;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return z ^ (z >> 31);
}

long monotonic_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long justified_wall_clock() {
  // lint: allow(nondeterminism): report header timestamp only; never feeds
  // back into scheduling decisions.
  return std::chrono::system_clock::now().time_since_epoch().count();
}
