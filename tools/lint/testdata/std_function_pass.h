// Fixture: std::function with an allow marker must produce no findings.
#pragma once

#include <functional>

struct StdFunctionPass {
  // lint: allow(std-function): invoked once per pool lifetime on the cold
  // shutdown path; type erasure is worth the flexibility here.
  std::function<void()> on_shutdown;
};
