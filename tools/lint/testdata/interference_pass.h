// Fixture: aligned / justified / atomic-free variants; no findings.
#pragma once

#include <atomic>
#include <cstdint>

inline constexpr std::size_t kDestructiveInterference = 64;

struct alignas(kDestructiveInterference) WorkerTally {
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> stolen{0};
};

// lint: allow(alignment): snapshot copy handed to one reader; never
// written concurrently, so padding it would only waste cache.
struct WorkerSnapshotish {
  std::atomic<std::uint64_t> executed{0};
};

// No atomics or mutexes: plain data, alignment not required.
struct WorkerName {
  int id = 0;
  const char* label = nullptr;
};
