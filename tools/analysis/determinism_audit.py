#!/usr/bin/env python3
"""Determinism / bit-identity audit.

The simulator's contract (docs/simulation-model.md, pinned by the bitwise
cross-check tests) is that the event and step engines produce
bit-identical flow times for the same seed on every build.  Three things
quietly break that contract; each gets a rule:

  fp-contract        a sim translation unit compiled without
                     -ffp-contract=off — FMA contraction changes the
                     rounding of a*b+c, so results differ across targets
  dup-fp-formula     a floating-point formula from the watchlist appears
                     outside its home (src/sim/sim_math.h).  Two copies of
                     `(coord - W) / s` can be optimized differently; both
                     engines must call the one inline helper
  unordered-iteration  range-for over an unordered container in sim/sched
                     code — iteration order varies across libstdc++
                     versions and hash seeds; results folded in that order
                     are not reproducible
  entropy-source     randomness or wall-clock entropy outside sim/rng.h —
                     all sim randomness flows through the seeded Rng so a
                     run is its seed

Sites with a ``// lint: allow(<rule>): <reason>`` marker within
ALLOW_WINDOW lines are skipped.
"""

from __future__ import annotations

import glob
import os
import re

from compile_db import ALLOW_WINDOW, Finding, command_for, has_marker

#: Watchlist of FP formulas that must exist at exactly one program point.
#: Each entry: (rule-suffix, regex, description, files in scope).  Scope is
#: deliberately tight per pattern — the engine clock math is watched in the
#: engine TUs, while the lower-bound formulas hoisted into sim_math.h
#: (relaxed job length, FIFO frontier advance) are additionally watched in
#: the analytic users whose bit-identity depends on them: the streamed
#: bounds pipeline and the OPT comparator.  Nothing matches every division
#: in the tree.
ENGINE_FILES = ("src/sim/event_engine.cc", "src/sim/event_engine.h",
                "src/sim/step_engine.cc", "src/sim/step_engine.h")
#: Files where the shared bound formulas must never be re-inlined: the
#: streamed bounds' opt_sim is only bitwise-equal to OptLowerBound's max
#: flow because both call the same two sim_math.h helpers.
BOUND_FILES = ENGINE_FILES + ("src/core/bounds.cc", "src/sched/opt_bound.cc")
HOME = "src/sim/sim_math.h"

FORMULA_PATTERNS = [
    ("time-to-step",
     re.compile(r"\bceil\s*\([^;)]*\*\s*s\w*\b[^;)]*\)"),
     "time -> step index rounding (`ceil(t * s - eps)`)",
     ENGINE_FILES),
    ("completion-dt",
     re.compile(r"-\s*W_?\w*\s*\)\s*/\s*s_?\w*\b"),
     "remaining-work completion delta (`(coord - W) / s`)",
     ENGINE_FILES),
    ("coord-tolerance",
     re.compile(r"\bcoord\w*(?:\[[^\]]*\])?\s*-\s*W_?\w*\s*[<>]=?"),
     "coordinate-due tolerance compare (`coord - W <= eps`)",
     ENGINE_FILES),
    ("step-to-time",
     re.compile(r"static_cast<\s*double\s*>\s*\(\s*\w+(?:\s*\+\s*1)?\s*\)"
                r"\s*/\s*s\w*\b"),
     "step index -> time (`double(step) / s`)",
     ENGINE_FILES),
    ("epsilon-literal",
     re.compile(r"\b1e-9\b"),
     "the sim tolerance literal (use pjsched::sim::kSimEps)",
     BOUND_FILES),
    ("relaxed-length",
     re.compile(r"\b(?:work|W)\w*\s*/\s*\(?\s*m\b"),
     "relaxed job length (`W / (m * s)`; use sim::relaxed_job_length)",
     BOUND_FILES),
    ("fifo-frontier",
     re.compile(r"\bmax\s*\(\s*frontier\w*\s*,"),
     "single-machine FIFO frontier advance "
     "(`max(frontier, arrival) + p`; use sim::fifo_frontier_advance)",
     BOUND_FILES),
]

UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s*"
    r"[&*]?\s*([A-Za-z_]\w*)\s*[;,={()]")

RANGE_FOR = re.compile(r"\bfor\s*\(\s*[^;)]*?:\s*([^)]+)\)")

ENTROPY = re.compile(
    r"\bstd::(?:random_device|mt19937(?:_64)?|default_random_engine|"
    r"minstd_rand0?|knuth_b)\b"
    r"|\bsystem_clock\s*::\s*now\b"
    r"|\bthis_thread::get_id\b"
    r"|\bhash\s*<\s*std::thread::id\s*>")

RNG_HOME = ("src/sim/rng.h", "src/sim/rng.cc")


def run(model, raw_texts: dict[str, str], compile_commands: str | None,
        root: str):
    findings: list[Finding] = []
    findings += _check_fp_contract(compile_commands, root)
    findings += _check_dup_formulas(model, raw_texts)
    findings += _check_unordered_iteration(model, raw_texts)
    findings += _check_entropy(model, raw_texts)
    return findings


def _allowed(raw_texts, rel, line, rule) -> bool:
    lines = raw_texts[rel].splitlines()
    return has_marker(lines, line - 1, f"lint: allow({rule})",
                      ALLOW_WINDOW)


def _check_fp_contract(compile_commands, root):
    findings = []
    sim_tus = sorted(glob.glob(os.path.join(root, "src", "sim", "*.cc")))
    for tu in sim_tus:
        rel = os.path.relpath(tu, root).replace(os.sep, "/")
        cmd = command_for(tu, compile_commands)
        if cmd is None:
            if compile_commands and os.path.isfile(compile_commands):
                findings.append(Finding(
                    rel, 1, "fp-contract",
                    "no compile_commands.json entry for this sim TU — it "
                    "is not built with the pjsched target's "
                    "-ffp-contract=off; add it to the target"))
            continue
        if "-ffp-contract=off" not in cmd:
            findings.append(Finding(
                rel, 1, "fp-contract",
                "compiled without -ffp-contract=off — FMA contraction "
                "changes FP rounding and breaks the engines' bit-identity "
                "contract; add the flag to the pjsched target"))
    return findings


def _check_dup_formulas(model, raw_texts):
    findings = []
    for rule_suffix, pat, what, scope in FORMULA_PATTERNS:
        for rel in scope:
            if rel not in model.file_code:
                continue
            code = model.file_code[rel]
            for m in pat.finditer(code):
                line = code.count("\n", 0, m.start()) + 1
                rule = "dup-fp-formula"
                if _allowed(raw_texts, rel, line, rule):
                    continue
                findings.append(Finding(
                    rel, line, rule,
                    f"{what} written inline — this formula's only home is "
                    f"{HOME}; call the shared inline helper so every "
                    "caller rounds identically "
                    f"(matched `{m.group(0).strip()}`)"))
    return findings


def _check_unordered_iteration(model, raw_texts):
    findings = []
    for rel in sorted(model.file_code):
        if not (rel.startswith("src/sim/") or rel.startswith("src/sched/")):
            continue
        code = model.file_code[rel]
        unordered_names = {m.group(1)
                           for m in UNORDERED_DECL.finditer(code)}
        if not unordered_names:
            continue
        for m in RANGE_FOR.finditer(code):
            expr = m.group(1).strip()
            base = re.split(r"\.|->|\[", expr)[0].strip()
            if base in unordered_names or expr in unordered_names:
                line = code.count("\n", 0, m.start()) + 1
                if _allowed(raw_texts, rel, line, "unordered-iteration"):
                    continue
                findings.append(Finding(
                    rel, line, "unordered-iteration",
                    f"range-for over unordered container `{base}` — "
                    "iteration order is hash-seed and libstdc++ "
                    "dependent; sort the keys first or use an ordered "
                    "container if the order feeds results"))
    return findings


def _check_entropy(model, raw_texts):
    findings = []
    for rel in sorted(model.file_code):
        if not (rel.startswith("src/sim/") or rel.startswith("src/sched/")):
            continue
        if rel in RNG_HOME:
            continue
        code = model.file_code[rel]
        for m in ENTROPY.finditer(code):
            line = code.count("\n", 0, m.start()) + 1
            if _allowed(raw_texts, rel, line, "entropy-source"):
                continue
            findings.append(Finding(
                rel, line, "entropy-source",
                f"`{m.group(0)}` introduces entropy outside "
                "src/sim/rng.h — sim results must be a pure function of "
                "the seed; thread all randomness through sim::Rng"))
    return findings
