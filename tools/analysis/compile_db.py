#!/usr/bin/env python3
"""Shared compile_commands.json loader for the repo's static-analysis tools.

One implementation of file discovery, build-dir exclusion, compile-arg
extraction, and stale-export detection, imported by tools/lint/
pjsched_lint.py and every pass under tools/analysis/ — previously each tool
re-implemented discovery and they could disagree on what "the tree" is.

Conventions shared by every consumer:

  * discovery is driven off the build's ``compile_commands.json`` (exported
    by every configure: CMAKE_EXPORT_COMPILE_COMMANDS ON), with headers
    globbed from the source tree since they never appear in the export;
  * any path with a ``build*``/ component is excluded, so stale CMake
    caches in build-asan/ etc. are never analyzed;
  * a stale export — one that names files which no longer exist, or that
    predates the newest CMakeLists.txt (the target set may have changed) —
    raises :class:`StaleCompileCommandsError` with a re-configure hint
    instead of silently analyzing a phantom tree.

Also home to the comment/string stripper and marker-window helpers every
rule engine uses, so "does this line carry a ``// lint: allow(...)``"
means the same thing in every tool.
"""

from __future__ import annotations

import glob
import json
import os
import sys

JUSTIFY_WINDOW = 5  # lines above a relaxed site searched for "order:"
ALLOW_WINDOW = 6  # lines above a site searched for a lint: allow marker


class StaleCompileCommandsError(RuntimeError):
    """compile_commands.json no longer matches the tree; re-run cmake."""


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments(text: str) -> str:
    """Returns `text` with comments and string/char literal *contents*
    blanked (newlines preserved), so rules never fire on prose."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            else:
                out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def has_marker(lines: list[str], line_idx: int, marker: str,
               window: int) -> bool:
    lo = max(0, line_idx - window)
    return any(marker in lines[j] for j in range(lo, line_idx + 1))


def line_of_offset(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def is_in_build_dir(path: str) -> bool:
    return any(part.startswith("build") for part in
               os.path.normpath(path).split(os.sep))


def _load_entries(compile_commands: str) -> list[dict]:
    with open(compile_commands, encoding="utf-8") as f:
        return json.load(f)


def check_staleness(root: str, compile_commands: str) -> None:
    """Raises StaleCompileCommandsError when the export no longer matches
    the tree: a referenced source file is gone (deleted or renamed since
    the last configure), or a CMakeLists.txt is newer than the export (the
    target set may have changed).  Source edits alone are NOT staleness —
    editing a .cc never requires a re-configure."""
    export_mtime = os.path.getmtime(compile_commands)
    cmake_lists = [os.path.join(root, "CMakeLists.txt")]
    cmake_lists += glob.glob(os.path.join(root, "src", "**", "CMakeLists.txt"),
                             recursive=True)
    for cml in cmake_lists:
        if os.path.isfile(cml) and os.path.getmtime(cml) > export_mtime:
            raise StaleCompileCommandsError(
                f"{compile_commands} is older than {os.path.relpath(cml, root)}"
                " — the target set may have changed; re-run"
                " `cmake -B build -S .` to refresh the export")
    for entry in _load_entries(compile_commands):
        path = entry["file"]
        if not os.path.isabs(path):
            path = os.path.join(entry.get("directory", root), path)
        if not os.path.isfile(path):
            raise StaleCompileCommandsError(
                f"{compile_commands} names {path}, which no longer exists —"
                " re-run `cmake -B build -S .` to refresh the export")


def discover_files(root: str, compile_commands: str | None,
                   subdirs: tuple[str, ...] = ("src",),
                   tool: str = "analysis") -> list[str]:
    """Translation units under `root`/<subdir> from compile_commands (or a
    glob fallback), plus headers globbed from the tree; build*/ excluded.

    Raises StaleCompileCommandsError when the export exists but no longer
    matches the tree (see check_staleness)."""
    files: set[str] = set()
    roots = [os.path.join(root, d) for d in subdirs]
    if compile_commands and os.path.isfile(compile_commands):
        check_staleness(root, compile_commands)
        for entry in _load_entries(compile_commands):
            path = entry["file"]
            if not os.path.isabs(path):
                path = os.path.join(entry.get("directory", root), path)
            path = os.path.normpath(path)
            if any(path.startswith(r + os.sep) for r in roots) and \
                    not is_in_build_dir(os.path.relpath(path, root)):
                files.add(path)
    else:
        if compile_commands:
            sys.stderr.write(
                f"{tool}: {compile_commands} not found; globbing "
                f"{'/'.join(subdirs)}/ instead (configure with "
                "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)\n")
        for r in roots:
            files.update(glob.glob(os.path.join(r, "**", "*.cc"),
                                   recursive=True))
    # Headers never appear in compile_commands; glob them from the tree.
    for r in roots:
        files.update(glob.glob(os.path.join(r, "**", "*.h"), recursive=True))
    return sorted(p for p in files
                  if not is_in_build_dir(os.path.relpath(p, root)))


def compile_args_for(path: str, compile_commands: str | None,
                     root: str) -> list[str]:
    """Best-effort include/std flags for libclang-backed engines."""
    args = ["-std=c++20", f"-I{root}"]
    if compile_commands and os.path.isfile(compile_commands):
        try:
            for entry in _load_entries(compile_commands):
                if os.path.normpath(entry["file"]) == path:
                    toks = entry.get("command", "").split()
                    args = [t for t in toks[1:]
                            if t.startswith(("-I", "-D", "-std="))]
                    args.append(f"-I{root}")
                    break
        except (OSError, json.JSONDecodeError, KeyError):
            pass
    return args


def command_for(path: str, compile_commands: str | None) -> str | None:
    """The full compiler command line for `path`, or None when the export
    is absent or has no entry (headers, generated files)."""
    if not compile_commands or not os.path.isfile(compile_commands):
        return None
    try:
        for entry in _load_entries(compile_commands):
            entry_path = entry["file"]
            if not os.path.isabs(entry_path):
                entry_path = os.path.join(entry.get("directory", ""),
                                          entry_path)
            if os.path.normpath(entry_path) == os.path.normpath(path):
                cmd = entry.get("command")
                if cmd is None and "arguments" in entry:
                    cmd = " ".join(entry["arguments"])
                return cmd
    except (OSError, json.JSONDecodeError, KeyError):
        return None
    return None
