// Fixture: consistent nesting (always a_ before b_), plus the
// release-window idiom — blocking while the scoped lock is temporarily
// unlock()ed is fine.  Expect clean.
#pragma once

#include "src/runtime/mutex.h"

class Ordered {
 public:
  void nested() {
    MutexLock l1(a_);
    MutexLock l2(b_);
  }
  void also_nested() {
    MutexLock l1(a_);
    take_b();
  }
  void take_b() { MutexLock l(b_); }

 private:
  Mutex a_;
  Mutex b_;
};
