// Fixture: mutex c_ exists in the tree but is missing from
// testdata/hierarchy.md.  Expect [undocumented-lock].
#pragma once

#include "src/runtime/mutex.h"

class Ranked {
 public:
  void in_order() {
    MutexLock l1(a_);
    MutexLock l2(b_);
  }

 private:
  Mutex a_;
  Mutex b_;
  Mutex w_;
  Mutex c_;
};
