// Fixture: staged under src/sim/ (not rng.cc) — a free-running mt19937
// seeded outside the Rng; the run is no longer a function of its seed.
// Expect [entropy-source].
#include <random>

namespace pjsched::sim {

double jitter() {
  std::mt19937 gen(42);
  return static_cast<double>(gen()) / 4294967296.0;
}

}  // namespace pjsched::sim
