// Fixture: a bare std::mutex member — thread-safety analysis is blind
// to it; the runtime::Mutex wrapper carries the capability attributes.
// Expect [raw-mutex].
#pragma once

#include <mutex>

class Unwrapped {
 private:
  std::mutex m_;
  std::condition_variable cv_;
};
