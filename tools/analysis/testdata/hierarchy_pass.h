// Fixture: acquisitions agree with testdata/hierarchy.md (a_ outer, b_
// inner, w_ a wait-only leaf never held across another acquisition).
// Expect clean under --hierarchy hierarchy.md.
#pragma once

#include "src/runtime/mutex.h"

class Ranked {
 public:
  void in_order() {
    MutexLock l1(a_);
    MutexLock l2(b_);
  }
  void wait_idle() {
    MutexLock l(w_);
    while (!ready_) cv_.wait(l);
  }

 private:
  Mutex a_;
  Mutex b_;
  Mutex w_;
  CondVar cv_;
  bool ready_ = false;
};
