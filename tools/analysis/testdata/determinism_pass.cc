// Fixture: staged as src/sim/event_engine.cc — all flow/clock math goes
// through the sim_math.h helpers; iteration is over ordered containers.
// Expect clean.
#include <map>
#include <string>

#include "src/sim/sim_math.h"

namespace pjsched::sim {

double advance(double coord, double W, double s) {
  return completion_dt(coord, W, s);
}

bool ready(double coord, double W) { return coord_due(coord, W); }

double fold(const std::map<std::string, double>& weights) {
  double sum = 0.0;
  for (const auto& kv : weights) {
    sum += kv.second;
  }
  return sum;
}

}  // namespace pjsched::sim
