// Fixture: the blocking hides one call deep — push() CV-waits under its
// own lock (fine in isolation), so outer()'s call to push() while
// holding big_mu_ blocks with big_mu_ held.  The may-block fixpoint must
// propagate.  Expect [blocking-under-lock] in outer().
#include "src/runtime/mutex.h"

class Queueish {
 public:
  void outer() {
    MutexLock l(big_mu_);
    push();
  }
  void push() {
    MutexLock l(mu_);
    while (full_) {
      cv_.wait(l);
    }
  }

 private:
  Mutex big_mu_;
  Mutex mu_;
  CondVar cv_;
  bool full_ = false;
};
