// Fixture: a justified blocking-under-lock site with the allow marker —
// the reason is the review artifact.  Expect clean.
#include "src/runtime/mutex.h"

class Sanctioned {
 public:
  void drain() {
    MutexLock l(mu_);
    // lint: allow(blocking-under-lock): shutdown-only path; no other
    // thread can contend for mu_ once draining starts.
    poll(nullptr, 0, 10);
  }

 private:
  Mutex mu_;
};
