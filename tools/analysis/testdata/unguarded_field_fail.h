// Fixture: hits_ is written under mu_ in two different methods but its
// declaration carries no GUARDED_BY — the capability analysis cannot
// check the third, unlocked access anyone will eventually add.  Expect
// [unguarded-field] (and [mutex-unannotated], same root cause).
#pragma once

#include "src/runtime/mutex.h"

class Sloppy {
 public:
  void inc() {
    MutexLock l(mu_);
    hits_ = hits_ + 1;
  }
  void reset() {
    MutexLock l(mu_);
    hits_ = 0;
  }

 private:
  Mutex mu_;
  int hits_ = 0;
};
