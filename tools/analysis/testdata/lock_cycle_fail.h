// Fixture: two methods take the same pair of locks in opposite orders —
// the classic AB/BA deadlock.  Expect [lock-cycle].
#pragma once

#include "src/runtime/mutex.h"

class Twisted {
 public:
  void ab() {
    MutexLock l1(a_);
    MutexLock l2(b_);
  }
  void ba() {
    MutexLock l1(b_);
    MutexLock l2(a_);
  }

 private:
  Mutex a_;
  Mutex b_;
};
