// Fixture: staged as src/sim/event_engine.cc — the flow/clock formulas
// written inline instead of through sim_math.h's helpers.  Expect
// [dup-fp-formula] for the completion delta, the tolerance compare, the
// epsilon literal, and the ceil rounding.
#include <cmath>
#include <cstdint>

namespace pjsched::sim {

double next_dt(double coord, double W_, double s_) {
  return (coord - W_) / s_;
}

bool due(double coord, double W_) { return coord - W_ <= 1e-9; }

std::uint64_t to_step(double t, double s) {
  return static_cast<std::uint64_t>(std::ceil(t * s - 1e-9));
}

}  // namespace pjsched::sim
