// Fixture: a MutexLock over an expression the model cannot resolve to a
// registered mutex (unknown receiver type, field name not unique in the
// TU).  The pass refuses to guess.  Expect [unresolved-lock].
#pragma once

#include "src/runtime/mutex.h"

class Opaque {
 public:
  template <typename T>
  void poke(T& t) {
    MutexLock l(t.mystery_mu);
  }
};
