// Fixture: staged under src/sched/ — folding results by iterating an
// unordered_map; the order is hash-seed and libstdc++ dependent.  Expect
// [unordered-iteration].
#include <string>
#include <unordered_map>

namespace pjsched::sched {

double total_weight(const std::unordered_map<std::string, double>& weights) {
  double sum = 0.0;
  for (const auto& kv : weights) {
    sum += kv.second;
  }
  return sum;
}

}  // namespace pjsched::sched
