// Fixture: w_ is documented `leaf` (wait-only) in testdata/hierarchy.md
// but is held while acquiring a_.  Expect [wait-lock-edge].
#pragma once

#include "src/runtime/mutex.h"

class Ranked {
 public:
  void bad() {
    MutexLock l(w_);
    MutexLock l2(a_);
  }

 private:
  Mutex a_;
  Mutex b_;
  Mutex w_;
};
