// Fixture: every blocking site is lock-free — scoped lock closed before
// the syscall, single-lock CV pairing, and the watchdog-style
// unlock()/lock() release window.  Expect clean.
#include "src/runtime/mutex.h"

class Polite {
 public:
  void pump() {
    {
      MutexLock l(mu_);
      ticks_ = ticks_ + 1;
    }
    poll(nullptr, 0, 10);
  }
  void wait_ready() {
    MutexLock l(mu_);
    while (!ready_) {
      cv_.wait(l);
    }
  }
  void window() {
    MutexLock l(mu_);
    ticks_ = ticks_ + 1;
    l.unlock();
    poll(nullptr, 0, 10);
    l.lock();
  }

 private:
  Mutex mu_;
  CondVar cv_;
  bool ready_ = false;
  int ticks_ = 0;
};
