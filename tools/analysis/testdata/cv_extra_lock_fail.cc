// Fixture: a CV wait that releases mu_ while other_mu_ stays held for
// the whole sleep.  Expect [cv-wait-extra-lock].
#include "src/runtime/mutex.h"

class TwoLocks {
 public:
  void bad_wait() {
    MutexLock g(other_mu_);
    MutexLock l(mu_);
    while (!ready_) {
      cv_.wait(l);
    }
  }

 private:
  Mutex other_mu_;
  Mutex mu_;
  CondVar cv_;
  bool ready_ = false;
};
