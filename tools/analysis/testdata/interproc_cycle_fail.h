// Fixture: the AB/BA inversion hides behind a call — left() holds a_
// while calling take_b(), right() holds b_ while calling take_a().  The
// may-acquire fixpoint must surface both edges.  Expect [lock-cycle].
#pragma once

#include "src/runtime/mutex.h"

class Inter {
 public:
  void left() {
    MutexLock l(a_);
    take_b();
  }
  void right() {
    MutexLock l(b_);
    take_a();
  }
  void take_a() { MutexLock l(a_); }
  void take_b() { MutexLock l(b_); }

 private:
  Mutex a_;
  Mutex b_;
};
