// Fixture: a poll() syscall while holding the shard lock — every other
// thread contending for mu_ stalls for the poll timeout.  Expect
// [blocking-under-lock].
#include "src/runtime/mutex.h"

class Shardy {
 public:
  void pump() {
    MutexLock l(mu_);
    poll(nullptr, 0, 10);
  }

 private:
  Mutex mu_;
};
