// Fixture: a wrapped Mutex member that nothing in the class refers to —
// no GUARDED_BY/REQUIRES/ACQUIRE names it, no wait-lock marker.  Either
// it protects data invisibly or it is dead.  Expect [mutex-unannotated].
#pragma once

#include "src/runtime/mutex.h"

class Mystery {
 public:
  void touch() {
    MutexLock l(mu_);
    count_ = 1;
  }

 private:
  Mutex mu_;
  int count_ = 0;
};
