// Fixture: acquires b_ then a_, against the documented a_-before-b_
// order in testdata/hierarchy.md.  Expect [rank-violation].
#pragma once

#include "src/runtime/mutex.h"

class Ranked {
 public:
  void inverted() {
    MutexLock l1(b_);
    MutexLock l2(a_);
  }

 private:
  Mutex a_;
  Mutex b_;
  Mutex w_;
};
