// Fixture: staged as src/core/bounds.cc — the lower-bound formulas written
// inline instead of through sim_math.h's shared helpers.  Expect
// [dup-fp-formula] for the relaxed job length (`W / (m * s)`) and the FIFO
// frontier advance (`max(frontier, arrival) + p`): re-inlining either
// breaks the bitwise equality between the streamed opt_sim bound and
// OptLowerBound's max flow.
#include <algorithm>

namespace pjsched::core {

double relaxed_length_inline(double work, double m, double s) {
  return work / (m * s);
}

double frontier_advance_inline(double frontier, double arrival, double p) {
  return std::max(frontier, arrival) + p;
}

}  // namespace pjsched::core
