// Fixture: a fully annotated class (GUARDED_BY names the mutex) plus a
// markered wait-only mutex.  Expect clean.
#pragma once

#include "src/runtime/annotations.h"
#include "src/runtime/mutex.h"

class Disciplined {
 public:
  void inc() {
    MutexLock l(mu_);
    hits_ = hits_ + 1;
  }
  void reset() {
    MutexLock l(mu_);
    hits_ = 0;
  }

 private:
  Mutex mu_;
  int hits_ PJSCHED_GUARDED_BY(mu_) = 0;

  // lint: allow(wait-lock): pairs with idle_cv_ only; guards no data.
  Mutex idle_mu_;
  CondVar idle_cv_;
};
