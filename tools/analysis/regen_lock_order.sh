#!/bin/sh
# Regenerates the committed lock-order graph (docs/lock-order.dot) from
# the code.  Run after any change to lock acquisition structure, commit
# the result; CI's analysis gate diffs the committed file against a fresh
# extraction and fails on drift.
set -eu
root=$(CDPATH= cd -- "$(dirname -- "$0")/../.." && pwd)
exec python3 "$root/tools/analysis/pjsched_analysis.py" \
  --root "$root" --pass lock-order \
  --dot-out "$root/docs/lock-order.dot" "$@"
