#!/usr/bin/env python3
"""Lock-order pass: extract the static acquired-while-held graph, detect
cycles, and validate it against the documented lock hierarchy.

An edge A -> B means some thread may acquire B while holding A: either a
nested MutexLock in the same function body, or a call made while holding A
to a function whose may-acquire summary contains B.  The graph is emitted
as deterministic DOT (docs/lock-order.dot is the committed golden copy)
and every edge must agree with the ``lock-hierarchy`` block in
docs/static-analysis.md — the prose hierarchy is the source of truth, the
extraction proves the code still matches it.

Rules:
  lock-cycle           the graph has a cycle (potential deadlock)
  undocumented-lock    a mutex in the tree is missing from the hierarchy
  stale-hierarchy      the hierarchy names a mutex that no longer exists
  rank-violation       an edge runs inner -> outer against documented ranks
  wait-lock-edge       a leaf (wait-only) lock is held across another
                       acquisition
  unresolved-lock      a MutexLock argument the model cannot name
"""

from __future__ import annotations

import os
import re

from compile_db import Finding

HIERARCHY_FENCE = re.compile(
    r"```lock-hierarchy\n(.*?)```", re.DOTALL)


def parse_hierarchy(doc_path: str):
    """Parses the ```lock-hierarchy fenced block: one lock per line,
    outermost first, ``<name>`` or ``<name>  leaf`` (wait-only locks that
    must never be held across another acquisition).  Returns
    (ranks: name->int, leaves: set) or raises ValueError."""
    with open(doc_path, encoding="utf-8") as f:
        text = f.read()
    m = HIERARCHY_FENCE.search(text)
    if not m:
        raise ValueError(
            f"{doc_path} has no ```lock-hierarchy fenced block — the "
            "lock-order pass needs the documented hierarchy to validate "
            "against")
    ranks: dict[str, int] = {}
    leaves: set[str] = set()
    rank = 0
    for raw in m.group(1).splitlines():
        line = raw.split("#")[0].strip()
        if not line:
            continue
        parts = line.split()
        name = parts[0]
        if len(parts) > 1 and parts[1] == "leaf":
            leaves.add(name)
        else:
            ranks[name] = rank
            rank += 1
    return ranks, leaves


def extract_edges(model):
    """Returns (edges, findings): edges is {(holder, acquired): (file,
    line, context)} using the first site seen in sorted-function order."""
    edges: dict[tuple[str, str], tuple[str, int, str]] = {}
    findings: list[Finding] = []
    for qual in sorted(model.functions):
        fn = model.functions[qual]
        for ev, held in model.walk_held(fn):
            if ev.kind == "unresolved_lock":
                findings.append(Finding(
                    fn.file, ev.line, "unresolved-lock",
                    f"cannot resolve mutex in `{ev.raw}` inside "
                    f"{qual}() — name the lock through a declared "
                    "member/local so the order graph can track it"))
                continue
            if not held:
                continue
            acquired: set[str] = set()
            if ev.kind == "acquire":
                acquired.add(ev.lock)
            elif ev.kind == "cv_wait" and ev.cv_mutex:
                # wait() releases and re-acquires its own mutex; only
                # *other* held locks make that an ordering edge, handled
                # by the blocking pass.  No order edge for the self pair.
                pass
            elif ev.kind == "call":
                target = model.functions.get(ev.callee)
                if target:
                    acquired |= target.may_acquire
            for lock in sorted(acquired):
                for holder in held:
                    if holder == lock:
                        continue  # re-entrant self edge: blocking pass turf
                    key = (holder, lock)
                    if key not in edges:
                        edges[key] = (fn.file, ev.line,
                                      f"{qual}(): {ev.raw}")
    return edges, findings


def find_cycles(edges) -> list[list[str]]:
    graph: dict[str, set[str]] = {}
    for a, b in edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())
    color: dict[str, int] = {}
    stack: list[str] = []
    cycles: list[list[str]] = []

    def dfs(node: str) -> None:
        color[node] = 1
        stack.append(node)
        for nxt in sorted(graph[node]):
            if color.get(nxt, 0) == 0:
                dfs(nxt)
            elif color.get(nxt) == 1:
                cycles.append(stack[stack.index(nxt):] + [nxt])
        stack.pop()
        color[node] = 2

    for node in sorted(graph):
        if color.get(node, 0) == 0:
            dfs(node)
    return cycles


def to_dot(edges, all_locks, leaves=frozenset()) -> str:
    """Deterministic DOT: sorted nodes and edges, first acquisition site as
    the edge label.  Regenerate with tools/analysis/regen_lock_order.sh."""
    lines = [
        "// Generated by tools/analysis/pjsched_analysis.py --pass "
        "lock-order --dot-out.",
        "// Do not edit: regenerate with tools/analysis/"
        "regen_lock_order.sh.",
        "digraph lock_order {",
        "  rankdir=TB;",
        "  node [shape=box, fontname=\"monospace\"];",
    ]
    for lock in sorted(all_locks):
        file, line = all_locks[lock]
        shape = ", style=dashed" if lock in leaves else ""
        lines.append(
            f"  \"{lock}\" [label=\"{lock}\\n{file}:{line}\"{shape}];")
    for (a, b) in sorted(edges):
        file, line, _ctx = edges[(a, b)]
        lines.append(f"  \"{a}\" -> \"{b}\" [label=\"{file}:{line}\"];")
    lines.append("}")
    return "\n".join(lines) + "\n"


def run(model, hierarchy_path: str | None, root: str):
    """Returns (findings, edges, all_locks, leaves)."""
    findings: list[Finding] = []
    edges, findings_x = extract_edges(model)
    findings += findings_x
    all_locks = {}
    for lock, (path, line) in model.all_locks().items():
        all_locks[lock] = (path, line)

    for cyc in find_cycles(edges):
        first = edges.get((cyc[0], cyc[1])) or next(iter(edges.values()))
        findings.append(Finding(
            first[0], first[1], "lock-cycle",
            "lock-order cycle: " + " -> ".join(cyc)
            + " — a thread taking these in different orders can deadlock"))

    leaves: set[str] = set()
    if hierarchy_path:
        try:
            ranks, leaves = parse_hierarchy(hierarchy_path)
        except (OSError, ValueError) as exc:
            findings.append(Finding(
                os.path.relpath(hierarchy_path, root), 1,
                "lock-hierarchy", str(exc)))
            return findings, edges, all_locks, leaves
        documented = set(ranks) | leaves
        for lock in sorted(all_locks):
            if lock not in documented:
                path, line = all_locks[lock]
                findings.append(Finding(
                    path, line, "undocumented-lock",
                    f"{lock} is not in the lock hierarchy in "
                    f"{os.path.relpath(hierarchy_path, root)} — add it at "
                    "its rank (or mark it `leaf` if it only pairs with a "
                    "condition variable)"))
        for name in sorted(documented - set(all_locks)):
            findings.append(Finding(
                os.path.relpath(hierarchy_path, root), 1,
                "stale-hierarchy",
                f"hierarchy lists {name} but no such mutex exists in the "
                "tree — remove the stale entry"))
        for (a, b), (path, line, ctx) in sorted(edges.items()):
            if a in leaves:
                findings.append(Finding(
                    path, line, "wait-lock-edge",
                    f"{a} is documented leaf (wait-only) but is held "
                    f"while acquiring {b} at {ctx}"))
                continue
            if a in ranks and b in ranks and ranks[a] >= ranks[b]:
                findings.append(Finding(
                    path, line, "rank-violation",
                    f"edge {a} -> {b} runs against the documented "
                    f"hierarchy (rank {ranks[a]} -> {ranks[b]}; outer "
                    "locks must have lower rank) at " + ctx))
    return findings, edges, all_locks, leaves
