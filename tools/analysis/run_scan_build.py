#!/usr/bin/env python3
"""Clang Static Analyzer (scan-build) gate with a curated baseline.

Runs `scan-build` over a fresh configure+build of src/ (via the pjsched
library targets), parses the emitted plist reports with stdlib plistlib,
and diffs the findings against the committed baseline
(tools/analysis/scan_build_baseline.txt).  New findings fail; baseline
entries that no longer reproduce are warnings (prune the baseline).

The baseline line format is `file|checker|description` — stable across
line-number churn, tight enough not to mask new instances of a silenced
class elsewhere.  Lines starting with `#` are comments.

Where scan-build is not installed (gcc-only dev boxes) the gate exits 0
with a "skipped" note — CI's scan-build job installs clang-tools and is
the enforcing environment.

Usage: run_scan_build.py [--root R] [--build-dir D] [--baseline F]
                         [--jobs N]
"""

from __future__ import annotations

import argparse
import glob
import os
import plistlib
import shutil
import subprocess
import sys
import tempfile


def find_scan_build() -> str | None:
    for name in ("scan-build", "scan-build-18", "scan-build-17",
                 "scan-build-16", "scan-build-15", "scan-build-14"):
        path = shutil.which(name)
        if path:
            return path
    return None


def load_baseline(path: str) -> set[tuple[str, str, str]]:
    triples = set()
    if not os.path.isfile(path):
        return triples
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("|", 2)
            if len(parts) == 3:
                triples.add(tuple(parts))
    return triples


def collect_findings(report_dir: str, root: str) \
        -> set[tuple[str, str, str]]:
    found = set()
    for plist in glob.glob(os.path.join(report_dir, "**", "*.plist"),
                           recursive=True):
        with open(plist, "rb") as f:
            try:
                data = plistlib.load(f)
            except plistlib.InvalidFileException:
                continue
        files = data.get("files", [])
        for diag in data.get("diagnostics", []):
            idx = diag.get("location", {}).get("file", 0)
            path = files[idx] if idx < len(files) else "<unknown>"
            rel = os.path.relpath(path, root) if os.path.isabs(path) \
                else path
            rel = rel.replace(os.sep, "/")
            found.add((rel,
                       diag.get("check_name", diag.get("category", "?")),
                       diag.get("description", "?")))
    return found


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=os.getcwd())
    ap.add_argument("--build-dir", default=None,
                    help="scratch build dir (default: a fresh tempdir — "
                    "scan-build needs its own configure)")
    ap.add_argument("--baseline", default=None)
    ap.add_argument("--jobs", default=str(os.cpu_count() or 2))
    args = ap.parse_args()

    root = os.path.abspath(args.root)
    baseline_path = args.baseline or os.path.join(
        root, "tools", "analysis", "scan_build_baseline.txt")
    scan_build = find_scan_build()
    if scan_build is None:
        print("run_scan_build: scan-build not installed; skipped "
              "(CI's scan-build job enforces this gate)")
        return 0

    scratch = args.build_dir or tempfile.mkdtemp(prefix="pjsched_scan_")
    report_dir = os.path.join(scratch, "scan-reports")
    os.makedirs(report_dir, exist_ok=True)
    base_cmd = [scan_build, "-o", report_dir, "--status-bugs",
                "-plist-html"]
    cfg = base_cmd + ["cmake", "-S", root, "-B", scratch,
                      "-DCMAKE_BUILD_TYPE=Release"]
    bld = base_cmd + ["cmake", "--build", scratch, "--target",
                      "pjsched", "pjsched_runtime", "pjsched_service",
                      "-j", args.jobs]
    for cmd in (cfg, bld):
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              check=False)
        # --status-bugs makes the build exit non-zero when bugs were
        # found — that is the expected path; a missing report dir is the
        # real failure.
        if proc.returncode != 0 and not glob.glob(
                os.path.join(report_dir, "**", "*.plist"),
                recursive=True) and "cmake" in cmd[len(base_cmd)]:
            sys.stderr.write(proc.stdout + proc.stderr)
            print("run_scan_build: scan-build could not drive the build")
            return 1

    baseline = load_baseline(baseline_path)
    found = collect_findings(report_dir, root)
    new = sorted(found - baseline)
    stale = sorted(baseline - found)
    for rel, checker, desc in new:
        print(f"run_scan_build: NEW: {rel}|{checker}|{desc}")
    for rel, checker, desc in stale:
        print(f"run_scan_build: baseline entry no longer reproduces "
              f"(prune it): {rel}|{checker}|{desc}")
    if new:
        print(f"run_scan_build: {len(new)} new finding(s) not in "
              f"{os.path.relpath(baseline_path, root)}")
        return 1
    print(f"run_scan_build: OK ({len(found)} finding(s), all baselined; "
          f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
