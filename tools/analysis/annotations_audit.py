#!/usr/bin/env python3
"""Annotation-completeness audit.

Clang's thread-safety analysis (-Werror=thread-safety-analysis in clang
builds) only checks what is annotated; this pass closes the gap by
requiring the annotations to exist in the first place.

Rules:
  raw-mutex          a std::mutex-family member outside src/runtime/
                     mutex.h — use the annotated runtime::Mutex wrapper so
                     capability analysis sees it
  mutex-unannotated  a Mutex member that no GUARDED_BY / PT_GUARDED_BY /
                     REQUIRES / ACQUIRE in its class refers to.  A mutex
                     protecting nothing is either dead weight or guarding
                     data the analyzer cannot see.  Wait-only mutexes
                     (pairing a CondVar, guarding no data) carry a
                     ``// lint: allow(wait-lock): <reason>`` marker.
  unguarded-field    a member field written under a class mutex in >= 2 of
                     the class's methods but declared without GUARDED_BY —
                     multi-writer shared state must be visible to the
                     capability analysis
"""

from __future__ import annotations

import re

from compile_db import ALLOW_WINDOW, Finding, has_marker

RAW_MUTEX = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?)\s+"
    r"\w+\s*;")

WAIT_LOCK_MARKER = "lint: allow(wait-lock)"

#: Mutating member accesses that count as writes for the guarded-field
#: heuristic.
_WRITE_OPS = (r"(?:=(?!=)|\+=|-=|\*=|/=|\|=|&=|\^=|\+\+|--|"
              r"\.\s*(?:push_back|pop_back|push_front|pop_front|clear|"
              r"erase|insert|emplace|emplace_back|resize|assign|swap)\b|"
              r"->\s*(?:push_back|clear|erase|insert|emplace)\b)")


def _annotation_refs(body: str, mutex: str) -> bool:
    pat = re.compile(
        r"PJSCHED_(?:PT_GUARDED_BY|GUARDED_BY|REQUIRES|REQUIRES_SHARED|"
        r"ACQUIRE|ACQUIRE_SHARED|RELEASE|TRY_ACQUIRE|EXCLUDES)\s*\(\s*"
        + re.escape(mutex) + r"\s*[,)]")
    return bool(pat.search(body))


def run(model, raw_texts: dict[str, str]):
    """`raw_texts` maps rel path -> original (unstripped) file text, used
    for marker and annotation scans (annotations are macros in code, but
    the allow markers live in comments the model blanks)."""
    findings: list[Finding] = []

    for rel in sorted(model.file_code):
        if rel == "src/runtime/mutex.h":
            continue
        code = model.file_code[rel]
        for m in RAW_MUTEX.finditer(code):
            line = code.count("\n", 0, m.start()) + 1
            findings.append(Finding(
                rel, line, "raw-mutex",
                f"`{m.group(0).strip()}` bypasses the annotated "
                "runtime::Mutex wrapper — thread-safety analysis cannot "
                "track it; use runtime::Mutex / runtime::CondVar from "
                "src/runtime/mutex.h"))

    for bare in sorted(model.classes):
        for info in model.classes[bare]:
            code = model.file_code[info.file]
            body = code[info.body_span[0]:info.body_span[1]]
            raw_lines = raw_texts[info.file].splitlines()
            for mutex in sorted(info.mutex_fields):
                if _annotation_refs(body, mutex):
                    continue
                line = info.mutex_lines.get(mutex, 1)
                if has_marker(raw_lines, line - 1, WAIT_LOCK_MARKER,
                              ALLOW_WINDOW):
                    continue
                findings.append(Finding(
                    info.file, line, "mutex-unannotated",
                    f"{info.qualname}::{mutex} guards nothing the "
                    "analyzer can see: no GUARDED_BY/REQUIRES/ACQUIRE in "
                    f"{info.qualname} names it.  Annotate the data it "
                    "protects, or mark it `// lint: allow(wait-lock): "
                    "<reason>` if it only pairs with a condition "
                    "variable"))
            findings += _unguarded_fields(model, info, body)
    return findings


def _unguarded_fields(model, info, class_body: str):
    """Fields of `info` written inside lock-holding regions of >= 2 of the
    class's methods without a GUARDED_BY on the declaration."""
    findings: list[Finding] = []
    if not info.mutex_fields:
        return findings
    class_locks = {model.canonical_lock(info, mu)
                   for mu in info.mutex_fields}
    methods = [fn for fn in model.functions.values()
               if fn.class_name == info.name
               and fn.file in model._tu_mates(info.file)]
    for fname in sorted(info.fields):
        ftype = info.fields[fname]
        if fname in info.mutex_fields or "atomic" in ftype \
                or "CondVar" in ftype or "condition_variable" in ftype:
            continue
        decl = re.search(
            r"\b" + re.escape(fname) + r"\s+PJSCHED_(?:PT_)?GUARDED_BY",
            class_body)
        if decl:
            continue
        write_pat = re.compile(
            r"(?<![\w.>])" + re.escape(fname) + r"\s*" + _WRITE_OPS)
        writers = []
        for fn in methods:
            if not (fn.direct_locks & class_locks):
                continue
            region = _held_region_text(model, fn, class_locks)
            if write_pat.search(region):
                writers.append(fn)
        if len(writers) >= 2:
            line = 1
            m = re.search(r"\b" + re.escape(fname) + r"\s*"
                          r"(?:PJSCHED_\w+\s*\([^;]*\))?\s*"
                          r"(?:=[^;]*|\{[^;{}]*\})?;", class_body)
            if m:
                line = model.file_code[info.file].count(
                    "\n", 0, info.body_span[0] + m.start()) + 1
            findings.append(Finding(
                info.file, line, "unguarded-field",
                f"{info.qualname}::{fname} is written under a class lock "
                f"in {len(writers)} methods "
                f"({', '.join(sorted(w.qualname for w in writers))}) but "
                "its declaration has no PJSCHED_GUARDED_BY — annotate it "
                "so clang's capability analysis checks every access"))
    return findings


def _held_region_text(model, fn, class_locks) -> str:
    """Approximate text of `fn`'s body where a class lock is held: from
    each acquisition of a class lock to the end of the body (scoped locks
    dominate their block; good enough for a >=2-writers heuristic)."""
    code = model.file_code[fn.file]
    start, end = fn.body_span
    body = code[start:end]
    pieces = []
    for ev, _held in model.walk_held(fn):
        if ev.kind == "acquire" and ev.lock in class_locks:
            # Offset of the event line within the body.
            abs_line_start = 0
            for _ in range(ev.line - 1):
                abs_line_start = code.find("\n", abs_line_start) + 1
            pieces.append(body[max(0, abs_line_start - start):])
            break
    return "".join(pieces)
