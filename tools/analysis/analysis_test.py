#!/usr/bin/env python3
"""Tests for pjsched_analysis: every rule of the four passes has pass and
fail fixtures in testdata/, staged into a temporary repo layout (the
lock/blocking rules look at anything under src/, the determinism rules at
src/sim + src/sched), plus gate tests that run the analyzer over the real
tree with the committed golden lock-order graph — the same invocation the
`lint` CMake target and CI use."""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
DRIVER = os.path.join(HERE, "pjsched_analysis.py")
TESTDATA = os.path.join(HERE, "testdata")
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))


def run_analysis(args, cwd=None):
    proc = subprocess.run(
        [sys.executable, DRIVER] + args,
        capture_output=True, text=True, cwd=cwd, check=False)
    return proc.returncode, proc.stdout, proc.stderr


class FixtureCase(unittest.TestCase):
    """Stages fixtures into a tmp repo layout and runs one pass."""

    def setUp(self):
        self.tmp = tempfile.mkdtemp(prefix="pjsched_analysis_test_")
        os.makedirs(os.path.join(self.tmp, "src", "runtime"))

    def tearDown(self):
        shutil.rmtree(self.tmp, ignore_errors=True)

    def stage(self, fixture, rel_dir, rename=None):
        dst_dir = os.path.join(self.tmp, rel_dir)
        os.makedirs(dst_dir, exist_ok=True)
        dst = os.path.join(dst_dir, rename or fixture)
        shutil.copy(os.path.join(TESTDATA, fixture), dst)
        return dst

    def analyze(self, passname, *extra):
        return run_analysis(["--root", self.tmp, "--engine", "regex",
                             "--pass", passname, *extra])

    def assert_rule_fires(self, passname, rule, min_findings=1, extra=()):
        code, out, err = self.analyze(passname, *extra)
        self.assertEqual(code, 1,
                         f"expected findings, got code {code}:\n{out}\n{err}")
        hits = [l for l in out.splitlines() if f"[{rule}]" in l]
        self.assertGreaterEqual(
            len(hits), min_findings,
            f"expected >={min_findings} [{rule}] findings, got:\n{out}")

    def assert_clean(self, passname, extra=()):
        code, out, err = self.analyze(passname, *extra)
        self.assertEqual(code, 0, f"expected clean, got:\n{out}\n{err}")

    def hierarchy(self, name="hierarchy.md"):
        return ("--hierarchy", os.path.join(TESTDATA, name))

    # lock-order -----------------------------------------------------------
    def test_lock_cycle_fail(self):
        self.stage("lock_cycle_fail.h", "src/runtime")
        self.assert_rule_fires("lock-order", "lock-cycle")

    def test_interprocedural_cycle_fail(self):
        self.stage("interproc_cycle_fail.h", "src/runtime")
        self.assert_rule_fires("lock-order", "lock-cycle")

    def test_lock_order_pass(self):
        self.stage("lock_order_pass.h", "src/runtime")
        self.assert_clean("lock-order")

    def test_unresolved_lock_fail(self):
        self.stage("unresolved_lock_fail.h", "src/runtime")
        self.assert_rule_fires("lock-order", "unresolved-lock")

    def test_hierarchy_pass(self):
        self.stage("hierarchy_pass.h", "src/runtime")
        self.assert_clean("lock-order", extra=self.hierarchy())

    def test_rank_violation_fail(self):
        self.stage("rank_violation_fail.h", "src/runtime")
        self.assert_rule_fires("lock-order", "rank-violation",
                               extra=self.hierarchy())

    def test_wait_lock_edge_fail(self):
        self.stage("wait_lock_edge_fail.h", "src/runtime")
        self.assert_rule_fires("lock-order", "wait-lock-edge",
                               extra=self.hierarchy())

    def test_undocumented_lock_fail(self):
        self.stage("undocumented_lock_fail.h", "src/runtime")
        self.assert_rule_fires("lock-order", "undocumented-lock",
                               extra=self.hierarchy())

    def test_stale_hierarchy_fail(self):
        self.stage("hierarchy_pass.h", "src/runtime")
        self.assert_rule_fires("lock-order", "stale-hierarchy",
                               extra=self.hierarchy("hierarchy_stale.md"))

    def test_dot_out_and_check_roundtrip(self):
        self.stage("lock_order_pass.h", "src/runtime")
        dot = os.path.join(self.tmp, "lock-order.dot")
        code, out, err = self.analyze("lock-order", "--dot-out", dot)
        self.assertEqual(code, 0, out + err)
        self.assert_clean("lock-order", extra=("--check-dot", dot))
        with open(dot, "a", encoding="utf-8") as f:
            f.write("// drift\n")
        self.assert_rule_fires("lock-order", "lock-order-dot",
                               extra=("--check-dot", dot))

    # blocking -------------------------------------------------------------
    def test_blocking_syscall_fail(self):
        self.stage("blocking_fail.cc", "src/service")
        self.assert_rule_fires("blocking", "blocking-under-lock")

    def test_blocking_interprocedural_fail(self):
        self.stage("blocking_interproc_fail.cc", "src/service")
        self.assert_rule_fires("blocking", "blocking-under-lock")

    def test_cv_extra_lock_fail(self):
        self.stage("cv_extra_lock_fail.cc", "src/service")
        self.assert_rule_fires("blocking", "cv-wait-extra-lock")

    def test_blocking_pass(self):
        self.stage("blocking_pass.cc", "src/service")
        self.assert_clean("blocking")

    def test_blocking_allow_marker_pass(self):
        self.stage("blocking_allow_pass.cc", "src/service")
        self.assert_clean("blocking")

    def test_mutex_h_exempt(self):
        # The CV primitive itself waits under its own lock by definition.
        self.stage("blocking_fail.cc", "src/runtime", rename="mutex.h")
        self.assert_clean("blocking")

    # annotations ----------------------------------------------------------
    def test_raw_mutex_fail(self):
        self.stage("raw_mutex_fail.h", "src/service")
        self.assert_rule_fires("annotations", "raw-mutex")

    def test_mutex_unannotated_fail(self):
        self.stage("mutex_unannotated_fail.h", "src/service")
        self.assert_rule_fires("annotations", "mutex-unannotated")

    def test_unguarded_field_fail(self):
        self.stage("unguarded_field_fail.h", "src/service")
        self.assert_rule_fires("annotations", "unguarded-field")

    def test_annotations_pass(self):
        self.stage("annotations_pass.h", "src/service")
        self.assert_clean("annotations")

    # determinism ----------------------------------------------------------
    def test_dup_formula_fail(self):
        self.stage("dup_formula_fail.cc", "src/sim",
                   rename="event_engine.cc")
        self.assert_rule_fires("determinism", "dup-fp-formula",
                               min_findings=4)

    def test_determinism_pass(self):
        self.stage("determinism_pass.cc", "src/sim",
                   rename="event_engine.cc")
        self.assert_clean("determinism")

    def test_formula_scope_is_engines_only(self):
        # The same formulas elsewhere in src/sim are not the engines'
        # bit-identity surface.
        self.stage("dup_formula_fail.cc", "src/sim", rename="helpers.cc")
        self.assert_clean("determinism")

    def test_dup_bound_formula_fail(self):
        # The bound formulas hoisted into sim_math.h (relaxed job length,
        # FIFO frontier advance) are watched in the streamed-bounds
        # pipeline: re-inlining them there silently forks the rounding from
        # OptLowerBound's.
        self.stage("dup_bound_formula_fail.cc", "src/core",
                   rename="bounds.cc")
        self.assert_rule_fires("determinism", "dup-fp-formula",
                               min_findings=2)

    def test_dup_bound_formula_scope_in_opt_bound(self):
        self.stage("dup_bound_formula_fail.cc", "src/sched",
                   rename="opt_bound.cc")
        self.assert_rule_fires("determinism", "dup-fp-formula",
                               min_findings=2)

    def test_bound_formula_scope_excludes_other_files(self):
        # Outside the watched bound/engine files the same expressions are
        # legitimate local math.
        self.stage("dup_bound_formula_fail.cc", "src/sched",
                   rename="fifo.cc")
        self.assert_clean("determinism")

    def test_unordered_iteration_fail(self):
        self.stage("unordered_iter_fail.cc", "src/sched")
        self.assert_rule_fires("determinism", "unordered-iteration")

    def test_entropy_fail(self):
        self.stage("entropy_fail.cc", "src/sim")
        self.assert_rule_fires("determinism", "entropy-source")

    def test_entropy_rng_exempt(self):
        self.stage("entropy_fail.cc", "src/sim", rename="rng.cc")
        self.assert_clean("determinism")

    def _write_compile_commands(self, flag):
        tu = self.stage("determinism_pass.cc", "src/sim",
                        rename="engine.cc")
        cc = os.path.join(self.tmp, "compile_commands.json")
        cmd = f"g++ {flag} -std=c++20 -c {tu} -o engine.o".strip()
        with open(cc, "w", encoding="utf-8") as f:
            json.dump([{"directory": self.tmp, "command": cmd,
                        "file": tu}], f)
        return cc

    def test_fp_contract_fail(self):
        cc = self._write_compile_commands("")
        self.assert_rule_fires("determinism", "fp-contract",
                               extra=("--compile-commands", cc))

    def test_fp_contract_pass(self):
        cc = self._write_compile_commands("-ffp-contract=off")
        self.assert_clean("determinism", extra=("--compile-commands", cc))

    # discovery ------------------------------------------------------------
    def test_build_dirs_excluded(self):
        self.stage("lock_cycle_fail.h", "src/runtime/build-scratch")
        self.assert_clean("lock-order")

    def test_stale_compile_commands(self):
        tu = self.stage("determinism_pass.cc", "src/sim",
                        rename="engine.cc")
        cc = os.path.join(self.tmp, "compile_commands.json")
        with open(cc, "w", encoding="utf-8") as f:
            json.dump([{"directory": self.tmp, "command": "g++ -c gone.cc",
                        "file": os.path.join(self.tmp, "gone.cc")}], f)
        code, out, err = self.analyze("determinism",
                                      "--compile-commands", cc)
        self.assertEqual(code, 2, out + err)
        self.assertIn("no longer exists", err)
        del tu


class GateCase(unittest.TestCase):
    """The real tree must be clean and match the committed golden graph —
    the same check the lint target and CI run."""

    def _args(self):
        args = ["--root", REPO_ROOT]
        compile_commands = os.path.join(REPO_ROOT, "build",
                                        "compile_commands.json")
        if os.path.isfile(compile_commands):
            args += ["--compile-commands", compile_commands]
        return args

    def test_repo_is_clean_all_passes(self):
        code, out, err = run_analysis(self._args())
        self.assertEqual(
            code, 0,
            f"pjsched_analysis found violations in the tree:\n{out}\n{err}")

    def test_committed_dot_matches_extraction(self):
        golden = os.path.join(REPO_ROOT, "docs", "lock-order.dot")
        self.assertTrue(os.path.isfile(golden),
                        "docs/lock-order.dot missing — run "
                        "tools/analysis/regen_lock_order.sh")
        code, out, err = run_analysis(
            self._args() + ["--pass", "lock-order", "--check-dot", golden])
        self.assertEqual(
            code, 0,
            "docs/lock-order.dot drifted from the code — run "
            f"tools/analysis/regen_lock_order.sh:\n{out}\n{err}")


class LibclangEngineCase(unittest.TestCase):
    """Engine parity: the libclang token stripper and the regex stripper
    must produce identical findings (only stripping precision differs)."""

    def setUp(self):
        try:
            import clang.cindex  # noqa: F401
        except ImportError:
            self.skipTest("python-clang not installed")

    def test_libclang_matches_regex_on_fixtures(self):
        with tempfile.TemporaryDirectory() as tmp:
            dst_dir = os.path.join(tmp, "src", "runtime")
            os.makedirs(dst_dir)
            for fixture in ("lock_cycle_fail.h", "blocking_fail.cc"):
                shutil.copy(os.path.join(TESTDATA, fixture),
                            os.path.join(dst_dir, fixture))
            results = {}
            for engine in ("libclang", "regex"):
                code, out, _ = run_analysis(
                    ["--root", tmp, "--engine", engine,
                     "--pass", "lock-order"])
                results[engine] = (code, sorted(
                    l.split(": ", 1)[0] for l in out.splitlines()
                    if ": [" in l))
            self.assertEqual(results["libclang"], results["regex"])


if __name__ == "__main__":
    unittest.main()
