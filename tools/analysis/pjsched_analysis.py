#!/usr/bin/env python3
"""pjsched_analysis — whole-program concurrency & determinism analyzer.

Four CI-gating passes over the tree described by compile_commands.json
(see docs/static-analysis.md for the rules and policy):

  lock-order     acquired-while-held graph: cycles, documented-hierarchy
                 validation, DOT emission (docs/lock-order.dot golden)
  blocking       blocking syscalls / CV waits / transitively-blocking
                 calls while a lock is held
  annotations    every mutex wrapped+annotated, multi-writer fields
                 GUARDED_BY
  determinism    -ffp-contract=off on sim TUs, one-program-point FP
                 formulas, no unordered iteration or stray entropy in
                 sim/sched results

Engines, same architecture as tools/lint/pjsched_lint.py: with the python
libclang bindings importable, comments and string literals are blanked by
exact token extents; otherwise a comment-aware regex stripper does the
same job.  Both feed the identical textual model (tools/analysis/
cpp_model.py), so findings do not depend on the engine — only stripping
precision does.

Usage:
  pjsched_analysis.py [--root R] [--compile-commands CC]
                      [--pass all|lock-order|blocking|annotations|
                       determinism]
                      [--hierarchy PATH] [--dot-out PATH]
                      [--check-dot PATH] [--engine auto|libclang|regex]
                      [files...]

Positional files restrict *reported* findings to those paths (the model
is still whole-program — an edge needs both sides).  Exit codes: 0 clean,
1 findings, 2 usage error or stale compile_commands.json.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import annotations_audit
import blocking_under_lock
import determinism_audit
import lock_order
from compile_db import (StaleCompileCommandsError, discover_files,
                        compile_args_for)
from cpp_model import Model

PASSES = ("lock-order", "blocking", "annotations", "determinism")


def resolve_engine(requested: str) -> str:
    if requested == "regex":
        return "regex"
    try:
        import clang.cindex  # noqa: F401
        return "libclang"
    except ImportError:
        if requested == "libclang":
            sys.stderr.write(
                "pjsched_analysis: --engine libclang requested but the "
                "python clang bindings are not importable\n")
            sys.exit(2)
        return "regex"


def make_libclang_strip(compile_commands, root):
    """Token-exact comment/string blanking via libclang; falls back to
    the regex stripper per file on any parse hiccup."""
    import clang.cindex as ci
    from compile_db import strip_comments
    index = ci.Index.create()

    def strip(text: str, path: str) -> str:
        try:
            args = compile_args_for(path, compile_commands, root)
            tu = index.parse(path, args=args)
            out = list(text)

            def blank(lo: int, hi: int) -> None:
                for j in range(lo, min(hi, len(out))):
                    if out[j] != "\n":
                        out[j] = " "

            for tok in tu.get_tokens(extent=tu.cursor.extent):
                lo = tok.extent.start.offset
                hi = tok.extent.end.offset
                if tok.kind == ci.TokenKind.COMMENT:
                    blank(lo, hi)
                elif tok.kind == ci.TokenKind.LITERAL and (
                        tok.spelling[:1] in ("\"", "'")
                        or tok.spelling[:2] in ('R"', 'u"', 'L"', 'U"')):
                    blank(lo + 1, hi - 1)
            return "".join(out)
        except Exception:  # noqa: BLE001 — engine fallback by design
            return strip_comments(text)

    return strip


def build_model(root, files, engine, compile_commands):
    strip_fn = None
    if engine == "libclang":
        strip_fn = make_libclang_strip(compile_commands, root)
    model = Model(root, strip_fn=strip_fn)
    model.add_files(files)
    model.finalize()
    return model


def read_raw(root, files):
    out = {}
    for path in files:
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        with open(path, encoding="utf-8", errors="replace") as f:
            out[rel] = f.read()
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="pjsched_analysis.py",
        description="whole-program concurrency & determinism analyzer")
    ap.add_argument("--root", default=os.getcwd())
    ap.add_argument("--compile-commands", default=None,
                    help="path to compile_commands.json (default: "
                    "<root>/build/compile_commands.json when present)")
    ap.add_argument("--pass", dest="passes", default="all",
                    choices=("all",) + PASSES)
    ap.add_argument("--hierarchy", default=None,
                    help="markdown file holding the ```lock-hierarchy "
                    "block (default: <root>/docs/static-analysis.md when "
                    "present; hierarchy validation is skipped without "
                    "one, cycle detection still runs)")
    ap.add_argument("--dot-out", default=None,
                    help="write the extracted lock-order graph as DOT")
    ap.add_argument("--check-dot", default=None,
                    help="fail unless this DOT file matches the "
                    "extracted graph byte-for-byte")
    ap.add_argument("--engine", default="auto",
                    choices=("auto", "libclang", "regex"))
    ap.add_argument("files", nargs="*",
                    help="restrict reported findings to these paths")
    args = ap.parse_args(argv)

    root = os.path.abspath(args.root)
    cc = args.compile_commands
    if cc is None:
        default_cc = os.path.join(root, "build", "compile_commands.json")
        if os.path.isfile(default_cc):
            cc = default_cc
    hierarchy = args.hierarchy
    if hierarchy is None:
        default_h = os.path.join(root, "docs", "static-analysis.md")
        if os.path.isfile(default_h):
            hierarchy = default_h

    engine = resolve_engine(args.engine)
    try:
        files = discover_files(root, cc, subdirs=("src",),
                               tool="pjsched_analysis")
    except StaleCompileCommandsError as exc:
        sys.stderr.write(f"pjsched_analysis: {exc}\n")
        return 2

    model = build_model(root, files, engine, cc)
    raw_texts = read_raw(root, files)
    selected = PASSES if args.passes == "all" else (args.passes,)

    findings = []
    if "lock-order" in selected:
        lo_findings, edges, all_locks, leaves = lock_order.run(
            model, hierarchy, root)
        findings += lo_findings
        dot = lock_order.to_dot(edges, all_locks, leaves)
        if args.dot_out:
            with open(args.dot_out, "w", encoding="utf-8") as f:
                f.write(dot)
            sys.stderr.write(
                f"pjsched_analysis: wrote {args.dot_out} "
                f"({len(all_locks)} locks, {len(edges)} edges)\n")
        if args.check_dot:
            try:
                with open(args.check_dot, encoding="utf-8") as f:
                    committed = f.read()
            except OSError:
                committed = None
            if committed != dot:
                from compile_db import Finding
                findings.append(Finding(
                    os.path.relpath(args.check_dot, root), 1,
                    "lock-order-dot",
                    "committed lock-order graph does not match the "
                    "extracted one — regenerate with "
                    "tools/analysis/regen_lock_order.sh"))
    if "blocking" in selected:
        findings += blocking_under_lock.run(model, raw_texts)
    if "annotations" in selected:
        findings += annotations_audit.run(model, raw_texts)
    if "determinism" in selected:
        findings += determinism_audit.run(model, raw_texts, cc, root)

    if args.files:
        wanted = {os.path.relpath(os.path.abspath(f), root)
                  .replace(os.sep, "/") for f in args.files}
        findings = [f for f in findings if f.path in wanted]

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f)
    if findings:
        print(f"pjsched_analysis: {len(findings)} finding(s) "
              f"[engine={engine}]", file=sys.stderr)
        return 1
    print(f"pjsched_analysis: OK ({len(files)} files clean, "
          f"{len(selected)} pass(es), engine={engine})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
