#!/usr/bin/env python3
"""Blocking-under-lock pass.

A thread that blocks — in a syscall, a sleep, a condition-variable wait,
or a call that transitively does any of those — while holding a shard or
router lock stalls every other thread contending for that lock for the
full blocking duration.  The daemon's hot paths are built to take locks
only around in-memory state (see docs/service.md); this pass keeps it
that way.

Rules:
  blocking-under-lock  a blocking operation with at least one lock held
  cv-wait-extra-lock   a CV wait whose thread holds a lock other than the
                       one the wait releases (classic lost-wakeup /
                       deadlock shape)

Policy: a condition-variable wait is fine when the *only* held lock is
the one handed to wait() — that lock is released for the duration.  Any
additional held lock stays held while the thread sleeps.  Sites with a
``// lint: allow(blocking-under-lock): <reason>`` marker within
ALLOW_WINDOW lines are skipped (the reason is the review artifact).
src/runtime/mutex.h is exempt wholesale: it *implements* the CV
primitive, so its waits are definitionally lock-paired.
"""

from __future__ import annotations

from compile_db import ALLOW_WINDOW, Finding, has_marker

EXEMPT_FILES = {"src/runtime/mutex.h"}

ALLOW_MARKER = "lint: allow(blocking-under-lock)"


def run(model, raw_texts):
    """`raw_texts` maps rel path -> original file text — the allow
    markers live in comments, which the model's stripped code blanks."""
    findings: list[Finding] = []
    for qual in sorted(model.functions):
        fn = model.functions[qual]
        if fn.file in EXEMPT_FILES:
            continue
        lines = raw_texts[fn.file].splitlines()
        for ev, held in model.walk_held(fn):
            if not held:
                continue
            if ev.kind == "cv_wait":
                others = [h for h in held if h != ev.cv_mutex]
                if ev.cv_mutex in held and not others:
                    continue  # single-lock pair: wait releases it
                if has_marker(lines, ev.line - 1, ALLOW_MARKER,
                              ALLOW_WINDOW):
                    continue
                if others and ev.cv_mutex in held:
                    findings.append(Finding(
                        fn.file, ev.line, "cv-wait-extra-lock",
                        f"{qual}() waits on a condition variable while "
                        f"also holding {', '.join(others)} — only "
                        f"{ev.cv_mutex} is released for the wait; the "
                        "rest stay held while the thread sleeps"))
                else:
                    findings.append(Finding(
                        fn.file, ev.line, "blocking-under-lock",
                        f"{qual}() CV-waits while holding "
                        f"{', '.join(held)} but the wait does not release "
                        "any of them — restructure so the wait's mutex is "
                        "the only held lock"))
                continue
            blocking_why = None
            if ev.kind == "blocking":
                blocking_why = f"calls {ev.callee}()"
            elif ev.kind == "call":
                target = model.functions.get(ev.callee)
                if target and target.may_block:
                    blocking_why = (f"calls {ev.callee}(), which may "
                                    "block (CV wait or syscall on some "
                                    "path)")
            if blocking_why is None:
                continue
            if has_marker(lines, ev.line - 1, ALLOW_MARKER, ALLOW_WINDOW):
                continue
            findings.append(Finding(
                fn.file, ev.line, "blocking-under-lock",
                f"{qual}() {blocking_why} while holding "
                f"{', '.join(held)} — move the blocking operation "
                "outside the critical section (site: "
                f"`{ev.raw}`)"))
    return findings
