#!/usr/bin/env python3
"""A lightweight whole-program C++ model for the concurrency passes.

Parses the tree the same way pjsched_lint does (comment-aware text over
compile_commands-discovered files — see compile_db.py) but goes one level
deeper: brace-matched namespace/class/function scopes, a registry of
classes with their members and mutex fields, per-function lock-acquisition
events with scope extents, receiver-resolved call sites, and fixpoint
"may acquire"/"may block" summaries for interprocedural edges.

The model is deliberately conservative where C++ is undecidable from text:

  * a call is followed only when its receiver chain resolves to a class in
    the registry (member-variable types, local/param declarations, and a
    per-translation-unit unique-field fallback) or, receiverless, to a
    method of the enclosing class / a free function in the same file.  An
    unresolvable call contributes nothing — no guessed edges;
  * a `MutexLock` whose argument cannot be resolved to a registered mutex
    is surfaced as its own finding (the lock-order pass refuses to guess);
  * `lock.unlock()` / `lock.lock()` pairs on a scoped lock toggle the
    held-set, so the watchdog's release-around-the-callback pattern is
    modeled, not flagged.

Scope: the passes feed it src/runtime + src/service, small enough that the
text-level model stays exact in practice — the fixtures pin every
construct the real tree uses (nested scopes, member-of-member receivers,
unique-field fallback, temporary release).
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field

from compile_db import strip_comments

KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "throw",
    "new", "delete", "case", "default", "do", "else", "alignas", "alignof",
    "decltype", "static_assert", "noexcept", "assert", "defined",
}

#: Names whose *call* blocks the calling thread.  Syscall-flavored names
#: are matched even when the callee cannot be resolved (they never resolve:
#: libc has no registry entry); `sleep_for`/`sleep_until`/`join`/`wait*`
#: cover std::thread and condition variables.
BLOCKING_NAMES = {
    "poll", "ppoll", "select", "pselect", "epoll_wait", "epoll_pwait",
    "accept", "accept4", "connect", "recv", "recvfrom", "recvmsg", "send",
    "sendto", "sendmsg", "read", "write", "pread", "pwrite", "readv",
    "writev", "fsync", "fdatasync", "sleep", "usleep", "nanosleep",
    "sleep_for", "sleep_until", "join",
}

CV_WAIT_NAMES = {"wait", "wait_for", "wait_until"}

MUTEX_TYPES = {"Mutex", "runtime::Mutex"}

#: Wrappers unwrapped when resolving a member/local's class: the receiver
#: `io_shards_[i]->mu` reaches IoShard through vector<unique_ptr<IoShard>>.
_UNWRAP = re.compile(
    r"^(?:std::)?(?:vector|deque|array|optional|shared_ptr|unique_ptr)\s*<"
    r"\s*(.*?)\s*>?\s*$")

_PP_LINE = re.compile(r"^[ \t]*#.*$", re.MULTILINE)

#: Access labels glued to the front of a statement head ("private: struct
#: Shard {") are noise for classification.
_ACCESS_LABEL = re.compile(r"^(?:\s*(?:public|private|protected)\s*:)+")

_CLASS_HEAD = re.compile(
    r"^(?:template\s*<[^{}]*>\s*)?(?:class|struct)\s+"
    r"(?:alignas\s*\([^)]*\)\s*|PJSCHED_\w+\s*(?:\([^)]*\))?\s*)*"
    r"([A-Za-z_]\w*)")

#: Head decorations that legitimately carry parens before a class name.
_HEAD_DECOR = re.compile(r"(?:alignas|PJSCHED_\w+)\s*\([^)]*\)")

_FIELD_DECL = re.compile(
    r"^\s*(?:mutable\s+)?(?:static\s+)?(?:const\s+)?"
    r"([A-Za-z_][\w:]*(?:\s*<[^;=(){}]*>)?)"
    r"(?:\s*([&*])\s*|\s+)"
    r"([A-Za-z_]\w*)\s*"
    r"(?:PJSCHED_\w+\s*\([^;]*\))?\s*"
    r"(?:=[^;]*|\{[^;{}]*\})?;", re.MULTILINE)

_LOCK_DECL = re.compile(
    r"\b(?:runtime::)?MutexLock\s+(\w+)\s*[({]\s*([^;)}]*?)\s*[)}]\s*;")

_CALL = re.compile(
    r"((?:[A-Za-z_]\w*(?:\[[^\]]*\])?\s*(?:\.|->)\s*)*)"
    r"(?:std::)?(?:this_thread::)?([A-Za-z_]\w*)\s*\(")

_LOCAL_DECL_TMPL = (
    r"(?:^|[(,;{{]|\bfor\s*\(\s*)\s*(?:const\s+)?"
    r"([A-Za-z_][\w:]*(?:\s*<[^;({{)]*>)?)\s*[&*]*\s*\b{name}\b\s*[=:,;)]")


@dataclass
class ClassInfo:
    name: str                      # bare name, e.g. "IoShard"
    qualname: str                  # nesting path, e.g. "Daemon::IoShard"
    file: str
    fields: dict = field(default_factory=dict)        # name -> type string
    mutex_fields: set = field(default_factory=set)    # names of Mutex fields
    mutex_lines: dict = field(default_factory=dict)   # mutex name -> line
    body_span: tuple = (0, 0)


@dataclass
class FunctionInfo:
    qualname: str                  # "ThreadPool::submit" or "free_fn"
    class_name: str | None         # bare enclosing/owning class name
    file: str
    body_span: tuple               # (start, end) offsets into stripped code
    # Filled by the event extractor:
    direct_locks: set = field(default_factory=set)
    calls: list = field(default_factory=list)          # resolved qualnames
    direct_blocking: bool = False
    # Fixpoint summaries:
    may_acquire: set = field(default_factory=set)
    may_block: bool = False


@dataclass
class LockEvent:
    """One op inside a function body, in source order."""
    kind: str          # acquire | call | blocking | cv_wait | unresolved_lock
    line: int
    lock: str | None = None       # canonical lock (acquire/unresolved)
    var: str | None = None        # MutexLock variable name (acquire)
    depth: int = 0                # brace depth at the op
    callee: str | None = None     # resolved qualname (call) or raw name
    raw: str = ""                 # source text for messages
    cv_mutex: str | None = None   # canonical mutex named by a CV wait


class Model:
    """Registry + per-function events over a set of files."""

    def __init__(self, root: str, strip_fn=None):
        self.root = root
        # strip_fn(text, path) -> text with comments/strings blanked; the
        # libclang engine substitutes a token-exact stripper here.
        self._strip = strip_fn or (lambda text, path: strip_comments(text))
        self.classes: dict[str, list[ClassInfo]] = {}   # bare name -> infos
        self.typedefs: dict[str, str] = {}              # alias -> underlying
        self.functions: dict[str, FunctionInfo] = {}    # qualname -> info
        self.free_by_file: dict[str, dict[str, str]] = {}  # file -> name->qn
        self.file_code: dict[str, str] = {}             # rel path -> stripped
        self.file_scopes: dict[str, list] = {}          # rel -> scope list
        self.events: dict[str, list[LockEvent]] = {}    # fn qualname -> ops

    # -- construction ------------------------------------------------------

    def add_files(self, paths: list[str]) -> None:
        for path in paths:
            rel = os.path.relpath(path, self.root).replace(os.sep, "/")
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
            code = _PP_LINE.sub(lambda m: " " * len(m.group(0)),
                                self._strip(text, path))
            self.file_code[rel] = code
            self._scan_scopes(rel, code)
        self._register_typedefs()
        self._register_fields()

    def finalize(self) -> None:
        """Extracts per-function events and runs the summary fixpoint.
        Call after every add_files()."""
        for fn in self.functions.values():
            self.events[fn.qualname] = self._extract_events(fn)
        self._fixpoint()

    # -- scope scanning ----------------------------------------------------

    def _scan_scopes(self, rel: str, code: str) -> None:
        """Single pass: classify every top-level-ish brace scope into
        namespace / class / function, recording spans."""
        scopes = []          # (kind, name, start, end, class_stack)
        stack = []           # (kind, name, open_depth)
        class_stack = []     # bare names of enclosing classes
        depth = 0
        seg_start = 0        # start of the current statement head
        i, n = 0, len(code)
        while i < n:
            c = code[i]
            if c in ";":
                seg_start = i + 1
            elif c == "{":
                head = code[seg_start:i].strip()
                kind, name = self._classify_head(head, in_function=any(
                    k == "function" for k, _, _ in stack))
                stack.append((kind, name, depth))
                if kind == "class":
                    class_stack.append(name)
                    scopes.append([kind, name, i + 1, None,
                                   tuple(class_stack)])
                elif kind == "function":
                    scopes.append([kind, name, i + 1, None,
                                   tuple(class_stack)])
                depth += 1
                seg_start = i + 1
            elif c == "}":
                depth -= 1
                if stack and stack[-1][2] == depth:
                    kind, name, _ = stack.pop()
                    if kind in ("class", "function"):
                        for s in reversed(scopes):
                            if s[3] is None and s[0] == kind and s[1] == name:
                                s[3] = i
                                break
                    if kind == "class" and class_stack:
                        class_stack.pop()
                seg_start = i + 1
            i += 1
        self.file_scopes[rel] = scopes
        # Register classes and functions.
        for kind, name, start, end, cls_stack in scopes:
            if end is None:
                end = len(code)
            if kind == "class":
                info = ClassInfo(name=name, qualname="::".join(cls_stack),
                                 file=rel, body_span=(start, end))
                self.classes.setdefault(name, []).append(info)
            elif kind == "function":
                cls = None
                if "::" in name:
                    cls = name.split("::")[-2]
                    qual = name
                elif cls_stack:
                    cls = cls_stack[-1]
                    qual = "::".join(cls_stack) + "::" + name
                else:
                    qual = name
                    self.free_by_file.setdefault(rel, {})[name] = qual
                # Inner-first registration wins for duplicate names;
                # out-of-line definitions override in-class declarations of
                # the same qualname only if longer (real bodies beat stubs).
                existing = self.functions.get(qual)
                if existing is None or (end - start) > (
                        existing.body_span[1] - existing.body_span[0]):
                    self.functions[qual] = FunctionInfo(
                        qualname=qual, class_name=cls, file=rel,
                        body_span=(start, end))

    @staticmethod
    def _classify_head(head: str, in_function: bool) -> tuple[str, str]:
        head = _ACCESS_LABEL.sub("", head).strip()
        if not head:
            return ("block", "")
        first = head.split(None, 1)[0]
        if first == "namespace":
            parts = head.split()
            return ("namespace", parts[1] if len(parts) > 1 else "<anon>")
        if first == "extern":
            return ("block", "")
        m = _CLASS_HEAD.match(head)
        if m and first != "enum" and "enum" not in head.split("{")[0].split():
            # A class head never contains a parameter list before the name
            # (alignas(...) and PJSCHED_*(...) decorations excepted).
            before = _HEAD_DECOR.sub("", head[:m.start(1)])
            if "(" not in before:
                return ("class", m.group(1))
        if in_function:
            return ("block", "")
        if first in KEYWORDS:
            return ("block", "")
        paren = head.find("(")
        if paren < 0:
            return ("block", "")
        pre = head[:paren].rstrip()
        m2 = re.search(r"([A-Za-z_~][\w]*(?:::[A-Za-z_~][\w]*)*)$", pre)
        if not m2:
            return ("block", "")
        name = m2.group(1)
        base = name.split("::")[-1]
        if base in KEYWORDS or base.startswith("operator"):
            return ("block", "")
        return ("function", name)

    # -- registry ----------------------------------------------------------

    def _register_typedefs(self) -> None:
        using = re.compile(r"\busing\s+(\w+)\s*=\s*([^;]+);")
        for code in self.file_code.values():
            for m in using.finditer(code):
                self.typedefs[m.group(1)] = m.group(2).strip()

    def _register_fields(self) -> None:
        for infos in self.classes.values():
            for info in infos:
                code = self.file_code[info.file]
                body = code[info.body_span[0]:info.body_span[1]]
                # Blank nested class and method bodies so only this class's
                # own field declarations are parsed.
                body = self._blank_nested(info, body)
                for m in _FIELD_DECL.finditer(body):
                    type_str, sigil, name = m.group(1), m.group(2), \
                        m.group(3)
                    if type_str.split("::")[-1] in ("return", "using") \
                            or name == "operator":
                        continue
                    info.fields[name] = type_str
                    # A reference member is a borrow, not the lock itself
                    # (MutexLock's `Mutex& mu_`) — never a registry lock.
                    if type_str in MUTEX_TYPES and sigil is None:
                        info.mutex_fields.add(name)
                        line = code.count(
                            "\n", 0, info.body_span[0] + m.start(3)) + 1
                        info.mutex_lines[name] = line

    def _blank_nested(self, info: ClassInfo, body: str) -> str:
        out = list(body)
        base = info.body_span[0]
        for kind, _name, start, end, _cls in self.file_scopes[info.file]:
            if kind in ("class", "function") and end is not None and \
                    start > base and end <= info.body_span[1]:
                for j in range(start - base, end - base):
                    if out[j] != "\n":
                        out[j] = " "
        return "".join(out)

    # -- name resolution ---------------------------------------------------

    def class_info(self, bare: str, prefer_file: str | None = None) \
            -> ClassInfo | None:
        infos = self.classes.get(bare)
        if not infos:
            return None
        if len(infos) > 1 and prefer_file:
            mates = self._tu_mates(prefer_file)
            for info in infos:
                if info.file in mates:
                    return info
        return infos[0]

    def _tu_mates(self, rel: str) -> set[str]:
        stem = rel.rsplit(".", 1)[0]
        return {rel, stem + ".h", stem + ".cc"}

    def canonical_lock(self, cls: ClassInfo, mutex: str) -> str:
        return f"{cls.qualname}::{mutex}"

    def _strip_type(self, type_str: str) -> str:
        """Unwraps containers/pointers and namespaces down to a registry
        candidate bare class name."""
        t = type_str.strip()
        for alias, underlying in self.typedefs.items():
            if t == alias or t.endswith("::" + alias):
                t = underlying
                break
        for _ in range(4):
            m = _UNWRAP.match(t)
            if not m:
                break
            t = m.group(1).strip()
            for alias, underlying in self.typedefs.items():
                if t == alias or t.endswith("::" + alias):
                    t = underlying
                    break
        t = t.split("<")[0].strip()
        return t.split("::")[-1]

    def resolve_base_type(self, fn: FunctionInfo, base: str,
                          before_offset: int) -> ClassInfo | None:
        """Type of identifier `base` at a point in `fn`: local/param
        declarations first, then members of the enclosing class."""
        code = self.file_code[fn.file]
        body = code[fn.body_span[0]:fn.body_span[0] + before_offset]
        # Include the signature: parameters are declared before the body.
        sig_start = max(0, fn.body_span[0] - 400)
        searchable = code[sig_start:fn.body_span[0]] + body
        pat = re.compile(_LOCAL_DECL_TMPL.format(name=re.escape(base)))
        last = None
        for m in pat.finditer(searchable):
            last = m
        if last:
            bare = self._strip_type(last.group(1))
            info = self.class_info(bare, prefer_file=fn.file)
            if info:
                return info
        if fn.class_name:
            cls = self.class_info(fn.class_name, prefer_file=fn.file)
            while cls is not None:
                if base in cls.fields:
                    bare = self._strip_type(cls.fields[base])
                    return self.class_info(bare, prefer_file=fn.file)
                # Methods of a nested class see the outer class's fields
                # only through an explicit pointer; don't walk outward.
                break
        return None

    def resolve_lock_expr(self, fn: FunctionInfo, expr: str,
                          offset_in_body: int) -> str | None:
        """Canonical name for a MutexLock argument, or None."""
        expr = expr.strip()
        chain = re.split(r"\.|->", expr)
        chain = [re.sub(r"\[[^\]]*\]", "", part).strip() for part in chain]
        if len(chain) == 1:
            name = chain[0]
            if fn.class_name:
                cls = self.class_info(fn.class_name, prefer_file=fn.file)
                if cls and name in cls.mutex_fields:
                    return self.canonical_lock(cls, name)
            return None
        base, rest = chain[0], chain[1:]
        cls = self.resolve_base_type(fn, base, offset_in_body)
        for part in rest[:-1]:
            if cls is None:
                break
            nxt = cls.fields.get(part)
            cls = self.class_info(self._strip_type(nxt),
                                  prefer_file=fn.file) if nxt else None
        mutex = rest[-1]
        if cls is not None and mutex in cls.mutex_fields:
            return self.canonical_lock(cls, mutex)
        # Fallback: unique mutex field name within this translation unit.
        mates = self._tu_mates(fn.file)
        candidates = [info for infos in self.classes.values()
                      for info in infos
                      if info.file in mates and mutex in info.mutex_fields]
        if len(candidates) == 1:
            return self.canonical_lock(candidates[0], mutex)
        return None

    def resolve_call(self, fn: FunctionInfo, receiver: str,
                     name: str, offset_in_body: int) -> str | None:
        """Qualified name of the callee, or None when unresolvable."""
        receiver = receiver.strip()
        if not receiver:
            if fn.class_name:
                qual_prefix = None
                cls = self.class_info(fn.class_name, prefer_file=fn.file)
                if cls:
                    qual_prefix = cls.qualname
                for candidate in (f"{qual_prefix}::{name}" if qual_prefix
                                  else None,
                                  f"{fn.class_name}::{name}"):
                    if candidate and candidate in self.functions:
                        return candidate
            free = self.free_by_file.get(fn.file, {})
            return free.get(name)
        chain = re.split(r"\.|->", receiver.rstrip(".->"))
        chain = [re.sub(r"\[[^\]]*\]", "", part).strip() for part in chain]
        chain = [part for part in chain if part]
        if not chain:
            return None
        cls = self.resolve_base_type(fn, chain[0], offset_in_body)
        for part in chain[1:]:
            if cls is None:
                return None
            nxt = cls.fields.get(part)
            cls = self.class_info(self._strip_type(nxt),
                                  prefer_file=fn.file) if nxt else None
        if cls is None:
            return None
        for candidate in (f"{cls.qualname}::{name}", f"{cls.name}::{name}"):
            if candidate in self.functions:
                return candidate
        return None

    # -- event extraction --------------------------------------------------

    def _extract_events(self, fn: FunctionInfo) -> list[LockEvent]:
        code = self.file_code[fn.file]
        start, end = fn.body_span
        body = code[start:end]
        ops: list[tuple[int, LockEvent]] = []

        for m in _LOCK_DECL.finditer(body):
            var, expr = m.group(1), m.group(2)
            lock = self.resolve_lock_expr(fn, expr, m.start())
            line = code.count("\n", 0, start + m.start()) + 1
            depth = body.count("{", 0, m.start()) - body.count(
                "}", 0, m.start())
            kind = "acquire" if lock else "unresolved_lock"
            ops.append((m.start(), LockEvent(
                kind=kind, line=line, lock=lock, var=var, depth=depth,
                raw=m.group(0).strip())))
            fn.direct_locks.add(lock) if lock else None

        lock_vars = {e.var for _, e in ops if e.kind == "acquire"}
        var_to_lock = {e.var: e.lock for _, e in ops if e.kind == "acquire"}
        for m in _CALL.finditer(body):
            receiver, name = m.group(1), m.group(2)
            if name in KEYWORDS or name == "MutexLock":
                continue
            line = code.count("\n", 0, start + m.start()) + 1
            depth = body.count("{", 0, m.start()) - body.count(
                "}", 0, m.start())
            base = receiver.rstrip().rstrip(".->").strip()
            base_id = re.split(r"\.|->", base)[0].strip() if base else ""
            base_id = re.sub(r"\[[^\]]*\]", "", base_id)
            if name in ("unlock", "lock") and base_id in lock_vars:
                ops.append((m.start(), LockEvent(
                    kind="relock" if name == "lock" else "unlock",
                    line=line, var=base_id, depth=depth)))
                continue
            if name in CV_WAIT_NAMES:
                args = self._first_arg(body, m.end() - 1)
                # The CondVar wrapper takes the MutexLock guard, not the
                # mutex — map the guard variable back to its lock first.
                cv_mutex = var_to_lock.get(args)
                if cv_mutex is None and args:
                    cv_mutex = self.resolve_lock_expr(fn, args, m.start())
                ops.append((m.start(), LockEvent(
                    kind="cv_wait", line=line, depth=depth, callee=name,
                    cv_mutex=cv_mutex, raw=self._site(body, m.start()))))
                fn.direct_blocking = True
                continue
            resolved = self.resolve_call(fn, receiver, name, m.start())
            if resolved:
                fn.calls.append(resolved)
                ops.append((m.start(), LockEvent(
                    kind="call", line=line, depth=depth, callee=resolved,
                    raw=self._site(body, m.start()))))
            elif name in BLOCKING_NAMES:
                ops.append((m.start(), LockEvent(
                    kind="blocking", line=line, depth=depth, callee=name,
                    raw=self._site(body, m.start()))))
                fn.direct_blocking = True
        ops.sort(key=lambda p: p[0])
        return [e for _, e in ops]

    @staticmethod
    def _first_arg(body: str, open_paren: int) -> str:
        depth, j = 0, open_paren
        start = open_paren + 1
        while j < len(body):
            c = body[j]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    return body[start:j].split(",")[0].strip()
            j += 1
        return ""

    @staticmethod
    def _site(body: str, offset: int) -> str:
        line_start = body.rfind("\n", 0, offset) + 1
        line_end = body.find("\n", offset)
        if line_end < 0:
            line_end = len(body)
        return body[line_start:line_end].strip()

    # -- summaries ---------------------------------------------------------

    def _fixpoint(self) -> None:
        for fn in self.functions.values():
            fn.may_acquire = set(fn.direct_locks)
            fn.may_block = fn.direct_blocking
        changed = True
        while changed:
            changed = False
            for fn in self.functions.values():
                for callee in fn.calls:
                    target = self.functions.get(callee)
                    if target is None:
                        continue
                    if not target.may_acquire <= fn.may_acquire:
                        fn.may_acquire |= target.may_acquire
                        changed = True
                    if target.may_block and not fn.may_block:
                        fn.may_block = True
                        changed = True

    # -- held-set walking (shared by lock-order and blocking passes) -------

    def walk_held(self, fn: FunctionInfo):
        """Yields (event, held) pairs in source order, where `held` is the
        list of canonical locks actively held at that event (temporary
        unlock()/lock() windows excluded)."""
        active: list[dict] = []   # {lock, var, depth, engaged}
        for ev in self.events.get(fn.qualname, []):
            while active and ev.depth < active[-1]["depth"]:
                active.pop()
            # A '}' that closes the acquiring block drops the lock even
            # when the next event sits at the same depth in a sibling
            # block; depth alone cannot distinguish siblings, so scoped
            # locks at equal depth are released when a later acquisition
            # of the same variable name appears (re-declaration means the
            # previous scope closed).
            if ev.kind in ("acquire", "unresolved_lock"):
                active = [a for a in active
                          if not (a["var"] == ev.var
                                  and a["depth"] == ev.depth)]
            held = [a["lock"] for a in active if a["engaged"]]
            yield ev, held
            if ev.kind == "acquire":
                active.append({"lock": ev.lock, "var": ev.var,
                               "depth": ev.depth, "engaged": True})
            elif ev.kind == "unlock":
                for a in active:
                    if a["var"] == ev.var:
                        a["engaged"] = False
            elif ev.kind == "relock":
                for a in active:
                    if a["var"] == ev.var:
                        a["engaged"] = True

    # -- convenience -------------------------------------------------------

    def all_locks(self) -> dict[str, tuple[str, int]]:
        """Every registered mutex: canonical name -> (file, line)."""
        out = {}
        for infos in self.classes.values():
            for info in infos:
                for mu in info.mutex_fields:
                    out[self.canonical_lock(info, mu)] = (
                        info.file, info.mutex_lines.get(mu, 1))
        return out
