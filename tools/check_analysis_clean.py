#!/usr/bin/env python3
"""CI gate: the whole-program analyzer must pass clean over the real
tree, with the committed lock-order graph (docs/lock-order.dot) matching
the extraction, and must actually have analyzed a sane number of files —
an empty discovery (misconfigured export, wrong root) would otherwise
vacuously "pass".

Usage: check_analysis_clean.py [--root R] [--compile-commands CC]
                               [--min-files N]
Exit 0 when clean, 1 with per-violation messages otherwise.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=os.getcwd())
    ap.add_argument("--compile-commands", default=None)
    ap.add_argument("--min-files", type=int, default=60,
                    help="fail when fewer files were analyzed (guards "
                    "against vacuous discovery; the tree has ~100)")
    args = ap.parse_args()

    root = os.path.abspath(args.root)
    driver = os.path.join(root, "tools", "analysis", "pjsched_analysis.py")
    golden = os.path.join(root, "docs", "lock-order.dot")
    cmd = [sys.executable, driver, "--root", root, "--check-dot", golden]
    if args.compile_commands:
        cmd += ["--compile-commands", args.compile_commands]

    violations = []
    if not os.path.isfile(golden):
        violations.append(
            "docs/lock-order.dot is missing — run "
            "tools/analysis/regen_lock_order.sh and commit the result")
    proc = subprocess.run(cmd, capture_output=True, text=True, check=False)
    if proc.returncode != 0:
        violations.append(
            f"pjsched_analysis exited {proc.returncode}:\n"
            f"{proc.stdout}{proc.stderr}".rstrip())
    else:
        m = re.search(r"OK \((\d+) files clean", proc.stdout)
        if not m:
            violations.append(
                f"could not parse analyzer output:\n{proc.stdout}")
        elif int(m.group(1)) < args.min_files:
            violations.append(
                f"analyzer saw only {m.group(1)} files "
                f"(< {args.min_files}) — discovery is broken, the clean "
                "result is vacuous")

    if violations:
        for v in violations:
            print(f"check_analysis_clean: VIOLATION: {v}")
        return 1
    print("check_analysis_clean: OK —", proc.stdout.strip())
    return 0


if __name__ == "__main__":
    sys.exit(main())
