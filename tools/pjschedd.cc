// pjschedd — the overload-hardened scheduling daemon.
//
// Ingests a newline-delimited job feed (see src/service/record.h) over a
// Unix-domain socket and/or a loopback TCP socket, and/or replays an
// instance file; routes every record through per-tenant weighted-fair
// admission and the overload degradation ladder; executes on the
// work-stealing ThreadPool; prints a metrics snapshot on exit (and
// periodically with --status-interval-ms).
//
//   pjschedd --unix=/tmp/pjsched.sock --workers=4 --duration-ms=60000
//   pjschedd --tcp=7133 --capacity=8192 --shards=16
//            --weights=gold=4,bronze=0.5
//   pjschedd --feed=trace.inst --feed-tenant=replay --time-scale=0.001
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/runtime/replayer.h"
#include "src/service/daemon.h"

namespace {

using pjsched::service::Daemon;
using pjsched::service::DaemonConfig;

struct Options {
  DaemonConfig config;
  std::string feed_file;
  std::string feed_tenant = "replay";
  double time_scale = 0.0;
  std::uint64_t duration_ms = 0;  // 0 = run until the feed ends (or forever)
  std::uint64_t status_interval_ms = 0;
  std::string metrics_out;  // write machine-readable metrics here on exit
  std::vector<std::pair<std::string, double>> weights;
};

bool parse_flag(const std::string& arg, const std::string& name,
                std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [flags]\n"
      << "  --unix=PATH             listen on a unix-domain socket\n"
      << "  --tcp=PORT              listen on loopback TCP (0 = ephemeral)\n"
      << "  --workers=N             pool workers (default 4)\n"
      << "  --capacity=N            router capacity in records (default 4096)\n"
      << "  --shards=N              router shards (default 8)\n"
      << "  --weights=T=W,T=W,...   per-tenant fair-share weights\n"
      << "  --feed=FILE             replay an instance file as the feed\n"
      << "  --feed-tenant=NAME      tenant for --feed records\n"
      << "  --time-scale=S          seconds per instance time unit (0 = burst)\n"
      << "  --ns-per-unit=N         CPU ns rendered per work unit\n"
      << "  --duration-ms=N         run this long, then drain and exit\n"
      << "  --status-interval-ms=N  print metrics periodically\n"
      << "  --read-deadline-ms=N    idle-connection deadline (default 5000)\n"
      << "  --io-threads=N          sharded io event loops (0 = auto)\n"
      << "  --max-connections=N     open-connection bound (default 64)\n"
      << "  --metrics-out=FILE      write machine-readable metrics on exit\n";
  return 2;
}

bool parse_args(int argc, char** argv, Options* opts) {
  opts->config.pool.workers = 4;
  opts->config.pool.watchdog_interval = std::chrono::milliseconds(100);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    try {
      if (parse_flag(arg, "unix", &v)) {
        opts->config.unix_socket_path = v;
      } else if (parse_flag(arg, "tcp", &v)) {
        opts->config.tcp_port = std::stoi(v);
      } else if (parse_flag(arg, "workers", &v)) {
        opts->config.pool.workers = static_cast<unsigned>(std::stoul(v));
      } else if (parse_flag(arg, "capacity", &v)) {
        opts->config.router.capacity = std::stoul(v);
      } else if (parse_flag(arg, "shards", &v)) {
        opts->config.router.shards = std::stoul(v);
      } else if (parse_flag(arg, "ns-per-unit", &v)) {
        opts->config.ns_per_unit = std::stod(v);
      } else if (parse_flag(arg, "feed", &v)) {
        opts->feed_file = v;
      } else if (parse_flag(arg, "feed-tenant", &v)) {
        opts->feed_tenant = v;
      } else if (parse_flag(arg, "time-scale", &v)) {
        opts->time_scale = std::stod(v);
      } else if (parse_flag(arg, "duration-ms", &v)) {
        opts->duration_ms = std::stoull(v);
      } else if (parse_flag(arg, "status-interval-ms", &v)) {
        opts->status_interval_ms = std::stoull(v);
      } else if (parse_flag(arg, "read-deadline-ms", &v)) {
        opts->config.read_deadline = std::chrono::milliseconds(std::stoull(v));
      } else if (parse_flag(arg, "io-threads", &v)) {
        opts->config.io_threads = std::stoul(v);
      } else if (parse_flag(arg, "max-connections", &v)) {
        opts->config.max_connections = std::stoul(v);
      } else if (parse_flag(arg, "metrics-out", &v)) {
        opts->metrics_out = v;
      } else if (parse_flag(arg, "weights", &v)) {
        std::size_t pos = 0;
        while (pos < v.size()) {
          const std::size_t comma = v.find(',', pos);
          const std::string item =
              v.substr(pos, comma == std::string::npos ? comma : comma - pos);
          const std::size_t eq = item.find('=');
          if (eq == std::string::npos || eq == 0) return false;
          opts->weights.emplace_back(item.substr(0, eq),
                                     std::stod(item.substr(eq + 1)));
          if (comma == std::string::npos) break;
          pos = comma + 1;
        }
      } else {
        return false;
      }
    } catch (const std::exception&) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, &opts)) return usage(argv[0]);
  if (opts.config.unix_socket_path.empty() && opts.config.tcp_port < 0 &&
      opts.feed_file.empty()) {
    std::cerr << "pjschedd: no feed configured (need --unix, --tcp, or "
                 "--feed)\n";
    return usage(argv[0]);
  }

  try {
    Daemon daemon(opts.config);
    for (const auto& [tenant, weight] : opts.weights)
      daemon.set_weight(tenant, weight);
    // Flushed eagerly: smoke scripts poll stdout for the ephemeral port.
    if (daemon.tcp_port() >= 0)
      std::cout << "pjschedd: listening on tcp 127.0.0.1:" << daemon.tcp_port()
                << std::endl;
    if (!opts.config.unix_socket_path.empty())
      std::cout << "pjschedd: listening on unix "
                << opts.config.unix_socket_path << std::endl;

    if (!opts.feed_file.empty()) {
      const std::size_t n = daemon.feed_replay_file(
          opts.feed_file, opts.feed_tenant, opts.time_scale);
      std::cout << "pjschedd: replayed " << n << " records from "
                << opts.feed_file << "\n";
    }

    const auto started = pjsched::service::Clock::now();
    auto next_status =
        started + std::chrono::milliseconds(opts.status_interval_ms);
    const bool bounded =
        opts.duration_ms > 0 || (!opts.feed_file.empty() &&
                                 opts.config.unix_socket_path.empty() &&
                                 opts.config.tcp_port < 0);
    for (;;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      const auto now = pjsched::service::Clock::now();
      if (opts.status_interval_ms > 0 && now >= next_status) {
        std::cout << daemon.metrics_text();
        next_status = now + std::chrono::milliseconds(opts.status_interval_ms);
      }
      if (opts.duration_ms > 0 &&
          now - started >= std::chrono::milliseconds(opts.duration_ms))
        break;
      if (bounded && opts.duration_ms == 0) break;  // replay-only: one pass
    }

    const bool drained = daemon.drain(std::chrono::milliseconds(30000));
    std::cout << daemon.metrics_text();
    if (!opts.metrics_out.empty()) {
      std::ofstream out(opts.metrics_out);
      out << daemon.metrics_machine();
    }
    if (!drained) {
      std::cerr << "pjschedd: drain timed out\n";
      return 1;
    }
  } catch (const pjsched::runtime::ReplayFileError& e) {
    std::cerr << "pjschedd: " << pjsched::runtime::to_string(e.kind())
              << " replay feed error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "pjschedd: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
