#!/usr/bin/env python3
"""Distills google-benchmark JSON output into the BENCH_sim.json snapshot.

Usage:
    make_bench_baseline.py <sim-json> <output-json>
        [--runtime <runtime-json>] [--before <runtime-before-json>]
        [--service <service-json>] [--scaling <scaling-json>]
        [--ingest <ingest-json>]

<sim-json> is what `bench_sim_engine --benchmark_filter=Baseline
--benchmark_out=<file> --benchmark_out_format=json` writes; the optional
--runtime file is the matching `bench_runtime --benchmark_filter=Runtime`
output, distilled into a `runtime` section, --before is a committed raw
snapshot of the same suite from before the hot-path work (tasks/sec
speedups are reported against it), and --service is the matching
`bench_service --benchmark_filter=Service` output, distilled into a
`service` section (ingest jobs/sec at each degradation-ladder rung), and
--scaling is the `bench_sim_engine --benchmark_filter=Scaling` output,
distilled into a `scaling` section (the 10^4 -> 10^6-job decade curves:
jobs/sec, peak RSS, allocations/job per decade and engine, streamed vs
materialized, plus the materialized/streamed RSS ratio — the asymptotic
memory gate) and a `bounds` section (the BM_ScalingBounds* decade curves
for the one-pass streamed lower-bound pipeline — held to the same O(live
jobs) RSS budget, with a loud warning on breach — plus the PackedDag vs
ReadyTracker inner-loop speedup from BM_BaselinePackedDagInnerLoop*),
and --ingest is the `bench_ingest --benchmark_filter=Ingest`
output, distilled into an `ingest` section (parse+admit jobs/sec with the
alloc-probe allocations/job, the per-line comparison, and the socket-path
io-threads x connections grid with its single-loop -> sharded scaling
ratio).  The output is the repo's
perf-trajectory file (see docs/simulation-model.md, "Performance model").

The snapshot is loudly annotated — a `warnings` array in the output, and
the same text on stderr — when it was produced by an unoptimized build
(Debug or unspecified; optimization changes per-task costs by an order of
magnitude) or on a single-CPU host (parallel speedups then measure
scheduling overhead, not parallelism: a multi-trial "speedup" near 1.0x is
the expected artifact, not a regression).  Stdlib only — no third-party
dependencies.
"""
import json
import re
import sys

_TIME_UNIT_SECONDS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}

# CMake build types that compile with optimization on.
_OPTIMIZED_BUILD_TYPES = {"release", "relwithdebinfo", "minsizerel"}


def _wall_seconds(bench):
    return bench["real_time"] * _TIME_UNIT_SECONDS[bench.get("time_unit", "ns")]


def _load_report(path):
    with open(path) as f:
        report = json.load(f)
    by_name = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        # UseRealTime() benchmarks are reported as "<name>/real_time".
        name = bench["name"]
        if name.endswith("/real_time"):
            name = name[: -len("/real_time")]
        by_name[name] = bench
    return report.get("context", {}), by_name


def _pick(by_name, name, path):
    if name not in by_name:
        sys.exit(f"make_bench_baseline.py: benchmark '{name}' missing "
                 f"from {path}")
    return by_name[name]


def _build_type(context):
    """Our code's build type: prefer the pjsched_build_type custom context
    (bench/gbench_main.h) over library_build_type, which describes how the
    *system libbenchmark* was compiled and is 'debug' for many distro
    packages regardless of how our code was built."""
    return context.get("pjsched_build_type") or context.get(
        "library_build_type") or "unknown"


def _runtime_section(runtime_path, before_path, warnings):
    _, by_name = _load_report(runtime_path)
    names = {
        "fib": "BM_RuntimeFib/20",
        "parallel_for_fine": "BM_RuntimeParallelForFine/4096",
        "bing_dag": "BM_RuntimeBingDag",
    }

    def distill(by, path):
        out = {}
        for key, name in names.items():
            bench = _pick(by, name, path)
            out[key] = {
                "tasks_per_sec": bench["items_per_second"],
                "steal_success_rate": bench.get("steal_success_rate"),
                "wall_seconds": _wall_seconds(bench),
            }
        return out

    section = {
        "workloads": {
            "fib": "fork-join fib(20), sequential cutoff 8",
            "parallel_for_fine": "parallel_for over 4096 indices, grain 1 "
                                 "(per-task overhead dominates by design)",
            "bing_dag": "16 jobs x (24 children x 8 grandchildren) "
                        "near-empty spawn trees",
        },
        "after": distill(by_name, runtime_path),
    }
    if before_path is not None:
        try:
            _, before_by = _load_report(before_path)
        except OSError as e:
            warnings.append(f"--before snapshot unreadable ({e}); "
                            "runtime speedups omitted")
            return section
        section["before"] = distill(before_by, before_path)
        section["before_source"] = before_path
        section["speedup_vs_before"] = {
            key: section["after"][key]["tasks_per_sec"] /
                 section["before"][key]["tasks_per_sec"]
            for key in names
        }
    return section


def _service_section(service_path):
    _, by_name = _load_report(service_path)
    rungs = {
        "normal": "BM_ServiceIngest/0",
        "shed_new": "BM_ServiceIngest/1",
        "shed_queued": "BM_ServiceIngest/2",
        "reject_tenant": "BM_ServiceIngest/3",
    }
    return {
        "workload": "TenantRouter push+pop pairs, 1000 tenants, 8 shards, "
                    "capacity 8192, ladder frozen at each rung "
                    "(bench/bench_service.cc)",
        "ingest_jobs_per_sec": {
            rung: _pick(by_name, name, service_path)["items_per_second"]
            for rung, name in rungs.items()
        },
        "shed_at_door_jobs_per_sec":
            _pick(by_name, "BM_ServiceShedAtDoor",
                  service_path)["items_per_second"],
        "parse_records_per_sec":
            _pick(by_name, "BM_ServiceParseRecord",
                  service_path)["items_per_second"],
    }


# Streamed peak RSS at the largest decade may exceed the smallest decade's
# by at most this factor before the snapshot is loudly flagged: a truly
# O(live jobs) run's footprint is decade-independent, so growth beyond
# allocator noise means per-job state is being retained.
_SCALING_RSS_GROWTH_LIMIT = 4.0

_SCALING_NAME = re.compile(
    r"^BM_Scaling(Event|Step)Engine(Streamed|Materialized)/(\d+)"
    r"(?:/iterations:\d+)?$")


def _scaling_section(scaling_path, warnings):
    _, by_name = _load_report(scaling_path)
    # engines["event_engine"]["streamed"][jobs] = {...}
    engines = {}
    for name, bench in by_name.items():
        m = _SCALING_NAME.match(name)
        if m is None:
            continue
        engine = "event_engine" if m.group(1) == "Event" else "step_engine"
        mode = m.group(2).lower()
        jobs = int(m.group(3))
        point = {
            "jobs_per_sec": bench.get("items_per_second"),
            "peak_rss_bytes": bench.get("peak_rss_bytes"),
            "peak_live_jobs": bench.get("peak_live_jobs"),
            "wall_seconds": _wall_seconds(bench),
        }
        if "allocs_per_job" in bench:
            point["allocs_per_job"] = bench["allocs_per_job"]
        if "error_occurred" in bench and bench["error_occurred"]:
            warnings.append(
                f"SCALING BENCH FAILED: {name}: "
                f"{bench.get('error_message', 'unknown error')}")
        engines.setdefault(engine, {}).setdefault(mode, {})[jobs] = point
    if not engines:
        warnings.append(f"--scaling snapshot {scaling_path} contained no "
                        "BM_Scaling* benchmarks; scaling section empty")
        return {}

    section = {
        "workload": "streamed bing jobs @ 1000 qps, m=16 s=1 (u ~ 0.69), "
                    "FIFO (event engine) / admit-first (step engine); "
                    "peak_rss via VmHWM, reset per point "
                    "(bench/bench_sim_engine.cc BM_Scaling*)",
        "decades_jobs": sorted({jobs
                                for modes in engines.values()
                                for points in modes.values()
                                for jobs in points}),
    }
    for engine, modes in sorted(engines.items()):
        entry = {mode: {str(jobs): point
                        for jobs, point in sorted(points.items())}
                 for mode, points in sorted(modes.items())}
        streamed = modes.get("streamed", {})
        materialized = modes.get("materialized", {})
        common = sorted(set(streamed) & set(materialized))
        ratios = {}
        for jobs in common:
            srss = streamed[jobs].get("peak_rss_bytes")
            mrss = materialized[jobs].get("peak_rss_bytes")
            if srss and mrss:
                ratios[str(jobs)] = mrss / srss
        if ratios:
            entry["rss_ratio_materialized_over_streamed"] = ratios
        # The O(live jobs) budget: streamed footprint must not grow with the
        # decade.  (The ratio check above is headroom; this is the gate.)
        if len(streamed) >= 2:
            decades = sorted(streamed)
            lo, hi = streamed[decades[0]], streamed[decades[-1]]
            if lo.get("peak_rss_bytes") and hi.get("peak_rss_bytes"):
                growth = hi["peak_rss_bytes"] / lo["peak_rss_bytes"]
                entry["streamed_rss_growth_smallest_to_largest"] = growth
                if growth > _SCALING_RSS_GROWTH_LIMIT:
                    warnings.append(
                        f"O(live jobs) BUDGET EXCEEDED ({engine}): streamed "
                        f"peak RSS grew {growth:.1f}x from "
                        f"{decades[0]:,} to {decades[-1]:,} jobs "
                        f"(limit {_SCALING_RSS_GROWTH_LIMIT:.1f}x) — "
                        "resident state is not O(live jobs); see "
                        "bench/bench_sim_engine.cc BM_Scaling*.")
        section[engine] = entry
    return section


_BOUNDS_NAME = re.compile(
    r"^BM_ScalingBounds(Streamed|Materialized)/(\d+)(?:/iterations:\d+)?$")


def _bounds_section(scaling_path, sim_by_name, warnings):
    """The streamed lower-bound pipeline + PackedDag inner-loop snapshot.

    Decade curves come from the --scaling json (BM_ScalingBounds*); the
    PackedDag-vs-ReadyTracker micro-bench pair comes from the main sim json
    (BM_BaselinePackedDagInnerLoop*).  The streamed bound pass holds O(1)
    state — not even O(live jobs) — so its peak RSS is held to the same
    flatness budget as the engines, with the same loud warning on breach.
    """
    _, by_name = _load_report(scaling_path)
    modes = {}  # mode -> {jobs: point}
    for name, bench in by_name.items():
        m = _BOUNDS_NAME.match(name)
        if m is None:
            continue
        point = {
            "jobs_per_sec": bench.get("items_per_second"),
            "peak_rss_bytes": bench.get("peak_rss_bytes"),
            "wall_seconds": _wall_seconds(bench),
        }
        if "allocs_per_job" in bench:
            point["allocs_per_job"] = bench["allocs_per_job"]
        if bench.get("error_occurred"):
            warnings.append(
                f"BOUNDS BENCH FAILED: {name}: "
                f"{bench.get('error_message', 'unknown error')}")
        modes.setdefault(m.group(1).lower(), {})[int(m.group(2))] = point

    section = {
        "workload": "streamed bing jobs @ 1000 qps, m=16, one-pass "
                    "stream_lower_bounds vs materialized "
                    "combined/weighted_combined on generate_instance "
                    "(bench/bench_sim_engine.cc BM_ScalingBounds*)",
    }
    for mode, points in sorted(modes.items()):
        section[mode] = {str(jobs): point
                         for jobs, point in sorted(points.items())}
    streamed = modes.get("streamed", {})
    materialized = modes.get("materialized", {})
    ratios = {}
    for jobs in sorted(set(streamed) & set(materialized)):
        srss = streamed[jobs].get("peak_rss_bytes")
        mrss = materialized[jobs].get("peak_rss_bytes")
        if srss and mrss:
            ratios[str(jobs)] = mrss / srss
    if ratios:
        section["rss_ratio_materialized_over_streamed"] = ratios
    if len(streamed) >= 2:
        decades = sorted(streamed)
        lo, hi = streamed[decades[0]], streamed[decades[-1]]
        if lo.get("peak_rss_bytes") and hi.get("peak_rss_bytes"):
            growth = hi["peak_rss_bytes"] / lo["peak_rss_bytes"]
            section["streamed_rss_growth_smallest_to_largest"] = growth
            if growth > _SCALING_RSS_GROWTH_LIMIT:
                warnings.append(
                    f"O(live jobs) BUDGET EXCEEDED (bounds): streamed "
                    f"lower-bound peak RSS grew {growth:.1f}x from "
                    f"{decades[0]:,} to {decades[-1]:,} jobs (limit "
                    f"{_SCALING_RSS_GROWTH_LIMIT:.1f}x) — the one-pass "
                    "bound pipeline is supposed to hold O(1) resident "
                    "state; see bench/bench_sim_engine.cc "
                    "BM_ScalingBoundsStreamed.")
    if not modes:
        warnings.append(f"--scaling snapshot {scaling_path} contained no "
                        "BM_ScalingBounds* benchmarks; bounds curves empty")

    packed = sim_by_name.get("BM_BaselinePackedDagInnerLoopPacked")
    tracker = sim_by_name.get("BM_BaselinePackedDagInnerLoopTracker")
    if packed is not None and tracker is not None:
        section["packed_dag_inner_loop"] = {
            "workload": "frontier drain (claim head + complete) over 256 "
                        "generated bing DAGs per iteration, one recycled "
                        "tracker object (the arena slot-reuse pattern)",
            "packed_nodes_per_sec": packed["items_per_second"],
            "tracker_nodes_per_sec": tracker["items_per_second"],
            "speedup": packed["items_per_second"] /
                       tracker["items_per_second"],
        }
    else:
        warnings.append("BM_BaselinePackedDagInnerLoop{Packed,Tracker} "
                        "missing from the sim snapshot; packed-DAG "
                        "speedup omitted")
    return section


# The ingest hot path may allocate at most this much per job (the alloc
# probe over parse_batch + admit_batch + pops); anything above means a
# per-line or per-field allocation crept back in.
_INGEST_ALLOCS_PER_JOB_LIMIT = 1.0

# Expected single-loop -> sharded jobs/sec scaling on a real multi-core
# host (the ISSUE-8 acceptance floor); meaningless on one CPU.
_INGEST_SCALING_FLOOR = 3.0

_INGEST_SOCKET_NAME = re.compile(
    r"^BM_IngestSocket/(\d+)/(\d+)(?:/manual_time)?$")


def _ingest_section(ingest_path, warnings, num_cpus):
    _, by_name = _load_report(ingest_path)
    parse_admit = _pick(by_name, "BM_IngestParseAdmit", ingest_path)
    per_line = _pick(by_name, "BM_IngestPerLine", ingest_path)

    section = {
        "workload": "4096-record feed chunks, 16 tenants, 8 shards, "
                    "capacity 65536 (bench/bench_ingest.cc); socket grid "
                    "is a live Daemon fed over loopback TCP, manual-timed "
                    "first-byte -> last-record-counted",
        "parse_admit_jobs_per_sec": parse_admit["items_per_second"],
        "per_line_jobs_per_sec": per_line["items_per_second"],
        "batch_over_per_line":
            parse_admit["items_per_second"] / per_line["items_per_second"],
    }
    allocs = parse_admit.get("allocs_per_job")
    if allocs is not None:
        section["allocs_per_job"] = allocs
        if allocs > _INGEST_ALLOCS_PER_JOB_LIMIT:
            warnings.append(
                f"INGEST ALLOC BUDGET EXCEEDED: {allocs:.2f} allocs/job on "
                f"the parse+admit path (limit "
                f"{_INGEST_ALLOCS_PER_JOB_LIMIT:.0f}) — a per-line or "
                "per-field allocation crept back into the zero-copy path; "
                "see bench/bench_ingest.cc BM_IngestParseAdmit.")

    # socket[io_threads][connections] = jobs/sec
    socket = {}
    for name, bench in by_name.items():
        m = _INGEST_SOCKET_NAME.match(name)
        if m is None:
            continue
        io_threads, connections = int(m.group(1)), int(m.group(2))
        socket.setdefault(io_threads, {})[connections] = \
            bench["items_per_second"]
    if socket:
        section["socket_jobs_per_sec"] = {
            str(io): {str(c): jps for c, jps in sorted(points.items())}
            for io, points in sorted(socket.items())
        }
        # Single-loop -> sharded scaling at matched connection counts: the
        # best sharded point over the 1-io-thread point with the same fan-in.
        best_ratio = None
        for io, points in socket.items():
            if io <= 1:
                continue
            for conns, jps in points.items():
                base = socket.get(1, {}).get(conns)
                if not base:
                    continue
                ratio = jps / base
                if best_ratio is None or ratio > best_ratio:
                    best_ratio = ratio
        if best_ratio is not None:
            section["sharded_over_single_loop"] = best_ratio
            if num_cpus == 1:
                section["sharded_over_single_loop_caveat"] = (
                    "measured on a single-CPU host: io shards serialize on "
                    "one core, so a ratio near 1.0x is the expected "
                    "artifact, not an ingest regression — refresh on "
                    "multi-core hardware for the real scaling curve")
            elif best_ratio < _INGEST_SCALING_FLOOR:
                warnings.append(
                    f"INGEST SCALING BELOW FLOOR: sharded io loops reach "
                    f"only {best_ratio:.2f}x the single-loop jobs/sec on a "
                    f"{num_cpus}-cpu host (floor "
                    f"{_INGEST_SCALING_FLOOR:.0f}x); see "
                    "bench/bench_ingest.cc BM_IngestSocket.")
    return section


def main(argv):
    args = list(argv[1:])
    runtime_path = before_path = service_path = scaling_path = None
    ingest_path = None
    if "--before" in args:
        i = args.index("--before")
        before_path = args[i + 1]
        del args[i:i + 2]
    if "--runtime" in args:
        i = args.index("--runtime")
        runtime_path = args[i + 1]
        del args[i:i + 2]
    if "--service" in args:
        i = args.index("--service")
        service_path = args[i + 1]
        del args[i:i + 2]
    if "--scaling" in args:
        i = args.index("--scaling")
        scaling_path = args[i + 1]
        del args[i:i + 2]
    if "--ingest" in args:
        i = args.index("--ingest")
        ingest_path = args[i + 1]
        del args[i:i + 2]
    if len(args) != 2:
        sys.exit(__doc__)
    sim_path, out_path = args

    context, by_name = _load_report(sim_path)

    fast = _pick(by_name, "BM_BaselineStepEngineFast", sim_path)
    exact = _pick(by_name, "BM_BaselineStepEngineExact", sim_path)
    ev_fast = _pick(by_name, "BM_BaselineEventEngineFast", sim_path)
    ev_exact = _pick(by_name, "BM_BaselineEventEngineExact", sim_path)
    seq = _pick(by_name, "BM_BaselineTrialsSequential", sim_path)
    par = _pick(by_name, "BM_BaselineTrialsParallel", sim_path)

    warnings = []
    build_type = _build_type(context)
    num_cpus = context.get("num_cpus")
    if build_type.lower() not in _OPTIMIZED_BUILD_TYPES:
        warnings.append(
            f"UNOPTIMIZED BUILD ({build_type}): absolute throughput is "
            "meaningless and not comparable across snapshots; refresh from "
            "a Release build (cmake -DCMAKE_BUILD_TYPE=Release).")
    if num_cpus == 1:
        warnings.append(
            "SINGLE-CPU HOST: parallel speedups measure scheduling "
            "overhead, not parallelism — a multi-trial speedup near 1.0x "
            "is the expected artifact on this host, not a regression; "
            "refresh on multi-core hardware for meaningful speedups.")

    out = {
        "schema": "pjsched-bench-sim/2",
        "source": "bench_sim_engine --benchmark_filter=Baseline + "
                  "bench_runtime --benchmark_filter=Runtime "
                  "(refresh: cmake --build build --target bench_baseline)",
        "host": {
            "num_cpus": num_cpus,
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "date": context.get("date"),
            "build_type": build_type,
        },
        "warnings": warnings,
        "step_engine": {
            "workload": "48 jobs x parallel_for(32 grains x 2000 units), "
                        "m=16 s=1 k=4 (coarse-node, all-busy)",
            "fast_steps_per_sec": fast["items_per_second"],
            "exact_steps_per_sec": exact["items_per_second"],
            "speedup": fast["items_per_second"] / exact["items_per_second"],
            "fast_wall_seconds": _wall_seconds(fast),
            "exact_wall_seconds": _wall_seconds(exact),
        },
        "event_engine": {
            "workload": "2000 bing jobs @ 4000 qps (backlogged), m=16 s=1, "
                        "FIFO (fast = virtual-work-clock path, exact = "
                        "per-slice reference; results bit-identical)",
            "fast_decisions_per_sec": ev_fast["items_per_second"],
            "exact_decisions_per_sec": ev_exact["items_per_second"],
            "speedup": ev_fast["items_per_second"] /
                       ev_exact["items_per_second"],
            "fast_wall_seconds": _wall_seconds(ev_fast),
            "exact_wall_seconds": _wall_seconds(ev_exact),
        },
        "multi_trial": {
            "workload": "16 trials x 300 bing jobs, m=8, admit-first "
                        "(parallel = in-repo thread pool, hardware threads)",
            "sequential_trials_per_sec": seq["items_per_second"],
            "parallel_trials_per_sec": par["items_per_second"],
            "speedup": par["items_per_second"] / seq["items_per_second"],
            "sequential_wall_seconds": _wall_seconds(seq),
            "parallel_wall_seconds": _wall_seconds(par),
        },
        "raw": {
            name: {
                "real_time_seconds": _wall_seconds(bench),
                "items_per_second": bench.get("items_per_second"),
            }
            for name, bench in sorted(by_name.items())
        },
    }
    if runtime_path is not None:
        out["runtime"] = _runtime_section(runtime_path, before_path, warnings)
    if service_path is not None:
        out["service"] = _service_section(service_path)
    if scaling_path is not None:
        out["scaling"] = _scaling_section(scaling_path, warnings)
        out["bounds"] = _bounds_section(scaling_path, by_name, warnings)
    if ingest_path is not None:
        out["ingest"] = _ingest_section(ingest_path, warnings, num_cpus)

    with open(out_path, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    for w in warnings:
        print(f"make_bench_baseline.py: WARNING: {w}", file=sys.stderr)
    line = (f"wrote {out_path}: step-engine speedup "
            f"{out['step_engine']['speedup']:.1f}x, event-engine speedup "
            f"{out['event_engine']['speedup']:.1f}x, multi-trial speedup "
            f"{out['multi_trial']['speedup']:.2f}x")
    if "runtime" in out and "speedup_vs_before" in out["runtime"]:
        pf = out["runtime"]["speedup_vs_before"]["parallel_for_fine"]
        line += f", runtime fine-grain {pf:.2f}x vs before"
    if "service" in out:
        normal = out["service"]["ingest_jobs_per_sec"]["normal"]
        line += f", service ingest {normal:,.0f} jobs/s (normal rung)"
    if "ingest" in out:
        ing = out["ingest"]
        line += f", ingest {ing['parse_admit_jobs_per_sec']:,.0f} jobs/s"
        if "allocs_per_job" in ing:
            line += f" ({ing['allocs_per_job']:.2f} allocs/job)"
    if out.get("bounds", {}).get("packed_dag_inner_loop"):
        pd = out["bounds"]["packed_dag_inner_loop"]["speedup"]
        line += f", packed-DAG inner loop {pd:.2f}x vs tracker"
    if out.get("scaling", {}).get("event_engine", {}).get(
            "rss_ratio_materialized_over_streamed"):
        ratios = out["scaling"]["event_engine"][
            "rss_ratio_materialized_over_streamed"]
        top = max(ratios, key=int)
        line += (f", scaling RSS headroom {ratios[top]:.0f}x at "
                 f"{int(top):,} jobs")
    print(line + f" ({num_cpus} cpus, {build_type})")


if __name__ == "__main__":
    main(sys.argv)
