#!/usr/bin/env python3
"""Distills google-benchmark JSON output into the BENCH_sim.json snapshot.

Usage:
    make_bench_baseline.py <benchmark-json> <output-json>

The input is what `bench_sim_engine --benchmark_filter=Baseline
--benchmark_out=<file> --benchmark_out_format=json` writes; the output is
the repo's perf-trajectory file (see docs/simulation-model.md,
"Performance model").  Stdlib only — no third-party dependencies.
"""
import json
import sys

_TIME_UNIT_SECONDS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def _wall_seconds(bench):
    return bench["real_time"] * _TIME_UNIT_SECONDS[bench.get("time_unit", "ns")]


def main(argv):
    if len(argv) != 3:
        sys.exit(__doc__)
    with open(argv[1]) as f:
        report = json.load(f)

    by_name = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        # UseRealTime() benchmarks are reported as "<name>/real_time".
        name = bench["name"]
        if name.endswith("/real_time"):
            name = name[: -len("/real_time")]
        by_name[name] = bench

    def pick(name):
        if name not in by_name:
            sys.exit(f"make_bench_baseline.py: benchmark '{name}' missing "
                     f"from {argv[1]} (ran with --benchmark_filter=Baseline?)")
        return by_name[name]

    fast = pick("BM_BaselineStepEngineFast")
    exact = pick("BM_BaselineStepEngineExact")
    seq = pick("BM_BaselineTrialsSequential")
    par = pick("BM_BaselineTrialsParallel")

    context = report.get("context", {})
    out = {
        "schema": "pjsched-bench-sim/1",
        "source": "bench_sim_engine --benchmark_filter=Baseline "
                  "(refresh: cmake --build build --target bench_baseline)",
        "host": {
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "date": context.get("date"),
            "build_type": context.get("library_build_type"),
        },
        "step_engine": {
            "workload": "48 jobs x parallel_for(32 grains x 2000 units), "
                        "m=16 s=1 k=4 (coarse-node, all-busy)",
            "fast_steps_per_sec": fast["items_per_second"],
            "exact_steps_per_sec": exact["items_per_second"],
            "speedup": fast["items_per_second"] / exact["items_per_second"],
            "fast_wall_seconds": _wall_seconds(fast),
            "exact_wall_seconds": _wall_seconds(exact),
        },
        "multi_trial": {
            "workload": "16 trials x 300 bing jobs, m=8, admit-first "
                        "(parallel = in-repo thread pool, hardware threads)",
            "sequential_trials_per_sec": seq["items_per_second"],
            "parallel_trials_per_sec": par["items_per_second"],
            "speedup": par["items_per_second"] / seq["items_per_second"],
            "sequential_wall_seconds": _wall_seconds(seq),
            "parallel_wall_seconds": _wall_seconds(par),
        },
        "raw": {
            name: {
                "real_time_seconds": _wall_seconds(bench),
                "items_per_second": bench.get("items_per_second"),
            }
            for name, bench in sorted(by_name.items())
        },
    }

    with open(argv[2], "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {argv[2]}: step-engine speedup "
          f"{out['step_engine']['speedup']:.1f}x, multi-trial speedup "
          f"{out['multi_trial']['speedup']:.2f}x "
          f"({out['host']['num_cpus']} cpus)")


if __name__ == "__main__":
    main(sys.argv)
