#!/usr/bin/env python3
"""Plot a Figure-2-style CSV produced by the bench harness.

Usage:
    build/bench/bench_fig2_bing --csv > bing.csv
    python3 tools/plot_fig2.py bing.csv [out.png]

Draws one line per scheduler: max flow time (seconds) vs QPS — the exact
presentation of the paper's Figure 2.  Requires matplotlib.
"""
import csv
import sys
from collections import defaultdict


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = sys.argv[1]
    out = sys.argv[2] if len(sys.argv) > 2 else None

    series = defaultdict(list)  # scheduler -> [(qps, max_flow_sec)]
    workload = "?"
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            workload = row["workload"]
            series[row["scheduler"]].append(
                (float(row["qps"]), float(row["max_flow_ms"]) / 1000.0)
            )

    try:
        import matplotlib

        if out:
            matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not installed; printing the series instead:\n")
        for name, pts in sorted(series.items()):
            print(f"{name}:")
            for qps, flow in sorted(pts):
                print(f"  QPS {qps:7.0f}  max flow {flow:.4f} s")
        return 0

    fig, ax = plt.subplots(figsize=(5, 4))
    markers = {"opt-lower-bound": "o", "steal-16-first": "s",
               "admit-first": "^", "fifo": "d"}
    for name, pts in sorted(series.items()):
        pts.sort()
        ax.plot([q for q, _ in pts], [v for _, v in pts],
                marker=markers.get(name, "x"), label=name)
    ax.set_xlabel("QPS")
    ax.set_ylabel("Max flow time (sec)")
    ax.set_title(f"{workload} workload")
    ax.legend()
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    if out:
        fig.savefig(out, dpi=150)
        print(f"wrote {out}")
    else:
        plt.show()
    return 0


if __name__ == "__main__":
    sys.exit(main())
