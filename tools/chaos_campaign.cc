// chaos_campaign — seeded fault campaigns against the scheduling daemon,
// with invariant assertions after every trial.
//
// Each trial runs the SAME workload twice:
//
//   baseline  a well-behaved tenant ("nice") paces records into a healthy
//             daemon; its max flow time is the trial's reference p100;
//   chaos     the same nice tenant runs while (a) an adversarial tenant
//             floods thousands of records, (b) the pool executes under a
//             seeded FaultPlan (task failures, a stalled worker, admission
//             delay), and (c) a TCP feed connection sends good records,
//             malformed lines, an oversize line, and then disconnects
//             mid-line.
//
// After the chaos run drains, the harness asserts the service invariants:
//
//   * no deadlock: drain() completes within its timeout;
//   * no lost jobs: every tenant's submitted == completed + failed +
//     deadline_expired + shed + rejected, and nothing is left in flight;
//   * shed accounting exact: the router's conservation law
//     accepted == popped + shed_fair_share + shed_queued + depth holds,
//     total pushes reconcile against per-tenant books, and the pool's
//     AdmissionQueue books balance;
//   * hostile input contained: the malformed / oversize / partial lines
//     were quarantined and counted, never submitted, never fatal;
//   * overload actually engaged: the flooding tenant was shed;
//   * fairness: the nice tenant keeps completing, and its max flow stays
//     within 2x the baseline (with a floor for timer/sanitizer noise).
//
// Exit status is 0 iff every trial passes every invariant.
//
//   chaos_campaign --trials=20 --seed-base=42
#include <chrono>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/service/daemon.h"
#include "src/service/record.h"
#include "src/service/stream_feed.h"

namespace {

namespace service = pjsched::service;
using Clock = service::Clock;

struct Options {
  unsigned trials = 20;
  std::uint64_t seed_base = 42;
  bool verbose = false;
};

constexpr unsigned kNiceRecords = 40;
constexpr unsigned kFloodRecords = 2500;
constexpr double kFloorSeconds = 0.05;  // timer/sanitizer noise floor
constexpr double kFlowBoundFactor = 2.0;

service::DaemonConfig make_config(std::uint64_t seed, bool chaos) {
  service::DaemonConfig config;
  config.pool.workers = 2;
  config.pool.watchdog_interval = std::chrono::milliseconds(25);
  config.pool.watchdog_sink = [](const std::string&) {};  // counted, not spammed
  config.router.shards = 2;
  config.router.capacity = 96;
  config.tick_interval = std::chrono::milliseconds(1);
  config.ns_per_unit = 2000.0;
  config.read_deadline = std::chrono::milliseconds(2000);
  // Sharded ingest even on small hosts: the campaign must exercise the
  // accept-handoff and cross-shard batched-admission paths.
  config.io_threads = 2;
  if (chaos) {
    config.tcp_port = 0;  // ephemeral loopback listener for the feed thread
    config.pool.fault_plan.seed = seed;
    config.pool.fault_plan.task_failure_probability = 0.01;
    config.pool.fault_plan.worker_stalls.push_back(
        {0, std::chrono::microseconds(200 + 50 * (seed % 5))});
    config.pool.fault_plan.admission_delay =
        std::chrono::microseconds(10 + 5 * (seed % 4));
  }
  return config;
}

service::JobRecord nice_record(std::uint64_t i) {
  service::JobRecord r;
  r.tenant = "nice";
  r.work = 4.0;
  r.fanout = 2;
  r.client_id = i + 1;
  return r;
}

/// Paces the nice tenant's records 1ms apart (open-loop, like the loadgen).
void run_nice_tenant(service::Daemon& daemon) {
  const Clock::time_point start = Clock::now();
  for (std::uint64_t i = 0; i < kNiceRecords; ++i) {
    daemon.submit_record(nice_record(i));
    const auto due = start + std::chrono::milliseconds(i + 1);
    while (Clock::now() < due)
      std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void run_flood_tenant(service::Daemon& daemon) {
  for (std::uint64_t i = 0; i < kFloodRecords; ++i) {
    service::JobRecord r;
    r.tenant = "flood";
    r.work = 8.0;
    r.client_id = i + 1;
    // Every fourth flood record carries a deadline it cannot make, so the
    // campaign exercises the deadline-expired terminal path under load.
    if (i % 4 == 3) r.deadline_ms = 1;
    daemon.submit_record(std::move(r));
  }
}

/// The hostile feed: good records, a malformed line, an oversize line, and
/// a disconnect mid-record.  Returns false when the connection could not
/// be established (a trial violation: the daemon should be listening).
bool run_hostile_feed(int port, std::string* error) {
  const int fd = service::connect_tcp("127.0.0.1",
                                      static_cast<std::uint16_t>(port), error);
  if (fd < 0) return false;
  std::string payload;
  for (int i = 0; i < 5; ++i)
    payload += "job feed 2 fanout=1 id=" + std::to_string(i + 1) + "\n";
  payload += "job\n";                                      // malformed: no work
  payload += "job feed nope\n";                            // malformed: bad work
  payload += std::string(service::kMaxLineBytes + 64, 'a') + "\n";  // oversize
  payload += "job feed 2 id=";  // mid-line, then disconnect
  const bool ok = service::write_all(fd, payload);
  service::close_fd(fd);
  return ok;
}

struct TrialOutcome {
  std::vector<std::string> violations;
  double baseline_p100 = 0.0;
  double chaos_p100 = 0.0;
  service::DaemonSnapshot snapshot;

  void check(bool ok, const std::string& what) {
    if (!ok) violations.push_back(what);
  }
};

std::string fmt(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

/// Shared post-drain bookkeeping checks (both phases must balance).
void check_books(const service::DaemonSnapshot& s, const std::string& phase,
                 TrialOutcome* out) {
  out->check(s.inflight == 0, phase + ": jobs still in flight after drain");
  std::uint64_t submitted_total = 0;
  for (const auto& [name, t] : s.tenants) {
    submitted_total += t.submitted;
    out->check(t.submitted == t.terminal(),
               phase + ": tenant " + name + " lost records (submitted=" +
                   std::to_string(t.submitted) + " terminal=" +
                   std::to_string(t.terminal()) + ")");
  }
  // Router conservation: only accepted records sit in queues...
  const auto& r = s.router;
  out->check(r.accepted == r.popped + r.shed_fair_share + r.shed_queued +
                               static_cast<std::uint64_t>(r.depth),
             phase + ": router conservation broken (accepted=" +
                 std::to_string(r.accepted) + " popped=" +
                 std::to_string(r.popped) + " shed_fair=" +
                 std::to_string(r.shed_fair_share) + " shed_queued=" +
                 std::to_string(r.shed_queued) + " depth=" +
                 std::to_string(r.depth) + ")");
  // ...and every push is either accepted or dropped at arrival, so the
  // per-tenant books reconcile against the router exactly.
  const std::uint64_t arrival_drops =
      r.shed_arrival_full + r.shed_new + r.rejected_tenant + r.rejected_drain;
  out->check(submitted_total == r.accepted + arrival_drops,
             phase + ": shed accounting inexact (submitted=" +
                 std::to_string(submitted_total) + " accepted=" +
                 std::to_string(r.accepted) + " arrival_drops=" +
                 std::to_string(arrival_drops) + ")");
  // Pool admission books: accepted == popped + shed + depth.
  const auto& a = s.admission;
  out->check(a.accepted == a.popped + a.shed +
                               static_cast<std::uint64_t>(a.depth),
             phase + ": admission queue books broken (accepted=" +
                 std::to_string(a.accepted) + " popped=" +
                 std::to_string(a.popped) + " shed=" + std::to_string(a.shed) +
                 " depth=" + std::to_string(a.depth) + ")");
}

TrialOutcome run_trial(std::uint64_t seed, bool verbose) {
  TrialOutcome out;

  // Phase 1: baseline — the nice tenant alone on a healthy daemon.
  {
    service::Daemon daemon(make_config(seed, /*chaos=*/false));
    daemon.set_weight("nice", 2.0);
    run_nice_tenant(daemon);
    out.check(daemon.drain(std::chrono::milliseconds(10000)),
              "baseline: drain timed out (deadlock)");
    const service::DaemonSnapshot s = daemon.snapshot();
    check_books(s, "baseline", &out);
    const auto it = s.tenants.find("nice");
    out.check(it != s.tenants.end() && it->second.completed == kNiceRecords,
              "baseline: nice tenant did not complete every record");
    if (it != s.tenants.end()) out.baseline_p100 = it->second.max_flow_seconds;
  }

  // Phase 2: chaos — same nice workload under flood + faults + hostile feed.
  {
    service::Daemon daemon(make_config(seed, /*chaos=*/true));
    daemon.set_weight("nice", 2.0);

    std::string feed_error;
    bool feed_ok = true;
    std::thread flood([&daemon] { run_flood_tenant(daemon); });
    std::thread nice([&daemon] { run_nice_tenant(daemon); });
    std::thread feed([&daemon, &feed_ok, &feed_error] {
      feed_ok = run_hostile_feed(daemon.tcp_port(), &feed_error);
    });
    flood.join();
    nice.join();
    feed.join();
    out.check(feed_ok, "chaos: hostile feed failed: " + feed_error);

    // Give the io thread one poll cycle to observe the disconnect before
    // draining (the partial-line quarantine is part of the invariants).
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    out.check(daemon.drain(std::chrono::milliseconds(30000)),
              "chaos: drain timed out (deadlock)");

    const service::DaemonSnapshot s = daemon.snapshot();
    out.snapshot = s;
    check_books(s, "chaos", &out);

    // Hostile input was contained, not fatal, and never became a record.
    out.check(s.feed.malformed >= 2, "chaos: malformed lines not quarantined");
    out.check(s.feed.oversize >= 1, "chaos: oversize line not counted");
    out.check(s.feed.partial >= 1,
              "chaos: mid-line disconnect not quarantined as partial");
    out.check(s.feed.disconnects >= 1, "chaos: disconnect not observed");
    out.check(!s.quarantine.empty(), "chaos: quarantine kept no samples");

    const auto flood_it = s.tenants.find("flood");
    out.check(flood_it != s.tenants.end() &&
                  flood_it->second.shed + flood_it->second.rejected > 0,
              "chaos: flooding tenant was never shed (overload response "
              "did not engage)");

    const auto nice_it = s.tenants.find("nice");
    out.check(nice_it != s.tenants.end() && nice_it->second.flow_samples > 0,
              "chaos: nice tenant starved (no completions)");
    if (nice_it != s.tenants.end()) {
      out.chaos_p100 = nice_it->second.max_flow_seconds;
      // The well-behaved tenant's completions must dominate: fair shedding
      // targets the flooder, and the 1% fault rate cannot explain losing
      // half the nice records.
      out.check(nice_it->second.completed * 2 >= nice_it->second.submitted,
                "chaos: nice tenant lost too many records (completed=" +
                    std::to_string(nice_it->second.completed) + "/" +
                    std::to_string(nice_it->second.submitted) + ")");
      const double bound =
          kFlowBoundFactor * std::max(out.baseline_p100, kFloorSeconds);
      out.check(out.chaos_p100 <= bound,
                "chaos: nice tenant max flow " + fmt(out.chaos_p100) +
                    "s exceeds bound " + fmt(bound) + "s (baseline " +
                    fmt(out.baseline_p100) + "s)");
    }

    if (verbose) std::cout << daemon.metrics_text();
  }
  return out;
}

bool parse_flag(const std::string& arg, const std::string& name,
                std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--trials=N] [--seed-base=S] [--verbose]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    try {
      if (parse_flag(arg, "trials", &v))
        opts.trials = static_cast<unsigned>(std::stoul(v));
      else if (parse_flag(arg, "seed-base", &v))
        opts.seed_base = std::stoull(v);
      else if (arg == "--verbose")
        opts.verbose = true;
      else
        return usage(argv[0]);
    } catch (const std::exception&) {
      return usage(argv[0]);
    }
  }

  unsigned failed = 0;
  for (unsigned trial = 0; trial < opts.trials; ++trial) {
    const std::uint64_t seed = opts.seed_base + trial;
    TrialOutcome out;
    try {
      out = run_trial(seed, opts.verbose);
    } catch (const std::exception& e) {
      out.violations.push_back(std::string("uncaught exception: ") + e.what());
    }
    const auto& r = out.snapshot.router;
    std::cout << "trial " << (trial + 1) << "/" << opts.trials
              << " seed=" << seed
              << " baseline_p100=" << fmt(out.baseline_p100) << "s"
              << " chaos_p100=" << fmt(out.chaos_p100) << "s"
              << " shed=" << r.total_shed() << " popped=" << r.popped << " "
              << (out.violations.empty() ? "PASS" : "FAIL") << "\n";
    for (const std::string& v : out.violations)
      std::cout << "  VIOLATION: " << v << "\n";
    if (!out.violations.empty()) ++failed;
  }

  if (failed > 0) {
    std::cout << "chaos_campaign: " << failed << "/" << opts.trials
              << " trials FAILED\n";
    return 1;
  }
  std::cout << "chaos_campaign: all " << opts.trials << " trials passed\n";
  return 0;
}
