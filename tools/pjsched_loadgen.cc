// pjsched_loadgen — feed client / load generator for pjschedd.
//
// Streams job records to a daemon over a Unix or TCP socket with the
// client-side robustness the service contract expects: connect (and
// reconnect) with bounded retries, exponential backoff with seeded
// full jitter, and a total deadline budget after which the client gives
// up cleanly instead of hammering a struggling daemon forever.
//
// With --connections=N the record count is split across N concurrent
// client threads, each with its own socket, seeded rng, reconnect budget,
// and open-loop pacing schedule (--rate is the AGGREGATE rate; each
// connection paces at rate/N); the final line reports merged stats.
//
//   pjsched_loadgen --tcp-port=7133 --tenant=acme --records=10000
//                   --rate=2000 --work=8 --fanout=4
//   pjsched_loadgen --unix=/tmp/pjsched.sock --tenant=bulk
//                   --records=100000 --budget-ms=30000 --seed=7
//   pjsched_loadgen --tcp-port=7133 --connections=8 --records=800000
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/service/record.h"
#include "src/service/stream_feed.h"
#include "src/sim/rng.h"

namespace {

using Clock = std::chrono::steady_clock;
namespace service = pjsched::service;

struct Options {
  std::string unix_path;
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;
  std::string tenant = "loadgen";
  std::uint64_t records = 1000;
  double work = 4.0;
  unsigned fanout = 1;
  double weight = 1.0;
  std::uint64_t deadline_ms = 0;    // per-job deadline on each record
  double rate = 0.0;                // records/sec; 0 = as fast as possible
  std::uint64_t budget_ms = 60000;  // total client deadline budget
  unsigned max_retries = 8;
  std::uint64_t backoff_base_ms = 10;
  std::uint64_t seed = 1;
  std::uint64_t connections = 1;  // concurrent client threads
};

bool parse_flag(const std::string& arg, const std::string& name,
                std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " (--unix=PATH | --tcp-port=PORT) "
            << "[--tcp-host=H] [--tenant=T]\n"
            << "  [--records=N] [--work=W] [--fanout=F] [--weight=W]\n"
            << "  [--deadline-ms=D] [--rate=R] [--budget-ms=B]\n"
            << "  [--max-retries=N] [--backoff-base-ms=N] [--seed=S]\n"
            << "  [--connections=N]\n";
  return 2;
}

bool parse_args(int argc, char** argv, Options* o) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    try {
      if (parse_flag(arg, "unix", &v)) o->unix_path = v;
      else if (parse_flag(arg, "tcp-host", &v)) o->tcp_host = v;
      else if (parse_flag(arg, "tcp-port", &v)) o->tcp_port = std::stoi(v);
      else if (parse_flag(arg, "tenant", &v)) o->tenant = v;
      else if (parse_flag(arg, "records", &v)) o->records = std::stoull(v);
      else if (parse_flag(arg, "work", &v)) o->work = std::stod(v);
      else if (parse_flag(arg, "fanout", &v))
        o->fanout = static_cast<unsigned>(std::stoul(v));
      else if (parse_flag(arg, "weight", &v)) o->weight = std::stod(v);
      else if (parse_flag(arg, "deadline-ms", &v))
        o->deadline_ms = std::stoull(v);
      else if (parse_flag(arg, "rate", &v)) o->rate = std::stod(v);
      else if (parse_flag(arg, "budget-ms", &v)) o->budget_ms = std::stoull(v);
      else if (parse_flag(arg, "max-retries", &v))
        o->max_retries = static_cast<unsigned>(std::stoul(v));
      else if (parse_flag(arg, "backoff-base-ms", &v))
        o->backoff_base_ms = std::stoull(v);
      else if (parse_flag(arg, "seed", &v)) o->seed = std::stoull(v);
      else if (parse_flag(arg, "connections", &v))
        o->connections = std::stoull(v);
      else return false;
    } catch (const std::exception&) {
      return false;
    }
  }
  if (o->connections == 0) return false;
  return !o->unix_path.empty() || o->tcp_port >= 0;
}

/// Connects with exponential backoff + full jitter, honoring the budget.
/// Returns the fd, or -1 when retries or the budget ran out.
int connect_with_retry(const Options& o, pjsched::sim::Rng& rng,
                       Clock::time_point budget_deadline, std::string* error) {
  for (unsigned attempt = 0; attempt <= o.max_retries; ++attempt) {
    if (Clock::now() >= budget_deadline) {
      *error = "deadline budget exhausted";
      return -1;
    }
    const int fd =
        o.unix_path.empty()
            ? service::connect_tcp(o.tcp_host,
                                   static_cast<std::uint16_t>(o.tcp_port),
                                   error)
            : service::connect_unix(o.unix_path, error);
    if (fd >= 0) return fd;
    if (attempt == o.max_retries) break;
    // Full jitter: sleep uniform in [0, base * 2^attempt], capped so one
    // sleep never blows the whole budget.
    const std::uint64_t ceiling = o.backoff_base_ms << std::min(attempt, 20u);
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        budget_deadline - Clock::now());
    const std::uint64_t sleep_ms = std::min<std::uint64_t>(
        rng.uniform_int(ceiling + 1),
        remaining.count() > 0
            ? static_cast<std::uint64_t>(remaining.count())
            : 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  return -1;
}

/// One connection's merged-stats contribution.
struct ConnResult {
  std::uint64_t sent = 0;
  std::uint64_t reconnects = 0;
  bool failed = false;
  std::string error;
};

/// Streams `records` records over one connection (its own socket, rng,
/// reconnect budget, and pacing schedule at `rate` records/sec).
/// client_id is globally unique: conn_index * stride + i + 1.
void run_connection(const Options& opts, std::uint64_t conn_index,
                    std::uint64_t records, double rate, ConnResult* out) {
  pjsched::sim::Rng rng(opts.seed + conn_index);
  const Clock::time_point start = Clock::now();
  const Clock::time_point budget_deadline =
      start + std::chrono::milliseconds(opts.budget_ms);

  std::string error;
  int fd = connect_with_retry(opts, rng, budget_deadline, &error);
  if (fd < 0) {
    out->failed = true;
    out->error = "connect failed: " + error;
    return;
  }

  service::JobRecord record;
  record.tenant = opts.tenant;
  record.work = opts.work;
  record.fanout = opts.fanout;
  record.weight = opts.weight;
  record.deadline_ms = opts.deadline_ms;

  const std::uint64_t stride = opts.records + 1;
  for (std::uint64_t i = 0; i < records; ++i) {
    if (Clock::now() >= budget_deadline) {
      out->failed = true;
      out->error = "budget exhausted after " + std::to_string(out->sent) +
                   " records";
      service::close_fd(fd);
      return;
    }
    record.client_id = conn_index * stride + i + 1;
    const std::string line = service::format_record(record) + "\n";
    if (!service::write_all(fd, line)) {
      // Dead connection: reconnect under the same backoff/budget rules and
      // resend this record on the fresh connection.
      service::close_fd(fd);
      fd = connect_with_retry(opts, rng, budget_deadline, &error);
      if (fd < 0) {
        out->failed = true;
        out->error = "reconnect failed: " + error;
        return;
      }
      ++out->reconnects;
      if (!service::write_all(fd, line)) {
        out->failed = true;
        out->error = "write failed after reconnect";
        service::close_fd(fd);
        return;
      }
    }
    ++out->sent;
    if (rate > 0.0) {
      // Open-loop pacing against the schedule, not sleep-per-record: the
      // i-th record is due at start + i/rate, so a slow stretch is made up
      // instead of compounding.
      const auto due = start + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>((i + 1) / rate));
      while (Clock::now() < due && Clock::now() < budget_deadline)
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  service::close_fd(fd);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, &opts)) return usage(argv[0]);

  const std::uint64_t conns = std::min(opts.connections, opts.records > 0
                                                             ? opts.records
                                                             : std::uint64_t{1});
  const double per_conn_rate =
      opts.rate > 0.0 ? opts.rate / static_cast<double>(conns) : 0.0;
  const Clock::time_point start = Clock::now();

  // Split the record count across connections; the first `extra`
  // connections take one more so every record is owned by exactly one.
  std::vector<ConnResult> results(conns);
  std::vector<std::thread> threads;
  threads.reserve(conns);
  const std::uint64_t base = opts.records / conns;
  const std::uint64_t extra = opts.records % conns;
  for (std::uint64_t c = 0; c < conns; ++c) {
    const std::uint64_t n = base + (c < extra ? 1 : 0);
    threads.emplace_back(run_connection, std::cref(opts), c, n, per_conn_rate,
                         &results[c]);
  }
  for (std::thread& t : threads) t.join();

  std::uint64_t sent = 0, reconnects = 0;
  bool failed = false;
  for (std::uint64_t c = 0; c < conns; ++c) {
    sent += results[c].sent;
    reconnects += results[c].reconnects;
    if (results[c].failed) {
      failed = true;
      std::cerr << "pjsched_loadgen: connection " << c << ": "
                << results[c].error << "\n";
    }
  }

  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::cout << "pjsched_loadgen: sent " << sent << " records in " << secs
            << "s (" << (secs > 0 ? static_cast<double>(sent) / secs : 0)
            << " rec/s, " << reconnects << " reconnects, " << conns
            << " connections)\n";
  return failed ? 1 : 0;
}
