// pjsched_loadgen — feed client / load generator for pjschedd.
//
// Streams job records to a daemon over a Unix or TCP socket with the
// client-side robustness the service contract expects: connect (and
// reconnect) with bounded retries, exponential backoff with seeded
// full jitter, and a total deadline budget after which the client gives
// up cleanly instead of hammering a struggling daemon forever.
//
//   pjsched_loadgen --tcp-port=7133 --tenant=acme --records=10000
//                   --rate=2000 --work=8 --fanout=4
//   pjsched_loadgen --unix=/tmp/pjsched.sock --tenant=bulk
//                   --records=100000 --budget-ms=30000 --seed=7
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>

#include "src/service/record.h"
#include "src/service/stream_feed.h"
#include "src/sim/rng.h"

namespace {

using Clock = std::chrono::steady_clock;
namespace service = pjsched::service;

struct Options {
  std::string unix_path;
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;
  std::string tenant = "loadgen";
  std::uint64_t records = 1000;
  double work = 4.0;
  unsigned fanout = 1;
  double weight = 1.0;
  std::uint64_t deadline_ms = 0;    // per-job deadline on each record
  double rate = 0.0;                // records/sec; 0 = as fast as possible
  std::uint64_t budget_ms = 60000;  // total client deadline budget
  unsigned max_retries = 8;
  std::uint64_t backoff_base_ms = 10;
  std::uint64_t seed = 1;
};

bool parse_flag(const std::string& arg, const std::string& name,
                std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " (--unix=PATH | --tcp-port=PORT) "
            << "[--tcp-host=H] [--tenant=T]\n"
            << "  [--records=N] [--work=W] [--fanout=F] [--weight=W]\n"
            << "  [--deadline-ms=D] [--rate=R] [--budget-ms=B]\n"
            << "  [--max-retries=N] [--backoff-base-ms=N] [--seed=S]\n";
  return 2;
}

bool parse_args(int argc, char** argv, Options* o) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    try {
      if (parse_flag(arg, "unix", &v)) o->unix_path = v;
      else if (parse_flag(arg, "tcp-host", &v)) o->tcp_host = v;
      else if (parse_flag(arg, "tcp-port", &v)) o->tcp_port = std::stoi(v);
      else if (parse_flag(arg, "tenant", &v)) o->tenant = v;
      else if (parse_flag(arg, "records", &v)) o->records = std::stoull(v);
      else if (parse_flag(arg, "work", &v)) o->work = std::stod(v);
      else if (parse_flag(arg, "fanout", &v))
        o->fanout = static_cast<unsigned>(std::stoul(v));
      else if (parse_flag(arg, "weight", &v)) o->weight = std::stod(v);
      else if (parse_flag(arg, "deadline-ms", &v))
        o->deadline_ms = std::stoull(v);
      else if (parse_flag(arg, "rate", &v)) o->rate = std::stod(v);
      else if (parse_flag(arg, "budget-ms", &v)) o->budget_ms = std::stoull(v);
      else if (parse_flag(arg, "max-retries", &v))
        o->max_retries = static_cast<unsigned>(std::stoul(v));
      else if (parse_flag(arg, "backoff-base-ms", &v))
        o->backoff_base_ms = std::stoull(v);
      else if (parse_flag(arg, "seed", &v)) o->seed = std::stoull(v);
      else return false;
    } catch (const std::exception&) {
      return false;
    }
  }
  return !o->unix_path.empty() || o->tcp_port >= 0;
}

/// Connects with exponential backoff + full jitter, honoring the budget.
/// Returns the fd, or -1 when retries or the budget ran out.
int connect_with_retry(const Options& o, pjsched::sim::Rng& rng,
                       Clock::time_point budget_deadline, std::string* error) {
  for (unsigned attempt = 0; attempt <= o.max_retries; ++attempt) {
    if (Clock::now() >= budget_deadline) {
      *error = "deadline budget exhausted";
      return -1;
    }
    const int fd =
        o.unix_path.empty()
            ? service::connect_tcp(o.tcp_host,
                                   static_cast<std::uint16_t>(o.tcp_port),
                                   error)
            : service::connect_unix(o.unix_path, error);
    if (fd >= 0) return fd;
    if (attempt == o.max_retries) break;
    // Full jitter: sleep uniform in [0, base * 2^attempt], capped so one
    // sleep never blows the whole budget.
    const std::uint64_t ceiling = o.backoff_base_ms << std::min(attempt, 20u);
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        budget_deadline - Clock::now());
    const std::uint64_t sleep_ms = std::min<std::uint64_t>(
        rng.uniform_int(ceiling + 1),
        remaining.count() > 0
            ? static_cast<std::uint64_t>(remaining.count())
            : 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, &opts)) return usage(argv[0]);

  pjsched::sim::Rng rng(opts.seed);
  const Clock::time_point start = Clock::now();
  const Clock::time_point budget_deadline =
      start + std::chrono::milliseconds(opts.budget_ms);

  std::string error;
  int fd = connect_with_retry(opts, rng, budget_deadline, &error);
  if (fd < 0) {
    std::cerr << "pjsched_loadgen: connect failed: " << error << "\n";
    return 1;
  }

  service::JobRecord record;
  record.tenant = opts.tenant;
  record.work = opts.work;
  record.fanout = opts.fanout;
  record.weight = opts.weight;
  record.deadline_ms = opts.deadline_ms;

  std::uint64_t sent = 0, reconnects = 0;
  for (std::uint64_t i = 0; i < opts.records; ++i) {
    if (Clock::now() >= budget_deadline) {
      std::cerr << "pjsched_loadgen: budget exhausted after " << sent
                << " records\n";
      service::close_fd(fd);
      return 1;
    }
    record.client_id = i + 1;
    const std::string line = service::format_record(record) + "\n";
    if (!service::write_all(fd, line)) {
      // Dead connection: reconnect under the same backoff/budget rules and
      // resend this record on the fresh connection.
      service::close_fd(fd);
      fd = connect_with_retry(opts, rng, budget_deadline, &error);
      if (fd < 0) {
        std::cerr << "pjsched_loadgen: reconnect failed: " << error << "\n";
        return 1;
      }
      ++reconnects;
      if (!service::write_all(fd, line)) {
        std::cerr << "pjsched_loadgen: write failed after reconnect\n";
        service::close_fd(fd);
        return 1;
      }
    }
    ++sent;
    if (opts.rate > 0.0) {
      // Open-loop pacing against the schedule, not sleep-per-record: the
      // i-th record is due at start + i/rate, so a slow stretch is made up
      // instead of compounding.
      const auto due =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>((i + 1) / opts.rate));
      while (Clock::now() < due && Clock::now() < budget_deadline)
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  service::close_fd(fd);

  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::cout << "pjsched_loadgen: sent " << sent << " records in " << secs
            << "s (" << (secs > 0 ? static_cast<double>(sent) / secs : 0)
            << " rec/s, " << reconnects << " reconnects)\n";
  return 0;
}
