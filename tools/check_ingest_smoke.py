#!/usr/bin/env python3
"""CI gate over the daemon ingest smoke (pjschedd + multi-connection
pjsched_loadgen + the alloc-probed ingest bench).

Usage:
    check_ingest_smoke.py --metrics <metrics-file> --loadgen <loadgen-log>
        [--bench <ingest-bench-json>] [--min-rate <rec/s>]
        [--max-allocs-per-job <n>]

<metrics-file> is what `pjschedd --metrics-out=FILE` writes on exit (the
machine-readable `key value` dump, taken AFTER a successful drain);
<loadgen-log> is pjsched_loadgen's stdout, whose final line reports sent
records and the achieved open-loop rate; the optional <ingest-bench-json>
is `bench_ingest --benchmark_filter=IngestParseAdmit` JSON output.

Asserts:

  1. ZERO LOST JOBS — every record the load generator sent is accounted by
     the daemon: loadgen sent == ingest.records, with no reconnects (a
     reconnect means the daemon dropped a healthy loopback connection) and
     nothing quarantined (the feed is well-formed by construction);
  2. BOOKS BALANCE — per tenant, submitted == completed + failed +
     deadline_expired + shed + rejected (the drain ran, so nothing is in
     flight), the tenants' submitted sum to ingest.records, and the router
     obeys its conservation law (accepted == popped + fair-share/queued
     evictions + depth; every push attempt lands in exactly one counter);
  3. THROUGHPUT FLOOR — the loadgen's achieved rec/s stays above
     --min-rate (default 20000: an order of magnitude under what one io
     shard sustains, so only a real ingest collapse trips it);
  4. ALLOC GATE (with --bench) — BM_IngestParseAdmit's alloc probe reports
     at most --max-allocs-per-job (default 1.0) on the zero-copy
     parse+admit path.

Exits non-zero with per-violation messages; prints the measured numbers
either way.  Stdlib only.
"""
import json
import re
import sys

_LOADGEN_LINE = re.compile(
    r"pjsched_loadgen: sent (\d+) records in ([0-9.eE+-]+)s "
    r"\(([0-9.eE+-]+) rec/s, (\d+) reconnects, (\d+) connections\)")


def _parse_metrics(path):
    metrics = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line or line == "end":
                continue
            key, _, value = line.partition(" ")
            metrics[key] = value
    return metrics


def _num(metrics, key, violations):
    if key not in metrics:
        violations.append(f"metrics file is missing '{key}'")
        return 0
    return int(metrics[key])


def main(argv):
    args = list(argv[1:])
    metrics_path = loadgen_path = bench_path = None
    min_rate = 20000.0
    max_allocs = 1.0
    while args:
        flag = args.pop(0)
        if flag == "--metrics":
            metrics_path = args.pop(0)
        elif flag == "--loadgen":
            loadgen_path = args.pop(0)
        elif flag == "--bench":
            bench_path = args.pop(0)
        elif flag == "--min-rate":
            min_rate = float(args.pop(0))
        elif flag == "--max-allocs-per-job":
            max_allocs = float(args.pop(0))
        else:
            sys.exit(__doc__)
    if metrics_path is None or loadgen_path is None:
        sys.exit(__doc__)

    violations = []

    with open(loadgen_path) as f:
        matches = [_LOADGEN_LINE.search(line) for line in f]
    matches = [m for m in matches if m is not None]
    if not matches:
        sys.exit(f"check_ingest_smoke.py: no loadgen summary line in "
                 f"{loadgen_path}")
    m = matches[-1]
    sent, rate = int(m.group(1)), float(m.group(3))
    reconnects, connections = int(m.group(4)), int(m.group(5))

    metrics = _parse_metrics(metrics_path)
    records = _num(metrics, "ingest.records", violations)

    # 1. Zero lost jobs.
    if records != sent:
        violations.append(
            f"LOST JOBS: loadgen sent {sent} records but the daemon "
            f"counted {records} (delta {sent - records})")
    if reconnects != 0:
        violations.append(
            f"RECONNECTS: loadgen reconnected {reconnects} times on a "
            "healthy loopback feed — the daemon dropped connections")
    for key in ("ingest.malformed", "ingest.oversize", "ingest.partial",
                "ingest.slow_drip", "ingest.refused"):
        if _num(metrics, key, violations) != 0:
            violations.append(
                f"QUARANTINE: {key} = {metrics[key]} on a well-formed feed")

    # 2. Books balance.
    tenants = {}
    for key in metrics:
        mt = re.match(r"^tenant\.(.+)\.submitted$", key)
        if mt:
            tenants[mt.group(1)] = None
    submitted_sum = 0
    for tenant in sorted(tenants):
        prefix = f"tenant.{tenant}."
        submitted = _num(metrics, prefix + "submitted", violations)
        terminal = sum(
            _num(metrics, prefix + k, violations)
            for k in ("completed", "failed", "deadline_expired", "shed",
                      "rejected"))
        submitted_sum += submitted
        if submitted != terminal:
            violations.append(
                f"BOOKS IMBALANCE ({tenant}): submitted {submitted} != "
                f"terminal {terminal} after drain")
    if submitted_sum != records:
        violations.append(
            f"BOOKS IMBALANCE: tenant submitted sum {submitted_sum} != "
            f"ingest.records {records}")
    accepted = _num(metrics, "router.accepted", violations)
    conserved = (_num(metrics, "router.popped", violations) +
                 _num(metrics, "router.shed_fair_share", violations) +
                 _num(metrics, "router.shed_queued", violations) +
                 _num(metrics, "router.depth", violations))
    if accepted != conserved:
        violations.append(
            f"ROUTER CONSERVATION: accepted {accepted} != popped + "
            f"evictions + depth {conserved}")
    attempts = (accepted +
                _num(metrics, "router.shed_arrival_full", violations) +
                _num(metrics, "router.shed_new", violations) +
                _num(metrics, "router.rejected_tenant", violations) +
                _num(metrics, "router.rejected_drain", violations))
    if attempts != records:
        violations.append(
            f"ROUTER CONSERVATION: push attempts {attempts} != "
            f"ingest.records {records}")

    # 3. Throughput floor.
    if rate < min_rate:
        violations.append(
            f"THROUGHPUT FLOOR: loadgen achieved {rate:,.0f} rec/s over "
            f"{connections} connections (floor {min_rate:,.0f})")

    # 4. Alloc gate.
    allocs = None
    if bench_path is not None:
        with open(bench_path) as f:
            report = json.load(f)
        for bench in report.get("benchmarks", []):
            if (bench.get("run_type") != "aggregate" and
                    bench["name"] == "BM_IngestParseAdmit"):
                allocs = bench.get("allocs_per_job")
        if allocs is None:
            violations.append(
                f"ALLOC GATE: BM_IngestParseAdmit (with its allocs_per_job "
                f"counter) missing from {bench_path}")
        elif allocs > max_allocs:
            violations.append(
                f"ALLOC GATE: {allocs:.2f} allocs/job on the parse+admit "
                f"path (limit {max_allocs:.1f}) — a per-line or per-field "
                "allocation crept back in")

    alloc_note = f", {allocs:.2f} allocs/job" if allocs is not None else ""
    print(f"check_ingest_smoke.py: {sent} records over {connections} "
          f"connections at {rate:,.0f} rec/s; daemon counted {records} "
          f"({len(tenants)} tenants){alloc_note}")
    if violations:
        for v in violations:
            print(f"check_ingest_smoke.py: VIOLATION: {v}", file=sys.stderr)
        return 1
    print("check_ingest_smoke.py: ingest smoke clean: no lost jobs, books "
          "balanced, floors met")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
