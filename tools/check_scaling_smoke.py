#!/usr/bin/env python3
"""CI gate over the streamed scaling smoke (bench_sim_engine BM_Scaling*).

Usage:
    check_scaling_smoke.py <scaling-json> [--rss-ceiling-mb <mb>]
        [--max-growth <factor>] [--max-allocs-per-job <n>]

<scaling-json> is google-benchmark JSON from e.g.

    bench_sim_engine \
        '--benchmark_filter=Scaling(EventEngine|StepEngine|Bounds)Streamed/(10000|100000)/' \
        --benchmark_out=<file> --benchmark_out_format=json

Covers the engine curves (BM_Scaling{Event,Step}EngineStreamed) and the
streamed lower-bound pass (BM_ScalingBoundsStreamed), which holds O(1)
state and must therefore satisfy the same budgets with even more headroom.

Asserts, per curve, over every streamed point found:

  1. peak RSS stays under an absolute ceiling (default 192 MB — an order of
     magnitude above the ~5 MB a healthy streamed run needs at any decade,
     but far below what retaining per-job state across 10^5 jobs costs);
  2. peak RSS at the largest decade is at most --max-growth (default 4x)
     the smallest decade's — the O(live jobs) claim in miniature;
  3. allocations per job stay under --max-allocs-per-job (default 64,
     mirroring the in-bench budget): any per-slice allocation shows up here
     as decade-proportional growth;
  4. no benchmark reported an error (the bench itself aborts points that
     blow its allocation budget or lose jobs).

Exits non-zero with a per-violation message; prints the measured curve
either way.  Stdlib only.
"""
import json
import re
import sys

_NAME = re.compile(
    r"^BM_Scaling(EventEngine|StepEngine|Bounds)Streamed/(\d+)"
    r"(?:/iterations:\d+)?$")


def main(argv):
    args = list(argv[1:])
    rss_ceiling_mb = 192.0
    max_growth = 4.0
    max_allocs = 64.0
    if "--rss-ceiling-mb" in args:
        i = args.index("--rss-ceiling-mb")
        rss_ceiling_mb = float(args[i + 1])
        del args[i:i + 2]
    if "--max-growth" in args:
        i = args.index("--max-growth")
        max_growth = float(args[i + 1])
        del args[i:i + 2]
    if "--max-allocs-per-job" in args:
        i = args.index("--max-allocs-per-job")
        max_allocs = float(args[i + 1])
        del args[i:i + 2]
    if len(args) != 1:
        sys.exit(__doc__)

    with open(args[0]) as f:
        report = json.load(f)

    curves = {}  # engine -> {jobs: bench}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        m = _NAME.match(bench["name"])
        if m is None:
            continue
        curves.setdefault(m.group(1), {})[int(m.group(2))] = bench

    if not curves:
        sys.exit("check_scaling_smoke.py: no BM_Scaling*Streamed "
                 f"benchmarks in {args[0]}")

    failures = []
    for engine, points in sorted(curves.items()):
        for jobs, bench in sorted(points.items()):
            rss_mb = bench.get("peak_rss_bytes", 0) / (1024.0 * 1024.0)
            allocs = bench.get("allocs_per_job")
            live = bench.get("peak_live_jobs")
            print(f"{engine} streamed, {jobs:>9,} jobs: "
                  f"peak RSS {rss_mb:7.1f} MB, "
                  f"allocs/job {allocs if allocs is not None else '?'}, "
                  f"peak live {live if live is not None else '?'}")
            if bench.get("error_occurred"):
                failures.append(
                    f"{engine}/{jobs}: bench reported error: "
                    f"{bench.get('error_message', 'unknown')}")
            if rss_mb > rss_ceiling_mb:
                failures.append(
                    f"{engine}/{jobs}: peak RSS {rss_mb:.1f} MB exceeds "
                    f"ceiling {rss_ceiling_mb:.1f} MB — streamed run is "
                    "retaining per-job state")
            if allocs is not None and allocs > max_allocs:
                failures.append(
                    f"{engine}/{jobs}: {allocs:.1f} allocs/job exceeds "
                    f"budget {max_allocs:.1f} — steady-state allocation "
                    "leak")
        if len(points) >= 2:
            decades = sorted(points)
            lo = points[decades[0]].get("peak_rss_bytes")
            hi = points[decades[-1]].get("peak_rss_bytes")
            if lo and hi and hi / lo > max_growth:
                failures.append(
                    f"{engine}: peak RSS grew {hi / lo:.1f}x from "
                    f"{decades[0]:,} to {decades[-1]:,} jobs (limit "
                    f"{max_growth:.1f}x) — resident state is not "
                    "O(live jobs)")

    if failures:
        for f_ in failures:
            print(f"check_scaling_smoke.py: FAIL: {f_}", file=sys.stderr)
        return 1
    print("check_scaling_smoke.py: OK — streamed scaling within the "
          "O(live jobs) budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
