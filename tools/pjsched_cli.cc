// Thin main for the pjsched command-line tool; all logic lives in
// src/cli/cli.h so it is unit-testable in-process.
#include <iostream>
#include <string>
#include <vector>

#include "src/cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return pjsched::cli::run_cli(args, std::cout, std::cerr);
}
