// Tests for the scheduler factory and name parser (src/core/run.h).
#include "src/core/run.h"

#include <gtest/gtest.h>

#include "src/dag/builders.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

using testutil::make_instance;

TEST(ParseSchedulerTest, KnownNames) {
  EXPECT_EQ(core::parse_scheduler("fifo").kind, core::SchedulerKind::kFifo);
  EXPECT_EQ(core::parse_scheduler("bwf").kind, core::SchedulerKind::kBwf);
  EXPECT_EQ(core::parse_scheduler("admit-first").kind,
            core::SchedulerKind::kAdmitFirst);
  EXPECT_EQ(core::parse_scheduler("opt").kind, core::SchedulerKind::kOptBound);
  EXPECT_EQ(core::parse_scheduler("opt-lower-bound").kind,
            core::SchedulerKind::kOptBound);
  EXPECT_EQ(core::parse_scheduler("lifo").kind, core::SchedulerKind::kLifo);
  EXPECT_EQ(core::parse_scheduler("sjf").kind, core::SchedulerKind::kSjf);
  EXPECT_EQ(core::parse_scheduler("round-robin").kind,
            core::SchedulerKind::kRoundRobin);
}

TEST(ParseSchedulerTest, StealKVariants) {
  const auto s16 = core::parse_scheduler("steal-16-first");
  EXPECT_EQ(s16.kind, core::SchedulerKind::kStealKFirst);
  EXPECT_EQ(s16.steal_k, 16u);
  const auto s1 = core::parse_scheduler("steal-1-first");
  EXPECT_EQ(s1.steal_k, 1u);
  const auto s0 = core::parse_scheduler("steal-0-first");
  EXPECT_EQ(s0.steal_k, 0u);
}

TEST(ParseSchedulerTest, WeightedAdmissionSuffix) {
  const auto a = core::parse_scheduler("admit-first-bwf");
  EXPECT_EQ(a.kind, core::SchedulerKind::kAdmitFirst);
  EXPECT_TRUE(a.admit_by_weight);
  const auto s = core::parse_scheduler("steal-8-first-bwf");
  EXPECT_EQ(s.kind, core::SchedulerKind::kStealKFirst);
  EXPECT_EQ(s.steal_k, 8u);
  EXPECT_TRUE(s.admit_by_weight);
  // Round-trips through the factory name.
  EXPECT_EQ(core::make_scheduler(s)->name(), "steal-8-first-bwf");
  // Plain "bwf" is the centralized scheduler, not a suffix form.
  EXPECT_FALSE(core::parse_scheduler("bwf").admit_by_weight);
  // The suffix is rejected on non-work-stealing schedulers.
  EXPECT_THROW(core::parse_scheduler("fifo-bwf"), std::invalid_argument);
}

TEST(ParseSchedulerTest, BadNamesRejected) {
  EXPECT_THROW(core::parse_scheduler(""), std::invalid_argument);
  EXPECT_THROW(core::parse_scheduler("fifoo"), std::invalid_argument);
  EXPECT_THROW(core::parse_scheduler("steal--first"), std::invalid_argument);
  EXPECT_THROW(core::parse_scheduler("steal-x-first"), std::invalid_argument);
  EXPECT_THROW(core::parse_scheduler("steal-5-last"), std::invalid_argument);
}

TEST(MakeSchedulerTest, RoundTripNames) {
  for (const char* name :
       {"fifo", "bwf", "admit-first", "steal-16-first", "lifo", "sjf",
        "round-robin"}) {
    const auto sched = core::make_scheduler(core::parse_scheduler(name));
    EXPECT_EQ(sched->name(), name);
  }
  EXPECT_EQ(core::make_scheduler(core::parse_scheduler("opt"))->name(),
            "opt-lower-bound");
}

TEST(RunSchedulerTest, OneCallApi) {
  auto inst = make_instance({
      {0.0, dag::parallel_for_dag(4, 3)},
      {2.0, dag::single_node(5)},
  });
  const auto res = core::run_scheduler(
      inst, core::parse_scheduler("fifo"), {2, 1.0});
  EXPECT_EQ(res.completion.size(), 2u);
  EXPECT_GT(res.max_flow, 0.0);
}

TEST(RunSchedulerTest, SeedPropagatesToWorkStealing) {
  auto inst = testutil::random_instance(61, 20, 25.0);
  core::SchedulerSpec spec;
  spec.kind = core::SchedulerKind::kStealKFirst;
  spec.steal_k = 4;
  spec.seed = 9;
  const auto a = core::run_scheduler(inst, spec, {4, 1.0});
  const auto b = core::run_scheduler(inst, spec, {4, 1.0});
  EXPECT_EQ(a.completion, b.completion);
}

}  // namespace
}  // namespace pjsched
