// Tests for the extended arrival processes (MMPP, trace replay) and the
// arrivals-driven instance generator plus SLO metrics.
#include <gtest/gtest.h>

#include "src/metrics/stats.h"
#include "src/workload/arrivals.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"

namespace pjsched::workload {
namespace {

TEST(MmppArrivalsTest, StrictlyIncreasing) {
  MmppArrivals arr(2000.0, 100.0, 50.0, sim::Rng(1));
  double prev = -1.0;
  for (int i = 0; i < 2000; ++i) {
    const double t = arr.next_ms();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(MmppArrivalsTest, AverageRateMatches) {
  // Symmetric sojourns: long-run rate = (burst + calm) / 2.
  MmppArrivals arr(1600.0, 400.0, 20.0, sim::Rng(2));
  EXPECT_DOUBLE_EQ(arr.average_qps(), 1000.0);
  const auto times = take_arrivals(arr, 60000);
  const double measured_qps =
      static_cast<double>(times.size()) / (times.back() / 1000.0);
  EXPECT_NEAR(measured_qps, 1000.0, 60.0);
}

TEST(MmppArrivalsTest, BurstierThanPoissonAtSameRate) {
  // Compare squared coefficient of variation of inter-arrival gaps: MMPP
  // with a strong burst/calm split must exceed Poisson's CV^2 = 1.
  const auto cv2 = [](const std::vector<double>& times) {
    std::vector<double> gaps;
    for (std::size_t i = 1; i < times.size(); ++i)
      gaps.push_back(times[i] - times[i - 1]);
    const auto s = metrics::summarize(gaps);
    return (s.stddev * s.stddev) / (s.mean * s.mean);
  };
  MmppArrivals bursty(3000.0, 200.0, 100.0, sim::Rng(3));
  PoissonArrivals poisson(1600.0, sim::Rng(3));
  auto bt = take_arrivals(bursty, 30000);
  auto pt = take_arrivals(poisson, 30000);
  EXPECT_GT(cv2(bt), 1.5);
  EXPECT_NEAR(cv2(pt), 1.0, 0.15);
}

TEST(MmppArrivalsTest, BadParamsRejected) {
  EXPECT_THROW(MmppArrivals(0.0, 1.0, 1.0, sim::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(MmppArrivals(1.0, -1.0, 1.0, sim::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(MmppArrivals(1.0, 1.0, 0.0, sim::Rng(1)),
               std::invalid_argument);
}

TEST(TraceArrivalsTest, ReplaysExactly) {
  TraceArrivals arr({0.0, 1.5, 1.5, 9.0});
  EXPECT_DOUBLE_EQ(arr.next_ms(), 0.0);
  EXPECT_DOUBLE_EQ(arr.next_ms(), 1.5);
  EXPECT_FALSE(arr.exhausted());
  EXPECT_DOUBLE_EQ(arr.next_ms(), 1.5);
  EXPECT_DOUBLE_EQ(arr.next_ms(), 9.0);
  EXPECT_TRUE(arr.exhausted());
  EXPECT_THROW(arr.next_ms(), std::out_of_range);
}

TEST(TraceArrivalsTest, DecreasingTraceRejected) {
  EXPECT_THROW(TraceArrivals({3.0, 1.0}), std::invalid_argument);
}

TEST(GeneratorWithArrivalsTest, OneJobPerArrival) {
  const DiscreteWorkDistribution dist("d", {{5.0, 1.0}});
  GeneratorConfig cfg;
  cfg.units_per_ms = 10.0;
  const auto inst =
      generate_instance_with_arrivals(dist, cfg, {0.0, 3.0, 12.5});
  ASSERT_EQ(inst.size(), 3u);
  EXPECT_DOUBLE_EQ(inst.jobs[0].arrival, 0.0);
  EXPECT_DOUBLE_EQ(inst.jobs[1].arrival, 30.0);
  EXPECT_DOUBLE_EQ(inst.jobs[2].arrival, 125.0);
  EXPECT_NO_THROW(inst.validate());
}

TEST(GeneratorWithArrivalsTest, EmptyArrivalsRejected) {
  const DiscreteWorkDistribution dist("d", {{5.0, 1.0}});
  EXPECT_THROW(generate_instance_with_arrivals(dist, {}, {}),
               std::invalid_argument);
}

// --- SLO metrics ---

TEST(SloTest, MissFraction) {
  EXPECT_DOUBLE_EQ(metrics::slo_miss_fraction({1.0, 2.0, 3.0, 4.0}, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(metrics::slo_miss_fraction({1.0, 2.0}, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(metrics::slo_miss_fraction({}, 1.0), 0.0);
  // Threshold is inclusive (miss = strictly greater).
  EXPECT_DOUBLE_EQ(metrics::slo_miss_fraction({2.0, 2.0}, 2.0), 0.0);
}

TEST(SloTest, TightestSlo) {
  std::vector<double> flows;
  for (int i = 1; i <= 100; ++i) flows.push_back(static_cast<double>(i));
  EXPECT_NEAR(metrics::tightest_slo(flows, 0.01), 99.01, 0.02);
  EXPECT_DOUBLE_EQ(metrics::tightest_slo(flows, 0.0), 100.0);
  EXPECT_THROW(metrics::tightest_slo({}, 0.1), std::invalid_argument);
  EXPECT_THROW(metrics::tightest_slo(flows, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace pjsched::workload
