// Unit tests for the DAG job model (src/dag/dag.h): construction, sealing
// validation, cached work/span, and the dynamically unfolding ReadyTracker.
#include "src/dag/dag.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace pjsched::dag {
namespace {

Dag diamond() {
  //    0(2)
  //   /    \
  // 1(3)  2(5)
  //   \    /
  //    3(1)
  Dag d;
  const NodeId a = d.add_node(2);
  const NodeId b = d.add_node(3);
  const NodeId c = d.add_node(5);
  const NodeId e = d.add_node(1);
  d.add_edge(a, b);
  d.add_edge(a, c);
  d.add_edge(b, e);
  d.add_edge(c, e);
  d.seal();
  return d;
}

TEST(DagTest, AddNodeReturnsSequentialIds) {
  Dag d;
  EXPECT_EQ(d.add_node(1), 0u);
  EXPECT_EQ(d.add_node(2), 1u);
  EXPECT_EQ(d.add_node(3), 2u);
  EXPECT_EQ(d.node_count(), 3u);
}

TEST(DagTest, ZeroWorkNodeRejected) {
  Dag d;
  EXPECT_THROW(d.add_node(0), std::invalid_argument);
}

TEST(DagTest, SelfLoopRejected) {
  Dag d;
  d.add_node(1);
  EXPECT_THROW(d.add_edge(0, 0), std::invalid_argument);
}

TEST(DagTest, OutOfRangeEdgeRejected) {
  Dag d;
  d.add_node(1);
  EXPECT_THROW(d.add_edge(0, 1), std::invalid_argument);
  EXPECT_THROW(d.add_edge(5, 0), std::invalid_argument);
}

TEST(DagTest, EmptyDagCannotSeal) {
  Dag d;
  EXPECT_THROW(d.seal(), std::invalid_argument);
}

TEST(DagTest, DuplicateEdgeRejectedAtSeal) {
  Dag d;
  d.add_node(1);
  d.add_node(1);
  d.add_edge(0, 1);
  d.add_edge(0, 1);
  EXPECT_THROW(d.seal(), std::invalid_argument);
}

TEST(DagTest, CycleRejectedAtSeal) {
  Dag d;
  d.add_node(1);
  d.add_node(1);
  d.add_node(1);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  d.add_edge(2, 0);
  EXPECT_THROW(d.seal(), std::invalid_argument);
}

TEST(DagTest, MutationAfterSealRejected) {
  Dag d;
  d.add_node(1);
  d.seal();
  EXPECT_THROW(d.add_node(1), std::logic_error);
  EXPECT_THROW(d.seal(), std::logic_error);
}

TEST(DagTest, DiamondStructure) {
  const Dag d = diamond();
  EXPECT_TRUE(d.sealed());
  EXPECT_EQ(d.node_count(), 4u);
  EXPECT_EQ(d.edge_count(), 4u);
  EXPECT_EQ(d.total_work(), 11u);
  // Longest path 0 -> 2 -> 3 = 2 + 5 + 1.
  EXPECT_EQ(d.critical_path(), 8u);
  EXPECT_DOUBLE_EQ(d.parallelism(), 11.0 / 8.0);

  ASSERT_EQ(d.sources().size(), 1u);
  EXPECT_EQ(d.sources()[0], 0u);

  const auto succ0 = d.successors(0);
  EXPECT_EQ(std::vector<NodeId>(succ0.begin(), succ0.end()),
            (std::vector<NodeId>{1, 2}));
  const auto pred3 = d.predecessors(3);
  EXPECT_EQ(std::vector<NodeId>(pred3.begin(), pred3.end()),
            (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(d.in_degree(0), 0u);
  EXPECT_EQ(d.out_degree(0), 2u);
  EXPECT_EQ(d.in_degree(3), 2u);
  EXPECT_EQ(d.out_degree(3), 0u);
}

TEST(DagTest, SingleNodeDag) {
  Dag d;
  d.add_node(7);
  d.seal();
  EXPECT_EQ(d.total_work(), 7u);
  EXPECT_EQ(d.critical_path(), 7u);
  EXPECT_EQ(d.sources().size(), 1u);
}

TEST(DagTest, ChainCriticalPathEqualsTotalWork) {
  Dag d;
  NodeId prev = d.add_node(4);
  for (int i = 0; i < 9; ++i) {
    const NodeId cur = d.add_node(4);
    d.add_edge(prev, cur);
    prev = cur;
  }
  d.seal();
  EXPECT_EQ(d.total_work(), 40u);
  EXPECT_EQ(d.critical_path(), 40u);
}

TEST(DagTest, WideIndependentNodes) {
  Dag d;
  for (int i = 0; i < 16; ++i) d.add_node(3);
  d.seal();
  EXPECT_EQ(d.total_work(), 48u);
  EXPECT_EQ(d.critical_path(), 3u);
  EXPECT_EQ(d.sources().size(), 16u);
}

// --- ReadyTracker ---

TEST(ReadyTrackerTest, RequiresSealedDag) {
  Dag d;
  d.add_node(1);
  EXPECT_THROW(ReadyTracker t(d), std::invalid_argument);
}

TEST(ReadyTrackerTest, InitialReadySetIsSources) {
  const Dag d = diamond();
  ReadyTracker t(d);
  ASSERT_EQ(t.ready_count(), 1u);
  EXPECT_EQ(t.ready()[0], 0u);
  EXPECT_FALSE(t.done());
  EXPECT_EQ(t.completed_count(), 0u);
}

TEST(ReadyTrackerTest, DiamondUnfoldsInOrder) {
  const Dag d = diamond();
  ReadyTracker t(d);
  t.claim(0);
  EXPECT_EQ(t.ready_count(), 0u);

  std::vector<NodeId> enabled;
  EXPECT_EQ(t.complete(0, &enabled), 2u);
  EXPECT_EQ(enabled, (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(t.ready_count(), 2u);

  t.claim(1);
  t.claim(2);
  EXPECT_EQ(t.complete(1), 0u);  // node 3 still blocked on 2
  EXPECT_EQ(t.ready_count(), 0u);
  EXPECT_EQ(t.complete(2), 1u);  // now 3 unblocks
  ASSERT_EQ(t.ready_count(), 1u);
  EXPECT_EQ(t.ready()[0], 3u);

  t.claim(3);
  t.complete(3);
  EXPECT_TRUE(t.done());
  EXPECT_EQ(t.completed_count(), 4u);
}

TEST(ReadyTrackerTest, ClaimUnreadyNodeRejected) {
  const Dag d = diamond();
  ReadyTracker t(d);
  EXPECT_THROW(t.claim(3), std::logic_error);   // blocked
  t.claim(0);
  EXPECT_THROW(t.claim(0), std::logic_error);   // already claimed
}

TEST(ReadyTrackerTest, CompleteUnclaimedNodeRejected) {
  const Dag d = diamond();
  ReadyTracker t(d);
  EXPECT_THROW(t.complete(0), std::logic_error);  // never claimed
  t.claim(0);
  t.complete(0);
  EXPECT_THROW(t.complete(0), std::logic_error);  // double complete
}

TEST(ReadyTrackerTest, NonClairvoyance_OnlyFrontierVisible) {
  // The tracker exposes ready nodes only: before node 0 completes, nodes
  // 1..3 of the diamond are invisible to a scheduler.
  const Dag d = diamond();
  ReadyTracker t(d);
  const auto ready = t.ready();
  EXPECT_EQ(std::count(ready.begin(), ready.end(), 1u), 0);
  EXPECT_EQ(std::count(ready.begin(), ready.end(), 2u), 0);
  EXPECT_EQ(std::count(ready.begin(), ready.end(), 3u), 0);
}

TEST(ReadyTrackerTest, IndependentTrackersShareOneDag) {
  const Dag d = diamond();
  ReadyTracker t1(d);
  ReadyTracker t2(d);
  t1.claim(0);
  t1.complete(0);
  // t2 is unaffected by t1's progress.
  EXPECT_EQ(t2.ready_count(), 1u);
  EXPECT_EQ(t2.completed_count(), 0u);
}

}  // namespace
}  // namespace pjsched::dag
