// Tests for the DAG builders (src/dag/builders.h), including parameterized
// property sweeps over random layered DAGs.
#include "src/dag/builders.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/dag/analysis.h"

namespace pjsched::dag {
namespace {

TEST(SerialChainTest, WorkAndSpan) {
  const Dag d = serial_chain(5, 3);
  EXPECT_EQ(d.node_count(), 5u);
  EXPECT_EQ(d.edge_count(), 4u);
  EXPECT_EQ(d.total_work(), 15u);
  EXPECT_EQ(d.critical_path(), 15u);
  EXPECT_DOUBLE_EQ(d.parallelism(), 1.0);
}

TEST(SerialChainTest, LengthOne) {
  const Dag d = serial_chain(1, 9);
  EXPECT_EQ(d.node_count(), 1u);
  EXPECT_EQ(d.critical_path(), 9u);
}

TEST(SerialChainTest, ZeroLengthRejected) {
  EXPECT_THROW(serial_chain(0, 1), std::invalid_argument);
}

TEST(SingleNodeTest, Basic) {
  const Dag d = single_node(42);
  EXPECT_EQ(d.node_count(), 1u);
  EXPECT_EQ(d.total_work(), 42u);
}

TEST(ParallelForTest, Shape) {
  const Dag d = parallel_for_dag(8, 10, 2, 3);
  EXPECT_EQ(d.node_count(), 10u);   // root + 8 bodies + join
  EXPECT_EQ(d.edge_count(), 16u);
  EXPECT_EQ(d.total_work(), 2u + 8 * 10 + 3u);
  EXPECT_EQ(d.critical_path(), 2u + 10u + 3u);
  // Exactly one source (the root).
  EXPECT_EQ(d.sources().size(), 1u);
  EXPECT_EQ(d.out_degree(d.sources()[0]), 8u);
}

TEST(ParallelForTest, PerGrainWorkCallback) {
  const Dag d = parallel_for_dag_fn(
      4, [](std::size_t i) { return static_cast<Work>(i + 1); }, 1, 1);
  EXPECT_EQ(d.total_work(), 1u + (1 + 2 + 3 + 4) + 1u);
  EXPECT_EQ(d.critical_path(), 1u + 4u + 1u);  // longest grain is 4
}

TEST(ParallelForTest, ZeroGrainsRejected) {
  EXPECT_THROW(parallel_for_dag(0, 1), std::invalid_argument);
}

TEST(DivideAndConquerTest, DepthZeroIsLeaf) {
  const Dag d = divide_and_conquer(0, 5);
  EXPECT_EQ(d.node_count(), 1u);
  EXPECT_EQ(d.total_work(), 5u);
}

TEST(DivideAndConquerTest, CountsAndSpan) {
  // depth 3: 2^3 = 8 leaves; 2^3 - 1 = 7 fork nodes and 7 join nodes.
  const Dag d = divide_and_conquer(3, 4);
  EXPECT_EQ(d.node_count(), 8u + 7u + 7u);
  EXPECT_EQ(d.total_work(), 8u * 4 + 14u);
  // Span: 3 forks + leaf + 3 joins = 3 + 4 + 3.
  EXPECT_EQ(d.critical_path(), 10u);
  EXPECT_EQ(d.sources().size(), 1u);
}

TEST(StarTest, SectionFiveJobShape) {
  // One unit root preceding c independent unit tasks: W = c+1, P = 2.
  const Dag d = star(4);
  EXPECT_EQ(d.node_count(), 5u);
  EXPECT_EQ(d.total_work(), 5u);
  EXPECT_EQ(d.critical_path(), 2u);
  EXPECT_EQ(d.sources().size(), 1u);
  EXPECT_EQ(d.out_degree(0), 4u);
  for (NodeId v = 1; v <= 4; ++v) {
    EXPECT_EQ(d.in_degree(v), 1u);
    EXPECT_EQ(d.out_degree(v), 0u);
  }
}

TEST(StarTest, ZeroChildrenRejected) {
  EXPECT_THROW(star(0), std::invalid_argument);
}

TEST(RandomLayeredTest, InvalidOptionsRejected) {
  sim::Rng rng(1);
  RandomLayeredOptions opt;
  opt.layers = 0;
  EXPECT_THROW(random_layered(rng, opt), std::invalid_argument);
  opt = {};
  opt.min_width = 5;
  opt.max_width = 2;
  EXPECT_THROW(random_layered(rng, opt), std::invalid_argument);
  opt = {};
  opt.edge_probability = 1.5;
  EXPECT_THROW(random_layered(rng, opt), std::invalid_argument);
  opt = {};
  opt.min_work = 9;
  opt.max_work = 3;
  EXPECT_THROW(random_layered(rng, opt), std::invalid_argument);
}

TEST(RandomLayeredTest, DeterministicGivenSeed) {
  RandomLayeredOptions opt;
  opt.layers = 5;
  opt.max_width = 6;
  sim::Rng r1(99), r2(99);
  const Dag a = random_layered(r1, opt);
  const Dag b = random_layered(r2, opt);
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  EXPECT_EQ(a.total_work(), b.total_work());
  EXPECT_EQ(a.critical_path(), b.critical_path());
}

// Property sweep: structural invariants across many random DAGs.
class RandomLayeredProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomLayeredProperty, StructuralInvariants) {
  sim::Rng rng(GetParam());
  RandomLayeredOptions opt;
  opt.layers = 1 + static_cast<std::size_t>(rng.uniform_int(6));
  opt.min_width = 1;
  opt.max_width = 5;
  opt.min_work = 1;
  opt.max_work = 10;
  opt.edge_probability = rng.uniform_double();
  const Dag d = random_layered(rng, opt);

  EXPECT_TRUE(d.sealed());
  EXPECT_GE(d.node_count(), opt.layers);           // >= 1 node per layer
  EXPECT_LE(d.node_count(), opt.layers * opt.max_width);

  // Cached values agree with independent recomputation.
  EXPECT_EQ(d.total_work(), compute_total_work(d));
  EXPECT_EQ(d.critical_path(), compute_critical_path(d));

  // Depth really is `layers`: the critical path has at least `layers`
  // nodes' worth of minimum work.
  EXPECT_GE(d.critical_path(), opt.layers * opt.min_work);

  // Work bounds per node respected.
  for (NodeId v = 0; v < d.node_count(); ++v) {
    EXPECT_GE(d.work_of(v), opt.min_work);
    EXPECT_LE(d.work_of(v), opt.max_work);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLayeredProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace pjsched::dag
