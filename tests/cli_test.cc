// Tests for the CLI front end (src/cli/cli.h), exercised in-process.
#include "src/cli/cli.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace pjsched::cli {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult run(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

TEST(CliTest, MissingCommandIsUsageError) {
  const auto r = run({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(CliTest, UnknownFlagRejected) {
  const auto r = run({"run", "--frobnicate=1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown flag"), std::string::npos);
}

TEST(CliTest, BadValueRejected) {
  EXPECT_EQ(run({"run", "--jobs=banana"}).code, 2);
  EXPECT_EQ(run({"run", "--workload=unknown"}).code, 2);
  EXPECT_EQ(run({"run", "--scheduler=unknown"}).code, 2);
}

TEST(CliTest, RunPrintsSummary) {
  const auto r = run({"run", "--jobs=30", "--qps=500", "--m=4",
                      "--scheduler=fifo", "--seed=3"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("scheduler:        fifo"), std::string::npos);
  EXPECT_NE(r.out.find("max flow:"), std::string::npos);
  EXPECT_NE(r.out.find("opt lower bound:"), std::string::npos);
}

TEST(CliTest, RunCsvOutput) {
  const auto r = run({"run", "--jobs=20", "--m=2", "--scheduler=admit-first",
                      "--csv"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("scheduler,jobs,m,speed,max_flow_ms"),
            std::string::npos);
  EXPECT_NE(r.out.find("admit-first,20,2,"), std::string::npos);
}

TEST(CliTest, RunWithGantt) {
  const auto r = run({"run", "--jobs=10", "--m=2", "--scheduler=fifo",
                      "--gantt=40"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("P0"), std::string::npos);
  EXPECT_NE(r.out.find("P1"), std::string::npos);
}

TEST(CliTest, RunWithUtilizationProfile) {
  const auto r = run({"run", "--jobs=10", "--m=2", "--scheduler=fifo",
                      "--utilization=5"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("utilization profile"), std::string::npos);
}

TEST(CliTest, DeterministicAcrossInvocations) {
  const auto a = run({"run", "--jobs=50", "--scheduler=steal-8-first",
                      "--seed=11", "--csv"});
  const auto b = run({"run", "--jobs=50", "--scheduler=steal-8-first",
                      "--seed=11", "--csv"});
  EXPECT_EQ(a.out, b.out);
}

TEST(CliTest, MultiTrialRun) {
  const auto r = run({"run", "--jobs=100", "--trials=3", "--m=4",
                      "--scheduler=admit-first"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("3 trials"), std::string::npos);
  EXPECT_NE(r.out.find("max_flow_ms"), std::string::npos);
  EXPECT_NE(r.out.find("ratio_to_opt"), std::string::npos);
}

TEST(CliTest, TrialsRejectBadCombinations) {
  EXPECT_EQ(run({"run", "--trials=0"}).code, 2);
  EXPECT_EQ(run({"run", "--trials=2", "--load=/tmp/x"}).code, 2);
}

TEST(CliTest, WeightsFlag) {
  const auto r = run({"run", "--jobs=50", "--weights=1,4,16", "--m=4",
                      "--scheduler=steal-4-first-bwf", "--csv"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("steal-4-first-bwf"), std::string::npos);
  EXPECT_EQ(run({"run", "--weights=banana"}).code, 2);
}

TEST(CliTest, BoundsCommand) {
  const auto r = run({"bounds", "--jobs=25", "--workload=finance", "--m=8"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("span (max P_i)"), std::string::npos);
  EXPECT_NE(r.out.find("combined"), std::string::npos);
}

TEST(CliTest, GenerateThenLoadRoundTrip) {
  const auto gen = run({"generate", "--jobs=15", "--workload=lognormal",
                        "--seed=5"});
  ASSERT_EQ(gen.code, 0) << gen.err;
  EXPECT_NE(gen.out.find("instance 15"), std::string::npos);

  const std::string path = "/tmp/pjsched_cli_test_instance.txt";
  {
    std::ofstream f(path);
    f << gen.out;
  }
  const auto loaded = run({"run", std::string("--load=") + path, "--m=4",
                           "--scheduler=fifo", "--csv"});
  EXPECT_EQ(loaded.code, 0) << loaded.err;
  EXPECT_NE(loaded.out.find("fifo,15,4,"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, LoadMissingFileFails) {
  const auto r = run({"run", "--load=/nonexistent/path.txt"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(CliTest, ChromeTraceWritten) {
  const std::string path = "/tmp/pjsched_cli_test_trace.json";
  const auto r = run({"run", "--jobs=8", "--m=2", "--scheduler=admit-first",
                      std::string("--chrome-trace=") + path});
  EXPECT_EQ(r.code, 0) << r.err;
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_NE(ss.str().find("traceEvents"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pjsched::cli
