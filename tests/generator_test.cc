// Tests for online-instance generation (src/workload/generator.h).
#include "src/workload/generator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace pjsched::workload {
namespace {

TEST(ParallelForJobTest, ShapeAndWork) {
  // 10 ms at 10 units/ms = 100 units: root 1 + bodies 98 + join 1.
  const dag::Dag d = make_parallel_for_job(10.0, 8, 10.0);
  EXPECT_EQ(d.total_work(), 100u);
  EXPECT_EQ(d.node_count(), 10u);  // root + 8 grains + join
  // Even split: 98 = 8*12 + 2, grains are 12 or 13.
  EXPECT_EQ(d.critical_path(), 1u + 13u + 1u);
}

TEST(ParallelForJobTest, TinyJobsBecomeSingleNodes) {
  const dag::Dag d = make_parallel_for_job(0.1, 8, 10.0);  // 1 unit
  EXPECT_EQ(d.node_count(), 1u);
  EXPECT_EQ(d.total_work(), 1u);
}

TEST(ParallelForJobTest, GrainsCappedByWork) {
  // 5 units of body work cannot fill 32 grains; no zero-work nodes appear.
  const dag::Dag d = make_parallel_for_job(0.7, 32, 10.0);  // 7 units
  EXPECT_EQ(d.total_work(), 7u);
  for (dag::NodeId v = 0; v < d.node_count(); ++v)
    EXPECT_GE(d.work_of(v), 1u);
}

TEST(GeneratorTest, ProducesRequestedJobCount) {
  const DiscreteWorkDistribution dist("d", {{5.0, 1.0}});
  GeneratorConfig cfg;
  cfg.num_jobs = 137;
  const auto inst = generate_instance(dist, cfg);
  EXPECT_EQ(inst.size(), 137u);
  EXPECT_NO_THROW(inst.validate());
}

TEST(GeneratorTest, ArrivalsIncreaseAndScaleWithUnits) {
  const DiscreteWorkDistribution dist("d", {{5.0, 1.0}});
  GeneratorConfig cfg;
  cfg.num_jobs = 50;
  cfg.qps = 100.0;
  cfg.units_per_ms = 10.0;
  const auto inst = generate_instance(dist, cfg);
  for (std::size_t i = 1; i < inst.jobs.size(); ++i)
    EXPECT_GT(inst.jobs[i].arrival, inst.jobs[i - 1].arrival);
  // Mean gap 10 ms = 100 units.
  const double mean_gap =
      inst.jobs.back().arrival / static_cast<double>(inst.size());
  EXPECT_NEAR(mean_gap, 100.0, 30.0);
}

TEST(GeneratorTest, JobWorkMatchesDistribution) {
  // Point distribution at 5 ms -> every job has exactly 50 units of work.
  const DiscreteWorkDistribution dist("d", {{5.0, 1.0}});
  GeneratorConfig cfg;
  cfg.num_jobs = 20;
  cfg.units_per_ms = 10.0;
  const auto inst = generate_instance(dist, cfg);
  for (const auto& job : inst.jobs) EXPECT_EQ(job.graph.total_work(), 50u);
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  const auto dist = bing_distribution();
  GeneratorConfig cfg;
  cfg.num_jobs = 60;
  cfg.seed = 123;
  const auto a = generate_instance(dist, cfg);
  const auto b = generate_instance(dist, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].arrival, b.jobs[i].arrival);
    EXPECT_EQ(a.jobs[i].graph.total_work(), b.jobs[i].graph.total_work());
  }
}

TEST(GeneratorTest, SeedChangesInstance) {
  const auto dist = bing_distribution();
  GeneratorConfig cfg;
  cfg.num_jobs = 60;
  cfg.seed = 1;
  const auto a = generate_instance(dist, cfg);
  cfg.seed = 2;
  const auto b = generate_instance(dist, cfg);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a.jobs[i].arrival != b.jobs[i].arrival) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, WeightClassesSampled) {
  const DiscreteWorkDistribution dist("d", {{5.0, 1.0}});
  GeneratorConfig cfg;
  cfg.num_jobs = 200;
  cfg.weight_classes = {1.0, 4.0, 16.0};
  const auto inst = generate_instance(dist, cfg);
  std::set<double> seen;
  for (const auto& job : inst.jobs) seen.insert(job.weight);
  EXPECT_EQ(seen, (std::set<double>{1.0, 4.0, 16.0}));
}

TEST(GeneratorTest, BadConfigRejected) {
  const DiscreteWorkDistribution dist("d", {{5.0, 1.0}});
  GeneratorConfig cfg;
  cfg.num_jobs = 0;
  EXPECT_THROW(generate_instance(dist, cfg), std::invalid_argument);
  cfg = {};
  cfg.units_per_ms = 0.0;
  EXPECT_THROW(generate_instance(dist, cfg), std::invalid_argument);
  cfg = {};
  cfg.weight_classes = {};
  EXPECT_THROW(generate_instance(dist, cfg), std::invalid_argument);
}

TEST(TimeConversionTest, RoundTrip) {
  GeneratorConfig cfg;
  cfg.units_per_ms = 10.0;
  EXPECT_DOUBLE_EQ(time_to_ms(250.0, cfg), 25.0);
}

}  // namespace
}  // namespace pjsched::workload
