// Tests for the max-stretch extension (src/core/stretch.h; paper Section 7
// Remarks: weighted flow captures both DAG readings of stretch).
#include "src/core/stretch.h"

#include <gtest/gtest.h>

#include "src/core/run.h"
#include "src/dag/builders.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

using testutil::make_instance;

TEST(StretchTest, Denominators) {
  core::JobSpec job;
  job.graph = dag::parallel_for_dag(4, 5);  // W = 22, P = 7
  EXPECT_DOUBLE_EQ(core::stretch_denominator(job, core::StretchKind::kByWork),
                   22.0);
  EXPECT_DOUBLE_EQ(core::stretch_denominator(job, core::StretchKind::kBySpan),
                   7.0);
}

TEST(StretchTest, ApplyWeightsInvertsDenominator) {
  auto inst = make_instance({
      {0.0, dag::single_node(10)},
      {0.0, dag::serial_chain(2, 3)},
  });
  core::apply_stretch_weights(inst, core::StretchKind::kByWork);
  EXPECT_DOUBLE_EQ(inst.jobs[0].weight, 0.1);
  EXPECT_DOUBLE_EQ(inst.jobs[1].weight, 1.0 / 6.0);
  core::apply_stretch_weights(inst, core::StretchKind::kBySpan);
  EXPECT_DOUBLE_EQ(inst.jobs[0].weight, 0.1);      // P == W for one node
  EXPECT_DOUBLE_EQ(inst.jobs[1].weight, 1.0 / 6.0);  // chain: P == W
}

TEST(StretchTest, MaxStretchMatchesWeightedFlowUnderStretchWeights) {
  auto inst = testutil::random_instance(9, 15, 20.0);
  core::apply_stretch_weights(inst, core::StretchKind::kByWork);
  const auto res =
      core::run_scheduler(inst, core::parse_scheduler("bwf"), {2, 1.0});
  EXPECT_NEAR(core::max_stretch(inst, res, core::StretchKind::kByWork),
              res.max_weighted_flow, 1e-9);
}

TEST(StretchTest, BySpanStretchAtLeastOneOverSpeed) {
  // Flow >= P/s, so by-span stretch >= 1/s for every scheduler.
  auto inst = testutil::random_instance(10, 20, 30.0);
  for (const char* name : {"fifo", "bwf", "admit-first"}) {
    const auto res =
        core::run_scheduler(inst, core::parse_scheduler(name), {4, 1.0});
    EXPECT_GE(core::max_stretch(inst, res, core::StretchKind::kBySpan),
              1.0 - 1e-9)
        << name;
  }
}

TEST(StretchTest, SpanLowerBound) {
  auto inst = make_instance({
      {0.0, dag::parallel_for_dag(4, 5)},  // P = 7, W = 22
      {0.0, dag::single_node(3)},
  });
  EXPECT_DOUBLE_EQ(
      core::stretch_span_lower_bound(inst, core::StretchKind::kBySpan), 1.0);
  // by-work: max(7/22, 3/3) = 1.0.
  EXPECT_DOUBLE_EQ(
      core::stretch_span_lower_bound(inst, core::StretchKind::kByWork), 1.0);
}

TEST(StretchTest, BwfWithStretchWeightsBeatsFifoOnAdversarialMix) {
  // A giant job saturates the machine; tiny jobs arrive behind it.  FIFO
  // makes the tiny jobs wait (enormous stretch); BWF with by-work stretch
  // weights prioritizes them.
  core::Instance inst;
  inst.jobs.push_back({0.0, 1.0, dag::single_node(1000)});
  for (int i = 0; i < 10; ++i)
    inst.jobs.push_back(
        {10.0 + static_cast<core::Time>(i), 1.0, dag::single_node(2)});
  auto weighted = inst;
  core::apply_stretch_weights(weighted, core::StretchKind::kByWork);

  const auto fifo =
      core::run_scheduler(inst, core::parse_scheduler("fifo"), {1, 1.0});
  const auto bwf =
      core::run_scheduler(weighted, core::parse_scheduler("bwf"), {1, 1.0});
  const double fifo_stretch =
      core::max_stretch(inst, fifo, core::StretchKind::kByWork);
  const double bwf_stretch =
      core::max_stretch(weighted, bwf, core::StretchKind::kByWork);
  EXPECT_LT(bwf_stretch, fifo_stretch / 10.0);
}

TEST(StretchTest, SizeMismatchRejected) {
  auto inst = make_instance({{0.0, dag::single_node(1)}});
  core::ScheduleResult res;  // empty flow vector
  EXPECT_THROW(core::max_stretch(inst, res, core::StretchKind::kByWork),
               std::invalid_argument);
}

}  // namespace
}  // namespace pjsched
