// Tests for the lower-bound calculators (src/core/bounds.h).
#include "src/core/bounds.h"

#include <gtest/gtest.h>

#include "src/dag/builders.h"
#include "src/sched/opt_bound.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

using testutil::make_instance;
using testutil::make_weighted_instance;

TEST(BoundsTest, SpanBound) {
  auto inst = make_instance({
      {0.0, dag::serial_chain(4, 3)},   // P = 12
      {1.0, dag::parallel_for_dag(8, 5)},  // P = 7
  });
  EXPECT_DOUBLE_EQ(core::span_lower_bound(inst), 12.0);
}

TEST(BoundsTest, WorkBound) {
  auto inst = make_instance({
      {0.0, dag::single_node(40)},
      {0.0, dag::single_node(12)},
  });
  EXPECT_DOUBLE_EQ(core::work_lower_bound(inst, 4), 10.0);
}

TEST(BoundsTest, OptSimBoundMatchesScheduler) {
  for (std::uint64_t seed : {41u, 42u}) {
    auto inst = testutil::random_instance(seed, 30, 30.0);
    sched::OptLowerBound opt;
    EXPECT_DOUBLE_EQ(core::opt_sim_lower_bound(inst, 3),
                     opt.run(inst, {3, 1.0}).max_flow);
  }
}

TEST(BoundsTest, OptSimDominatesWorkBound) {
  auto inst = testutil::random_instance(43, 20, 25.0);
  EXPECT_GE(core::opt_sim_lower_bound(inst, 2) + 1e-12,
            core::work_lower_bound(inst, 2));
}

TEST(BoundsTest, CombinedIsMax) {
  auto inst = make_instance({
      {0.0, dag::serial_chain(10, 10)},  // P = 100 dominates
      {0.0, dag::single_node(8)},
  });
  const double combined = core::combined_lower_bound(inst, 4);
  EXPECT_DOUBLE_EQ(combined, 100.0);
  EXPECT_GE(combined, core::span_lower_bound(inst));
  EXPECT_GE(combined, core::work_lower_bound(inst, 4));
  EXPECT_GE(combined, core::opt_sim_lower_bound(inst, 4));
}

TEST(BoundsTest, WeightedBounds) {
  auto inst = make_weighted_instance({
      {0.0, 2.0, dag::serial_chain(3, 4)},  // w*P = 24, w*W = 24
      {0.0, 5.0, dag::single_node(6)},      // w*P = 30, w*W/m
  });
  EXPECT_DOUBLE_EQ(core::weighted_span_lower_bound(inst), 30.0);
  EXPECT_DOUBLE_EQ(core::weighted_work_lower_bound(inst, 3), 10.0);
  EXPECT_DOUBLE_EQ(core::weighted_combined_lower_bound(inst, 3), 30.0);
}

TEST(BoundsTest, UnweightedEqualsWeightedWhenAllOnes) {
  auto inst = testutil::random_instance(44, 15, 20.0);
  EXPECT_DOUBLE_EQ(core::span_lower_bound(inst),
                   core::weighted_span_lower_bound(inst));
  EXPECT_DOUBLE_EQ(core::work_lower_bound(inst, 2),
                   core::weighted_work_lower_bound(inst, 2));
}

TEST(BoundsTest, ZeroProcessorsRejected) {
  auto inst = make_instance({{0.0, dag::single_node(1)}});
  EXPECT_THROW(core::work_lower_bound(inst, 0), std::invalid_argument);
  EXPECT_THROW(core::opt_sim_lower_bound(inst, 0), std::invalid_argument);
  EXPECT_THROW(core::weighted_work_lower_bound(inst, 0), std::invalid_argument);
}

}  // namespace
}  // namespace pjsched
