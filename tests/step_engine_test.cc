// Tests for the work-stealing step engine (src/sim/step_engine.h): exact
// step accounting on hand instances, admit-first vs steal-k-first gating,
// determinism, speed scaling, and audit compliance.
#include "src/sim/step_engine.h"

#include <gtest/gtest.h>

#include "src/dag/builders.h"
#include "src/metrics/audit.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

using testutil::make_instance;

core::ScheduleResult run_ws(const core::Instance& inst, unsigned m,
                            unsigned k = 0, double speed = 1.0,
                            std::uint64_t seed = 1,
                            sim::Trace* trace = nullptr) {
  sim::StepEngineOptions opt;
  opt.machine = {m, speed};
  opt.steal_k = k;
  opt.seed = seed;
  opt.trace = trace;
  return sim::run_step_engine(inst, opt);
}

TEST(StepEngineTest, SingleWorkerSequentialExact) {
  // Admit-first, m=1: admit at step 0 and work 5 consecutive steps.
  auto inst = make_instance({{0.0, dag::single_node(5)}});
  const auto res = run_ws(inst, 1, 0);
  EXPECT_DOUBLE_EQ(res.completion[0], 5.0);
  EXPECT_EQ(res.stats.work_steps, 5u);
  EXPECT_EQ(res.stats.admissions, 1u);
  EXPECT_EQ(res.stats.steal_attempts, 0u);
}

TEST(StepEngineTest, StealKDelaysAdmissionExactly) {
  // m=1, k=2: two failed steal steps (no victims), then admit + work.
  auto inst = make_instance({{0.0, dag::single_node(5)}});
  const auto res = run_ws(inst, 1, 2);
  EXPECT_DOUBLE_EQ(res.completion[0], 7.0);
  EXPECT_EQ(res.stats.steal_attempts, 2u);
  EXPECT_EQ(res.stats.successful_steals, 0u);
}

TEST(StepEngineTest, SpeedScalesStepDuration) {
  // Speed 2: each step is 0.5 time; 4 units complete at t = 2.
  auto inst = make_instance({{0.0, dag::single_node(4)}});
  const auto res = run_ws(inst, 1, 0, 2.0);
  EXPECT_DOUBLE_EQ(res.completion[0], 2.0);
}

TEST(StepEngineTest, ArrivalMapsToNextStepBoundary) {
  // Speed 1; arrival at 2.3 -> first step at 3; 1 unit -> completes at 4.
  auto inst = make_instance({{2.3, dag::single_node(1)}});
  const auto res = run_ws(inst, 1, 0);
  EXPECT_DOUBLE_EQ(res.completion[0], 4.0);
}

TEST(StepEngineTest, StarJobChainOfEnables) {
  // star(1): root then one child, same worker continues; 2 steps.
  auto inst = make_instance({{0.0, dag::star(1)}});
  const auto res = run_ws(inst, 2, 0, 1.0, 7);
  EXPECT_DOUBLE_EQ(res.completion[0], 2.0);
}

TEST(StepEngineTest, ChainRunsWithoutSteals) {
  // A chain admitted by one worker never exposes stealable nodes.
  auto inst = make_instance({{0.0, dag::serial_chain(6, 2)}});
  const auto res = run_ws(inst, 4, 0, 1.0, 3);
  EXPECT_DOUBLE_EQ(res.completion[0], 12.0);
  EXPECT_EQ(res.stats.successful_steals, 0u);
}

TEST(StepEngineTest, DeterministicGivenSeed) {
  auto inst = testutil::random_instance(5, 30, 60.0);
  const auto a = run_ws(inst, 4, 2, 1.0, 99);
  const auto b = run_ws(inst, 4, 2, 1.0, 99);
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.stats.steal_attempts, b.stats.steal_attempts);
  EXPECT_EQ(a.stats.successful_steals, b.stats.successful_steals);
}

TEST(StepEngineTest, SeedsChangeTheSchedule) {
  // With many parallel jobs, different seeds virtually always give
  // different steal totals.
  auto inst = testutil::random_instance(6, 40, 40.0);
  const auto a = run_ws(inst, 4, 0, 1.0, 1);
  const auto b = run_ws(inst, 4, 0, 1.0, 2);
  EXPECT_NE(a.stats.steal_attempts, b.stats.steal_attempts);
}

TEST(StepEngineTest, AuditCleanAdmitFirst) {
  auto inst = testutil::random_instance(7, 25, 50.0);
  sim::Trace trace;
  const auto res = run_ws(inst, 3, 0, 1.0, 11, &trace);
  const auto report = metrics::audit_schedule(inst, {3, 1.0}, trace, res);
  EXPECT_TRUE(report.ok) << report.to_string();
}

TEST(StepEngineTest, AuditCleanStealKFirstWithSpeed) {
  auto inst = testutil::random_instance(8, 25, 50.0);
  sim::Trace trace;
  const auto res = run_ws(inst, 4, 8, 2.0, 13, &trace);
  const auto report = metrics::audit_schedule(inst, {4, 2.0}, trace, res);
  EXPECT_TRUE(report.ok) << report.to_string();
}

TEST(StepEngineTest, WorkStepsEqualTotalWork) {
  auto inst = testutil::random_instance(9, 20, 30.0);
  const auto res = run_ws(inst, 4, 0, 1.0, 17);
  EXPECT_EQ(res.stats.work_steps, inst.total_work());
}

TEST(StepEngineTest, IdleGapFastForwardKeepsTimesExact) {
  // Two tiny jobs separated by a huge idle gap.
  auto inst = make_instance({
      {0.0, dag::single_node(2)},
      {100000.0, dag::single_node(3)},
  });
  const auto res = run_ws(inst, 2, 4, 1.0, 5);
  EXPECT_DOUBLE_EQ(res.flow[0] + 0.0, res.completion[0]);
  EXPECT_DOUBLE_EQ(res.completion[1], 100003.0);  // admitted immediately:
  // the fast-forward saturates fail counters, so no k-step delay recurs.
}

TEST(StepEngineTest, FlowNeverBeatsCriticalPathOverSpeed) {
  auto inst = testutil::random_instance(10, 30, 80.0);
  const double s = 2.0;
  const auto res = run_ws(inst, 4, 0, s, 23);
  for (std::size_t i = 0; i < inst.jobs.size(); ++i) {
    const double span = static_cast<double>(inst.jobs[i].graph.critical_path());
    EXPECT_GE(res.flow[i] + 1e-9, span / s);
    const double work = static_cast<double>(inst.jobs[i].graph.total_work());
    EXPECT_GE(res.flow[i] + 1e-9, work / (4 * s));
  }
}

TEST(StepEngineTest, StealsHappenOnWideJobs) {
  // A single massively parallel job on many workers must trigger
  // successful steals (the owner cannot run 16 grains alone as fast).
  auto inst = make_instance({{0.0, dag::parallel_for_dag(16, 50)}});
  const auto res = run_ws(inst, 8, 0, 1.0, 29);
  EXPECT_GT(res.stats.successful_steals, 0u);
  // With 8 workers it must beat sequential execution comfortably.
  EXPECT_LT(res.completion[0], 0.5 * (16 * 50 + 2));
}

TEST(StepEngineTest, InvalidArgumentsRejected) {
  auto inst = make_instance({{0.0, dag::single_node(1)}});
  sim::StepEngineOptions opt;
  opt.machine = {0, 1.0};
  EXPECT_THROW(sim::run_step_engine(inst, opt), std::invalid_argument);
  opt.machine = {1, 0.0};
  EXPECT_THROW(sim::run_step_engine(inst, opt), std::invalid_argument);
}

TEST(StepEngineTest, WeightedAdmissionPicksHeaviestEarliest) {
  // Four queued jobs, weights 3, 1, 3, 2: the weighted-admission heap must
  // admit heaviest-first with earliest-queued tie-break — job 0 before its
  // equal-weight rival job 2, then 3, then 1 — exactly what the old linear
  // scan (strict > over queue order) produced.
  auto inst = testutil::make_weighted_instance({
      {0.0, 3.0, dag::single_node(4)},
      {0.0, 1.0, dag::single_node(4)},
      {0.0, 3.0, dag::single_node(4)},
      {0.0, 2.0, dag::single_node(4)},
  });
  sim::StepEngineOptions opt;
  opt.machine = {1, 1.0};
  opt.admit_by_weight = true;
  sim::Trace trace;
  opt.trace = &trace;
  const auto res = sim::run_step_engine(inst, opt);
  ASSERT_EQ(trace.admissions().size(), 4u);
  EXPECT_EQ(trace.admissions()[0].job, 0u);
  EXPECT_EQ(trace.admissions()[1].job, 2u);
  EXPECT_EQ(trace.admissions()[2].job, 3u);
  EXPECT_EQ(trace.admissions()[3].job, 1u);
  EXPECT_DOUBLE_EQ(res.completion[0], 4.0);
  EXPECT_DOUBLE_EQ(res.completion[1], 16.0);
}

TEST(StepEngineTest, StepBudgetGuardFires) {
  auto inst = make_instance({{0.0, dag::single_node(100)}});
  sim::StepEngineOptions opt;
  opt.machine = {1, 1.0};
  opt.max_steps = 10;  // far too few
  EXPECT_THROW(sim::run_step_engine(inst, opt), std::logic_error);
}

}  // namespace
}  // namespace pjsched
