// Tests for the schedule auditor (src/metrics/audit.h): a clean trace
// passes, and each class of violation is detected.
#include "src/metrics/audit.h"

#include <gtest/gtest.h>

#include "src/dag/builders.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

using testutil::make_instance;

// A correct 2-processor schedule of: job 0 = chain(2 nodes x 2 units),
// job 1 = single node (3 units) arriving at t = 1.
struct Fixture {
  core::Instance inst = make_instance({
      {0.0, dag::serial_chain(2, 2)},
      {1.0, dag::single_node(3)},
  });
  core::MachineConfig machine{2, 1.0};
  core::ScheduleResult result;
  sim::Trace trace;

  Fixture() {
    trace.add_interval({0, 0, 0, 0.0, 2.0});
    trace.add_interval({0, 1, 0, 2.0, 4.0});
    trace.add_interval({1, 0, 1, 1.0, 4.0});
    result.completion = {4.0, 4.0};
    result.finalize(inst.jobs);
  }
};

TEST(AuditTest, CleanSchedulePasses) {
  Fixture f;
  const auto report =
      metrics::audit_schedule(f.inst, f.machine, f.trace, f.result);
  EXPECT_TRUE(report.ok) << report.to_string();
  EXPECT_TRUE(report.to_string().empty());
}

TEST(AuditTest, DetectsProcessorOverlap) {
  Fixture f;
  sim::Trace bad;
  bad.add_interval({0, 0, 0, 0.0, 2.0});
  bad.add_interval({0, 1, 0, 1.0, 3.0});  // overlaps on proc 0
  bad.add_interval({1, 0, 1, 1.0, 4.0});
  core::ScheduleResult res;
  res.completion = {3.0, 4.0};
  res.finalize(f.inst.jobs);
  const auto report = metrics::audit_schedule(f.inst, f.machine, bad, res);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.to_string().find("overlap"), std::string::npos);
}

TEST(AuditTest, DetectsPrecedenceViolation) {
  Fixture f;
  sim::Trace bad;
  bad.add_interval({0, 1, 0, 0.0, 2.0});  // node 1 before node 0!
  bad.add_interval({0, 0, 0, 2.0, 4.0});
  bad.add_interval({1, 0, 1, 1.0, 4.0});
  core::ScheduleResult res;
  res.completion = {4.0, 4.0};
  res.finalize(f.inst.jobs);
  const auto report = metrics::audit_schedule(f.inst, f.machine, bad, res);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.to_string().find("precedence"), std::string::npos);
}

TEST(AuditTest, DetectsEarlyStart) {
  Fixture f;
  sim::Trace bad;
  bad.add_interval({0, 0, 0, 0.0, 2.0});
  bad.add_interval({0, 1, 0, 2.0, 4.0});
  bad.add_interval({1, 0, 1, 0.5, 3.5});  // job 1 arrives at t = 1
  core::ScheduleResult res;
  res.completion = {4.0, 3.5};
  res.finalize(f.inst.jobs);
  const auto report = metrics::audit_schedule(f.inst, f.machine, bad, res);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.to_string().find("before arrival"), std::string::npos);
}

TEST(AuditTest, DetectsWrongWorkAmount) {
  Fixture f;
  sim::Trace bad;
  bad.add_interval({0, 0, 0, 0.0, 2.0});
  bad.add_interval({0, 1, 0, 2.0, 3.0});  // node 1 gets 1 unit, needs 2
  bad.add_interval({1, 0, 1, 1.0, 4.0});
  core::ScheduleResult res;
  res.completion = {3.0, 4.0};
  res.finalize(f.inst.jobs);
  const auto report = metrics::audit_schedule(f.inst, f.machine, bad, res);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.to_string().find("work mismatch"), std::string::npos);
}

TEST(AuditTest, DetectsMissingNode) {
  Fixture f;
  sim::Trace bad;
  bad.add_interval({0, 0, 0, 0.0, 2.0});
  bad.add_interval({1, 0, 1, 1.0, 4.0});  // job 0 node 1 never runs
  core::ScheduleResult res;
  res.completion = {2.0, 4.0};
  res.finalize(f.inst.jobs);
  const auto report = metrics::audit_schedule(f.inst, f.machine, bad, res);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.to_string().find("never executed"), std::string::npos);
}

TEST(AuditTest, DetectsNodeSelfOverlapAcrossProcessors) {
  auto inst = make_instance({{0.0, dag::single_node(4)}});
  sim::Trace bad;
  bad.add_interval({0, 0, 0, 0.0, 2.0});
  bad.add_interval({0, 0, 1, 1.0, 3.0});  // same node on two procs at once
  core::ScheduleResult res;
  res.completion = {3.0};
  res.finalize(inst.jobs);
  const auto report = metrics::audit_schedule(inst, {2, 1.0}, bad, res);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.to_string().find("self-overlap"), std::string::npos);
}

TEST(AuditTest, DetectsCompletionMismatch) {
  Fixture f;
  core::ScheduleResult res;
  res.completion = {4.0, 5.0};  // job 1 actually ends at 4
  res.finalize(f.inst.jobs);
  const auto report = metrics::audit_schedule(f.inst, f.machine, f.trace, res);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.to_string().find("completion"), std::string::npos);
}

TEST(AuditTest, DetectsOutOfRangeIds) {
  Fixture f;
  sim::Trace bad;
  bad.add_interval({7, 0, 0, 0.0, 1.0});  // no job 7
  core::ScheduleResult res;
  res.completion = {4.0, 4.0};
  res.finalize(f.inst.jobs);
  const auto report = metrics::audit_schedule(f.inst, f.machine, bad, res);
  EXPECT_FALSE(report.ok);
}

TEST(AuditTest, RespectsSpeedInWorkAccounting) {
  // At speed 2, a 4-unit node runs for 2 time units.
  auto inst = make_instance({{0.0, dag::single_node(4)}});
  sim::Trace trace;
  trace.add_interval({0, 0, 0, 0.0, 2.0});
  core::ScheduleResult res;
  res.completion = {2.0};
  res.finalize(inst.jobs);
  EXPECT_TRUE(metrics::audit_schedule(inst, {1, 2.0}, trace, res).ok);
  // The same trace at speed 1 under-delivers.
  EXPECT_FALSE(metrics::audit_schedule(inst, {1, 1.0}, trace, res).ok);
}

}  // namespace
}  // namespace pjsched
