// Tests for the real-runtime instance replayer (src/runtime/replayer.h)
// and the weighted-admission work-stealing extension.
#include "src/runtime/replayer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/dag/builders.h"
#include "src/sched/work_stealing.h"
#include "src/workload/instance_io.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

TEST(ReplayerTest, ReplaysEveryJob) {
  runtime::ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 1});
  auto inst = testutil::make_instance({
      {0.0, dag::parallel_for_dag(4, 2)},
      {5.0, dag::serial_chain(3, 2)},
      {10.0, dag::star(3)},
  });
  runtime::ReplayOptions opts;
  opts.ns_per_unit = 5000.0;  // 5 us per unit: fast but measurable
  const auto report = runtime::replay_instance(pool, inst, opts);
  EXPECT_EQ(report.flow_seconds.count, 3u);
  EXPECT_GT(report.flow_seconds.max, 0.0);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_EQ(report.pool_stats.admissions, 3u);
}

TEST(ReplayerTest, FlowAtLeastSpanSpin) {
  // Job with span P must spin at least P * ns_per_unit of wall time.
  runtime::ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 2});
  auto inst = testutil::make_instance({{0.0, dag::serial_chain(4, 25)}});
  runtime::ReplayOptions opts;
  opts.ns_per_unit = 10000.0;  // 100 units * 10 us = 1 ms minimum
  const auto report = runtime::replay_instance(pool, inst, opts);
  EXPECT_GE(report.flow_seconds.max, 0.0005);
}

TEST(ReplayerTest, WeightedFlowTracked) {
  runtime::ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 3});
  core::Instance inst;
  inst.jobs.push_back({0.0, 8.0, dag::single_node(10)});
  runtime::ReplayOptions opts;
  opts.ns_per_unit = 1000.0;
  const auto report = runtime::replay_instance(pool, inst, opts);
  EXPECT_GE(report.max_weighted_flow_seconds,
            report.flow_seconds.max * 7.99);
}

TEST(ReplayerTest, BadOptionsRejected) {
  runtime::ThreadPool pool({.workers = 1, .steal_k = 0, .seed = 4});
  auto inst = testutil::make_instance({{0.0, dag::single_node(1)}});
  runtime::ReplayOptions opts;
  opts.ns_per_unit = 0.0;
  EXPECT_THROW(runtime::replay_instance(pool, inst, opts),
               std::invalid_argument);
  opts = {};
  opts.arrival_scale = -1.0;
  EXPECT_THROW(runtime::replay_instance(pool, inst, opts),
               std::invalid_argument);
}

// --- Replay-file loading (typed errors) ---

class ReplayFileTest : public ::testing::Test {
 protected:
  std::string write_fixture(const std::string& name,
                            const std::string& text) {
    const std::string path = ::testing::TempDir() + name;
    std::ofstream out(path, std::ios::trunc);
    out << text;
    return path;
  }

  std::string valid_text() {
    return workload::instance_to_text(testutil::make_instance({
        {0.0, dag::parallel_for_dag(4, 2)},
        {5.0, dag::serial_chain(3, 2)},
    }));
  }
};

TEST_F(ReplayFileTest, LoadsAWellFormedFile) {
  const auto path = write_fixture("replay_ok.inst", valid_text());
  const core::Instance inst = runtime::load_replay_instance(path);
  EXPECT_EQ(inst.size(), 2u);
  EXPECT_DOUBLE_EQ(inst.jobs[1].arrival, 5.0);
}

TEST_F(ReplayFileTest, MissingFileIsAnIoError) {
  try {
    runtime::load_replay_instance(::testing::TempDir() + "no_such.inst");
    FAIL() << "expected ReplayFileError";
  } catch (const runtime::ReplayFileError& e) {
    EXPECT_EQ(e.kind(), runtime::ReplayFileError::Kind::kIo);
  }
}

TEST_F(ReplayFileTest, TruncatedFileIsDetectedAtEveryCutPoint) {
  // A short read can cut the file anywhere — mid-token, between records,
  // or right before the trailer.  Every proper prefix must surface as
  // Kind::kTruncated (never load, never be misreported as corrupt).
  const std::string full = valid_text();
  for (std::size_t cut : {full.size() - 2, full.size() - 8, full.size() / 2,
                          full.size() / 4, std::size_t{10}}) {
    const auto path =
        write_fixture("replay_trunc.inst", full.substr(0, cut));
    try {
      runtime::load_replay_instance(path);
      FAIL() << "expected ReplayFileError at cut " << cut;
    } catch (const runtime::ReplayFileError& e) {
      EXPECT_EQ(e.kind(), runtime::ReplayFileError::Kind::kTruncated)
          << "cut=" << cut << " what=" << e.what();
      EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
    }
  }
}

TEST_F(ReplayFileTest, CorruptTokenIsDistinguishedFromTruncation) {
  std::string text = valid_text();
  const auto pos = text.find("job 5");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 5, "job x");  // non-numeric arrival mid-file
  const auto path = write_fixture("replay_corrupt.inst", text);
  try {
    runtime::load_replay_instance(path);
    FAIL() << "expected ReplayFileError";
  } catch (const runtime::ReplayFileError& e) {
    EXPECT_EQ(e.kind(), runtime::ReplayFileError::Kind::kCorrupt);
  }
}

TEST_F(ReplayFileTest, TrailingGarbageIsCorrupt) {
  const auto path = write_fixture("replay_trailing.inst",
                                  valid_text() + "job 9 1\n");
  try {
    runtime::load_replay_instance(path);
    FAIL() << "expected ReplayFileError";
  } catch (const runtime::ReplayFileError& e) {
    EXPECT_EQ(e.kind(), runtime::ReplayFileError::Kind::kCorrupt);
  }
  // Comments after the trailer are fine (write_instance never emits them,
  // but hand-annotated fixtures do).
  const auto ok = write_fixture("replay_comment.inst",
                                valid_text() + "# replayed 2026-08-08\n");
  EXPECT_EQ(runtime::load_replay_instance(ok).size(), 2u);
}

// --- Weighted-admission work stealing (extension) ---

TEST(WeightedAdmissionTest, NameReflectsExtension) {
  EXPECT_EQ(sched::WorkStealingScheduler(0, 1, true).name(),
            "admit-first-bwf");
  EXPECT_EQ(sched::WorkStealingScheduler(8, 1, true).name(),
            "steal-8-first-bwf");
}

TEST(WeightedAdmissionTest, HeaviestQueuedJobAdmittedFirst) {
  // One worker, three jobs queued at t=0 with distinct weights: the
  // weighted variant admits heaviest-first, FIFO admits in order.
  core::Instance inst;
  inst.jobs.push_back({0.0, 1.0, dag::single_node(4)});
  inst.jobs.push_back({0.0, 9.0, dag::single_node(4)});
  inst.jobs.push_back({0.0, 3.0, dag::single_node(4)});

  sched::WorkStealingScheduler weighted(0, 1, true);
  const auto w = weighted.run(inst, {1, 1.0});
  EXPECT_DOUBLE_EQ(w.completion[1], 4.0);   // weight 9 first
  EXPECT_DOUBLE_EQ(w.completion[2], 8.0);   // weight 3 second
  EXPECT_DOUBLE_EQ(w.completion[0], 12.0);  // weight 1 last

  sched::WorkStealingScheduler fifo_adm(0, 1, false);
  const auto f = fifo_adm.run(inst, {1, 1.0});
  EXPECT_DOUBLE_EQ(f.completion[0], 4.0);
  EXPECT_DOUBLE_EQ(f.completion[1], 8.0);
  EXPECT_DOUBLE_EQ(f.completion[2], 12.0);
}

TEST(WeightedAdmissionTest, ImprovesWeightedObjectiveUnderBacklog) {
  // Stream of light jobs plus a late heavy job: weighted admission pulls
  // the heavy job ahead of the backlog.
  core::Instance inst;
  for (int i = 0; i < 30; ++i)
    inst.jobs.push_back(
        {static_cast<core::Time>(i), 1.0, dag::single_node(8)});
  inst.jobs.push_back({30.0, 50.0, dag::single_node(8)});

  sched::WorkStealingScheduler plain(0, 7, false);
  sched::WorkStealingScheduler weighted(0, 7, true);
  const auto p = plain.run(inst, {2, 1.0});
  const auto w = weighted.run(inst, {2, 1.0});
  EXPECT_LT(w.max_weighted_flow, p.max_weighted_flow);
}

TEST(WeightedAdmissionTest, EquivalentToFifoWhenWeightsEqual) {
  auto inst = testutil::random_instance(17, 20, 30.0);
  sched::WorkStealingScheduler plain(2, 5, false);
  sched::WorkStealingScheduler weighted(2, 5, true);
  const auto p = plain.run(inst, {3, 1.0});
  const auto w = weighted.run(inst, {3, 1.0});
  EXPECT_EQ(p.completion, w.completion);
}

TEST(WeightedAdmissionTest, RealRuntimeAdmitsHeaviestFirst) {
  // Single worker, steal_k large so nothing is admitted until the queue
  // holds all three jobs; then the heaviest goes first.
  runtime::PoolOptions opts;
  opts.workers = 1;
  opts.steal_k = 0;
  opts.admit_by_weight = true;
  opts.seed = 5;
  runtime::ThreadPool pool(opts);

  std::mutex mu;
  std::vector<int> order;
  // Stuff the queue while the worker is busy on a long first job.
  std::atomic<bool> release{false};
  pool.submit([&](runtime::TaskContext&) {
    while (!release.load(std::memory_order_acquire))
      std::this_thread::yield();
  });
  const auto enqueue = [&](int id, double weight) {
    pool.submit(
        [&, id](runtime::TaskContext&) {
          std::lock_guard<std::mutex> lock(mu);
          order.push_back(id);
        },
        weight);
  };
  enqueue(1, 1.0);
  enqueue(9, 9.0);
  enqueue(3, 3.0);
  release.store(true, std::memory_order_release);
  pool.wait_all();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 9);
  EXPECT_EQ(order[1], 3);
  EXPECT_EQ(order[2], 1);
}

}  // namespace
}  // namespace pjsched
