// End-to-end integration tests: the full Figure-2 pipeline at reduced
// scale (workload generation -> schedulers -> experiment rows), and the
// experiment driver's table output.
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/experiment.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"

namespace pjsched {
namespace {

core::ExperimentConfig small_config() {
  core::ExperimentConfig cfg;
  cfg.processors = 8;
  cfg.num_jobs = 400;
  cfg.qps_values = {400.0, 600.0};
  cfg.seed = 5;
  core::SchedulerSpec opt;
  opt.kind = core::SchedulerKind::kOptBound;
  core::SchedulerSpec admit;
  admit.kind = core::SchedulerKind::kAdmitFirst;
  admit.seed = 5;
  core::SchedulerSpec steal16;
  steal16.kind = core::SchedulerKind::kStealKFirst;
  steal16.steal_k = 16;
  steal16.seed = 5;
  core::SchedulerSpec fifo;
  fifo.kind = core::SchedulerKind::kFifo;
  cfg.schedulers = {opt, admit, steal16, fifo};
  return cfg;
}

TEST(IntegrationTest, MiniFigure2PipelineBing) {
  const auto dist = workload::bing_distribution();
  const auto rows = core::run_experiment(dist, small_config());
  ASSERT_EQ(rows.size(), 8u);  // 2 QPS x 4 schedulers

  for (const auto& row : rows) {
    EXPECT_EQ(row.workload, "bing");
    EXPECT_GT(row.max_flow_ms, 0.0);
    EXPECT_GT(row.opt_bound_ms, 0.0);
    EXPECT_GT(row.utilization, 0.0);
    EXPECT_LT(row.utilization, 1.0);
    EXPECT_GE(row.max_flow_ms, row.mean_flow_ms);
    EXPECT_GE(row.p99_flow_ms, row.mean_flow_ms - 1e-9);
    // Every scheduler (including OPT itself) is >= the OPT bound.
    EXPECT_GE(row.ratio_to_opt, 1.0 - 1e-9) << row.scheduler;
  }

  // The OPT rows must be exactly ratio 1.
  int opt_rows = 0;
  for (const auto& row : rows)
    if (row.scheduler == "opt-lower-bound") {
      EXPECT_NEAR(row.ratio_to_opt, 1.0, 1e-9);
      ++opt_rows;
    }
  EXPECT_EQ(opt_rows, 2);
}

TEST(IntegrationTest, HigherLoadNeverLowersOptBound) {
  const auto dist = workload::finance_distribution();
  auto cfg = small_config();
  cfg.qps_values = {300.0, 900.0};
  core::SchedulerSpec opt;
  opt.kind = core::SchedulerKind::kOptBound;
  cfg.schedulers = {opt};
  const auto rows = core::run_experiment(dist, cfg);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_LE(rows[0].utilization, rows[1].utilization);
}

TEST(IntegrationTest, TableRendersAllRows) {
  const auto dist = workload::default_lognormal_distribution();
  auto cfg = small_config();
  cfg.qps_values = {500.0};
  const auto rows = core::run_experiment(dist, cfg);
  const auto table = core::rows_to_table(rows);
  EXPECT_EQ(table.rows(), rows.size());
  std::ostringstream oss;
  table.print(oss);
  EXPECT_NE(oss.str().find("lognormal"), std::string::npos);
  EXPECT_NE(oss.str().find("admit-first"), std::string::npos);
  std::ostringstream csv;
  table.print_csv(csv);
  EXPECT_NE(csv.str().find("max_flow_ms"), std::string::npos);
}

TEST(IntegrationTest, ConfigValidation) {
  const auto dist = workload::bing_distribution();
  core::ExperimentConfig cfg;
  cfg.qps_values = {};
  EXPECT_THROW(core::run_experiment(dist, cfg), std::invalid_argument);
  cfg.qps_values = {100.0};
  cfg.schedulers = {};
  EXPECT_THROW(core::run_experiment(dist, cfg), std::invalid_argument);
}

TEST(IntegrationTest, PairedInstancesAcrossSchedulers) {
  // All schedulers in one cell see the same instance: OPT bound is
  // identical across rows of the same QPS.
  const auto dist = workload::bing_distribution();
  const auto rows = core::run_experiment(dist, small_config());
  for (std::size_t i = 1; i < 4; ++i)
    EXPECT_DOUBLE_EQ(rows[i].opt_bound_ms, rows[0].opt_bound_ms);
}

}  // namespace
}  // namespace pjsched
