// Tests for execution-trace mechanics (src/sim/trace.h): interval
// coalescing and event recording toggles.
#include "src/sim/trace.h"

#include <gtest/gtest.h>

namespace pjsched::sim {
namespace {

TEST(TraceTest, CoalesceMergesAdjacentSameNodeIntervals) {
  Trace t;
  t.add_interval({0, 0, 0, 0.0, 1.0});
  t.add_interval({0, 0, 0, 1.0, 2.0});   // same proc/job/node, contiguous
  t.add_interval({0, 0, 0, 2.0, 3.5});
  t.coalesce();
  ASSERT_EQ(t.intervals().size(), 1u);
  EXPECT_DOUBLE_EQ(t.intervals()[0].start, 0.0);
  EXPECT_DOUBLE_EQ(t.intervals()[0].end, 3.5);
}

TEST(TraceTest, CoalesceKeepsGapsAndDifferentNodes) {
  Trace t;
  t.add_interval({0, 0, 0, 0.0, 1.0});
  t.add_interval({0, 0, 0, 2.0, 3.0});   // gap: stays split
  t.add_interval({0, 1, 0, 3.0, 4.0});   // different node: stays split
  t.add_interval({0, 1, 1, 4.0, 5.0});   // different proc: stays split
  t.coalesce();
  EXPECT_EQ(t.intervals().size(), 4u);
}

TEST(TraceTest, CoalesceSortsByProcessorThenTime) {
  Trace t;
  t.add_interval({1, 0, 1, 5.0, 6.0});
  t.add_interval({0, 0, 0, 0.0, 1.0});
  t.add_interval({2, 0, 1, 1.0, 2.0});
  t.coalesce();
  ASSERT_EQ(t.intervals().size(), 3u);
  EXPECT_EQ(t.intervals()[0].proc, 0u);
  EXPECT_EQ(t.intervals()[1].proc, 1u);
  EXPECT_DOUBLE_EQ(t.intervals()[1].start, 1.0);
  EXPECT_DOUBLE_EQ(t.intervals()[2].start, 5.0);
}

TEST(TraceTest, StealEventRecordingCanBeDisabled) {
  Trace quiet(/*record_steal_events=*/false);
  quiet.add_steal({0, 1, true, 5});
  quiet.add_admission({0, 2, 6});
  EXPECT_TRUE(quiet.steals().empty());
  EXPECT_TRUE(quiet.admissions().empty());

  Trace loud;
  loud.add_steal({0, 1, true, 5});
  loud.add_admission({0, 2, 6});
  ASSERT_EQ(loud.steals().size(), 1u);
  EXPECT_TRUE(loud.steals()[0].success);
  ASSERT_EQ(loud.admissions().size(), 1u);
  EXPECT_EQ(loud.admissions()[0].job, 2u);
}

TEST(TraceTest, EmptyCoalesceIsNoop) {
  Trace t;
  t.coalesce();
  EXPECT_TRUE(t.intervals().empty());
}

}  // namespace
}  // namespace pjsched::sim
