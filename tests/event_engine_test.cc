// Tests for the centralized event-driven engine (src/sim/event_engine.h),
// using the FIFO policy for exact hand-computed schedules and the audit
// layer for machine-model compliance.
#include "src/sim/event_engine.h"

#include <gtest/gtest.h>

#include "src/dag/builders.h"
#include "src/metrics/audit.h"
#include "src/sched/fifo.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

using testutil::make_instance;

core::ScheduleResult run_fifo(const core::Instance& inst, unsigned m,
                              double speed = 1.0, sim::Trace* trace = nullptr) {
  sched::FifoScheduler fifo;
  return fifo.run(inst, {m, speed}, trace);
}

TEST(EventEngineTest, SingleSequentialJobExactTime) {
  auto inst = make_instance({{0.0, dag::serial_chain(3, 2)}});
  const auto res = run_fifo(inst, 4);
  EXPECT_DOUBLE_EQ(res.completion[0], 6.0);
  EXPECT_DOUBLE_EQ(res.max_flow, 6.0);
  // 3 processors idle for the whole 6 time units.
  EXPECT_DOUBLE_EQ(res.stats.idle_processor_time, 18.0);
}

TEST(EventEngineTest, SpeedScalesExecutionExactly) {
  auto inst = make_instance({{0.0, dag::serial_chain(3, 2)}});
  const auto res = run_fifo(inst, 1, 2.0);
  EXPECT_DOUBLE_EQ(res.completion[0], 3.0);
}

TEST(EventEngineTest, ParallelForUsesAllProcessors) {
  // root(1) -> 4 bodies(5) -> join(1); on m = 4 at speed 1: 1 + 5 + 1 = 7.
  auto inst = make_instance({{0.0, dag::parallel_for_dag(4, 5)}});
  const auto res = run_fifo(inst, 4);
  EXPECT_DOUBLE_EQ(res.completion[0], 7.0);
}

TEST(EventEngineTest, ParallelForLimitedProcessors) {
  // 4 bodies of 5 on m = 2: bodies take ceil(4/2)*5 = 10; total 1+10+1 = 12.
  auto inst = make_instance({{0.0, dag::parallel_for_dag(4, 5)}});
  const auto res = run_fifo(inst, 2);
  EXPECT_DOUBLE_EQ(res.completion[0], 12.0);
}

TEST(EventEngineTest, LateArrivalWaits) {
  auto inst = make_instance({{10.0, dag::single_node(4)}});
  const auto res = run_fifo(inst, 1);
  EXPECT_DOUBLE_EQ(res.completion[0], 14.0);
  EXPECT_DOUBLE_EQ(res.flow[0], 4.0);
  // The machine idles the first 10 units.
  EXPECT_DOUBLE_EQ(res.stats.idle_processor_time, 10.0);
}

TEST(EventEngineTest, FifoOrdersBacklogByArrival) {
  // Two unit-parallelism jobs on one processor; the earlier job runs first.
  auto inst = make_instance({
      {0.0, dag::single_node(10)},
      {1.0, dag::single_node(2)},
  });
  const auto res = run_fifo(inst, 1);
  EXPECT_DOUBLE_EQ(res.completion[0], 10.0);
  EXPECT_DOUBLE_EQ(res.completion[1], 12.0);
  EXPECT_DOUBLE_EQ(res.max_flow, 11.0);  // job 1 waits behind job 0
  EXPECT_EQ(res.argmax_flow, 1u);
}

TEST(EventEngineTest, FifoGivesLeftoverProcessorsToLaterJobs) {
  // Job 0 can use only 1 processor (chain); job 1's grains get the rest.
  auto inst = make_instance({
      {0.0, dag::serial_chain(4, 4)},       // runs 16 units on one proc
      {0.0, dag::parallel_for_dag(3, 4)},   // 1 + 4 + 1 = 6 on 3 procs
  });
  const auto res = run_fifo(inst, 4);
  EXPECT_DOUBLE_EQ(res.completion[0], 16.0);
  EXPECT_DOUBLE_EQ(res.completion[1], 6.0);
}

TEST(EventEngineTest, FifoPreemptsLaterJobWhenEarlierNeedsProcessors) {
  // Job 0: root(1) then 4 grains(4).  Job 1 arrives first... rather:
  // Job 0 arrives at t=0 as a star that widens at t=1 to 4 ready nodes on
  // m=4; job 1 (arrived t=0.5) must wait until job 0 leaves room.
  dag::Dag wide = dag::parallel_for_dag(4, 4);  // needs all 4 procs from t=1
  auto inst = make_instance({
      {0.0, std::move(wide)},
      {0.5, dag::single_node(8)},
  });
  const auto res = run_fifo(inst, 4);
  // Job 0: 1 + 4 + 1 = 6.  Job 1 runs in [0.5, 1) on a spare proc (0.5
  // units), is preempted during [1, 5) while job 0's grains occupy all
  // processors, resumes at 5 alongside job 0's join node.
  EXPECT_DOUBLE_EQ(res.completion[0], 6.0);
  EXPECT_DOUBLE_EQ(res.completion[1], 12.5);
}

TEST(EventEngineTest, TraceAuditsCleanOnHandInstance) {
  auto inst = make_instance({
      {0.0, dag::parallel_for_dag(3, 4)},
      {2.0, dag::serial_chain(2, 3)},
      {5.0, dag::single_node(1)},
  });
  sim::Trace trace;
  const auto res = run_fifo(inst, 2, 1.0, &trace);
  const auto report = metrics::audit_schedule(inst, {2, 1.0}, trace, res);
  EXPECT_TRUE(report.ok) << report.to_string();
}

TEST(EventEngineTest, TraceAuditsCleanWithSpeed) {
  auto inst = make_instance({
      {0.0, dag::parallel_for_dag(5, 3)},
      {1.0, dag::serial_chain(3, 2)},
  });
  sim::Trace trace;
  const auto res = run_fifo(inst, 3, 1.5, &trace);
  const auto report = metrics::audit_schedule(inst, {3, 1.5}, trace, res);
  EXPECT_TRUE(report.ok) << report.to_string();
}

TEST(EventEngineTest, InvalidArgumentsRejected) {
  auto inst = make_instance({{0.0, dag::single_node(1)}});
  sched::FifoScheduler fifo;
  EXPECT_THROW(fifo.run(inst, {0, 1.0}), std::invalid_argument);
  EXPECT_THROW(fifo.run(inst, {1, 0.0}), std::invalid_argument);
  core::Instance empty;
  EXPECT_THROW(fifo.run(empty, {1, 1.0}), std::invalid_argument);
}

TEST(EventEngineTest, ManyJobsAllComplete) {
  auto inst = testutil::random_instance(1234, 50, 100.0);
  const auto res = run_fifo(inst, 3);
  for (core::Time c : res.completion) EXPECT_GE(c, 0.0);
  EXPECT_GT(res.makespan, 0.0);
  EXPECT_GT(res.stats.decision_points, 0u);
}

TEST(EventEngineTest, SimultaneousArrivalsTieBrokenByIndex) {
  auto inst = make_instance({
      {0.0, dag::single_node(3)},
      {0.0, dag::single_node(3)},
  });
  const auto res = run_fifo(inst, 1);
  EXPECT_DOUBLE_EQ(res.completion[0], 3.0);
  EXPECT_DOUBLE_EQ(res.completion[1], 6.0);
}

TEST(EventEngineTest, AvailableSetOrderIsNotSemantic) {
  // Completion handling compacts the available set with swap-and-pop, so
  // after the first completion the set's order differs from insertion
  // order.  Nothing may depend on that order: with more available nodes
  // than processors and staggered node sizes (uneven completions reorder
  // the set repeatedly), the schedule must stay precedence- and
  // machine-valid, work-conserving, and end at the work-limited makespan.
  auto inst = make_instance({{0.0, dag::parallel_for_dag_fn(
                                       6, [](std::size_t g) {
                                         return static_cast<dag::Work>(2 + 3 * g);
                                       })}});
  sim::Trace trace;
  sched::FifoScheduler fifo;
  const auto res = fifo.run(inst, {2, 1.0}, &trace);
  const auto report = metrics::audit_schedule(inst, {2, 1.0}, trace, res);
  EXPECT_TRUE(report.ok) << report.to_string();
  // Work = 1 (root) + 57 (bodies) + 1 (join); the root and join are
  // sequential bottlenecks and the bodies need >= 57/2 time on 2
  // processors, so no completion order can beat 1 + 28.5 + 1.
  EXPECT_GE(res.completion[0], 1.0 + 57.0 / 2.0 + 1.0 - 1e-9);
  // Work conservation: total busy processor-time equals total work.
  double busy = 0.0;
  for (const auto& iv : trace.intervals()) busy += iv.end - iv.start;
  EXPECT_NEAR(busy, 59.0, 1e-6);
}

}  // namespace
}  // namespace pjsched
