// Spill-mode traces: a Trace constructed with a TraceSink holds one pending
// span per processor and streams maximal merged intervals out as they close
// — coalesce-equivalent by construction.  These tests pin that equivalence
// against the in-core path for both engines (event via fifo/bwf, step via
// the admission/steal schedulers), the steal/admission passthrough, and the
// FileTraceSink's bit-exact text format.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/run.h"
#include "src/core/types.h"
#include "src/sim/trace.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"
#include "src/workload/streaming_source.h"

namespace pjsched {
namespace {

workload::GeneratorConfig base_config(std::size_t jobs) {
  workload::GeneratorConfig cfg;
  cfg.num_jobs = jobs;
  cfg.qps = 800.0;
  cfg.units_per_ms = 100.0;
  cfg.seed = 5;
  cfg.weight_classes = {1.0, 2.0, 8.0};
  return cfg;
}

core::MachineConfig machine16() {
  core::MachineConfig m;
  m.processors = 16;
  m.speed = 1.0;
  return m;
}

// In-memory sink collecting everything a spill trace emits.
class CollectingSink final : public sim::TraceSink {
 public:
  void on_interval(const sim::WorkInterval& iv) override {
    intervals.push_back(iv);
  }
  void on_steal(const sim::StealEvent& ev) override { steals.push_back(ev); }
  void on_admission(const sim::AdmissionEvent& ev) override {
    admissions.push_back(ev);
  }
  void flush() override { ++flushes; }

  std::vector<sim::WorkInterval> intervals;
  std::vector<sim::StealEvent> steals;
  std::vector<sim::AdmissionEvent> admissions;
  int flushes = 0;
};

void expect_same_intervals(const std::vector<sim::WorkInterval>& a,
                           const std::vector<sim::WorkInterval>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].job, b[i].job) << "interval " << i;
    EXPECT_EQ(a[i].node, b[i].node) << "interval " << i;
    EXPECT_EQ(a[i].proc, b[i].proc) << "interval " << i;
    EXPECT_EQ(a[i].start, b[i].start) << "interval " << i;
    EXPECT_EQ(a[i].end, b[i].end) << "interval " << i;
  }
}

class SpillTraceCrossCheck
    : public ::testing::TestWithParam<const char*> {};

// The contract: after sorting the sink's intervals into the in-core
// canonical order (coalesce stable_sorts by (proc, start); the sink sees
// each processor's stream already in order), the spill run must have
// emitted *exactly* the intervals the in-core run coalesced — same spans,
// same endpoints, bitwise — plus identical steal/admission sequences.
TEST_P(SpillTraceCrossCheck, SpillEqualsInCoreCoalesce) {
  const core::SchedulerSpec spec = core::parse_scheduler(GetParam());
  const auto dist = workload::bing_distribution();
  const workload::GeneratorConfig cfg = base_config(250);

  sim::Trace in_core;
  workload::GeneratedJobSource in_core_source(dist, cfg);
  const auto mat = run_scheduler_streamed(in_core_source, spec, machine16(),
                                          nullptr, &in_core);
  ASSERT_FALSE(in_core.spilling());
  ASSERT_FALSE(in_core.intervals().empty());

  CollectingSink sink;
  sim::Trace spill(&sink);
  ASSERT_TRUE(spill.spilling());
  workload::GeneratedJobSource spill_source(dist, cfg);
  const auto str =
      run_scheduler_streamed(spill_source, spec, machine16(), nullptr, &spill);
  EXPECT_EQ(str.max_flow, mat.max_flow);

  // Spill mode never accumulates in-core; the engine's end-of-run
  // coalesce() drained the pending windows and flushed the sink once.
  EXPECT_TRUE(spill.intervals().empty());
  EXPECT_EQ(sink.flushes, 1);

  std::stable_sort(sink.intervals.begin(), sink.intervals.end(),
                   [](const sim::WorkInterval& a, const sim::WorkInterval& b) {
                     return a.proc != b.proc ? a.proc < b.proc
                                             : a.start < b.start;
                   });
  expect_same_intervals(in_core.intervals(), sink.intervals);

  ASSERT_EQ(sink.steals.size(), in_core.steals().size());
  for (std::size_t i = 0; i < sink.steals.size(); ++i) {
    EXPECT_EQ(sink.steals[i].thief, in_core.steals()[i].thief);
    EXPECT_EQ(sink.steals[i].victim, in_core.steals()[i].victim);
    EXPECT_EQ(sink.steals[i].success, in_core.steals()[i].success);
    EXPECT_EQ(sink.steals[i].step, in_core.steals()[i].step);
  }
  ASSERT_EQ(sink.admissions.size(), in_core.admissions().size());
  for (std::size_t i = 0; i < sink.admissions.size(); ++i) {
    EXPECT_EQ(sink.admissions[i].worker, in_core.admissions()[i].worker);
    EXPECT_EQ(sink.admissions[i].job, in_core.admissions()[i].job);
    EXPECT_EQ(sink.admissions[i].step, in_core.admissions()[i].step);
  }
}

// fifo/fifo-exact/bwf run the event engine (fast and exact paths); the
// admission schedulers run the step engine and additionally exercise the
// steal/admission passthrough.
INSTANTIATE_TEST_SUITE_P(Schedulers, SpillTraceCrossCheck,
                         ::testing::Values("fifo", "fifo-exact", "bwf",
                                           "admit-first", "steal-16-first"),
                         [](const auto& info) {
                           std::string n = info.param;
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

// Unit-level merge semantics: back-to-back slices of the same (job, node)
// on one processor fold into one window; a gap, an occupant change, or a
// different processor closes it.
TEST(SpillTraceTest, SingleWindowMergePerProcessor) {
  CollectingSink sink;
  sim::Trace trace(&sink);
  trace.add_interval({7, 0, 0, 0.0, 1.0});
  trace.add_interval({7, 0, 0, 1.0, 2.5});   // extends: same job/node, abuts
  EXPECT_TRUE(sink.intervals.empty());       // window still open
  trace.add_interval({7, 1, 0, 2.5, 3.0});   // node changed: closes window
  ASSERT_EQ(sink.intervals.size(), 1u);
  EXPECT_EQ(sink.intervals[0].start, 0.0);
  EXPECT_EQ(sink.intervals[0].end, 2.5);
  trace.add_interval({9, 0, 1, 0.0, 4.0});   // other proc: independent window
  EXPECT_EQ(sink.intervals.size(), 1u);
  trace.coalesce();                          // drains both open windows
  ASSERT_EQ(sink.intervals.size(), 3u);
  EXPECT_EQ(sink.flushes, 1);
  // Drain order is processor order.
  EXPECT_EQ(sink.intervals[1].proc, 0u);
  EXPECT_EQ(sink.intervals[1].end, 3.0);
  EXPECT_EQ(sink.intervals[2].proc, 1u);
}

// FileTraceSink: counters match what was emitted, and the %.17g doubles
// round-trip bit-exactly through the text file.
TEST(SpillTraceTest, FileTraceSinkWritesRecoverableRecords) {
  const std::string path = ::testing::TempDir() + "/spill_trace_test.txt";
  const auto dist = workload::bing_distribution();
  const workload::GeneratorConfig cfg = base_config(120);
  const core::SchedulerSpec spec = core::parse_scheduler("steal-16-first");

  sim::Trace in_core;
  workload::GeneratedJobSource in_core_source(dist, cfg);
  run_scheduler_streamed(in_core_source, spec, machine16(), nullptr,
                         &in_core);

  std::uint64_t n_intervals = 0, n_steals = 0, n_admissions = 0;
  {
    sim::FileTraceSink sink(path);
    sim::Trace spill(&sink);
    workload::GeneratedJobSource source(dist, cfg);
    run_scheduler_streamed(source, spec, machine16(), nullptr, &spill);
    n_intervals = sink.intervals_written();
    n_steals = sink.steals_written();
    n_admissions = sink.admissions_written();
  }
  EXPECT_EQ(n_intervals, in_core.intervals().size());
  EXPECT_EQ(n_steals, in_core.steals().size());
  EXPECT_EQ(n_admissions, in_core.admissions().size());

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::uint64_t seen_i = 0, seen_s = 0, seen_a = 0;
  char line[256];
  std::vector<sim::WorkInterval> parsed;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (line[0] == 'i') {
      ++seen_i;
      unsigned long long job = 0;
      unsigned node = 0, proc = 0;
      char s1[64], s2[64];
      ASSERT_EQ(std::sscanf(line, "i %llu %u %u %63s %63s", &job, &node,
                            &proc, s1, s2),
                5);
      parsed.push_back({static_cast<core::JobId>(job), node, proc,
                        std::strtod(s1, nullptr), std::strtod(s2, nullptr)});
    } else if (line[0] == 's') {
      ++seen_s;
    } else if (line[0] == 'a') {
      ++seen_a;
    } else {
      FAIL() << "unexpected record: " << line;
    }
  }
  std::fclose(f);
  EXPECT_EQ(seen_i, n_intervals);
  EXPECT_EQ(seen_s, n_steals);
  EXPECT_EQ(seen_a, n_admissions);

  std::stable_sort(parsed.begin(), parsed.end(),
                   [](const sim::WorkInterval& a, const sim::WorkInterval& b) {
                     return a.proc != b.proc ? a.proc < b.proc
                                             : a.start < b.start;
                   });
  expect_same_intervals(in_core.intervals(), parsed);
  std::remove(path.c_str());
}

TEST(SpillTraceTest, FileTraceSinkThrowsOnUnopenablePath) {
  EXPECT_THROW(sim::FileTraceSink("/nonexistent-dir/trace.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace pjsched
