// End-to-end tests for the scheduling daemon core (src/service/daemon.*):
// streaming ingest over real sockets, malformed-line quarantine, oversize
// and mid-line-disconnect handling, deadline budgets, the replay-file
// feed, and the per-tenant terminal-outcome conservation law the chaos
// campaign is built on.
#include "src/service/daemon.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <string>
#include <thread>

#include "src/dag/builders.h"
#include "src/runtime/replayer.h"
#include "src/service/stream_feed.h"
#include "src/workload/instance_io.h"
#include "tests/test_util.h"

namespace pjsched::service {
namespace {

using namespace std::chrono_literals;

DaemonConfig small_config() {
  DaemonConfig c;
  c.pool.workers = 2;
  c.pool.watchdog_interval = std::chrono::milliseconds(0);
  c.router.shards = 2;
  c.router.capacity = 256;
  c.tick_interval = 2ms;
  c.ns_per_unit = 200.0;  // fast spins: tests render microseconds of work
  return c;
}

/// Polls until `pred()` or the timeout; returns pred()'s final value.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

void expect_books_balance(const DaemonSnapshot& snap) {
  for (const auto& [name, t] : snap.tenants)
    EXPECT_EQ(t.submitted, t.terminal()) << "tenant " << name;
  EXPECT_EQ(snap.router.accepted, snap.router.popped + snap.router.depth +
                                      snap.router.shed_fair_share +
                                      snap.router.shed_queued);
}

TEST(ServiceDaemon, CompletesRecordsFedOverTcp) {
  DaemonConfig config = small_config();
  config.tcp_port = 0;  // ephemeral loopback
  Daemon daemon(config);
  ASSERT_GT(daemon.tcp_port(), 0);

  std::string error;
  const int fd = connect_tcp("127.0.0.1", static_cast<std::uint16_t>(
                                              daemon.tcp_port()),
                             &error);
  ASSERT_GE(fd, 0) << error;
  std::string payload = "# warm-up comment\n";
  for (int i = 0; i < 10; ++i) payload += "job alpha 4 fanout=2\n";
  payload += "job broken work\n";  // malformed: quarantined, never fatal
  payload += "job beta 2\n";
  ASSERT_TRUE(write_all(fd, payload));
  close_fd(fd);

  ASSERT_TRUE(eventually([&] {
    const DaemonSnapshot s = daemon.snapshot();
    const auto a = s.tenants.find("alpha");
    const auto b = s.tenants.find("beta");
    return a != s.tenants.end() && a->second.completed == 10 &&
           b != s.tenants.end() && b->second.completed == 1;
  }));
  ASSERT_TRUE(daemon.drain(5000ms));

  const DaemonSnapshot snap = daemon.snapshot();
  EXPECT_EQ(snap.feed.records, 11u);
  EXPECT_EQ(snap.feed.malformed, 1u);
  EXPECT_EQ(snap.feed.connections, 1u);
  ASSERT_EQ(snap.quarantine.size(), 1u);
  EXPECT_NE(snap.quarantine[0].find("job broken work"), std::string::npos);
  EXPECT_GT(snap.tenants.at("alpha").max_flow_seconds, 0.0);
  expect_books_balance(snap);
}

TEST(ServiceDaemon, UnixSocketFeedAndOversizeLines) {
  DaemonConfig config = small_config();
  config.unix_socket_path = ::testing::TempDir() + "pjschedd_test.sock";
  Daemon daemon(config);

  std::string error;
  const int fd = connect_unix(config.unix_socket_path, &error);
  ASSERT_GE(fd, 0) << error;
  // An attacker line far over the bound must be discarded without
  // desyncing the stream: the next real record still parses.
  std::string payload(kMaxLineBytes * 3, 'x');
  payload += "\njob gamma 1\n";
  ASSERT_TRUE(write_all(fd, payload));
  close_fd(fd);

  ASSERT_TRUE(eventually([&] {
    const DaemonSnapshot s = daemon.snapshot();
    const auto g = s.tenants.find("gamma");
    return s.feed.oversize == 1 && g != s.tenants.end() &&
           g->second.completed == 1;
  }));
  ASSERT_TRUE(daemon.drain(5000ms));
  expect_books_balance(daemon.snapshot());
}

TEST(ServiceDaemon, DisconnectMidLineQuarantinesThePartial) {
  DaemonConfig config = small_config();
  config.tcp_port = 0;
  Daemon daemon(config);

  std::string error;
  const int fd = connect_tcp("127.0.0.1", static_cast<std::uint16_t>(
                                              daemon.tcp_port()),
                             &error);
  ASSERT_GE(fd, 0) << error;
  // The second record is cut off by the disconnect: it could be the front
  // half of "job delta 1000000", so it must NOT be submitted.
  ASSERT_TRUE(write_all(fd, "job delta 1\njob delta 1"));
  close_fd(fd);

  ASSERT_TRUE(eventually([&] {
    const DaemonSnapshot s = daemon.snapshot();
    return s.feed.disconnects == 1 && s.feed.partial == 1;
  }));
  ASSERT_TRUE(daemon.drain(5000ms));
  const DaemonSnapshot snap = daemon.snapshot();
  EXPECT_EQ(snap.feed.records, 1u);
  EXPECT_EQ(snap.tenants.at("delta").submitted, 1u);
  expect_books_balance(snap);
}

TEST(ServiceDaemon, MetricsCommandRepliesInMachineFormat) {
  DaemonConfig config = small_config();
  config.tcp_port = 0;
  Daemon daemon(config);

  std::string error;
  const int fd = connect_tcp("127.0.0.1",
                             static_cast<std::uint16_t>(daemon.tcp_port()),
                             &error);
  ASSERT_GE(fd, 0) << error;
  // The reply must be ordered after the records that preceded the command
  // on the same connection: the client sees its own submissions counted.
  ASSERT_TRUE(write_all(fd, "job mtx 1\njob mtx 1\nmetrics\n"));

  std::string reply;
  char buf[4096];
  while (reply.find("end\n") == std::string::npos) {
    ASSERT_TRUE(wait_readable(fd, 5000ms)) << "no metrics reply";
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    ASSERT_GT(n, 0);
    reply.append(buf, static_cast<std::size_t>(n));
  }
  close_fd(fd);

  EXPECT_NE(reply.find("rung normal\n"), std::string::npos) << reply;
  EXPECT_NE(reply.find("tenant.mtx.submitted 2\n"), std::string::npos)
      << reply;
  EXPECT_NE(reply.find("ingest.records 2\n"), std::string::npos) << reply;
  EXPECT_NE(reply.find("ingest.commands 1\n"), std::string::npos) << reply;
  EXPECT_NE(reply.find("router.accepted "), std::string::npos);
  EXPECT_NE(reply.find("pool.tasks_executed "), std::string::npos);

  ASSERT_TRUE(daemon.drain(5000ms));
  const DaemonSnapshot snap = daemon.snapshot();
  EXPECT_EQ(snap.feed.commands, 1u);
  EXPECT_EQ(snap.feed.records, 2u);
  expect_books_balance(snap);
}

TEST(ServiceDaemon, SlowDripPeerIsCutOffWithOneEvent) {
  DaemonConfig config = small_config();
  config.tcp_port = 0;
  config.read_deadline = 150ms;  // line-progress deadline under test
  Daemon daemon(config);

  std::string error;
  const int fd = connect_tcp("127.0.0.1",
                             static_cast<std::uint16_t>(daemon.tcp_port()),
                             &error);
  ASSERT_GE(fd, 0) << error;
  // One clean record, then a line that never ends, dribbled byte by byte:
  // activity keeps flowing (so the silent-peer timeout never fires) but no
  // line completes, so the dribble guard must cut the connection — ONCE.
  ASSERT_TRUE(write_all(fd, "job drip 1\njob drip "));
  for (int i = 0; i < 100; ++i) {
    if (!write_all(fd, "x")) break;  // daemon closed us: the guard fired
    std::this_thread::sleep_for(20ms);
    if (daemon.snapshot().feed.slow_drip > 0) break;
  }
  ASSERT_TRUE(eventually([&] {
    return daemon.snapshot().feed.slow_drip == 1;
  }));
  close_fd(fd);

  ASSERT_TRUE(daemon.drain(5000ms));
  const DaemonSnapshot snap = daemon.snapshot();
  EXPECT_EQ(snap.feed.slow_drip, 1u);   // one event per connection, total
  EXPECT_EQ(snap.feed.malformed, 0u);   // counted apart from parse errors
  EXPECT_EQ(snap.feed.records, 1u);     // the partial was never submitted
  EXPECT_EQ(snap.feed.read_timeouts, 0u);
  ASSERT_EQ(snap.quarantine.size(), 1u);
  EXPECT_NE(snap.quarantine[0].find("slow drip"), std::string::npos);
  expect_books_balance(snap);
}

TEST(ServiceDaemon, SlowDripByteCapCutsFastLinelessFloods) {
  DaemonConfig config = small_config();
  config.tcp_port = 0;
  config.slow_drip_byte_cap = 256;  // tiny cap; deadline stays long
  Daemon daemon(config);

  std::string error;
  const int fd = connect_tcp("127.0.0.1",
                             static_cast<std::uint16_t>(daemon.tcp_port()),
                             &error);
  ASSERT_GE(fd, 0) << error;
  // A kilobyte of line-less bytes at full speed: the cap — not the
  // deadline — must fire, exactly once.
  ASSERT_TRUE(write_all(fd, "job cap 1\n" + std::string(1024, 'y')));

  ASSERT_TRUE(eventually([&] {
    return daemon.snapshot().feed.slow_drip == 1;
  }));
  close_fd(fd);
  ASSERT_TRUE(daemon.drain(5000ms));
  const DaemonSnapshot snap = daemon.snapshot();
  EXPECT_EQ(snap.feed.slow_drip, 1u);
  EXPECT_EQ(snap.feed.records, 1u);
  expect_books_balance(snap);
}

TEST(ServiceDaemon, DeadlineBudgetExpiresSlowJobs) {
  DaemonConfig config = small_config();
  config.ns_per_unit = 1e6;  // 1 ms per unit: the job below takes ~2 s
  Daemon daemon(config);

  JobRecord slow;
  slow.tenant = "sla";
  slow.work = 2000;
  slow.deadline_ms = 30;
  EXPECT_EQ(daemon.submit_record(slow), PushOutcome::kAdmitted);
  JobRecord quick;
  quick.tenant = "sla";
  quick.work = 1;
  EXPECT_EQ(daemon.submit_record(quick), PushOutcome::kAdmitted);

  ASSERT_TRUE(daemon.drain(10000ms));
  const DaemonSnapshot snap = daemon.snapshot();
  EXPECT_EQ(snap.tenants.at("sla").deadline_expired, 1u);
  EXPECT_EQ(snap.tenants.at("sla").completed, 1u);
  expect_books_balance(snap);
}

TEST(ServiceDaemon, ReplayFileFeedSubmitsEveryInstanceJob) {
  DaemonConfig config = small_config();
  Daemon daemon(config);

  const std::string path = ::testing::TempDir() + "daemon_replay.inst";
  {
    std::ofstream out(path, std::ios::trunc);
    out << workload::instance_to_text(testutil::make_instance({
        {0.0, dag::parallel_for_dag(4, 2)},
        {0.0, dag::serial_chain(3, 2)},
        {0.0, dag::single_node(5)},
    }));
  }
  EXPECT_EQ(daemon.feed_replay_file(path, "replay", /*time_scale=*/0.0), 3u);
  ASSERT_TRUE(daemon.drain(5000ms));
  const DaemonSnapshot snap = daemon.snapshot();
  EXPECT_EQ(snap.tenants.at("replay").submitted, 3u);
  EXPECT_EQ(snap.tenants.at("replay").completed, 3u);
  expect_books_balance(snap);

  // A truncated file surfaces as the typed loader error, untouched books.
  const std::string bad = ::testing::TempDir() + "daemon_replay_bad.inst";
  {
    std::ofstream out(bad, std::ios::trunc);
    out << workload::instance_to_text(
               testutil::make_instance({{0.0, dag::single_node(1)}}))
               .substr(0, 10);
  }
  EXPECT_THROW(daemon.feed_replay_file(bad, "replay", 0.0),
               runtime::ReplayFileError);
  EXPECT_EQ(daemon.snapshot().tenants.at("replay").submitted, 3u);
}

TEST(ServiceDaemon, AbruptShutdownStillBalancesTheBooks) {
  // Destroy the daemon while records are still queued: whatever never
  // dispatched must land in `rejected` (drain refusals), not vanish.
  DaemonConfig config = small_config();
  config.ns_per_unit = 5e4;  // slow enough that a backlog forms
  DaemonSnapshot snap;
  {
    Daemon daemon(config);
    for (int i = 0; i < 200; ++i) {
      JobRecord r;
      r.tenant = "bulk";
      r.work = 20;
      daemon.submit_record(r);
    }
    // No drain: the destructor must reconcile everything itself.  Grab the
    // books afterwards via a scope trick: snapshot before destruction
    // reflects in-flight state, so re-snapshot is impossible — instead we
    // just let the destructor run and assert it did not hang (this test
    // completing is the assertion) ...
  }
  // ... and a second daemon validates the explicit-drain path end to end.
  {
    Daemon daemon(small_config());
    for (int i = 0; i < 50; ++i) {
      JobRecord r;
      r.tenant = "bulk";
      r.work = 5;
      daemon.submit_record(r);
    }
    ASSERT_TRUE(daemon.drain(5000ms));
    snap = daemon.snapshot();
  }
  EXPECT_EQ(snap.tenants.at("bulk").submitted, 50u);
  expect_books_balance(snap);
  EXPECT_FALSE(Daemon(small_config()).metrics_text().empty());
}

}  // namespace
}  // namespace pjsched::service
