// Shared helpers for the pjsched test suite.
#pragma once

#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include "src/core/types.h"
#include "src/dag/builders.h"
#include "src/dag/dag.h"

namespace pjsched::testutil {

/// Builds an instance from (arrival, dag) pairs, all weight 1.
inline core::Instance make_instance(
    std::vector<std::pair<core::Time, dag::Dag>> jobs) {
  core::Instance inst;
  for (auto& [arrival, graph] : jobs) {
    core::JobSpec spec;
    spec.arrival = arrival;
    spec.graph = std::move(graph);
    inst.jobs.push_back(std::move(spec));
  }
  return inst;
}

/// Builds a weighted instance from (arrival, weight, dag) tuples.
inline core::Instance make_weighted_instance(
    std::vector<std::tuple<core::Time, double, dag::Dag>> jobs) {
  core::Instance inst;
  for (auto& [arrival, weight, graph] : jobs) {
    core::JobSpec spec;
    spec.arrival = arrival;
    spec.weight = weight;
    spec.graph = std::move(graph);
    inst.jobs.push_back(std::move(spec));
  }
  return inst;
}

/// A random multi-job instance for property tests: jobs with random layered
/// DAGs and uniformly spread arrivals.  Deterministic in `seed`.
inline core::Instance random_instance(std::uint64_t seed, std::size_t num_jobs,
                                      core::Time arrival_span) {
  sim::Rng rng(seed);
  core::Instance inst;
  for (std::size_t i = 0; i < num_jobs; ++i) {
    dag::RandomLayeredOptions opt;
    opt.layers = 1 + static_cast<std::size_t>(rng.uniform_int(4));
    opt.min_width = 1;
    opt.max_width = 4;
    opt.min_work = 1;
    opt.max_work = 6;
    opt.edge_probability = 0.5;
    core::JobSpec spec;
    spec.arrival = arrival_span * rng.uniform_double();
    spec.graph = dag::random_layered(rng, opt);
    inst.jobs.push_back(std::move(spec));
  }
  return inst;
}

}  // namespace pjsched::testutil
