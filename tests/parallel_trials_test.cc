// Determinism contract of the parallel multi-trial runner
// (src/runtime/parallel_trials.h): whatever the thread count or grain, the
// outcome must equal the sequential core::run_trials bit for bit, because
// each trial is a pure function of (dist, cfg, t) and the merge runs in
// trial-index order.  Runs under TSAN in CI (trials share the pool).
#include "src/runtime/parallel_trials.h"

#include <gtest/gtest.h>

#include "src/core/multi_trial.h"

namespace pjsched {
namespace {

core::TrialConfig base_config() {
  core::TrialConfig cfg;
  cfg.trials = 8;
  cfg.generator.num_jobs = 120;
  cfg.generator.qps = 600.0;
  cfg.generator.seed = 7;
  cfg.machine = {8, 1.0};
  cfg.scheduler.kind = core::SchedulerKind::kAdmitFirst;
  cfg.scheduler.seed = 3;
  return cfg;
}

void expect_outcomes_identical(const core::TrialOutcome& a,
                               const core::TrialOutcome& b) {
  EXPECT_EQ(a.trials, b.trials);
  const auto expect_summary_eq = [](const metrics::Summary& x,
                                    const metrics::Summary& y) {
    EXPECT_EQ(x.count, y.count);
    // Bitwise equality on purpose: the parallel runner promises the *same*
    // doubles, not merely close ones.
    EXPECT_EQ(x.min, y.min);
    EXPECT_EQ(x.max, y.max);
    EXPECT_EQ(x.mean, y.mean);
    EXPECT_EQ(x.stddev, y.stddev);
    EXPECT_EQ(x.p50, y.p50);
    EXPECT_EQ(x.p90, y.p90);
    EXPECT_EQ(x.p99, y.p99);
  };
  expect_summary_eq(a.max_flow, b.max_flow);
  expect_summary_eq(a.mean_flow, b.mean_flow);
  expect_summary_eq(a.max_weighted_flow, b.max_weighted_flow);
  expect_summary_eq(a.ratio_to_opt, b.ratio_to_opt);
}

TEST(ParallelTrialsTest, MatchesSequentialAcrossThreadCounts) {
  const auto dist = workload::bing_distribution();
  const auto cfg = base_config();
  const auto seq = core::run_trials(dist, cfg);
  for (unsigned threads : {1u, 2u, 5u}) {
    runtime::ParallelTrialOptions opt;
    opt.threads = threads;
    const auto par = runtime::run_trials_parallel(dist, cfg, opt);
    expect_outcomes_identical(seq, par);
  }
}

TEST(ParallelTrialsTest, MatchesSequentialAcrossGrains) {
  const auto dist = workload::finance_distribution();
  auto cfg = base_config();
  cfg.trials = 7;  // deliberately not a multiple of any grain below
  const auto seq = core::run_trials(dist, cfg);
  for (std::size_t grain : {1u, 3u, 16u}) {
    runtime::ParallelTrialOptions opt;
    opt.threads = 4;
    opt.grain = grain;
    const auto par = runtime::run_trials_parallel(dist, cfg, opt);
    expect_outcomes_identical(seq, par);
  }
}

TEST(ParallelTrialsTest, FixedInstanceMode) {
  const auto dist = workload::bing_distribution();
  auto cfg = base_config();
  cfg.fixed_instance = true;
  const auto seq = core::run_trials(dist, cfg);
  runtime::ParallelTrialOptions opt;
  opt.threads = 3;
  const auto par = runtime::run_trials_parallel(dist, cfg, opt);
  expect_outcomes_identical(seq, par);
}

TEST(ParallelTrialsTest, WeightedSchedulerMode) {
  const auto dist = workload::bing_distribution();
  auto cfg = base_config();
  cfg.scheduler.kind = core::SchedulerKind::kStealKFirst;
  cfg.scheduler.steal_k = 4;
  cfg.scheduler.admit_by_weight = true;
  const auto seq = core::run_trials(dist, cfg);
  runtime::ParallelTrialOptions opt;
  opt.threads = 4;
  const auto par = runtime::run_trials_parallel(dist, cfg, opt);
  expect_outcomes_identical(seq, par);
}

TEST(ParallelTrialsTest, ZeroTrialsRejected) {
  const auto dist = workload::bing_distribution();
  auto cfg = base_config();
  cfg.trials = 0;
  EXPECT_THROW(runtime::run_trials_parallel(dist, cfg),
               std::invalid_argument);
}

TEST(ParallelTrialsTest, TrialFailurePropagates) {
  // An unusable machine makes every trial throw inside the pool; the
  // runner must contain the failure and rethrow instead of hanging or
  // returning a half-filled outcome.
  const auto dist = workload::bing_distribution();
  auto cfg = base_config();
  cfg.machine.processors = 0;
  EXPECT_THROW(runtime::run_trials_parallel(dist, cfg), std::runtime_error);
}

TEST(ParallelTrialsTest, RepeatedRunsAreStable) {
  // The pool's own scheduling is nondeterministic; the outcome must not be.
  const auto dist = workload::bing_distribution();
  const auto cfg = base_config();
  runtime::ParallelTrialOptions opt;
  opt.threads = 4;
  const auto a = runtime::run_trials_parallel(dist, cfg, opt);
  const auto b = runtime::run_trials_parallel(dist, cfg, opt);
  expect_outcomes_identical(a, b);
}

}  // namespace
}  // namespace pjsched
