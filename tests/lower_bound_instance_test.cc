// Tests for the Section-5 adversarial instance
// (src/workload/lower_bound_instance.h) and its key property: OPT (here the
// centralized FIFO on m processors) finishes every job in 2 time units,
// while randomized work stealing suffers flow growing with m.
#include "src/workload/lower_bound_instance.h"

#include <gtest/gtest.h>

#include "src/sched/fifo.h"
#include "src/sched/work_stealing.h"

namespace pjsched {
namespace {

TEST(LowerBoundInstanceTest, Structure) {
  workload::LowerBoundConfig cfg;
  cfg.m = 40;
  cfg.num_jobs = 10;
  const auto inst = workload::make_lower_bound_instance(cfg);
  ASSERT_EQ(inst.size(), 10u);
  for (std::size_t j = 0; j < inst.size(); ++j) {
    EXPECT_DOUBLE_EQ(inst.jobs[j].arrival, 80.0 * static_cast<double>(j));
    EXPECT_EQ(inst.jobs[j].graph.critical_path(), 2u);
    EXPECT_EQ(inst.jobs[j].graph.total_work(), 5u);  // root + m/10 children
  }
}

TEST(LowerBoundInstanceTest, DefaultsChildrenToTenthOfM) {
  workload::LowerBoundConfig cfg;
  cfg.m = 7;  // m/10 rounds to 0 -> clamped to 1
  cfg.num_jobs = 1;
  const auto inst = workload::make_lower_bound_instance(cfg);
  EXPECT_EQ(inst.jobs[0].graph.total_work(), 2u);
}

TEST(LowerBoundInstanceTest, ExplicitChildrenRespected) {
  workload::LowerBoundConfig cfg;
  cfg.m = 16;
  cfg.children = 8;
  cfg.num_jobs = 1;
  const auto inst = workload::make_lower_bound_instance(cfg);
  EXPECT_EQ(inst.jobs[0].graph.total_work(), 9u);
  cfg.children = 20;  // > m: the OPT = 2 argument breaks
  EXPECT_THROW(workload::make_lower_bound_instance(cfg),
               std::invalid_argument);
}

TEST(LowerBoundInstanceTest, OptFinishesEachJobInTwo) {
  workload::LowerBoundConfig cfg;
  cfg.m = 20;
  cfg.num_jobs = 25;
  const auto inst = workload::make_lower_bound_instance(cfg);
  sched::FifoScheduler fifo;
  const auto res = fifo.run(inst, {cfg.m, 1.0});
  // Jobs never overlap (spacing 2m >> 2), so FIFO == OPT here.
  EXPECT_DOUBLE_EQ(res.max_flow, workload::lower_bound_opt_flow());
}

TEST(LowerBoundInstanceTest, WorkStealingFlowGrowsWithM) {
  // The Omega(log n) phenomenon: some job runs (nearly) sequentially under
  // randomized stealing, so max flow grows with m (= log of the proof's n)
  // while OPT stays 2.  Use admit-first at speed 1.
  double prev_flow = 0.0;
  for (unsigned m : {20u, 80u}) {
    workload::LowerBoundConfig cfg;
    cfg.m = m;
    cfg.num_jobs = 400;
    const auto inst = workload::make_lower_bound_instance(cfg);
    sched::WorkStealingScheduler ws(0, 12345);
    const auto res = ws.run(inst, {m, 1.0});
    EXPECT_GT(res.max_flow, workload::lower_bound_opt_flow());
    EXPECT_GT(res.max_flow, prev_flow);
    prev_flow = res.max_flow;
  }
}

TEST(LowerBoundInstanceTest, BadConfigRejected) {
  workload::LowerBoundConfig cfg;
  cfg.m = 0;
  EXPECT_THROW(workload::make_lower_bound_instance(cfg),
               std::invalid_argument);
  cfg = {};
  cfg.num_jobs = 0;
  EXPECT_THROW(workload::make_lower_bound_instance(cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace pjsched
