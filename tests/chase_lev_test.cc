// Tests for the Chase–Lev work-stealing deque
// (src/runtime/chase_lev_deque.h): single-threaded LIFO/FIFO semantics,
// growth, and multi-threaded owner/thief stress with full accounting.
#include "src/runtime/chase_lev_deque.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

namespace pjsched::runtime {
namespace {

using IntDeque = ChaseLevDeque<std::intptr_t>;

TEST(ChaseLevTest, OwnerPopIsLifo) {
  IntDeque d;
  d.push(1);
  d.push(2);
  d.push(3);
  std::intptr_t v = 0;
  ASSERT_TRUE(d.pop(v));
  EXPECT_EQ(v, 3);
  ASSERT_TRUE(d.pop(v));
  EXPECT_EQ(v, 2);
  ASSERT_TRUE(d.pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(d.pop(v));
}

TEST(ChaseLevTest, StealIsFifo) {
  IntDeque d;
  d.push(1);
  d.push(2);
  d.push(3);
  std::intptr_t v = 0;
  ASSERT_TRUE(d.steal(v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(d.steal(v));
  EXPECT_EQ(v, 2);
  ASSERT_TRUE(d.steal(v));
  EXPECT_EQ(v, 3);
  EXPECT_FALSE(d.steal(v));
}

TEST(ChaseLevTest, MixedOwnerAndThiefEnds) {
  IntDeque d;
  for (std::intptr_t i = 1; i <= 4; ++i) d.push(i);
  std::intptr_t v = 0;
  ASSERT_TRUE(d.steal(v));   // oldest
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(d.pop(v));     // newest
  EXPECT_EQ(v, 4);
  ASSERT_TRUE(d.steal(v));
  EXPECT_EQ(v, 2);
  ASSERT_TRUE(d.pop(v));
  EXPECT_EQ(v, 3);
  EXPECT_TRUE(d.empty_hint());
}

TEST(ChaseLevTest, GrowthPreservesContents) {
  IntDeque d(4);  // tiny initial capacity forces several growths
  constexpr std::intptr_t kN = 10000;
  for (std::intptr_t i = 0; i < kN; ++i) d.push(i);
  EXPECT_EQ(d.size_hint(), static_cast<std::size_t>(kN));
  // Steal drains in FIFO order across buffer generations.
  std::intptr_t v = 0;
  for (std::intptr_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(d.steal(v));
    ASSERT_EQ(v, i);
  }
  EXPECT_FALSE(d.steal(v));
}

TEST(ChaseLevTest, InterleavedPushPop) {
  IntDeque d;
  std::intptr_t v = 0;
  for (int round = 0; round < 1000; ++round) {
    d.push(round);
    d.push(round + 1000000);
    ASSERT_TRUE(d.pop(v));
    EXPECT_EQ(v, round + 1000000);
  }
  EXPECT_EQ(d.size_hint(), 1000u);
}

// Concurrency stress: one owner pushes/pops while thieves steal; every
// pushed value must be consumed exactly once.
TEST(ChaseLevStressTest, OwnerVsThievesExactlyOnce) {
  constexpr int kThieves = 3;
  constexpr std::intptr_t kItems = 20000;
  IntDeque d(8);

  std::vector<std::vector<std::intptr_t>> stolen(kThieves);
  std::vector<std::intptr_t> popped;
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&, t] {
      std::intptr_t v = 0;
      while (!done.load(std::memory_order_acquire)) {
        if (d.steal(v)) stolen[t].push_back(v);
      }
      // Final drain so nothing is left behind.
      while (d.steal(v)) stolen[t].push_back(v);
    });
  }

  // Owner: push all items, popping a few along the way.
  std::intptr_t v = 0;
  for (std::intptr_t i = 0; i < kItems; ++i) {
    d.push(i);
    if (i % 3 == 0 && d.pop(v)) popped.push_back(v);
  }
  while (d.pop(v)) popped.push_back(v);
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  std::vector<std::intptr_t> all = popped;
  for (const auto& s : stolen) all.insert(all.end(), s.begin(), s.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kItems));
  std::set<std::intptr_t> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kItems));
}

// Concurrency stress focused on the pop/steal race over the last element.
TEST(ChaseLevStressTest, LastElementRace) {
  constexpr int kRounds = 5000;
  IntDeque d;
  std::atomic<int> phase{0};
  std::atomic<int> stolen_count{0};
  std::atomic<int> popped_count{0};
  std::atomic<bool> stop{false};

  std::thread thief([&] {
    std::intptr_t v = 0;
    int last_seen = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const int p = phase.load(std::memory_order_acquire);
      if (p > last_seen) {
        if (d.steal(v)) stolen_count.fetch_add(1);
        last_seen = p;
      }
    }
  });

  std::intptr_t v = 0;
  for (int i = 0; i < kRounds; ++i) {
    d.push(i);
    phase.fetch_add(1, std::memory_order_release);
    if (d.pop(v)) popped_count.fetch_add(1);
  }
  stop.store(true, std::memory_order_release);
  thief.join();
  // Drain any leftovers the thief skipped.
  while (d.pop(v)) popped_count.fetch_add(1);

  EXPECT_EQ(stolen_count.load() + popped_count.load(), kRounds);
}

}  // namespace
}  // namespace pjsched::runtime
