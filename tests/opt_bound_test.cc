// Tests for the simulated-OPT lower bound (src/sched/opt_bound.h):
// the exact FIFO-on-one-machine recurrence and the lower-bound property
// against every real scheduler.
#include "src/sched/opt_bound.h"

#include <gtest/gtest.h>

#include "src/dag/builders.h"
#include "src/sched/baselines.h"
#include "src/sched/bwf.h"
#include "src/sched/fifo.h"
#include "src/sched/work_stealing.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

using testutil::make_instance;

TEST(OptBoundTest, RecurrenceExact) {
  // m = 2: job lengths W/m = {3, 1, 2}; arrivals {0, 1, 9}.
  auto inst = make_instance({
      {0.0, dag::single_node(6)},
      {1.0, dag::single_node(2)},
      {9.0, dag::single_node(4)},
  });
  sched::OptLowerBound opt;
  const auto res = opt.run(inst, {2, 1.0});
  EXPECT_DOUBLE_EQ(res.completion[0], 3.0);   // 0 + 6/2
  EXPECT_DOUBLE_EQ(res.completion[1], 4.0);   // max(1,3) + 1
  EXPECT_DOUBLE_EQ(res.completion[2], 11.0);  // max(9,4) + 2
  EXPECT_DOUBLE_EQ(res.max_flow, 3.0);
}

TEST(OptBoundTest, IgnoresAlgorithmSpeedByDefault) {
  auto inst = make_instance({{0.0, dag::single_node(8)}});
  sched::OptLowerBound opt;
  // Machine speed 2 must not shrink the adversary's schedule.
  EXPECT_DOUBLE_EQ(opt.run(inst, {2, 2.0}).max_flow, 4.0);
}

TEST(OptBoundTest, SpeedScaledVariant) {
  auto inst = make_instance({{0.0, dag::single_node(8)}});
  sched::OptLowerBound opt(/*use_machine_speed=*/true);
  EXPECT_DOUBLE_EQ(opt.run(inst, {2, 2.0}).max_flow, 2.0);
}

TEST(OptBoundTest, LowerBoundsEverySchedulerAtSpeedOne) {
  for (std::uint64_t seed : {3u, 4u, 5u}) {
    auto inst = testutil::random_instance(seed, 35, 50.0);
    const core::MachineConfig machine{3, 1.0};
    sched::OptLowerBound opt;
    const double bound = opt.run(inst, machine).max_flow;

    sched::FifoScheduler fifo;
    sched::BwfScheduler bwf;
    sched::LifoScheduler lifo;
    sched::SjfScheduler sjf;
    sched::RoundRobinScheduler rr;
    sched::WorkStealingScheduler admit(0, seed);
    sched::WorkStealingScheduler steal16(16, seed);

    EXPECT_GE(fifo.run(inst, machine).max_flow + 1e-9, bound);
    EXPECT_GE(bwf.run(inst, machine).max_flow + 1e-9, bound);
    EXPECT_GE(lifo.run(inst, machine).max_flow + 1e-9, bound);
    EXPECT_GE(sjf.run(inst, machine).max_flow + 1e-9, bound);
    EXPECT_GE(rr.run(inst, machine).max_flow + 1e-9, bound);
    EXPECT_GE(admit.run(inst, machine).max_flow + 1e-9, bound);
    EXPECT_GE(steal16.run(inst, machine).max_flow + 1e-9, bound);
  }
}

TEST(OptBoundTest, BacklogAccumulates) {
  // Jobs arrive faster than the relaxed machine drains them.
  std::vector<std::pair<core::Time, dag::Dag>> jobs;
  for (int i = 0; i < 10; ++i)
    jobs.emplace_back(static_cast<core::Time>(i), dag::single_node(4));
  auto inst = make_instance(std::move(jobs));
  sched::OptLowerBound opt;
  const auto res = opt.run(inst, {2, 1.0});
  // Each job adds 2 units of length but arrivals come every 1: queue grows
  // by 1 per job; last job's flow = 10*2 - 9 = 11.
  EXPECT_DOUBLE_EQ(res.completion[9], 20.0);
  EXPECT_DOUBLE_EQ(res.max_flow, 11.0);
}

TEST(OptBoundTest, ZeroProcessorsRejected) {
  auto inst = make_instance({{0.0, dag::single_node(1)}});
  sched::OptLowerBound opt;
  EXPECT_THROW(opt.run(inst, {0, 1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace pjsched
