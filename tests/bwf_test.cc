// Biggest-Weight-First tests (paper Section 7): weight-ordered allocation,
// heavy jobs preempting light ones, and weighted-max-flow behaviour vs FIFO.
#include "src/sched/bwf.h"

#include <gtest/gtest.h>

#include "src/core/bounds.h"
#include "src/dag/builders.h"
#include "src/sched/fifo.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

using testutil::make_weighted_instance;

TEST(BwfTest, Name) {
  sched::BwfScheduler bwf;
  EXPECT_EQ(bwf.name(), "bwf");
}

TEST(BwfTest, HeavierJobRunsFirst) {
  // Same arrival, one processor: the weight-8 job runs before weight-1.
  auto inst = make_weighted_instance({
      {0.0, 1.0, dag::single_node(5)},
      {0.0, 8.0, dag::single_node(5)},
  });
  sched::BwfScheduler bwf;
  const auto res = bwf.run(inst, {1, 1.0});
  EXPECT_DOUBLE_EQ(res.completion[1], 5.0);
  EXPECT_DOUBLE_EQ(res.completion[0], 10.0);
  EXPECT_DOUBLE_EQ(res.max_weighted_flow, 40.0);  // 8 * 5
}

TEST(BwfTest, ArrivingHeavyJobPreemptsLight) {
  auto inst = make_weighted_instance({
      {0.0, 1.0, dag::single_node(10)},
      {2.0, 4.0, dag::single_node(3)},
  });
  sched::BwfScheduler bwf;
  const auto res = bwf.run(inst, {1, 1.0});
  // Light runs [0,2), heavy preempts and runs [2,5), light resumes [5,13).
  EXPECT_DOUBLE_EQ(res.completion[1], 5.0);
  EXPECT_DOUBLE_EQ(res.completion[0], 13.0);
}

TEST(BwfTest, EqualWeightsTieBreakByArrival) {
  auto inst = make_weighted_instance({
      {1.0, 2.0, dag::single_node(4)},
      {0.0, 2.0, dag::single_node(4)},
  });
  sched::BwfScheduler bwf;
  const auto res = bwf.run(inst, {1, 1.0});
  EXPECT_DOUBLE_EQ(res.completion[1], 4.0);  // arrived first
  EXPECT_DOUBLE_EQ(res.completion[0], 8.0);
}

TEST(BwfTest, UnweightedBwfEqualsFifo) {
  // With all weights 1, BWF's order is FIFO's order.
  auto inst = testutil::random_instance(77, 30, 50.0);
  sched::BwfScheduler bwf;
  sched::FifoScheduler fifo;
  const auto b = bwf.run(inst, {3, 1.0});
  const auto f = fifo.run(inst, {3, 1.0});
  ASSERT_EQ(b.completion.size(), f.completion.size());
  for (std::size_t i = 0; i < b.completion.size(); ++i)
    EXPECT_DOUBLE_EQ(b.completion[i], f.completion[i]);
}

TEST(BwfTest, BeatsFifoOnWeightedObjective) {
  // A stream of light jobs followed by a heavy one: FIFO makes the heavy
  // job wait behind the backlog; BWF does not.
  std::vector<std::tuple<core::Time, double, dag::Dag>> jobs;
  for (int i = 0; i < 10; ++i)
    jobs.emplace_back(static_cast<core::Time>(i) * 0.1, 1.0,
                      dag::single_node(10));
  jobs.emplace_back(1.0, 100.0, dag::single_node(10));
  auto inst = make_weighted_instance(std::move(jobs));

  sched::BwfScheduler bwf;
  sched::FifoScheduler fifo;
  const auto b = bwf.run(inst, {1, 1.0});
  const auto f = fifo.run(inst, {1, 1.0});
  EXPECT_LT(b.max_weighted_flow, f.max_weighted_flow);
  // BWF runs the heavy job the moment it arrives.
  EXPECT_DOUBLE_EQ(b.completion[10], 11.0);
}

TEST(BwfTest, WeightedFlowAtLeastWeightedBounds) {
  for (std::uint64_t seed : {11u, 12u}) {
    sim::Rng wrng(seed);
    auto inst = testutil::random_instance(seed, 25, 40.0);
    for (auto& job : inst.jobs)
      job.weight = static_cast<double>(1 + wrng.uniform_int(8));
    sched::BwfScheduler bwf;
    const auto res = bwf.run(inst, {2, 1.0});
    EXPECT_GE(res.max_weighted_flow + 1e-6,
              core::weighted_combined_lower_bound(inst, 2));
  }
}

TEST(BwfTest, LightJobsUseLeftoverProcessors) {
  // Heavy chain uses 1 processor; light wide job runs on the other.
  auto inst = make_weighted_instance({
      {0.0, 10.0, dag::serial_chain(6, 2)},
      {0.0, 1.0, dag::single_node(4)},
  });
  sched::BwfScheduler bwf;
  const auto res = bwf.run(inst, {2, 1.0});
  EXPECT_DOUBLE_EQ(res.completion[0], 12.0);
  EXPECT_DOUBLE_EQ(res.completion[1], 4.0);  // ran concurrently
}

}  // namespace
}  // namespace pjsched
