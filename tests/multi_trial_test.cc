// Tests for the multi-trial runner (src/core/multi_trial.h).
#include "src/core/multi_trial.h"

#include <gtest/gtest.h>

namespace pjsched::core {
namespace {

TrialConfig base_config() {
  TrialConfig cfg;
  cfg.trials = 4;
  cfg.generator.num_jobs = 150;
  cfg.generator.qps = 600.0;
  cfg.generator.seed = 7;
  cfg.machine = {8, 1.0};
  cfg.scheduler.kind = SchedulerKind::kAdmitFirst;
  cfg.scheduler.seed = 3;
  return cfg;
}

TEST(MultiTrialTest, RunsRequestedTrials) {
  const auto dist = workload::bing_distribution();
  const auto out = run_trials(dist, base_config());
  EXPECT_EQ(out.trials, 4u);
  EXPECT_EQ(out.max_flow.count, 4u);
  EXPECT_GT(out.max_flow.mean, 0.0);
  EXPECT_GE(out.max_flow.max, out.max_flow.min);
  EXPECT_GE(out.ratio_to_opt.min, 1.0 - 1e-9);
}

TEST(MultiTrialTest, ZeroTrialsRejected) {
  const auto dist = workload::bing_distribution();
  auto cfg = base_config();
  cfg.trials = 0;
  EXPECT_THROW(run_trials(dist, cfg), std::invalid_argument);
}

TEST(MultiTrialTest, DeterministicGivenSeeds) {
  const auto dist = workload::finance_distribution();
  const auto a = run_trials(dist, base_config());
  const auto b = run_trials(dist, base_config());
  EXPECT_DOUBLE_EQ(a.max_flow.mean, b.max_flow.mean);
  EXPECT_DOUBLE_EQ(a.ratio_to_opt.mean, b.ratio_to_opt.mean);
}

TEST(MultiTrialTest, FixedInstanceIsolatesSchedulerVariance) {
  const auto dist = workload::bing_distribution();
  auto cfg = base_config();
  cfg.fixed_instance = true;
  cfg.scheduler.kind = SchedulerKind::kFifo;  // deterministic scheduler
  const auto out = run_trials(dist, cfg);
  // Same instance + deterministic scheduler: zero variance across trials.
  EXPECT_DOUBLE_EQ(out.max_flow.stddev, 0.0);
  EXPECT_DOUBLE_EQ(out.max_flow.min, out.max_flow.max);
}

TEST(MultiTrialTest, RandomizedSchedulerVariesOnFixedInstance) {
  const auto dist = workload::bing_distribution();
  auto cfg = base_config();
  cfg.fixed_instance = true;
  cfg.trials = 6;
  const auto out = run_trials(dist, cfg);  // admit-first: randomized
  // Different steal seeds virtually always give different max flows on a
  // loaded instance.
  EXPECT_GT(out.max_flow.stddev, 0.0);
}

TEST(MultiTrialTest, FreshInstancesVaryWorkload) {
  const auto dist = workload::bing_distribution();
  auto cfg = base_config();
  cfg.scheduler.kind = SchedulerKind::kOptBound;  // deterministic per instance
  const auto out = run_trials(dist, cfg);
  EXPECT_GT(out.max_flow.stddev, 0.0);  // instances differ across trials
}

}  // namespace
}  // namespace pjsched::core
