// Tests for the EQUI (dynamic equipartition) baseline and the event
// engine's processor_cap allocation path.
#include <gtest/gtest.h>

#include "src/core/bounds.h"
#include "src/core/run.h"
#include "src/dag/builders.h"
#include "src/metrics/audit.h"
#include "src/sched/baselines.h"
#include "src/sched/fifo.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

using testutil::make_instance;

TEST(EquiTest, SplitsProcessorsEvenly) {
  // Two wide jobs on m = 4: each gets 2 processors.  Each job: 8 bodies of
  // work 4 on 2 procs = 16 body time; 1 + 16 + 1 = 18 for both.
  auto inst = make_instance({
      {0.0, dag::parallel_for_dag(8, 4)},
      {0.0, dag::parallel_for_dag(8, 4)},
  });
  sched::EquiScheduler equi;
  const auto res = equi.run(inst, {4, 1.0});
  EXPECT_DOUBLE_EQ(res.completion[0], 18.0);
  EXPECT_DOUBLE_EQ(res.completion[1], 18.0);
}

TEST(EquiTest, LeftoverProcessorsRedistributed) {
  // Job 0 is sequential (uses 1 of its 2-proc share); job 1 is wide and
  // soaks up the leftover: work conservation means 3 procs go to job 1.
  auto inst = make_instance({
      {0.0, dag::serial_chain(12, 1)},       // 12 units, 1 proc
      {0.0, dag::parallel_for_dag(9, 4)},    // bodies: 9*4 = 36 units
  });
  sched::EquiScheduler equi;
  sim::Trace trace;
  const auto res = equi.run(inst, {4, 1.0}, &trace);
  // Job 1: root [0,1); bodies on 3 procs: 3,3,3 rounds = 12 time; join 1.
  EXPECT_DOUBLE_EQ(res.completion[1], 14.0);
  EXPECT_DOUBLE_EQ(res.completion[0], 12.0);
  // And the schedule is legal.
  const auto report = metrics::audit_schedule(inst, {4, 1.0}, trace, res);
  EXPECT_TRUE(report.ok) << report.to_string();
}

TEST(EquiTest, SingleJobGetsWholeMachine) {
  auto inst = make_instance({{0.0, dag::parallel_for_dag(4, 6)}});
  sched::EquiScheduler equi;
  sched::FifoScheduler fifo;
  EXPECT_DOUBLE_EQ(equi.run(inst, {4, 1.0}).completion[0],
                   fifo.run(inst, {4, 1.0}).completion[0]);
}

TEST(EquiTest, TradesMaxFlowForMeanFlow) {
  // The classic EQUI-vs-FIFO separation in one deterministic instance:
  // a wide job, then a short job.  FIFO makes the short job wait (good max
  // flow, bad mean); EQUI shares immediately — the short job flies, the
  // wide job lingers (good mean, worse max).  Exact schedules:
  //   FIFO: flow0 = 12, flow1 = 13  -> max 13, mean 12.5
  //   EQUI: flow0 = 16, flow1 = 4   -> max 16, mean 10
  auto inst = make_instance({
      {0.0, dag::parallel_for_dag(2, 10)},
      {2.0, dag::single_node(4)},
  });
  sched::EquiScheduler equi;
  sched::FifoScheduler fifo;
  const auto e = equi.run(inst, {2, 1.0});
  const auto f = fifo.run(inst, {2, 1.0});
  EXPECT_DOUBLE_EQ(f.max_flow, 13.0);
  EXPECT_DOUBLE_EQ(e.max_flow, 16.0);
  EXPECT_DOUBLE_EQ(f.mean_flow, 12.5);
  EXPECT_DOUBLE_EQ(e.mean_flow, 10.0);
  EXPECT_GT(e.max_flow, f.max_flow);
  EXPECT_LT(e.mean_flow, f.mean_flow);
}

TEST(EquiTest, AuditCleanOnRandomInstances) {
  for (std::uint64_t seed : {61u, 62u, 63u}) {
    auto inst = testutil::random_instance(seed, 25, 40.0);
    sim::Trace trace;
    sched::EquiScheduler equi;
    const auto res = equi.run(inst, {3, 1.0}, &trace);
    const auto report = metrics::audit_schedule(inst, {3, 1.0}, trace, res);
    EXPECT_TRUE(report.ok) << report.to_string();
    EXPECT_GE(res.max_flow + 1e-9, core::span_lower_bound(inst));
  }
}

TEST(EquiTest, FactoryAndParser) {
  EXPECT_EQ(core::parse_scheduler("equi").kind, core::SchedulerKind::kEqui);
  EXPECT_EQ(core::make_scheduler({core::SchedulerKind::kEqui})->name(),
            "equi");
}

}  // namespace
}  // namespace pjsched
