// Tests for the deterministic RNG (src/sim/rng.h).
#include "src/sim/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace pjsched::sim {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_int(7), 7u);
    EXPECT_EQ(rng.uniform_int(1), 0u);
  }
  EXPECT_THROW(rng.uniform_int(0), std::invalid_argument);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.uniform_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_THROW(rng.uniform_range(3, 1), std::invalid_argument);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(23);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(29);
  constexpr int kN = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sq / kN, 1.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(31);
  constexpr int kN = 50000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.exponential(4.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 0.25, 0.01);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(RngTest, LognormalMean) {
  Rng rng(37);
  constexpr int kN = 100000;
  const double mu = std::log(10.0) - 0.5;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.lognormal(mu, 1.0);
  // E[lognormal(mu, 1)] = exp(mu + 1/2) = 10.
  EXPECT_NEAR(sum / kN, 10.0, 0.5);
}

TEST(RngTest, ForkedStreamsAreIndependentAndStable) {
  Rng parent(41);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  Rng c1_again = parent.fork(1);
  // Same stream id -> same sequence; different ids -> different sequences.
  EXPECT_EQ(c1.next_u64(), c1_again.next_u64());
  Rng c1b = parent.fork(1);
  c1b.next_u64();
  EXPECT_NE(c1b.next_u64(), c2.next_u64());
}

TEST(RngTest, ForkDoesNotPerturbParent) {
  Rng a(43), b(43);
  (void)a.fork(9);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(47);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(53);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(SplitMixTest, KnownSequenceAdvancesState) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), a);
}

}  // namespace
}  // namespace pjsched::sim
