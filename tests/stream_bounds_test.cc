// Streamed-bounds cross-checks: the one-pass stream_lower_bounds pipeline
// must be *bitwise* equal to the historical materialized bound functions —
// every bound is a running max of per-job terms, and the opt_sim FIFO
// recurrence visits jobs in the same arrival order the materialized loop
// iterated — and run_scheduler_streamed_with_bounds must report exactly
// those bounds plus the ratio, over every scheduler and workload the
// streamed-run cross-check suite covers.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

#include "src/core/bounds.h"
#include "src/core/experiment.h"
#include "src/core/job_source.h"
#include "src/core/run.h"
#include "src/core/types.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"
#include "src/workload/streaming_source.h"

namespace pjsched {
namespace {

workload::GeneratorConfig base_config(std::size_t jobs) {
  workload::GeneratorConfig cfg;
  cfg.num_jobs = jobs;
  cfg.qps = 800.0;
  cfg.units_per_ms = 100.0;
  cfg.seed = 5;
  cfg.weight_classes = {1.0, 2.0, 8.0};
  return cfg;
}

core::MachineConfig machine16() {
  core::MachineConfig m;
  m.processors = 16;
  m.speed = 1.0;
  return m;
}

void expect_bounds_match_materialized(const core::LowerBoundSet& b,
                                      const core::Instance& inst,
                                      unsigned m) {
  EXPECT_EQ(b.jobs, inst.jobs.size());
  // Bitwise, not approximate: the streamed pass and the materialized
  // adapters must round identically (they share sim_math.h's helpers).
  EXPECT_EQ(b.span, core::span_lower_bound(inst));
  EXPECT_EQ(b.work, core::work_lower_bound(inst, m));
  EXPECT_EQ(b.opt_sim, core::opt_sim_lower_bound(inst, m));
  EXPECT_EQ(b.combined, core::combined_lower_bound(inst, m));
  EXPECT_EQ(b.weighted_span, core::weighted_span_lower_bound(inst));
  EXPECT_EQ(b.weighted_work, core::weighted_work_lower_bound(inst, m));
  EXPECT_EQ(b.weighted_combined,
            core::weighted_combined_lower_bound(inst, m));
}

// All six bound values from one streamed pass over an InstanceSource equal
// the per-Instance functions bitwise, on both evaluation workloads and with
// non-trivial weight classes.
TEST(StreamBoundsTest, StreamedMatchesMaterializedBitwise) {
  const workload::DiscreteWorkDistribution bing =
      workload::bing_distribution();
  const workload::LognormalWorkDistribution lognormal =
      workload::default_lognormal_distribution();
  const workload::WorkDistribution* dists[] = {&bing, &lognormal};

  for (const workload::WorkDistribution* dist : dists) {
    SCOPED_TRACE(dist->name());
    const core::Instance inst =
        workload::generate_instance(*dist, base_config(500));
    for (unsigned m : {1u, 3u, 16u}) {
      SCOPED_TRACE(m);
      core::InstanceSource source(inst);
      expect_bounds_match_materialized(
          core::stream_lower_bounds(source, m), inst, m);
    }
  }
}

// A GeneratedJobSource yields the same stream generate_instance
// materializes, so the bounds agree bitwise without an Instance at all.
TEST(StreamBoundsTest, GeneratedSourceMatchesInstanceSource) {
  const auto dist = workload::bing_distribution();
  const workload::GeneratorConfig cfg = base_config(400);
  const core::Instance inst = workload::generate_instance(dist, cfg);

  workload::GeneratedJobSource generated(dist, cfg);
  const core::LowerBoundSet b = core::stream_lower_bounds(generated, 16);
  expect_bounds_match_materialized(b, inst, 16);
}

// The streamed opt_sim bound *is* the Section 6 simulated-OPT scheduler:
// at speed 1 it must reproduce the kOptBound run's max flow bitwise.
TEST(StreamBoundsTest, OptSimEqualsOptSchedulerRun) {
  const auto dist = workload::default_lognormal_distribution();
  const workload::GeneratorConfig cfg = base_config(300);
  const core::Instance inst = workload::generate_instance(dist, cfg);
  const core::ScheduleResult opt =
      run_scheduler(inst, core::parse_scheduler("opt"), machine16());

  workload::GeneratedJobSource source(dist, cfg);
  const core::LowerBoundSet b = core::stream_lower_bounds(source, 16);
  EXPECT_EQ(b.opt_sim, opt.max_flow);
}

class StreamBoundsCrossCheck
    : public ::testing::TestWithParam<const char*> {};

// The ratio entry point: twin generated sources, every scheduler, both
// workloads.  The run half must equal a plain streamed run, the bounds
// half must equal the materialized bounds, and the ratios must divide
// those exact values.
TEST_P(StreamBoundsCrossCheck, RatioCombinesRunAndBounds) {
  const core::SchedulerSpec spec = core::parse_scheduler(GetParam());
  const core::MachineConfig machine = machine16();

  const workload::DiscreteWorkDistribution bing =
      workload::bing_distribution();
  const workload::LognormalWorkDistribution lognormal =
      workload::default_lognormal_distribution();
  const workload::WorkDistribution* dists[] = {&bing, &lognormal};

  for (const workload::WorkDistribution* dist : dists) {
    SCOPED_TRACE(dist->name());
    const workload::GeneratorConfig cfg = base_config(400);
    workload::GeneratedJobSource run_source(*dist, cfg);
    workload::GeneratedJobSource bound_source(*dist, cfg);
    const core::StreamRatioResult res =
        core::run_scheduler_streamed_with_bounds(run_source, bound_source,
                                                 spec, machine);

    workload::GeneratedJobSource plain_source(*dist, cfg);
    const core::StreamRunResult plain =
        run_scheduler_streamed(plain_source, spec, machine);
    EXPECT_EQ(res.run.max_flow, plain.max_flow);
    EXPECT_EQ(res.run.max_weighted_flow, plain.max_weighted_flow);
    EXPECT_EQ(res.run.argmax_flow, plain.argmax_flow);
    EXPECT_EQ(res.run.makespan, plain.makespan);
    EXPECT_EQ(res.run.jobs, plain.jobs);

    const core::Instance inst = workload::generate_instance(*dist, cfg);
    expect_bounds_match_materialized(res.bounds, inst, machine.processors);

    ASSERT_GT(res.bounds.combined, 0.0);
    EXPECT_EQ(res.ratio, res.run.max_flow / res.bounds.combined);
    ASSERT_GT(res.bounds.weighted_combined, 0.0);
    EXPECT_EQ(res.weighted_ratio,
              res.run.max_weighted_flow / res.bounds.weighted_combined);
    // Lower bound means ratio >= 1 for every feasible 1-speed schedule.
    EXPECT_GE(res.ratio, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Schedulers, StreamBoundsCrossCheck,
                         ::testing::Values("fifo", "fifo-exact", "bwf",
                                           "lifo", "sjf", "round-robin",
                                           "equi", "admit-first",
                                           "steal-16-first"),
                         [](const auto& info) {
                           std::string n = info.param;
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

// The twin-source contract is checked, not assumed: sources that disagree
// on length are a caller bug and throw.
TEST(StreamBoundsTest, TwinSourceMismatchThrows) {
  const auto dist = workload::bing_distribution();
  workload::GeneratedJobSource run_source(dist, base_config(50));
  workload::GeneratedJobSource bound_source(dist, base_config(40));
  EXPECT_THROW(core::run_scheduler_streamed_with_bounds(
                   run_source, bound_source,
                   core::parse_scheduler("fifo"), machine16()),
               std::invalid_argument);
}

TEST(StreamBoundsTest, ZeroProcessorsRejected) {
  const auto dist = workload::bing_distribution();
  workload::GeneratedJobSource source(dist, base_config(5));
  EXPECT_THROW(core::stream_lower_bounds(source, 0), std::invalid_argument);
}

TEST(StreamBoundsTest, EmptySourceYieldsZeroBounds) {
  const core::Instance empty;
  core::InstanceSource source(empty);
  const core::LowerBoundSet b = core::stream_lower_bounds(source, 8);
  EXPECT_EQ(b.jobs, 0u);
  EXPECT_EQ(b.combined, 0.0);
  EXPECT_EQ(b.weighted_combined, 0.0);
}

// The streamed experiment driver reports the same max/opt/ratio columns as
// the materialized sweep (bitwise — they share sources, engines, and the
// opt_sim == OPT-run identity above).
TEST(StreamBoundsTest, StreamedExperimentMatchesMaterializedColumns) {
  const auto dist = workload::bing_distribution();
  core::ExperimentConfig cfg;
  cfg.processors = 16;
  cfg.num_jobs = 300;
  cfg.qps_values = {400.0, 800.0};
  cfg.schedulers = {core::parse_scheduler("fifo"),
                    core::parse_scheduler("steal-16-first")};
  cfg.units_per_ms = 100.0;
  cfg.seed = 5;
  cfg.weight_classes = {1.0, 2.0, 8.0};

  const auto mat = core::run_experiment(dist, cfg);
  const auto str = core::run_experiment_streamed(dist, cfg);
  ASSERT_EQ(mat.size(), str.size());
  for (std::size_t i = 0; i < mat.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(str[i].workload, mat[i].workload);
    EXPECT_EQ(str[i].qps, mat[i].qps);
    EXPECT_EQ(str[i].scheduler, mat[i].scheduler);
    EXPECT_EQ(str[i].max_flow_ms, mat[i].max_flow_ms);
    EXPECT_EQ(str[i].max_weighted_flow_ms, mat[i].max_weighted_flow_ms);
    EXPECT_EQ(str[i].opt_bound_ms, mat[i].opt_bound_ms);
    EXPECT_EQ(str[i].ratio_to_opt, mat[i].ratio_to_opt);
    // 300 jobs per cell fit the reservoir, so the p99 order statistics are
    // exact; the column still differs by <= 1 ulp because the materialized
    // sweep converts samples to ms before the quantile interpolation while
    // the streamed sweep divides the interpolated quantile once.
    EXPECT_NEAR(str[i].p99_flow_ms, mat[i].p99_flow_ms,
                1e-12 * (1.0 + mat[i].p99_flow_ms));
  }
}

}  // namespace
}  // namespace pjsched
