// Behavioral tests for the per-tenant sharded admission router
// (src/service/tenant_router.*): weighted-fair pops, heaviest-over-share
// shedding with earliest-queued tie-break, the rung side effects at each
// ladder stage, and the conservation law its stats() promises.
#include "src/service/tenant_router.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/rng.h"

namespace pjsched::service {
namespace {

JobRecord rec(const std::string& tenant, double work = 1.0) {
  JobRecord r;
  r.tenant = tenant;
  r.work = work;
  return r;
}

/// Single-shard config: every tenant shares one queue, so fair-share math
/// is exact and deterministic in the tests.
RouterConfig one_shard(std::size_t capacity) {
  RouterConfig c;
  c.shards = 1;
  c.capacity = capacity;
  return c;
}

/// push() helper that asserts admission.
void admit(TenantRouter& router, const JobRecord& r) {
  std::vector<ShedRecord> ev;
  ShedReason why{};
  ASSERT_EQ(router.push(r, &ev, &why), PushOutcome::kAdmitted);
  ASSERT_TRUE(ev.empty());
}

void expect_conservation(const TenantRouter::Stats& s) {
  EXPECT_EQ(s.accepted, s.popped + s.shed_fair_share + s.shed_queued + s.depth);
}

TEST(TenantRouter, PopsWeightedFairAcrossTenants) {
  TenantRouter router(one_shard(16));
  router.set_weight("a", 1.0);
  router.set_weight("b", 3.0);
  for (int i = 0; i < 4; ++i) admit(router, rec("a"));
  for (int i = 0; i < 4; ++i) admit(router, rec("b"));

  // Weighted fair queuing at weights 1:3 with unit work serves exactly
  // this order (ties broken by earliest queued record).
  const std::vector<std::string> expected = {"a", "b", "b", "b",
                                             "a", "b", "a", "a"};
  std::vector<std::string> order;
  QueuedRecord out;
  while (router.try_pop(&out)) order.push_back(out.record.tenant);
  EXPECT_EQ(order, expected);
  expect_conservation(router.stats());
}

TEST(TenantRouter, FifoWithinATenant) {
  TenantRouter router(one_shard(16));
  for (int i = 0; i < 5; ++i) {
    JobRecord r = rec("only");
    r.client_id = static_cast<std::uint64_t>(i + 1);
    admit(router, r);
  }
  QueuedRecord out;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(router.try_pop(&out));
    EXPECT_EQ(out.record.client_id, static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_FALSE(router.try_pop(&out));
}

TEST(TenantRouter, FullShardShedsMostOverShareTenantHeadFirst) {
  TenantRouter router(one_shard(4));
  JobRecord first = rec("heavy");
  first.client_id = 111;  // the earliest-queued record: the one evicted
  admit(router, first);
  admit(router, rec("heavy"));
  admit(router, rec("heavy"));
  admit(router, rec("light"));

  // Full.  light (1 queued, share 2) pushes: heavy (3 queued, share 2) is
  // the over-share tenant, so heavy's HEAD is evicted and light admitted.
  std::vector<ShedRecord> ev;
  ShedReason why{};
  EXPECT_EQ(router.push(rec("light"), &ev, &why), PushOutcome::kAdmitted);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].item.record.tenant, "heavy");
  EXPECT_EQ(ev[0].item.record.client_id, 111u);  // head drop, not tail
  EXPECT_EQ(ev[0].reason, ShedReason::kFairShare);

  const TenantRouter::Stats s = router.stats();
  EXPECT_EQ(s.shed_fair_share, 1u);
  EXPECT_EQ(s.depth, 4u);
  expect_conservation(s);
}

TEST(TenantRouter, SoleTenantOverOwnShareShedsItsArrival) {
  TenantRouter router(one_shard(4));
  for (int i = 0; i < 4; ++i) admit(router, rec("solo"));
  // solo's share is the whole shard; at 4 queued it is not over share, so
  // there is no victim — the arrival itself is shed.
  std::vector<ShedRecord> ev;
  ShedReason why{};
  EXPECT_EQ(router.push(rec("solo"), &ev, &why), PushOutcome::kShed);
  EXPECT_TRUE(ev.empty());
  EXPECT_EQ(why, ShedReason::kFairShare);
  const TenantRouter::Stats s = router.stats();
  EXPECT_EQ(s.shed_arrival_full, 1u);
  EXPECT_EQ(s.depth, 4u);
  expect_conservation(s);
}

TEST(TenantRouter, ShedNewRungDropsOverShareArrivalsAtTheDoor) {
  TenantRouter router(one_shard(4));
  std::vector<ShedRecord> ev;
  for (int i = 0; i < 2; ++i) admit(router, rec("a"));
  for (int i = 0; i < 2; ++i) admit(router, rec("b"));

  // One stalled tick escalates normal -> shed-new immediately.
  ASSERT_EQ(router.tick(/*stalled=*/true, &ev), Rung::kShedNew);
  ASSERT_TRUE(ev.empty());

  // a and b (2 queued each, share 2) would go over share: shed at ingest.
  ShedReason why{};
  EXPECT_EQ(router.push(rec("a"), &ev, &why), PushOutcome::kShed);
  EXPECT_EQ(why, ShedReason::kShedNew);
  // A fresh tenant under its share is still served normally — the shard
  // is full (depth 4), so admission evicts from the most-loaded tenant
  // rather than refusing c.
  EXPECT_EQ(router.push(rec("c"), &ev, &why), PushOutcome::kAdmitted);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].reason, ShedReason::kFairShare);

  const TenantRouter::Stats s = router.stats();
  EXPECT_EQ(s.shed_new, 1u);
  expect_conservation(s);
}

TEST(TenantRouter, ShedQueuedRungTrimsBacklogsToFairShare) {
  TenantRouter router(one_shard(8));
  for (int i = 0; i < 6; ++i) admit(router, rec("a"));
  admit(router, rec("b"));

  std::vector<ShedRecord> ev;
  ASSERT_EQ(router.tick(true, &ev), Rung::kShedNew);
  ASSERT_EQ(router.tick(true, &ev), Rung::kShedQueued);
  // a's share is 4 (two active weight-1 tenants, capacity 8): its two
  // EARLIEST records are trimmed; b (1 <= share) is untouched.
  ASSERT_EQ(ev.size(), 2u);
  for (const ShedRecord& s : ev) {
    EXPECT_EQ(s.item.record.tenant, "a");
    EXPECT_EQ(s.reason, ShedReason::kShedQueued);
  }
  EXPECT_LT(ev[0].item.seq, ev[1].item.seq);

  const TenantRouter::Stats s = router.stats();
  EXPECT_EQ(s.shed_queued, 2u);
  EXPECT_EQ(s.depth, 5u);
  expect_conservation(s);
}

TEST(TenantRouter, RejectTenantRungRefusesTheOffenderOnly) {
  // Capacity 8, two active tenants: flood (6 queued) is over its share of
  // 4, so it is the electable offender.
  TenantRouter router(one_shard(8));
  for (int i = 0; i < 6; ++i) admit(router, rec("flood"));
  admit(router, rec("nice"));

  std::vector<ShedRecord> ev;
  router.tick(true, &ev);
  router.tick(true, &ev);
  ASSERT_EQ(router.tick(true, &ev), Rung::kRejectTenant);
  EXPECT_EQ(router.offender(), "flood");

  ShedReason why{};
  EXPECT_EQ(router.push(rec("flood"), &ev, &why), PushOutcome::kShed);
  EXPECT_EQ(why, ShedReason::kRejectTenant);
  EXPECT_EQ(router.push(rec("nice"), &ev, &why), PushOutcome::kAdmitted);

  // Recovery: enough calm ticks step the ladder down and clear the
  // offender (down_hold defaults to 8; drain the queues first so
  // utilization is 0).
  QueuedRecord out;
  while (router.try_pop(&out)) {
  }
  for (int i = 0; i < 64 && router.rung() != Rung::kNormal; ++i)
    router.tick(false, &ev);
  EXPECT_EQ(router.rung(), Rung::kNormal);
  EXPECT_EQ(router.offender(), "");
  expect_conservation(router.stats());
}

TEST(TenantRouter, DrainRejectsNewWhileQueuedRecordsStayPoppable) {
  TenantRouter router(one_shard(8));
  admit(router, rec("t"));
  admit(router, rec("t"));
  router.begin_drain();
  EXPECT_EQ(router.rung(), Rung::kDrain);

  std::vector<ShedRecord> ev;
  ShedReason why{};
  EXPECT_EQ(router.push(rec("t"), &ev, &why), PushOutcome::kShed);
  EXPECT_EQ(why, ShedReason::kRejectDrain);

  QueuedRecord out;
  EXPECT_TRUE(router.try_pop(&out));
  EXPECT_TRUE(router.try_pop(&out));
  EXPECT_FALSE(router.try_pop(&out));

  // Drain survives further ticks (terminal).
  EXPECT_EQ(router.tick(false, &ev), Rung::kDrain);
  const TenantRouter::Stats s = router.stats();
  EXPECT_EQ(s.rejected_drain, 1u);
  expect_conservation(s);
}

TEST(TenantRouter, BatchAdmissionIsBitIdenticalToPerRecordPush) {
  // The pin the sharded ingest path leans on: admit_batch over any chunking
  // of a record sequence makes EXACTLY the decisions a push() loop makes —
  // same outcomes, same shed reasons, same evicted records (by seq), same
  // stats, same drained pop order — across rung changes and interleaved
  // pops.  Records in different shards never interact, so the only order
  // that matters is per-shard arrival order, which both paths preserve.
  RouterConfig config;
  config.shards = 4;
  config.capacity = 48;
  TenantRouter per(config);
  TenantRouter batched(config);
  const std::string tenants[] = {"t0", "t1", "t2", "t3", "t4", "t5"};
  for (TenantRouter* r : {&per, &batched}) {
    r->set_weight("t0", 4.0);
    r->set_weight("t1", 0.5);
  }

  sim::Rng rng(99);
  std::uint64_t next_id = 0;
  std::vector<TenantRouter::BatchOutcome> outcomes;
  TenantRouter::BatchScratch scratch;

  const auto sort_by_seq = [](std::vector<ShedRecord>& v) {
    std::sort(v.begin(), v.end(), [](const ShedRecord& a, const ShedRecord& b) {
      return a.item.seq < b.item.seq;
    });
  };

  for (int round = 0; round < 400; ++round) {
    const std::size_t n = 1 + rng.uniform_int(32);
    std::vector<JobRecord> records;
    records.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      JobRecord r = rec(tenants[rng.uniform_int(6)],
                        1.0 + rng.uniform_double() * 4.0);
      r.client_id = ++next_id;
      records.push_back(r);
    }
    std::vector<JobRecord> copy = records;

    std::vector<std::pair<PushOutcome, ShedReason>> per_out;
    std::vector<ShedRecord> per_ev, batch_ev, ev;
    for (const JobRecord& r : records) {
      ShedReason why{};
      ev.clear();
      per_out.emplace_back(per.push(r, &ev, &why), why);
      per_ev.insert(per_ev.end(), ev.begin(), ev.end());
    }

    batched.admit_batch({copy.data(), copy.size()}, &outcomes, &batch_ev,
                        &scratch);
    ASSERT_EQ(outcomes.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(outcomes[i].outcome, per_out[i].first) << "record " << i;
      if (outcomes[i].outcome == PushOutcome::kShed) {
        EXPECT_EQ(outcomes[i].reason, per_out[i].second) << "record " << i;
      }
    }
    // Eviction sets are identical; only cross-shard interleaving differs
    // (push emits in arrival order, admit_batch shard by shard), so
    // compare under the canonical seq order.
    sort_by_seq(per_ev);
    sort_by_seq(batch_ev);
    ASSERT_EQ(per_ev.size(), batch_ev.size());
    for (std::size_t i = 0; i < per_ev.size(); ++i) {
      EXPECT_EQ(per_ev[i].item.seq, batch_ev[i].item.seq);
      EXPECT_EQ(per_ev[i].item.record.client_id,
                batch_ev[i].item.record.client_id);
      EXPECT_EQ(per_ev[i].item.record.tenant, batch_ev[i].item.record.tenant);
      EXPECT_EQ(per_ev[i].reason, batch_ev[i].reason);
    }

    // Interleave pops and rung changes, identically on both routers.
    const std::uint64_t pops = rng.uniform_int(8);
    for (std::uint64_t p = 0; p < pops; ++p) {
      QueuedRecord a, b;
      const bool got_a = per.try_pop(&a);
      const bool got_b = batched.try_pop(&b);
      ASSERT_EQ(got_a, got_b);
      if (got_a) {
        EXPECT_EQ(a.seq, b.seq);
        EXPECT_EQ(a.record.client_id, b.record.client_id);
      }
    }
    if (rng.bernoulli(0.1)) {
      const bool stalled = rng.bernoulli(0.5);
      std::vector<ShedRecord> ta, tb;
      EXPECT_EQ(per.tick(stalled, &ta), batched.tick(stalled, &tb));
      sort_by_seq(ta);
      sort_by_seq(tb);
      ASSERT_EQ(ta.size(), tb.size());
      for (std::size_t i = 0; i < ta.size(); ++i)
        EXPECT_EQ(ta[i].item.seq, tb[i].item.seq);
    }
  }

  // Drain both: the full remaining weighted-fair pop order agrees.
  QueuedRecord a, b;
  while (true) {
    const bool got_a = per.try_pop(&a);
    const bool got_b = batched.try_pop(&b);
    ASSERT_EQ(got_a, got_b);
    if (!got_a) break;
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_EQ(a.record.client_id, b.record.client_id);
    EXPECT_EQ(a.record.tenant, b.record.tenant);
  }

  const TenantRouter::Stats sp = per.stats();
  const TenantRouter::Stats sb = batched.stats();
  EXPECT_EQ(sp.accepted, sb.accepted);
  EXPECT_EQ(sp.popped, sb.popped);
  EXPECT_EQ(sp.shed_fair_share, sb.shed_fair_share);
  EXPECT_EQ(sp.shed_arrival_full, sb.shed_arrival_full);
  EXPECT_EQ(sp.shed_new, sb.shed_new);
  EXPECT_EQ(sp.shed_queued, sb.shed_queued);
  EXPECT_EQ(sp.rejected_tenant, sb.rejected_tenant);
  EXPECT_EQ(sp.rejected_drain, sb.rejected_drain);
  EXPECT_EQ(sp.depth, sb.depth);
  EXPECT_GT(sp.total_shed(), 0u);  // the churn actually exercised shedding
  expect_conservation(sp);
  expect_conservation(sb);
}

TEST(TenantRouter, ConservationHoldsUnderRandomizedChurn) {
  // Seeded single-thread churn across many shards: every stats() snapshot
  // along the way must balance exactly.  (The multi-threaded version of
  // this property runs in service_stress_test.)
  RouterConfig config;
  config.shards = 4;
  config.capacity = 32;
  TenantRouter router(config);
  sim::Rng rng(1234);
  const std::string tenants[] = {"t0", "t1", "t2", "t3", "t4", "t5"};
  router.set_weight("t0", 4.0);
  router.set_weight("t1", 0.5);

  std::vector<ShedRecord> ev;
  std::uint64_t pushes = 0, admitted = 0, shed_at_push = 0, evicted = 0,
                popped = 0;
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t dice = rng.uniform_int(10);
    if (dice < 6) {
      ev.clear();
      ShedReason why{};
      ++pushes;
      if (router.push(rec(tenants[rng.uniform_int(6)],
                          1.0 + rng.uniform_double() * 4.0),
                      &ev, &why) == PushOutcome::kAdmitted)
        ++admitted;
      else
        ++shed_at_push;
      evicted += ev.size();
    } else if (dice < 9) {
      QueuedRecord out;
      if (router.try_pop(&out)) ++popped;
    } else {
      ev.clear();
      router.tick(rng.bernoulli(0.05), &ev);
      evicted += ev.size();
    }
    if (step % 1000 == 0) expect_conservation(router.stats());
  }
  const TenantRouter::Stats s = router.stats();
  expect_conservation(s);
  EXPECT_EQ(s.accepted, admitted);
  EXPECT_EQ(s.popped, popped);
  EXPECT_EQ(s.shed_fair_share + s.shed_queued, evicted);
  EXPECT_EQ(s.total_shed(), shed_at_push + evicted);
  EXPECT_EQ(pushes, admitted + shed_at_push);
  EXPECT_GT(s.total_shed(), 0u);  // the churn actually exercised shedding
}

}  // namespace
}  // namespace pjsched::service
