// Tests for the threaded TBB-style work-stealing pool
// (src/runtime/thread_pool.h): job completion, spawn/sync, parallel_for
// coverage, admission policies, and flow recording.
#include "src/runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace pjsched::runtime {
namespace {

TEST(ThreadPoolTest, RunsASingleJob) {
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 1});
  std::atomic<int> ran{0};
  auto job = pool.submit([&](TaskContext&) { ran.fetch_add(1); });
  job->wait();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_TRUE(job->finished());
  EXPECT_GE(job->flow_seconds(), 0.0);
}

TEST(ThreadPoolTest, RunsManyJobs) {
  ThreadPool pool({.workers = 3, .steal_k = 0, .seed = 2});
  std::atomic<int> ran{0};
  constexpr int kJobs = 200;
  for (int i = 0; i < kJobs; ++i)
    pool.submit([&](TaskContext&) { ran.fetch_add(1); });
  pool.wait_all();
  EXPECT_EQ(ran.load(), kJobs);
  EXPECT_EQ(pool.recorder().count(), static_cast<std::size_t>(kJobs));
}

TEST(ThreadPoolTest, SpawnedSubtasksCountTowardCompletion) {
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 3});
  std::atomic<int> subtasks{0};
  auto job = pool.submit([&](TaskContext& ctx) {
    for (int i = 0; i < 50; ++i)
      ctx.spawn([&](TaskContext&) { subtasks.fetch_add(1); });
  });
  job->wait();
  EXPECT_EQ(subtasks.load(), 50);
}

TEST(ThreadPoolTest, NestedSpawns) {
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 4});
  std::atomic<int> leaves{0};
  auto job = pool.submit([&](TaskContext& ctx) {
    for (int i = 0; i < 8; ++i)
      ctx.spawn([&](TaskContext& inner) {
        for (int j = 0; j < 8; ++j)
          inner.spawn([&](TaskContext&) { leaves.fetch_add(1); });
      });
  });
  job->wait();
  EXPECT_EQ(leaves.load(), 64);
}

TEST(ThreadPoolTest, WaitGroupJoin) {
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 5});
  std::atomic<int> before{0};
  std::atomic<bool> saw_all_before_sync{false};
  auto job = pool.submit([&](TaskContext& ctx) {
    WaitGroup wg;
    for (int i = 0; i < 16; ++i)
      ctx.spawn([&](TaskContext&) { before.fetch_add(1); }, wg);
    ctx.wait_help(wg);
    saw_all_before_sync.store(before.load() == 16);
  });
  job->wait();
  EXPECT_TRUE(saw_all_before_sync.load());
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool({.workers = 4, .steal_k = 0, .seed = 6});
  constexpr std::size_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  auto job = pool.submit([&](TaskContext& ctx) {
    parallel_for(ctx, 0, kN, 64, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
  });
  job->wait();
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForEdgeCases) {
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 7});
  std::atomic<int> total{0};
  auto job = pool.submit([&](TaskContext& ctx) {
    parallel_for(ctx, 5, 5, 4, [&](std::size_t, std::size_t) {
      total.fetch_add(1000);  // empty range: must not run
    });
    parallel_for(ctx, 0, 3, 0, [&](std::size_t lo, std::size_t hi) {
      total.fetch_add(static_cast<int>(hi - lo));  // grain 0 -> clamped to 1
    });
    parallel_for(ctx, 0, 10, 100, [&](std::size_t lo, std::size_t hi) {
      total.fetch_add(static_cast<int>(hi - lo));  // single chunk
    });
  });
  job->wait();
  EXPECT_EQ(total.load(), 13);
}

TEST(ThreadPoolTest, ParallelForComputesCorrectSum) {
  ThreadPool pool({.workers = 4, .steal_k = 0, .seed = 8});
  constexpr std::size_t kN = 100000;
  std::vector<std::uint64_t> data(kN);
  std::iota(data.begin(), data.end(), 1);
  std::atomic<std::uint64_t> sum{0};
  auto job = pool.submit([&](TaskContext& ctx) {
    parallel_for(ctx, 0, kN, 1024, [&](std::size_t lo, std::size_t hi) {
      std::uint64_t local = 0;
      for (std::size_t i = lo; i < hi; ++i) local += data[i];
      sum.fetch_add(local);
    });
  });
  job->wait();
  EXPECT_EQ(sum.load(), kN * (kN + 1) / 2);
}

TEST(ThreadPoolTest, StealKPolicyStillCompletesEverything) {
  ThreadPool pool({.workers = 3, .steal_k = 16, .seed = 9});
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&](TaskContext& ctx) {
      parallel_for(ctx, 0, 64, 8,
                   [&](std::size_t lo, std::size_t hi) {
                     ran.fetch_add(static_cast<int>(hi - lo));
                   });
    });
  pool.wait_all();
  EXPECT_EQ(ran.load(), 6400);
  EXPECT_EQ(pool.stats().admissions, 100u);
}

TEST(ThreadPoolTest, FlowRecorderSeesEveryJob) {
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 10});
  for (int i = 0; i < 50; ++i) pool.submit([](TaskContext&) {});
  pool.wait_all();
  const auto flows = pool.recorder().flows_seconds();
  ASSERT_EQ(flows.size(), 50u);
  for (double f : flows) EXPECT_GE(f, 0.0);
  EXPECT_GE(pool.recorder().max_flow_seconds(), 0.0);
  const auto summary = pool.recorder().summary();
  EXPECT_EQ(summary.count, 50u);
}

TEST(ThreadPoolTest, WeightedFlowRecorded) {
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 11});
  pool.submit([](TaskContext&) {}, /*weight=*/10.0);
  pool.wait_all();
  EXPECT_GE(pool.recorder().max_weighted_flow_seconds(),
            pool.recorder().max_flow_seconds());
}

TEST(ThreadPoolTest, SubmitAfterShutdownRejected) {
  ThreadPool pool({.workers = 1, .steal_k = 0, .seed = 12});
  pool.shutdown();
  EXPECT_THROW(pool.submit([](TaskContext&) {}), std::logic_error);
  SubmitOptions with_deadline;
  with_deadline.deadline = std::chrono::seconds(1);
  EXPECT_THROW(pool.submit([](TaskContext&) {}, with_deadline),
               std::logic_error);
}

TEST(ThreadPoolTest, StatsAccountTasks) {
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 13});
  auto job = pool.submit([](TaskContext& ctx) {
    for (int i = 0; i < 10; ++i) ctx.spawn([](TaskContext&) {});
  });
  job->wait();
  pool.shutdown();
  EXPECT_EQ(pool.stats().tasks_executed, 11u);  // root + 10 spawns
  EXPECT_EQ(pool.stats().admissions, 1u);
}

TEST(ThreadPoolTest, SingleWorkerPoolWorks) {
  ThreadPool pool({.workers = 1, .steal_k = 0, .seed = 14});
  std::atomic<int> ran{0};
  auto job = pool.submit([&](TaskContext& ctx) {
    parallel_for(ctx, 0, 100, 10,
                 [&](std::size_t lo, std::size_t hi) {
                   ran.fetch_add(static_cast<int>(hi - lo));
                 });
  });
  job->wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ZeroWorkersClampedToOne) {
  ThreadPool pool({.workers = 0, .steal_k = 0, .seed = 15});
  EXPECT_EQ(pool.workers(), 1u);
  auto job = pool.submit([](TaskContext&) {});
  job->wait();
  EXPECT_TRUE(job->finished());
}

// ---------------------------------------------------------------------------
// Fault tolerance: exception containment, cancellation, deadlines,
// bounded admission with backpressure, and the watchdog.

TEST(ThreadPoolFaultTest, TaskExceptionIsContained) {
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 20});
  std::atomic<int> good_ran{0};
  auto failing =
      pool.submit([](TaskContext&) { throw std::runtime_error("boom"); });
  for (int i = 0; i < 50; ++i)
    pool.submit([&](TaskContext&) { good_ran.fetch_add(1); });
  pool.wait_all();
  EXPECT_EQ(failing->outcome(), JobOutcome::kFailed);
  EXPECT_TRUE(failing->finished());
  EXPECT_EQ(failing->error(), "boom");
  EXPECT_EQ(good_ran.load(), 50);
  // The pool keeps accepting and running jobs after a failure.
  auto after = pool.submit([&](TaskContext&) { good_ran.fetch_add(1); });
  pool.wait_all();  // Job::wait() precedes recording; wait_all() is the
                    // recorder-consistent barrier
  EXPECT_EQ(after->outcome(), JobOutcome::kCompleted);
  EXPECT_EQ(pool.stats().jobs_failed, 1u);
  const auto counts = pool.recorder().outcome_counts();
  EXPECT_EQ(counts.failed, 1u);
  EXPECT_EQ(counts.completed, 51u);
}

TEST(ThreadPoolFaultTest, FailedJobSkipsRemainingTasks) {
  // One worker: the root spawns 100 subtasks onto its own deque, then
  // throws; every spawned task must be skipped, not executed.
  ThreadPool pool({.workers = 1, .steal_k = 0, .seed = 21});
  std::atomic<int> subtasks_ran{0};
  auto job = pool.submit([&](TaskContext& ctx) {
    for (int i = 0; i < 100; ++i)
      ctx.spawn([&](TaskContext&) { subtasks_ran.fetch_add(1); });
    throw std::runtime_error("root failed after spawning");
  });
  job->wait();
  EXPECT_EQ(job->outcome(), JobOutcome::kFailed);
  EXPECT_EQ(subtasks_ran.load(), 0);
  pool.shutdown();
  EXPECT_EQ(pool.stats().tasks_cancelled, 100u);
}

TEST(ThreadPoolFaultTest, DeadlineExpiredJobIsCancelled) {
  ThreadPool pool({.workers = 1, .steal_k = 0, .seed = 22});
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<bool> late_ran{false};
  auto blocker = pool.submit([&](TaskContext&) {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!started.load()) std::this_thread::yield();
  SubmitOptions options;
  options.deadline = std::chrono::milliseconds(5);
  auto late = pool.submit([&](TaskContext&) { late_ran.store(true); }, options);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.store(true);  // deadline long past once the worker gets to it
  pool.wait_all();
  EXPECT_EQ(blocker->outcome(), JobOutcome::kCompleted);
  EXPECT_EQ(late->outcome(), JobOutcome::kDeadlineExpired);
  EXPECT_FALSE(late_ran.load());
  EXPECT_EQ(pool.stats().jobs_deadline_expired, 1u);
  EXPECT_EQ(pool.recorder().outcome_counts().deadline_expired, 1u);
}

TEST(ThreadPoolFaultTest, GenerousDeadlineDoesNotCancel) {
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 23});
  SubmitOptions options;
  options.deadline = std::chrono::seconds(30);
  auto job = pool.submit([](TaskContext&) {}, options);
  job->wait();
  EXPECT_EQ(job->outcome(), JobOutcome::kCompleted);
  EXPECT_EQ(pool.stats().jobs_deadline_expired, 0u);
}

namespace {
// Occupies the pool's single worker until released, so the admission queue
// fills deterministically.
struct WorkerGate {
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};

  JobHandle submit_to(ThreadPool& pool) {
    auto handle = pool.submit([this](TaskContext&) {
      started.store(true);
      while (!release.load()) std::this_thread::yield();
    });
    while (!started.load()) std::this_thread::yield();
    return handle;
  }
};
}  // namespace

TEST(ThreadPoolFaultTest, RejectNewestPolicy) {
  PoolOptions options;
  options.workers = 1;
  options.seed = 24;
  options.admission_capacity = 2;
  options.backpressure = BackpressurePolicy::kRejectNewest;
  ThreadPool pool(options);
  WorkerGate gate;
  auto gate_job = gate.submit_to(pool);
  std::vector<JobHandle> accepted, rejected;
  for (int i = 0; i < 2; ++i)
    accepted.push_back(pool.submit([](TaskContext&) {}));
  for (int i = 0; i < 3; ++i)
    rejected.push_back(pool.submit([](TaskContext&) {}));
  // Rejection is synchronous: the handle is already terminal.
  for (const auto& job : rejected) {
    EXPECT_TRUE(job->finished());
    EXPECT_EQ(job->outcome(), JobOutcome::kRejected);
  }
  gate.release.store(true);
  pool.wait_all();
  for (const auto& job : accepted)
    EXPECT_EQ(job->outcome(), JobOutcome::kCompleted);
  EXPECT_EQ(pool.stats().jobs_rejected, 3u);
  const auto counts = pool.recorder().outcome_counts();
  // Recorder and PoolStats agree: rejected is its own bucket, not shed.
  EXPECT_EQ(counts.rejected, 3u);
  EXPECT_EQ(counts.shed, 0u);
  EXPECT_EQ(counts.completed, 3u);  // gate + 2 accepted
}

TEST(ThreadPoolFaultTest, ShedOldestPolicy) {
  PoolOptions options;
  options.workers = 1;
  options.seed = 25;
  options.admission_capacity = 2;
  options.backpressure = BackpressurePolicy::kShedOldest;
  ThreadPool pool(options);
  WorkerGate gate;
  gate.submit_to(pool);
  auto a = pool.submit([](TaskContext&) {});
  auto b = pool.submit([](TaskContext&) {});
  auto c = pool.submit([](TaskContext&) {});  // evicts a
  auto d = pool.submit([](TaskContext&) {});  // evicts b
  EXPECT_EQ(a->outcome(), JobOutcome::kShed);
  EXPECT_EQ(b->outcome(), JobOutcome::kShed);
  gate.release.store(true);
  pool.wait_all();
  EXPECT_EQ(c->outcome(), JobOutcome::kCompleted);
  EXPECT_EQ(d->outcome(), JobOutcome::kCompleted);
  EXPECT_EQ(pool.stats().jobs_shed, 2u);
  EXPECT_EQ(pool.recorder().outcome_counts().shed, 2u);
  EXPECT_EQ(pool.recorder().outcome_counts().rejected, 0u);
}

TEST(ThreadPoolFaultTest, BlockPolicyCompletesEverything) {
  PoolOptions options;
  options.workers = 1;
  options.seed = 26;
  options.admission_capacity = 2;
  options.backpressure = BackpressurePolicy::kBlock;
  ThreadPool pool(options);
  std::atomic<int> ran{0};
  constexpr int kJobs = 50;
  for (int i = 0; i < kJobs; ++i)
    pool.submit([&](TaskContext&) { ran.fetch_add(1); });
  pool.wait_all();
  EXPECT_EQ(ran.load(), kJobs);
  const auto counts = pool.recorder().outcome_counts();
  EXPECT_EQ(counts.completed, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(counts.shed, 0u);
  EXPECT_EQ(pool.stats().jobs_rejected, 0u);
}

TEST(ThreadPoolFaultTest, WatchdogFiresOnStall) {
  std::mutex mu;
  std::vector<std::string> dumps;
  PoolOptions options;
  options.workers = 1;
  options.seed = 27;
  options.watchdog_interval = std::chrono::milliseconds(10);
  options.watchdog_sink = [&](const std::string& report) {
    std::lock_guard<std::mutex> lock(mu);
    dumps.push_back(report);
  };
  ThreadPool pool(options);
  auto job = pool.submit([](TaskContext&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  });
  job->wait();
  pool.shutdown();
  EXPECT_GE(pool.stats().watchdog_dumps, 1u);
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_FALSE(dumps.empty());
  EXPECT_NE(dumps[0].find("watchdog"), std::string::npos);
  EXPECT_NE(dumps[0].find("worker 0"), std::string::npos);
  EXPECT_NE(dumps[0].find("jobs"), std::string::npos);
}

TEST(ThreadPoolFaultTest, WatchdogSilentWhileProgressing) {
  std::atomic<int> dump_count{0};
  PoolOptions options;
  options.workers = 2;
  options.seed = 28;
  options.watchdog_interval = std::chrono::milliseconds(25);
  options.watchdog_sink = [&](const std::string&) { dump_count.fetch_add(1); };
  ThreadPool pool(options);
  // A steady stream of quick jobs: tasks_executed keeps advancing, so the
  // watchdog must stay quiet.
  for (int i = 0; i < 200; ++i) {
    pool.submit([](TaskContext&) {});
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  pool.wait_all();
  pool.shutdown();
  EXPECT_EQ(dump_count.load(), 0);
  EXPECT_EQ(pool.stats().watchdog_dumps, 0u);
}

TEST(ThreadPoolFaultTest, DumpStateIsReadableAnyTime) {
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 29});
  const std::string idle_dump = pool.dump_state();
  EXPECT_NE(idle_dump.find("jobs: submitted=0"), std::string::npos);
  pool.submit([](TaskContext&) {});
  pool.wait_all();
  EXPECT_NE(pool.dump_state().find("submitted=1"), std::string::npos);
}

TEST(ThreadPoolFaultTest, CancellationMidJoinDrainsBeforeUnwinding) {
  // Regression for a use-after-free: a sibling subtask that slipped past
  // the cancellation check keeps running while the joining parent is told
  // its job is cancelled.  The parent must stay in wait_help (keeping its
  // stack frame — the WaitGroup and `scratch` — alive) until every
  // sibling has signalled; only then may it unwind.  Under ASan/TSan the
  // old unwind-early join turns the `scratch` writes into stack
  // use-after-scope.
  ThreadPool pool({.workers = 4, .steal_k = 0, .seed = 31});
  for (int round = 0; round < 10; ++round) {
    auto job = pool.submit([](TaskContext& ctx) {
      WaitGroup wg;
      std::array<std::uint8_t, 16> scratch{};  // dies with this frame
      for (std::size_t i = 0; i < scratch.size(); ++i)
        ctx.spawn(
            [&scratch, i](TaskContext&) {
              std::this_thread::sleep_for(std::chrono::microseconds(200));
              scratch[i] = 1;  // in-flight write racing the cancel
            },
            wg);
      ctx.spawn([](TaskContext&) { throw std::runtime_error("sibling"); },
                wg);
      ctx.wait_help(wg);  // throws JobCancelledError, but only once drained
    });
    job->wait();
    EXPECT_EQ(job->outcome(), JobOutcome::kFailed);
  }
  // The pool is intact: later jobs still run to completion.
  auto after = pool.submit([](TaskContext&) {});
  after->wait();
  EXPECT_EQ(after->outcome(), JobOutcome::kCompleted);
}

TEST(ThreadPoolFaultTest, SubmitFromWorkerUnderBlockPolicyThrows) {
  // A worker blocking in submit() on a full kBlock queue could never drain
  // it — the call must fail loudly (and deterministically) instead.
  PoolOptions options;
  options.workers = 1;
  options.seed = 32;
  options.admission_capacity = 4;
  options.backpressure = BackpressurePolicy::kBlock;
  ThreadPool pool(options);
  std::atomic<bool> threw{false};
  auto job = pool.submit([&](TaskContext&) {
    try {
      pool.submit([](TaskContext&) {});
    } catch (const std::logic_error&) {
      threw.store(true);
    }
  });
  job->wait();
  EXPECT_TRUE(threw.load());
  EXPECT_EQ(job->outcome(), JobOutcome::kCompleted);
  // External threads are unaffected.
  auto external = pool.submit([](TaskContext&) {});
  external->wait();
  EXPECT_EQ(external->outcome(), JobOutcome::kCompleted);
}

TEST(ThreadPoolFaultTest, ExpiredQueuedJobRecordsDeadlineNotShed) {
  // A job evicted from the queue after its deadline passed expired — the
  // eviction must not relabel it as Shed.
  PoolOptions options;
  options.workers = 1;
  options.seed = 33;
  options.admission_capacity = 1;
  options.backpressure = BackpressurePolicy::kShedOldest;
  ThreadPool pool(options);
  WorkerGate gate;
  gate.submit_to(pool);
  SubmitOptions with_deadline;
  with_deadline.deadline = std::chrono::milliseconds(0);
  auto expired = pool.submit([](TaskContext&) {}, with_deadline);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto evictor = pool.submit([](TaskContext&) {});  // shed-oldest evicts
  EXPECT_TRUE(expired->finished());
  EXPECT_EQ(expired->outcome(), JobOutcome::kDeadlineExpired);
  gate.release.store(true);
  pool.wait_all();
  EXPECT_EQ(evictor->outcome(), JobOutcome::kCompleted);
  EXPECT_EQ(pool.stats().jobs_deadline_expired, 1u);
  EXPECT_EQ(pool.stats().jobs_shed, 0u);
  EXPECT_EQ(pool.recorder().outcome_counts().deadline_expired, 1u);
}

TEST(ThreadPoolFaultTest, CancelledFlagVisibleInsideBody) {
  // A body that observes its own job getting cancelled (via a second task
  // failing is hard to time; instead use the deadline path indirectly):
  // here we just check the flag is false on a healthy job.
  ThreadPool pool({.workers = 1, .steal_k = 0, .seed = 30});
  std::atomic<bool> observed_cancelled{true};
  auto job = pool.submit(
      [&](TaskContext& ctx) { observed_cancelled.store(ctx.cancelled()); });
  job->wait();
  EXPECT_FALSE(observed_cancelled.load());
}

TEST(FlowRecorderTest, OutcomeAccountingAndFlowExclusion) {
  FlowRecorder recorder;
  recorder.record(1.0, 1.0, JobOutcome::kCompleted);
  recorder.record(9.0, 2.0, JobOutcome::kFailed);      // excluded from flows
  recorder.record(5.0, 1.0, JobOutcome::kDeadlineExpired);
  recorder.record(2.0, 3.0, JobOutcome::kShed);
  recorder.record(4.0, 1.0, JobOutcome::kRejected);
  recorder.record(3.0, 2.0, JobOutcome::kCompleted);
  const auto counts = recorder.outcome_counts();
  EXPECT_EQ(counts.completed, 2u);
  EXPECT_EQ(counts.failed, 1u);
  EXPECT_EQ(counts.deadline_expired, 1u);
  EXPECT_EQ(counts.shed, 1u);
  EXPECT_EQ(counts.rejected, 1u);
  EXPECT_EQ(counts.total(), 6u);
  EXPECT_EQ(recorder.count(), 6u);
  // Flow statistics cover completed jobs only: the failed job's 9.0 must
  // not contaminate the max.
  EXPECT_DOUBLE_EQ(recorder.max_flow_seconds(), 3.0);
  EXPECT_DOUBLE_EQ(recorder.max_weighted_flow_seconds(), 6.0);
  EXPECT_EQ(recorder.summary().count, 2u);
  EXPECT_EQ(recorder.flows_seconds().size(), 2u);
}

}  // namespace
}  // namespace pjsched::runtime
