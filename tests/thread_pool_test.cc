// Tests for the threaded TBB-style work-stealing pool
// (src/runtime/thread_pool.h): job completion, spawn/sync, parallel_for
// coverage, admission policies, and flow recording.
#include "src/runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace pjsched::runtime {
namespace {

TEST(ThreadPoolTest, RunsASingleJob) {
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 1});
  std::atomic<int> ran{0};
  auto job = pool.submit([&](TaskContext&) { ran.fetch_add(1); });
  job->wait();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_TRUE(job->finished());
  EXPECT_GE(job->flow_seconds(), 0.0);
}

TEST(ThreadPoolTest, RunsManyJobs) {
  ThreadPool pool({.workers = 3, .steal_k = 0, .seed = 2});
  std::atomic<int> ran{0};
  constexpr int kJobs = 200;
  for (int i = 0; i < kJobs; ++i)
    pool.submit([&](TaskContext&) { ran.fetch_add(1); });
  pool.wait_all();
  EXPECT_EQ(ran.load(), kJobs);
  EXPECT_EQ(pool.recorder().count(), static_cast<std::size_t>(kJobs));
}

TEST(ThreadPoolTest, SpawnedSubtasksCountTowardCompletion) {
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 3});
  std::atomic<int> subtasks{0};
  auto job = pool.submit([&](TaskContext& ctx) {
    for (int i = 0; i < 50; ++i)
      ctx.spawn([&](TaskContext&) { subtasks.fetch_add(1); });
  });
  job->wait();
  EXPECT_EQ(subtasks.load(), 50);
}

TEST(ThreadPoolTest, NestedSpawns) {
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 4});
  std::atomic<int> leaves{0};
  auto job = pool.submit([&](TaskContext& ctx) {
    for (int i = 0; i < 8; ++i)
      ctx.spawn([&](TaskContext& inner) {
        for (int j = 0; j < 8; ++j)
          inner.spawn([&](TaskContext&) { leaves.fetch_add(1); });
      });
  });
  job->wait();
  EXPECT_EQ(leaves.load(), 64);
}

TEST(ThreadPoolTest, WaitGroupJoin) {
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 5});
  std::atomic<int> before{0};
  std::atomic<bool> saw_all_before_sync{false};
  auto job = pool.submit([&](TaskContext& ctx) {
    WaitGroup wg;
    for (int i = 0; i < 16; ++i)
      ctx.spawn([&](TaskContext&) { before.fetch_add(1); }, wg);
    ctx.wait_help(wg);
    saw_all_before_sync.store(before.load() == 16);
  });
  job->wait();
  EXPECT_TRUE(saw_all_before_sync.load());
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool({.workers = 4, .steal_k = 0, .seed = 6});
  constexpr std::size_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  auto job = pool.submit([&](TaskContext& ctx) {
    parallel_for(ctx, 0, kN, 64, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
  });
  job->wait();
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForEdgeCases) {
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 7});
  std::atomic<int> total{0};
  auto job = pool.submit([&](TaskContext& ctx) {
    parallel_for(ctx, 5, 5, 4, [&](std::size_t, std::size_t) {
      total.fetch_add(1000);  // empty range: must not run
    });
    parallel_for(ctx, 0, 3, 0, [&](std::size_t lo, std::size_t hi) {
      total.fetch_add(static_cast<int>(hi - lo));  // grain 0 -> clamped to 1
    });
    parallel_for(ctx, 0, 10, 100, [&](std::size_t lo, std::size_t hi) {
      total.fetch_add(static_cast<int>(hi - lo));  // single chunk
    });
  });
  job->wait();
  EXPECT_EQ(total.load(), 13);
}

TEST(ThreadPoolTest, ParallelForComputesCorrectSum) {
  ThreadPool pool({.workers = 4, .steal_k = 0, .seed = 8});
  constexpr std::size_t kN = 100000;
  std::vector<std::uint64_t> data(kN);
  std::iota(data.begin(), data.end(), 1);
  std::atomic<std::uint64_t> sum{0};
  auto job = pool.submit([&](TaskContext& ctx) {
    parallel_for(ctx, 0, kN, 1024, [&](std::size_t lo, std::size_t hi) {
      std::uint64_t local = 0;
      for (std::size_t i = lo; i < hi; ++i) local += data[i];
      sum.fetch_add(local);
    });
  });
  job->wait();
  EXPECT_EQ(sum.load(), kN * (kN + 1) / 2);
}

TEST(ThreadPoolTest, StealKPolicyStillCompletesEverything) {
  ThreadPool pool({.workers = 3, .steal_k = 16, .seed = 9});
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&](TaskContext& ctx) {
      parallel_for(ctx, 0, 64, 8,
                   [&](std::size_t lo, std::size_t hi) {
                     ran.fetch_add(static_cast<int>(hi - lo));
                   });
    });
  pool.wait_all();
  EXPECT_EQ(ran.load(), 6400);
  EXPECT_EQ(pool.stats().admissions, 100u);
}

TEST(ThreadPoolTest, FlowRecorderSeesEveryJob) {
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 10});
  for (int i = 0; i < 50; ++i) pool.submit([](TaskContext&) {});
  pool.wait_all();
  const auto flows = pool.recorder().flows_seconds();
  ASSERT_EQ(flows.size(), 50u);
  for (double f : flows) EXPECT_GE(f, 0.0);
  EXPECT_GE(pool.recorder().max_flow_seconds(), 0.0);
  const auto summary = pool.recorder().summary();
  EXPECT_EQ(summary.count, 50u);
}

TEST(ThreadPoolTest, WeightedFlowRecorded) {
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 11});
  pool.submit([](TaskContext&) {}, /*weight=*/10.0);
  pool.wait_all();
  EXPECT_GE(pool.recorder().max_weighted_flow_seconds(),
            pool.recorder().max_flow_seconds());
}

TEST(ThreadPoolTest, SubmitAfterShutdownRejected) {
  ThreadPool pool({.workers = 1, .steal_k = 0, .seed = 12});
  pool.shutdown();
  EXPECT_THROW(pool.submit([](TaskContext&) {}), std::logic_error);
}

TEST(ThreadPoolTest, StatsAccountTasks) {
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 13});
  auto job = pool.submit([](TaskContext& ctx) {
    for (int i = 0; i < 10; ++i) ctx.spawn([](TaskContext&) {});
  });
  job->wait();
  pool.shutdown();
  EXPECT_EQ(pool.stats().tasks_executed, 11u);  // root + 10 spawns
  EXPECT_EQ(pool.stats().admissions, 1u);
}

TEST(ThreadPoolTest, SingleWorkerPoolWorks) {
  ThreadPool pool({.workers = 1, .steal_k = 0, .seed = 14});
  std::atomic<int> ran{0};
  auto job = pool.submit([&](TaskContext& ctx) {
    parallel_for(ctx, 0, 100, 10,
                 [&](std::size_t lo, std::size_t hi) {
                   ran.fetch_add(static_cast<int>(hi - lo));
                 });
  });
  job->wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ZeroWorkersClampedToOne) {
  ThreadPool pool({.workers = 0, .steal_k = 0, .seed = 15});
  EXPECT_EQ(pool.workers(), 1u);
  auto job = pool.submit([](TaskContext&) {});
  job->wait();
  EXPECT_TRUE(job->finished());
}

}  // namespace
}  // namespace pjsched::runtime
