// Tests for trace visualization/export (src/metrics/gantt.h).
#include "src/metrics/gantt.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/dag/builders.h"
#include "src/sched/fifo.h"
#include "src/sched/work_stealing.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

sim::Trace tiny_trace() {
  sim::Trace trace;
  trace.add_interval({0, 0, 0, 0.0, 4.0});
  trace.add_interval({1, 0, 1, 2.0, 6.0});
  trace.add_interval({0, 1, 0, 5.0, 8.0});
  return trace;
}

TEST(AsciiGanttTest, PaintsJobsAndIdle) {
  const auto chart = metrics::ascii_gantt(tiny_trace(), 2, {.width = 8});
  // Window [0, 8), 1 unit per column.
  EXPECT_NE(chart.find("P0  |AAAA.AAA|"), std::string::npos) << chart;
  EXPECT_NE(chart.find("P1  |..BBBB..|"), std::string::npos) << chart;
}

TEST(AsciiGanttTest, WindowClipping) {
  const auto chart =
      metrics::ascii_gantt(tiny_trace(), 2, {.width = 4, .t_begin = 4.0,
                                             .t_end = 8.0});
  EXPECT_NE(chart.find("P0  |.AAA|"), std::string::npos) << chart;
  EXPECT_NE(chart.find("P1  |BB..|"), std::string::npos) << chart;
}

TEST(AsciiGanttTest, BadArgsRejected) {
  EXPECT_THROW(metrics::ascii_gantt(tiny_trace(), 0, {}),
               std::invalid_argument);
  EXPECT_THROW(metrics::ascii_gantt(tiny_trace(), 1, {.width = 0}),
               std::invalid_argument);
  sim::Trace empty;
  EXPECT_THROW(metrics::ascii_gantt(empty, 1, {}), std::invalid_argument);
}

TEST(ChromeTraceTest, EmitsSlicesAndInstants) {
  sim::Trace trace;
  trace.add_interval({3, 1, 0, 1.0, 2.5});
  trace.add_steal({2, 0, true, 7});
  trace.add_admission({1, 3, 9});
  const auto json = metrics::chrome_trace_json(trace);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"job3/node1\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1.5"), std::string::npos);
  EXPECT_NE(json.find("steal hit"), std::string::npos);
  EXPECT_NE(json.find("admit job3"), std::string::npos);
  // Crude JSON well-formedness: balanced braces/brackets.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ChromeTraceTest, EmptyTraceIsValid) {
  sim::Trace empty;
  EXPECT_EQ(metrics::chrome_trace_json(empty), "{\"traceEvents\":[]}");
}

TEST(UtilizationTimelineTest, ExactBuckets) {
  // One processor busy [0,4), the other [2,6); horizon 8, 4 buckets of 2.
  const auto busy = metrics::utilization_timeline(tiny_trace(), 4, 8.0);
  ASSERT_EQ(busy.size(), 4u);
  EXPECT_DOUBLE_EQ(busy[0], 1.0);   // only P0's [0,2)
  EXPECT_DOUBLE_EQ(busy[1], 2.0);   // P0 [2,4) + P1 [2,4)
  EXPECT_DOUBLE_EQ(busy[2], 1.5);   // P1 [4,6) + P0 [5,6)
  EXPECT_DOUBLE_EQ(busy[3], 1.0);   // P0 [6,8)
}

TEST(UtilizationTimelineTest, BadArgsRejected) {
  EXPECT_THROW(metrics::utilization_timeline(tiny_trace(), 0),
               std::invalid_argument);
}

TEST(GanttIntegrationTest, RealScheduleRenders) {
  auto inst = testutil::random_instance(3, 12, 20.0);
  sim::Trace trace;
  sched::FifoScheduler fifo;
  fifo.run(inst, {3, 1.0}, &trace);
  const auto chart = metrics::ascii_gantt(trace, 3, {.width = 60});
  EXPECT_NE(chart.find("P0"), std::string::npos);
  EXPECT_NE(chart.find("P2"), std::string::npos);

  const auto busy = metrics::utilization_timeline(trace, 10);
  double total = 0.0;
  for (double b : busy) total += b;
  EXPECT_GT(total, 0.0);
}

TEST(GanttIntegrationTest, WorkStealingTraceExports) {
  auto inst = testutil::random_instance(4, 10, 15.0);
  sim::Trace trace;
  sched::WorkStealingScheduler ws(2, 5);
  ws.run(inst, {2, 1.0}, &trace);
  const auto json = metrics::chrome_trace_json(trace);
  EXPECT_NE(json.find("\"cat\":\"steal\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"admission\""), std::string::npos);
}

}  // namespace
}  // namespace pjsched
