// Tests for summary statistics (src/metrics/stats.h).
#include "src/metrics/stats.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/sim/rng.h"

namespace pjsched::metrics {
namespace {

TEST(SummaryTest, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(SummaryTest, KnownValues) {
  const Summary s = summarize({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.p50, 2.5);
  // Population stddev of {1,2,3,4} = sqrt(1.25).
  EXPECT_NEAR(s.stddev, 1.1180339887, 1e-9);
}

TEST(SummaryTest, SingleValue) {
  const Summary s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.p99, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(QuantileTest, Interpolates) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.125), 15.0);
}

TEST(QuantileTest, BadInputsRejected) {
  EXPECT_THROW(quantile_sorted({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile_sorted({1.0}, 1.5), std::invalid_argument);
  EXPECT_THROW(quantile_sorted({1.0}, -0.1), std::invalid_argument);
  std::vector<double> empty;
  EXPECT_THROW(quantile_select(empty, 0.5), std::invalid_argument);
  std::vector<double> one{1.0};
  EXPECT_THROW(quantile_select(one, 1.5), std::invalid_argument);
  EXPECT_THROW(quantile_select(one, -0.1), std::invalid_argument);
}

// The documented edge-case contract: empty input always throws (it is a
// caller bug, unlike summarize's "no samples yet" all-zero Summary), and a
// one-element input returns that element for every q — including the
// endpoints, where interpolation would otherwise index a second order
// statistic that does not exist.
TEST(QuantileTest, OneSampleContract) {
  const std::vector<double> one_sorted{42.5};
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(quantile_sorted(one_sorted, q), 42.5) << "q=" << q;
    std::vector<double> scratch{42.5};
    EXPECT_DOUBLE_EQ(quantile_select(scratch, q), 42.5) << "q=" << q;
  }
  // Bad q is rejected even when the answer would not depend on q.
  EXPECT_THROW(quantile_sorted(one_sorted, 1.0000001), std::invalid_argument);
}

// summarize's side of the contract: empty returns the all-zero Summary
// (count distinguishes "no samples" from a genuine all-zero sample set).
TEST(SummaryTest, EmptyInputIsAllZeroNotThrow) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p90, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

// quantile_select must return the *same float* as sort + quantile_sorted:
// the selection only swaps which algorithm finds the two order statistics,
// not the interpolation arithmetic.
TEST(QuantileTest, SelectMatchesSortedBitwise) {
  sim::Rng rng(99);
  for (std::size_t n : {1u, 2u, 3u, 7u, 100u, 1000u}) {
    std::vector<double> samples;
    samples.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      samples.push_back(rng.uniform_double() * 1000.0 -
                        (i % 5 == 0 ? 200.0 : 0.0));
    // Duplicates exercise tied order statistics.
    if (n > 4) samples[3] = samples[1];
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    for (double q : {0.0, 0.125, 0.25, 0.5, 0.9, 0.99, 1.0}) {
      std::vector<double> scratch = samples;
      EXPECT_EQ(quantile_select(scratch, q), quantile_sorted(sorted, q))
          << "n=" << n << " q=" << q;
    }
  }
}

// summarize's quantiles are selections over a shared scratch; they must not
// depend on the sample order or on each other's partial reorderings.
TEST(SummaryTest, OrderInvariantQuantiles) {
  sim::Rng rng(7);
  std::vector<double> samples;
  for (std::size_t i = 0; i < 257; ++i)
    samples.push_back(rng.uniform_double() * 50.0);
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const Summary s = summarize(samples);
  EXPECT_EQ(s.p50, quantile_sorted(sorted, 0.50));
  EXPECT_EQ(s.p90, quantile_sorted(sorted, 0.90));
  EXPECT_EQ(s.p99, quantile_sorted(sorted, 0.99));
  EXPECT_EQ(s.min, sorted.front());
  EXPECT_EQ(s.max, sorted.back());
}

TEST(TightestSloTest, MatchesQuantile) {
  const std::vector<double> v{50.0, 10.0, 40.0, 20.0, 30.0};
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(tightest_slo(v, 0.0), 50.0);
  EXPECT_EQ(tightest_slo(v, 0.25), quantile_sorted(sorted, 0.75));
  EXPECT_EQ(tightest_slo(v, 1.0), 10.0);
}

TEST(WeightedMaxTest, PicksWeightedArgmax) {
  EXPECT_DOUBLE_EQ(weighted_max({5.0, 2.0}, {1.0, 10.0}), 20.0);
  EXPECT_THROW(weighted_max({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-3.0);   // clamps to bin 0
  h.add(42.0);   // clamps to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.counts[4], 2u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(HistogramTest, BadParamsRejected) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace pjsched::metrics
