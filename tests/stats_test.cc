// Tests for summary statistics (src/metrics/stats.h).
#include "src/metrics/stats.h"

#include <gtest/gtest.h>

namespace pjsched::metrics {
namespace {

TEST(SummaryTest, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(SummaryTest, KnownValues) {
  const Summary s = summarize({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.p50, 2.5);
  // Population stddev of {1,2,3,4} = sqrt(1.25).
  EXPECT_NEAR(s.stddev, 1.1180339887, 1e-9);
}

TEST(SummaryTest, SingleValue) {
  const Summary s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.p99, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(QuantileTest, Interpolates) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.125), 15.0);
}

TEST(QuantileTest, BadInputsRejected) {
  EXPECT_THROW(quantile_sorted({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile_sorted({1.0}, 1.5), std::invalid_argument);
  EXPECT_THROW(quantile_sorted({1.0}, -0.1), std::invalid_argument);
}

TEST(WeightedMaxTest, PicksWeightedArgmax) {
  EXPECT_DOUBLE_EQ(weighted_max({5.0, 2.0}, {1.0, 10.0}), 20.0);
  EXPECT_THROW(weighted_max({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-3.0);   // clamps to bin 0
  h.add(42.0);   // clamps to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.counts[4], 2u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(HistogramTest, BadParamsRejected) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace pjsched::metrics
