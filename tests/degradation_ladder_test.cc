// State-transition tests for the overload degradation ladder
// (src/service/degradation.*): hysteresis bands, hold counts, stall
// escalation, the terminal drain rung — and the no-oscillation property
// under square-wave load that the hysteresis exists to provide.
#include "src/service/degradation.h"

#include <gtest/gtest.h>

#include <vector>

namespace pjsched::service {
namespace {

LadderConfig quick_config() {
  LadderConfig c;
  c.up_hold = 2;
  c.down_hold = 3;  // fast enough to exercise recovery in-test
  return c;
}

/// Feeds `n` identical samples; returns the final rung.
Rung feed(DegradationLadder& ladder, double u, int n, bool stalled = false) {
  Rung r = ladder.rung();
  for (int i = 0; i < n; ++i) r = ladder.on_sample(u, stalled);
  return r;
}

TEST(DegradationLadder, EscalatesOnlyAfterUpHold) {
  DegradationLadder ladder(quick_config());
  EXPECT_EQ(ladder.rung(), Rung::kNormal);
  // One sample above the enter threshold is not enough (up_hold = 2)...
  EXPECT_EQ(ladder.on_sample(0.75, false), Rung::kNormal);
  // ...a dip resets the streak...
  EXPECT_EQ(ladder.on_sample(0.10, false), Rung::kNormal);
  EXPECT_EQ(ladder.on_sample(0.75, false), Rung::kNormal);
  // ...and two consecutive do it.
  EXPECT_EQ(ladder.on_sample(0.75, false), Rung::kShedNew);
}

TEST(DegradationLadder, SpikeJumpsStraightToIndicatedRung) {
  DegradationLadder ladder(quick_config());
  // Utilization pinned at 0.99 indicates reject-tenant; after the up-hold
  // the ladder goes there directly instead of laddering through shed-new
  // and shed-queued one hold at a time.
  EXPECT_EQ(feed(ladder, 0.99, 2), Rung::kRejectTenant);
  EXPECT_EQ(ladder.transitions(), 1u);
}

TEST(DegradationLadder, RecoveryStepsDownOneRungAtATime) {
  DegradationLadder ladder(quick_config());
  feed(ladder, 0.99, 2);
  ASSERT_EQ(ladder.rung(), Rung::kRejectTenant);
  // Fully idle: each down_hold streak sheds exactly one rung.
  EXPECT_EQ(feed(ladder, 0.0, 3), Rung::kShedQueued);
  EXPECT_EQ(feed(ladder, 0.0, 3), Rung::kShedNew);
  EXPECT_EQ(feed(ladder, 0.0, 3), Rung::kNormal);
  EXPECT_EQ(feed(ladder, 0.0, 50), Rung::kNormal);  // floor is stable
}

TEST(DegradationLadder, HysteresisBandHoldsPosition) {
  DegradationLadder ladder(quick_config());
  feed(ladder, 0.75, 2);
  ASSERT_EQ(ladder.rung(), Rung::kShedNew);
  // 0.50 is below shed-new's enter (0.70) but above its exit (0.45):
  // inside the band the ladder neither escalates nor recovers, ever.
  EXPECT_EQ(feed(ladder, 0.50, 1000), Rung::kShedNew);
  EXPECT_EQ(ladder.transitions(), 1u);
}

TEST(DegradationLadder, SquareWaveLoadDoesNotOscillate) {
  // A square wave alternating each sample between "over enter" and "inside
  // the band" can never complete an up_hold or down_hold streak, so after
  // the initial escalation the rung must stay put: transitions() stays 1
  // across thousands of samples.
  DegradationLadder ladder(quick_config());
  feed(ladder, 0.75, 2);
  ASSERT_EQ(ladder.rung(), Rung::kShedNew);
  for (int i = 0; i < 5000; ++i)
    ladder.on_sample(i % 2 == 0 ? 0.75 : 0.50, false);
  EXPECT_EQ(ladder.rung(), Rung::kShedNew);
  EXPECT_EQ(ladder.transitions(), 1u);

  // Even a wave whose low phase dips below exit cannot flap if its period
  // is shorter than the holds: 2 highs / 2 lows never reaches down_hold=3.
  DegradationLadder wave(quick_config());
  feed(wave, 0.75, 2);
  std::vector<Rung> seen;
  for (int i = 0; i < 4000; ++i) {
    const double u = (i / 2) % 2 == 0 ? 0.75 : 0.10;
    seen.push_back(wave.on_sample(u, false));
  }
  for (Rung r : seen) EXPECT_EQ(r, Rung::kShedNew);
  EXPECT_EQ(wave.transitions(), 1u);
}

TEST(DegradationLadder, StallEscalatesImmediatelyAndCapsBelowDrain) {
  DegradationLadder ladder(quick_config());
  // No utilization pressure at all: the watchdog alone drives it up, one
  // rung per stalled sample, capped at reject-tenant (drain is shutdown's
  // decision, not the watchdog's).
  EXPECT_EQ(ladder.on_sample(0.0, true), Rung::kShedNew);
  EXPECT_EQ(ladder.on_sample(0.0, true), Rung::kShedQueued);
  EXPECT_EQ(ladder.on_sample(0.0, true), Rung::kRejectTenant);
  EXPECT_EQ(ladder.on_sample(0.0, true), Rung::kRejectTenant);
  EXPECT_EQ(ladder.stall_escalations(), 4u);
  // Recovery still hysteretic afterwards.
  EXPECT_EQ(feed(ladder, 0.0, 3), Rung::kShedQueued);
}

TEST(DegradationLadder, DrainIsTerminal) {
  DegradationLadder ladder(quick_config());
  ladder.begin_drain();
  EXPECT_EQ(ladder.rung(), Rung::kDrain);
  EXPECT_EQ(feed(ladder, 0.0, 100), Rung::kDrain);
  EXPECT_EQ(feed(ladder, 1.0, 100, /*stalled=*/true), Rung::kDrain);
  ladder.begin_drain();  // idempotent
  EXPECT_EQ(ladder.rung(), Rung::kDrain);
}

TEST(DegradationLadder, ConfigValidationRejectsInvertedBands) {
  LadderConfig bad = quick_config();
  bad.shed_new_exit = bad.shed_new_enter + 0.01;  // exit above enter
  EXPECT_THROW(DegradationLadder{bad}, std::invalid_argument);

  LadderConfig zero_hold = quick_config();
  zero_hold.up_hold = 0;
  EXPECT_THROW(DegradationLadder{zero_hold}, std::invalid_argument);

  LadderConfig unordered = quick_config();
  unordered.shed_queued_enter = 0.60;  // below shed_new_enter
  EXPECT_THROW(DegradationLadder{unordered}, std::invalid_argument);
}

TEST(DegradationLadder, UtilizationAboveOneIsClamped) {
  DegradationLadder ladder(quick_config());
  EXPECT_EQ(feed(ladder, 42.0, 2), Rung::kRejectTenant);
}

}  // namespace
}  // namespace pjsched::service
