// Sharded-ingest stress: many concurrent connections blast interleaved
// good/hostile bytes (malformed lines, oversize lines both in-buffer and
// buffer-overflowing, comments, mid-line disconnects) at a daemon running
// several io shards, writing in adversarial chunk sizes so lines split at
// arbitrary read boundaries.  Every byte must be classified exactly once
// and every record must reach exactly one terminal outcome — the books
// balance to the line.  Built to run under TSAN: this is the test that
// races the accept handoff, the per-shard parse loops, and the batched
// admission path against each other.
#include <gtest/gtest.h>
#include <unistd.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/service/daemon.h"
#include "src/service/record.h"
#include "src/service/stream_feed.h"

namespace pjsched::service {
namespace {

using namespace std::chrono_literals;

constexpr std::size_t kClients = 12;
constexpr int kLinesPerClient = 200;
constexpr std::size_t kTenants = 4;

/// What one client actually sent, tallied line by line as it composes the
/// feed — the ground truth the daemon's counters must reproduce.
struct ClientTally {
  std::uint64_t good = 0;
  std::uint64_t malformed = 0;
  std::uint64_t oversize = 0;
  bool partial = false;
  bool connected = false;
  std::array<std::uint64_t, kTenants> per_tenant{};
};

/// Polls until `pred()` or the timeout; returns pred()'s final value.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

void run_client(int port, unsigned seed, bool end_with_partial,
                ClientTally* out) {
  std::string error;
  const int fd = connect_tcp("127.0.0.1", static_cast<std::uint16_t>(port),
                             &error);
  ASSERT_GE(fd, 0) << error;
  out->connected = true;

  std::mt19937 rng(seed);
  std::string feed;
  for (int i = 0; i < kLinesPerClient; ++i) {
    const unsigned roll = rng() % 100;
    if (roll < 60) {
      const std::size_t tenant = rng() % kTenants;
      feed += "job t" + std::to_string(tenant) + " " +
              std::to_string(1 + rng() % 3) + "\n";
      ++out->good;
      ++out->per_tenant[tenant];
    } else if (roll < 75) {
      feed += (rng() % 2 == 0) ? "job missing-work\n" : "bogus verb here\n";
      ++out->malformed;
    } else if (roll < 90) {
      feed += (rng() % 2 == 0) ? "# operator noise\n" : "\n";
    } else {
      // Alternate the two oversize shapes: a complete line just over the
      // bound (classified by the parser) and a line bigger than the whole
      // read buffer (classified by IngestBuffer's overflow path).
      const std::size_t len =
          (rng() % 2 == 0) ? kMaxLineBytes + 17 : 5 * kMaxLineBytes;
      feed += std::string(len, 'z') + "\n";
      ++out->oversize;
    }
  }
  if (end_with_partial) {
    feed += "job t0 99";  // no newline: dies mid-line on disconnect
    out->partial = true;
  }

  // Adversarial pacing: write in random chunk sizes so line boundaries
  // land anywhere relative to the daemon's reads.
  std::size_t off = 0;
  while (off < feed.size()) {
    const std::size_t chunk =
        std::min<std::size_t>(1 + rng() % 4096, feed.size() - off);
    ASSERT_TRUE(write_all(fd, std::string_view(feed).substr(off, chunk)));
    off += chunk;
  }
  close_fd(fd);
}

TEST(ServiceIngest, ShardedHostileFloodBalancesTheBooks) {
  DaemonConfig config;
  config.pool.workers = 2;
  config.pool.watchdog_interval = std::chrono::milliseconds(0);
  config.router.shards = 4;
  config.router.capacity = 4096;
  config.tick_interval = 2ms;
  config.ns_per_unit = 200.0;
  config.tcp_port = 0;
  config.io_threads = 3;  // acceptor shard + two adoptive shards
  config.max_connections = kClients + 4;
  // Long deadlines: under TSAN a client thread can stall well past the
  // defaults, and this test wants every close to be a *peer* close.
  config.read_deadline = 30000ms;
  Daemon daemon(config);

  std::vector<ClientTally> tallies(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t i = 0; i < kClients; ++i) {
      clients.emplace_back(run_client, daemon.tcp_port(),
                           static_cast<unsigned>(9000 + 17 * i),
                           /*end_with_partial=*/i % 2 == 0, &tallies[i]);
    }
    for (auto& t : clients) t.join();
  }

  ClientTally total;
  std::uint64_t partials = 0;
  for (const auto& t : tallies) {
    ASSERT_TRUE(t.connected);
    total.good += t.good;
    total.malformed += t.malformed;
    total.oversize += t.oversize;
    if (t.partial) ++partials;
    for (std::size_t k = 0; k < kTenants; ++k)
      total.per_tenant[k] += t.per_tenant[k];
  }

  // Every connection closed with its bytes fully written; wait for the
  // shards to classify the whole stream.
  ASSERT_TRUE(eventually(
      [&] {
        const DaemonSnapshot s = daemon.snapshot();
        return s.feed.records == total.good &&
               s.feed.disconnects == kClients;
      },
      20000ms))
      << "records=" << daemon.snapshot().feed.records << " want "
      << total.good;

  ASSERT_TRUE(daemon.drain(30000ms));
  const DaemonSnapshot snap = daemon.snapshot();

  // Ingest classification, byte for byte.
  EXPECT_EQ(snap.feed.records, total.good);
  EXPECT_EQ(snap.feed.malformed, total.malformed);
  EXPECT_EQ(snap.feed.oversize, total.oversize);
  EXPECT_EQ(snap.feed.partial, partials);
  EXPECT_EQ(snap.feed.connections, kClients);
  EXPECT_EQ(snap.feed.disconnects, kClients);
  EXPECT_EQ(snap.feed.refused, 0u);
  EXPECT_EQ(snap.feed.read_timeouts, 0u);
  EXPECT_EQ(snap.feed.slow_drip, 0u);
  EXPECT_GE(snap.feed.batches, 1u);
  EXPECT_LE(snap.feed.batches, snap.feed.records);

  // Per-tenant books: exactly what each client said it sent, and every
  // submitted record at exactly one terminal outcome.
  std::uint64_t submitted_sum = 0;
  for (const auto& [name, t] : snap.tenants) {
    EXPECT_EQ(t.submitted, t.terminal()) << "tenant " << name;
    submitted_sum += t.submitted;
  }
  EXPECT_EQ(submitted_sum, total.good);
  for (std::size_t k = 0; k < kTenants; ++k) {
    const auto it = snap.tenants.find("t" + std::to_string(k));
    if (total.per_tenant[k] == 0) continue;
    ASSERT_NE(it, snap.tenants.end()) << "tenant t" << k;
    EXPECT_EQ(it->second.submitted, total.per_tenant[k]) << "tenant t" << k;
  }

  // Router conservation: accepted == popped + evictions + depth (0 after
  // drain), and every push attempt is accounted somewhere.
  EXPECT_EQ(snap.router.depth, 0u);
  EXPECT_EQ(snap.router.accepted, snap.router.popped +
                                      snap.router.shed_fair_share +
                                      snap.router.shed_queued);
  EXPECT_EQ(snap.feed.records,
            snap.router.accepted + snap.router.shed_arrival_full +
                snap.router.shed_new + snap.router.rejected_tenant +
                snap.router.rejected_drain);
}

}  // namespace
}  // namespace pjsched::service
