// Cross-engine validation: the two simulation engines implement the same
// machine model, so on instances where scheduling policy cannot matter
// (single-job, or non-overlapping sequential jobs) their outcomes must
// agree exactly or within the step engine's quantization; and greedy
// schedules must respect Brent-type ceilings.
#include <gtest/gtest.h>

#include "src/dag/analysis.h"
#include "src/dag/builders.h"
#include "src/dag/compose.h"
#include "src/sched/fifo.h"
#include "src/sched/opt_bound.h"
#include "src/sched/work_stealing.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

using testutil::make_instance;

TEST(CrossEngineTest, SequentialJobIdenticalInBothEngines) {
  // A chain has no scheduling freedom: both engines must give W exactly.
  auto inst = make_instance({{0.0, dag::serial_chain(7, 3)}});
  sched::FifoScheduler fifo;
  sched::WorkStealingScheduler ws(0, 5);
  EXPECT_DOUBLE_EQ(fifo.run(inst, {4, 1.0}).completion[0], 21.0);
  EXPECT_DOUBLE_EQ(ws.run(inst, {4, 1.0}).completion[0], 21.0);
}

TEST(CrossEngineTest, NonOverlappingSequentialJobsMatchOptBound) {
  // m = 1, admit-first, integer arrivals with gaps: work stealing on one
  // worker degenerates to non-preemptive FIFO, which equals the OPT-sim
  // reduction for m = 1 exactly.
  auto inst = make_instance({
      {0.0, dag::single_node(5)},
      {2.0, dag::single_node(3)},
      {4.0, dag::single_node(4)},
      {20.0, dag::single_node(2)},
  });
  sched::WorkStealingScheduler ws(0, 9);
  sched::OptLowerBound opt;
  const auto w = ws.run(inst, {1, 1.0});
  const auto o = opt.run(inst, {1, 1.0});
  ASSERT_EQ(w.completion.size(), o.completion.size());
  for (std::size_t i = 0; i < w.completion.size(); ++i)
    EXPECT_DOUBLE_EQ(w.completion[i], o.completion[i]) << "job " << i;
}

TEST(CrossEngineTest, EventEngineSingleJobWithinBrentBound) {
  // FIFO on a single job is a greedy schedule: makespan <= W/m + P(m-1)/m.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    sim::Rng rng(seed);
    dag::RandomLayeredOptions opt;
    opt.layers = 1 + static_cast<std::size_t>(rng.uniform_int(5));
    opt.max_width = 6;
    opt.max_work = 9;
    auto inst = make_instance({{0.0, dag::random_layered(rng, opt)}});
    const unsigned m = 1 + static_cast<unsigned>(rng.uniform_int(6));
    sched::FifoScheduler fifo;
    const auto res = fifo.run(inst, {m, 1.0});
    EXPECT_LE(res.completion[0],
              dag::brent_bound(inst.jobs[0].graph, m) + 1e-6)
        << "seed " << seed << " m " << m;
  }
}

TEST(CrossEngineTest, StepEngineSingleJobWithinStealAdjustedBound) {
  // Work stealing is greedy except for steal steps; with W + P*m steal
  // slack the bound is loose but must always hold at speed 1:
  // completion <= W + P + (steal overhead); we use the sequential ceiling
  // W plus admission/steal slack as an engine-sanity envelope.
  for (std::uint64_t seed = 20; seed < 26; ++seed) {
    sim::Rng rng(seed);
    dag::RandomLayeredOptions opt;
    opt.layers = 1 + static_cast<std::size_t>(rng.uniform_int(4));
    opt.max_width = 5;
    opt.max_work = 8;
    auto inst = make_instance({{0.0, dag::random_layered(rng, opt)}});
    const auto& g = inst.jobs[0].graph;
    sched::WorkStealingScheduler ws(0, seed);
    const auto res = ws.run(inst, {4, 1.0});
    EXPECT_LE(res.completion[0],
              static_cast<double>(g.total_work()) + 1.0)
        << "seed " << seed;
    EXPECT_GE(res.completion[0],
              static_cast<double>(g.total_work()) / 4.0 - 1e-9);
  }
}

TEST(CrossEngineTest, BothEnginesAgreeOnTotalWorkDelivered) {
  auto inst = testutil::random_instance(42, 20, 30.0);
  sim::Trace event_trace, step_trace;
  sched::FifoScheduler fifo;
  sched::WorkStealingScheduler ws(0, 3);
  fifo.run(inst, {3, 1.0}, &event_trace);
  ws.run(inst, {3, 1.0}, &step_trace);

  const auto delivered = [](const sim::Trace& t) {
    double sum = 0.0;
    for (const auto& iv : t.intervals()) sum += iv.end - iv.start;
    return sum;
  };
  const auto total = static_cast<double>(inst.total_work());
  EXPECT_NEAR(delivered(event_trace), total, 1e-6);
  EXPECT_NEAR(delivered(step_trace), total, 1e-6);
}

TEST(CrossEngineTest, SpeedScalingConsistency) {
  // Doubling speed exactly halves a single job's completion in both
  // engines (no contention, deterministic single-worker execution).
  auto inst = make_instance({{0.0, dag::serial_chain(5, 4)}});
  sched::FifoScheduler fifo;
  sched::WorkStealingScheduler ws(0, 1);
  EXPECT_DOUBLE_EQ(fifo.run(inst, {2, 2.0}).completion[0],
                   fifo.run(inst, {2, 1.0}).completion[0] / 2.0);
  EXPECT_DOUBLE_EQ(ws.run(inst, {2, 2.0}).completion[0],
                   ws.run(inst, {2, 1.0}).completion[0] / 2.0);
}

TEST(CrossEngineTest, MapReduceShapeSchedulesCorrectly) {
  // map_reduce(8 maps of 4, 2 reduces of 6) on m = 4 at speed 1 under
  // FIFO: maps take ceil(8/4)*4 = 8, reduces run together: 6.  Total 14.
  auto inst = make_instance({{0.0, dag::map_reduce_dag(8, 4, 2, 6)}});
  sched::FifoScheduler fifo;
  EXPECT_DOUBLE_EQ(fifo.run(inst, {4, 1.0}).completion[0], 14.0);
}

}  // namespace
}  // namespace pjsched
