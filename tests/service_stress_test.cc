// Concurrency stress for the service layer, built to run under TSAN (it
// is part of the CI sanitizer regex): many threads push/pop/tick one
// TenantRouter while a flooding tenant and a well-behaved tenant share a
// live Daemon.  Assertions are structural — exact conservation of every
// record, no lost outcomes, forward progress for the well-behaved tenant —
// never timing-based.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/service/daemon.h"
#include "src/service/tenant_router.h"
#include "src/sim/rng.h"

namespace pjsched::service {
namespace {

using namespace std::chrono_literals;

TEST(ServiceStress, RouterConservationUnderConcurrentChurn) {
  RouterConfig config;
  config.shards = 4;
  config.capacity = 64;
  TenantRouter router(config);
  router.set_weight("w0", 3.0);

  constexpr int kPushers = 3;
  constexpr int kPushesEach = 4000;
  std::atomic<std::uint64_t> admitted{0}, shed_at_push{0}, evicted{0},
      popped{0};
  std::atomic<bool> stop_pop{false};

  std::vector<std::thread> threads;
  for (int p = 0; p < kPushers; ++p) {
    threads.emplace_back([&, p] {
      sim::Rng rng(100 + static_cast<std::uint64_t>(p));
      const std::string tenants[] = {"w0", "w1", "w2", "w3"};
      std::vector<ShedRecord> ev;
      for (int i = 0; i < kPushesEach; ++i) {
        JobRecord r;
        r.tenant = tenants[rng.uniform_int(4)];
        r.work = 1.0 + rng.uniform_double();
        ev.clear();
        ShedReason why{};
        if (router.push(std::move(r), &ev, &why) == PushOutcome::kAdmitted)
          admitted.fetch_add(1, std::memory_order_relaxed);
        else
          shed_at_push.fetch_add(1, std::memory_order_relaxed);
        evicted.fetch_add(ev.size(), std::memory_order_relaxed);
      }
    });
  }
  threads.emplace_back([&] {
    QueuedRecord out;
    while (!stop_pop.load(std::memory_order_acquire)) {
      if (router.try_pop(&out))
        popped.fetch_add(1, std::memory_order_relaxed);
      else
        std::this_thread::sleep_for(100us);
    }
  });
  threads.emplace_back([&] {
    sim::Rng rng(7);
    std::vector<ShedRecord> ev;
    while (!stop_pop.load(std::memory_order_acquire)) {
      ev.clear();
      router.tick(rng.bernoulli(0.02), &ev);
      evicted.fetch_add(ev.size(), std::memory_order_relaxed);
      std::this_thread::sleep_for(200us);
    }
  });

  for (int p = 0; p < kPushers; ++p) threads[p].join();
  stop_pop.store(true, std::memory_order_release);
  threads[kPushers].join();
  threads[kPushers + 1].join();

  // Drain the leftovers single-threaded, then the books must balance to
  // the record: every push is admitted or shed, every admitted record is
  // popped, evicted, or still queued (now zero).
  QueuedRecord out;
  while (router.try_pop(&out)) popped.fetch_add(1, std::memory_order_relaxed);

  const TenantRouter::Stats s = router.stats();
  EXPECT_EQ(s.depth, 0u);
  EXPECT_EQ(s.accepted, admitted.load());
  EXPECT_EQ(s.popped, popped.load());
  EXPECT_EQ(s.shed_fair_share + s.shed_queued, evicted.load());
  EXPECT_EQ(s.accepted, s.popped + s.shed_fair_share + s.shed_queued);
  EXPECT_EQ(admitted.load() + shed_at_push.load(),
            static_cast<std::uint64_t>(kPushers) * kPushesEach);
  EXPECT_GT(s.total_shed(), 0u);  // the churn actually overloaded the router
}

TEST(ServiceStress, FloodingTenantCannotStarveAWellBehavedOne) {
  DaemonConfig config;
  config.pool.workers = 2;
  config.router.shards = 2;
  config.router.capacity = 64;
  config.tick_interval = 1ms;
  config.ns_per_unit = 500.0;
  Daemon daemon(config);
  daemon.set_weight("nice", 1.0);
  daemon.set_weight("flood", 1.0);

  constexpr int kFloodRecords = 3000;
  constexpr int kNiceRecords = 40;
  std::thread flooder([&] {
    for (int i = 0; i < kFloodRecords; ++i) {
      JobRecord r;
      r.tenant = "flood";
      r.work = 8;
      daemon.submit_record(std::move(r));
    }
  });
  std::thread citizen([&] {
    for (int i = 0; i < kNiceRecords; ++i) {
      JobRecord r;
      r.tenant = "nice";
      r.work = 2;
      daemon.submit_record(std::move(r));
      std::this_thread::sleep_for(1ms);
    }
  });
  flooder.join();
  citizen.join();

  // Everything resolves: no deadlock (drain returns true), no lost
  // records, and the flood was actually shed while the citizen made
  // progress.
  ASSERT_TRUE(daemon.drain(30000ms));
  const DaemonSnapshot snap = daemon.snapshot();
  const TenantCounters& flood = snap.tenants.at("flood");
  const TenantCounters& nice = snap.tenants.at("nice");
  EXPECT_EQ(flood.submitted, static_cast<std::uint64_t>(kFloodRecords));
  EXPECT_EQ(nice.submitted, static_cast<std::uint64_t>(kNiceRecords));
  EXPECT_EQ(flood.submitted, flood.terminal());
  EXPECT_EQ(nice.submitted, nice.terminal());
  EXPECT_GT(flood.shed + flood.rejected, 0u);
  EXPECT_GT(nice.completed, 0u);
  // Weighted-fair service: the citizen's completion *rate* survives the
  // flood — it completes at least half of what it submitted even though
  // the flood outnumbers it 75:1.
  EXPECT_GE(nice.completed * 2, nice.submitted);
  EXPECT_EQ(snap.router.depth, 0u);
  EXPECT_EQ(snap.inflight, 0u);
}

}  // namespace
}  // namespace pjsched::service
