// Cross-checks the step engine's work-quantum fast path (macro-stepping
// over all-busy step runs, the default) against the exact per-step
// reference mode (StepEngineOptions::exact_steps): completions, counters,
// and coalesced traces must agree bit for bit across arrivals, machine
// degradation, steal-half, weighted admission, and k in {0, 4, 16}.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/dag/builders.h"
#include "src/sim/step_engine.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

using testutil::make_instance;
using testutil::make_weighted_instance;

// Runs the instance in both modes and asserts bitwise-identical results.
// Returns the fast run so callers can additionally assert that the fast
// path actually engaged (stats.macro_jumps > 0) where they expect it to.
core::ScheduleResult expect_modes_identical(const core::Instance& inst,
                                            sim::StepEngineOptions opt) {
  sim::Trace fast_trace, exact_trace;
  sim::StepEngineOptions fast_opt = opt;
  fast_opt.exact_steps = false;
  fast_opt.trace = &fast_trace;
  sim::StepEngineOptions exact_opt = opt;
  exact_opt.exact_steps = true;
  exact_opt.trace = &exact_trace;

  const auto fast = sim::run_step_engine(inst, fast_opt);
  const auto exact = sim::run_step_engine(inst, exact_opt);

  EXPECT_EQ(fast.completion, exact.completion);
  EXPECT_EQ(fast.stats.work_steps, exact.stats.work_steps);
  EXPECT_EQ(fast.stats.admissions, exact.stats.admissions);
  EXPECT_EQ(fast.stats.steal_attempts, exact.stats.steal_attempts);
  EXPECT_EQ(fast.stats.successful_steals, exact.stats.successful_steals);
  EXPECT_EQ(fast.stats.idle_steps, exact.stats.idle_steps);
  EXPECT_EQ(exact.stats.macro_jumps, 0u);

  EXPECT_EQ(fast_trace.intervals().size(), exact_trace.intervals().size());
  const std::size_t n_iv = std::min(fast_trace.intervals().size(),
                                    exact_trace.intervals().size());
  for (std::size_t i = 0; i < n_iv; ++i) {
    const auto& a = fast_trace.intervals()[i];
    const auto& b = exact_trace.intervals()[i];
    EXPECT_EQ(a.job, b.job);
    EXPECT_EQ(a.node, b.node);
    EXPECT_EQ(a.proc, b.proc);
    EXPECT_EQ(a.start, b.start);
    EXPECT_EQ(a.end, b.end);
  }
  EXPECT_EQ(fast_trace.steals().size(), exact_trace.steals().size());
  const std::size_t n_st = std::min(fast_trace.steals().size(),
                                    exact_trace.steals().size());
  for (std::size_t i = 0; i < n_st; ++i) {
    const auto& a = fast_trace.steals()[i];
    const auto& b = exact_trace.steals()[i];
    EXPECT_EQ(a.thief, b.thief);
    EXPECT_EQ(a.victim, b.victim);
    EXPECT_EQ(a.success, b.success);
    EXPECT_EQ(a.step, b.step);
  }
  EXPECT_EQ(fast_trace.admissions().size(), exact_trace.admissions().size());
  const std::size_t n_ad = std::min(fast_trace.admissions().size(),
                                    exact_trace.admissions().size());
  for (std::size_t i = 0; i < n_ad; ++i) {
    const auto& a = fast_trace.admissions()[i];
    const auto& b = exact_trace.admissions()[i];
    EXPECT_EQ(a.worker, b.worker);
    EXPECT_EQ(a.job, b.job);
    EXPECT_EQ(a.step, b.step);
  }
  return fast;
}

// Coarse-grained parallel-for jobs: long all-busy runs, the fast path's
// home turf.
core::Instance coarse_instance(std::size_t jobs, core::Time spacing,
                               dag::Work body_work) {
  std::vector<std::pair<core::Time, dag::Dag>> specs;
  for (std::size_t i = 0; i < jobs; ++i)
    specs.emplace_back(spacing * static_cast<double>(i),
                       dag::parallel_for_dag(8, body_work));
  return make_instance(std::move(specs));
}

TEST(FastPathTest, CoarseAllBusyAcrossK) {
  const auto inst = coarse_instance(6, 50.0, 500);
  for (unsigned k : {0u, 4u, 16u}) {
    sim::StepEngineOptions opt;
    opt.machine = {4, 1.0};
    opt.steal_k = k;
    opt.seed = 11 + k;
    const auto fast = expect_modes_identical(inst, opt);
    EXPECT_GT(fast.stats.macro_jumps, 0u) << "k=" << k;
  }
}

TEST(FastPathTest, FineGrainedRandomInstances) {
  // Work 1..6 per node: macro-steps are rare, the per-step machinery does
  // almost everything — the boundary between the paths is exercised hard.
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto inst = testutil::random_instance(seed, 30, 60.0);
    for (unsigned k : {0u, 4u, 16u}) {
      sim::StepEngineOptions opt;
      opt.machine = {4, 1.0};
      opt.steal_k = k;
      opt.seed = 100 + seed;
      expect_modes_identical(inst, opt);
    }
  }
}

TEST(FastPathTest, SpeedAugmentedMachine) {
  const auto inst = coarse_instance(4, 13.7, 300);
  sim::StepEngineOptions opt;
  opt.machine = {3, 2.0};
  opt.steal_k = 4;
  opt.seed = 23;
  const auto fast = expect_modes_identical(inst, opt);
  EXPECT_GT(fast.stats.macro_jumps, 0u);
}

TEST(FastPathTest, DegradationEventsInterruptMacroSteps) {
  // Workers fail mid-run and recover later; macro-steps must stop exactly
  // at each event so the fail-stop handling sees the same state.
  auto inst = coarse_instance(5, 40.0, 400);
  for (unsigned k : {0u, 4u}) {
    sim::StepEngineOptions opt;
    opt.machine = {4, 1.0, {{120.0, 2, 1.0}, {300.0, 4, 1.0}}};
    opt.steal_k = k;
    opt.seed = 31 + k;
    const auto fast = expect_modes_identical(inst, opt);
    EXPECT_GT(fast.stats.macro_jumps, 0u) << "k=" << k;
  }
}

TEST(FastPathTest, StealHalfVariant) {
  const auto inst = coarse_instance(4, 25.0, 250);
  sim::StepEngineOptions opt;
  opt.machine = {4, 1.0};
  opt.steal_k = 4;
  opt.steal_half = true;
  opt.seed = 41;
  expect_modes_identical(inst, opt);
}

TEST(FastPathTest, WeightedAdmission) {
  std::vector<std::tuple<core::Time, double, dag::Dag>> specs;
  for (std::size_t i = 0; i < 8; ++i)
    specs.emplace_back(5.0 * static_cast<double>(i),
                       static_cast<double>(1 + i % 3),
                       dag::parallel_for_dag(4, 120));
  const auto inst = make_weighted_instance(std::move(specs));
  sim::StepEngineOptions opt;
  opt.machine = {3, 1.0};
  opt.steal_k = 0;
  opt.admit_by_weight = true;
  opt.seed = 53;
  expect_modes_identical(inst, opt);
}

TEST(FastPathTest, IdleGapsComposeWithMacroSteps) {
  // Huge arrival gaps exercise the idle fast-forward and the work-quantum
  // fast path in the same run.
  auto inst = make_instance({
      {0.0, dag::parallel_for_dag(4, 300)},
      {10000.0, dag::serial_chain(3, 200)},
      {20000.0, dag::parallel_for_dag(8, 100)},
  });
  sim::StepEngineOptions opt;
  opt.machine = {4, 1.0};
  opt.steal_k = 4;
  opt.seed = 61;
  const auto fast = expect_modes_identical(inst, opt);
  EXPECT_GT(fast.stats.macro_jumps, 0u);
}

TEST(FastPathTest, SingleWorkerPureMacro) {
  // m = 1: after admission every step is all-busy, so the whole node runs
  // in one macro-step per node.
  auto inst = make_instance({{0.0, dag::serial_chain(4, 1000)}});
  sim::StepEngineOptions opt;
  opt.machine = {1, 1.0};
  const auto fast = expect_modes_identical(inst, opt);
  EXPECT_EQ(fast.stats.macro_jumps, 4u);
  EXPECT_DOUBLE_EQ(fast.completion[0], 4000.0);
}

TEST(FastPathTest, BudgetGuardStillFiresUnderMacroStepping) {
  auto inst = make_instance({{0.0, dag::single_node(100)}});
  sim::StepEngineOptions opt;
  opt.machine = {1, 1.0};
  opt.max_steps = 10;
  EXPECT_THROW(sim::run_step_engine(inst, opt), std::logic_error);
  opt.exact_steps = true;
  EXPECT_THROW(sim::run_step_engine(inst, opt), std::logic_error);
}

}  // namespace
}  // namespace pjsched
