// PackedDag is the SoA execution layout the job arena substitutes for the
// (dag::Dag*, dag::ReadyTracker) pair; the engines' bit-identity depends on
// its frontier behaving *exactly* like ReadyTracker's.  These tests drive
// both through identical randomized claim/complete schedules and compare
// every observable at every step, pin the grow-only slot-reuse contract the
// scaling benches' allocation probe measures, and check the error paths.
#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/dag/builders.h"
#include "src/dag/dag.h"
#include "src/sim/packed_dag.h"
#include "src/sim/rng.h"

namespace pjsched {
namespace {

// Runs `packed` (already holding `d`) and a fresh ReadyTracker through the
// same randomized interleaving of claims (mostly the frontier head, the
// engines' pattern, but sometimes mid-frontier) and completions, asserting
// after every operation that the two expose identical frontiers.
void lockstep(const dag::Dag& d, sim::PackedDag& packed, std::uint64_t seed) {
  dag::ReadyTracker tracker(d);
  sim::Rng rng(seed);
  std::vector<dag::NodeId> claimed;
  std::vector<dag::NodeId> enabled_p, enabled_t;

  EXPECT_TRUE(packed.bound());
  EXPECT_EQ(packed.node_count(), d.node_count());
  EXPECT_EQ(packed.total_work(), d.total_work());
  EXPECT_EQ(packed.critical_path(), d.critical_path());

  while (!packed.done() || !claimed.empty()) {
    ASSERT_EQ(packed.done(), tracker.done());
    ASSERT_EQ(packed.ready_count(), tracker.ready_count());
    ASSERT_EQ(packed.completed_count(), tracker.completed_count());
    const auto pr = packed.ready();
    const auto tr = tracker.ready();
    for (std::size_t i = 0; i < pr.size(); ++i) {
      ASSERT_EQ(pr[i], tr[i]) << "frontier position " << i;
    }

    const bool can_claim = packed.ready_count() > 0;
    const bool do_claim =
        can_claim && (claimed.empty() || rng.uniform_double() < 0.6);
    if (do_claim) {
      const std::size_t idx =
          rng.uniform_double() < 0.8
              ? 0
              : static_cast<std::size_t>(rng.uniform_int(pr.size()));
      const dag::NodeId v = pr[idx];
      EXPECT_EQ(packed.work_of(v), d.work_of(v));
      const auto ps = packed.successors(v);
      const auto ds = d.successors(v);
      ASSERT_EQ(ps.size(), ds.size());
      for (std::size_t i = 0; i < ps.size(); ++i) EXPECT_EQ(ps[i], ds[i]);
      packed.claim(v);
      tracker.claim(v);
      claimed.push_back(v);
    } else {
      const std::size_t idx =
          static_cast<std::size_t>(rng.uniform_int(claimed.size()));
      const dag::NodeId v = claimed[idx];
      claimed.erase(claimed.begin() + static_cast<std::ptrdiff_t>(idx));
      enabled_p.clear();
      enabled_t.clear();
      EXPECT_EQ(packed.complete(v, &enabled_p),
                tracker.complete(v, &enabled_t));
      ASSERT_EQ(enabled_p, enabled_t);
    }
  }
  EXPECT_TRUE(packed.done());
  EXPECT_TRUE(tracker.done());
  EXPECT_EQ(packed.completed_count(), d.node_count());
}

TEST(PackedDagTest, LockstepOnCanonicalShapes) {
  const dag::Dag shapes[] = {
      dag::serial_chain(12, 3),
      dag::single_node(7),
      dag::parallel_for_dag(16, 5),
      dag::divide_and_conquer(4, 2),
      dag::star(10),
  };
  for (const dag::Dag& d : shapes) {
    SCOPED_TRACE(d.node_count());
    sim::PackedDag packed;
    packed.assign(d);
    lockstep(d, packed, 0x5eedULL + d.node_count());
  }
}

TEST(PackedDagTest, LockstepOnRandomDags) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE(seed);
    sim::Rng gen(seed);
    dag::RandomForkJoinOptions fj;
    fj.max_depth = 5;
    const dag::Dag a = dag::random_fork_join(gen, fj);
    dag::RandomLayeredOptions ly;
    ly.layers = 6;
    ly.max_width = 6;
    const dag::Dag b = dag::random_layered(gen, ly);
    sim::PackedDag packed;
    packed.assign(a);
    lockstep(a, packed, seed * 31);
    packed.assign(b);  // re-assign without release(): legal
    lockstep(b, packed, seed * 31 + 1);
  }
}

// The arena recycles one PackedDag per slot: successive occupants must see
// a fully restarted frontier, and a smaller DAG after a larger one must not
// leak the previous occupant's nodes.
TEST(PackedDagTest, SlotReuseRestartsCleanly) {
  sim::PackedDag packed;
  const dag::Dag big = dag::parallel_for_dag(64, 3);
  const dag::Dag small = dag::serial_chain(3, 9);

  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE(round);
    packed.assign(big);
    lockstep(big, packed, 100 + round);
    packed.release();
    EXPECT_FALSE(packed.bound());

    packed.assign(small);
    EXPECT_EQ(packed.node_count(), small.node_count());
    EXPECT_EQ(packed.ready_count(), 1u);  // one chain head, nothing stale
    lockstep(small, packed, 200 + round);
    packed.release();
  }
}

// Grow-only storage: once a slot has held a DAG, re-assigning one no larger
// must not reallocate the packed arrays (vector::assign reuses capacity).
// Observed through data() stability, the strongest portable proxy.
TEST(PackedDagTest, ReassignReusesCapacity) {
  sim::PackedDag packed;
  const dag::Dag d = dag::divide_and_conquer(5, 4);
  packed.assign(d);
  const dag::NodeId* succ_before = packed.successors(0).data();
  const auto ready_before = packed.ready().data();
  packed.release();
  packed.assign(d);
  EXPECT_EQ(packed.successors(0).data(), succ_before);
  EXPECT_EQ(packed.ready().data(), ready_before);
}

TEST(PackedDagTest, AssignRejectsUnsealedDag) {
  dag::Dag d;
  d.add_node(1);
  sim::PackedDag packed;
  EXPECT_THROW(packed.assign(d), std::invalid_argument);
}

TEST(PackedDagTest, ClaimRejectsNonReadyNode) {
  const dag::Dag d = dag::serial_chain(3, 1);
  sim::PackedDag packed;
  packed.assign(d);
  try {
    packed.claim(1);  // blocked behind node 0
    FAIL() << "claim of a blocked node must throw";
  } catch (const std::logic_error& e) {
    EXPECT_EQ(std::string(e.what()), "PackedDag::claim: node is not ready");
  }
  packed.claim(0);
  EXPECT_THROW(packed.claim(0), std::logic_error);  // already claimed
  EXPECT_THROW(packed.claim(99), std::logic_error);  // out of range
}

TEST(PackedDagTest, CompleteRejectsUnclaimedNode) {
  const dag::Dag d = dag::serial_chain(2, 1);
  sim::PackedDag packed;
  packed.assign(d);
  try {
    packed.complete(0);  // ready but never claimed
    FAIL() << "complete of an unclaimed node must throw";
  } catch (const std::logic_error& e) {
    EXPECT_EQ(std::string(e.what()),
              "PackedDag::complete: node was not claimed");
  }
  packed.claim(0);
  EXPECT_EQ(packed.complete(0), 1u);  // enables node 1
  EXPECT_THROW(packed.complete(0), std::logic_error);  // already done
  EXPECT_THROW(packed.complete(99), std::logic_error);  // out of range
}

}  // namespace
}  // namespace pjsched
