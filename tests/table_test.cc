// Tests for table formatting (src/metrics/table.h).
#include "src/metrics/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace pjsched::metrics {
namespace {

TEST(TableTest, AsciiAlignment) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream oss;
  t.print(oss);
  EXPECT_EQ(oss.str(),
            "|  name | value |\n"
            "|-------|-------|\n"
            "| alpha |     1 |\n"
            "|     b | 22222 |\n");
}

TEST(TableTest, CsvEscaping) {
  Table t({"a", "b"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"has\"quote", "x"});
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(),
            "a,b\n"
            "plain,\"has,comma\"\n"
            "\"has\"\"quote\",x\n");
}

TEST(TableTest, CellFormatting) {
  EXPECT_EQ(Table::cell(1.5), "1.5000");
  EXPECT_EQ(Table::cell(std::uint64_t{42}), "42");
}

TEST(TableTest, RowArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
  EXPECT_EQ(t.rows(), 0u);
}

}  // namespace
}  // namespace pjsched::metrics
