// Tests for bounded-memory flow accounting (src/metrics/streaming_stats.h):
// exact extremes vs the materialized path, bitwise-equal quantiles at full
// retention, the documented empty contract, and reservoir determinism.
#include "src/metrics/streaming_stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/core/types.h"
#include "src/metrics/stats.h"
#include "src/sim/rng.h"

namespace pjsched::metrics {
namespace {

struct Completion {
  core::JobId id;
  double arrival;
  double weight;
  double completion;
};

// A synthetic completion stream with exact ties in weighted flow (ids 3 and
// 7 both attain 60.0) to exercise the smallest-id tie-break.
std::vector<Completion> tied_stream() {
  return {
      {0, 0.0, 1.0, 10.0},   // flow 10
      {3, 5.0, 2.0, 35.0},   // flow 30, weighted 60  <- argmax (ties with 7)
      {1, 2.0, 1.0, 42.0},   // flow 40
      {7, 10.0, 1.5, 50.0},  // flow 40, weighted 60
      {2, 4.0, 1.0, 9.0},    // flow 5
  };
}

// Reference computation the way ScheduleResult::finalize does it: flows in
// id order, first strict maximum of weighted flow wins.
struct Reference {
  std::vector<double> flows;  // id order
  double max_flow = 0.0;
  double max_weighted = 0.0;
  core::JobId argmax = 0;
  double makespan = 0.0;
};

Reference reference_of(std::vector<Completion> cs) {
  std::sort(cs.begin(), cs.end(),
            [](const Completion& a, const Completion& b) { return a.id < b.id; });
  Reference r;
  bool first = true;
  for (const Completion& c : cs) {
    const double flow = c.completion - c.arrival;
    r.flows.push_back(flow);
    r.max_flow = std::max(r.max_flow, flow);
    r.makespan = std::max(r.makespan, c.completion);
    const double w = c.weight * flow;
    if (first || w > r.max_weighted) {
      r.max_weighted = w;
      r.argmax = c.id;
      first = false;
    }
  }
  return r;
}

TEST(StreamingFlowStatsTest, ExtremesMatchFinalizeSemantics) {
  const auto cs = tied_stream();
  StreamingFlowStats stats;
  for (const Completion& c : cs)
    stats.record(c.id, c.arrival, c.weight, c.completion);
  const Reference ref = reference_of(cs);

  EXPECT_EQ(stats.count(), cs.size());
  EXPECT_EQ(stats.max_flow(), ref.max_flow);
  EXPECT_EQ(stats.max_weighted_flow(), ref.max_weighted);
  EXPECT_EQ(stats.argmax_flow(), ref.argmax);  // smallest id on the 60.0 tie
  EXPECT_EQ(stats.argmax_flow(), 3u);
  EXPECT_EQ(stats.makespan(), ref.makespan);
  EXPECT_EQ(stats.min_flow(), 5.0);
}

// While count <= reservoir capacity the reservoir holds every sample, and
// summary() must reproduce metrics::summarize bit for bit — same quantile
// arithmetic over the same sample multiset.
TEST(StreamingFlowStatsTest, FullRetentionSummaryIsBitwiseSummarize) {
  sim::Rng rng(123);
  StreamingFlowStats::Options opt;
  opt.reservoir = 1000;
  StreamingFlowStats stats(opt);
  std::vector<double> flows;
  double t = 0.0;
  for (core::JobId id = 0; id < 700; ++id) {
    const double arrival = t;
    const double completion = arrival + rng.uniform_double() * 500.0;
    t += rng.uniform_double() * 3.0;
    stats.record(id, arrival, 1.0, completion);
    // The same subtraction the sink performs — flows must match bitwise.
    flows.push_back(completion - arrival);
  }
  ASSERT_TRUE(stats.quantiles_exact());

  const Summary direct = summarize(flows);
  const Summary streamed = stats.summary();
  EXPECT_EQ(streamed.count, direct.count);
  EXPECT_EQ(streamed.min, direct.min);
  EXPECT_EQ(streamed.max, direct.max);
  EXPECT_EQ(streamed.p50, direct.p50);
  EXPECT_EQ(streamed.p90, direct.p90);
  EXPECT_EQ(streamed.p99, direct.p99);
  // Mean and stddev use a different recurrence (Welford) — exact value, but
  // only up to floating-point summation order.
  EXPECT_NEAR(streamed.mean, direct.mean, 1e-9 * (1.0 + std::abs(direct.mean)));
  EXPECT_NEAR(streamed.stddev, direct.stddev,
              1e-9 * (1.0 + std::abs(direct.stddev)));
}

TEST(StreamingFlowStatsTest, BeyondCapacityQuantilesAreEstimates) {
  StreamingFlowStats::Options opt;
  opt.reservoir = 64;
  StreamingFlowStats stats(opt);
  for (core::JobId id = 0; id < 10000; ++id) {
    const double arrival = static_cast<double>(id);
    // Flows uniform on [0, 1000): quantiles of the population are known.
    const double flow = static_cast<double>((id * 37) % 1000);
    stats.record(id, arrival, 1.0, arrival + flow);
  }
  EXPECT_FALSE(stats.quantiles_exact());
  EXPECT_EQ(stats.reservoir().size(), 64u);
  // Extremes stay exact regardless of the reservoir.
  EXPECT_EQ(stats.count(), 10000u);
  EXPECT_EQ(stats.max_flow(), 999.0);
  const Summary s = stats.summary();
  EXPECT_EQ(s.max, 999.0);
  // The subsample is uniform; its median should land well inside the bulk.
  EXPECT_GT(s.p50, 200.0);
  EXPECT_LT(s.p50, 800.0);
}

TEST(StreamingFlowStatsTest, EmptyContractAllZero) {
  const StreamingFlowStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.max_flow(), 0.0);
  EXPECT_EQ(stats.min_flow(), 0.0);
  EXPECT_EQ(stats.mean_flow(), 0.0);
  EXPECT_EQ(stats.argmax_flow(), 0u);
  const Summary s = stats.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p99, 0.0);
}

TEST(StreamingFlowStatsTest, RejectsCompletionBeforeArrival) {
  StreamingFlowStats stats;
  EXPECT_THROW(stats.record(0, 10.0, 1.0, 9.0), std::logic_error);
  EXPECT_THROW(StreamingFlowStats(StreamingFlowStats::Options{0, 1}),
               std::invalid_argument);
}

// Same stream, same options => identical state, including the reservoir
// after evictions (the replacement draws are seeded).
TEST(StreamingFlowStatsTest, DeterministicAcrossRuns) {
  auto run = [] {
    StreamingFlowStats::Options opt;
    opt.reservoir = 32;
    StreamingFlowStats stats(opt);
    for (core::JobId id = 0; id < 5000; ++id) {
      const double arrival = 0.25 * static_cast<double>(id);
      stats.record(id, arrival, 1.0 + (id % 3),
                   arrival + static_cast<double>((id * 131) % 997));
    }
    return stats;
  };
  const StreamingFlowStats a = run();
  const StreamingFlowStats b = run();
  EXPECT_EQ(a.reservoir(), b.reservoir());
  const Summary sa = a.summary();
  const Summary sb = b.summary();
  EXPECT_EQ(sa.p50, sb.p50);
  EXPECT_EQ(sa.p90, sb.p90);
  EXPECT_EQ(sa.p99, sb.p99);
  EXPECT_EQ(a.max_weighted_flow(), b.max_weighted_flow());
  EXPECT_EQ(a.argmax_flow(), b.argmax_flow());
}

}  // namespace
}  // namespace pjsched::metrics
