// Tests for the fundamental types (src/core/types.h), mirroring the
// paper's Table 1 definitions: F_i = c_i - r_i, objective max_i w_i F_i.
#include "src/core/types.h"

#include <gtest/gtest.h>

#include "src/dag/builders.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

using testutil::make_instance;
using testutil::make_weighted_instance;

TEST(ScheduleResultTest, FinalizeComputesTableOneQuantities) {
  auto inst = make_weighted_instance({
      {0.0, 1.0, dag::single_node(1)},
      {2.0, 3.0, dag::single_node(1)},
      {5.0, 1.0, dag::single_node(1)},
  });
  core::ScheduleResult res;
  res.completion = {4.0, 6.0, 9.0};
  res.finalize(inst.jobs);
  EXPECT_DOUBLE_EQ(res.flow[0], 4.0);
  EXPECT_DOUBLE_EQ(res.flow[1], 4.0);
  EXPECT_DOUBLE_EQ(res.flow[2], 4.0);
  EXPECT_DOUBLE_EQ(res.max_flow, 4.0);
  EXPECT_DOUBLE_EQ(res.max_weighted_flow, 12.0);  // job 1: w=3, F=4
  EXPECT_EQ(res.argmax_flow, 1u);
  EXPECT_DOUBLE_EQ(res.mean_flow, 4.0);
  EXPECT_DOUBLE_EQ(res.makespan, 9.0);
}

TEST(ScheduleResultTest, FinalizeRejectsBadData) {
  auto inst = make_instance({{5.0, dag::single_node(1)}});
  core::ScheduleResult res;
  res.completion = {};
  EXPECT_THROW(res.finalize(inst.jobs), std::logic_error);  // size mismatch
  res.completion = {4.0};  // completes before arrival
  EXPECT_THROW(res.finalize(inst.jobs), std::logic_error);
}

TEST(InstanceTest, Aggregates) {
  auto inst = make_instance({
      {0.0, dag::serial_chain(3, 4)},       // W = 12, P = 12
      {1.0, dag::parallel_for_dag(4, 5)},   // W = 22, P = 7
  });
  EXPECT_EQ(inst.size(), 2u);
  EXPECT_EQ(inst.total_work(), 34u);
  EXPECT_EQ(inst.max_work(), 22u);
  EXPECT_EQ(inst.max_critical_path(), 12u);
}

TEST(InstanceTest, ValidateCatchesBadJobs) {
  core::Instance empty;
  EXPECT_THROW(empty.validate(), std::invalid_argument);

  auto negative = make_instance({{0.0, dag::single_node(1)}});
  negative.jobs[0].arrival = -1.0;
  EXPECT_THROW(negative.validate(), std::invalid_argument);

  auto bad_weight = make_instance({{0.0, dag::single_node(1)}});
  bad_weight.jobs[0].weight = 0.0;
  EXPECT_THROW(bad_weight.validate(), std::invalid_argument);

  core::Instance unsealed;
  unsealed.jobs.emplace_back();
  unsealed.jobs[0].graph.add_node(1);
  EXPECT_THROW(unsealed.validate(), std::invalid_argument);
}

TEST(InstanceTest, ArrivalOrderIsStable) {
  auto inst = make_instance({
      {5.0, dag::single_node(1)},
      {1.0, dag::single_node(1)},
      {5.0, dag::single_node(1)},
      {0.0, dag::single_node(1)},
  });
  EXPECT_EQ(inst.arrival_order(), (std::vector<core::JobId>{3, 1, 0, 2}));
}

TEST(InstanceTest, ValidInstancePasses) {
  auto inst = testutil::random_instance(55, 10, 20.0);
  EXPECT_NO_THROW(inst.validate());
}

}  // namespace
}  // namespace pjsched
