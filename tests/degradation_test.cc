// Tests for machine degradation (core::MachineConfig::degradation): the
// event engine honors processor/speed changes exactly at event times; the
// step engine models fail-stop worker loss (lowest indices survive, in-
// flight work is lost and recovered via stealing) and rejects speed
// changes.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/dag/builders.h"
#include "src/sched/fifo.h"
#include "src/sim/step_engine.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

using testutil::make_instance;

core::ScheduleResult run_fifo(const core::Instance& inst,
                              const core::MachineConfig& machine) {
  sched::FifoScheduler fifo;
  return fifo.run(inst, machine);
}

core::ScheduleResult run_ws(const core::Instance& inst,
                            const core::MachineConfig& machine,
                            unsigned k = 0, std::uint64_t seed = 1) {
  sim::StepEngineOptions opt;
  opt.machine = machine;
  opt.steal_k = k;
  opt.seed = seed;
  return sim::run_step_engine(inst, opt);
}

TEST(EventEngineDegradationTest, ProcessorLossSerializesRemainingWork) {
  // Two 4-unit jobs on m = 2 run in parallel until t = 2, when the machine
  // drops to one processor.  FIFO finishes job 0's remaining 2 units by
  // t = 4, then job 1's remaining 2 units by t = 6.
  auto inst = make_instance(
      {{0.0, dag::single_node(4)}, {0.0, dag::single_node(4)}});
  const auto res = run_fifo(inst, {2, 1.0, {{2.0, 1, 1.0}}});
  EXPECT_DOUBLE_EQ(res.completion[0], 4.0);
  EXPECT_DOUBLE_EQ(res.completion[1], 6.0);
  EXPECT_DOUBLE_EQ(res.max_flow, 6.0);
}

TEST(EventEngineDegradationTest, SpeedDropScalesRemainingWork) {
  // 4 units on m = 1: 2 done by t = 2 at speed 1; the remaining 2 at
  // speed 0.5 take 4 more time units -> completion at 6.
  auto inst = make_instance({{0.0, dag::single_node(4)}});
  const auto res = run_fifo(inst, {1, 1.0, {{2.0, 1, 0.5}}});
  EXPECT_DOUBLE_EQ(res.completion[0], 6.0);
}

TEST(EventEngineDegradationTest, RecoveryRestoresParallelism) {
  // Two 4-unit jobs on m = 1; at t = 2 a second processor comes online.
  // FIFO: job 0 runs 0..4; job 1 runs 2..6 on the recovered processor.
  auto inst = make_instance(
      {{0.0, dag::single_node(4)}, {0.0, dag::single_node(4)}});
  const auto res = run_fifo(inst, {1, 1.0, {{2.0, 2, 1.0}}});
  EXPECT_DOUBLE_EQ(res.completion[0], 4.0);
  EXPECT_DOUBLE_EQ(res.completion[1], 6.0);
}

TEST(EventEngineDegradationTest, EventBeforeFirstArrivalApplies) {
  // Degrading to m = 1 before the job arrives: the job just runs on the
  // single remaining processor.
  auto inst = make_instance({{5.0, dag::parallel_for_dag(2, 3)}});
  // root(1) + 2 bodies(3) serialized on m=1 (6) + join(1) = 8 units.
  const auto res = run_fifo(inst, {4, 1.0, {{1.0, 1, 1.0}}});
  EXPECT_DOUBLE_EQ(res.completion[0], 13.0);
}

TEST(EventEngineDegradationTest, ZeroProcessorEventThrows) {
  auto inst = make_instance({{0.0, dag::single_node(1)}});
  EXPECT_THROW(run_fifo(inst, {2, 1.0, {{1.0, 0, 1.0}}}),
               std::invalid_argument);
}

TEST(EventEngineDegradationTest, NegativeEventTimeThrows) {
  auto inst = make_instance({{0.0, dag::single_node(1)}});
  EXPECT_THROW(run_fifo(inst, {2, 1.0, {{-1.0, 1, 1.0}}}),
               std::invalid_argument);
}

TEST(StepEngineDegradationTest, AllJobsCompleteUnderWorkerLoss) {
  auto inst = make_instance({{0.0, dag::parallel_for_dag(8, 5)},
                             {1.0, dag::parallel_for_dag(8, 5)},
                             {2.0, dag::single_node(10)}});
  const auto res = run_ws(inst, {4, 1.0, {{3.0, 2, 1.0}}});
  for (std::size_t j = 0; j < inst.size(); ++j) {
    EXPECT_GT(res.completion[j], 0.0) << "job " << j;
    EXPECT_GE(res.flow[j], 0.0) << "job " << j;
  }
  // Losing half the workers mid-run cannot beat the healthy machine.
  const auto healthy = run_ws(inst, {4, 1.0, {}});
  EXPECT_GE(res.makespan, healthy.makespan);
}

TEST(StepEngineDegradationTest, DeterministicUnderSameSeed) {
  auto inst = make_instance({{0.0, dag::parallel_for_dag(6, 4)},
                             {1.0, dag::parallel_for_dag(6, 4)}});
  const core::MachineConfig machine{4, 1.0, {{2.0, 1, 1.0}}};
  const auto a = run_ws(inst, machine, /*k=*/2, /*seed=*/7);
  const auto b = run_ws(inst, machine, /*k=*/2, /*seed=*/7);
  ASSERT_EQ(a.completion.size(), b.completion.size());
  for (std::size_t j = 0; j < a.completion.size(); ++j)
    EXPECT_DOUBLE_EQ(a.completion[j], b.completion[j]) << "job " << j;
}

TEST(StepEngineDegradationTest, RecoveryAddsWorkersBack) {
  // Lose a worker then regain it; everything still completes, and the
  // makespan is no worse than with the loss made permanent.
  auto inst = make_instance({{0.0, dag::parallel_for_dag(8, 6)},
                             {0.0, dag::parallel_for_dag(8, 6)}});
  const auto recovered =
      run_ws(inst, {2, 1.0, {{3.0, 1, 1.0}, {10.0, 2, 1.0}}});
  const auto permanent = run_ws(inst, {2, 1.0, {{3.0, 1, 1.0}}});
  for (std::size_t j = 0; j < inst.size(); ++j)
    EXPECT_GT(recovered.completion[j], 0.0) << "job " << j;
  EXPECT_LE(recovered.makespan, permanent.makespan);
}

TEST(StepEngineDegradationTest, SpeedChangeEventThrows) {
  auto inst = make_instance({{0.0, dag::single_node(3)}});
  EXPECT_THROW(run_ws(inst, {2, 1.0, {{1.0, 1, 0.5}}}),
               std::invalid_argument);
}

TEST(StepEngineDegradationTest, NoEventsMatchesLegacyBehavior) {
  // An empty degradation list must leave the engine bit-identical to the
  // pre-degradation code path (the golden tests rely on this; here we at
  // least pin determinism of the no-event config against itself).
  auto inst = make_instance({{0.0, dag::parallel_for_dag(4, 3)},
                             {1.0, dag::parallel_for_dag(4, 3)}});
  const auto a = run_ws(inst, {3, 1.0, {}}, /*k=*/1, /*seed=*/5);
  const auto b = run_ws(inst, {3, 1.0, {}}, /*k=*/1, /*seed=*/5);
  for (std::size_t j = 0; j < a.completion.size(); ++j)
    EXPECT_DOUBLE_EQ(a.completion[j], b.completion[j]);
}

}  // namespace
}  // namespace pjsched
