// Tests for the exact optimal max-flow search (src/sched/exact_opt.h) and
// the sandwich property it certifies:  lower bounds <= OPT <= schedulers.
#include "src/sched/exact_opt.h"

#include <gtest/gtest.h>

#include "src/core/bounds.h"
#include "src/core/run.h"
#include "src/dag/builders.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

using testutil::make_instance;

TEST(ExactOptTest, SingleChainIsItsSpan) {
  auto inst = make_instance({{0.0, dag::serial_chain(5, 1)}});
  EXPECT_DOUBLE_EQ(sched::exact_optimal_max_flow(inst, 3).max_flow, 5.0);
}

TEST(ExactOptTest, IndependentNodesPackPerfectly) {
  // 6 unit nodes on m = 3: two steps.
  dag::Dag d;
  for (int i = 0; i < 6; ++i) d.add_node(1);
  d.seal();
  auto inst = make_instance({{0.0, std::move(d)}});
  EXPECT_DOUBLE_EQ(sched::exact_optimal_max_flow(inst, 3).max_flow, 2.0);
}

TEST(ExactOptTest, SectionFiveStarIsTwo) {
  // The Lemma 5.1 argument: OPT finishes star(c) in exactly 2 when c <= m.
  auto inst = make_instance({{0.0, dag::star(4)}});
  EXPECT_DOUBLE_EQ(sched::exact_optimal_max_flow(inst, 4).max_flow, 2.0);
  // With m = 2 the children take 2 steps: flow 3.
  EXPECT_DOUBLE_EQ(sched::exact_optimal_max_flow(inst, 2).max_flow, 3.0);
}

TEST(ExactOptTest, OptCanBeatFifoByReordering) {
  // Two jobs at t=0: a 3-chain and a 1-node job, m = 1.  FIFO (by index)
  // runs the chain first: flows {3, 4}.  OPT runs the short job first:
  // flows {4, 1} -> max 4 either way... sharpen: chain length 4 and two
  // short jobs makes the ordering matter for max flow.
  auto inst = make_instance({
      {0.0, dag::serial_chain(2, 1)},
      {1.0, dag::single_node(1)},
  });
  const double opt = sched::exact_optimal_max_flow(inst, 1).max_flow;
  // OPT: chain at [0,2), short at [2,3): flows {2, 2} -> 2.
  EXPECT_DOUBLE_EQ(opt, 2.0);
}

TEST(ExactOptTest, SandwichOnRandomTinyInstances) {
  // bounds <= exact OPT <= every scheduler, across random unit-work
  // instances.
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    sim::Rng rng(seed * 13 + 1);
    core::Instance inst;
    const int jobs = 2 + static_cast<int>(rng.uniform_int(2));
    for (int j = 0; j < jobs; ++j) {
      dag::RandomLayeredOptions opt;
      opt.layers = 1 + static_cast<std::size_t>(rng.uniform_int(3));
      opt.min_width = 1;
      opt.max_width = 2;
      opt.min_work = 1;
      opt.max_work = 1;  // unit-work nodes
      opt.edge_probability = 0.5;
      core::JobSpec spec;
      spec.arrival = static_cast<double>(rng.uniform_int(4));
      spec.graph = dag::random_layered(rng, opt);
      inst.jobs.push_back(std::move(spec));
    }
    const unsigned m = 1 + static_cast<unsigned>(rng.uniform_int(3));

    const double opt = sched::exact_optimal_max_flow(inst, m).max_flow;

    EXPECT_GE(opt + 1e-9, core::combined_lower_bound(inst, m))
        << "seed " << seed;
    for (const char* name : {"fifo", "bwf", "sjf", "lifo", "equi",
                             "admit-first"}) {
      auto spec = core::parse_scheduler(name);
      spec.seed = seed + 1;
      const auto res = core::run_scheduler(inst, spec, {m, 1.0});
      EXPECT_GE(res.max_flow + 1e-9, opt)
          << name << " beat exact OPT at seed " << seed;
    }
  }
}

TEST(ExactOptTest, RestrictionsEnforced) {
  // Non-unit work.
  auto heavy = make_instance({{0.0, dag::single_node(3)}});
  EXPECT_THROW(sched::exact_optimal_max_flow(heavy, 1),
               std::invalid_argument);
  // Fractional arrival.
  auto frac = make_instance({{0.5, dag::single_node(1)}});
  EXPECT_THROW(sched::exact_optimal_max_flow(frac, 1), std::invalid_argument);
  // Too many nodes.
  auto big = make_instance({{0.0, dag::star(30)}});
  EXPECT_THROW(sched::exact_optimal_max_flow(big, 2), std::invalid_argument);
  // Zero processors.
  auto ok = make_instance({{0.0, dag::single_node(1)}});
  EXPECT_THROW(sched::exact_optimal_max_flow(ok, 0), std::invalid_argument);
}

TEST(ExactOptTest, StateLimitGuards) {
  auto inst = make_instance({
      {0.0, dag::star(10)},
      {0.0, dag::star(10)},
  });
  EXPECT_THROW(sched::exact_optimal_max_flow(inst, 3, /*state_limit=*/5),
               std::runtime_error);
}

TEST(ExactOptTest, LateArrivalCountsFromRelease) {
  auto inst = make_instance({{7.0, dag::single_node(1)}});
  EXPECT_DOUBLE_EQ(sched::exact_optimal_max_flow(inst, 1).max_flow, 1.0);
}

}  // namespace
}  // namespace pjsched
