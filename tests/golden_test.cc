// Golden regression tests: exact end-to-end numbers for fixed seeds.
// Every quantity here is fully determined by (seed, config) — the step
// engine is integer-exact and the event engine's double arithmetic is
// deterministic — so any drift signals a behavioural change in the
// generator or an engine, not noise.  Update deliberately when semantics
// change on purpose.
#include <gtest/gtest.h>

#include "src/core/run.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"

namespace pjsched {
namespace {

core::Instance golden_instance() {
  const auto dist = workload::bing_distribution();
  workload::GeneratorConfig gen;
  gen.num_jobs = 100;
  gen.qps = 800.0;
  gen.units_per_ms = 100.0;
  gen.grains = 32;
  gen.seed = 5;
  return workload::generate_instance(dist, gen);
}

TEST(GoldenTest, InstanceShapeIsPinned) {
  const auto inst = golden_instance();
  ASSERT_EQ(inst.size(), 100u);
  EXPECT_EQ(inst.total_work(), 88500u);
  EXPECT_EQ(inst.max_work(), 9500u);
  EXPECT_EQ(inst.max_critical_path(), 299u);
}

TEST(GoldenTest, StepEngineValuesArePinned) {
  const auto inst = golden_instance();
  const core::MachineConfig machine{8, 1.0};

  auto admit = core::parse_scheduler("admit-first");
  admit.seed = 5;
  const auto a = core::run_scheduler(inst, admit, machine);
  // Step-engine completions are integer step counts; the flow subtracts
  // the generator's real-valued arrival, pinned here to full precision.
  // Values re-pinned when the within-step shuffle became lazy (drawn only
  // on steps where some worker is idle or completing, so the macro-step
  // fast path and the exact per-step mode share one RNG stream); the
  // schedule is equally valid, just a different sample.
  EXPECT_DOUBLE_EQ(a.max_flow, 3203.0810171959474);
  EXPECT_EQ(a.stats.steal_attempts, 9004u);
  EXPECT_EQ(a.stats.admissions, 100u);
  EXPECT_EQ(a.stats.work_steps, inst.total_work());

  auto steal16 = core::parse_scheduler("steal-16-first");
  steal16.seed = 5;
  const auto s = core::run_scheduler(inst, steal16, machine);
  EXPECT_DOUBLE_EQ(s.max_flow, 1974.0810171959474);
  EXPECT_EQ(s.stats.steal_attempts, 13396u);
}

TEST(GoldenTest, EventEngineValuesArePinned) {
  const auto inst = golden_instance();
  const core::MachineConfig machine{8, 1.0};
  const auto f =
      core::run_scheduler(inst, core::parse_scheduler("fifo"), machine);
  // Re-pinned when completion handling switched to swap-and-pop on the
  // available set: nodes of a job now run in a different (equally valid)
  // order, shifting which node a scarce processor picks first.
  EXPECT_NEAR(f.max_flow, 1528.3297834668392, 1e-6);
  EXPECT_NEAR(f.makespan, 15618.692065210333, 1e-6);
  const auto o =
      core::run_scheduler(inst, core::parse_scheduler("opt"), machine);
  EXPECT_NEAR(o.max_flow, 1516.3297834668392, 1e-6);
}

}  // namespace
}  // namespace pjsched
