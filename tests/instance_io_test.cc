// Tests for instance (de)serialization (src/workload/instance_io.h).
#include "src/workload/instance_io.h"

#include <gtest/gtest.h>

#include "src/dag/builders.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"
#include "tests/test_util.h"

namespace pjsched::workload {
namespace {

TEST(InstanceIoTest, RoundTripHandInstance) {
  auto inst = testutil::make_weighted_instance({
      {0.0, 1.0, dag::serial_chain(3, 2)},
      {1.5, 4.0, dag::parallel_for_dag(4, 5)},
      {7.25, 0.5, dag::star(3)},
  });
  const auto back = instance_from_text(instance_to_text(inst));
  ASSERT_EQ(back.size(), inst.size());
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.jobs[i].arrival, inst.jobs[i].arrival);
    EXPECT_DOUBLE_EQ(back.jobs[i].weight, inst.jobs[i].weight);
    EXPECT_EQ(back.jobs[i].graph.total_work(), inst.jobs[i].graph.total_work());
    EXPECT_EQ(back.jobs[i].graph.critical_path(),
              inst.jobs[i].graph.critical_path());
    EXPECT_EQ(back.jobs[i].graph.edge_count(), inst.jobs[i].graph.edge_count());
  }
}

TEST(InstanceIoTest, RoundTripGeneratedInstance) {
  const auto dist = bing_distribution();
  GeneratorConfig cfg;
  cfg.num_jobs = 40;
  cfg.weight_classes = {1.0, 8.0};
  const auto inst = generate_instance(dist, cfg);
  const auto back = instance_from_text(instance_to_text(inst));
  ASSERT_EQ(back.size(), inst.size());
  EXPECT_EQ(back.total_work(), inst.total_work());
  EXPECT_EQ(back.max_critical_path(), inst.max_critical_path());
}

TEST(InstanceIoTest, CommentsTolerated) {
  const std::string text =
      "# saved workload\n"
      "instance 1\n"
      "job 2.5 3.0   # arrival, weight\n"
      "dag 1 0\n"
      "node 0 7\n"
      "end\n"
      "endinstance\n";
  const auto inst = instance_from_text(text);
  ASSERT_EQ(inst.size(), 1u);
  EXPECT_DOUBLE_EQ(inst.jobs[0].arrival, 2.5);
  EXPECT_DOUBLE_EQ(inst.jobs[0].weight, 3.0);
  EXPECT_EQ(inst.jobs[0].graph.total_work(), 7u);
}

TEST(InstanceIoTest, MalformedInputsRejected) {
  EXPECT_THROW(instance_from_text(""), std::invalid_argument);
  EXPECT_THROW(instance_from_text("instanse 1"), std::invalid_argument);
  EXPECT_THROW(instance_from_text("instance 0\nendinstance\n"),
               std::invalid_argument);
  EXPECT_THROW(instance_from_text("instance 1\nendinstance\n"),
               std::invalid_argument);  // missing job
  EXPECT_THROW(
      instance_from_text("instance 1\njob x 1\ndag 1 0\nnode 0 1\nend\n"
                         "endinstance\n"),
      std::invalid_argument);  // bad arrival
  EXPECT_THROW(
      instance_from_text("instance 1\njob 0 1\ndag 1 0\nnode 0 1\nend\n"),
      std::invalid_argument);  // missing endinstance
  EXPECT_THROW(
      instance_from_text("instance 1\njob -1 1\ndag 1 0\nnode 0 1\nend\n"
                         "endinstance\n"),
      std::invalid_argument);  // negative arrival fails validate()
}

TEST(InstanceIoTest, UnsealedOrInvalidInstanceRejectedOnWrite) {
  core::Instance bad;
  EXPECT_THROW(instance_to_text(bad), std::invalid_argument);
}

}  // namespace
}  // namespace pjsched::workload
