// Parameterized fuzz sweeps: random fork-join programs and random layered
// DAGs are pushed through serialization round trips, composition, the
// schedulers, and the audit — broad randomized coverage across module
// boundaries.
#include <gtest/gtest.h>

#include "src/core/run.h"
#include "src/dag/analysis.h"
#include "src/dag/builders.h"
#include "src/dag/compose.h"
#include "src/dag/serialize.h"
#include "src/metrics/audit.h"
#include "src/workload/instance_io.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

class ForkJoinFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ForkJoinFuzz, StructureAndSerializationRoundTrip) {
  sim::Rng rng(GetParam() * 101 + 7);
  dag::RandomForkJoinOptions opt;
  opt.max_depth = 1 + static_cast<std::size_t>(rng.uniform_int(4));
  opt.fork_probability = rng.uniform_double();
  const dag::Dag d = dag::random_fork_join(rng, opt);

  // Series-parallel programs have exactly one source and one sink.
  const auto stats = dag::compute_stats(d);
  EXPECT_EQ(stats.sources, 1u);
  EXPECT_EQ(stats.sinks, 1u);
  EXPECT_EQ(d.critical_path(), dag::compute_critical_path(d));

  // Text round trip preserves everything that matters.
  const dag::Dag back = dag::from_text(dag::to_text(d));
  EXPECT_EQ(back.node_count(), d.node_count());
  EXPECT_EQ(back.edge_count(), d.edge_count());
  EXPECT_EQ(back.total_work(), d.total_work());
  EXPECT_EQ(back.critical_path(), d.critical_path());
}

TEST_P(ForkJoinFuzz, ScheduledAndAuditedAcrossEngines) {
  sim::Rng rng(GetParam() * 59 + 3);
  core::Instance inst;
  const int jobs = 2 + static_cast<int>(rng.uniform_int(4));
  for (int j = 0; j < jobs; ++j) {
    dag::RandomForkJoinOptions opt;
    opt.max_depth = 1 + static_cast<std::size_t>(rng.uniform_int(3));
    core::JobSpec spec;
    spec.arrival = 10.0 * rng.uniform_double();
    spec.weight = 1.0 + static_cast<double>(rng.uniform_int(4));
    spec.graph = dag::random_fork_join(rng, opt);
    inst.jobs.push_back(std::move(spec));
  }

  // Instance round trip.
  const auto back = workload::instance_from_text(
      workload::instance_to_text(inst));
  EXPECT_EQ(back.total_work(), inst.total_work());

  const unsigned m = 1 + static_cast<unsigned>(rng.uniform_int(4));
  for (const char* name : {"fifo", "bwf", "equi", "admit-first",
                           "steal-2-first-bwf"}) {
    auto spec = core::parse_scheduler(name);
    spec.seed = GetParam() + 1;
    sim::Trace trace;
    const auto res = core::run_scheduler(inst, spec, {m, 1.0}, &trace);
    const auto report = metrics::audit_schedule(inst, {m, 1.0}, trace, res);
    ASSERT_TRUE(report.ok) << name << "\n" << report.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForkJoinFuzz,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST(ForkJoinBuilderTest, BadOptionsRejected) {
  sim::Rng rng(1);
  dag::RandomForkJoinOptions opt;
  opt.max_depth = 0;
  EXPECT_THROW(dag::random_fork_join(rng, opt), std::invalid_argument);
  opt = {};
  opt.min_fanout = 0;
  EXPECT_THROW(dag::random_fork_join(rng, opt), std::invalid_argument);
  opt = {};
  opt.min_work = 5;
  opt.max_work = 2;
  EXPECT_THROW(dag::random_fork_join(rng, opt), std::invalid_argument);
  opt = {};
  opt.fork_probability = 2.0;
  EXPECT_THROW(dag::random_fork_join(rng, opt), std::invalid_argument);
}

TEST(ForkJoinBuilderTest, ZeroForkProbabilityIsSingleLeaf) {
  sim::Rng rng(2);
  dag::RandomForkJoinOptions opt;
  opt.fork_probability = 0.0;
  const dag::Dag d = dag::random_fork_join(rng, opt);
  EXPECT_EQ(d.node_count(), 1u);
}

}  // namespace
}  // namespace pjsched
