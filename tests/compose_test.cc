// Tests for DAG composition combinators (src/dag/compose.h).
#include "src/dag/compose.h"

#include <gtest/gtest.h>

#include "src/dag/analysis.h"
#include "src/dag/builders.h"

namespace pjsched::dag {
namespace {

TEST(SequenceTest, WorkAndSpanAdd) {
  const Dag a = parallel_for_dag(3, 4);  // W = 14, P = 6
  const Dag b = serial_chain(2, 5);      // W = 10, P = 10
  const Dag s = sequence(a, b);
  EXPECT_EQ(s.node_count(), a.node_count() + b.node_count());
  EXPECT_EQ(s.total_work(), a.total_work() + b.total_work());
  EXPECT_EQ(s.critical_path(), a.critical_path() + b.critical_path());
  // One source (a's root), one sink (b's tail).
  const DagStats stats = compute_stats(s);
  EXPECT_EQ(stats.sources, 1u);
  EXPECT_EQ(stats.sinks, 1u);
}

TEST(SequenceTest, MultiSinkToMultiSource) {
  // a = two independent nodes (2 sinks), b = two independent nodes
  // (2 sources): sequence adds 4 cross edges.
  Dag a;
  a.add_node(1);
  a.add_node(2);
  a.seal();
  Dag b;
  b.add_node(3);
  b.add_node(4);
  b.seal();
  const Dag s = sequence(a, b);
  EXPECT_EQ(s.edge_count(), 4u);
  EXPECT_EQ(s.critical_path(), 2u + 4u);
}

TEST(ParallelComposeTest, Independence) {
  const Dag a = serial_chain(3, 2);  // P = 6
  const Dag b = serial_chain(2, 5);  // P = 10
  const Dag p = parallel_compose(a, b);
  EXPECT_EQ(p.total_work(), a.total_work() + b.total_work());
  EXPECT_EQ(p.critical_path(), 10u);
  EXPECT_EQ(p.edge_count(), a.edge_count() + b.edge_count());
  const DagStats stats = compute_stats(p);
  EXPECT_EQ(stats.sources, 2u);
  EXPECT_EQ(stats.sinks, 2u);
}

TEST(ComposeTest, UnsealedInputRejected) {
  Dag a;
  a.add_node(1);
  const Dag b = single_node(1);
  EXPECT_THROW(sequence(a, b), std::invalid_argument);
  EXPECT_THROW(parallel_compose(b, a), std::invalid_argument);
}

TEST(MapReduceTest, Shape) {
  const Dag d = map_reduce_dag(4, 10, 2, 6);
  EXPECT_EQ(d.node_count(), 6u);
  EXPECT_EQ(d.edge_count(), 8u);  // all-to-all shuffle
  EXPECT_EQ(d.total_work(), 4u * 10 + 2u * 6);
  EXPECT_EQ(d.critical_path(), 16u);
  EXPECT_EQ(max_parallelism_asap(d), 4u);  // maps together, then reduces
  EXPECT_THROW(map_reduce_dag(0, 1, 1, 1), std::invalid_argument);
}

TEST(PipelineTest, Shape) {
  const Dag d = pipeline_dag(3, 4, 2);
  EXPECT_EQ(d.node_count(), 12u);
  // Each non-final stage node has 2 successors (self + wrap neighbour).
  EXPECT_EQ(d.edge_count(), 2u * 4u * 2u);
  EXPECT_EQ(d.critical_path(), 6u);  // 3 stages of work 2
  EXPECT_THROW(pipeline_dag(0, 1, 1), std::invalid_argument);
}

TEST(PipelineTest, WidthOneIsChain) {
  const Dag d = pipeline_dag(5, 1, 3);
  EXPECT_EQ(d.node_count(), 5u);
  EXPECT_EQ(d.edge_count(), 4u);
  EXPECT_EQ(d.critical_path(), 15u);
}

TEST(ComposeTest, NestedComposition) {
  // (parallel_for ; map_reduce) || chain — composes and stays consistent.
  const Dag left = sequence(parallel_for_dag(4, 3), map_reduce_dag(3, 2, 1, 4));
  const Dag all = parallel_compose(left, serial_chain(6, 1));
  EXPECT_EQ(all.total_work(),
            parallel_for_dag(4, 3).total_work() +
                map_reduce_dag(3, 2, 1, 4).total_work() + 6);
  EXPECT_EQ(compute_critical_path(all), all.critical_path());
}

}  // namespace
}  // namespace pjsched::dag
