// Cross-checks the event engine's incremental fast path (virtual work
// clock, completion heap, incremental active set — the default) against the
// per-slice reference mode (EventEngineOptions::exact): completions, flows,
// stats counters, idle-time accounting, and coalesced traces must agree bit
// for bit across FIFO, BWF, the arrival-ordered baselines, equipartition's
// processor caps, degradation timelines, and zero-work / simultaneous-
// completion edge cases.  Dynamic policies (SJF, round-robin) must fall
// back to the reference loop in both modes.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/core/run.h"
#include "src/dag/builders.h"
#include "src/sched/baselines.h"
#include "src/sched/bwf.h"
#include "src/sched/fifo.h"
#include "src/sim/trace.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

using testutil::make_instance;
using testutil::make_weighted_instance;
using testutil::random_instance;

// Runs the scheduler in both engine modes and asserts bitwise-identical
// results.  Returns the fast run so callers can additionally assert the
// fast path actually engaged (stats.fast_decisions > 0) where expected.
core::ScheduleResult expect_modes_identical(sched::Scheduler& fast_s,
                                            sched::Scheduler& exact_s,
                                            const core::Instance& inst,
                                            const core::MachineConfig& mc) {
  sim::Trace fast_trace, exact_trace;
  const auto fast = fast_s.run(inst, mc, &fast_trace);
  const auto exact = exact_s.run(inst, mc, &exact_trace);

  EXPECT_EQ(fast.completion, exact.completion);
  EXPECT_EQ(fast.flow, exact.flow);
  EXPECT_EQ(fast.max_flow, exact.max_flow);
  EXPECT_EQ(fast.max_weighted_flow, exact.max_weighted_flow);
  EXPECT_EQ(fast.mean_flow, exact.mean_flow);
  EXPECT_EQ(fast.makespan, exact.makespan);
  EXPECT_EQ(fast.argmax_flow, exact.argmax_flow);
  EXPECT_EQ(fast.stats.decision_points, exact.stats.decision_points);
  EXPECT_EQ(fast.stats.idle_processor_time, exact.stats.idle_processor_time);
  EXPECT_EQ(exact.stats.fast_decisions, 0u);

  EXPECT_EQ(fast_trace.intervals().size(), exact_trace.intervals().size());
  const std::size_t n_iv = std::min(fast_trace.intervals().size(),
                                    exact_trace.intervals().size());
  for (std::size_t i = 0; i < n_iv; ++i) {
    const auto& a = fast_trace.intervals()[i];
    const auto& b = exact_trace.intervals()[i];
    EXPECT_EQ(a.job, b.job) << "interval " << i;
    EXPECT_EQ(a.node, b.node) << "interval " << i;
    EXPECT_EQ(a.proc, b.proc) << "interval " << i;
    EXPECT_EQ(a.start, b.start) << "interval " << i;
    EXPECT_EQ(a.end, b.end) << "interval " << i;
  }
  return fast;
}

template <typename S>
core::ScheduleResult check(const core::Instance& inst,
                           const core::MachineConfig& mc) {
  S fast_s(false);
  S exact_s(true);
  return expect_modes_identical(fast_s, exact_s, inst, mc);
}

TEST(EventFastPathTest, FifoRandomInstances) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto inst = random_instance(seed, 30, 60.0);
    for (unsigned m : {4u, 16u}) {
      const auto fast = check<sched::FifoScheduler>(inst, {m, 1.0});
      EXPECT_GT(fast.stats.fast_decisions, 0u) << "seed=" << seed;
      EXPECT_EQ(fast.stats.fast_decisions, fast.stats.decision_points);
    }
  }
}

TEST(EventFastPathTest, BwfWeightTiesAndDuplicates) {
  // Duplicate weights force the -weight key's tie-break through the arrival
  // base order, the subtle half of the static-order contract.
  std::vector<std::tuple<core::Time, double, dag::Dag>> specs;
  for (std::size_t i = 0; i < 12; ++i)
    specs.emplace_back(3.5 * static_cast<double>(i % 5),
                       static_cast<double>(1 + i % 3),
                       dag::parallel_for_dag(4, 50 + 17 * (i % 4)));
  const auto inst = make_weighted_instance(std::move(specs));
  const auto fast = check<sched::BwfScheduler>(inst, {3, 1.0});
  EXPECT_GT(fast.stats.fast_decisions, 0u);
}

TEST(EventFastPathTest, LifoRandomInstances) {
  const auto inst = random_instance(7, 25, 40.0);
  const auto fast = check<sched::LifoScheduler>(inst, {4, 1.0});
  EXPECT_GT(fast.stats.fast_decisions, 0u);
}

TEST(EventFastPathTest, EquiProcessorCaps) {
  // Equipartition exercises processor_cap and the cap-free leftover pass at
  // every decision point on both paths.
  for (std::uint64_t seed : {11ull, 12ull}) {
    const auto inst = random_instance(seed, 20, 30.0);
    const auto fast = check<sched::EquiScheduler>(inst, {8, 1.0});
    EXPECT_GT(fast.stats.fast_decisions, 0u);
  }
}

TEST(EventFastPathTest, DynamicPoliciesKeepReferenceLoop) {
  const auto inst = random_instance(21, 15, 30.0);
  const auto sjf = check<sched::SjfScheduler>(inst, {4, 1.0});
  EXPECT_EQ(sjf.stats.fast_decisions, 0u);
  const auto rr = check<sched::RoundRobinScheduler>(inst, {4, 1.0});
  EXPECT_EQ(rr.stats.fast_decisions, 0u);
}

TEST(EventFastPathTest, DegradationTimeline) {
  // Processor losses and speed changes mid-run: completion coordinates live
  // on the work axis, so speed changes must not disturb heap entries.
  const auto inst = random_instance(31, 25, 80.0);
  core::MachineConfig mc{8, 1.0, {{20.0, 3, 0.5}, {55.0, 8, 2.0}}};
  const auto fifo = check<sched::FifoScheduler>(inst, mc);
  EXPECT_GT(fifo.stats.fast_decisions, 0u);
  const auto equi = check<sched::EquiScheduler>(inst, mc);
  EXPECT_GT(equi.stats.fast_decisions, 0u);
}

TEST(EventFastPathTest, SpeedAugmentedFractionalArrivals) {
  // Non-dyadic arrivals and s > 1 stress the shared floating-point
  // formulas; any divergence between the paths shows up bitwise.
  auto inst = make_instance({
      {0.0, dag::parallel_for_dag(6, 37)},
      {1.3, dag::serial_chain(5, 11)},
      {2.7, dag::divide_and_conquer(3, 9)},
      {2.7, dag::star(12)},
      {9.9, dag::parallel_for_dag(3, 53)},
  });
  const auto fast = check<sched::FifoScheduler>(inst, {4, 1.25});
  EXPECT_GT(fast.stats.fast_decisions, 0u);
}

TEST(EventFastPathTest, SimultaneousCompletions) {
  // Identical jobs arriving together: many equal completion coordinates in
  // the heap at once; the fast path must process them in processor-slot
  // order exactly like the reference scan.
  std::vector<std::pair<core::Time, dag::Dag>> specs;
  for (int i = 0; i < 6; ++i)
    specs.emplace_back(0.0, dag::parallel_for_dag(4, 100));
  const auto inst = make_instance(std::move(specs));
  const auto fast = check<sched::FifoScheduler>(inst, {8, 1.0});
  EXPECT_GT(fast.stats.fast_decisions, 0u);
}

TEST(EventFastPathTest, ZeroDtSlices) {
  // Arrivals placed exactly at completion instants (unit-work nodes at
  // integer times) force zero-dt decision slices; neither path may emit
  // zero-length trace intervals or lose span contiguity across them.
  auto inst = make_instance({
      {0.0, dag::single_node(4)},
      {4.0, dag::serial_chain(2, 1)},   // arrives as job 0 completes
      {5.0, dag::single_node(1)},       // arrives as chain node 1 completes
      {6.0, dag::parallel_for_dag(2, 1)},
  });
  check<sched::FifoScheduler>(inst, {2, 1.0});
  check<sched::EquiScheduler>(inst, {2, 1.0});
}

TEST(EventFastPathTest, IdleGaps) {
  // Large arrival gaps force idle jumps between bursts; idle-processor-time
  // accounting must agree bitwise.
  auto inst = make_instance({
      {0.0, dag::parallel_for_dag(4, 300)},
      {10000.0, dag::serial_chain(3, 200)},
      {20000.0, dag::parallel_for_dag(8, 100)},
  });
  const auto fast = check<sched::FifoScheduler>(inst, {4, 1.0});
  EXPECT_GT(fast.stats.fast_decisions, 0u);
}

TEST(EventFastPathTest, SingleProcessorHighContention) {
  // m = 1 maximizes preemption churn: only the top-priority job runs, so
  // every arrival preempts and every preemption materializes remaining
  // work on the heap path.
  const auto inst = random_instance(41, 20, 15.0);
  check<sched::FifoScheduler>(inst, {1, 1.0});
  check<sched::LifoScheduler>(inst, {1, 1.0});
}

TEST(EventFastPathTest, ExactSuffixParsesAndMatches) {
  const auto inst = random_instance(51, 12, 20.0);
  const core::MachineConfig mc{4, 1.0};
  for (const char* base : {"fifo", "bwf", "lifo", "equi"}) {
    const auto spec = core::parse_scheduler(base);
    auto exact_spec = core::parse_scheduler(std::string(base) + "-exact");
    EXPECT_TRUE(exact_spec.exact_engine);
    EXPECT_EQ(exact_spec.kind, spec.kind);
    const auto fast = core::run_scheduler(inst, spec, mc);
    const auto exact = core::run_scheduler(inst, exact_spec, mc);
    EXPECT_EQ(fast.completion, exact.completion) << base;
    EXPECT_EQ(fast.max_flow, exact.max_flow) << base;
    EXPECT_EQ(exact.stats.fast_decisions, 0u) << base;
  }
  EXPECT_THROW(core::parse_scheduler("steal-4-first-exact"),
               std::invalid_argument);
  EXPECT_THROW(core::parse_scheduler("opt-exact"), std::invalid_argument);
}

}  // namespace
}  // namespace pjsched
