// Tests for streaming instance sources (src/core/job_source.h,
// src/workload/streaming_source.h) and the recycling job arena
// (src/sim/job_arena.h).
#include "src/core/job_source.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "src/core/types.h"
#include "src/dag/builders.h"
#include "src/sim/job_arena.h"
#include "src/workload/generator.h"
#include "src/workload/streaming_source.h"

namespace pjsched {
namespace {

bool same_dag(const dag::Dag& a, const dag::Dag& b) {
  if (a.node_count() != b.node_count()) return false;
  if (a.total_work() != b.total_work()) return false;
  if (a.critical_path() != b.critical_path()) return false;
  for (dag::NodeId v = 0; v < a.node_count(); ++v) {
    if (a.work_of(v) != b.work_of(v)) return false;
    if (a.out_degree(v) != b.out_degree(v)) return false;
  }
  return true;
}

core::Instance out_of_order_instance() {
  core::Instance inst;
  const double arrivals[] = {30.0, 0.0, 20.0, 10.0};
  for (double at : arrivals) {
    core::JobSpec job;
    job.arrival = at;
    job.weight = 1.0 + at;
    job.graph = dag::single_node(5);
    inst.jobs.push_back(std::move(job));
  }
  return inst;
}

TEST(InstanceSourceTest, YieldsInArrivalOrderWithInstanceIds) {
  const core::Instance inst = out_of_order_instance();
  core::InstanceSource source(inst);
  EXPECT_EQ(source.size(), 4u);

  std::vector<core::JobId> ids;
  double prev = -1.0;
  while (!source.done()) {
    EXPECT_EQ(source.next_arrival(), source.next_arrival());  // peek is stable
    const core::StreamedJob job = source.take();
    EXPECT_GE(job.arrival, prev);
    prev = job.arrival;
    // Borrowed DAGs point into the instance — no copy.
    ASSERT_NE(job.borrowed, nullptr);
    EXPECT_EQ(job.borrowed, &inst.jobs[job.id].graph);
    EXPECT_EQ(job.arrival, inst.jobs[job.id].arrival);
    EXPECT_EQ(job.weight, inst.jobs[job.id].weight);
    ids.push_back(job.id);
  }
  EXPECT_EQ(ids, (std::vector<core::JobId>{1, 3, 2, 0}));
}

TEST(MaterializeTest, RoundTripsAnInstance) {
  const core::Instance inst = out_of_order_instance();
  core::InstanceSource source(inst);
  const core::Instance copy = core::materialize(source);
  ASSERT_EQ(copy.size(), inst.size());
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_EQ(copy.jobs[i].arrival, inst.jobs[i].arrival);
    EXPECT_EQ(copy.jobs[i].weight, inst.jobs[i].weight);
    EXPECT_TRUE(same_dag(copy.jobs[i].graph, inst.jobs[i].graph));
  }
}

// The tentpole bit-identity property at the source level: the streamed
// generator must draw exactly the jobs generate_instance materializes —
// same arrivals, weights, and DAG shapes, in the same order.
TEST(GeneratedJobSourceTest, BitIdenticalToGenerateInstance) {
  const auto dist = workload::bing_distribution();
  workload::GeneratorConfig cfg;
  cfg.num_jobs = 500;
  cfg.qps = 800.0;
  cfg.units_per_ms = 100.0;
  cfg.seed = 5;
  cfg.weight_classes = {1.0, 2.0, 8.0};

  const core::Instance inst = workload::generate_instance(dist, cfg);
  workload::GeneratedJobSource source(dist, cfg);
  ASSERT_EQ(source.size(), cfg.num_jobs);
  for (std::size_t i = 0; i < cfg.num_jobs; ++i) {
    ASSERT_FALSE(source.done());
    const core::StreamedJob job = source.take();
    EXPECT_EQ(job.id, i);
    EXPECT_EQ(job.arrival, inst.jobs[i].arrival) << "job " << i;
    EXPECT_EQ(job.weight, inst.jobs[i].weight) << "job " << i;
    EXPECT_EQ(job.borrowed, nullptr);
    EXPECT_TRUE(same_dag(job.graph, inst.jobs[i].graph)) << "job " << i;
  }
  EXPECT_TRUE(source.done());
}

TEST(ArrivalListJobSourceTest, BitIdenticalToGenerateInstanceWithArrivals) {
  const auto dist = workload::finance_distribution();
  workload::GeneratorConfig cfg;
  cfg.units_per_ms = 10.0;
  cfg.seed = 17;
  cfg.weight_classes = {1.0, 4.0};
  const std::vector<double> arrivals_ms = {0.0, 0.5, 0.5, 3.25, 10.0};

  const core::Instance inst =
      workload::generate_instance_with_arrivals(dist, cfg, arrivals_ms);
  workload::ArrivalListJobSource source(dist, cfg, arrivals_ms);
  ASSERT_EQ(source.size(), arrivals_ms.size());
  for (std::size_t i = 0; i < arrivals_ms.size(); ++i) {
    const core::StreamedJob job = source.take();
    EXPECT_EQ(job.id, i);
    EXPECT_EQ(job.arrival, inst.jobs[i].arrival);
    EXPECT_EQ(job.weight, inst.jobs[i].weight);
    EXPECT_TRUE(same_dag(job.graph, inst.jobs[i].graph));
  }
  EXPECT_TRUE(source.done());
}

TEST(GeneratedJobSourceTest, RejectsBadConfig) {
  const auto dist = workload::bing_distribution();
  workload::GeneratorConfig cfg;
  cfg.num_jobs = 0;
  EXPECT_THROW(workload::GeneratedJobSource(dist, cfg), std::invalid_argument);
  cfg.num_jobs = 1;
  cfg.units_per_ms = 0.0;
  EXPECT_THROW(workload::GeneratedJobSource(dist, cfg), std::invalid_argument);
  cfg.units_per_ms = 10.0;
  cfg.weight_classes.clear();
  EXPECT_THROW(workload::GeneratedJobSource(dist, cfg), std::invalid_argument);
  EXPECT_THROW(workload::ArrivalListJobSource(dist, cfg, {1.0}),
               std::invalid_argument);
  cfg.weight_classes = {1.0};
  EXPECT_THROW(workload::ArrivalListJobSource(dist, cfg, {}),
               std::invalid_argument);
}

// --- JobArena -------------------------------------------------------------

core::StreamedJob make_job(core::JobId id, double arrival,
                           double weight = 1.0) {
  core::StreamedJob job;
  job.id = id;
  job.arrival = arrival;
  job.weight = weight;
  job.graph = dag::single_node(3);
  return job;
}

TEST(JobArenaTest, RecyclesSlotsLifo) {
  sim::JobArena arena;
  const auto s0 = arena.acquire(make_job(0, 0.0));
  const auto s1 = arena.acquire(make_job(1, 1.0));
  EXPECT_EQ(arena.size(), 2u);
  EXPECT_EQ(arena.live(), 2u);
  EXPECT_EQ(arena.slot_of(0), s0);
  EXPECT_EQ(arena.slot_of(1), s1);

  arena.retire(s0);
  EXPECT_EQ(arena.live(), 1u);
  EXPECT_THROW(arena.slot_of(0), std::logic_error);
  // The freed slot is reused before any new slot is created.
  const auto s2 = arena.acquire(make_job(2, 2.0));
  EXPECT_EQ(s2, s0);
  EXPECT_EQ(arena.size(), 2u);
  EXPECT_EQ(arena[s2].id, 2u);
  EXPECT_EQ(arena.peak_live(), 2u);
}

TEST(JobArenaTest, BoundedSlotsUnderSteadyChurn) {
  sim::JobArena arena;
  // 10k jobs, never more than 3 live: the arena must not grow past 3 slots.
  std::vector<std::uint32_t> live;
  for (core::JobId id = 0; id < 10000; ++id) {
    live.push_back(arena.acquire(make_job(id, static_cast<double>(id))));
    if (live.size() == 3) {
      arena.retire(live.front());
      live.erase(live.begin());
    }
  }
  EXPECT_EQ(arena.size(), 3u);
  EXPECT_EQ(arena.peak_live(), 3u);
}

TEST(JobArenaTest, ValidatesJobs) {
  sim::JobArena arena;
  // Unsealed DAG.
  core::StreamedJob bad;
  bad.id = 0;
  bad.arrival = 0.0;
  dag::Dag g;
  g.add_node(1);
  bad.graph = std::move(g);  // never sealed
  EXPECT_THROW(arena.acquire(std::move(bad)), std::invalid_argument);

  EXPECT_THROW(arena.acquire(make_job(1, -1.0)), std::invalid_argument);
  EXPECT_THROW(arena.acquire(make_job(2, 0.0, 0.0)), std::invalid_argument);

  arena.acquire(make_job(3, 5.0));
  // Out-of-order arrival after a successful acquisition.
  EXPECT_THROW(arena.acquire(make_job(4, 4.0)), std::invalid_argument);
  // Duplicate live id.
  EXPECT_THROW(arena.acquire(make_job(3, 6.0)), std::invalid_argument);
}

}  // namespace
}  // namespace pjsched
