// Tests for the Figure-3 work distributions (src/workload/distributions.h).
#include "src/workload/distributions.h"

#include <gtest/gtest.h>

#include <map>

namespace pjsched::workload {
namespace {

TEST(DiscreteDistTest, NormalizesProbabilities) {
  DiscreteWorkDistribution d("d", {{1.0, 2.0}, {3.0, 2.0}});
  ASSERT_EQ(d.pmf().size(), 2u);
  EXPECT_DOUBLE_EQ(d.pmf()[0], 0.5);
  EXPECT_DOUBLE_EQ(d.pmf()[1], 0.5);
  EXPECT_DOUBLE_EQ(d.mean_ms(), 2.0);
}

TEST(DiscreteDistTest, SamplesOnlyBinValues) {
  DiscreteWorkDistribution d("d", {{2.0, 0.3}, {5.0, 0.5}, {9.0, 0.2}});
  sim::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = d.sample_ms(rng);
    EXPECT_TRUE(x == 2.0 || x == 5.0 || x == 9.0);
  }
}

TEST(DiscreteDistTest, EmpiricalFrequenciesMatchPmf) {
  DiscreteWorkDistribution d("d", {{2.0, 0.3}, {5.0, 0.5}, {9.0, 0.2}});
  sim::Rng rng(2);
  std::map<double, int> counts;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) ++counts[d.sample_ms(rng)];
  EXPECT_NEAR(counts[2.0] / static_cast<double>(kN), 0.3, 0.01);
  EXPECT_NEAR(counts[5.0] / static_cast<double>(kN), 0.5, 0.01);
  EXPECT_NEAR(counts[9.0] / static_cast<double>(kN), 0.2, 0.01);
}

TEST(DiscreteDistTest, BadBinsRejected) {
  EXPECT_THROW(DiscreteWorkDistribution("d", {}), std::invalid_argument);
  EXPECT_THROW(DiscreteWorkDistribution("d", {{0.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(DiscreteWorkDistribution("d", {{1.0, 0.0}}),
               std::invalid_argument);
}

TEST(BingDistTest, ShapeMatchesFigure3a) {
  const auto d = bing_distribution();
  EXPECT_EQ(d.name(), "bing");
  // Head-heavy: the 5 ms bin carries the most probability.
  EXPECT_GT(d.pmf()[0], 0.5);
  // Long tail out to 205 ms.
  EXPECT_DOUBLE_EQ(d.bins().back().work_ms, 205.0);
  EXPECT_LT(d.pmf().back(), 0.01);
  // Calibrated near the paper's operating point (util ~50-70% at
  // QPS 800-1200 on m = 16): mean in the 8-14 ms window.
  EXPECT_GT(d.mean_ms(), 8.0);
  EXPECT_LT(d.mean_ms(), 14.0);
}

TEST(FinanceDistTest, ShapeMatchesFigure3b) {
  const auto d = finance_distribution();
  EXPECT_EQ(d.name(), "finance");
  EXPECT_DOUBLE_EQ(d.bins().front().work_ms, 4.0);
  EXPECT_DOUBLE_EQ(d.bins().back().work_ms, 52.0);
  // Bimodal: a local rise around 36 ms after the dip at 24-28 ms.
  const auto& bins = d.bins();
  double p24 = 0.0, p36 = 0.0;
  for (std::size_t i = 0; i < bins.size(); ++i) {
    if (bins[i].work_ms == 24.0) p24 = d.pmf()[i];
    if (bins[i].work_ms == 36.0) p36 = d.pmf()[i];
  }
  EXPECT_GT(p36, p24);
  EXPECT_GT(d.mean_ms(), 8.0);
  EXPECT_LT(d.mean_ms(), 14.0);
}

TEST(LognormalDistTest, DefaultCalibration) {
  const auto d = default_lognormal_distribution();
  EXPECT_EQ(d.name(), "lognormal");
  EXPECT_NEAR(d.mean_ms(), 10.0, 1e-9);
  sim::Rng rng(3);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = d.sample_ms(rng);
    ASSERT_GE(x, 1.0);
    ASSERT_LE(x, 300.0);
    sum += x;
  }
  // Truncation clips a little tail mass; stay within 10%.
  EXPECT_NEAR(sum / kN, 10.0, 1.0);
}

TEST(LognormalDistTest, BadParamsRejected) {
  EXPECT_THROW(LognormalWorkDistribution(0.0, 0.0, 1.0, 10.0),
               std::invalid_argument);
  EXPECT_THROW(LognormalWorkDistribution(0.0, 1.0, 5.0, 2.0),
               std::invalid_argument);
}

TEST(UtilizationTest, PaperOperatingPoints) {
  // On m = 16, the Figure-2 QPS sweeps must land in roughly the paper's
  // low/medium/high utilization bands and stay strictly stable (< 1).
  const auto bing = bing_distribution();
  const double lo = utilization(bing, 800, 16);
  const double hi = utilization(bing, 1200, 16);
  EXPECT_GT(lo, 0.35);
  EXPECT_LT(lo, 0.7);
  EXPECT_GT(hi, lo);
  EXPECT_LT(hi, 1.0);
  EXPECT_THROW(utilization(bing, 800, 0), std::invalid_argument);
}

}  // namespace
}  // namespace pjsched::workload
