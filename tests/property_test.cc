// Cross-scheduler property tests: on randomized instances, every scheduler
// must produce an audited-legal schedule whose flow times respect the
// information-theoretic lower bounds, and the simulated-OPT bound must
// lower-bound every feasible schedule's max flow (the paper's Section 6
// comparison methodology).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "src/core/bounds.h"
#include "src/core/run.h"
#include "src/metrics/audit.h"
#include "src/sim/trace.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

struct Cell {
  std::uint64_t seed;
  unsigned m;
  double speed;
};

class SchedulerProperty : public ::testing::TestWithParam<Cell> {};

std::vector<core::SchedulerSpec> all_specs(std::uint64_t seed) {
  using K = core::SchedulerKind;
  std::vector<core::SchedulerSpec> specs;
  for (K kind : {K::kFifo, K::kBwf, K::kLifo, K::kSjf, K::kRoundRobin,
                 K::kAdmitFirst}) {
    core::SchedulerSpec s;
    s.kind = kind;
    s.seed = seed;
    specs.push_back(s);
  }
  core::SchedulerSpec sk;
  sk.kind = K::kStealKFirst;
  sk.steal_k = 8;
  sk.seed = seed;
  specs.push_back(sk);
  return specs;
}

TEST_P(SchedulerProperty, LegalScheduleAndBoundsRespected) {
  const Cell cell = GetParam();
  auto inst = testutil::random_instance(cell.seed, 25, 40.0);
  const core::MachineConfig machine{cell.m, cell.speed};

  for (const auto& spec : all_specs(cell.seed)) {
    sim::Trace trace;
    const auto res = core::run_scheduler(inst, spec, machine, &trace);

    // (1) The schedule is machine-model legal.
    const auto report = metrics::audit_schedule(inst, machine, trace, res);
    ASSERT_TRUE(report.ok)
        << res.scheduler_name << " produced an illegal schedule:\n"
        << report.to_string();

    // (2) Per-job physics: flow >= span/s and >= work/(m*s).
    for (std::size_t i = 0; i < inst.jobs.size(); ++i) {
      const auto& g = inst.jobs[i].graph;
      EXPECT_GE(res.flow[i] + 1e-6,
                static_cast<double>(g.critical_path()) / cell.speed)
          << res.scheduler_name << " job " << i;
      EXPECT_GE(res.flow[i] + 1e-6,
                static_cast<double>(g.total_work()) / (cell.m * cell.speed))
          << res.scheduler_name << " job " << i;
    }

    // (3) At speed 1, no feasible scheduler beats the OPT lower bound.
    if (cell.speed == 1.0) {
      EXPECT_GE(res.max_flow + 1e-6,
                core::opt_sim_lower_bound(inst, cell.m))
          << res.scheduler_name;
      EXPECT_GE(res.max_flow + 1e-6, core::span_lower_bound(inst))
          << res.scheduler_name;
    }

    // (4) Bookkeeping consistency.
    EXPECT_EQ(res.completion.size(), inst.size());
    EXPECT_GE(res.max_weighted_flow, res.max_flow - 1e-12);  // weights all 1
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cells, SchedulerProperty,
    ::testing::Values(Cell{1, 1, 1.0}, Cell{2, 2, 1.0}, Cell{3, 3, 1.0},
                      Cell{4, 4, 1.0}, Cell{5, 8, 1.0}, Cell{6, 2, 1.5},
                      Cell{7, 4, 2.0}, Cell{8, 3, 1.25}, Cell{9, 16, 1.0},
                      Cell{10, 5, 3.0}));

// The weighted objective: BWF at speed (1+eps) should land within a modest
// multiple of the weighted lower bound on random weighted instances
// (Theorem 7.1's guarantee is 3/eps^2 vs true OPT; the lower bound is
// looser, so assert only sanity and the bound direction).
class WeightedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeightedProperty, BwfRespectsWeightedBound) {
  sim::Rng wrng(GetParam() * 7 + 1);
  auto inst = testutil::random_instance(GetParam(), 20, 30.0);
  for (auto& job : inst.jobs)
    job.weight = std::pow(2.0, static_cast<double>(wrng.uniform_int(5)));

  core::SchedulerSpec spec;
  spec.kind = core::SchedulerKind::kBwf;
  const auto res = core::run_scheduler(inst, spec, {4, 1.0});
  EXPECT_GE(res.max_weighted_flow + 1e-6,
            core::weighted_combined_lower_bound(inst, 4));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

// Work stealing determinism/robustness sweep across (k, seed).
struct WsCell {
  unsigned k;
  std::uint64_t seed;
};
class WorkStealingProperty : public ::testing::TestWithParam<WsCell> {};

TEST_P(WorkStealingProperty, AuditedAndConserving) {
  const WsCell cell = GetParam();
  auto inst = testutil::random_instance(cell.seed + 100, 20, 30.0);
  core::SchedulerSpec spec;
  spec.kind = core::SchedulerKind::kStealKFirst;
  spec.steal_k = cell.k;
  spec.seed = cell.seed;
  const core::MachineConfig machine{4, 1.0};

  sim::Trace trace;
  const auto res = core::run_scheduler(inst, spec, machine, &trace);
  const auto report = metrics::audit_schedule(inst, machine, trace, res);
  ASSERT_TRUE(report.ok) << report.to_string();
  EXPECT_EQ(res.stats.work_steps, inst.total_work());
  // Admissions == number of jobs (each admitted exactly once).
  EXPECT_EQ(res.stats.admissions, inst.size());
  // Failed steals = attempts - successes.
  EXPECT_GE(res.stats.steal_attempts, res.stats.successful_steals);
}

INSTANTIATE_TEST_SUITE_P(
    Cells, WorkStealingProperty,
    ::testing::Values(WsCell{0, 1}, WsCell{0, 2}, WsCell{1, 3}, WsCell{2, 4},
                      WsCell{4, 5}, WsCell{8, 6}, WsCell{16, 7},
                      WsCell{32, 8}));

}  // namespace
}  // namespace pjsched
