// Defensive-parsing tests for the feed wire format (src/service/record.*):
// the parser must accept exactly the documented grammar and turn every
// other byte sequence into kMalformed with a diagnostic — never a crash,
// never a half-parsed record.
#include "src/service/record.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/service/stream_feed.h"

namespace pjsched::service {
namespace {

JobRecord must_parse(const std::string& line) {
  JobRecord rec;
  std::string error;
  EXPECT_EQ(parse_record(line, &rec, &error), ParseStatus::kRecord)
      << line << " -> " << error;
  return rec;
}

void must_reject(const std::string& line) {
  JobRecord rec;
  std::string error;
  EXPECT_EQ(parse_record(line, &rec, &error), ParseStatus::kMalformed) << line;
  EXPECT_FALSE(error.empty()) << line;
}

TEST(ServiceRecord, ParsesMinimalAndFullRecords) {
  const JobRecord minimal = must_parse("job acme 4");
  EXPECT_EQ(minimal.tenant, "acme");
  EXPECT_DOUBLE_EQ(minimal.work, 4.0);
  EXPECT_EQ(minimal.fanout, 1u);
  EXPECT_DOUBLE_EQ(minimal.weight, 1.0);
  EXPECT_EQ(minimal.deadline_ms, 0u);

  const JobRecord full =
      must_parse("job t-1.a_b 2.5 fanout=8 weight=0.25 deadline_ms=900 id=7");
  EXPECT_EQ(full.tenant, "t-1.a_b");
  EXPECT_DOUBLE_EQ(full.work, 2.5);
  EXPECT_EQ(full.fanout, 8u);
  EXPECT_DOUBLE_EQ(full.weight, 0.25);
  EXPECT_EQ(full.deadline_ms, 900u);
  EXPECT_EQ(full.client_id, 7u);
}

TEST(ServiceRecord, BlankLinesAndCommentsAreEmpty) {
  JobRecord rec;
  std::string error;
  EXPECT_EQ(parse_record("", &rec, &error), ParseStatus::kEmpty);
  EXPECT_EQ(parse_record("   \t ", &rec, &error), ParseStatus::kEmpty);
  EXPECT_EQ(parse_record("# a comment", &rec, &error), ParseStatus::kEmpty);
  // A trailing comment after a record is fine.
  EXPECT_EQ(parse_record("job a 1 # why", &rec, &error), ParseStatus::kRecord);
}

TEST(ServiceRecord, HostileInputIsMalformedNeverFatal) {
  must_reject("jib a 1");                      // unknown verb
  must_reject("job");                          // missing fields
  must_reject("job a");                        // missing work
  must_reject("job a 0");                      // zero work
  must_reject("job a -3");                     // negative work
  must_reject("job a 1e400");                  // overflow -> inf
  must_reject("job a nan");                    // non-finite
  must_reject("job a 1x");                     // trailing junk in number
  must_reject("job a/etc 1");                  // bad tenant charset
  must_reject("job " + std::string(kMaxTenantBytes + 1, 'a') + " 1");
  must_reject("job a 1 fanout=0");             // fanout below range
  must_reject("job a 1 fanout=99999999");      // fanout above range
  must_reject("job a 1 fanout=-2");            // not a uint
  must_reject("job a 1 weight=0");             // weight must be positive
  must_reject("job a 1 deadline_ms=0");        // deadline_ms must be >= 1
  must_reject("job a 1 deadline_ms=99999999999");  // above one hour
  must_reject("job a 1 nice=true");            // unknown key
  must_reject("job a 1 =v");                   // empty key
  must_reject("job a 1 k=");                   // empty value
  must_reject("job a 1 orphan");               // bare token
  must_reject(std::string(kMaxLineBytes + 1, 'a'));  // oversize line
}

TEST(ServiceRecord, WorkBoundsAreInclusive) {
  EXPECT_DOUBLE_EQ(must_parse("job a 1e9").work, kMaxWork);
  must_reject("job a 1.0000001e9");
}

TEST(ServiceRecord, FormatRoundTrips) {
  JobRecord rec;
  rec.tenant = "roundtrip";
  rec.work = 12.5;
  rec.fanout = 4;
  rec.weight = 2.0;
  rec.deadline_ms = 250;
  rec.client_id = 99;
  const JobRecord back = must_parse(format_record(rec));
  EXPECT_EQ(back.tenant, rec.tenant);
  EXPECT_DOUBLE_EQ(back.work, rec.work);
  EXPECT_EQ(back.fanout, rec.fanout);
  EXPECT_DOUBLE_EQ(back.weight, rec.weight);
  EXPECT_EQ(back.deadline_ms, rec.deadline_ms);
  EXPECT_EQ(back.client_id, rec.client_id);

  // Defaults are omitted from the wire form.
  EXPECT_EQ(format_record(JobRecord{"t", 1.0, 1, 1.0, 0, 0}), "job t 1");
}

// ---------------------------------------------------------------------------
// Zero-copy batched parsing: parse_batch over an IngestBuffer must classify
// a byte stream identically no matter where the read boundaries fall.

/// One classified feed event, with enough of the payload captured to prove
/// the parse was not just the same status but the same parse.
struct FeedEvent {
  ParseStatus status = ParseStatus::kEmpty;
  std::string tenant;
  double work = 0.0;
  std::uint64_t id = 0;
  std::string sample;  // the offending line (malformed/oversize)

  bool operator==(const FeedEvent& o) const {
    return status == o.status && tenant == o.tenant && work == o.work &&
           id == o.id && sample == o.sample;
  }
};

/// Feeds `corpus` through an IngestBuffer in reads of at most `chunk`
/// bytes, draining parse_batch after every read — exactly the io-shard
/// loop's structure.
std::vector<FeedEvent> feed_chunked(std::string_view corpus,
                                    std::size_t chunk) {
  IngestBuffer buf;
  std::vector<ParsedRecord> entries(8);
  std::vector<FeedEvent> events;
  std::size_t off = 0;
  while (off < corpus.size()) {
    const std::size_t n =
        std::min({chunk, corpus.size() - off, buf.tail_capacity()});
    std::memcpy(buf.tail(), corpus.data() + off, n);
    buf.commit(n);
    off += n;
    for (;;) {
      const BatchParse bp = buf.parse({entries.data(), entries.size()});
      if (bp.produced == 0 && bp.consumed == 0) break;
      for (std::size_t i = 0; i < bp.produced; ++i) {
        FeedEvent e;
        e.status = entries[i].status;
        if (entries[i].status == ParseStatus::kRecord) {
          e.tenant = entries[i].record.tenant;
          e.work = entries[i].record.work;
          e.id = entries[i].record.client_id;
        } else {
          e.sample = std::string(entries[i].line);
        }
        events.push_back(std::move(e));
      }
    }
  }
  EXPECT_FALSE(buf.has_partial()) << "chunk=" << chunk;
  return events;
}

TEST(ServiceRecordBatch, EveryReadBoundarySplitClassifiesIdentically) {
  // The full hostile corpus — every malformed case the per-line tests pin,
  // interleaved with good records, comments, commands, an in-buffer
  // oversize line, and a line that overflows the whole read buffer — so
  // every parser state can be cut at every read boundary.
  const std::vector<std::string> lines = {
      "job acme 4",
      "jib a 1",
      "job",
      "job a",
      "job a 0",
      "job a -3",
      "# a comment",
      "job t-1.a_b 2.5 fanout=8 weight=0.25 deadline_ms=900 id=7",
      "job a 1e400",
      "job a nan",
      "job a 1x",
      "job a/etc 1",
      "job " + std::string(kMaxTenantBytes + 1, 'a') + " 1",
      "",
      "   \t ",
      "job a 1 fanout=0",
      "job a 1 fanout=99999999",
      "job a 1 fanout=-2",
      "job a 1 weight=0",
      "job a 1 deadline_ms=0",
      "job a 1 deadline_ms=99999999999",
      "metrics",
      "job a 1 nice=true",
      "job a 1 =v",
      "job a 1 k=",
      "job a 1 orphan",
      "metrics now",
      std::string(kMaxLineBytes + 1, 'a'),      // oversize, complete in-buffer
      "job after1 1 id=42",                     // resync proof
      std::string(5 * kMaxLineBytes, 'x'),      // overflows the read buffer
      "job after2 2",                           // resync proof
  };
  std::string corpus;
  for (const std::string& l : lines) {
    corpus += l;
    corpus += '\n';
  }

  const std::vector<FeedEvent> reference =
      feed_chunked(corpus, corpus.size());

  // The reference classification itself: 4 records (in order), 21
  // malformed, 2 oversize, 1 command; empties and comments emit nothing.
  std::size_t records = 0, malformed = 0, oversize = 0, commands = 0;
  for (const FeedEvent& e : reference) {
    switch (e.status) {
      case ParseStatus::kRecord: ++records; break;
      case ParseStatus::kMalformed: ++malformed; break;
      case ParseStatus::kOversize: ++oversize; break;
      case ParseStatus::kCommand: ++commands; break;
      case ParseStatus::kEmpty: FAIL() << "kEmpty must never be emitted";
    }
  }
  EXPECT_EQ(records, 4u);
  EXPECT_EQ(malformed, 21u);
  EXPECT_EQ(oversize, 2u);
  EXPECT_EQ(commands, 1u);
  ASSERT_GE(reference.size(), 3u);
  EXPECT_EQ(reference.front().tenant, "acme");
  EXPECT_DOUBLE_EQ(reference.front().work, 4.0);

  // Every read-boundary split — byte-at-a-time through page-ish reads and
  // the buffer-capacity edge cases — produces the identical event stream.
  const std::size_t chunks[] = {1,    2,    3,    5,    7,    13,   64,
                                256,  1024, 4095, 4096, 4097, 8192, 16383,
                                16384, 16385};
  for (const std::size_t chunk : chunks) {
    SCOPED_TRACE(chunk);
    const std::vector<FeedEvent> got = feed_chunked(corpus, chunk);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i)
      EXPECT_TRUE(got[i] == reference[i]) << "event " << i;
  }
}

TEST(ServiceRecordBatch, OverflowEmitsExactlyOneOversizeEvent) {
  // A line that dwarfs the read buffer: ONE kOversize event at the
  // overflow, silence until the resync newline, then a clean record.
  const std::string corpus =
      std::string(20 * kMaxLineBytes, 'z') + "\njob ok 1\n";
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{4096},
                                  std::size_t{100000}}) {
    SCOPED_TRACE(chunk);
    const std::vector<FeedEvent> events = feed_chunked(corpus, chunk);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].status, ParseStatus::kOversize);
    // The sample is the truncated prefix, never the whole flood.
    EXPECT_LE(events[0].sample.size(), kMaxLineBytes);
    EXPECT_EQ(events[1].status, ParseStatus::kRecord);
    EXPECT_EQ(events[1].tenant, "ok");
  }
}

TEST(ServiceRecordBatch, PartialLineStaysPendingAcrossReads) {
  IngestBuffer buf;
  std::vector<ParsedRecord> entries(4);
  const std::string_view half = "job pend";
  std::memcpy(buf.tail(), half.data(), half.size());
  buf.commit(half.size());
  BatchParse bp = buf.parse({entries.data(), entries.size()});
  EXPECT_EQ(bp.produced, 0u);
  EXPECT_TRUE(buf.has_partial());
  EXPECT_EQ(buf.bytes_since_line(), half.size());
  EXPECT_EQ(buf.partial_sample(), half);

  const std::string_view rest = "ing 3\n";
  std::memcpy(buf.tail(), rest.data(), rest.size());
  buf.commit(rest.size());
  bp = buf.parse({entries.data(), entries.size()});
  ASSERT_EQ(bp.produced, 1u);
  EXPECT_EQ(entries[0].status, ParseStatus::kRecord);
  EXPECT_EQ(entries[0].record.tenant, "pending");
  EXPECT_DOUBLE_EQ(entries[0].record.work, 3.0);
  EXPECT_FALSE(buf.has_partial());
  EXPECT_EQ(buf.bytes_since_line(), 0u);
}

}  // namespace
}  // namespace pjsched::service
