// Defensive-parsing tests for the feed wire format (src/service/record.*):
// the parser must accept exactly the documented grammar and turn every
// other byte sequence into kMalformed with a diagnostic — never a crash,
// never a half-parsed record.
#include "src/service/record.h"

#include <gtest/gtest.h>

#include <string>

namespace pjsched::service {
namespace {

JobRecord must_parse(const std::string& line) {
  JobRecord rec;
  std::string error;
  EXPECT_EQ(parse_record(line, &rec, &error), ParseStatus::kRecord)
      << line << " -> " << error;
  return rec;
}

void must_reject(const std::string& line) {
  JobRecord rec;
  std::string error;
  EXPECT_EQ(parse_record(line, &rec, &error), ParseStatus::kMalformed) << line;
  EXPECT_FALSE(error.empty()) << line;
}

TEST(ServiceRecord, ParsesMinimalAndFullRecords) {
  const JobRecord minimal = must_parse("job acme 4");
  EXPECT_EQ(minimal.tenant, "acme");
  EXPECT_DOUBLE_EQ(minimal.work, 4.0);
  EXPECT_EQ(minimal.fanout, 1u);
  EXPECT_DOUBLE_EQ(minimal.weight, 1.0);
  EXPECT_EQ(minimal.deadline_ms, 0u);

  const JobRecord full =
      must_parse("job t-1.a_b 2.5 fanout=8 weight=0.25 deadline_ms=900 id=7");
  EXPECT_EQ(full.tenant, "t-1.a_b");
  EXPECT_DOUBLE_EQ(full.work, 2.5);
  EXPECT_EQ(full.fanout, 8u);
  EXPECT_DOUBLE_EQ(full.weight, 0.25);
  EXPECT_EQ(full.deadline_ms, 900u);
  EXPECT_EQ(full.client_id, 7u);
}

TEST(ServiceRecord, BlankLinesAndCommentsAreEmpty) {
  JobRecord rec;
  std::string error;
  EXPECT_EQ(parse_record("", &rec, &error), ParseStatus::kEmpty);
  EXPECT_EQ(parse_record("   \t ", &rec, &error), ParseStatus::kEmpty);
  EXPECT_EQ(parse_record("# a comment", &rec, &error), ParseStatus::kEmpty);
  // A trailing comment after a record is fine.
  EXPECT_EQ(parse_record("job a 1 # why", &rec, &error), ParseStatus::kRecord);
}

TEST(ServiceRecord, HostileInputIsMalformedNeverFatal) {
  must_reject("jib a 1");                      // unknown verb
  must_reject("job");                          // missing fields
  must_reject("job a");                        // missing work
  must_reject("job a 0");                      // zero work
  must_reject("job a -3");                     // negative work
  must_reject("job a 1e400");                  // overflow -> inf
  must_reject("job a nan");                    // non-finite
  must_reject("job a 1x");                     // trailing junk in number
  must_reject("job a/etc 1");                  // bad tenant charset
  must_reject("job " + std::string(kMaxTenantBytes + 1, 'a') + " 1");
  must_reject("job a 1 fanout=0");             // fanout below range
  must_reject("job a 1 fanout=99999999");      // fanout above range
  must_reject("job a 1 fanout=-2");            // not a uint
  must_reject("job a 1 weight=0");             // weight must be positive
  must_reject("job a 1 deadline_ms=0");        // deadline_ms must be >= 1
  must_reject("job a 1 deadline_ms=99999999999");  // above one hour
  must_reject("job a 1 nice=true");            // unknown key
  must_reject("job a 1 =v");                   // empty key
  must_reject("job a 1 k=");                   // empty value
  must_reject("job a 1 orphan");               // bare token
  must_reject(std::string(kMaxLineBytes + 1, 'a'));  // oversize line
}

TEST(ServiceRecord, WorkBoundsAreInclusive) {
  EXPECT_DOUBLE_EQ(must_parse("job a 1e9").work, kMaxWork);
  must_reject("job a 1.0000001e9");
}

TEST(ServiceRecord, FormatRoundTrips) {
  JobRecord rec;
  rec.tenant = "roundtrip";
  rec.work = 12.5;
  rec.fanout = 4;
  rec.weight = 2.0;
  rec.deadline_ms = 250;
  rec.client_id = 99;
  const JobRecord back = must_parse(format_record(rec));
  EXPECT_EQ(back.tenant, rec.tenant);
  EXPECT_DOUBLE_EQ(back.work, rec.work);
  EXPECT_EQ(back.fanout, rec.fanout);
  EXPECT_DOUBLE_EQ(back.weight, rec.weight);
  EXPECT_EQ(back.deadline_ms, rec.deadline_ms);
  EXPECT_EQ(back.client_id, rec.client_id);

  // Defaults are omitted from the wire form.
  EXPECT_EQ(format_record(JobRecord{"t", 1.0, 1, 1.0, 0, 0}), "job t 1");
}

}  // namespace
}  // namespace pjsched::service
