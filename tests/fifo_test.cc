// FIFO scheduler behaviour tests (paper Section 3), including an empirical
// shape check of Theorem 3.1 on adversarial backlog instances.
#include "src/sched/fifo.h"

#include <gtest/gtest.h>

#include "src/core/bounds.h"
#include "src/dag/builders.h"
#include "src/sched/opt_bound.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

using testutil::make_instance;

TEST(FifoTest, Name) {
  sched::FifoScheduler fifo;
  EXPECT_EQ(fifo.name(), "fifo");
  auto inst = make_instance({{0.0, dag::single_node(1)}});
  EXPECT_EQ(fifo.run(inst, {1, 1.0}).scheduler_name, "fifo");
}

TEST(FifoTest, EarlierJobGetsProcessorsFirst) {
  // Both jobs want 2 processors; only 2 exist.  FIFO runs job 0's grains
  // to completion before job 1's, even though job 1 is shorter.
  auto inst = make_instance({
      {0.0, dag::parallel_for_dag(2, 10)},
      {1.0, dag::parallel_for_dag(2, 1)},
  });
  sched::FifoScheduler fifo;
  const auto res = fifo.run(inst, {2, 1.0});
  // Job 0: 1 + 10 + 1 = 12 (never short of processors).
  EXPECT_DOUBLE_EQ(res.completion[0], 12.0);
  // Job 1 arrives at t=1, exactly when job 0's grains claim both
  // processors; its root waits until t=11, then root/bodies/join take
  // [11,12), [12,13), [13,14).
  EXPECT_DOUBLE_EQ(res.completion[1], 14.0);
}

TEST(FifoTest, NoStarvationUnderBacklog) {
  // 8 equal jobs at time 0 on m=2: FIFO drains them in arrival order.
  std::vector<std::pair<core::Time, dag::Dag>> jobs;
  for (int i = 0; i < 8; ++i) jobs.emplace_back(0.0, dag::single_node(4));
  auto inst = make_instance(std::move(jobs));
  sched::FifoScheduler fifo;
  const auto res = fifo.run(inst, {2, 1.0});
  // Two jobs finish every 4 units.
  EXPECT_DOUBLE_EQ(res.completion[0], 4.0);
  EXPECT_DOUBLE_EQ(res.completion[1], 4.0);
  EXPECT_DOUBLE_EQ(res.completion[6], 16.0);
  EXPECT_DOUBLE_EQ(res.completion[7], 16.0);
  EXPECT_DOUBLE_EQ(res.max_flow, 16.0);
}

TEST(FifoTest, MaxFlowAtLeastOptBound) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto inst = testutil::random_instance(seed, 40, 60.0);
    sched::FifoScheduler fifo;
    sched::OptLowerBound opt;
    const auto f = fifo.run(inst, {3, 1.0});
    const auto o = opt.run(inst, {3, 1.0});
    EXPECT_GE(f.max_flow + 1e-9, o.max_flow);
    EXPECT_GE(f.max_flow + 1e-9, core::combined_lower_bound(inst, 3));
  }
}

// Empirical Theorem 3.1 shape: with (1+eps) speed, FIFO's max flow divided
// by the OPT lower bound stays modest as backlog grows, and extra speed
// only helps.  (The theorem guarantees ratio <= 3/eps against true OPT; we
// check against the lower bound, which can only make the ratio larger, on
// instances where the bound is tight — fully parallelizable jobs.)
TEST(FifoTest, SpeedAugmentationShrinksBacklogRatio) {
  // Overloaded burst of wide jobs, then silence: at speed 1 FIFO merely
  // keeps pace; with 1.5x speed it catches up.
  std::vector<std::pair<core::Time, dag::Dag>> jobs;
  for (int i = 0; i < 30; ++i)
    jobs.emplace_back(static_cast<core::Time>(i),
                      dag::parallel_for_dag(8, 8));
  auto inst = make_instance(std::move(jobs));
  sched::FifoScheduler fifo;
  const auto slow = fifo.run(inst, {4, 1.0});
  const auto fast = fifo.run(inst, {4, 1.5});
  EXPECT_LT(fast.max_flow, slow.max_flow);

  sched::OptLowerBound opt;
  const auto o = opt.run(inst, {4, 1.0});
  // With 1.5 speed (eps = 0.5) the theorem's 3/eps = 6; this instance is
  // far from the worst case, so expect a comfortably smaller ratio.
  EXPECT_LT(fast.max_flow / o.max_flow, 6.0);
}

TEST(FifoTest, HighParallelismJobDoesNotBlockQueue) {
  // A wide job takes all processors briefly; the following narrow job's
  // flow time stays bounded by FIFO's drain order.
  auto inst = make_instance({
      {0.0, dag::parallel_for_dag(16, 4)},
      {1.0, dag::single_node(2)},
  });
  sched::FifoScheduler fifo;
  const auto res = fifo.run(inst, {4, 1.0});
  EXPECT_DOUBLE_EQ(res.completion[0], 1.0 + 16.0 / 4.0 * 4.0 + 1.0);
  // Job 1 waits for a free processor, then runs 2 units.
  EXPECT_GT(res.completion[1], 2.0);
  EXPECT_LE(res.completion[1], res.completion[0] + 3.0);
}

}  // namespace
}  // namespace pjsched
