// Tests for arrival processes (src/workload/arrivals.h).
#include "src/workload/arrivals.h"

#include <gtest/gtest.h>

namespace pjsched::workload {
namespace {

TEST(PoissonArrivalsTest, StrictlyIncreasing) {
  PoissonArrivals arr(100.0, sim::Rng(1));
  double prev = -1.0;
  for (int i = 0; i < 1000; ++i) {
    const double t = arr.next_ms();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(PoissonArrivalsTest, MeanInterArrivalMatchesQps) {
  // QPS 200 -> mean gap 5 ms.
  PoissonArrivals arr(200.0, sim::Rng(2));
  const auto times = take_arrivals(arr, 20000);
  const double mean_gap = times.back() / static_cast<double>(times.size());
  EXPECT_NEAR(mean_gap, 5.0, 0.2);
}

TEST(PoissonArrivalsTest, DeterministicGivenRng) {
  PoissonArrivals a(50.0, sim::Rng(7));
  PoissonArrivals b(50.0, sim::Rng(7));
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.next_ms(), b.next_ms());
}

TEST(PoissonArrivalsTest, BadQpsRejected) {
  EXPECT_THROW(PoissonArrivals(0.0, sim::Rng(1)), std::invalid_argument);
  EXPECT_THROW(PoissonArrivals(-5.0, sim::Rng(1)), std::invalid_argument);
}

TEST(UniformArrivalsTest, ExactSpacing) {
  UniformArrivals arr(4.0);
  EXPECT_DOUBLE_EQ(arr.next_ms(), 0.0);
  EXPECT_DOUBLE_EQ(arr.next_ms(), 4.0);
  EXPECT_DOUBLE_EQ(arr.next_ms(), 8.0);
}

TEST(UniformArrivalsTest, BadPeriodRejected) {
  EXPECT_THROW(UniformArrivals(0.0), std::invalid_argument);
}

TEST(TakeArrivalsTest, Count) {
  UniformArrivals arr(1.0);
  EXPECT_EQ(take_arrivals(arr, 17).size(), 17u);
}

}  // namespace
}  // namespace pjsched::workload
