// Tests for DAG text (de)serialization (src/dag/serialize.h).
#include "src/dag/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/dag/builders.h"

namespace pjsched::dag {
namespace {

TEST(SerializeTest, RoundTripDiamond) {
  Dag d;
  d.add_node(2);
  d.add_node(3);
  d.add_node(5);
  d.add_node(1);
  d.add_edge(0, 1);
  d.add_edge(0, 2);
  d.add_edge(1, 3);
  d.add_edge(2, 3);
  d.seal();

  const Dag back = from_text(to_text(d));
  EXPECT_EQ(back.node_count(), d.node_count());
  EXPECT_EQ(back.edge_count(), d.edge_count());
  EXPECT_EQ(back.total_work(), d.total_work());
  EXPECT_EQ(back.critical_path(), d.critical_path());
  for (NodeId v = 0; v < d.node_count(); ++v)
    EXPECT_EQ(back.work_of(v), d.work_of(v));
}

TEST(SerializeTest, RoundTripBuilders) {
  for (const Dag& d :
       {serial_chain(6, 3), parallel_for_dag(5, 7), star(8),
        divide_and_conquer(2, 4)}) {
    const Dag back = from_text(to_text(d));
    EXPECT_EQ(back.total_work(), d.total_work());
    EXPECT_EQ(back.critical_path(), d.critical_path());
    EXPECT_EQ(back.edge_count(), d.edge_count());
  }
}

TEST(SerializeTest, TextFormatIsStable) {
  const Dag d = serial_chain(2, 9);
  EXPECT_EQ(to_text(d),
            "dag 2 1\n"
            "node 0 9\n"
            "node 1 9\n"
            "edge 0 1\n"
            "end\n");
}

TEST(SerializeTest, CommentsAndWhitespaceTolerated) {
  const std::string text =
      "# a tiny dag\n"
      "dag 2 1   # header\n"
      "  node 0 4\n"
      "node 1 6\n"
      "# the only edge\n"
      "edge 0 1\n"
      "end\n";
  const Dag d = from_text(text);
  EXPECT_EQ(d.node_count(), 2u);
  EXPECT_EQ(d.total_work(), 10u);
}

TEST(SerializeTest, UnsealedWriteRejected) {
  Dag d;
  d.add_node(1);
  std::ostringstream oss;
  EXPECT_THROW(write_text(oss, d), std::invalid_argument);
}

TEST(SerializeTest, MalformedInputsRejected) {
  EXPECT_THROW(from_text(""), std::invalid_argument);
  EXPECT_THROW(from_text("dog 1 0"), std::invalid_argument);
  EXPECT_THROW(from_text("dag x 0"), std::invalid_argument);
  EXPECT_THROW(from_text("dag 1 0\nnode 0 5\n"), std::invalid_argument);  // no end
  EXPECT_THROW(from_text("dag 1 0\nnode 1 5\nend\n"),
               std::invalid_argument);  // wrong id order
  EXPECT_THROW(from_text("dag 2 1\nnode 0 1\nnode 1 1\nedge 0 5\nend\n"),
               std::invalid_argument);  // edge out of range
  EXPECT_THROW(from_text("dag 1 0\nnode 0 0\nend\n"),
               std::invalid_argument);  // zero work
  EXPECT_THROW(
      from_text("dag 2 2\nnode 0 1\nnode 1 1\nedge 0 1\nedge 0 1\nend\n"),
      std::invalid_argument);  // duplicate edge
}

TEST(SerializeTest, CycleInTextRejectedAtSeal) {
  EXPECT_THROW(
      from_text("dag 2 2\nnode 0 1\nnode 1 1\nedge 0 1\nedge 1 0\nend\n"),
      std::invalid_argument);
}

}  // namespace
}  // namespace pjsched::dag
