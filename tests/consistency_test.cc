// Cross-cutting consistency checks between independently computed
// quantities: engine counters vs trace events, exact OPT vs analytic
// special cases, and experiment-driver columns vs direct runs.
#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/sched/exact_opt.h"
#include "src/sched/fifo.h"
#include "src/sched/opt_bound.h"
#include "src/sched/work_stealing.h"
#include "src/sim/step_engine.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

TEST(ConsistencyTest, StepEngineStatsMatchTraceEvents) {
  auto inst = testutil::random_instance(91, 20, 30.0);
  sim::Trace trace;
  sim::StepEngineOptions opt;
  opt.machine = {4, 1.0};
  opt.steal_k = 2;
  opt.seed = 5;
  opt.trace = &trace;
  const auto res = sim::run_step_engine(inst, opt);

  // Every steal attempt and admission recorded in the trace is also
  // counted in the stats, and vice versa.
  EXPECT_EQ(res.stats.steal_attempts, trace.steals().size());
  EXPECT_EQ(res.stats.admissions, trace.admissions().size());
  std::size_t successes = 0;
  for (const auto& ev : trace.steals())
    if (ev.success) ++successes;
  EXPECT_EQ(res.stats.successful_steals, successes);
  // One admission per job.
  EXPECT_EQ(trace.admissions().size(), inst.size());
}

TEST(ConsistencyTest, StepEngineWorkStepsMatchTraceDurations) {
  auto inst = testutil::random_instance(92, 15, 20.0);
  sim::Trace trace;
  sim::StepEngineOptions opt;
  opt.machine = {3, 2.0};
  opt.seed = 7;
  opt.trace = &trace;
  const auto res = sim::run_step_engine(inst, opt);
  double traced_work = 0.0;
  for (const auto& iv : trace.intervals())
    traced_work += (iv.end - iv.start) * 2.0;  // speed 2
  EXPECT_NEAR(traced_work, static_cast<double>(res.stats.work_steps), 1e-6);
}

TEST(ConsistencyTest, ExactOptMatchesOptBoundOnSequentialNonOverlapping) {
  // Gap-separated unit jobs: the fully-parallel relaxation is exact.
  auto inst = testutil::make_instance({
      {0.0, dag::single_node(1)},
      {5.0, dag::single_node(1)},
      {9.0, dag::single_node(1)},
  });
  sched::OptLowerBound bound;
  const double lb = bound.run(inst, {1, 1.0}).max_flow;
  const double opt = sched::exact_optimal_max_flow(inst, 1).max_flow;
  EXPECT_DOUBLE_EQ(lb, opt);
}

TEST(ConsistencyTest, ExactOptMatchesFifoWhenFifoIsOptimal) {
  // Identical unit jobs on one processor: FIFO is exactly optimal.
  std::vector<std::pair<core::Time, dag::Dag>> jobs;
  for (int i = 0; i < 5; ++i)
    jobs.emplace_back(static_cast<core::Time>(i), dag::serial_chain(2, 1));
  auto inst = testutil::make_instance(std::move(jobs));
  sched::FifoScheduler fifo;
  const double f = fifo.run(inst, {1, 1.0}).max_flow;
  const double opt = sched::exact_optimal_max_flow(inst, 1).max_flow;
  EXPECT_DOUBLE_EQ(f, opt);
}

TEST(ConsistencyTest, ExperimentRowsMatchDirectRuns) {
  const auto dist = workload::finance_distribution();
  core::ExperimentConfig cfg;
  cfg.processors = 8;
  cfg.num_jobs = 300;
  cfg.qps_values = {500.0};
  cfg.seed = 9;
  core::SchedulerSpec ws;
  ws.kind = core::SchedulerKind::kStealKFirst;
  ws.steal_k = 4;
  ws.seed = 9;
  cfg.schedulers = {ws};
  const auto rows = core::run_experiment(dist, cfg);
  ASSERT_EQ(rows.size(), 1u);

  // Reproduce the same cell by hand.
  workload::GeneratorConfig gen;
  gen.num_jobs = cfg.num_jobs;
  gen.qps = 500.0;
  gen.units_per_ms = cfg.units_per_ms;
  gen.grains = cfg.grains;
  gen.seed = cfg.seed;
  const auto inst = workload::generate_instance(dist, gen);
  const auto direct = core::run_scheduler(inst, ws, {8, 1.0});
  EXPECT_DOUBLE_EQ(rows[0].max_flow_ms, direct.max_flow / cfg.units_per_ms);
  EXPECT_DOUBLE_EQ(rows[0].mean_flow_ms, direct.mean_flow / cfg.units_per_ms);
  EXPECT_EQ(rows[0].scheduler, "steal-4-first");
}

TEST(ConsistencyTest, SchedulerNameMatchesEngineReportedName) {
  auto inst = testutil::make_instance({{0.0, dag::single_node(2)}});
  for (const char* name :
       {"admit-first", "steal-3-first", "admit-first-bwf",
        "steal-5-first-bwf"}) {
    auto spec = core::parse_scheduler(name);
    const auto sched = core::make_scheduler(spec);
    const auto res = sched->run(inst, {2, 1.0});
    EXPECT_EQ(res.scheduler_name, sched->name());
    EXPECT_EQ(res.scheduler_name, name);
  }
}

}  // namespace
}  // namespace pjsched
