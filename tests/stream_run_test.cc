// Streamed-vs-materialized cross-checks: the tentpole contract that a
// memory-bounded streamed run (JobSource + job arena + StreamingFlowStats)
// is bit-identical to the classic materialized run of the same instance —
// same extremes, same argmax, same engine counters, same traces — while
// keeping only O(live jobs) state resident (EngineStats::arena_slots).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/core/job_source.h"
#include "src/core/run.h"
#include "src/core/types.h"
#include "src/dag/builders.h"
#include "src/metrics/streaming_stats.h"
#include "src/sim/event_engine.h"
#include "src/sim/trace.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"
#include "src/workload/streaming_source.h"

namespace pjsched {
namespace {

workload::GeneratorConfig base_config(std::size_t jobs) {
  workload::GeneratorConfig cfg;
  cfg.num_jobs = jobs;
  cfg.qps = 800.0;
  cfg.units_per_ms = 100.0;
  cfg.seed = 5;
  cfg.weight_classes = {1.0, 2.0, 8.0};
  return cfg;
}

core::MachineConfig machine16() {
  core::MachineConfig m;
  m.processors = 16;
  m.speed = 1.0;
  return m;
}

void expect_identical(const core::ScheduleResult& mat,
                      const core::StreamRunResult& str) {
  SCOPED_TRACE(mat.scheduler_name);
  EXPECT_EQ(str.scheduler_name, mat.scheduler_name);
  EXPECT_EQ(str.jobs, mat.completion.size());
  // The paper's objective and its argmax: exact, bitwise.
  EXPECT_EQ(str.max_flow, mat.max_flow);
  EXPECT_EQ(str.max_weighted_flow, mat.max_weighted_flow);
  EXPECT_EQ(str.argmax_flow, mat.argmax_flow);
  EXPECT_EQ(str.makespan, mat.makespan);
  // Mean: same value up to floating-point summation order (completion order
  // streamed, id order materialized).
  EXPECT_NEAR(str.mean_flow, mat.mean_flow,
              1e-9 * (1.0 + std::abs(mat.mean_flow)));
  // The engines must have taken the same decisions: every counter agrees.
  EXPECT_EQ(str.stats.steal_attempts, mat.stats.steal_attempts);
  EXPECT_EQ(str.stats.successful_steals, mat.stats.successful_steals);
  EXPECT_EQ(str.stats.admissions, mat.stats.admissions);
  EXPECT_EQ(str.stats.work_steps, mat.stats.work_steps);
  EXPECT_EQ(str.stats.idle_steps, mat.stats.idle_steps);
  EXPECT_EQ(str.stats.macro_jumps, mat.stats.macro_jumps);
  EXPECT_EQ(str.stats.decision_points, mat.stats.decision_points);
  EXPECT_EQ(str.stats.fast_decisions, mat.stats.fast_decisions);
  EXPECT_EQ(str.stats.arena_slots, mat.stats.arena_slots);
  EXPECT_EQ(str.stats.peak_live_jobs, mat.stats.peak_live_jobs);
  EXPECT_EQ(str.stats.idle_processor_time, mat.stats.idle_processor_time);
}

class StreamRunCrossCheck
    : public ::testing::TestWithParam<const char*> {};

// One scheduler, two workloads (bing discrete, lognormal), streamed via
// GeneratedJobSource vs materialized via generate_instance.
TEST_P(StreamRunCrossCheck, StreamedMatchesMaterialized) {
  const core::SchedulerSpec spec = core::parse_scheduler(GetParam());
  const core::MachineConfig machine = machine16();

  const workload::DiscreteWorkDistribution bing =
      workload::bing_distribution();
  const workload::LognormalWorkDistribution lognormal =
      workload::default_lognormal_distribution();
  const workload::WorkDistribution* dists[] = {&bing, &lognormal};

  for (const workload::WorkDistribution* dist : dists) {
    SCOPED_TRACE(dist->name());
    workload::GeneratorConfig cfg = base_config(400);
    const core::Instance inst = workload::generate_instance(*dist, cfg);
    const core::ScheduleResult mat = run_scheduler(inst, spec, machine);

    workload::GeneratedJobSource source(*dist, cfg);
    const core::StreamRunResult str =
        run_scheduler_streamed(source, spec, machine);
    expect_identical(mat, str);
    // 400 jobs fit the default reservoir: quantiles are exact and must
    // reproduce summarize() over the materialized flows bitwise.
    ASSERT_TRUE(str.flow_quantiles_exact);
    const metrics::Summary direct = metrics::summarize(mat.flow);
    EXPECT_EQ(str.flow.p50, direct.p50);
    EXPECT_EQ(str.flow.p90, direct.p90);
    EXPECT_EQ(str.flow.p99, direct.p99);
    EXPECT_EQ(str.flow.min, direct.min);
    EXPECT_EQ(str.flow.max, direct.max);
  }
}

INSTANTIATE_TEST_SUITE_P(Schedulers, StreamRunCrossCheck,
                         ::testing::Values("fifo", "fifo-exact", "bwf",
                                           "lifo", "sjf", "round-robin",
                                           "equi", "admit-first",
                                           "steal-16-first"),
                         [](const auto& info) {
                           std::string n = info.param;
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

// The event engine's streamed fast path vs streamed exact path: same
// decisions, same results (the engine-internal analogue of the
// event_fast_path_test cross-check, via the streamed entry point).
TEST(StreamRunTest, StreamedFastMatchesStreamedExact) {
  const auto dist = workload::bing_distribution();
  const workload::GeneratorConfig cfg = base_config(300);
  workload::GeneratedJobSource fast_source(dist, cfg);
  workload::GeneratedJobSource exact_source(dist, cfg);
  const auto fast = run_scheduler_streamed(
      fast_source, core::parse_scheduler("fifo"), machine16());
  const auto exact = run_scheduler_streamed(
      exact_source, core::parse_scheduler("fifo-exact"), machine16());
  EXPECT_EQ(fast.max_flow, exact.max_flow);
  EXPECT_EQ(fast.max_weighted_flow, exact.max_weighted_flow);
  EXPECT_EQ(fast.argmax_flow, exact.argmax_flow);
  EXPECT_EQ(fast.makespan, exact.makespan);
  EXPECT_EQ(fast.flow.p99, exact.flow.p99);
  EXPECT_GT(fast.stats.fast_decisions, 0u);
  EXPECT_EQ(exact.stats.fast_decisions, 0u);
}

// Coalesced traces are part of the bit-identity contract: a streamed run
// with tracing enabled emits exactly the intervals the materialized run
// does.
TEST(StreamRunTest, StreamedTraceMatchesMaterialized) {
  class ArrivalPolicy final : public sim::OrderPolicy {
   public:
    std::string name() const override { return "fifo"; }
    void order(const sim::PolicyContext& ctx,
               std::vector<core::JobId>& active) override {
      std::stable_sort(active.begin(), active.end(),
                       [&ctx](core::JobId a, core::JobId b) {
                         return ctx.arrival(a) < ctx.arrival(b);
                       });
    }
    bool has_static_order() const override { return true; }
    double static_key(const sim::PolicyContext& ctx,
                      core::JobId job) override {
      return ctx.arrival(job);
    }
  };

  const auto dist = workload::finance_distribution();
  const workload::GeneratorConfig cfg = base_config(120);
  const core::Instance inst = workload::generate_instance(dist, cfg);

  sim::Trace mat_trace;
  ArrivalPolicy mat_policy;
  sim::EventEngineOptions mat_opt;
  mat_opt.machine = machine16();
  mat_opt.trace = &mat_trace;
  const auto mat = sim::run_event_engine(inst, mat_policy, mat_opt);

  sim::Trace str_trace;
  ArrivalPolicy str_policy;
  sim::EventEngineOptions str_opt;
  str_opt.machine = machine16();
  str_opt.trace = &str_trace;
  workload::GeneratedJobSource source(dist, cfg);
  const auto str =
      sim::run_event_engine_streamed(source, str_policy, str_opt);
  EXPECT_EQ(str.max_flow, mat.max_flow);

  const auto& a = mat_trace.intervals();
  const auto& b = str_trace.intervals();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].job, b[i].job) << "interval " << i;
    EXPECT_EQ(a[i].node, b[i].node) << "interval " << i;
    EXPECT_EQ(a[i].proc, b[i].proc) << "interval " << i;
    EXPECT_EQ(a[i].start, b[i].start) << "interval " << i;
    EXPECT_EQ(a[i].end, b[i].end) << "interval " << i;
  }
}

// Batched arrival admission: with a burst-heavy feed (tens of arrivals
// landing on the same engine step) the streamed step engine drains every
// due arrival in one batch — one budget recomputation per batch, one
// JobSource pull loop — before the quantum decision.  The result must stay
// bit-identical to the materialized run, which admits the same set.
TEST(StreamRunTest, BurstArrivalsBatchedAdmissionMatchesMaterialized) {
  const auto dist = workload::bing_distribution();
  workload::GeneratorConfig cfg = base_config(600);
  cfg.qps = 50000.0;  // deep same-step arrival batches

  for (const char* name : {"steal-16-first", "admit-first", "fifo", "bwf"}) {
    SCOPED_TRACE(name);
    const core::Instance inst = workload::generate_instance(dist, cfg);
    const core::ScheduleResult mat =
        run_scheduler(inst, core::parse_scheduler(name), machine16());
    workload::GeneratedJobSource source(dist, cfg);
    const core::StreamRunResult str =
        run_scheduler_streamed(source, core::parse_scheduler(name), machine16());
    expect_identical(mat, str);
  }
}

// The memory claim itself: under a stable load, the arena recycles slots, so
// slots_allocated is a small multiple of peak_live_jobs and far below the
// job count — this is what makes 10^6-job runs O(live jobs) resident.
TEST(StreamRunTest, ArenaRecyclingBoundsResidentState) {
  const auto dist = workload::bing_distribution();
  workload::GeneratorConfig cfg = base_config(5000);
  cfg.qps = 1000.0;  // utilization ~0.69 on 16 procs: stable, bounded queue

  for (const char* name : {"fifo", "steal-16-first"}) {
    SCOPED_TRACE(name);
    workload::GeneratedJobSource source(dist, cfg);
    const auto res = run_scheduler_streamed(
        source, core::parse_scheduler(name), machine16());
    EXPECT_EQ(res.jobs, cfg.num_jobs);
    EXPECT_EQ(res.stats.arena_slots, res.stats.peak_live_jobs);
    // "<<": at least 20x fewer resident slots than jobs completed.
    EXPECT_LT(res.stats.arena_slots * 20, cfg.num_jobs);
  }
}

// Zero-job streams are legal and yield the documented empty result.
TEST(StreamRunTest, EmptySourceYieldsEmptyResult) {
  class EmptySource final : public core::JobSource {
   public:
    std::size_t size() const override { return 0; }

   protected:
    bool produce(core::StreamedJob&) override { return false; }
  };

  for (const char* name : {"fifo", "admit-first"}) {
    SCOPED_TRACE(name);
    EmptySource source;
    const auto res = run_scheduler_streamed(
        source, core::parse_scheduler(name), machine16());
    EXPECT_EQ(res.jobs, 0u);
    EXPECT_EQ(res.max_flow, 0.0);
    EXPECT_EQ(res.makespan, 0.0);
    EXPECT_EQ(res.flow.count, 0u);
    EXPECT_EQ(res.stats.arena_slots, 0u);
  }
}

// A caller-provided stats sink sees every completion (and the run result is
// built from that same sink).
TEST(StreamRunTest, CallerProvidedStatsSink) {
  const auto dist = workload::bing_distribution();
  const workload::GeneratorConfig cfg = base_config(200);
  workload::GeneratedJobSource source(dist, cfg);
  metrics::StreamingFlowStats stats;
  const auto res = run_scheduler_streamed(
      source, core::parse_scheduler("bwf"), machine16(), &stats);
  EXPECT_EQ(stats.count(), cfg.num_jobs);
  EXPECT_EQ(res.max_flow, stats.max_flow());
  EXPECT_EQ(res.max_weighted_flow, stats.max_weighted_flow());
  EXPECT_EQ(res.argmax_flow, stats.argmax_flow());
}

// The OPT lower bound has no engine and no streamed path: documented throw.
TEST(StreamRunTest, OptBoundHasNoStreamedPath) {
  const auto dist = workload::bing_distribution();
  const workload::GeneratorConfig cfg = base_config(10);
  workload::GeneratedJobSource source(dist, cfg);
  EXPECT_THROW(run_scheduler_streamed(source, core::parse_scheduler("opt"),
                                      machine16()),
               std::logic_error);
}

}  // namespace
}  // namespace pjsched
