// Tests for executing dag::Dag jobs on the real thread pool
// (src/runtime/dag_executor.h).
#include "src/runtime/dag_executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include "src/dag/builders.h"
#include "src/dag/compose.h"

namespace pjsched::runtime {
namespace {

// Records execution order with a lock; verifies precedence afterwards.
struct OrderRecorder {
  std::mutex mu;
  std::vector<dag::NodeId> order;

  NodeBody body() {
    return [this](dag::NodeId v, dag::Work) {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(v);
    };
  }

  // Position of each node in the observed order.
  std::vector<std::size_t> positions(std::size_t n) {
    std::vector<std::size_t> pos(n, 0);
    for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
    return pos;
  }
};

TEST(DagExecutorTest, EveryNodeRunsExactlyOnce) {
  ThreadPool pool({.workers = 3, .steal_k = 0, .seed = 1});
  const dag::Dag graph = dag::parallel_for_dag(16, 2);
  std::atomic<int> runs{0};
  auto job =
      submit_dag(pool, graph, [&](dag::NodeId, dag::Work) { runs.fetch_add(1); });
  job->wait();
  EXPECT_EQ(runs.load(), static_cast<int>(graph.node_count()));
}

TEST(DagExecutorTest, PrecedenceRespected) {
  ThreadPool pool({.workers = 4, .steal_k = 0, .seed = 2});
  const dag::Dag graph =
      dag::sequence(dag::parallel_for_dag(6, 1), dag::divide_and_conquer(3, 2));
  OrderRecorder rec;
  auto job = submit_dag(pool, graph, rec.body());
  job->wait();
  ASSERT_EQ(rec.order.size(), graph.node_count());
  const auto pos = rec.positions(graph.node_count());
  for (dag::NodeId u = 0; u < graph.node_count(); ++u)
    for (dag::NodeId v : graph.successors(u))
      EXPECT_LT(pos[u], pos[v]) << "edge " << u << "->" << v;
}

TEST(DagExecutorTest, DiamondJoinWaitsForBothBranches) {
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 3});
  dag::Dag d;
  d.add_node(1);
  d.add_node(1);
  d.add_node(1);
  d.add_node(1);
  d.add_edge(0, 1);
  d.add_edge(0, 2);
  d.add_edge(1, 3);
  d.add_edge(2, 3);
  d.seal();
  OrderRecorder rec;
  auto job = submit_dag(pool, d, rec.body());
  job->wait();
  const auto pos = rec.positions(4);
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(DagExecutorTest, ManyConcurrentDagJobs) {
  ThreadPool pool({.workers = 4, .steal_k = 0, .seed = 4});
  const dag::Dag shape = dag::star(6);
  std::atomic<int> nodes{0};
  std::vector<JobHandle> jobs;
  for (int i = 0; i < 40; ++i)
    jobs.push_back(submit_dag(pool, shape, [&](dag::NodeId, dag::Work) {
      nodes.fetch_add(1);
    }));
  for (auto& j : jobs) j->wait();
  EXPECT_EQ(nodes.load(), 40 * 7);
  EXPECT_EQ(pool.recorder().count(), 40u);
}

TEST(DagExecutorTest, SpinningBodyTakesMeasurableTime) {
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 5});
  const dag::Dag graph = dag::serial_chain(4, 10);
  auto job = submit_dag_spinning(pool, graph, /*ns_per_unit=*/20000.0);
  job->wait();
  // 40 units * 20 us = 0.8 ms of mandatory spinning.
  EXPECT_GE(job->flow_seconds(), 0.0008 * 0.5);  // generous slack
}

TEST(DagExecutorTest, WeightPropagates) {
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 6});
  auto job = submit_dag(pool, dag::single_node(1),
                        [](dag::NodeId, dag::Work) {}, /*weight=*/9.0);
  job->wait();
  EXPECT_DOUBLE_EQ(job->weight(), 9.0);
}

TEST(DagExecutorTest, UnsealedDagRejected) {
  ThreadPool pool({.workers = 1, .steal_k = 0, .seed = 7});
  dag::Dag d;
  d.add_node(1);
  EXPECT_THROW(submit_dag(pool, d, [](dag::NodeId, dag::Work) {}),
               std::invalid_argument);
}

TEST(SpinForUnitsTest, ScalesWithUnits) {
  const auto t0 = std::chrono::steady_clock::now();
  spin_for_units(10, 50000.0);  // 0.5 ms
  const auto t1 = std::chrono::steady_clock::now();
  EXPECT_GE(std::chrono::duration<double>(t1 - t0).count(), 0.0004);
}

}  // namespace
}  // namespace pjsched::runtime
