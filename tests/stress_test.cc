// Stress and shape-extreme tests: degenerate and adversarial instance
// shapes that exercise engine edge paths, at sizes that still run in
// milliseconds.  Every run is audited where a trace is available.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/core/bounds.h"
#include "src/core/run.h"
#include "src/dag/builders.h"
#include "src/dag/compose.h"
#include "src/metrics/audit.h"
#include "src/runtime/thread_pool.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

using testutil::make_instance;

std::vector<core::SchedulerSpec> sweep_specs() {
  std::vector<core::SchedulerSpec> specs;
  for (const char* name :
       {"fifo", "bwf", "equi", "sjf", "lifo", "round-robin", "admit-first",
        "steal-4-first"}) {
    auto s = core::parse_scheduler(name);
    s.seed = 3;
    specs.push_back(s);
  }
  return specs;
}

void run_all_and_audit(const core::Instance& inst, unsigned m,
                       double speed = 1.0) {
  for (const auto& spec : sweep_specs()) {
    sim::Trace trace;
    const auto res = core::run_scheduler(inst, spec, {m, speed}, &trace);
    const auto report =
        metrics::audit_schedule(inst, {m, speed}, trace, res);
    ASSERT_TRUE(report.ok) << res.scheduler_name << ":\n" << report.to_string();
    EXPECT_GE(res.max_flow, 0.0);
  }
}

TEST(StressTest, MassiveFanOutStar) {
  // One root enabling 500 children at once: deque growth, wide frontier.
  auto inst = make_instance({{0.0, dag::star(500)}});
  run_all_and_audit(inst, 8);
}

TEST(StressTest, VeryDeepChain) {
  auto inst = make_instance({{0.0, dag::serial_chain(2000, 1)}});
  run_all_and_audit(inst, 4);
}

TEST(StressTest, ManySimultaneousArrivals) {
  // 60 jobs all at t = 0: admission queue stress, FIFO tie-breaking.
  std::vector<std::pair<core::Time, dag::Dag>> jobs;
  for (int i = 0; i < 60; ++i)
    jobs.emplace_back(0.0, dag::parallel_for_dag(3, 2));
  run_all_and_audit(testutil::make_instance(std::move(jobs)), 4);
}

TEST(StressTest, SingleUnitJobsFlood) {
  // Minimal jobs (1 unit each) back to back: per-job overhead paths.
  std::vector<std::pair<core::Time, dag::Dag>> jobs;
  for (int i = 0; i < 200; ++i)
    jobs.emplace_back(static_cast<core::Time>(i) * 0.5, dag::single_node(1));
  run_all_and_audit(testutil::make_instance(std::move(jobs)), 2);
}

TEST(StressTest, MixedExtremeShapes) {
  auto inst = make_instance({
      {0.0, dag::star(64)},
      {1.0, dag::serial_chain(300, 1)},
      {2.0, dag::map_reduce_dag(16, 4, 4, 8)},
      {3.0, dag::pipeline_dag(8, 8, 2)},
      {4.0, dag::divide_and_conquer(5, 2)},
      {5.0, dag::single_node(1)},
  });
  run_all_and_audit(inst, 5);
}

TEST(StressTest, HugeSpeedAugmentation) {
  auto inst = testutil::random_instance(71, 20, 20.0);
  run_all_and_audit(inst, 3, 64.0);
}

TEST(StressTest, FractionalSpeed) {
  // Speeds below 1 are legal for the engines (the adversary configuration).
  auto inst = testutil::random_instance(72, 10, 10.0);
  for (const char* name : {"fifo", "bwf"}) {
    sim::Trace trace;
    const auto res = core::run_scheduler(inst, core::parse_scheduler(name),
                                         {2, 0.5}, &trace);
    const auto report = metrics::audit_schedule(inst, {2, 0.5}, trace, res);
    ASSERT_TRUE(report.ok) << report.to_string();
    EXPECT_GE(res.max_flow + 1e-9, 2.0 * core::span_lower_bound(inst));
  }
}

TEST(StressTest, SingleProcessorEverything) {
  auto inst = testutil::random_instance(73, 25, 30.0);
  run_all_and_audit(inst, 1);
}

TEST(StressTest, MoreProcessorsThanTotalNodes) {
  auto inst = make_instance({
      {0.0, dag::single_node(3)},
      {0.5, dag::serial_chain(2, 2)},
  });
  run_all_and_audit(inst, 64);
}

TEST(StressTest, LargeRandomInstanceAllSchedulers) {
  auto inst = testutil::random_instance(74, 300, 500.0);
  for (const auto& spec : sweep_specs()) {
    const auto res = core::run_scheduler(inst, spec, {8, 1.0});
    EXPECT_GE(res.max_flow + 1e-9, core::opt_sim_lower_bound(inst, 8))
        << res.scheduler_name;
  }
}

TEST(StressTest, WeightExtremes) {
  core::Instance inst;
  inst.jobs.push_back({0.0, 1e-6, dag::single_node(5)});
  inst.jobs.push_back({0.0, 1e6, dag::single_node(5)});
  const auto res =
      core::run_scheduler(inst, core::parse_scheduler("bwf"), {1, 1.0});
  EXPECT_DOUBLE_EQ(res.completion[1], 5.0);  // heavy first
  EXPECT_DOUBLE_EQ(res.completion[0], 10.0);
}

// ---------------------------------------------------------------------------
// Runtime concurrency stress: external threads hammering submit() while
// shutdown()/wait_all() race them.  Run under TSAN in CI.

TEST(RuntimeStressTest, ConcurrentSubmittersRacingShutdown) {
  runtime::ThreadPool pool({.workers = 4, .steal_k = 0, .seed = 40});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::atomic<int> accepted{0};
  std::atomic<int> refused{0};
  std::vector<std::vector<runtime::JobHandle>> handles(kThreads);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        try {
          handles[t].push_back(pool.submit([](runtime::TaskContext&) {}));
          accepted.fetch_add(1);
        } catch (const std::logic_error&) {
          refused.fetch_add(1);  // racing shutdown: loud, not silent
        }
      }
    });
  }
  // Shut down somewhere in the middle of the submission storm.
  std::this_thread::sleep_for(std::chrono::microseconds(500));
  pool.shutdown();
  for (auto& t : submitters) t.join();
  EXPECT_EQ(accepted.load() + refused.load(), kThreads * kPerThread);
  // Every handle that submit() returned reached a terminal outcome: a
  // racing job either ran or was recorded as shed (drained from the
  // closing queue) / rejected (the push hit the already-closed queue),
  // never dropped.
  for (const auto& per_thread : handles)
    for (const auto& job : per_thread) {
      EXPECT_TRUE(job->finished());
      const auto o = job->outcome();
      EXPECT_TRUE(o == runtime::JobOutcome::kCompleted ||
                  o == runtime::JobOutcome::kShed ||
                  o == runtime::JobOutcome::kRejected)
          << runtime::to_string(o);
    }
}

TEST(RuntimeStressTest, ConcurrentSubmittersThenWaitAll) {
  runtime::ThreadPool pool({.workers = 4, .steal_k = 4, .seed = 41});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::atomic<int> ran{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t)
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i)
        pool.submit([&](runtime::TaskContext& ctx) {
          ctx.spawn([&](runtime::TaskContext&) { ran.fetch_add(1); });
          ran.fetch_add(1);
        });
    });
  for (auto& t : submitters) t.join();
  pool.wait_all();
  EXPECT_EQ(ran.load(), kThreads * kPerThread * 2);
  EXPECT_EQ(pool.recorder().outcome_counts().completed,
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(RuntimeStressTest, BoundedQueueConcurrentSubmitters) {
  runtime::PoolOptions options;
  options.workers = 2;
  options.seed = 42;
  options.admission_capacity = 8;
  options.backpressure = runtime::BackpressurePolicy::kShedOldest;
  runtime::ThreadPool pool(options);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 150;
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t)
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i)
        pool.submit([](runtime::TaskContext&) {});
    });
  for (auto& t : submitters) t.join();
  pool.wait_all();
  const auto counts = pool.recorder().outcome_counts();
  // Conservation: every job is either completed or shed, nothing lost.
  EXPECT_EQ(counts.completed + counts.shed,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(counts.failed, 0u);
}

TEST(RuntimeStressTest, ConcurrentSubmittersWithFaultInjection) {
  runtime::PoolOptions options;
  options.workers = 3;
  options.seed = 43;
  options.fault_plan.seed = 43;
  options.fault_plan.task_failure_probability = 0.2;
  runtime::ThreadPool pool(options);
  constexpr int kThreads = 3;
  constexpr int kPerThread = 100;
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t)
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i)
        pool.submit([](runtime::TaskContext& ctx) {
          runtime::parallel_for(ctx, 0, 8, 2,
                                [](std::size_t, std::size_t) {});
        });
    });
  for (auto& t : submitters) t.join();
  pool.wait_all();
  const auto counts = pool.recorder().outcome_counts();
  EXPECT_EQ(counts.completed + counts.failed,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_GT(counts.failed, 0u);     // p = 0.2 across ~thousands of tasks
  EXPECT_GT(counts.completed, 0u);  // but plenty survive
  pool.shutdown();
}

}  // namespace
}  // namespace pjsched
