// Empirical validation of the paper's key lemmas on simulated executions.
// These tests instrument real engine runs and check the quantities the
// proofs reason about — not just the end-to-end theorems.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/core/bounds.h"
#include "src/dag/builders.h"
#include "src/metrics/gantt.h"
#include "src/sched/fifo.h"
#include "src/sched/work_stealing.h"
#include "src/sim/trace.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

using testutil::make_instance;

// --- Proposition 2.1-flavoured check -------------------------------------
// While a scheduler runs all ready nodes of a job (here: FIFO on a single
// job with enough processors), the remaining critical path shrinks at rate
// s — i.e. the job completes in exactly P/s time.
TEST(TheoryValidation, Proposition21_SpanRateWhenFullyServed) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    sim::Rng rng(seed + 500);
    dag::RandomLayeredOptions opt;
    opt.layers = 1 + static_cast<std::size_t>(rng.uniform_int(4));
    opt.max_width = 4;
    opt.max_work = 6;
    auto inst = make_instance({{0.0, dag::random_layered(rng, opt)}});
    const double speed = 1.0 + 0.5 * static_cast<double>(seed % 3);
    sched::FifoScheduler fifo;
    // m large enough that every ready node always has a processor.
    const auto res = fifo.run(inst, {64, speed});
    const double span = static_cast<double>(inst.jobs[0].graph.critical_path());
    EXPECT_NEAR(res.completion[0], span / speed, 1e-6) << "seed " << seed;
  }
}

// --- Lemma 3.2-flavoured check --------------------------------------------
// During [r_i, c_i] of FIFO's max-flow job, whenever not all m processors
// are busy FIFO is serving all ready nodes of that job; the aggregate
// not-all-busy time is therefore at most the job's critical path / speed.
TEST(TheoryValidation, Lemma32_NotAllBusyTimeBoundedBySpan) {
  auto inst = testutil::random_instance(321, 30, 40.0);
  const unsigned m = 3;
  sim::Trace trace;
  sched::FifoScheduler fifo;
  const auto res = fifo.run(inst, {m, 1.0}, &trace);

  const core::JobId hot = res.argmax_flow;
  const double r = inst.jobs[hot].arrival;
  const double c = res.completion[hot];

  // Exact sweep over the trace: time within [r, c] during which fewer than
  // m processors were busy.
  std::vector<std::pair<double, int>> events;
  for (const auto& iv : trace.intervals()) {
    const double lo = std::max(iv.start, r);
    const double hi = std::min(iv.end, c);
    if (hi <= lo) continue;
    events.emplace_back(lo, +1);
    events.emplace_back(hi, -1);
  }
  std::sort(events.begin(), events.end());
  double not_all_busy = 0.0;
  double prev = r;
  int count = 0;
  for (const auto& [t, delta] : events) {
    if (t > prev && count < static_cast<int>(m)) not_all_busy += t - prev;
    count += delta;
    prev = std::max(prev, t);
  }
  if (c > prev) not_all_busy += c - prev;

  const double span = static_cast<double>(inst.jobs[hot].graph.critical_path());
  EXPECT_LE(not_all_busy, span + 1e-6);
}

// --- Lemma 4.4/4.5-flavoured check ----------------------------------------
// For a single job executed by work stealing, the number of steal attempts
// during its execution is O(m * P) — the Blumofe–Leiserson bound the
// paper's Lemma 4.4 imports (expected 32 m P; we allow the 64 m P + slack
// high-probability form).
TEST(TheoryValidation, Lemma44_StealAttemptsLinearInSpanTimesWorkers) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto inst = make_instance({{0.0, dag::divide_and_conquer(6, 3)}});
    const unsigned m = 8;
    sched::WorkStealingScheduler ws(0, seed + 1);
    const auto res = ws.run(inst, {m, 1.0});
    const double p = static_cast<double>(inst.jobs[0].graph.critical_path());
    EXPECT_LE(static_cast<double>(res.stats.steal_attempts),
              64.0 * m * p + 16.0 * std::log(1000.0))
        << "seed " << seed;
  }
}

// --- Lemma 4.6-flavoured check --------------------------------------------
// Under steal-k-first, between a job's arrival and its admission each
// worker does at most k consecutive failed steals before admitting: an
// isolated job is admitted within k steps of its arrival.
TEST(TheoryValidation, Lemma46_AdmissionDelayAtMostK) {
  for (unsigned k : {0u, 3u, 7u}) {
    auto inst = make_instance({{5.0, dag::single_node(10)}});
    sched::WorkStealingScheduler ws(k, 2);
    const auto res = ws.run(inst, {4, 1.0});
    // Arrival at step 5; at most k failed steals before some worker
    // admits; then 10 steps of work.
    EXPECT_LE(res.completion[0], 5.0 + k + 10.0 + 1e-9) << "k " << k;
    EXPECT_GE(res.completion[0], 15.0 - 1e-9);
  }
}

// --- Theorem 3.1 end-to-end shape ------------------------------------------
// FIFO at speed (1+eps) against the OPT lower bound: the ratio must not
// exceed 3/eps on instances where the bound is reasonably tight (fully
// parallelizable wide jobs under overload — the theorem's own regime).
TEST(TheoryValidation, Theorem31_RatioWithinThreeOverEps) {
  core::Instance inst;
  for (int i = 0; i < 150; ++i) {
    core::JobSpec job;
    job.arrival = static_cast<core::Time>(i) * 6.0;
    job.graph = dag::parallel_for_dag(16, 4);  // W = 66, P = 6
    inst.jobs.push_back(std::move(job));
  }
  const unsigned m = 8;  // load = 66 / (6*8) ~ 1.375: overload at speed 1
  sched::FifoScheduler fifo;
  for (double eps : {0.5, 1.0, 2.0}) {
    const auto res = fifo.run(inst, {m, 1.0 + eps});
    const double lb = core::combined_lower_bound(inst, m);
    EXPECT_LE(res.max_flow / lb, 3.0 / eps + 1e-9) << "eps " << eps;
  }
}

// --- Lemma 5.1 end-to-end shape ---------------------------------------------
// On the adversarial star instance, FIFO achieves OPT's flow of 2 while
// work stealing's max flow strictly exceeds it (some job serializes).
TEST(TheoryValidation, Lemma51_WorkStealingStrictlyWorseOnStars) {
  core::Instance inst;
  const unsigned m = 40;
  for (int j = 0; j < 300; ++j) {
    core::JobSpec job;
    job.arrival = 2.0 * m * static_cast<double>(j);
    job.graph = dag::star(4);
    inst.jobs.push_back(std::move(job));
  }
  sched::FifoScheduler fifo;
  sched::WorkStealingScheduler ws(0, 77);
  EXPECT_DOUBLE_EQ(fifo.run(inst, {m, 1.0}).max_flow, 2.0);
  EXPECT_GT(ws.run(inst, {m, 1.0}).max_flow, 2.0);
}

}  // namespace
}  // namespace pjsched
