// The runtime hot-path allocation machinery: InlineFn (small-buffer
// move-only callables), the TaskPool slab/freelist (local and cross-thread
// release paths), recycling under real spawn/steal/cancel churn, and the
// invariant that multi-probe stealing leaves steal-k admission *semantics*
// untouched — admissions count jobs, not probes, for every k.
#include "src/runtime/task_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/runtime/inline_fn.h"
#include "src/runtime/thread_pool.h"

namespace pjsched::runtime {
namespace {

// ---------------------------------------------------------------------------
// InlineFn

TEST(InlineFnTest, SmallCaptureStaysInline) {
  int a = 3, b = 4;
  InlineFn<int(int)> fn = [a, b](int x) { return a + b + x; };
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_TRUE(fn.is_inline());
  EXPECT_EQ(fn(10), 17);
}

TEST(InlineFnTest, CapacityBoundaryIsInline) {
  // Exactly kInlineCapacity bytes of capture must not allocate.
  struct Blob {
    unsigned char bytes[InlineFn<int()>::kInlineCapacity];
  };
  Blob blob{};
  blob.bytes[0] = 7;
  InlineFn<int()> fn = [blob] { return static_cast<int>(blob.bytes[0]); };
  EXPECT_TRUE(fn.is_inline());
  EXPECT_EQ(fn(), 7);
}

TEST(InlineFnTest, LargeCaptureFallsBackToHeap) {
  struct Big {
    unsigned char bytes[InlineFn<int()>::kInlineCapacity + 1];
  };
  Big big{};
  big.bytes[0] = 9;
  InlineFn<int()> fn = [big] { return static_cast<int>(big.bytes[0]); };
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_FALSE(fn.is_inline());
  EXPECT_EQ(fn(), 9);
}

TEST(InlineFnTest, MoveTransfersCallableAndEmptiesSource) {
  InlineFn<int()> src = [] { return 42; };
  InlineFn<int()> dst = std::move(src);
  EXPECT_FALSE(static_cast<bool>(src));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(dst));
  EXPECT_EQ(dst(), 42);

  InlineFn<int()> assigned;
  assigned = std::move(dst);
  EXPECT_FALSE(static_cast<bool>(dst));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(assigned(), 42);
}

TEST(InlineFnTest, MoveOnlyCapturesWork) {
  // std::function rejects this capture outright (it requires copyability).
  auto owned = std::make_unique<int>(31);
  InlineFn<int()> fn = [p = std::move(owned)] { return *p; };
  EXPECT_EQ(fn(), 31);
}

TEST(InlineFnTest, DestructionAndResetReleaseCapture) {
  auto tracked = std::make_shared<int>(1);
  std::weak_ptr<int> weak = tracked;
  {
    InlineFn<void()> fn = [keep = std::move(tracked)] {};
    EXPECT_FALSE(weak.expired());
    fn.reset();
    EXPECT_TRUE(weak.expired());
    EXPECT_FALSE(static_cast<bool>(fn));
  }

  auto tracked2 = std::make_shared<int>(2);
  std::weak_ptr<int> weak2 = tracked2;
  {
    InlineFn<void()> fn = [keep = std::move(tracked2)] {};
    EXPECT_FALSE(weak2.expired());
  }
  EXPECT_TRUE(weak2.expired());  // destructor path
}

// ---------------------------------------------------------------------------
// TaskPool (direct, single-threaded semantics)

TEST(TaskPoolTest, LocalReleaseRecyclesWithoutCarvingNewBlocks) {
  TaskPool pool;
  Job job(1, 1.0);
  // Far more allocate/release round-trips than one block holds: the slot
  // count must stay at one block because every release feeds the freelist.
  for (int i = 0; i < 10 * static_cast<int>(TaskPool::kBlockSize); ++i) {
    Task* task = pool.allocate(&job, TaskFn(), nullptr);
    ASSERT_NE(task, nullptr);
    EXPECT_EQ(task->job, &job);
    TaskPool::release(task, &pool);
  }
  EXPECT_EQ(pool.blocks_carved(), 1u);
  EXPECT_EQ(pool.remote_frees(), 0u);
}

TEST(TaskPoolTest, LiveTasksBeyondOneBlockCarveMore) {
  TaskPool pool;
  Job job(1, 1.0);
  std::vector<Task*> live;
  for (std::size_t i = 0; i < TaskPool::kBlockSize + 1; ++i)
    live.push_back(pool.allocate(&job, TaskFn(), nullptr));
  EXPECT_EQ(pool.blocks_carved(), 2u);
  for (Task* t : live) TaskPool::release(t, &pool);
}

TEST(TaskPoolTest, RemoteFreesDrainIntoOwnerFreelist) {
  TaskPool owner;
  Job job(1, 1.0);
  // Exhaust the first block so the freelist is empty, then free everything
  // through the remote path (local = nullptr, as a non-worker thread would).
  std::vector<Task*> live;
  for (std::size_t i = 0; i < TaskPool::kBlockSize; ++i)
    live.push_back(owner.allocate(&job, TaskFn(), nullptr));
  EXPECT_EQ(owner.blocks_carved(), 1u);
  for (Task* t : live) TaskPool::release(t, /*local=*/nullptr);
  EXPECT_EQ(owner.remote_frees(), TaskPool::kBlockSize);

  // The next owner-side allocations must drain the reclaim stack instead of
  // carving block two.
  live.clear();
  for (std::size_t i = 0; i < TaskPool::kBlockSize; ++i)
    live.push_back(owner.allocate(&job, TaskFn(), nullptr));
  EXPECT_EQ(owner.blocks_carved(), 1u);
  for (Task* t : live) TaskPool::release(t, &owner);
}

TEST(TaskPoolTest, ReleaseToDifferentPoolTakesRemotePath) {
  TaskPool owner;
  TaskPool other;
  Job job(1, 1.0);
  Task* task = owner.allocate(&job, TaskFn(), nullptr);
  TaskPool::release(task, /*local=*/&other);  // not the owner → reclaim CAS
  EXPECT_EQ(owner.remote_frees(), 1u);
  EXPECT_EQ(other.remote_frees(), 0u);
  // Owner reuses the reclaimed slot rather than carving.
  Task* again = owner.allocate(&job, TaskFn(), nullptr);
  EXPECT_EQ(owner.blocks_carved(), 1u);
  TaskPool::release(again, &owner);
}

// ---------------------------------------------------------------------------
// Recycling under real pool churn (the test CI runs under ASan and TSan)

TEST(TaskPoolStressTest, SpawnStealCancelChurnRecyclesSlots) {
  ThreadPool pool({.workers = 4, .steal_k = 0, .seed = 7});
  std::atomic<std::uint64_t> sum{0};

  // Fine-grain fan-outs: lots of spawn/execute/release churn, with a slice
  // of the jobs carrying an already-expired deadline so the cancellation
  // release path (skipped tasks) recycles slots too.
  constexpr int kJobs = 64;
  constexpr std::size_t kGrains = 256;
  for (int j = 0; j < kJobs; ++j) {
    SubmitOptions options;
    if (j % 8 == 7) options.deadline = std::chrono::nanoseconds(1);
    pool.submit(
        [&sum](TaskContext& ctx) {
          parallel_for(ctx, std::size_t{0}, kGrains, 1,
                       [&sum](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i)
                           sum.fetch_add(i, std::memory_order_relaxed);
                       });
        },
        options);
  }
  pool.wait_all();

  const PoolStats stats = pool.stats();
  // Every job ended in a terminal outcome and every task was executed,
  // skipped-as-cancelled, or never materialized — but the slab must have
  // recycled: the total slots ever carved stay far below the task count.
  EXPECT_GT(stats.tasks_executed, static_cast<std::uint64_t>(kJobs));
  EXPECT_LT(stats.task_slab_blocks * TaskPool::kBlockSize,
            stats.tasks_executed);
  // Root tasks are carved in the external submission pool and released by
  // whichever worker runs them, so the cross-thread reclaim path is
  // exercised on every run.
  EXPECT_GT(stats.task_remote_frees, 0u);
}

// ---------------------------------------------------------------------------
// Steal-k admission semantics are independent of the steal-probe count

TEST(StealKAdmissionTest, AdmissionCountsUnchangedByMultiProbeStealing) {
  // One admission per submitted job, for every k: multi-probe stealing
  // changes how fast a worker's fail_count grows per *round*, never how
  // many jobs leave the global FIFO.  The counts must be exactly the job
  // count — and therefore equal across k — or the paper's admit-first /
  // steal-k-first distinction has been silently altered.
  constexpr int kJobs = 100;
  for (unsigned k : {0u, 4u, 16u}) {
    ThreadPool pool({.workers = 4, .steal_k = k, .seed = 11});
    std::atomic<int> done{0};
    for (int j = 0; j < kJobs; ++j) {
      pool.submit([&done](TaskContext& ctx) {
        WaitGroup wg;
        for (int c = 0; c < 4; ++c)
          ctx.spawn([&done](TaskContext&) {
            done.fetch_add(1, std::memory_order_relaxed);
          }, wg);
        ctx.wait_help(wg);
      });
    }
    pool.wait_all();

    const PoolStats stats = pool.stats();
    EXPECT_EQ(stats.admissions, static_cast<std::uint64_t>(kJobs))
        << "steal_k=" << k;
    EXPECT_EQ(done.load(), kJobs * 4) << "steal_k=" << k;
    EXPECT_EQ(pool.recorder().outcome_counts().completed,
              static_cast<std::uint64_t>(kJobs))
        << "steal_k=" << k;
  }
}

}  // namespace
}  // namespace pjsched::runtime
