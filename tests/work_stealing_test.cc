// Scheduler-level tests for steal-k-first work stealing
// (src/sched/work_stealing.h), including the k-parameterized behaviour the
// paper discusses at the end of Section 4.
#include "src/sched/work_stealing.h"

#include <gtest/gtest.h>

#include "src/dag/builders.h"
#include "src/sched/opt_bound.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

using testutil::make_instance;

TEST(WorkStealingTest, Names) {
  EXPECT_EQ(sched::WorkStealingScheduler(0).name(), "admit-first");
  EXPECT_EQ(sched::WorkStealingScheduler(16).name(), "steal-16-first");
  EXPECT_EQ(sched::make_admit_first().name(), "admit-first");
  EXPECT_EQ(sched::make_steal_k_first(4).name(), "steal-4-first");
  EXPECT_EQ(sched::make_steal_k_first(4).steal_k(), 4u);
}

TEST(WorkStealingTest, CompletesRandomInstancesForAllK) {
  auto inst = testutil::random_instance(21, 30, 60.0);
  for (unsigned k : {0u, 1u, 4u, 16u}) {
    sched::WorkStealingScheduler ws(k, 5);
    const auto res = ws.run(inst, {4, 1.0});
    for (core::Time c : res.completion) EXPECT_GE(c, 0.0);
    EXPECT_EQ(res.stats.work_steps, inst.total_work());
  }
}

TEST(WorkStealingTest, AdmitFirstAdmitsEagerly) {
  // Backlog of sequential jobs, 4 workers: admit-first spreads jobs across
  // workers immediately (4 admissions in the first step), so 4 equal jobs
  // finish in one job-length.
  std::vector<std::pair<core::Time, dag::Dag>> jobs;
  for (int i = 0; i < 4; ++i) jobs.emplace_back(0.0, dag::single_node(10));
  auto inst = make_instance(std::move(jobs));
  sched::WorkStealingScheduler admit(0, 3);
  const auto res = admit.run(inst, {4, 1.0});
  EXPECT_DOUBLE_EQ(res.max_flow, 10.0);
  EXPECT_EQ(res.stats.admissions, 4u);
}

TEST(WorkStealingTest, LargerKDelaysAdmissionOfBacklog) {
  // Same backlog under steal-k-first with huge k: workers burn k failed
  // steals before each admission, so the last job waits longer.
  std::vector<std::pair<core::Time, dag::Dag>> jobs;
  for (int i = 0; i < 4; ++i) jobs.emplace_back(0.0, dag::single_node(10));
  auto inst = make_instance(std::move(jobs));
  sched::WorkStealingScheduler admit(0, 3);
  sched::WorkStealingScheduler lazy(32, 3);
  const auto a = admit.run(inst, {4, 1.0});
  const auto l = lazy.run(inst, {4, 1.0});
  EXPECT_GT(l.max_flow, a.max_flow);
  EXPECT_GT(l.stats.steal_attempts, 0u);
}

TEST(WorkStealingTest, StealKFirstParallelizesAdmittedJobBeforeAdmitting) {
  // One wide job and one short job in the queue, 4 workers.  Under
  // steal-k-first (k large), free workers steal the wide job's grains
  // instead of admitting the short job, finishing the wide job near-
  // optimally; admit-first sends one worker to the short job immediately.
  auto inst = make_instance({
      {0.0, dag::parallel_for_dag(16, 12)},
      {0.0, dag::single_node(2)},
  });
  sched::WorkStealingScheduler admit(0, 9);
  sched::WorkStealingScheduler steal16(16, 9);
  const auto a = admit.run(inst, {4, 1.0});
  const auto s = steal16.run(inst, {4, 1.0});
  // Both must beat sequential execution of the wide job (16*12+2 = 194).
  EXPECT_LT(a.completion[0], 194.0);
  EXPECT_LT(s.completion[0], 194.0);
  // Admit-first admits the short job early; steal-16-first within a few
  // rounds of failed steals.
  EXPECT_LT(a.completion[1], s.completion[1] + 1e-9);
}

TEST(WorkStealingTest, DeterministicPerSeedAcrossConstructions) {
  auto inst = testutil::random_instance(22, 25, 40.0);
  const auto a = sched::WorkStealingScheduler(4, 77).run(inst, {4, 1.0});
  const auto b = sched::WorkStealingScheduler(4, 77).run(inst, {4, 1.0});
  EXPECT_EQ(a.completion, b.completion);
}

TEST(WorkStealingTest, SpeedAugmentationHelps) {
  auto inst = testutil::random_instance(23, 40, 40.0);
  const auto slow = sched::WorkStealingScheduler(0, 5).run(inst, {4, 1.0});
  const auto fast = sched::WorkStealingScheduler(0, 5).run(inst, {4, 2.0});
  EXPECT_LT(fast.max_flow, slow.max_flow + 1e-9);
}

TEST(WorkStealingTest, NeverBeatsOptBound) {
  auto inst = testutil::random_instance(24, 30, 30.0);
  sched::OptLowerBound opt;
  const double bound = opt.run(inst, {4, 1.0}).max_flow;
  for (unsigned k : {0u, 8u}) {
    const auto res = sched::WorkStealingScheduler(k, 6).run(inst, {4, 1.0});
    EXPECT_GE(res.max_flow + 1e-9, bound);
  }
}

}  // namespace
}  // namespace pjsched
