// Unit tests for the bounded AdmissionQueue (src/runtime/admission_queue.h):
// capacity enforcement, the three backpressure policies, and close()
// semantics (the shutdown barrier).
#include "src/runtime/admission_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace pjsched::runtime {
namespace {

Task* make_task(Job* job = nullptr) { return new Task{job, {}}; }

TEST(AdmissionQueueTest, UnboundedAcceptsEverything) {
  AdmissionQueue q;  // capacity 0 = unbounded
  std::vector<Task*> tasks;
  for (int i = 0; i < 100; ++i) {
    Task* evicted = nullptr;
    Task* t = make_task();
    tasks.push_back(t);
    EXPECT_EQ(q.push(t, &evicted), AdmissionQueue::PushResult::kAccepted);
    EXPECT_EQ(evicted, nullptr);
  }
  EXPECT_EQ(q.size(), 100u);
  for (std::size_t i = 0; i < tasks.size(); ++i)
    EXPECT_EQ(q.try_pop(), tasks[i]);  // FIFO order
  EXPECT_EQ(q.try_pop(), nullptr);
  for (Task* t : tasks) delete t;
}

TEST(AdmissionQueueTest, RejectNewestDropsTheNewSubmission) {
  AdmissionQueue q(2, BackpressurePolicy::kRejectNewest);
  Task* a = make_task();
  Task* b = make_task();
  Task* c = make_task();
  Task* evicted = nullptr;
  EXPECT_EQ(q.push(a, &evicted), AdmissionQueue::PushResult::kAccepted);
  EXPECT_EQ(q.push(b, &evicted), AdmissionQueue::PushResult::kAccepted);
  EXPECT_EQ(q.push(c, &evicted), AdmissionQueue::PushResult::kRejected);
  EXPECT_EQ(evicted, nullptr);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.try_pop(), a);
  EXPECT_EQ(q.try_pop(), b);
  delete a;
  delete b;
  delete c;  // rejected: caller kept ownership
}

TEST(AdmissionQueueTest, ShedOldestEvictsTheHead) {
  AdmissionQueue q(2, BackpressurePolicy::kShedOldest);
  Task* a = make_task();
  Task* b = make_task();
  Task* c = make_task();
  Task* evicted = nullptr;
  q.push(a, &evicted);
  q.push(b, &evicted);
  EXPECT_EQ(q.push(c, &evicted), AdmissionQueue::PushResult::kAccepted);
  EXPECT_EQ(evicted, a);  // oldest evicted, caller takes ownership
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.try_pop(), b);
  EXPECT_EQ(q.try_pop(), c);
  delete a;
  delete b;
  delete c;
}

TEST(AdmissionQueueTest, BlockWaitsUntilAPopFreesSpace) {
  AdmissionQueue q(1, BackpressurePolicy::kBlock);
  Task* a = make_task();
  Task* b = make_task();
  Task* evicted = nullptr;
  q.push(a, &evicted);
  std::atomic<bool> pushed{false};
  std::thread pusher([&] {
    Task* ev = nullptr;
    EXPECT_EQ(q.push(b, &ev), AdmissionQueue::PushResult::kAccepted);
    pushed.store(true);
  });
  // The pusher must be blocked while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.try_pop(), a);
  pusher.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.try_pop(), b);
  delete a;
  delete b;
}

TEST(AdmissionQueueTest, CloseUnblocksAndRejectsBlockedPushers) {
  AdmissionQueue q(1, BackpressurePolicy::kBlock);
  Task* a = make_task();
  Task* b = make_task();
  Task* evicted = nullptr;
  q.push(a, &evicted);
  std::atomic<int> result{-1};
  std::thread pusher([&] {
    Task* ev = nullptr;
    result.store(q.push(b, &ev) == AdmissionQueue::PushResult::kRejected ? 1
                                                                         : 0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  pusher.join();
  EXPECT_EQ(result.load(), 1);
  // Queued tasks stay poppable after close (shutdown drains them).
  EXPECT_EQ(q.try_pop(), a);
  delete a;
  delete b;
}

TEST(AdmissionQueueTest, CloseRejectsAllFuturePushes) {
  AdmissionQueue unbounded;
  unbounded.close();
  Task* t = make_task();
  Task* evicted = nullptr;
  EXPECT_EQ(unbounded.push(t, &evicted),
            AdmissionQueue::PushResult::kRejected);
  delete t;
}

TEST(AdmissionQueueTest, TryPopHeaviestPrefersLargestWeight) {
  Job light(1, 1.0), heavy(2, 5.0), medium(3, 2.0);
  AdmissionQueue q;
  Task* a = make_task(&light);
  Task* b = make_task(&heavy);
  Task* c = make_task(&medium);
  Task* evicted = nullptr;
  q.push(a, &evicted);
  q.push(b, &evicted);
  q.push(c, &evicted);
  EXPECT_EQ(q.try_pop_heaviest(), b);
  EXPECT_EQ(q.try_pop_heaviest(), c);
  EXPECT_EQ(q.try_pop_heaviest(), a);
  EXPECT_EQ(q.try_pop_heaviest(), nullptr);
  delete a;
  delete b;
  delete c;
}

TEST(AdmissionQueueTest, StatsCountEveryOutcome) {
  AdmissionQueue q(2, BackpressurePolicy::kShedOldest);
  Task* a = make_task();
  Task* b = make_task();
  Task* c = make_task();
  Task* evicted = nullptr;
  q.push(a, &evicted);
  q.push(b, &evicted);
  q.push(c, &evicted);  // evicts a
  EXPECT_EQ(evicted, a);
  EXPECT_EQ(q.try_pop(), b);
  AdmissionQueue::Stats s = q.stats();
  EXPECT_EQ(s.accepted, 3u);
  EXPECT_EQ(s.shed, 1u);
  EXPECT_EQ(s.popped, 1u);
  EXPECT_EQ(s.depth, 1u);
  EXPECT_EQ(s.peak_depth, 2u);
  EXPECT_EQ(s.rejected_full, 0u);
  q.close();
  Task* d = make_task();
  EXPECT_EQ(q.push(d, &evicted), AdmissionQueue::PushResult::kRejected);
  EXPECT_EQ(q.stats().rejected_closed, 1u);
  EXPECT_EQ(q.try_pop(), c);
  delete a;
  delete b;
  delete c;
  delete d;
}

TEST(AdmissionQueueTest, StatsSnapshotIsNeverTorn) {
  // Shed accounting race regression: pushers continuously shed the oldest
  // while a reader snapshots stats(); in every snapshot the books must
  // balance exactly — accepted == popped + shed + depth.  Before the
  // queue kept its own accounting under one lock, the equivalent counters
  // lived in separate atomics and a concurrent dump could observe a shed
  // without the accept that caused it.
  AdmissionQueue q(4, BackpressurePolicy::kShedOldest);
  std::atomic<bool> stop{false};
  std::vector<Task*> all_tasks;
  std::mutex all_mu;
  std::thread pusher([&] {
    for (int i = 0; i < 3000; ++i) {
      Task* t = make_task();
      {
        std::lock_guard<std::mutex> lock(all_mu);
        all_tasks.push_back(t);
      }
      Task* ev = nullptr;
      q.push(t, &ev);
    }
    stop.store(true);
  });
  std::thread popper([&] {
    while (!stop.load()) q.try_pop();
  });
  std::uint64_t snapshots = 0;
  do {  // at least one snapshot even if the pusher wins the race outright
    const AdmissionQueue::Stats s = q.stats();
    ASSERT_EQ(s.accepted, s.popped + s.shed + s.depth);
    ASSERT_LE(s.depth, s.peak_depth);
    ++snapshots;
  } while (!stop.load());
  pusher.join();
  popper.join();
  EXPECT_GT(snapshots, 0u);
  const AdmissionQueue::Stats s = q.stats();
  EXPECT_EQ(s.accepted, s.popped + s.shed + s.depth);
  for (Task* t : all_tasks) delete t;
}

}  // namespace
}  // namespace pjsched::runtime
