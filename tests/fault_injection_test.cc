// Tests for deterministic fault injection (src/runtime/fault_injection.h)
// and the ThreadPool's containment of injected failures: the pool must
// survive task-body exceptions, record the jobs as Failed, and keep
// scheduling everything else.
#include "src/runtime/fault_injection.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "src/runtime/thread_pool.h"

namespace pjsched::runtime {
namespace {

using namespace std::chrono_literals;

TEST(FaultInjectorTest, DecisionsAreDeterministic) {
  FaultPlan plan;
  plan.seed = 123;
  plan.task_failure_probability = 0.5;
  const FaultInjector a(plan, 2);
  const FaultInjector b(plan, 4);  // worker count must not affect decisions
  int fails = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.would_fail(i), b.would_fail(i)) << i;
    fails += a.would_fail(i) ? 1 : 0;
  }
  // p = 0.5 over 1000 draws: both outcomes must occur, roughly balanced.
  EXPECT_GT(fails, 400);
  EXPECT_LT(fails, 600);
}

TEST(FaultInjectorTest, SeedChangesTheSequence) {
  FaultPlan a_plan, b_plan;
  a_plan.task_failure_probability = b_plan.task_failure_probability = 0.5;
  a_plan.seed = 1;
  b_plan.seed = 2;
  const FaultInjector a(a_plan, 1), b(b_plan, 1);
  int differing = 0;
  for (std::uint64_t i = 0; i < 256; ++i)
    differing += a.would_fail(i) != b.would_fail(i) ? 1 : 0;
  EXPECT_GT(differing, 0);
}

TEST(FaultInjectorTest, ExplicitIndicesFailExactly) {
  FaultPlan plan;
  plan.fail_task_indices = {2, 0};  // unsorted on purpose
  FaultInjector inj(plan, 1);
  EXPECT_TRUE(inj.next_task_fault().has_value());   // index 0
  EXPECT_FALSE(inj.next_task_fault().has_value());  // index 1
  const auto third = inj.next_task_fault();         // index 2
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(*third, 2u);
  EXPECT_FALSE(inj.next_task_fault().has_value());  // index 3
  EXPECT_EQ(inj.faults_injected(), 2u);
  EXPECT_EQ(inj.tasks_seen(), 4u);
}

TEST(FaultInjectorTest, InvalidPlansThrow) {
  FaultPlan bad_p;
  bad_p.task_failure_probability = 1.5;
  EXPECT_THROW(FaultInjector(bad_p, 1), std::invalid_argument);

  FaultPlan bad_worker;
  bad_worker.worker_stalls = {{/*worker=*/3, /*stall=*/1ms}};
  EXPECT_THROW(FaultInjector(bad_worker, 2), std::invalid_argument);
}

TEST(FaultInjectorTest, EmptyPlanDetection) {
  EXPECT_TRUE(FaultPlan{}.empty());
  FaultPlan p;
  p.task_failure_probability = 0.1;
  EXPECT_FALSE(p.empty());
  FaultPlan q;
  q.admission_delay = 1us;
  EXPECT_FALSE(q.empty());
}

TEST(FaultInjectionPoolTest, FirstTaskFailureMarksJobFailed) {
  PoolOptions options;
  options.workers = 1;
  options.seed = 1;
  options.fault_plan.fail_task_indices = {0};
  ThreadPool pool(options);
  std::atomic<bool> body_ran{false};
  auto job = pool.submit([&](TaskContext&) { body_ran.store(true); });
  job->wait();
  EXPECT_EQ(job->outcome(), JobOutcome::kFailed);
  EXPECT_FALSE(body_ran.load());  // the fault preempts the body
  EXPECT_NE(job->error().find("injected fault"), std::string::npos);
  EXPECT_EQ(pool.stats().faults_injected, 1u);
}

TEST(FaultInjectionPoolTest, PoolSurvivesEveryTaskFailing) {
  PoolOptions options;
  options.workers = 2;
  options.seed = 2;
  options.fault_plan.task_failure_probability = 1.0;
  ThreadPool pool(options);
  constexpr int kJobs = 30;
  for (int i = 0; i < kJobs; ++i)
    pool.submit([](TaskContext& ctx) {
      ctx.spawn([](TaskContext&) {});  // never reached: root faults first
    });
  pool.wait_all();
  const auto counts = pool.recorder().outcome_counts();
  EXPECT_EQ(counts.failed, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(counts.completed, 0u);
  EXPECT_EQ(pool.recorder().max_flow_seconds(), 0.0);  // no completed jobs
  pool.shutdown();  // must not hang or crash
}

TEST(FaultInjectionPoolTest, PartialFailuresLeaveOtherJobsIntact) {
  PoolOptions options;
  options.workers = 1;  // deterministic execution order
  options.seed = 3;
  options.fault_plan.fail_task_indices = {0};  // only the first job's root
  ThreadPool pool(options);
  std::atomic<int> ran{0};
  auto doomed = pool.submit([&](TaskContext&) { ran.fetch_add(1); });
  doomed->wait();  // pin execution-index 0 to this job
  constexpr int kHealthy = 20;
  for (int i = 0; i < kHealthy; ++i)
    pool.submit([&](TaskContext&) { ran.fetch_add(1); });
  pool.wait_all();
  EXPECT_EQ(doomed->outcome(), JobOutcome::kFailed);
  EXPECT_EQ(ran.load(), kHealthy);
  const auto counts = pool.recorder().outcome_counts();
  EXPECT_EQ(counts.failed, 1u);
  EXPECT_EQ(counts.completed, static_cast<std::uint64_t>(kHealthy));
}

TEST(FaultInjectionPoolTest, StallsAndAdmissionDelayOnlySlowThingsDown) {
  PoolOptions options;
  options.workers = 2;
  options.seed = 4;
  options.fault_plan.worker_stalls = {{/*worker=*/0, /*stall=*/100us},
                                      {/*worker=*/1, /*stall=*/50us}};
  options.fault_plan.admission_delay = 50us;
  ThreadPool pool(options);
  std::atomic<int> ran{0};
  constexpr int kJobs = 10;
  for (int i = 0; i < kJobs; ++i)
    pool.submit([&](TaskContext&) { ran.fetch_add(1); });
  pool.wait_all();
  EXPECT_EQ(ran.load(), kJobs);
  EXPECT_EQ(pool.recorder().outcome_counts().completed,
            static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(pool.stats().faults_injected, 0u);
}

TEST(FaultInjectionPoolTest, FaultDuringParallelForUnwindsTheJoin) {
  // The fault hits some task of the job; wait_help must finish draining
  // the join (skipped subtasks still signal the WaitGroup) and then unwind
  // via JobCancelledError instead of spinning forever.
  PoolOptions options;
  options.workers = 2;
  options.seed = 5;
  options.fault_plan.fail_task_indices = {3};
  ThreadPool pool(options);
  auto job = pool.submit([](TaskContext& ctx) {
    parallel_for(ctx, 0, 64, 4, [](std::size_t, std::size_t) {});
  });
  job->wait();
  EXPECT_EQ(job->outcome(), JobOutcome::kFailed);
  pool.shutdown();
}

}  // namespace
}  // namespace pjsched::runtime
