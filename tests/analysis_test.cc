// Tests for DAG analysis (src/dag/analysis.h): topological order, oracle
// recomputation of work/span, Brent bound, ASAP parallelism, stats.
#include "src/dag/analysis.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "src/dag/builders.h"

namespace pjsched::dag {
namespace {

Dag diamond() {
  Dag d;
  d.add_node(2);
  d.add_node(3);
  d.add_node(5);
  d.add_node(1);
  d.add_edge(0, 1);
  d.add_edge(0, 2);
  d.add_edge(1, 3);
  d.add_edge(2, 3);
  d.seal();
  return d;
}

TEST(TopologicalOrderTest, RespectsEdges) {
  const Dag d = diamond();
  const auto order = topological_order(d);
  ASSERT_EQ(order.size(), d.node_count());
  std::vector<std::size_t> pos(d.node_count());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NodeId u = 0; u < d.node_count(); ++u)
    for (NodeId v : d.successors(u)) EXPECT_LT(pos[u], pos[v]);
}

TEST(TopologicalOrderTest, DeterministicSmallestFirst) {
  const Dag d = diamond();
  EXPECT_EQ(topological_order(d), (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(TopologicalOrderTest, CoversAllNodesOnce) {
  sim::Rng rng(7);
  RandomLayeredOptions opt;
  opt.layers = 6;
  opt.max_width = 5;
  const Dag d = random_layered(rng, opt);
  const auto order = topological_order(d);
  std::unordered_set<NodeId> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), d.node_count());
}

TEST(OracleTest, MatchesSealCache) {
  const Dag d = diamond();
  EXPECT_EQ(compute_total_work(d), d.total_work());
  EXPECT_EQ(compute_critical_path(d), d.critical_path());
}

TEST(BrentBoundTest, ChainAndWide) {
  // Chain: W == P, so bound = W/m + W(m-1)/m = W for any m.
  const Dag chain = serial_chain(10, 2);
  EXPECT_DOUBLE_EQ(brent_bound(chain, 4), 20.0);
  // Wide: 16 independent unit nodes, m=4: 16/4 + 1*3/4 = 4.75.
  Dag wide;
  for (int i = 0; i < 16; ++i) wide.add_node(1);
  wide.seal();
  EXPECT_DOUBLE_EQ(brent_bound(wide, 4), 4.75);
}

TEST(BrentBoundTest, ZeroProcessorsRejected) {
  EXPECT_THROW(brent_bound(serial_chain(2, 1), 0), std::invalid_argument);
}

TEST(EarliestStartTest, Diamond) {
  const Dag d = diamond();
  const auto est = earliest_start_times(d);
  EXPECT_EQ(est[0], 0u);
  EXPECT_EQ(est[1], 2u);
  EXPECT_EQ(est[2], 2u);
  EXPECT_EQ(est[3], 7u);  // max(2+3, 2+5)
}

TEST(MaxParallelismTest, Shapes) {
  EXPECT_EQ(max_parallelism_asap(serial_chain(5, 2)), 1u);
  EXPECT_EQ(max_parallelism_asap(star(6)), 6u);
  // Diamond: nodes 1 and 2 overlap in [2, 5) under ASAP.
  EXPECT_EQ(max_parallelism_asap(diamond()), 2u);
  // parallel-for: all grains overlap.
  EXPECT_EQ(max_parallelism_asap(parallel_for_dag(12, 4)), 12u);
}

TEST(StatsTest, Diamond) {
  const DagStats s = compute_stats(diamond());
  EXPECT_EQ(s.nodes, 4u);
  EXPECT_EQ(s.edges, 4u);
  EXPECT_EQ(s.total_work, 11u);
  EXPECT_EQ(s.critical_path, 8u);
  EXPECT_EQ(s.sources, 1u);
  EXPECT_EQ(s.sinks, 1u);
  EXPECT_EQ(s.max_out_degree, 2u);
  EXPECT_EQ(s.max_in_degree, 2u);
  EXPECT_DOUBLE_EQ(s.average_parallelism, 11.0 / 8.0);
}

TEST(AnalysisTest, UnsealedRejected) {
  Dag d;
  d.add_node(1);
  EXPECT_THROW(topological_order(d), std::invalid_argument);
  EXPECT_THROW(compute_total_work(d), std::invalid_argument);
  EXPECT_THROW(compute_critical_path(d), std::invalid_argument);
  EXPECT_THROW(earliest_start_times(d), std::invalid_argument);
  EXPECT_THROW(max_parallelism_asap(d), std::invalid_argument);
  EXPECT_THROW(compute_stats(d), std::invalid_argument);
}

// Property: parallelism bounds — 1 <= W/P <= ASAP width <= node count.
class AnalysisProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalysisProperty, ParallelismBounds) {
  sim::Rng rng(GetParam() * 31 + 5);
  RandomLayeredOptions opt;
  opt.layers = 1 + static_cast<std::size_t>(rng.uniform_int(5));
  opt.max_width = 6;
  opt.max_work = 7;
  opt.edge_probability = 0.4;
  const Dag d = random_layered(rng, opt);

  EXPECT_GE(d.parallelism(), 1.0 - 1e-12);
  EXPECT_LE(d.parallelism(),
            static_cast<double>(max_parallelism_asap(d)) + 1e-12);
  EXPECT_LE(max_parallelism_asap(d), d.node_count());
  EXPECT_LE(d.critical_path(), d.total_work());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace pjsched::dag
