// Tests for the steal-half extension: a successful steal migrates half the
// victim's deque (oldest half) instead of one node.
#include <gtest/gtest.h>

#include "src/core/bounds.h"
#include "src/dag/builders.h"
#include "src/metrics/audit.h"
#include "src/sched/work_stealing.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

using testutil::make_instance;

TEST(StealHalfTest, NameSuffix) {
  EXPECT_EQ(sched::WorkStealingScheduler(0, 1, false, true).name(),
            "admit-first-half");
  EXPECT_EQ(sched::WorkStealingScheduler(8, 1, true, true).name(),
            "steal-8-first-bwf-half");
  EXPECT_TRUE(sched::WorkStealingScheduler(0, 1, false, true).steal_half());
}

TEST(StealHalfTest, AuditCleanAndWorkConserving) {
  auto inst = testutil::random_instance(81, 25, 40.0);
  sim::Trace trace;
  sched::WorkStealingScheduler ws(0, 7, false, true);
  const auto res = ws.run(inst, {4, 1.0}, &trace);
  const auto report = metrics::audit_schedule(inst, {4, 1.0}, trace, res);
  ASSERT_TRUE(report.ok) << report.to_string();
  EXPECT_EQ(res.scheduler_name, "admit-first-half");
  EXPECT_EQ(res.stats.work_steps, inst.total_work());
  EXPECT_GE(res.max_flow + 1e-9, core::opt_sim_lower_bound(inst, 4));
}

TEST(StealHalfTest, FewerStealAttemptsOnWideJob) {
  // A single wide job: distributing 63 grains one steal at a time needs
  // far more successful steals than batch-stealing half the deque.
  auto inst = make_instance({{0.0, dag::parallel_for_dag(63, 20)}});
  sched::WorkStealingScheduler one(0, 5, false, false);
  sched::WorkStealingScheduler half(0, 5, false, true);
  const auto r1 = one.run(inst, {8, 1.0});
  const auto rh = half.run(inst, {8, 1.0});
  EXPECT_LT(rh.stats.successful_steals, r1.stats.successful_steals);
  // Both remain near-greedy: completion within 2x of W/m + P.
  const auto& g = inst.jobs[0].graph;
  const double brent =
      static_cast<double>(g.total_work()) / 8.0 +
      static_cast<double>(g.critical_path());
  EXPECT_LT(r1.completion[0], 2.0 * brent);
  EXPECT_LT(rh.completion[0], 2.0 * brent);
}

TEST(StealHalfTest, SingleNodeDequesBehaveIdentically) {
  // Chains never expose more than zero stealable nodes, so steal-half and
  // steal-one coincide exactly (same rng consumption).
  auto inst = make_instance({
      {0.0, dag::serial_chain(10, 2)},
      {1.0, dag::serial_chain(10, 2)},
  });
  const auto a =
      sched::WorkStealingScheduler(0, 9, false, false).run(inst, {2, 1.0});
  const auto b =
      sched::WorkStealingScheduler(0, 9, false, true).run(inst, {2, 1.0});
  EXPECT_EQ(a.completion, b.completion);
}

TEST(StealHalfTest, DeterministicPerSeed) {
  auto inst = testutil::random_instance(82, 20, 30.0);
  const auto a =
      sched::WorkStealingScheduler(4, 11, false, true).run(inst, {4, 1.0});
  const auto b =
      sched::WorkStealingScheduler(4, 11, false, true).run(inst, {4, 1.0});
  EXPECT_EQ(a.completion, b.completion);
}

}  // namespace
}  // namespace pjsched
