// Baseline scheduler tests (src/sched/baselines.h): LIFO starvation, SJF
// clairvoyant ordering, round-robin rotation.
#include "src/sched/baselines.h"

#include <gtest/gtest.h>

#include "src/dag/builders.h"
#include "src/sched/fifo.h"
#include "tests/test_util.h"

namespace pjsched {
namespace {

using testutil::make_instance;

TEST(LifoTest, NewestJobFirst) {
  auto inst = make_instance({
      {0.0, dag::single_node(10)},
      {2.0, dag::single_node(3)},
  });
  sched::LifoScheduler lifo;
  const auto res = lifo.run(inst, {1, 1.0});
  // Job 1 preempts on arrival.
  EXPECT_DOUBLE_EQ(res.completion[1], 5.0);
  EXPECT_DOUBLE_EQ(res.completion[0], 13.0);
}

TEST(LifoTest, StarvesOldJobsUnderStream) {
  // A steady stream of short jobs starves the first long job; FIFO does
  // not.  This is why max flow time wants FIFO ordering.
  std::vector<std::pair<core::Time, dag::Dag>> jobs;
  jobs.emplace_back(0.0, dag::single_node(5));
  for (int i = 0; i < 20; ++i)
    jobs.emplace_back(1.0 + i, dag::single_node(1));
  auto inst = make_instance(std::move(jobs));

  sched::LifoScheduler lifo;
  sched::FifoScheduler fifo;
  const auto l = lifo.run(inst, {1, 1.0});
  const auto f = fifo.run(inst, {1, 1.0});
  EXPECT_GT(l.max_flow, f.max_flow);
  EXPECT_GT(l.flow[0], 20.0);  // the first job starves behind the stream
}

TEST(SjfTest, ShortestRemainingWorkFirst) {
  auto inst = make_instance({
      {0.0, dag::single_node(10)},
      {0.0, dag::single_node(2)},
      {0.0, dag::single_node(5)},
  });
  sched::SjfScheduler sjf;
  const auto res = sjf.run(inst, {1, 1.0});
  EXPECT_DOUBLE_EQ(res.completion[1], 2.0);
  EXPECT_DOUBLE_EQ(res.completion[2], 7.0);
  EXPECT_DOUBLE_EQ(res.completion[0], 17.0);
}

TEST(SjfTest, UsesRemainingNotTotalWork) {
  // Job 0 (6 units) runs alone until job 1 (4 units) arrives at t=3 with
  // remaining(0) = 3 < 4, so job 0 keeps the processor (SRPT behaviour).
  auto inst = make_instance({
      {0.0, dag::single_node(6)},
      {3.0, dag::single_node(4)},
  });
  sched::SjfScheduler sjf;
  const auto res = sjf.run(inst, {1, 1.0});
  EXPECT_DOUBLE_EQ(res.completion[0], 6.0);
  EXPECT_DOUBLE_EQ(res.completion[1], 10.0);
}

TEST(RoundRobinTest, AllJobsComplete) {
  auto inst = testutil::random_instance(31, 25, 30.0);
  sched::RoundRobinScheduler rr;
  const auto res = rr.run(inst, {2, 1.0});
  for (core::Time c : res.completion) EXPECT_GE(c, 0.0);
  EXPECT_EQ(res.scheduler_name, "round-robin");
}

TEST(RoundRobinTest, SharesBetweenTwoEqualJobs) {
  // Two equal sequential jobs, one processor: round robin alternates, so
  // both finish close together (within one job's length), unlike FIFO.
  auto inst = make_instance({
      {0.0, dag::single_node(10)},
      {0.0, dag::single_node(10)},
  });
  sched::RoundRobinScheduler rr;
  const auto res = rr.run(inst, {1, 1.0});
  EXPECT_DOUBLE_EQ(std::max(res.completion[0], res.completion[1]), 20.0);
}

TEST(BaselineNamesTest, ReportedNames) {
  auto inst = make_instance({{0.0, dag::single_node(1)}});
  EXPECT_EQ(sched::LifoScheduler().run(inst, {1, 1.0}).scheduler_name, "lifo");
  EXPECT_EQ(sched::SjfScheduler().run(inst, {1, 1.0}).scheduler_name, "sjf");
}

}  // namespace
}  // namespace pjsched
