// Tests for parallel_reduce / parallel_invoke
// (src/runtime/parallel_algorithms.h).
#include "src/runtime/parallel_algorithms.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>

namespace pjsched::runtime {
namespace {

TEST(ParallelReduceTest, SumsCorrectly) {
  ThreadPool pool({.workers = 3, .steal_k = 0, .seed = 1});
  std::uint64_t result = 0;
  auto job = pool.submit([&](TaskContext& ctx) {
    result = parallel_reduce<std::uint64_t>(
        ctx, 1, 10001, 128, 0,
        [](std::size_t lo, std::size_t hi) {
          std::uint64_t s = 0;
          for (std::size_t i = lo; i < hi; ++i) s += i;
          return s;
        },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
  });
  job->wait();
  EXPECT_EQ(result, 10000ull * 10001 / 2);
}

TEST(ParallelReduceTest, EmptyRangeGivesIdentity) {
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 2});
  int result = -1;
  auto job = pool.submit([&](TaskContext& ctx) {
    result = parallel_reduce<int>(
        ctx, 5, 5, 4, 42, [](std::size_t, std::size_t) { return 7; },
        [](int a, int b) { return a + b; });
  });
  job->wait();
  EXPECT_EQ(result, 42);
}

TEST(ParallelReduceTest, DeterministicFoldOrder) {
  // Non-associative reduction (string concatenation): chunk order must be
  // preserved regardless of which worker computed which chunk.
  ThreadPool pool({.workers = 4, .steal_k = 0, .seed = 3});
  std::string result;
  auto job = pool.submit([&](TaskContext& ctx) {
    result = parallel_reduce<std::string>(
        ctx, 0, 8, 2, std::string(),
        [](std::size_t lo, std::size_t) { return std::to_string(lo / 2); },
        [](std::string a, std::string b) { return a + b; });
  });
  job->wait();
  EXPECT_EQ(result, "0123");
}

TEST(ParallelReduceTest, SingleChunkInline) {
  ThreadPool pool({.workers = 2, .steal_k = 0, .seed = 4});
  int result = 0;
  auto job = pool.submit([&](TaskContext& ctx) {
    result = parallel_reduce<int>(
        ctx, 0, 3, 100, 5, [](std::size_t lo, std::size_t hi) {
          return static_cast<int>(hi - lo);
        },
        [](int a, int b) { return a + b; });
  });
  job->wait();
  EXPECT_EQ(result, 8);
}

TEST(ParallelInvokeTest, RunsAllBranches) {
  ThreadPool pool({.workers = 3, .steal_k = 0, .seed = 5});
  std::atomic<int> mask{0};
  auto job = pool.submit([&](TaskContext& ctx) {
    parallel_invoke(
        ctx, [&](TaskContext&) { mask.fetch_or(1); },
        [&](TaskContext&) { mask.fetch_or(2); },
        [&](TaskContext&) { mask.fetch_or(4); },
        [&](TaskContext&) { mask.fetch_or(8); });
  });
  job->wait();
  EXPECT_EQ(mask.load(), 15);
}

TEST(ParallelInvokeTest, SingleBranchInline) {
  ThreadPool pool({.workers = 1, .steal_k = 0, .seed = 6});
  int ran = 0;
  auto job = pool.submit([&](TaskContext& ctx) {
    parallel_invoke(ctx, [&](TaskContext&) { ran = 1; });
  });
  job->wait();
  EXPECT_EQ(ran, 1);
}

TEST(ParallelInvokeTest, NestedInvokeQuicksortStyle) {
  // Recursive parallel divide-and-conquer: sum an array via nested invokes.
  ThreadPool pool({.workers = 3, .steal_k = 0, .seed = 7});
  std::vector<int> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<int>(i % 7);
  std::atomic<long long> total{0};

  struct Summer {
    static void sum(TaskContext& ctx, const std::vector<int>& d,
                    std::size_t lo, std::size_t hi,
                    std::atomic<long long>& out) {
      if (hi - lo <= 256) {
        long long s = 0;
        for (std::size_t i = lo; i < hi; ++i) s += d[i];
        out.fetch_add(s);
        return;
      }
      const std::size_t mid = lo + (hi - lo) / 2;
      // Each branch recurses through *its own* context (the spawned branch
      // may run on another worker).
      parallel_invoke(
          ctx,
          [&d, lo, mid, &out](TaskContext& inner) { sum(inner, d, lo, mid, out); },
          [&d, mid, hi, &out](TaskContext& inner) { sum(inner, d, mid, hi, out); });
    }
  };

  auto job = pool.submit([&](TaskContext& ctx) {
    Summer::sum(ctx, data, 0, data.size(), total);
  });
  job->wait();
  long long expect = 0;
  for (int v : data) expect += v;
  EXPECT_EQ(total.load(), expect);
}

}  // namespace
}  // namespace pjsched::runtime
