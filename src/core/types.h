// Fundamental scheduling types mirroring the paper's Table 1:
//
//   r_i  arrival (release) time of job J_i     -> JobSpec::arrival
//   w_i  weight of J_i                         -> JobSpec::weight
//   c_i  completion time in a schedule         -> ScheduleResult::completion
//   F_i  flow time c_i - r_i                   -> ScheduleResult::flow
//   W_i  total work of J_i                     -> JobSpec::graph.total_work()
//   P_i  critical-path length of J_i           -> JobSpec::graph.critical_path()
//   m    number of processors                  -> MachineConfig::processors
//
// Times are in abstract *unit-work time*: a speed-1 processor performs one
// unit of work per unit of time; a speed-s processor performs one unit per
// 1/s time (the paper's "time step").  The workload layer maps units to
// seconds for reporting.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/dag/dag.h"

namespace pjsched::core {

using Time = double;
using JobId = std::uint32_t;

inline constexpr Time kNoTime = -1.0;

/// One online job: a sealed DAG plus its release time and weight.
struct JobSpec {
  Time arrival = 0.0;
  double weight = 1.0;  ///< w_i; 1.0 in the unweighted setting
  dag::Dag graph;
};

/// A scheduled change to the machine: at `time`, the processor count and
/// speed become (`processors`, `speed`).  Processor loss models fail-stop
/// worker failure; speed < 1 models machine-wide slowdown — both are the
/// adversarial inverse of the paper's speed augmentation, the regime where
/// max-flow-time guarantees are stressed.
struct MachineEvent {
  Time time = 0.0;
  unsigned processors = 1;  ///< new m (>= 1)
  double speed = 1.0;       ///< new s (> 0)
};

/// The machine the scheduler runs on.  `speed` is the resource-augmentation
/// factor s: the paper compares an s-speed algorithm against a 1-speed
/// optimum.
struct MachineConfig {
  unsigned processors = 1;  ///< m
  double speed = 1.0;       ///< s >= 1 in all of the paper's analyses
  /// Optional degradation timeline, applied in time order by the engines.
  /// Empty (the default) reproduces the paper's fault-free machine.  The
  /// step engine supports processor changes only (its step length is tied
  /// to the configured speed; see step_engine.h).
  std::vector<MachineEvent> degradation;
};

/// Aggregate engine counters, populated where meaningful.
struct EngineStats {
  std::uint64_t steal_attempts = 0;    ///< step engine: total steal attempts
  std::uint64_t successful_steals = 0; ///< step engine: attempts that got a node
  std::uint64_t admissions = 0;        ///< step engine: jobs popped from the global queue
  std::uint64_t work_steps = 0;        ///< step engine: worker-steps spent working
  std::uint64_t idle_steps = 0;        ///< worker-steps spent not working (stealing/idling)
  std::uint64_t macro_jumps = 0;       ///< step engine: all-busy step runs batched by
                                       ///< the fast path (0 under exact_steps)
  std::uint64_t decision_points = 0;   ///< event engine: allocation recomputations
  std::uint64_t fast_decisions = 0;    ///< event engine: decision points served by the
                                       ///< incremental virtual-work-clock path (0 under
                                       ///< exact or a dynamic policy)
  std::uint64_t arena_slots = 0;       ///< both engines: distinct job-arena slots ever
                                       ///< created — the high-water mark of resident job
                                       ///< state (slots recycle as jobs complete)
  std::uint64_t peak_live_jobs = 0;    ///< both engines: maximum jobs simultaneously
                                       ///< live (arrived, not yet completed)
  double idle_processor_time = 0.0;    ///< event engine: processor-time spent idle
};

/// Outcome of running one scheduler on one instance.
struct ScheduleResult {
  std::string scheduler_name;
  std::vector<Time> completion;  ///< c_i per job, kNoTime if unfinished (never in a valid run)
  std::vector<Time> flow;        ///< F_i = c_i - r_i

  Time max_flow = 0.0;           ///< max_i F_i
  Time max_weighted_flow = 0.0;  ///< max_i w_i F_i
  Time mean_flow = 0.0;
  Time makespan = 0.0;           ///< max_i c_i
  JobId argmax_flow = 0;         ///< job attaining max_i w_i F_i

  EngineStats stats;

  /// Fills the summary fields from `completion` and the instance's arrivals
  /// and weights.  Call after populating `completion`.
  void finalize(const std::vector<JobSpec>& jobs);
};

/// A full online problem instance.
struct Instance {
  std::vector<JobSpec> jobs;

  std::size_t size() const { return jobs.size(); }

  /// Sum of all jobs' work.
  dag::Work total_work() const;
  /// max_i P_i — every schedule's max flow is at least max_i P_i / s... and
  /// OPT's (speed 1) is at least this.
  dag::Work max_critical_path() const;
  /// max_i W_i.
  dag::Work max_work() const;

  /// Throws std::invalid_argument unless every job has a sealed non-empty
  /// DAG, a non-negative arrival, and a positive weight.
  void validate() const;

  /// Indices of jobs sorted by (arrival, index).
  std::vector<JobId> arrival_order() const;
};

}  // namespace pjsched::core
