// Streaming instance sources: yield jobs one at a time, in arrival order,
// without materializing the whole job list.
//
// A JobSource is the memory-bounded counterpart of Instance.  The engines
// pull jobs lazily as simulated time reaches their arrivals, move each
// job's DAG into a recycling per-run arena, and free it when the job's
// last node finishes — so a 10^6-job run holds O(live jobs) state instead
// of O(all jobs).  Instance is one implementation (InstanceSource borrows
// the already-materialized DAGs); the workload generators are another
// (workload::GeneratedJobSource draws each job on demand with the same
// per-job RNG derivation as generate_instance, so streamed and
// materialized runs of the same configuration are bit-identical — see
// docs/simulation-model.md, "Scaling to 10^6+ jobs").
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "src/core/types.h"
#include "src/metrics/stats.h"

namespace pjsched::core {

/// One job as a source yields it: identity, release time, weight, and the
/// sealed DAG — either owned (`graph`, moved into the engine's arena) or
/// borrowed from storage that outlives the run (`borrowed`, e.g. an
/// Instance's job list).
struct StreamedJob {
  JobId id = 0;  ///< dense identity; names the job in completions/traces
  Time arrival = 0.0;
  double weight = 1.0;
  dag::Dag graph;                      ///< owned DAG; used when borrowed == nullptr
  const dag::Dag* borrowed = nullptr;  ///< non-owned DAG (outlives the run)

  const dag::Dag& dag() const { return borrowed != nullptr ? *borrowed : graph; }
};

/// Pull interface over an online instance in arrival order.  The base class
/// keeps a one-job lookahead so engines can peek the next arrival time
/// (idle jumps, admission loops) without consuming it; implementations
/// override produce().  Arrivals must be non-decreasing — the engines
/// enforce this and throw std::invalid_argument on violation.
class JobSource {
 public:
  virtual ~JobSource() = default;

  /// Total number of jobs this source will yield (all in-repo sources know
  /// it up front; it sizes per-id result vectors for materialized runs).
  virtual std::size_t size() const = 0;

  /// True once every job has been taken.
  bool done() { fill(); return exhausted_; }

  /// Arrival time of the next job; only valid when !done().
  Time next_arrival() { fill(); return lookahead_.arrival; }

  /// Consumes and returns the next job; only valid when !done().
  StreamedJob take() {
    fill();
    have_ = false;
    return std::move(lookahead_);
  }

 protected:
  /// Yields the next job into `out`; returns false when exhausted.
  virtual bool produce(StreamedJob& out) = 0;

 private:
  void fill() {
    if (have_ || exhausted_) return;
    if (produce(lookahead_))
      have_ = true;
    else
      exhausted_ = true;
  }

  StreamedJob lookahead_;
  bool have_ = false;
  bool exhausted_ = false;
};

/// Streams an already-materialized Instance in arrival order, borrowing its
/// DAGs.  StreamedJob::id is the job's index in the Instance, so per-id
/// results line up with Instance::jobs — this is how the engines' classic
/// Instance entry points run, making streamed and materialized execution
/// one code path.  The Instance must outlive the source and the run.
class InstanceSource final : public JobSource {
 public:
  explicit InstanceSource(const Instance& instance);

  std::size_t size() const override { return instance_->size(); }

 protected:
  bool produce(StreamedJob& out) override;

 private:
  const Instance* instance_;
  std::vector<JobId> order_;
  std::size_t next_ = 0;
};

/// Drains `source` into a materialized Instance (jobs indexed by their
/// streamed id, which must be dense in [0, size)).  The memory-unbounded
/// inverse of InstanceSource; generate_instance is implemented with it.
Instance materialize(JobSource& source);

/// Outcome of a streamed run: exact extremes plus bounded-memory summary
/// statistics — the streaming counterpart of ScheduleResult, with
/// O(reservoir) instead of O(all jobs) state behind it.
///
/// max_flow, max_weighted_flow, argmax_flow (smallest id on weighted-flow
/// ties), and makespan are exact and bit-identical to what
/// ScheduleResult::finalize computes for the same schedule.  mean_flow is
/// exact up to summation order (completion order here, id order there).
/// flow's quantiles come from StreamingFlowStats' reservoir: exact while
/// jobs <= the reservoir capacity, an unbiased estimate beyond.
struct StreamRunResult {
  std::string scheduler_name;
  std::size_t jobs = 0;  ///< jobs completed (0 is legal: an empty source)
  Time max_flow = 0.0;
  Time max_weighted_flow = 0.0;
  Time mean_flow = 0.0;
  Time makespan = 0.0;
  JobId argmax_flow = 0;        ///< job attaining max_i w_i F_i
  metrics::Summary flow;        ///< reservoir-backed order statistics
  bool flow_quantiles_exact = false;  ///< reservoir held every sample
  EngineStats stats;
};

}  // namespace pjsched::core
