#include "src/core/run.h"

#include <stdexcept>

#include "src/sched/baselines.h"
#include "src/sched/bwf.h"
#include "src/sched/fifo.h"
#include "src/sched/opt_bound.h"
#include "src/sched/work_stealing.h"

namespace pjsched::core {

std::unique_ptr<sched::Scheduler> make_scheduler(const SchedulerSpec& spec) {
  switch (spec.kind) {
    case SchedulerKind::kFifo:
      return std::make_unique<sched::FifoScheduler>(spec.exact_engine);
    case SchedulerKind::kBwf:
      return std::make_unique<sched::BwfScheduler>(spec.exact_engine);
    case SchedulerKind::kAdmitFirst:
      return std::make_unique<sched::WorkStealingScheduler>(
          0, spec.seed, spec.admit_by_weight);
    case SchedulerKind::kStealKFirst:
      return std::make_unique<sched::WorkStealingScheduler>(
          spec.steal_k, spec.seed, spec.admit_by_weight);
    case SchedulerKind::kOptBound:
      return std::make_unique<sched::OptLowerBound>();
    case SchedulerKind::kLifo:
      return std::make_unique<sched::LifoScheduler>(spec.exact_engine);
    case SchedulerKind::kSjf:
      return std::make_unique<sched::SjfScheduler>(spec.exact_engine);
    case SchedulerKind::kRoundRobin:
      return std::make_unique<sched::RoundRobinScheduler>(spec.exact_engine);
    case SchedulerKind::kEqui:
      return std::make_unique<sched::EquiScheduler>(spec.exact_engine);
  }
  throw std::invalid_argument("make_scheduler: unknown kind");
}

SchedulerSpec parse_scheduler(const std::string& name_in) {
  SchedulerSpec spec;
  std::string name = name_in;
  // "-exact" suffix selects the event engine's reference path.
  if (name.size() > 6 && name.compare(name.size() - 6, 6, "-exact") == 0) {
    spec.exact_engine = true;
    name.resize(name.size() - 6);
  }
  // "-bwf" suffix selects weighted admission for the work-stealing names.
  if (name.size() > 4 && name.compare(name.size() - 4, 4, "-bwf") == 0 &&
      name != "-bwf") {
    spec.admit_by_weight = true;
    name.resize(name.size() - 4);
  }
  if (name == "fifo") {
    spec.kind = SchedulerKind::kFifo;
  } else if (name == "bwf") {
    spec.kind = SchedulerKind::kBwf;
  } else if (name == "admit-first") {
    spec.kind = SchedulerKind::kAdmitFirst;
  } else if (name == "opt" || name == "opt-lower-bound") {
    spec.kind = SchedulerKind::kOptBound;
  } else if (name == "lifo") {
    spec.kind = SchedulerKind::kLifo;
  } else if (name == "sjf") {
    spec.kind = SchedulerKind::kSjf;
  } else if (name == "round-robin") {
    spec.kind = SchedulerKind::kRoundRobin;
  } else if (name == "equi") {
    spec.kind = SchedulerKind::kEqui;
  } else if (name.rfind("steal-", 0) == 0 &&
             name.size() > 12 &&
             name.compare(name.size() - 6, 6, "-first") == 0) {
    const std::string k_str = name.substr(6, name.size() - 12);
    try {
      std::size_t pos = 0;
      const unsigned long k = std::stoul(k_str, &pos);
      if (pos != k_str.size()) throw std::invalid_argument(k_str);
      spec.kind = SchedulerKind::kStealKFirst;
      spec.steal_k = static_cast<unsigned>(k);
    } catch (const std::exception&) {
      throw std::invalid_argument("parse_scheduler: bad k in '" + name + "'");
    }
  } else {
    throw std::invalid_argument("parse_scheduler: unknown scheduler '" +
                                name_in + "'");
  }
  if (spec.admit_by_weight && spec.kind != SchedulerKind::kAdmitFirst &&
      spec.kind != SchedulerKind::kStealKFirst)
    throw std::invalid_argument(
        "parse_scheduler: '-bwf' applies only to work-stealing schedulers ('" +
        name_in + "')");
  if (spec.exact_engine && spec.kind != SchedulerKind::kFifo &&
      spec.kind != SchedulerKind::kBwf && spec.kind != SchedulerKind::kLifo &&
      spec.kind != SchedulerKind::kSjf &&
      spec.kind != SchedulerKind::kRoundRobin &&
      spec.kind != SchedulerKind::kEqui)
    throw std::invalid_argument(
        "parse_scheduler: '-exact' applies only to event-engine schedulers ('" +
        name_in + "')");
  return spec;
}

ScheduleResult run_scheduler(const Instance& instance,
                             const SchedulerSpec& spec,
                             const MachineConfig& machine, sim::Trace* trace) {
  return make_scheduler(spec)->run(instance, machine, trace);
}

StreamRunResult run_scheduler_streamed(JobSource& source,
                                       const SchedulerSpec& spec,
                                       const MachineConfig& machine,
                                       metrics::StreamingFlowStats* stats,
                                       sim::Trace* trace) {
  return make_scheduler(spec)->run_streamed(source, machine, stats, trace);
}

StreamRatioResult run_scheduler_streamed_with_bounds(
    JobSource& run_source, JobSource& bound_source, const SchedulerSpec& spec,
    const MachineConfig& machine, metrics::StreamingFlowStats* stats,
    sim::Trace* trace) {
  StreamRatioResult out;
  // Bounds first: the pass holds O(1) state, so a malformed twin pair fails
  // before the expensive simulation runs.
  out.bounds = stream_lower_bounds(bound_source, machine.processors);
  out.run = run_scheduler_streamed(run_source, spec, machine, stats, trace);
  if (out.bounds.jobs != out.run.jobs)
    throw std::invalid_argument(
        "run_scheduler_streamed_with_bounds: twin sources disagree (" +
        std::to_string(out.bounds.jobs) + " jobs for bounds vs " +
        std::to_string(out.run.jobs) + " for the run)");
  if (out.bounds.combined > 0.0)
    out.ratio = out.run.max_flow / out.bounds.combined;
  if (out.bounds.weighted_combined > 0.0)
    out.weighted_ratio =
        out.run.max_weighted_flow / out.bounds.weighted_combined;
  return out;
}

}  // namespace pjsched::core
