// Maximum stretch for DAG jobs (paper Section 7, Remarks).
//
// For sequential jobs, max stretch is max weighted flow with weight =
// 1/processing-time.  For DAG jobs "processing time" has two natural
// readings, both captured by weighted flow time and hence by BWF:
//   * by-work: w_i = 1/W_i   (stretch relative to total computation),
//   * by-span: w_i = 1/P_i   (stretch relative to the job's inherent
//     critical-path length — the best possible flow on any machine).
// Since BWF is (1+eps)-speed O(1/eps^2)-competitive for weighted max flow
// and strong lower bounds exist without augmentation, running BWF with
// these weights is essentially the best possible online strategy for
// maximum stretch in either interpretation.
#pragma once

#include "src/core/types.h"

namespace pjsched::core {

enum class StretchKind {
  kByWork,  ///< F_i / W_i
  kBySpan,  ///< F_i / P_i
};

/// The stretch denominator of one job under the chosen interpretation.
double stretch_denominator(const JobSpec& job, StretchKind kind);

/// Overwrites every job's weight with 1/denominator so that BWF (or any
/// weighted-flow scheduler) optimizes max stretch of the given kind.
void apply_stretch_weights(Instance& instance, StretchKind kind);

/// max_i F_i / denom_i for a finished schedule (uses the instance's DAGs,
/// not its weights, so it is meaningful regardless of what weights the
/// scheduler saw).
double max_stretch(const Instance& instance, const ScheduleResult& result,
                   StretchKind kind);

/// Lower bound on the optimal max stretch at speed 1:
///   by-span: >= 1 always (a job cannot beat its critical path);
///   by-work: >= max_i P_i/W_i... and >= 1/m of any load argument — we
/// report the span-based bound max_i (P_i / denom_i), the direct analogue
/// of the weighted span bound.
double stretch_span_lower_bound(const Instance& instance, StretchKind kind);

}  // namespace pjsched::core
