#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "src/core/types.h"

namespace pjsched::core {

void ScheduleResult::finalize(const std::vector<JobSpec>& jobs) {
  if (completion.size() != jobs.size())
    throw std::logic_error("ScheduleResult::finalize: completion size mismatch");
  flow.resize(jobs.size());
  max_flow = 0.0;
  max_weighted_flow = 0.0;
  mean_flow = 0.0;
  makespan = 0.0;
  argmax_flow = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (completion[i] < jobs[i].arrival)
      throw std::logic_error(
          "ScheduleResult::finalize: job completes before it arrives");
    flow[i] = completion[i] - jobs[i].arrival;
    mean_flow += flow[i];
    makespan = std::max(makespan, completion[i]);
    max_flow = std::max(max_flow, flow[i]);
    const Time wf = jobs[i].weight * flow[i];
    if (wf > max_weighted_flow) {
      max_weighted_flow = wf;
      argmax_flow = static_cast<JobId>(i);
    }
  }
  if (!jobs.empty()) mean_flow /= static_cast<Time>(jobs.size());
}

dag::Work Instance::total_work() const {
  dag::Work w = 0;
  for (const JobSpec& j : jobs) w += j.graph.total_work();
  return w;
}

dag::Work Instance::max_critical_path() const {
  dag::Work p = 0;
  for (const JobSpec& j : jobs) p = std::max(p, j.graph.critical_path());
  return p;
}

dag::Work Instance::max_work() const {
  dag::Work w = 0;
  for (const JobSpec& j : jobs) w = std::max(w, j.graph.total_work());
  return w;
}

void Instance::validate() const {
  if (jobs.empty()) throw std::invalid_argument("Instance: no jobs");
  for (const JobSpec& j : jobs) {
    if (!j.graph.sealed())
      throw std::invalid_argument("Instance: job DAG not sealed");
    if (j.graph.node_count() == 0)
      throw std::invalid_argument("Instance: empty job DAG");
    if (j.arrival < 0.0)
      throw std::invalid_argument("Instance: negative arrival time");
    if (!(j.weight > 0.0))
      throw std::invalid_argument("Instance: non-positive weight");
  }
}

std::vector<JobId> Instance::arrival_order() const {
  std::vector<JobId> order(jobs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](JobId a, JobId b) {
    return jobs[a].arrival < jobs[b].arrival;
  });
  return order;
}

}  // namespace pjsched::core
