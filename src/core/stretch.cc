#include "src/core/stretch.h"

#include <algorithm>
#include <stdexcept>

namespace pjsched::core {

double stretch_denominator(const JobSpec& job, StretchKind kind) {
  switch (kind) {
    case StretchKind::kByWork:
      return static_cast<double>(job.graph.total_work());
    case StretchKind::kBySpan:
      return static_cast<double>(job.graph.critical_path());
  }
  throw std::invalid_argument("stretch_denominator: unknown kind");
}

void apply_stretch_weights(Instance& instance, StretchKind kind) {
  for (JobSpec& job : instance.jobs)
    job.weight = 1.0 / stretch_denominator(job, kind);
}

double max_stretch(const Instance& instance, const ScheduleResult& result,
                   StretchKind kind) {
  if (result.flow.size() != instance.size())
    throw std::invalid_argument("max_stretch: result/instance size mismatch");
  double best = 0.0;
  for (std::size_t i = 0; i < instance.size(); ++i)
    best = std::max(best,
                    result.flow[i] / stretch_denominator(instance.jobs[i], kind));
  return best;
}

double stretch_span_lower_bound(const Instance& instance, StretchKind kind) {
  double best = 0.0;
  for (const JobSpec& job : instance.jobs)
    best = std::max(best, static_cast<double>(job.graph.critical_path()) /
                              stretch_denominator(job, kind));
  return best;
}

}  // namespace pjsched::core
