// Lower bounds on the optimal maximum (weighted) flow time of an instance.
// Every feasible 1-speed schedule satisfies  OPT >= each of these, so they
// serve as the denominator in empirical competitive-ratio measurements
// (the paper's Section 6 uses exactly the fully-parallelizable FIFO bound).
#pragma once

#include "src/core/types.h"

namespace pjsched::core {

/// max_i P_i — no scheduler can finish a job faster than its critical path
/// at speed 1 (paper Proposition 2.1 / Lemma 3.2's OPT >= P_i argument).
double span_lower_bound(const Instance& instance);

/// max_i W_i / m — a job's work spread across all m processors.
double work_lower_bound(const Instance& instance, unsigned m);

/// The paper's simulated-OPT bound (Section 6): each job fully
/// parallelizable with length W_i/m, scheduled FIFO on one machine.
/// Dominates work_lower_bound and captures queueing backlog.
double opt_sim_lower_bound(const Instance& instance, unsigned m);

/// max of all of the above: the tightest bound this library computes.
double combined_lower_bound(const Instance& instance, unsigned m);

/// Weighted variants for the BWF experiments: lower bounds on
/// OPT = min max_i w_i F_i.
///   span:  max_i w_i P_i
double weighted_span_lower_bound(const Instance& instance);
///   work:  max_i w_i W_i / m
double weighted_work_lower_bound(const Instance& instance, unsigned m);
///   combined
double weighted_combined_lower_bound(const Instance& instance, unsigned m);

}  // namespace pjsched::core
