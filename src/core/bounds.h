// Lower bounds on the optimal maximum (weighted) flow time of an instance.
// Every feasible 1-speed schedule satisfies  OPT >= each of these, so they
// serve as the denominator in empirical competitive-ratio measurements
// (the paper's Section 6 uses exactly the fully-parallelizable FIFO bound).
//
// The core computation is streaming: stream_lower_bounds consumes a
// JobSource in one pass — resident state is the current job plus a handful
// of scalars, so the bounds scale to the 10^6+-job sources the engines
// stream (run_scheduler_streamed_with_bounds in core/run.h reports the
// competitive ratio without ever materializing).  The per-Instance
// functions below are thin InstanceSource adapters over that pass and
// return bit-identical values to the historical materialized loops: every
// bound is a running max of per-job terms (order-independent), and the
// FIFO-frontier recurrence visits jobs in exactly the arrival order the
// materialized loop iterated.
#pragma once

#include <cstddef>

#include "src/core/job_source.h"
#include "src/core/types.h"

namespace pjsched::core {

/// Every lower bound this library computes, from one pass over a source.
struct LowerBoundSet {
  std::size_t jobs = 0;        ///< jobs the pass consumed
  double span = 0.0;           ///< max_i P_i
  double work = 0.0;           ///< max_i W_i / m
  double opt_sim = 0.0;        ///< Section 6 simulated-OPT FIFO bound
  double combined = 0.0;       ///< max of the three above
  double weighted_span = 0.0;  ///< max_i w_i P_i
  double weighted_work = 0.0;  ///< max_i w_i W_i / m
  double weighted_combined = 0.0;  ///< max of the weighted bounds
};

/// One-pass streamed computation of every bound; consumes `source` to
/// exhaustion.  Throws std::invalid_argument when m == 0.
LowerBoundSet stream_lower_bounds(JobSource& source, unsigned m);

/// max_i P_i — no scheduler can finish a job faster than its critical path
/// at speed 1 (paper Proposition 2.1 / Lemma 3.2's OPT >= P_i argument).
double span_lower_bound(const Instance& instance);

/// max_i W_i / m — a job's work spread across all m processors.
double work_lower_bound(const Instance& instance, unsigned m);

/// The paper's simulated-OPT bound (Section 6): each job fully
/// parallelizable with length W_i/m, scheduled FIFO on one machine.
/// Dominates work_lower_bound and captures queueing backlog.
double opt_sim_lower_bound(const Instance& instance, unsigned m);

/// max of all of the above: the tightest bound this library computes.
double combined_lower_bound(const Instance& instance, unsigned m);

/// Weighted variants for the BWF experiments: lower bounds on
/// OPT = min max_i w_i F_i.
///   span:  max_i w_i P_i
double weighted_span_lower_bound(const Instance& instance);
///   work:  max_i w_i W_i / m
double weighted_work_lower_bound(const Instance& instance, unsigned m);
///   combined
double weighted_combined_lower_bound(const Instance& instance, unsigned m);

}  // namespace pjsched::core
