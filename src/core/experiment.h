// Figure-2-style experiment driver: sweep (workload distribution x QPS x
// scheduler), simulate, and collect one row per cell with max/mean/p99 flow
// (reported in milliseconds) and the ratio to the simulated-OPT lower
// bound.  Benches and examples print the resulting table.
#pragma once

#include <string>
#include <vector>

#include "src/core/run.h"
#include "src/core/types.h"
#include "src/metrics/table.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"

namespace pjsched::core {

struct ExperimentConfig {
  unsigned processors = 16;  ///< the paper's dual 8-core testbed
  double speed = 1.0;
  std::size_t num_jobs = 20000;
  std::vector<double> qps_values;
  std::vector<SchedulerSpec> schedulers;
  std::size_t grains = 32;
  double units_per_ms = 10.0;
  std::uint64_t seed = 42;
  std::vector<double> weight_classes = {1.0};
};

struct ExperimentRow {
  std::string workload;
  double qps = 0.0;
  double utilization = 0.0;
  std::string scheduler;
  double max_flow_ms = 0.0;
  double mean_flow_ms = 0.0;
  double p99_flow_ms = 0.0;
  double max_weighted_flow_ms = 0.0;
  double opt_bound_ms = 0.0;   ///< simulated-OPT max flow for this cell
  double ratio_to_opt = 0.0;   ///< max_flow / opt_bound
};

/// Runs the full sweep.  Each (qps) cell generates one instance (shared by
/// all schedulers of that cell, so comparisons are paired) and additionally
/// evaluates the OPT lower bound on it.
std::vector<ExperimentRow> run_experiment(const workload::WorkDistribution& dist,
                                          const ExperimentConfig& cfg);

/// Memory-bounded counterpart: each cell streams one
/// workload::GeneratedJobSource per scheduler (plus one for the lower
/// bounds) instead of materializing an instance, so num_jobs can be 10^6+
/// while resident state stays O(live jobs).  The sources are RNG-identical
/// to generate_instance, so max/opt/ratio columns are bitwise-equal to
/// run_experiment on the same config; p99 is reservoir-exact while a cell
/// completes <= 4096 jobs and an estimate beyond that; mean differs only by
/// floating-point summation order.  Schedulers without a streamed path
/// (kOptBound) throw — the OPT column instead comes from the streamed
/// opt_sim lower bound, which is bitwise the same value at speed 1.
std::vector<ExperimentRow> run_experiment_streamed(
    const workload::WorkDistribution& dist, const ExperimentConfig& cfg);

/// Renders rows as the table the paper's Figure 2 plots (max flow time in
/// seconds per scheduler per QPS).
metrics::Table rows_to_table(const std::vector<ExperimentRow>& rows);

}  // namespace pjsched::core
