#include "src/core/job_source.h"

#include <stdexcept>

namespace pjsched::core {

InstanceSource::InstanceSource(const Instance& instance)
    : instance_(&instance), order_(instance.arrival_order()) {}

bool InstanceSource::produce(StreamedJob& out) {
  if (next_ >= order_.size()) return false;
  const JobId j = order_[next_++];
  out.id = j;
  out.arrival = instance_->jobs[j].arrival;
  out.weight = instance_->jobs[j].weight;
  out.borrowed = &instance_->jobs[j].graph;
  out.graph = dag::Dag{};
  return true;
}

Instance materialize(JobSource& source) {
  Instance inst;
  inst.jobs.resize(source.size());
  std::size_t yielded = 0;
  while (!source.done()) {
    StreamedJob job = source.take();
    if (job.id >= inst.jobs.size())
      throw std::logic_error("materialize: streamed id out of range");
    JobSpec& spec = inst.jobs[job.id];
    spec.arrival = job.arrival;
    spec.weight = job.weight;
    spec.graph = job.borrowed != nullptr ? *job.borrowed : std::move(job.graph);
    ++yielded;
  }
  if (yielded != inst.jobs.size())
    throw std::logic_error("materialize: source yielded fewer jobs than size()");
  return inst;
}

}  // namespace pjsched::core
