// One-call public API: name a scheduler, hand it an instance and a machine,
// get a ScheduleResult.  This is the entry point examples and benches use;
// the individual scheduler classes in src/sched remain available for
// callers that need more control.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/core/bounds.h"
#include "src/core/job_source.h"
#include "src/core/types.h"
#include "src/sched/scheduler.h"

namespace pjsched::core {

enum class SchedulerKind {
  kFifo,         ///< idealized FIFO (Section 3)
  kBwf,          ///< Biggest-Weight-First (Section 7)
  kAdmitFirst,   ///< work stealing, admit before stealing (k = 0)
  kStealKFirst,  ///< work stealing, admit after k failed steals
  kOptBound,     ///< the Section 6 simulated-OPT lower bound
  kLifo,         ///< baseline
  kSjf,          ///< clairvoyant baseline
  kRoundRobin,   ///< baseline
  kEqui,         ///< dynamic equipartition baseline (speedup-curves lit.)
};

struct SchedulerSpec {
  SchedulerKind kind = SchedulerKind::kFifo;
  unsigned steal_k = 16;    ///< used by kStealKFirst (paper's empirical k)
  std::uint64_t seed = 1;   ///< used by the work-stealing schedulers
  /// Work-stealing extension: admit the heaviest queued job instead of the
  /// oldest ("-bwf" suffix in names).
  bool admit_by_weight = false;
  /// Event-engine schedulers only: run the engine's reference path
  /// (EventEngineOptions::exact) instead of the incremental fast path
  /// ("-exact" suffix in names).  Results are bit-identical either way;
  /// this exists for cross-checks and benchmarking.
  bool exact_engine = false;
};

/// Instantiates the scheduler named by `spec`.
std::unique_ptr<sched::Scheduler> make_scheduler(const SchedulerSpec& spec);

/// Parses "fifo", "bwf", "admit-first", "steal-16-first", "opt", "lifo",
/// "sjf", "round-robin", "equi" (any k in "steal-<k>-first"; append "-bwf"
/// to a work-stealing name for weighted admission; append "-exact" to an
/// event-engine name for the engine's reference path).
/// Throws std::invalid_argument on unknown names.
SchedulerSpec parse_scheduler(const std::string& name);

/// Convenience: build-and-run in one call.
ScheduleResult run_scheduler(const Instance& instance,
                             const SchedulerSpec& spec,
                             const MachineConfig& machine,
                             sim::Trace* trace = nullptr);

/// Memory-bounded counterpart: streams `source` through the named
/// scheduler's engine with O(live jobs) resident state (see
/// sched::Scheduler::run_streamed).  Throws std::logic_error for schedulers
/// without a streamed path (kOptBound).  `trace`, if non-null, records the
/// execution; pass a spill-mode sim::Trace to keep the recording itself
/// bounded-memory.
StreamRunResult run_scheduler_streamed(
    JobSource& source, const SchedulerSpec& spec, const MachineConfig& machine,
    metrics::StreamingFlowStats* stats = nullptr, sim::Trace* trace = nullptr);

/// Streamed run plus the streamed lower bounds over the same job stream, in
/// one pass each.  `run_source` and `bound_source` must yield identical
/// streams (the twin-source contract: construct two sources from the same
/// distribution + config, or two InstanceSources over the same instance) —
/// the job counts are cross-checked and a mismatch throws
/// std::invalid_argument.  This is how large streamed experiments report
/// competitive ratios without materializing the instance: the bounds pass
/// holds O(1) state and the run pass O(live jobs).
struct StreamRatioResult {
  StreamRunResult run;     ///< the scheduler's streamed outcome
  LowerBoundSet bounds;    ///< streamed lower bounds over the same stream
  /// run.max_flow / bounds.combined — the streamed analogue of the
  /// materialized experiment's ratio column.  0 when the bound is 0.
  double ratio = 0.0;
  /// run.max_weighted_flow / bounds.weighted_combined; 0 when the bound is 0.
  double weighted_ratio = 0.0;
};

StreamRatioResult run_scheduler_streamed_with_bounds(
    JobSource& run_source, JobSource& bound_source, const SchedulerSpec& spec,
    const MachineConfig& machine, metrics::StreamingFlowStats* stats = nullptr,
    sim::Trace* trace = nullptr);

}  // namespace pjsched::core
