#include "src/core/bounds.h"

#include <algorithm>
#include <stdexcept>

namespace pjsched::core {

namespace {
void check_m(unsigned m) {
  if (m == 0) throw std::invalid_argument("lower bound: m == 0");
}
}  // namespace

double span_lower_bound(const Instance& instance) {
  double best = 0.0;
  for (const JobSpec& j : instance.jobs)
    best = std::max(best, static_cast<double>(j.graph.critical_path()));
  return best;
}

double work_lower_bound(const Instance& instance, unsigned m) {
  check_m(m);
  double best = 0.0;
  for (const JobSpec& j : instance.jobs)
    best = std::max(best, static_cast<double>(j.graph.total_work()) / m);
  return best;
}

double opt_sim_lower_bound(const Instance& instance, unsigned m) {
  check_m(m);
  // FIFO on one machine with processing times W_i/m; max flow of that
  // schedule (optimal for the relaxed instance, hence a lower bound).
  double frontier = 0.0;
  double max_flow = 0.0;
  for (JobId j : instance.arrival_order()) {
    const JobSpec& job = instance.jobs[j];
    frontier = std::max(frontier, job.arrival) +
               static_cast<double>(job.graph.total_work()) / m;
    max_flow = std::max(max_flow, frontier - job.arrival);
  }
  return max_flow;
}

double combined_lower_bound(const Instance& instance, unsigned m) {
  return std::max(span_lower_bound(instance),
                  std::max(work_lower_bound(instance, m),
                           opt_sim_lower_bound(instance, m)));
}

double weighted_span_lower_bound(const Instance& instance) {
  double best = 0.0;
  for (const JobSpec& j : instance.jobs)
    best = std::max(best,
                    j.weight * static_cast<double>(j.graph.critical_path()));
  return best;
}

double weighted_work_lower_bound(const Instance& instance, unsigned m) {
  check_m(m);
  double best = 0.0;
  for (const JobSpec& j : instance.jobs)
    best = std::max(best,
                    j.weight * static_cast<double>(j.graph.total_work()) / m);
  return best;
}

double weighted_combined_lower_bound(const Instance& instance, unsigned m) {
  return std::max(weighted_span_lower_bound(instance),
                  weighted_work_lower_bound(instance, m));
}

}  // namespace pjsched::core
