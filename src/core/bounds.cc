#include "src/core/bounds.h"

#include <algorithm>
#include <stdexcept>

#include "src/sim/sim_math.h"

namespace pjsched::core {

namespace {
void check_m(unsigned m) {
  if (m == 0) throw std::invalid_argument("lower bound: m == 0");
}
}  // namespace

LowerBoundSet stream_lower_bounds(JobSource& source, unsigned m) {
  check_m(m);
  LowerBoundSet b;
  // FIFO on one machine with processing times W_i/m; the max flow of that
  // schedule (optimal for the relaxed instance, hence a lower bound) needs
  // only the frontier scalar — no per-job state survives the iteration.
  double frontier = 0.0;
  while (!source.done()) {
    const StreamedJob job = source.take();
    const dag::Dag& g = job.dag();
    const double cp = static_cast<double>(g.critical_path());
    const double work = static_cast<double>(g.total_work());
    const double relaxed = sim::relaxed_job_length(work, m, 1.0);
    b.span = std::max(b.span, cp);
    b.work = std::max(b.work, relaxed);
    frontier = sim::fifo_frontier_advance(frontier, job.arrival, relaxed);
    b.opt_sim = std::max(b.opt_sim, frontier - job.arrival);
    b.weighted_span = std::max(b.weighted_span, job.weight * cp);
    b.weighted_work = std::max(
        b.weighted_work, sim::relaxed_job_length(job.weight * work, m, 1.0));
    ++b.jobs;
  }
  b.combined = std::max(b.span, std::max(b.work, b.opt_sim));
  b.weighted_combined = std::max(b.weighted_span, b.weighted_work);
  return b;
}

// The materialized entry points are adapters: stream the Instance (arrival
// order, borrowed DAGs) through the one-pass computation and project out
// one field.  Callers needing several bounds of one instance should call
// stream_lower_bounds over an InstanceSource themselves and pay one pass.

double span_lower_bound(const Instance& instance) {
  InstanceSource source(instance);
  return stream_lower_bounds(source, 1).span;
}

double work_lower_bound(const Instance& instance, unsigned m) {
  InstanceSource source(instance);
  return stream_lower_bounds(source, m).work;
}

double opt_sim_lower_bound(const Instance& instance, unsigned m) {
  InstanceSource source(instance);
  return stream_lower_bounds(source, m).opt_sim;
}

double combined_lower_bound(const Instance& instance, unsigned m) {
  InstanceSource source(instance);
  return stream_lower_bounds(source, m).combined;
}

double weighted_span_lower_bound(const Instance& instance) {
  InstanceSource source(instance);
  return stream_lower_bounds(source, 1).weighted_span;
}

double weighted_work_lower_bound(const Instance& instance, unsigned m) {
  InstanceSource source(instance);
  return stream_lower_bounds(source, m).weighted_work;
}

double weighted_combined_lower_bound(const Instance& instance, unsigned m) {
  InstanceSource source(instance);
  return stream_lower_bounds(source, m).weighted_combined;
}

}  // namespace pjsched::core
