#include "src/core/experiment.h"

#include <algorithm>
#include <stdexcept>

#include "src/metrics/stats.h"
#include "src/workload/streaming_source.h"

namespace pjsched::core {

std::vector<ExperimentRow> run_experiment(const workload::WorkDistribution& dist,
                                          const ExperimentConfig& cfg) {
  if (cfg.qps_values.empty())
    throw std::invalid_argument("run_experiment: no QPS values");
  if (cfg.schedulers.empty())
    throw std::invalid_argument("run_experiment: no schedulers");

  const MachineConfig machine{cfg.processors, cfg.speed};
  std::vector<ExperimentRow> rows;

  for (double qps : cfg.qps_values) {
    workload::GeneratorConfig gen;
    gen.num_jobs = cfg.num_jobs;
    gen.qps = qps;
    gen.units_per_ms = cfg.units_per_ms;
    gen.grains = cfg.grains;
    gen.seed = cfg.seed;
    gen.weight_classes = cfg.weight_classes;
    const Instance instance = workload::generate_instance(dist, gen);

    // The paper's OPT comparator, once per cell.
    const ScheduleResult opt =
        run_scheduler(instance, {SchedulerKind::kOptBound}, machine);
    const double opt_ms = opt.max_flow / cfg.units_per_ms;

    for (const SchedulerSpec& spec : cfg.schedulers) {
      const ScheduleResult res = run_scheduler(instance, spec, machine);
      ExperimentRow row;
      row.workload = dist.name();
      row.qps = qps;
      row.utilization = workload::utilization(dist, qps, cfg.processors);
      row.scheduler = res.scheduler_name;
      row.max_flow_ms = res.max_flow / cfg.units_per_ms;
      row.mean_flow_ms = res.mean_flow / cfg.units_per_ms;
      row.max_weighted_flow_ms = res.max_weighted_flow / cfg.units_per_ms;
      std::vector<double> flows_ms(res.flow.size());
      for (std::size_t i = 0; i < res.flow.size(); ++i)
        flows_ms[i] = res.flow[i] / cfg.units_per_ms;
      row.p99_flow_ms = metrics::quantile_select(flows_ms, 0.99);
      row.opt_bound_ms = opt_ms;
      row.ratio_to_opt = opt_ms > 0.0 ? row.max_flow_ms / opt_ms : 0.0;
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

std::vector<ExperimentRow> run_experiment_streamed(
    const workload::WorkDistribution& dist, const ExperimentConfig& cfg) {
  if (cfg.qps_values.empty())
    throw std::invalid_argument("run_experiment_streamed: no QPS values");
  if (cfg.schedulers.empty())
    throw std::invalid_argument("run_experiment_streamed: no schedulers");

  const MachineConfig machine{cfg.processors, cfg.speed};
  std::vector<ExperimentRow> rows;

  for (double qps : cfg.qps_values) {
    workload::GeneratorConfig gen;
    gen.num_jobs = cfg.num_jobs;
    gen.qps = qps;
    gen.units_per_ms = cfg.units_per_ms;
    gen.grains = cfg.grains;
    gen.seed = cfg.seed;
    gen.weight_classes = cfg.weight_classes;

    // One O(1)-state streamed pass replaces the per-cell kOptBound run: at
    // speed 1 the opt_sim bound is bitwise the OPT comparator's max flow.
    workload::GeneratedJobSource opt_source(dist, gen);
    const LowerBoundSet bounds =
        stream_lower_bounds(opt_source, cfg.processors);
    const double opt_ms = bounds.opt_sim / cfg.units_per_ms;

    for (const SchedulerSpec& spec : cfg.schedulers) {
      // A fresh source per scheduler replays the identical stream, so the
      // cell stays paired just like the materialized sweep.
      workload::GeneratedJobSource source(dist, gen);
      const StreamRunResult res =
          run_scheduler_streamed(source, spec, machine);
      ExperimentRow row;
      row.workload = dist.name();
      row.qps = qps;
      row.utilization = workload::utilization(dist, qps, cfg.processors);
      row.scheduler = res.scheduler_name;
      row.max_flow_ms = res.max_flow / cfg.units_per_ms;
      row.mean_flow_ms = res.mean_flow / cfg.units_per_ms;
      row.max_weighted_flow_ms = res.max_weighted_flow / cfg.units_per_ms;
      // Division by units_per_ms is monotone, so the quantile's order
      // statistics carry over unchanged; only the interpolation between
      // them rounds once here vs per-sample above (<= 1 ulp apart from
      // the materialized column).
      row.p99_flow_ms = res.flow.p99 / cfg.units_per_ms;
      row.opt_bound_ms = opt_ms;
      row.ratio_to_opt = opt_ms > 0.0 ? row.max_flow_ms / opt_ms : 0.0;
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

metrics::Table rows_to_table(const std::vector<ExperimentRow>& rows) {
  metrics::Table table({"workload", "qps", "util", "scheduler", "max_flow_ms",
                        "mean_flow_ms", "p99_flow_ms", "opt_bound_ms",
                        "ratio_to_opt"});
  for (const ExperimentRow& r : rows)
    table.add_row({r.workload, metrics::Table::cell(r.qps),
                   metrics::Table::cell(r.utilization), r.scheduler,
                   metrics::Table::cell(r.max_flow_ms),
                   metrics::Table::cell(r.mean_flow_ms),
                   metrics::Table::cell(r.p99_flow_ms),
                   metrics::Table::cell(r.opt_bound_ms),
                   metrics::Table::cell(r.ratio_to_opt)});
  return table;
}

}  // namespace pjsched::core
