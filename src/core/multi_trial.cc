#include "src/core/multi_trial.h"

#include <stdexcept>

#include "src/core/bounds.h"

namespace pjsched::core {

TrialOutcome run_trials(const workload::WorkDistribution& dist,
                        const TrialConfig& cfg) {
  if (cfg.trials == 0) throw std::invalid_argument("run_trials: zero trials");

  std::vector<double> max_flows, mean_flows, wmax_flows, ratios;
  max_flows.reserve(cfg.trials);

  Instance fixed;
  if (cfg.fixed_instance)
    fixed = workload::generate_instance(dist, cfg.generator);

  for (std::size_t t = 0; t < cfg.trials; ++t) {
    Instance generated;
    const Instance* instance = &fixed;
    if (!cfg.fixed_instance) {
      workload::GeneratorConfig gen = cfg.generator;
      gen.seed = cfg.generator.seed + t;
      generated = workload::generate_instance(dist, gen);
      instance = &generated;
    }

    SchedulerSpec spec = cfg.scheduler;
    spec.seed = cfg.scheduler.seed + t;
    const ScheduleResult res = run_scheduler(*instance, spec, cfg.machine);

    max_flows.push_back(res.max_flow);
    mean_flows.push_back(res.mean_flow);
    wmax_flows.push_back(res.max_weighted_flow);
    const double bound =
        opt_sim_lower_bound(*instance, cfg.machine.processors);
    ratios.push_back(bound > 0.0 ? res.max_flow / bound : 0.0);
  }

  TrialOutcome out;
  out.max_flow = metrics::summarize(max_flows);
  out.mean_flow = metrics::summarize(mean_flows);
  out.max_weighted_flow = metrics::summarize(wmax_flows);
  out.ratio_to_opt = metrics::summarize(ratios);
  out.trials = cfg.trials;
  return out;
}

}  // namespace pjsched::core
