#include "src/core/multi_trial.h"

#include <stdexcept>

#include "src/core/bounds.h"

namespace pjsched::core {

FixedInstance make_fixed_instance(const workload::WorkDistribution& dist,
                                  const TrialConfig& cfg) {
  FixedInstance fixed;
  fixed.instance = workload::generate_instance(dist, cfg.generator);
  // The instance never changes across trials, so neither does its bound —
  // computed once here instead of once per trial.
  fixed.opt_bound =
      opt_sim_lower_bound(fixed.instance, cfg.machine.processors);
  return fixed;
}

TrialPoint run_one_trial(const workload::WorkDistribution& dist,
                         const TrialConfig& cfg, std::size_t t,
                         const FixedInstance* fixed) {
  if (cfg.fixed_instance != (fixed != nullptr))
    throw std::invalid_argument(
        "run_one_trial: fixed instance must be supplied exactly when "
        "cfg.fixed_instance is set");

  Instance generated;
  const Instance* instance = nullptr;
  double bound = 0.0;
  if (fixed != nullptr) {
    instance = &fixed->instance;
    bound = fixed->opt_bound;
  } else {
    workload::GeneratorConfig gen = cfg.generator;
    gen.seed = cfg.generator.seed + t;
    generated = workload::generate_instance(dist, gen);
    instance = &generated;
    bound = opt_sim_lower_bound(*instance, cfg.machine.processors);
  }

  SchedulerSpec spec = cfg.scheduler;
  spec.seed = cfg.scheduler.seed + t;
  const ScheduleResult res = run_scheduler(*instance, spec, cfg.machine);

  TrialPoint point;
  point.max_flow = res.max_flow;
  point.mean_flow = res.mean_flow;
  point.max_weighted_flow = res.max_weighted_flow;
  point.ratio_to_opt = bound > 0.0 ? res.max_flow / bound : 0.0;
  return point;
}

TrialOutcome summarize_trials(const std::vector<TrialPoint>& points) {
  std::vector<double> max_flows, mean_flows, wmax_flows, ratios;
  max_flows.reserve(points.size());
  mean_flows.reserve(points.size());
  wmax_flows.reserve(points.size());
  ratios.reserve(points.size());
  for (const TrialPoint& p : points) {
    max_flows.push_back(p.max_flow);
    mean_flows.push_back(p.mean_flow);
    wmax_flows.push_back(p.max_weighted_flow);
    ratios.push_back(p.ratio_to_opt);
  }

  TrialOutcome out;
  out.max_flow = metrics::summarize(max_flows);
  out.mean_flow = metrics::summarize(mean_flows);
  out.max_weighted_flow = metrics::summarize(wmax_flows);
  out.ratio_to_opt = metrics::summarize(ratios);
  out.trials = points.size();
  return out;
}

TrialOutcome run_trials(const workload::WorkDistribution& dist,
                        const TrialConfig& cfg) {
  if (cfg.trials == 0) throw std::invalid_argument("run_trials: zero trials");

  FixedInstance fixed;
  if (cfg.fixed_instance) fixed = make_fixed_instance(dist, cfg);

  std::vector<TrialPoint> points(cfg.trials);
  for (std::size_t t = 0; t < cfg.trials; ++t)
    points[t] = run_one_trial(dist, cfg, t, cfg.fixed_instance ? &fixed : nullptr);
  return summarize_trials(points);
}

}  // namespace pjsched::core
