// Multi-trial experiment support: run a (workload, scheduler) cell across
// R independent trials — fresh workload sample and fresh scheduler
// randomness per trial — and report mean / stddev / min / max of each
// objective.  Randomized work stealing's guarantees are "with high
// probability", so single-trial numbers understate the story; the paper
// itself averages over 100k jobs per point.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/run.h"
#include "src/core/types.h"
#include "src/metrics/stats.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"

namespace pjsched::core {

struct TrialConfig {
  std::size_t trials = 5;
  workload::GeneratorConfig generator;  ///< per-trial seed derived from this
  MachineConfig machine;
  SchedulerSpec scheduler;
  /// If true every trial reuses the trial-0 instance and only the
  /// scheduler's randomness varies — isolates scheduler variance from
  /// workload variance (only meaningful for randomized schedulers).
  bool fixed_instance = false;
};

struct TrialOutcome {
  metrics::Summary max_flow;           ///< across trials
  metrics::Summary mean_flow;
  metrics::Summary max_weighted_flow;
  metrics::Summary ratio_to_opt;       ///< per-trial max_flow / opt-sim bound
  std::size_t trials = 0;
};

/// One trial's objective values — the per-trial sample behind
/// TrialOutcome's summaries.
struct TrialPoint {
  double max_flow = 0.0;
  double mean_flow = 0.0;
  double max_weighted_flow = 0.0;
  double ratio_to_opt = 0.0;
};

/// The instance every trial shares when cfg.fixed_instance is set, with its
/// trial-invariant opt-sim lower bound computed once up front.
struct FixedInstance {
  Instance instance;
  double opt_bound = 0.0;
};

/// Builds the fixed trial-0 instance and its lower bound.
FixedInstance make_fixed_instance(const workload::WorkDistribution& dist,
                                  const TrialConfig& cfg);

/// Runs trial `t` in isolation: a pure function of (dist, cfg, t, fixed),
/// which is what makes the parallel runner (runtime/parallel_trials.h)
/// bit-identical to the sequential loop.  `fixed` must be non-null exactly
/// when cfg.fixed_instance is set.
TrialPoint run_one_trial(const workload::WorkDistribution& dist,
                         const TrialConfig& cfg, std::size_t t,
                         const FixedInstance* fixed);

/// Index-ordered merge of per-trial points into the outcome summaries.
TrialOutcome summarize_trials(const std::vector<TrialPoint>& points);

/// Runs the trials sequentially; trial t uses generator seed
/// `generator.seed + t` (or the fixed trial-0 instance) and scheduler seed
/// `scheduler.seed + t`.  runtime::run_trials_parallel produces the same
/// outcome bit-for-bit on the in-repo thread pool.
TrialOutcome run_trials(const workload::WorkDistribution& dist,
                        const TrialConfig& cfg);

}  // namespace pjsched::core
