// Multi-trial experiment support: run a (workload, scheduler) cell across
// R independent trials — fresh workload sample and fresh scheduler
// randomness per trial — and report mean / stddev / min / max of each
// objective.  Randomized work stealing's guarantees are "with high
// probability", so single-trial numbers understate the story; the paper
// itself averages over 100k jobs per point.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/run.h"
#include "src/core/types.h"
#include "src/metrics/stats.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"

namespace pjsched::core {

struct TrialConfig {
  std::size_t trials = 5;
  workload::GeneratorConfig generator;  ///< per-trial seed derived from this
  MachineConfig machine;
  SchedulerSpec scheduler;
  /// If true every trial reuses the trial-0 instance and only the
  /// scheduler's randomness varies — isolates scheduler variance from
  /// workload variance (only meaningful for randomized schedulers).
  bool fixed_instance = false;
};

struct TrialOutcome {
  metrics::Summary max_flow;           ///< across trials
  metrics::Summary mean_flow;
  metrics::Summary max_weighted_flow;
  metrics::Summary ratio_to_opt;       ///< per-trial max_flow / opt-sim bound
  std::size_t trials = 0;
};

/// Runs the trials; trial t uses generator seed `generator.seed + t` (or
/// the fixed trial-0 instance) and scheduler seed `scheduler.seed + t`.
TrialOutcome run_trials(const workload::WorkDistribution& dist,
                        const TrialConfig& cfg);

}  // namespace pjsched::core
