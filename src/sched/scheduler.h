// Common scheduler interface.  A Scheduler consumes a full online Instance
// and produces the schedule outcome; implementations wrap one of the two
// simulation engines (src/sim) with a policy, or — for OptLowerBound — an
// analytic computation.  Schedulers are reusable: run() may be called on
// many instances.
//
// run_streamed() is the memory-bounded counterpart: it consumes a
// core::JobSource and keeps O(live jobs) state instead of materializing the
// instance, returning exact extremes plus reservoir-backed summary
// statistics (core::StreamRunResult).  Every engine-backed scheduler
// supports it; purely analytic ones (OptLowerBound) keep the throwing
// default.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "src/core/job_source.h"
#include "src/core/types.h"
#include "src/sim/trace.h"

namespace pjsched::metrics {
class StreamingFlowStats;
}  // namespace pjsched::metrics

namespace pjsched::sched {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Human-readable name ("fifo", "steal-16-first", ...).
  virtual std::string name() const = 0;

  /// Simulates the instance to completion on the given machine.  If `trace`
  /// is non-null, records the execution for auditing.
  virtual core::ScheduleResult run(const core::Instance& instance,
                                   const core::MachineConfig& machine,
                                   sim::Trace* trace = nullptr) = 0;

  /// Simulates a streamed source to exhaustion with O(live jobs) resident
  /// state; completions land in `stats` (an engine-internal default when
  /// null).  Bit-identical extremes to run() on the materialized
  /// equivalent.  If `trace` is non-null it records the execution; pass a
  /// spill-mode Trace (sim::TraceSink) to keep the recording itself
  /// bounded-memory on large sources.  The default throws std::logic_error
  /// — only schedulers without a simulation engine behind them (e.g. the
  /// analytic OPT lower bound, which needs the whole instance) keep it.
  virtual core::StreamRunResult run_streamed(
      core::JobSource& source, const core::MachineConfig& machine,
      metrics::StreamingFlowStats* stats = nullptr,
      sim::Trace* trace = nullptr) {
    (void)source;
    (void)machine;
    (void)stats;
    (void)trace;
    throw std::logic_error(name() + ": streamed execution is not supported");
  }
};

}  // namespace pjsched::sched
