// Common scheduler interface.  A Scheduler consumes a full online Instance
// and produces the schedule outcome; implementations wrap one of the two
// simulation engines (src/sim) with a policy, or — for OptLowerBound — an
// analytic computation.  Schedulers are reusable: run() may be called on
// many instances.
#pragma once

#include <memory>
#include <string>

#include "src/core/types.h"
#include "src/sim/trace.h"

namespace pjsched::sched {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Human-readable name ("fifo", "steal-16-first", ...).
  virtual std::string name() const = 0;

  /// Simulates the instance to completion on the given machine.  If `trace`
  /// is non-null, records the execution for auditing.
  virtual core::ScheduleResult run(const core::Instance& instance,
                                   const core::MachineConfig& machine,
                                   sim::Trace* trace = nullptr) = 0;
};

}  // namespace pjsched::sched
