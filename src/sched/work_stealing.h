// Steal-k-first multiprogrammed work stealing (paper Section 4), as a
// Scheduler over the step engine.
//
//   k = 0  —  "admit-first":  workers admit a job from the global FIFO
//             queue whenever it is non-empty and only steal otherwise.
//             Corollary 4.3: (1+eps)-speed, max flow O((1/eps^2) max{OPT, ln n})
//             with high probability.
//   k > 0  —  "steal-k-first": a worker must fail k consecutive steal
//             attempts before it may admit a new job; larger k approximates
//             FIFO more closely (the paper uses k = 16 empirically and
//             recommends k on the order of m).
//             Theorem 4.1: (k+1+eps)-speed, same flow bound.
#pragma once

#include <cstdint>

#include "src/sched/scheduler.h"

namespace pjsched::sched {

class WorkStealingScheduler final : public Scheduler {
 public:
  /// `steal_k`: failed steals required before admission (0 = admit-first).
  /// `seed`: randomness for victim selection and per-step worker order.
  /// `admit_by_weight`: extension — admit the heaviest queued job instead
  /// of the oldest (BWF-flavoured admission for weighted max flow; the
  /// paper leaves weighted work stealing open).
  /// `steal_half`: extension — a successful steal migrates half the
  /// victim's deque instead of one node ("-half" suffix in names).
  explicit WorkStealingScheduler(unsigned steal_k = 0, std::uint64_t seed = 1,
                                 bool admit_by_weight = false,
                                 bool steal_half = false)
      : steal_k_(steal_k),
        seed_(seed),
        admit_by_weight_(admit_by_weight),
        steal_half_(steal_half) {}

  std::string name() const override;
  core::ScheduleResult run(const core::Instance& instance,
                           const core::MachineConfig& machine,
                           sim::Trace* trace = nullptr) override;
  core::StreamRunResult run_streamed(
      core::JobSource& source, const core::MachineConfig& machine,
      metrics::StreamingFlowStats* stats = nullptr,
      sim::Trace* trace = nullptr) override;

  unsigned steal_k() const { return steal_k_; }
  bool admit_by_weight() const { return admit_by_weight_; }
  bool steal_half() const { return steal_half_; }

 private:
  unsigned steal_k_;
  std::uint64_t seed_;
  bool admit_by_weight_;
  bool steal_half_;
};

/// Convenience aliases matching the paper's terminology.
inline WorkStealingScheduler make_admit_first(std::uint64_t seed = 1) {
  return WorkStealingScheduler(0, seed);
}
inline WorkStealingScheduler make_steal_k_first(unsigned k,
                                                std::uint64_t seed = 1) {
  return WorkStealingScheduler(k, seed);
}

}  // namespace pjsched::sched
