// Non-paper baseline schedulers, used by benches to contrast FIFO/BWF/work
// stealing against policies known to be bad (or unrealistically clairvoyant)
// for maximum flow time:
//
//  * LIFO           — newest job first.  Starves old jobs; max flow blows up
//                     under load, illustrating why FIFO ordering matters.
//  * SJF            — clairvoyant shortest-remaining-total-work first.
//                     Great for mean flow, bad for max flow under skew.
//  * RoundRobin     — rotates the job priority order at every decision
//                     point (a crude processor-sharing approximation).
//  * Equi           — dynamic equipartition: every active job is offered
//                     ceil(m / #active) processors, leftovers redistributed
//                     (work-conserving).  The canonical fair scheduler of
//                     the speedup-curves literature the paper contrasts
//                     against (Section 8 / Edmonds-Pruhs): strong for
//                     average flow, weak for maximum flow.
#pragma once

#include "src/sched/scheduler.h"

namespace pjsched::sched {

// Every baseline takes an `exact_engine` flag selecting the event engine's
// reference path (EventEngineOptions::exact) instead of the default
// incremental fast path; results are bit-identical either way.  SJF and
// RoundRobin are dynamic policies, so they run on the reference loop even
// with the flag off — the flag is still honored for uniformity.

class LifoScheduler final : public Scheduler {
 public:
  explicit LifoScheduler(bool exact_engine = false)
      : exact_engine_(exact_engine) {}
  std::string name() const override {
    return exact_engine_ ? "lifo-exact" : "lifo";
  }
  core::ScheduleResult run(const core::Instance& instance,
                           const core::MachineConfig& machine,
                           sim::Trace* trace = nullptr) override;
  core::StreamRunResult run_streamed(
      core::JobSource& source, const core::MachineConfig& machine,
      metrics::StreamingFlowStats* stats = nullptr,
      sim::Trace* trace = nullptr) override;

 private:
  bool exact_engine_;
};

class SjfScheduler final : public Scheduler {
 public:
  explicit SjfScheduler(bool exact_engine = false)
      : exact_engine_(exact_engine) {}
  std::string name() const override {
    return exact_engine_ ? "sjf-exact" : "sjf";
  }
  core::ScheduleResult run(const core::Instance& instance,
                           const core::MachineConfig& machine,
                           sim::Trace* trace = nullptr) override;
  core::StreamRunResult run_streamed(
      core::JobSource& source, const core::MachineConfig& machine,
      metrics::StreamingFlowStats* stats = nullptr,
      sim::Trace* trace = nullptr) override;

 private:
  bool exact_engine_;
};

class RoundRobinScheduler final : public Scheduler {
 public:
  explicit RoundRobinScheduler(bool exact_engine = false)
      : exact_engine_(exact_engine) {}
  std::string name() const override {
    return exact_engine_ ? "round-robin-exact" : "round-robin";
  }
  core::ScheduleResult run(const core::Instance& instance,
                           const core::MachineConfig& machine,
                           sim::Trace* trace = nullptr) override;
  core::StreamRunResult run_streamed(
      core::JobSource& source, const core::MachineConfig& machine,
      metrics::StreamingFlowStats* stats = nullptr,
      sim::Trace* trace = nullptr) override;

 private:
  bool exact_engine_;
};

class EquiScheduler final : public Scheduler {
 public:
  explicit EquiScheduler(bool exact_engine = false)
      : exact_engine_(exact_engine) {}
  std::string name() const override {
    return exact_engine_ ? "equi-exact" : "equi";
  }
  core::ScheduleResult run(const core::Instance& instance,
                           const core::MachineConfig& machine,
                           sim::Trace* trace = nullptr) override;
  core::StreamRunResult run_streamed(
      core::JobSource& source, const core::MachineConfig& machine,
      metrics::StreamingFlowStats* stats = nullptr,
      sim::Trace* trace = nullptr) override;

 private:
  bool exact_engine_;
};

}  // namespace pjsched::sched
