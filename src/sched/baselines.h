// Non-paper baseline schedulers, used by benches to contrast FIFO/BWF/work
// stealing against policies known to be bad (or unrealistically clairvoyant)
// for maximum flow time:
//
//  * LIFO           — newest job first.  Starves old jobs; max flow blows up
//                     under load, illustrating why FIFO ordering matters.
//  * SJF            — clairvoyant shortest-remaining-total-work first.
//                     Great for mean flow, bad for max flow under skew.
//  * RoundRobin     — rotates the job priority order at every decision
//                     point (a crude processor-sharing approximation).
//  * Equi           — dynamic equipartition: every active job is offered
//                     ceil(m / #active) processors, leftovers redistributed
//                     (work-conserving).  The canonical fair scheduler of
//                     the speedup-curves literature the paper contrasts
//                     against (Section 8 / Edmonds-Pruhs): strong for
//                     average flow, weak for maximum flow.
#pragma once

#include "src/sched/scheduler.h"

namespace pjsched::sched {

class LifoScheduler final : public Scheduler {
 public:
  std::string name() const override { return "lifo"; }
  core::ScheduleResult run(const core::Instance& instance,
                           const core::MachineConfig& machine,
                           sim::Trace* trace = nullptr) override;
};

class SjfScheduler final : public Scheduler {
 public:
  std::string name() const override { return "sjf"; }
  core::ScheduleResult run(const core::Instance& instance,
                           const core::MachineConfig& machine,
                           sim::Trace* trace = nullptr) override;
};

class RoundRobinScheduler final : public Scheduler {
 public:
  std::string name() const override { return "round-robin"; }
  core::ScheduleResult run(const core::Instance& instance,
                           const core::MachineConfig& machine,
                           sim::Trace* trace = nullptr) override;
};

class EquiScheduler final : public Scheduler {
 public:
  std::string name() const override { return "equi"; }
  core::ScheduleResult run(const core::Instance& instance,
                           const core::MachineConfig& machine,
                           sim::Trace* trace = nullptr) override;
};

}  // namespace pjsched::sched
