// The paper's simulated-OPT lower bound (Section 6).
//
// Computing the true optimal max-flow schedule for online DAG jobs is
// intractable, so the paper compares against a *lower bound*: assume every
// job is fully parallelizable with zero overhead, i.e. behaves as a
// sequential job of length W_i/m, and schedule these on a single machine by
// FIFO — which is optimal for max flow time on one machine.  Every feasible
// schedule of the real instance has max flow >= this bound, so a scheduler
// that is close to it is close to OPT.
//
// OptLowerBound::run computes the bound analytically in O(n log n):
//     c_i = max(r_i, c_prev) + W_i / m        (jobs in arrival order)
// It deliberately ignores the machine's speed (OPT is always the 1-speed
// adversary in the paper's resource-augmentation analyses); a flag lets
// benches request a speed-scaled variant.
#pragma once

#include "src/sched/scheduler.h"

namespace pjsched::sched {

class OptLowerBound final : public Scheduler {
 public:
  /// If `use_machine_speed` is true the bound is computed for the machine's
  /// own speed (jobs shrink to W_i/(m*s)); by default the adversary runs at
  /// speed 1 regardless of the algorithm's augmentation, as in the paper.
  explicit OptLowerBound(bool use_machine_speed = false)
      : use_machine_speed_(use_machine_speed) {}

  std::string name() const override { return "opt-lower-bound"; }

  /// Analytic; `trace` is ignored (there is no machine-model execution to
  /// audit — the bound is not a feasible schedule of the DAG instance).
  core::ScheduleResult run(const core::Instance& instance,
                           const core::MachineConfig& machine,
                           sim::Trace* trace = nullptr) override;

 private:
  bool use_machine_speed_;
};

}  // namespace pjsched::sched
