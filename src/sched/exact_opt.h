// Exact optimal maximum flow time for *tiny* instances, by exhaustive
// search — a validation tool, not a scheduler you deploy.
//
// The paper (and this library) compares algorithms against lower bounds on
// OPT because computing OPT is intractable in general.  For instances small
// enough, though, OPT can be computed exactly, which lets the test suite
// (a) sandwich every scheduler between bound <= OPT <= scheduler, and
// (b) measure how loose the Section-6 OPT-sim bound is
// (bench/bench_bound_tightness.cc).
//
// Restrictions (checked, throwing std::invalid_argument):
//   * every node has unit work, arrivals are non-negative integers,
//     machine speed is 1 (the discrete-time regime where an optimal
//     schedule can WLOG act at integer boundaries);
//   * at most kMaxTotalNodes nodes across all jobs (the state is one bit
//     per node).
//
// Method: depth-first search over states (t, completed-set) where in each
// unit step the scheduler runs some subset of ready nodes.  Running more
// nodes never hurts (unit nodes, free preemption), so only maximal subsets
// of size min(|ready|, m) are branched.  States are memoized on
// (t, completed-set): the minimal achievable max flow *over jobs not yet
// finished* is path-independent.  Branch-and-bound prunes subtrees that
// cannot beat the incumbent.
#pragma once

#include <cstdint>

#include "src/core/types.h"

namespace pjsched::sched {

inline constexpr std::size_t kMaxTotalNodes = 24;

struct ExactOptResult {
  double max_flow = 0.0;          ///< the optimal objective
  std::uint64_t states_explored = 0;
};

/// Computes the exact optimal max flow of `instance` on `m` unit-speed
/// processors.  `state_limit` caps the search (throws std::runtime_error
/// when exceeded — raise it for hard instances).
ExactOptResult exact_optimal_max_flow(const core::Instance& instance,
                                      unsigned m,
                                      std::uint64_t state_limit = 5'000'000);

}  // namespace pjsched::sched
