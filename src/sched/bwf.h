// Biggest-Weight-First (paper Section 7).
//
// Identical machinery to FIFO, but active jobs are ordered by *decreasing
// weight* (ties: earlier arrival, then job index).  Theorem 7.1: BWF is
// (1+eps)-speed O(1/eps^2)-competitive for maximum weighted flow time — the
// strongest result possible online given the Omega(W^0.4) lower bound
// without resource augmentation.
#pragma once

#include "src/sched/scheduler.h"

namespace pjsched::sched {

class BwfScheduler final : public Scheduler {
 public:
  /// `exact_engine` selects the event engine's reference path
  /// (EventEngineOptions::exact) instead of the default incremental fast
  /// path; results are bit-identical either way.
  explicit BwfScheduler(bool exact_engine = false)
      : exact_engine_(exact_engine) {}
  std::string name() const override {
    return exact_engine_ ? "bwf-exact" : "bwf";
  }
  core::ScheduleResult run(const core::Instance& instance,
                           const core::MachineConfig& machine,
                           sim::Trace* trace = nullptr) override;
  core::StreamRunResult run_streamed(
      core::JobSource& source, const core::MachineConfig& machine,
      metrics::StreamingFlowStats* stats = nullptr,
      sim::Trace* trace = nullptr) override;

 private:
  bool exact_engine_;
};

}  // namespace pjsched::sched
