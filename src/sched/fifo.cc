#include "src/sched/fifo.h"

#include <algorithm>

#include "src/sim/event_engine.h"

namespace pjsched::sched {

namespace {
class FifoPolicy final : public sim::OrderPolicy {
 public:
  std::string name() const override { return "fifo"; }
  void order(const sim::PolicyContext& ctx,
             std::vector<core::JobId>& active) override {
    std::stable_sort(active.begin(), active.end(),
                     [&ctx](core::JobId a, core::JobId b) {
                       return ctx.arrival(a) < ctx.arrival(b);
                     });
  }
  // FIFO's priority is time-invariant: ascending arrival, ties resolved by
  // the arrival base order — exactly the stable sort above.
  bool has_static_order() const override { return true; }
  double static_key(const sim::PolicyContext& ctx,
                    core::JobId job) override {
    return ctx.arrival(job);
  }
};
}  // namespace

core::ScheduleResult FifoScheduler::run(const core::Instance& instance,
                                        const core::MachineConfig& machine,
                                        sim::Trace* trace) {
  FifoPolicy policy;
  sim::EventEngineOptions opt;
  opt.machine = machine;
  opt.trace = trace;
  opt.exact = exact_engine_;
  return sim::run_event_engine(instance, policy, opt);
}

core::StreamRunResult FifoScheduler::run_streamed(
    core::JobSource& source, const core::MachineConfig& machine,
    metrics::StreamingFlowStats* stats, sim::Trace* trace) {
  FifoPolicy policy;
  sim::EventEngineOptions opt;
  opt.machine = machine;
  opt.trace = trace;
  opt.exact = exact_engine_;
  return sim::run_event_engine_streamed(source, policy, opt, stats);
}

}  // namespace pjsched::sched
