#include "src/sched/opt_bound.h"

#include <stdexcept>

#include "src/sim/sim_math.h"

namespace pjsched::sched {

core::ScheduleResult OptLowerBound::run(const core::Instance& instance,
                                        const core::MachineConfig& machine,
                                        sim::Trace* /*trace*/) {
  instance.validate();
  if (machine.processors == 0)
    throw std::invalid_argument("OptLowerBound: zero processors");

  const double m = static_cast<double>(machine.processors);
  const double s = use_machine_speed_ ? machine.speed : 1.0;

  core::ScheduleResult result;
  result.scheduler_name = name();
  result.completion.assign(instance.size(), core::kNoTime);

  // FIFO on a single machine where job i has processing time W_i / (m*s) —
  // the same shared formulas the streamed bounds use (sim/sim_math.h), so
  // opt_sim_lower_bound at s = 1 reproduces this run's max flow bitwise.
  core::Time frontier = 0.0;
  for (core::JobId j : instance.arrival_order()) {
    const core::JobSpec& job = instance.jobs[j];
    const double p = sim::relaxed_job_length(
        static_cast<double>(job.graph.total_work()), m, s);
    frontier = sim::fifo_frontier_advance(frontier, job.arrival, p);
    result.completion[j] = frontier;
  }
  result.finalize(instance.jobs);
  return result;
}

}  // namespace pjsched::sched
