// The paper's idealized FIFO scheduler (Section 3).
//
// At every decision point the active jobs are ordered by arrival time
// (ties: job index), and each job in order is granted one processor per
// available node until processors run out.  FIFO preempts and reallocates
// at every event, at zero cost — the paper's Theorem 3.1 shows this
// idealized scheduler is (1+eps)-speed O(1/eps)-competitive for maximum
// unweighted flow time.
#pragma once

#include "src/sched/scheduler.h"

namespace pjsched::sched {

class FifoScheduler final : public Scheduler {
 public:
  std::string name() const override { return "fifo"; }
  core::ScheduleResult run(const core::Instance& instance,
                           const core::MachineConfig& machine,
                           sim::Trace* trace = nullptr) override;
};

}  // namespace pjsched::sched
