// The paper's idealized FIFO scheduler (Section 3).
//
// At every decision point the active jobs are ordered by arrival time
// (ties: job index), and each job in order is granted one processor per
// available node until processors run out.  FIFO preempts and reallocates
// at every event, at zero cost — the paper's Theorem 3.1 shows this
// idealized scheduler is (1+eps)-speed O(1/eps)-competitive for maximum
// unweighted flow time.
#pragma once

#include "src/sched/scheduler.h"

namespace pjsched::sched {

class FifoScheduler final : public Scheduler {
 public:
  /// `exact_engine` selects the event engine's reference path
  /// (EventEngineOptions::exact) instead of the default incremental fast
  /// path; results are bit-identical either way.
  explicit FifoScheduler(bool exact_engine = false)
      : exact_engine_(exact_engine) {}
  std::string name() const override {
    return exact_engine_ ? "fifo-exact" : "fifo";
  }
  core::ScheduleResult run(const core::Instance& instance,
                           const core::MachineConfig& machine,
                           sim::Trace* trace = nullptr) override;
  core::StreamRunResult run_streamed(
      core::JobSource& source, const core::MachineConfig& machine,
      metrics::StreamingFlowStats* stats = nullptr,
      sim::Trace* trace = nullptr) override;

 private:
  bool exact_engine_;
};

}  // namespace pjsched::sched
