#include "src/sched/bwf.h"

#include <algorithm>

#include "src/sim/event_engine.h"

namespace pjsched::sched {

namespace {
class BwfPolicy final : public sim::OrderPolicy {
 public:
  std::string name() const override { return "bwf"; }
  void order(const sim::PolicyContext& ctx,
             std::vector<core::JobId>& active) override {
    std::stable_sort(active.begin(), active.end(),
                     [&ctx](core::JobId a, core::JobId b) {
                       if (ctx.weight(a) != ctx.weight(b))
                         return ctx.weight(a) > ctx.weight(b);
                       return ctx.arrival(a) < ctx.arrival(b);
                     });
  }
  // BWF's priority is time-invariant: descending weight, ties resolved by
  // (arrival, index).  A stable sort by -weight over the arrival base order
  // breaks weight ties exactly that way, so the key alone reproduces the
  // comparator above.
  bool static_order(const sim::PolicyContext& ctx,
                    std::vector<double>& keys) override {
    for (std::size_t j = 0; j < keys.size(); ++j)
      keys[j] = -ctx.weight(static_cast<core::JobId>(j));
    return true;
  }
};
}  // namespace

core::ScheduleResult BwfScheduler::run(const core::Instance& instance,
                                       const core::MachineConfig& machine,
                                       sim::Trace* trace) {
  BwfPolicy policy;
  sim::EventEngineOptions opt;
  opt.machine = machine;
  opt.trace = trace;
  opt.exact = exact_engine_;
  return sim::run_event_engine(instance, policy, opt);
}

}  // namespace pjsched::sched
