#include "src/sched/bwf.h"

#include <algorithm>

#include "src/sim/event_engine.h"

namespace pjsched::sched {

namespace {
class BwfPolicy final : public sim::OrderPolicy {
 public:
  std::string name() const override { return "bwf"; }
  void order(const sim::PolicyContext& ctx,
             std::vector<core::JobId>& active) override {
    std::stable_sort(active.begin(), active.end(),
                     [&ctx](core::JobId a, core::JobId b) {
                       if (ctx.weight(a) != ctx.weight(b))
                         return ctx.weight(a) > ctx.weight(b);
                       return ctx.arrival(a) < ctx.arrival(b);
                     });
  }
  // BWF's priority is time-invariant: descending weight, ties resolved by
  // (arrival, index).  A stable sort by -weight over the arrival base order
  // breaks weight ties exactly that way, so the key alone reproduces the
  // comparator above.
  bool has_static_order() const override { return true; }
  double static_key(const sim::PolicyContext& ctx,
                    core::JobId job) override {
    return -ctx.weight(job);
  }
};
}  // namespace

core::ScheduleResult BwfScheduler::run(const core::Instance& instance,
                                       const core::MachineConfig& machine,
                                       sim::Trace* trace) {
  BwfPolicy policy;
  sim::EventEngineOptions opt;
  opt.machine = machine;
  opt.trace = trace;
  opt.exact = exact_engine_;
  return sim::run_event_engine(instance, policy, opt);
}

core::StreamRunResult BwfScheduler::run_streamed(
    core::JobSource& source, const core::MachineConfig& machine,
    metrics::StreamingFlowStats* stats, sim::Trace* trace) {
  BwfPolicy policy;
  sim::EventEngineOptions opt;
  opt.machine = machine;
  opt.trace = trace;
  opt.exact = exact_engine_;
  return sim::run_event_engine_streamed(source, policy, opt, stats);
}

}  // namespace pjsched::sched
