#include "src/sched/work_stealing.h"

#include "src/sim/step_engine.h"

namespace pjsched::sched {

std::string WorkStealingScheduler::name() const {
  std::string base = steal_k_ == 0
                         ? "admit-first"
                         : "steal-" + std::to_string(steal_k_) + "-first";
  if (admit_by_weight_) base += "-bwf";
  if (steal_half_) base += "-half";
  return base;
}

core::ScheduleResult WorkStealingScheduler::run(
    const core::Instance& instance, const core::MachineConfig& machine,
    sim::Trace* trace) {
  sim::StepEngineOptions opt;
  opt.machine = machine;
  opt.steal_k = steal_k_;
  opt.seed = seed_;
  opt.admit_by_weight = admit_by_weight_;
  opt.steal_half = steal_half_;
  opt.trace = trace;
  return sim::run_step_engine(instance, opt);
}

core::StreamRunResult WorkStealingScheduler::run_streamed(
    core::JobSource& source, const core::MachineConfig& machine,
    metrics::StreamingFlowStats* stats, sim::Trace* trace) {
  sim::StepEngineOptions opt;
  opt.machine = machine;
  opt.steal_k = steal_k_;
  opt.seed = seed_;
  opt.admit_by_weight = admit_by_weight_;
  opt.steal_half = steal_half_;
  opt.trace = trace;
  return sim::run_step_engine_streamed(source, opt, stats);
}

}  // namespace pjsched::sched
