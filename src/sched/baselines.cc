#include "src/sched/baselines.h"

#include <algorithm>

#include "src/sim/event_engine.h"

namespace pjsched::sched {

namespace {

class LifoPolicy final : public sim::OrderPolicy {
 public:
  std::string name() const override { return "lifo"; }
  void order(const sim::PolicyContext& ctx,
             std::vector<core::JobId>& active) override {
    std::stable_sort(active.begin(), active.end(),
                     [&ctx](core::JobId a, core::JobId b) {
                       return ctx.arrival(a) > ctx.arrival(b);
                     });
  }
  // Time-invariant: descending arrival, ties in base (index) order.
  bool static_order(const sim::PolicyContext& ctx,
                    std::vector<double>& keys) override {
    for (std::size_t j = 0; j < keys.size(); ++j)
      keys[j] = -ctx.arrival(static_cast<core::JobId>(j));
    return true;
  }
};

// SJF consults remaining_work, which changes as jobs execute — no static
// order; it keeps the exact per-slice path.
class SjfPolicy final : public sim::OrderPolicy {
 public:
  std::string name() const override { return "sjf"; }
  void order(const sim::PolicyContext& ctx,
             std::vector<core::JobId>& active) override {
    std::stable_sort(active.begin(), active.end(),
                     [&ctx](core::JobId a, core::JobId b) {
                       return ctx.remaining_work(a) < ctx.remaining_work(b);
                     });
  }
};

// RoundRobin's rotation depends on the decision-point count — no static
// order; it keeps the exact per-slice path.
class RoundRobinPolicy final : public sim::OrderPolicy {
 public:
  std::string name() const override { return "round-robin"; }
  void order(const sim::PolicyContext&,
             std::vector<core::JobId>& active) override {
    // Rotate the base (arrival) order by one more position each decision
    // point, so over time each active job gets priority in turn.
    if (active.size() > 1)
      std::rotate(active.begin(),
                  active.begin() + (rotation_++ % active.size()),
                  active.end());
  }

 private:
  std::size_t rotation_ = 0;
};

class EquiPolicy final : public sim::OrderPolicy {
 public:
  std::string name() const override { return "equi"; }
  void order(const sim::PolicyContext& ctx,
             std::vector<core::JobId>& active) override {
    // Share order is arrival order (deterministic); the equal split comes
    // from processor_cap, and leftover redistribution keeps the machine
    // work-conserving.
    std::stable_sort(active.begin(), active.end(),
                     [&ctx](core::JobId a, core::JobId b) {
                       return ctx.arrival(a) < ctx.arrival(b);
                     });
  }
  // The share *order* is time-invariant (arrival order); the equal split
  // still comes from processor_cap, which both engine paths consult at
  // every decision point.
  bool static_order(const sim::PolicyContext& ctx,
                    std::vector<double>& keys) override {
    for (std::size_t j = 0; j < keys.size(); ++j)
      keys[j] = ctx.arrival(static_cast<core::JobId>(j));
    return true;
  }
  unsigned processor_cap(const sim::PolicyContext&, core::JobId,
                         unsigned processors,
                         std::size_t active_jobs) override {
    const auto n = static_cast<unsigned>(active_jobs);
    return n == 0 ? processors : (processors + n - 1) / n;
  }
};

template <typename Policy>
core::ScheduleResult run_with(const core::Instance& instance,
                              const core::MachineConfig& machine,
                              sim::Trace* trace, bool exact_engine) {
  Policy policy;
  sim::EventEngineOptions opt;
  opt.machine = machine;
  opt.trace = trace;
  opt.exact = exact_engine;
  return sim::run_event_engine(instance, policy, opt);
}

}  // namespace

core::ScheduleResult LifoScheduler::run(const core::Instance& instance,
                                        const core::MachineConfig& machine,
                                        sim::Trace* trace) {
  return run_with<LifoPolicy>(instance, machine, trace, exact_engine_);
}

core::ScheduleResult SjfScheduler::run(const core::Instance& instance,
                                       const core::MachineConfig& machine,
                                       sim::Trace* trace) {
  return run_with<SjfPolicy>(instance, machine, trace, exact_engine_);
}

core::ScheduleResult RoundRobinScheduler::run(const core::Instance& instance,
                                              const core::MachineConfig& machine,
                                              sim::Trace* trace) {
  return run_with<RoundRobinPolicy>(instance, machine, trace, exact_engine_);
}

core::ScheduleResult EquiScheduler::run(const core::Instance& instance,
                                        const core::MachineConfig& machine,
                                        sim::Trace* trace) {
  return run_with<EquiPolicy>(instance, machine, trace, exact_engine_);
}

}  // namespace pjsched::sched
