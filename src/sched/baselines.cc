#include "src/sched/baselines.h"

#include <algorithm>

#include "src/sim/event_engine.h"

namespace pjsched::sched {

namespace {

class LifoPolicy final : public sim::OrderPolicy {
 public:
  std::string name() const override { return "lifo"; }
  void order(const sim::PolicyContext& ctx,
             std::vector<core::JobId>& active) override {
    std::stable_sort(active.begin(), active.end(),
                     [&ctx](core::JobId a, core::JobId b) {
                       return ctx.arrival(a) > ctx.arrival(b);
                     });
  }
  // Time-invariant: descending arrival, ties in base (index) order.
  bool has_static_order() const override { return true; }
  double static_key(const sim::PolicyContext& ctx,
                    core::JobId job) override {
    return -ctx.arrival(job);
  }
};

// SJF consults remaining_work, which changes as jobs execute — no static
// order; it keeps the exact per-slice path.
class SjfPolicy final : public sim::OrderPolicy {
 public:
  std::string name() const override { return "sjf"; }
  void order(const sim::PolicyContext& ctx,
             std::vector<core::JobId>& active) override {
    std::stable_sort(active.begin(), active.end(),
                     [&ctx](core::JobId a, core::JobId b) {
                       return ctx.remaining_work(a) < ctx.remaining_work(b);
                     });
  }
};

// RoundRobin's rotation depends on the decision-point count — no static
// order; it keeps the exact per-slice path.
class RoundRobinPolicy final : public sim::OrderPolicy {
 public:
  std::string name() const override { return "round-robin"; }
  void order(const sim::PolicyContext&,
             std::vector<core::JobId>& active) override {
    // Rotate the base (arrival) order by one more position each decision
    // point, so over time each active job gets priority in turn.
    if (active.size() > 1)
      std::rotate(active.begin(),
                  active.begin() + (rotation_++ % active.size()),
                  active.end());
  }

 private:
  std::size_t rotation_ = 0;
};

class EquiPolicy final : public sim::OrderPolicy {
 public:
  std::string name() const override { return "equi"; }
  void order(const sim::PolicyContext& ctx,
             std::vector<core::JobId>& active) override {
    // Share order is arrival order (deterministic); the equal split comes
    // from processor_cap, and leftover redistribution keeps the machine
    // work-conserving.
    std::stable_sort(active.begin(), active.end(),
                     [&ctx](core::JobId a, core::JobId b) {
                       return ctx.arrival(a) < ctx.arrival(b);
                     });
  }
  // The share *order* is time-invariant (arrival order); the equal split
  // still comes from processor_cap, which both engine paths consult at
  // every decision point.
  bool has_static_order() const override { return true; }
  double static_key(const sim::PolicyContext& ctx,
                    core::JobId job) override {
    return ctx.arrival(job);
  }
  unsigned processor_cap(const sim::PolicyContext&, core::JobId,
                         unsigned processors,
                         std::size_t active_jobs) override {
    const auto n = static_cast<unsigned>(active_jobs);
    return n == 0 ? processors : (processors + n - 1) / n;
  }
};

template <typename Policy>
core::ScheduleResult run_with(const core::Instance& instance,
                              const core::MachineConfig& machine,
                              sim::Trace* trace, bool exact_engine) {
  Policy policy;
  sim::EventEngineOptions opt;
  opt.machine = machine;
  opt.trace = trace;
  opt.exact = exact_engine;
  return sim::run_event_engine(instance, policy, opt);
}

// SJF and RoundRobin are dynamic, so their streamed runs take the exact
// per-slice path — still O(live jobs) resident state, just without the
// incremental decision-point machinery.
template <typename Policy>
core::StreamRunResult run_streamed_with(core::JobSource& source,
                                        const core::MachineConfig& machine,
                                        metrics::StreamingFlowStats* stats,
                                        sim::Trace* trace, bool exact_engine) {
  Policy policy;
  sim::EventEngineOptions opt;
  opt.machine = machine;
  opt.trace = trace;
  opt.exact = exact_engine;
  return sim::run_event_engine_streamed(source, policy, opt, stats);
}

}  // namespace

core::ScheduleResult LifoScheduler::run(const core::Instance& instance,
                                        const core::MachineConfig& machine,
                                        sim::Trace* trace) {
  return run_with<LifoPolicy>(instance, machine, trace, exact_engine_);
}

core::StreamRunResult LifoScheduler::run_streamed(
    core::JobSource& source, const core::MachineConfig& machine,
    metrics::StreamingFlowStats* stats, sim::Trace* trace) {
  return run_streamed_with<LifoPolicy>(source, machine, stats, trace,
                                       exact_engine_);
}

core::ScheduleResult SjfScheduler::run(const core::Instance& instance,
                                       const core::MachineConfig& machine,
                                       sim::Trace* trace) {
  return run_with<SjfPolicy>(instance, machine, trace, exact_engine_);
}

core::StreamRunResult SjfScheduler::run_streamed(
    core::JobSource& source, const core::MachineConfig& machine,
    metrics::StreamingFlowStats* stats, sim::Trace* trace) {
  return run_streamed_with<SjfPolicy>(source, machine, stats, trace,
                                      exact_engine_);
}

core::ScheduleResult RoundRobinScheduler::run(const core::Instance& instance,
                                              const core::MachineConfig& machine,
                                              sim::Trace* trace) {
  return run_with<RoundRobinPolicy>(instance, machine, trace, exact_engine_);
}

core::StreamRunResult RoundRobinScheduler::run_streamed(
    core::JobSource& source, const core::MachineConfig& machine,
    metrics::StreamingFlowStats* stats, sim::Trace* trace) {
  return run_streamed_with<RoundRobinPolicy>(source, machine, stats, trace,
                                             exact_engine_);
}

core::ScheduleResult EquiScheduler::run(const core::Instance& instance,
                                        const core::MachineConfig& machine,
                                        sim::Trace* trace) {
  return run_with<EquiPolicy>(instance, machine, trace, exact_engine_);
}

core::StreamRunResult EquiScheduler::run_streamed(
    core::JobSource& source, const core::MachineConfig& machine,
    metrics::StreamingFlowStats* stats, sim::Trace* trace) {
  return run_streamed_with<EquiPolicy>(source, machine, stats, trace,
                                       exact_engine_);
}

}  // namespace pjsched::sched
