#include "src/sched/exact_opt.h"

#include <algorithm>
#include <limits>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace pjsched::sched {

namespace {

using Mask = std::uint32_t;

struct FlatInstance {
  unsigned m = 1;
  std::size_t total_nodes = 0;
  std::vector<std::uint32_t> job_of;          // global node -> job
  std::vector<Mask> pred_mask;                // global node -> predecessor set
  std::vector<Mask> job_mask;                 // job -> its nodes
  std::vector<std::int64_t> arrival;          // job -> integer arrival
  std::int64_t last_arrival = 0;
};

FlatInstance flatten(const core::Instance& instance, unsigned m) {
  instance.validate();
  if (m == 0) throw std::invalid_argument("exact_optimal_max_flow: m == 0");

  FlatInstance flat;
  flat.m = m;
  for (const core::JobSpec& job : instance.jobs)
    flat.total_nodes += job.graph.node_count();
  if (flat.total_nodes > kMaxTotalNodes)
    throw std::invalid_argument(
        "exact_optimal_max_flow: instance too large (max " +
        std::to_string(kMaxTotalNodes) + " total nodes)");

  std::size_t offset = 0;
  for (std::size_t j = 0; j < instance.size(); ++j) {
    const core::JobSpec& job = instance.jobs[j];
    const double r = job.arrival;
    if (std::abs(r - std::llround(r)) > 1e-9)
      throw std::invalid_argument(
          "exact_optimal_max_flow: arrivals must be integers");
    flat.arrival.push_back(std::llround(r));
    flat.last_arrival = std::max(flat.last_arrival, flat.arrival.back());

    Mask jmask = 0;
    for (dag::NodeId v = 0; v < job.graph.node_count(); ++v) {
      if (job.graph.work_of(v) != 1)
        throw std::invalid_argument(
            "exact_optimal_max_flow: nodes must have unit work");
      Mask preds = 0;
      for (dag::NodeId p : job.graph.predecessors(v))
        preds |= Mask{1} << (offset + p);
      flat.job_of.push_back(static_cast<std::uint32_t>(j));
      flat.pred_mask.push_back(preds);
      jmask |= Mask{1} << (offset + v);
    }
    flat.job_mask.push_back(jmask);
    offset += job.graph.node_count();
  }
  return flat;
}

class Searcher {
 public:
  Searcher(const FlatInstance& flat, std::uint64_t state_limit)
      : flat_(flat), state_limit_(state_limit) {}

  double solve() { return dfs(0, 0); }
  std::uint64_t states() const { return states_; }

 private:
  // Minimal achievable max flow over jobs not yet complete in `mask`,
  // starting at integer time `t`.
  double dfs(std::int64_t t, Mask mask) {
    const Mask full = flat_.total_nodes == 32
                          ? ~Mask{0}
                          : (Mask{1} << flat_.total_nodes) - 1;
    if (mask == full) return 0.0;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(t) << 32) | mask;
    if (const auto it = memo_.find(key); it != memo_.end()) return it->second;
    if (++states_ > state_limit_)
      throw std::runtime_error("exact_optimal_max_flow: state limit exceeded");

    // Ready nodes at time t.  Local per frame: recursive dfs calls (via
    // step_value) must not clobber the set we are still iterating.
    std::vector<std::uint32_t> ready;
    for (std::size_t v = 0; v < flat_.total_nodes; ++v) {
      const Mask bit = Mask{1} << v;
      if (mask & bit) continue;
      if (flat_.arrival[flat_.job_of[v]] > t) continue;
      if ((flat_.pred_mask[v] & mask) != flat_.pred_mask[v]) continue;
      ready.push_back(static_cast<std::uint32_t>(v));
    }

    double best;
    if (ready.empty()) {
      // Nothing runnable: jump to the next arrival (one must exist, else
      // the instance would already be complete).
      std::int64_t next = -1;
      for (std::size_t j = 0; j < flat_.arrival.size(); ++j)
        if (flat_.arrival[j] > t &&
            (flat_.job_mask[j] & ~mask) != 0 &&
            (next < 0 || flat_.arrival[j] < next))
          next = flat_.arrival[j];
      if (next < 0)
        throw std::logic_error("exact_optimal_max_flow: deadlocked state");
      best = dfs(next, mask);
    } else if (ready.size() <= flat_.m) {
      // Running every ready node is weakly dominant (unit nodes, free
      // preemption): single branch.
      Mask add = 0;
      for (std::uint32_t v : ready) add |= Mask{1} << v;
      best = step_value(t, mask, add);
    } else {
      // Branch over all size-m subsets of the ready set.
      best = std::numeric_limits<double>::infinity();
      std::vector<std::uint32_t> chosen;
      enumerate(t, mask, ready, 0, chosen, best);
    }

    memo_.emplace(key, best);
    return best;
  }

  // Value of running exactly `add` during [t, t+1).
  double step_value(std::int64_t t, Mask mask, Mask add) {
    const Mask next_mask = mask | add;
    double flows = 0.0;
    for (std::size_t j = 0; j < flat_.job_mask.size(); ++j) {
      const Mask jm = flat_.job_mask[j];
      if ((mask & jm) != jm && (next_mask & jm) == jm)
        flows = std::max(
            flows, static_cast<double>(t + 1 - flat_.arrival[j]));
    }
    return std::max(flows, dfs(t + 1, next_mask));
  }

  void enumerate(std::int64_t t, Mask mask,
                 const std::vector<std::uint32_t>& ready, std::size_t from,
                 std::vector<std::uint32_t>& chosen, double& best) {
    if (chosen.size() == flat_.m) {
      Mask add = 0;
      for (std::uint32_t v : chosen) add |= Mask{1} << v;
      best = std::min(best, step_value(t, mask, add));
      return;
    }
    // Not enough remaining candidates to fill the subset -> stop.
    if (from + (flat_.m - chosen.size()) > ready.size()) return;
    for (std::size_t i = from; i < ready.size(); ++i) {
      chosen.push_back(ready[i]);
      enumerate(t, mask, ready, i + 1, chosen, best);
      chosen.pop_back();
    }
  }

  const FlatInstance& flat_;
  const std::uint64_t state_limit_;
  std::unordered_map<std::uint64_t, double> memo_;
  std::uint64_t states_ = 0;
};

}  // namespace

ExactOptResult exact_optimal_max_flow(const core::Instance& instance,
                                      unsigned m,
                                      std::uint64_t state_limit) {
  const FlatInstance flat = flatten(instance, m);
  Searcher searcher(flat, state_limit);
  ExactOptResult result;
  result.max_flow = searcher.solve();
  result.states_explored = searcher.states();
  return result;
}

}  // namespace pjsched::sched
