// Minimal result-table formatting: aligned ASCII tables for terminal output
// and CSV for downstream plotting.  Used by every bench binary to print the
// rows/series the paper's figures plot.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pjsched::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats arithmetic cells with 4 significant decimals.
  static std::string cell(double v);
  static std::string cell(std::uint64_t v);

  std::size_t rows() const { return rows_.size(); }

  /// Pipe-separated, column-aligned ASCII rendering.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pjsched::metrics
