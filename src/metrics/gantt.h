// Trace visualization and export:
//   * ascii_gantt      — per-processor Gantt chart rendered as text, for
//                        quick terminal inspection of small schedules;
//   * chrome_trace_json— Chrome/Perfetto trace-event JSON ("catapult"
//                        format: load in chrome://tracing or ui.perfetto.dev)
//                        with one row per processor and one slice per
//                        executed node, plus steal-attempt instant events;
//   * utilization_timeline — busy-processor counts over fixed time buckets,
//                        the standard load profile plot.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/core/types.h"
#include "src/sim/trace.h"

namespace pjsched::metrics {

struct GanttOptions {
  std::size_t width = 80;     ///< characters for the time axis
  core::Time t_begin = 0.0;   ///< chart window start
  core::Time t_end = -1.0;    ///< window end; < 0 = last interval end
};

/// Renders one row per processor; each executed node paints its span with
/// a letter cycling by job id ('A' + job % 26), idle time as '.'.
/// Returns the chart as a string (trailing newline included).
std::string ascii_gantt(const sim::Trace& trace, unsigned processors,
                        const GanttOptions& options = {});

/// Writes the trace in Chrome trace-event JSON.  Time unit: the trace's
/// native unit mapped to microseconds one-to-one (Chrome requires "us").
/// Steal attempts and admissions appear as instant events when the trace
/// recorded them.
void write_chrome_trace(std::ostream& os, const sim::Trace& trace);

/// Convenience wrapper returning the JSON as a string.
std::string chrome_trace_json(const sim::Trace& trace);

/// Number of busy processors averaged over each of `buckets` equal time
/// buckets spanning [0, horizon]; horizon <= 0 means the last interval end.
std::vector<double> utilization_timeline(const sim::Trace& trace,
                                         std::size_t buckets,
                                         core::Time horizon = -1.0);

}  // namespace pjsched::metrics
