#include "src/metrics/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pjsched::metrics {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("Table::add_row: wrong cell count");
  rows_.push_back(std::move(row));
}

std::string Table::cell(double v) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(4) << v;
  return oss.str();
}

std::string Table::cell(std::uint64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << row[c];
    os << " |\n";
  };
  print_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  os << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      const std::string& cell = row[c];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace pjsched::metrics
