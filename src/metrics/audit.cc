#include "src/metrics/audit.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace pjsched::metrics {

std::string AuditReport::to_string() const {
  std::ostringstream oss;
  for (const std::string& e : errors) oss << e << '\n';
  return oss.str();
}

namespace {

std::string describe(const sim::WorkInterval& iv) {
  std::ostringstream oss;
  oss << "job " << iv.job << " node " << iv.node << " proc " << iv.proc
      << " [" << iv.start << ", " << iv.end << ")";
  return oss.str();
}

}  // namespace

AuditReport audit_schedule(const core::Instance& instance,
                           const core::MachineConfig& machine,
                           const sim::Trace& trace,
                           const core::ScheduleResult& result,
                           double tolerance) {
  AuditReport report;
  const std::size_t n = instance.size();

  // --- 1. Interval sanity. ---
  for (const sim::WorkInterval& iv : trace.intervals()) {
    if (!(iv.start < iv.end)) report.fail("empty/negative interval: " + describe(iv));
    if (iv.proc >= machine.processors)
      report.fail("processor out of range: " + describe(iv));
    if (iv.job >= n) {
      report.fail("job out of range: " + describe(iv));
      continue;
    }
    if (iv.node >= instance.jobs[iv.job].graph.node_count())
      report.fail("node out of range: " + describe(iv));
  }
  if (!report.ok) return report;  // ids unsafe to index below

  // --- 2. Per-processor exclusivity. ---
  {
    std::vector<std::vector<const sim::WorkInterval*>> per_proc(
        machine.processors);
    for (const sim::WorkInterval& iv : trace.intervals())
      per_proc[iv.proc].push_back(&iv);
    for (auto& ivs : per_proc) {
      std::sort(ivs.begin(), ivs.end(),
                [](const auto* a, const auto* b) { return a->start < b->start; });
      for (std::size_t i = 1; i < ivs.size(); ++i)
        if (ivs[i]->start < ivs[i - 1]->end - tolerance)
          report.fail("processor overlap: " + describe(*ivs[i - 1]) + " vs " +
                      describe(*ivs[i]));
    }
  }

  // Group intervals by (job, node).
  std::map<std::pair<core::JobId, dag::NodeId>,
           std::vector<const sim::WorkInterval*>>
      per_node;
  for (const sim::WorkInterval& iv : trace.intervals())
    per_node[{iv.job, iv.node}].push_back(&iv);

  // First start / last end per node, for precedence checks.
  std::map<std::pair<core::JobId, dag::NodeId>, std::pair<double, double>>
      node_span;

  for (auto& [key, ivs] : per_node) {
    std::sort(ivs.begin(), ivs.end(),
              [](const auto* a, const auto* b) { return a->start < b->start; });
    // --- 3. No node self-overlap across processors. ---
    for (std::size_t i = 1; i < ivs.size(); ++i)
      if (ivs[i]->start < ivs[i - 1]->end - tolerance)
        report.fail("node self-overlap: " + describe(*ivs[i - 1]) + " vs " +
                    describe(*ivs[i]));
    // --- 4. Exact work delivery. ---
    double delivered = 0.0;
    for (const auto* iv : ivs) delivered += (iv->end - iv->start);
    delivered *= machine.speed;
    const double want = static_cast<double>(
        instance.jobs[key.first].graph.work_of(key.second));
    if (std::abs(delivered - want) > tolerance + 1e-9 * want) {
      std::ostringstream oss;
      oss << "work mismatch for job " << key.first << " node " << key.second
          << ": delivered " << delivered << ", want " << want;
      report.fail(oss.str());
    }
    node_span[key] = {ivs.front()->start, ivs.back()->end};
  }

  // Every node of every job must appear (jobs all complete in a valid run).
  for (core::JobId j = 0; j < n; ++j) {
    const dag::Dag& g = instance.jobs[j].graph;
    for (dag::NodeId v = 0; v < g.node_count(); ++v)
      if (per_node.find({j, v}) == per_node.end()) {
        std::ostringstream oss;
        oss << "job " << j << " node " << v << " never executed";
        report.fail(oss.str());
      }
  }
  if (!report.ok) return report;

  for (core::JobId j = 0; j < n; ++j) {
    const core::JobSpec& job = instance.jobs[j];
    const dag::Dag& g = job.graph;
    double job_last_end = 0.0;
    for (dag::NodeId v = 0; v < g.node_count(); ++v) {
      const auto [first_start, last_end] = node_span[{j, v}];
      job_last_end = std::max(job_last_end, last_end);
      // --- 5. Precedence. ---
      for (dag::NodeId p : g.predecessors(v)) {
        const double pred_end = node_span[{j, p}].second;
        if (first_start < pred_end - tolerance) {
          std::ostringstream oss;
          oss << "precedence violation: job " << j << " node " << v
              << " starts at " << first_start << " before predecessor " << p
              << " ends at " << pred_end;
          report.fail(oss.str());
        }
      }
      // --- 6. Arrival respected. ---
      if (first_start < job.arrival - tolerance) {
        std::ostringstream oss;
        oss << "job " << j << " node " << v << " starts at " << first_start
            << " before arrival " << job.arrival;
        report.fail(oss.str());
      }
    }
    // --- 7. Completion bookkeeping. ---
    if (j < result.completion.size() &&
        std::abs(result.completion[j] - job_last_end) > tolerance) {
      std::ostringstream oss;
      oss << "job " << j << " completion " << result.completion[j]
          << " != last execution end " << job_last_end;
      report.fail(oss.str());
    }
  }

  return report;
}

}  // namespace pjsched::metrics
