// Bounded-memory flow-time accounting for streamed runs.
//
// A materialized run keeps every job's flow time and summarizes at the end
// (metrics::summarize) — O(all jobs) memory.  StreamingFlowStats is the
// O(1)-per-sample replacement the engines' streamed entry points record
// into: the extremes the paper's objective cares about (max flow, max
// weighted flow and its argmax, makespan) plus count/min/mean are
// maintained *exactly*, variance via Welford's recurrence, and the
// quantiles via a fixed-size uniform reservoir (Vitter's Algorithm R,
// seeded and deterministic).  While the sample count is within the
// reservoir capacity the reservoir holds every sample, so the reported
// quantiles equal metrics::summarize's bit for bit — the contract the
// streamed-vs-materialized cross-check tests pin; beyond it they are
// unbiased estimates from a uniform subsample.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/types.h"
#include "src/metrics/stats.h"
#include "src/sim/rng.h"

namespace pjsched::metrics {

class StreamingFlowStats {
 public:
  struct Options {
    /// Reservoir capacity: quantiles are exact up to this many samples and
    /// estimated from a uniform subsample beyond.  Memory is O(reservoir).
    std::size_t reservoir = 4096;
    /// Seed for the reservoir's replacement draws.  Fixed default so a
    /// streamed run is reproducible from its configuration alone.
    std::uint64_t seed = 0x5eedf10775a75ULL;
  };

  StreamingFlowStats() : StreamingFlowStats(Options{}) {}
  explicit StreamingFlowStats(const Options& options);

  /// Records one completed job.  Throws std::logic_error if `completion`
  /// precedes `arrival` (mirroring ScheduleResult::finalize's check).
  void record(core::JobId id, double arrival, double weight,
              double completion);

  std::size_t count() const { return count_; }
  double max_flow() const { return max_flow_; }
  double max_weighted_flow() const { return max_weighted_flow_; }
  /// Job attaining the maximum weighted flow; smallest id on exact ties —
  /// the same job ScheduleResult::finalize selects.  0 when count() == 0.
  core::JobId argmax_flow() const { return argmax_flow_; }
  double min_flow() const { return count_ == 0 ? 0.0 : min_flow_; }
  double mean_flow() const;
  double makespan() const { return makespan_; }

  /// True while the reservoir still holds every recorded sample (quantiles
  /// are then exact, not estimates).
  bool quantiles_exact() const { return count_ <= samples_.capacity_limit_; }

  /// Summary over everything recorded so far: count/min/max/mean exact,
  /// stddev from Welford's recurrence, p50/p90/p99 from the reservoir.
  /// Zero samples yield the all-zero Summary (the explicit empty contract:
  /// streamed runs can legitimately complete zero jobs).
  Summary summary() const;

  /// The current reservoir contents (unordered).
  const std::vector<double>& reservoir() const { return samples_.values; }

 private:
  struct Reservoir {
    std::vector<double> values;
    std::size_t capacity_limit_ = 0;
  };

  std::size_t count_ = 0;
  double max_flow_ = 0.0;
  double max_weighted_flow_ = 0.0;
  core::JobId argmax_flow_ = 0;
  double min_flow_ = 0.0;
  double makespan_ = 0.0;
  double sum_flow_ = 0.0;
  double welford_mean_ = 0.0;
  double welford_m2_ = 0.0;
  Reservoir samples_;
  sim::Rng rng_;

  friend class StreamingFlowStatsTestPeer;
};

}  // namespace pjsched::metrics
