#include "src/metrics/gantt.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pjsched::metrics {

namespace {

core::Time last_end(const sim::Trace& trace) {
  core::Time end = 0.0;
  for (const sim::WorkInterval& iv : trace.intervals())
    end = std::max(end, iv.end);
  return end;
}

}  // namespace

std::string ascii_gantt(const sim::Trace& trace, unsigned processors,
                        const GanttOptions& options) {
  if (processors == 0) throw std::invalid_argument("ascii_gantt: no processors");
  if (options.width == 0) throw std::invalid_argument("ascii_gantt: zero width");
  const core::Time t0 = options.t_begin;
  const core::Time t1 = options.t_end >= 0.0 ? options.t_end : last_end(trace);
  if (!(t1 > t0)) throw std::invalid_argument("ascii_gantt: empty time window");
  const double scale = static_cast<double>(options.width) / (t1 - t0);

  std::vector<std::string> rows(processors,
                                std::string(options.width, '.'));
  for (const sim::WorkInterval& iv : trace.intervals()) {
    if (iv.proc >= processors) continue;
    const double lo = (std::max(iv.start, t0) - t0) * scale;
    const double hi = (std::min(iv.end, t1) - t0) * scale;
    if (hi <= lo) continue;
    auto a = static_cast<std::size_t>(lo);
    auto b = static_cast<std::size_t>(std::ceil(hi));
    a = std::min(a, options.width - 1);
    b = std::clamp<std::size_t>(b, a + 1, options.width);
    const char glyph = static_cast<char>('A' + iv.job % 26);
    for (std::size_t c = a; c < b; ++c) rows[iv.proc][c] = glyph;
  }

  std::ostringstream oss;
  oss << "time " << t0 << " .. " << t1 << " (" << options.width
      << " cols, '.' = idle, letter = job id mod 26)\n";
  for (unsigned p = 0; p < processors; ++p)
    oss << "P" << p << (p < 10 ? "  |" : " |") << rows[p] << "|\n";
  return oss.str();
}

void write_chrome_trace(std::ostream& os, const sim::Trace& trace) {
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) os << ',';
    first = false;
  };
  for (const sim::WorkInterval& iv : trace.intervals()) {
    comma();
    os << "{\"name\":\"job" << iv.job << "/node" << iv.node
       << "\",\"cat\":\"work\",\"ph\":\"X\",\"ts\":" << iv.start
       << ",\"dur\":" << (iv.end - iv.start) << ",\"pid\":0,\"tid\":" << iv.proc
       << ",\"args\":{\"job\":" << iv.job << ",\"node\":" << iv.node << "}}";
  }
  for (const sim::StealEvent& ev : trace.steals()) {
    comma();
    os << "{\"name\":\"steal " << (ev.success ? "hit" : "miss")
       << "\",\"cat\":\"steal\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ev.step
       << ",\"pid\":0,\"tid\":" << ev.thief << ",\"args\":{\"victim\":"
       << ev.victim << "}}";
  }
  for (const sim::AdmissionEvent& ev : trace.admissions()) {
    comma();
    os << "{\"name\":\"admit job" << ev.job
       << "\",\"cat\":\"admission\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ev.step
       << ",\"pid\":0,\"tid\":" << ev.worker << ",\"args\":{\"job\":" << ev.job
       << "}}";
  }
  os << "]}";
}

std::string chrome_trace_json(const sim::Trace& trace) {
  std::ostringstream oss;
  write_chrome_trace(oss, trace);
  return oss.str();
}

std::vector<double> utilization_timeline(const sim::Trace& trace,
                                         std::size_t buckets,
                                         core::Time horizon) {
  if (buckets == 0)
    throw std::invalid_argument("utilization_timeline: zero buckets");
  const core::Time t1 = horizon > 0.0 ? horizon : last_end(trace);
  std::vector<double> busy(buckets, 0.0);
  if (!(t1 > 0.0)) return busy;
  const double bucket_len = t1 / static_cast<double>(buckets);
  for (const sim::WorkInterval& iv : trace.intervals()) {
    const core::Time lo = std::max(iv.start, 0.0);
    const core::Time hi = std::min(iv.end, t1);
    if (hi <= lo) continue;
    auto b0 = static_cast<std::size_t>(lo / bucket_len);
    auto b1 = static_cast<std::size_t>((hi - 1e-12) / bucket_len);
    b0 = std::min(b0, buckets - 1);
    b1 = std::min(b1, buckets - 1);
    for (std::size_t b = b0; b <= b1; ++b) {
      const core::Time seg_lo = std::max(lo, bucket_len * static_cast<double>(b));
      const core::Time seg_hi =
          std::min(hi, bucket_len * static_cast<double>(b + 1));
      if (seg_hi > seg_lo) busy[b] += (seg_hi - seg_lo) / bucket_len;
    }
  }
  return busy;
}

}  // namespace pjsched::metrics
