#include "src/metrics/streaming_stats.h"

#include <cmath>
#include <stdexcept>

namespace pjsched::metrics {

StreamingFlowStats::StreamingFlowStats(const Options& options)
    : rng_(options.seed) {
  if (options.reservoir == 0)
    throw std::invalid_argument("StreamingFlowStats: reservoir must be >= 1");
  samples_.capacity_limit_ = options.reservoir;
  samples_.values.reserve(options.reservoir);
}

void StreamingFlowStats::record(core::JobId id, double arrival, double weight,
                                double completion) {
  if (completion < arrival)
    throw std::logic_error("StreamingFlowStats: completion precedes arrival");
  const double flow = completion - arrival;
  const double weighted = weight * flow;

  if (count_ == 0) {
    min_flow_ = flow;
    argmax_flow_ = id;
    max_weighted_flow_ = weighted;
  } else {
    if (flow < min_flow_) min_flow_ = flow;
    // Strictly-greater, or equal with a smaller id: reproduces the job
    // ScheduleResult::finalize picks (its id-order scan keeps the first
    // strict maximum, i.e. the smallest id among exact ties) regardless of
    // the completion order jobs are recorded in.
    if (weighted > max_weighted_flow_ ||
        (weighted == max_weighted_flow_ && id < argmax_flow_)) {
      max_weighted_flow_ = weighted;
      argmax_flow_ = id;
    }
  }
  if (flow > max_flow_) max_flow_ = flow;
  if (completion > makespan_) makespan_ = completion;
  sum_flow_ += flow;

  ++count_;
  const double delta = flow - welford_mean_;
  welford_mean_ += delta / static_cast<double>(count_);
  welford_m2_ += delta * (flow - welford_mean_);

  // Vitter's Algorithm R: keep the first `capacity` samples, then replace a
  // uniformly random resident with probability capacity / count.
  if (samples_.values.size() < samples_.capacity_limit_) {
    samples_.values.push_back(flow);
  } else {
    const std::uint64_t j = rng_.uniform_int(count_);
    if (j < samples_.capacity_limit_) samples_.values[j] = flow;
  }
}

double StreamingFlowStats::mean_flow() const {
  return count_ == 0 ? 0.0 : sum_flow_ / static_cast<double>(count_);
}

Summary StreamingFlowStats::summary() const {
  Summary s;
  if (count_ == 0) return s;
  s.count = count_;
  s.min = min_flow_;
  s.max = max_flow_;
  s.mean = mean_flow();
  s.stddev = std::sqrt(welford_m2_ / static_cast<double>(count_));
  // Same selection sequence as summarize(): one scratch vector permuted in
  // place by successive quantile_select calls.  When the reservoir still
  // holds every sample the two scratches are multiset-identical, so the
  // quantiles are bit-for-bit equal.
  std::vector<double> scratch = samples_.values;
  s.p50 = quantile_select(scratch, 0.50);
  s.p90 = quantile_select(scratch, 0.90);
  s.p99 = quantile_select(scratch, 0.99);
  return s;
}

}  // namespace pjsched::metrics
