// Summary statistics over flow times and other samples.
#pragma once

#include <cstddef>
#include <vector>

namespace pjsched::metrics {

/// Order statistics and moments of a sample set.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Computes a Summary; does not modify `samples`.
///
/// Edge-case contract (relied on by StreamingFlowStats::summary, which must
/// reproduce these results bitwise):
///   - empty input returns the all-zero Summary (count == 0), it does NOT
///     throw — "no samples" is an ordinary outcome of a zero-job run;
///   - a single sample yields min == max == mean == p50 == p90 == p99 ==
///     that sample and stddev == 0.
Summary summarize(const std::vector<double>& samples);

/// The q-th quantile (0 <= q <= 1) by linear interpolation between order
/// statistics; `sorted` must be ascending.
/// Throws std::invalid_argument if `sorted` is empty or q is outside
/// [0, 1]; a one-element input returns that element for every q.
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Same quantile as quantile_sorted (bit-identical result) without sorting:
/// selects the two order statistics with std::nth_element, O(n) instead of
/// O(n log n).  Partially reorders `samples` (pass a scratch copy if the
/// original order matters).
/// Throws std::invalid_argument if `samples` is empty or q is outside
/// [0, 1]; a one-element input returns that element for every q.
double quantile_select(std::vector<double>& samples, double q);

/// Weighted maximum: max_i weights[i] * samples[i] (sizes must match).
double weighted_max(const std::vector<double>& samples,
                    const std::vector<double>& weights);

/// Fraction of samples strictly exceeding `threshold` — the SLO-miss rate
/// when samples are flow times and threshold is the latency objective.
double slo_miss_fraction(const std::vector<double>& samples, double threshold);

/// The smallest threshold an operator could promise while missing at most
/// `miss_budget` of requests (i.e. the (1 - miss_budget)-quantile).
double tightest_slo(const std::vector<double>& samples, double miss_budget);

/// Histogram with fixed-width bins across [lo, hi); values outside clamp to
/// the boundary bins.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> counts;

  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t total() const;
  /// Fraction of samples in bin b.
  double fraction(std::size_t b) const;
  double bin_center(std::size_t b) const;
};

}  // namespace pjsched::metrics
