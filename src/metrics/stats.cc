#include "src/metrics/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pjsched::metrics {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument("quantile_sorted: empty");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile_sorted: bad q");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double quantile_select(std::vector<double>& samples, double q) {
  if (samples.empty()) throw std::invalid_argument("quantile_select: empty");
  if (q < 0.0 || q > 1.0)
    throw std::invalid_argument("quantile_select: bad q");
  if (samples.size() == 1) return samples[0];
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  const auto lo_it = samples.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(samples.begin(), lo_it, samples.end());
  const double a = *lo_it;
  // hi == lo only at q == 1; otherwise the hi-th order statistic is the
  // minimum of the tail nth_element partitioned above position lo.
  const double b =
      hi == lo ? a : *std::min_element(lo_it + 1, samples.end());
  return a * (1.0 - frac) + b * frac;
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;
  s.count = samples.size();
  const auto [mn, mx] = std::minmax_element(samples.begin(), samples.end());
  s.min = *mn;
  s.max = *mx;
  double sum = 0.0;
  for (double x : samples) sum += x;
  s.mean = sum / static_cast<double>(s.count);
  double var = 0.0;
  for (double x : samples) var += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(s.count));
  // Selection, not a full sort: each quantile costs O(n), and the three
  // selections share one scratch vector (quantile_select's result does not
  // depend on the input order it permutes).
  std::vector<double> scratch = samples;
  s.p50 = quantile_select(scratch, 0.50);
  s.p90 = quantile_select(scratch, 0.90);
  s.p99 = quantile_select(scratch, 0.99);
  return s;
}

double weighted_max(const std::vector<double>& samples,
                    const std::vector<double>& weights) {
  if (samples.size() != weights.size())
    throw std::invalid_argument("weighted_max: size mismatch");
  double best = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i)
    best = std::max(best, samples[i] * weights[i]);
  return best;
}

double slo_miss_fraction(const std::vector<double>& samples,
                         double threshold) {
  if (samples.empty()) return 0.0;
  std::size_t misses = 0;
  for (double x : samples)
    if (x > threshold) ++misses;
  return static_cast<double>(misses) / static_cast<double>(samples.size());
}

double tightest_slo(const std::vector<double>& samples, double miss_budget) {
  if (samples.empty()) throw std::invalid_argument("tightest_slo: empty");
  if (miss_budget < 0.0 || miss_budget > 1.0)
    throw std::invalid_argument("tightest_slo: bad miss budget");
  std::vector<double> scratch = samples;
  return quantile_select(scratch, 1.0 - miss_budget);
}

Histogram::Histogram(double lo_in, double hi_in, std::size_t bins)
    : lo(lo_in), hi(hi_in), counts(bins, 0) {
  if (!(lo < hi) || bins == 0)
    throw std::invalid_argument("Histogram: bad parameters");
}

void Histogram::add(double x) {
  const double width = (hi - lo) / static_cast<double>(counts.size());
  auto b = static_cast<long long>(std::floor((x - lo) / width));
  b = std::clamp<long long>(b, 0, static_cast<long long>(counts.size()) - 1);
  ++counts[static_cast<std::size_t>(b)];
}

std::size_t Histogram::total() const {
  std::size_t t = 0;
  for (std::size_t c : counts) t += c;
  return t;
}

double Histogram::fraction(std::size_t b) const {
  const std::size_t t = total();
  return t == 0 ? 0.0
                : static_cast<double>(counts.at(b)) / static_cast<double>(t);
}

double Histogram::bin_center(std::size_t b) const {
  const double width = (hi - lo) / static_cast<double>(counts.size());
  return lo + width * (static_cast<double>(b) + 0.5);
}

}  // namespace pjsched::metrics
