// Schedule auditing: replays an execution trace against the instance and
// the machine model and verifies every invariant a legal schedule must
// satisfy.  Used by the test suite to validate both simulation engines on
// every property-test instance.
//
// Checks performed:
//   1. Interval sanity: start < end, processor/job/node ids in range.
//   2. No processor runs two nodes at once.
//   3. No node runs on two processors at once (it may migrate after a
//      preemption, but never overlaps itself).
//   4. Each node receives exactly its processing time of work:
//      sum of (end - start) * speed == work (within tolerance).
//   5. Precedence: a node never starts before all its predecessors' last
//      intervals end.
//   6. Non-clairvoyance of arrivals: no node of a job runs before the job
//      arrives.
//   7. Completion bookkeeping: the reported completion time of each job
//      equals the end of its last interval (within tolerance).
#pragma once

#include <string>
#include <vector>

#include "src/core/types.h"
#include "src/sim/trace.h"

namespace pjsched::metrics {

struct AuditReport {
  bool ok = true;
  std::vector<std::string> errors;

  void fail(std::string message) {
    ok = false;
    errors.push_back(std::move(message));
  }

  /// All errors joined with newlines (empty when ok).
  std::string to_string() const;
};

/// Audits `trace` as an execution of `instance` on `machine` that produced
/// `result`.  `tolerance` is the absolute slack allowed in work/time
/// comparisons (the engines' arithmetic is exact to ~1e-9).
AuditReport audit_schedule(const core::Instance& instance,
                           const core::MachineConfig& machine,
                           const sim::Trace& trace,
                           const core::ScheduleResult& result,
                           double tolerance = 1e-6);

}  // namespace pjsched::metrics
