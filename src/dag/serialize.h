// Plain-text (de)serialization of DAGs, for fixtures, golden tests, and
// dumping generated workloads.  Format:
//
//   dag <node_count> <edge_count>
//   node <id> <work>          (one line per node, ids 0..n-1 in order)
//   edge <from> <to>          (one line per edge)
//   end
//
// Whitespace-separated, '#'-to-end-of-line comments allowed between records.
#pragma once

#include <iosfwd>
#include <string>

#include "src/dag/dag.h"

namespace pjsched::dag {

/// Writes a sealed DAG in the text format above.
void write_text(std::ostream& os, const Dag& d);

/// Convenience: serialize to a string.
std::string to_text(const Dag& d);

/// Parses the text format and returns a sealed DAG.
/// Throws std::invalid_argument on malformed input.
Dag read_text(std::istream& is);

/// Convenience: parse from a string.
Dag from_text(const std::string& text);

}  // namespace pjsched::dag
