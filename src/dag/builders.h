// Constructors for the DAG shapes used throughout the paper and its
// evaluation: serial chains, fork-join / parallel-for jobs (Section 6's
// workloads are "parallelized using parallel for loops"), divide-and-conquer
// trees, random layered DAGs for property tests, and the Section 5
// lower-bound "star" job (one root node preceding c independent tasks).
#pragma once

#include <cstdint>

#include "src/dag/dag.h"
#include "src/sim/rng.h"

namespace pjsched::dag {

/// A chain of `length` nodes, each with `work_per_node` units; fully
/// sequential (P = W = length * work_per_node).
Dag serial_chain(std::size_t length, Work work_per_node);

/// A single node of the given size.
Dag single_node(Work work);

/// Parallel-for job: a root node, `grains` independent body nodes, and a
/// join node.  `body_work` units per grain.  This is the canonical shape of
/// the paper's evaluation jobs.  W = root + join + grains*body_work,
/// P = root + join + body_work.
Dag parallel_for_dag(std::size_t grains, Work body_work, Work root_work = 1,
                     Work join_work = 1);

/// Like parallel_for_dag but with per-grain work supplied by the caller via
/// a callback (grain index -> work units); used to build skewed loops.
template <typename F>
Dag parallel_for_dag_fn(std::size_t grains, F&& body_work_of,
                        Work root_work = 1, Work join_work = 1) {
  Dag d;
  const NodeId root = d.add_node(root_work);
  std::vector<NodeId> bodies;
  bodies.reserve(grains);
  for (std::size_t g = 0; g < grains; ++g)
    bodies.push_back(d.add_node(body_work_of(g)));
  const NodeId join = d.add_node(join_work);
  for (NodeId b : bodies) {
    d.add_edge(root, b);
    d.add_edge(b, join);
  }
  d.seal();
  return d;
}

/// Balanced binary fork-join (divide-and-conquer) tree of the given depth:
/// 2^depth leaves of `leaf_work` units each, with unit-work internal fork and
/// join nodes.  P = Theta(depth), W = Theta(2^depth * leaf_work).
Dag divide_and_conquer(std::size_t depth, Work leaf_work);

/// The Section 5 lower-bound job: one unit-work root node that is the sole
/// predecessor of `children` independent unit-work tasks.  Total work is
/// children + 1 and critical path is 2; executed sequentially it takes
/// children + 1 steps.
Dag star(std::size_t children);

/// Options for random_layered.
struct RandomLayeredOptions {
  std::size_t layers = 4;           ///< number of layers, >= 1
  std::size_t min_width = 1;        ///< min nodes per layer
  std::size_t max_width = 4;        ///< max nodes per layer
  Work min_work = 1;                ///< min node processing time
  Work max_work = 8;                ///< max node processing time
  double edge_probability = 0.5;    ///< probability of an edge between
                                    ///< consecutive-layer node pairs
};

/// Options for random_fork_join.
struct RandomForkJoinOptions {
  std::size_t max_depth = 4;       ///< recursion depth limit
  double fork_probability = 0.6;   ///< chance an inner node forks again
  std::size_t min_fanout = 2;
  std::size_t max_fanout = 3;
  Work min_work = 1;
  Work max_work = 6;
};

/// Random *series-parallel* fork-join program, the shape of recursive
/// spawn/sync code in Cilk-style runtimes: each position either becomes a
/// leaf task or forks into a fan of recursively generated subprograms
/// bracketed by fork/join nodes.  Always sealed; deterministic given rng.
Dag random_fork_join(sim::Rng& rng, const RandomForkJoinOptions& opt);

/// Random layered DAG for property tests: nodes in `layers` ranks, edges only
/// from rank i to rank i+1, each present with `edge_probability`.  Every
/// layer-(i+1) node is guaranteed at least one predecessor so the DAG depth
/// is genuinely `layers`.  Deterministic given `rng` state.
Dag random_layered(sim::Rng& rng, const RandomLayeredOptions& opt);

}  // namespace pjsched::dag
