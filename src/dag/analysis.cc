#include "src/dag/analysis.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace pjsched::dag {

namespace {
void require_sealed(const Dag& d, const char* fn) {
  if (!d.sealed()) throw std::invalid_argument(std::string(fn) + ": DAG not sealed");
}
}  // namespace

std::vector<NodeId> topological_order(const Dag& d) {
  require_sealed(d, "topological_order");
  const std::size_t n = d.node_count();
  std::vector<std::uint32_t> indeg(n);
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> ready;
  for (std::size_t v = 0; v < n; ++v) {
    indeg[v] = static_cast<std::uint32_t>(d.in_degree(static_cast<NodeId>(v)));
    if (indeg[v] == 0) ready.push(static_cast<NodeId>(v));
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId u = ready.top();
    ready.pop();
    order.push_back(u);
    for (NodeId v : d.successors(u))
      if (--indeg[v] == 0) ready.push(v);
  }
  return order;
}

Work compute_critical_path(const Dag& d) {
  require_sealed(d, "compute_critical_path");
  const auto order = topological_order(d);
  std::vector<Work> dist(d.node_count(), 0);
  Work best = 0;
  for (NodeId u : order) {
    Work du = d.work_of(u);
    for (NodeId p : d.predecessors(u)) du = std::max(du, dist[p] + d.work_of(u));
    dist[u] = du;
    best = std::max(best, du);
  }
  return best;
}

Work compute_total_work(const Dag& d) {
  require_sealed(d, "compute_total_work");
  Work w = 0;
  for (std::size_t v = 0; v < d.node_count(); ++v)
    w += d.work_of(static_cast<NodeId>(v));
  return w;
}

double brent_bound(const Dag& d, unsigned m) {
  require_sealed(d, "brent_bound");
  if (m == 0) throw std::invalid_argument("brent_bound: m == 0");
  const double w = static_cast<double>(d.total_work());
  const double p = static_cast<double>(d.critical_path());
  return w / m + p * (static_cast<double>(m) - 1.0) / m;
}

std::vector<Work> earliest_start_times(const Dag& d) {
  require_sealed(d, "earliest_start_times");
  const auto order = topological_order(d);
  std::vector<Work> est(d.node_count(), 0);
  for (NodeId u : order)
    for (NodeId p : d.predecessors(u))
      est[u] = std::max(est[u], est[p] + d.work_of(p));
  return est;
}

std::size_t max_parallelism_asap(const Dag& d) {
  require_sealed(d, "max_parallelism_asap");
  // Under the ASAP schedule node v occupies [est[v], est[v] + work[v]).
  // Sweep interval endpoints to find the maximum overlap.
  const auto est = earliest_start_times(d);
  std::vector<std::pair<Work, int>> events;
  events.reserve(2 * d.node_count());
  for (std::size_t v = 0; v < d.node_count(); ++v) {
    const auto id = static_cast<NodeId>(v);
    events.emplace_back(est[v], +1);
    events.emplace_back(est[v] + d.work_of(id), -1);
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              // Ends sort before starts at the same instant.
              return a.first != b.first ? a.first < b.first
                                        : a.second < b.second;
            });
  std::size_t cur = 0, best = 0;
  for (const auto& [t, delta] : events) {
    cur = static_cast<std::size_t>(static_cast<long long>(cur) + delta);
    best = std::max(best, cur);
  }
  return best;
}

DagStats compute_stats(const Dag& d) {
  require_sealed(d, "compute_stats");
  DagStats s;
  s.nodes = d.node_count();
  s.edges = d.edge_count();
  s.total_work = d.total_work();
  s.critical_path = d.critical_path();
  s.average_parallelism = d.parallelism();
  for (std::size_t v = 0; v < d.node_count(); ++v) {
    const auto id = static_cast<NodeId>(v);
    if (d.in_degree(id) == 0) ++s.sources;
    if (d.out_degree(id) == 0) ++s.sinks;
    s.max_in_degree = std::max(s.max_in_degree, d.in_degree(id));
    s.max_out_degree = std::max(s.max_out_degree, d.out_degree(id));
  }
  return s;
}

}  // namespace pjsched::dag
