#include "src/dag/compose.h"

#include <stdexcept>

namespace pjsched::dag {

namespace {

void require_sealed(const Dag& d, const char* fn) {
  if (!d.sealed())
    throw std::invalid_argument(std::string(fn) + ": input DAG not sealed");
}

// Copies `src` into `dst`, returning the node-id offset, and collects
// src's sources/sinks translated into dst ids.
NodeId absorb(Dag& dst, const Dag& src, std::vector<NodeId>* sources,
              std::vector<NodeId>* sinks) {
  const auto offset = static_cast<NodeId>(dst.node_count());
  for (NodeId v = 0; v < src.node_count(); ++v) dst.add_node(src.work_of(v));
  for (NodeId v = 0; v < src.node_count(); ++v)
    for (NodeId w : src.successors(v))
      dst.add_edge(offset + v, offset + w);
  for (NodeId v = 0; v < src.node_count(); ++v) {
    const auto id = static_cast<NodeId>(v);
    if (sources != nullptr && src.in_degree(id) == 0)
      sources->push_back(offset + id);
    if (sinks != nullptr && src.out_degree(id) == 0)
      sinks->push_back(offset + id);
  }
  return offset;
}

}  // namespace

Dag sequence(const Dag& first, const Dag& second) {
  require_sealed(first, "sequence");
  require_sealed(second, "sequence");
  Dag d;
  std::vector<NodeId> first_sinks, second_sources;
  absorb(d, first, nullptr, &first_sinks);
  absorb(d, second, &second_sources, nullptr);
  for (NodeId a : first_sinks)
    for (NodeId b : second_sources) d.add_edge(a, b);
  d.seal();
  return d;
}

Dag parallel_compose(const Dag& first, const Dag& second) {
  require_sealed(first, "parallel_compose");
  require_sealed(second, "parallel_compose");
  Dag d;
  absorb(d, first, nullptr, nullptr);
  absorb(d, second, nullptr, nullptr);
  d.seal();
  return d;
}

Dag map_reduce_dag(std::size_t mappers, Work map_work, std::size_t reducers,
                   Work reduce_work) {
  if (mappers == 0 || reducers == 0)
    throw std::invalid_argument("map_reduce_dag: empty stage");
  Dag d;
  std::vector<NodeId> maps, reds;
  maps.reserve(mappers);
  reds.reserve(reducers);
  for (std::size_t i = 0; i < mappers; ++i) maps.push_back(d.add_node(map_work));
  for (std::size_t i = 0; i < reducers; ++i)
    reds.push_back(d.add_node(reduce_work));
  for (NodeId m : maps)
    for (NodeId r : reds) d.add_edge(m, r);
  d.seal();
  return d;
}

Dag pipeline_dag(std::size_t stages, std::size_t width, Work node_work) {
  if (stages == 0 || width == 0)
    throw std::invalid_argument("pipeline_dag: empty shape");
  Dag d;
  std::vector<NodeId> prev, cur;
  for (std::size_t s = 0; s < stages; ++s) {
    cur.clear();
    for (std::size_t i = 0; i < width; ++i) cur.push_back(d.add_node(node_work));
    if (!prev.empty()) {
      for (std::size_t i = 0; i < width; ++i) {
        d.add_edge(prev[i], cur[i]);
        if (width > 1) d.add_edge(prev[i], cur[(i + 1) % width]);
      }
    }
    prev = cur;
  }
  d.seal();
  return d;
}

}  // namespace pjsched::dag
