#include "src/dag/dag.h"

#include <algorithm>
#include <stdexcept>

namespace pjsched::dag {

NodeId Dag::add_node(Work processing_time) {
  if (sealed_) throw std::logic_error("Dag::add_node: DAG already sealed");
  if (processing_time == 0)
    throw std::invalid_argument("Dag::add_node: zero-work nodes are not allowed");
  if (work_.size() >= kInvalidNode)
    throw std::length_error("Dag::add_node: too many nodes");
  work_.push_back(processing_time);
  return static_cast<NodeId>(work_.size() - 1);
}

void Dag::add_edge(NodeId from, NodeId to) {
  if (sealed_) throw std::logic_error("Dag::add_edge: DAG already sealed");
  if (from >= work_.size() || to >= work_.size())
    throw std::invalid_argument("Dag::add_edge: endpoint out of range");
  if (from == to) throw std::invalid_argument("Dag::add_edge: self loop");
  pending_edges_.emplace_back(from, to);
}

void Dag::seal() {
  if (sealed_) throw std::logic_error("Dag::seal: already sealed");
  if (work_.empty()) throw std::invalid_argument("Dag::seal: empty DAG");

  const std::size_t n = work_.size();
  std::sort(pending_edges_.begin(), pending_edges_.end());
  if (std::adjacent_find(pending_edges_.begin(), pending_edges_.end()) !=
      pending_edges_.end())
    throw std::invalid_argument("Dag::seal: duplicate edge");
  edge_count_ = pending_edges_.size();

  succ_off_.assign(n + 1, 0);
  pred_off_.assign(n + 1, 0);
  for (const auto& [u, v] : pending_edges_) {
    ++succ_off_[u + 1];
    ++pred_off_[v + 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    succ_off_[i + 1] += succ_off_[i];
    pred_off_[i + 1] += pred_off_[i];
  }
  succ_flat_.resize(edge_count_);
  pred_flat_.resize(edge_count_);
  {
    std::vector<std::uint32_t> sfill(succ_off_.begin(), succ_off_.end() - 1);
    std::vector<std::uint32_t> pfill(pred_off_.begin(), pred_off_.end() - 1);
    for (const auto& [u, v] : pending_edges_) {
      succ_flat_[sfill[u]++] = v;
      pred_flat_[pfill[v]++] = u;
    }
  }
  pending_edges_.clear();
  pending_edges_.shrink_to_fit();

  // Kahn topological pass: detects cycles, collects sources, and computes the
  // critical path (longest path by node weights) in one sweep.
  std::vector<std::uint32_t> indeg(n);
  for (std::size_t v = 0; v < n; ++v)
    indeg[v] = pred_off_[v + 1] - pred_off_[v];
  std::vector<NodeId> queue;
  std::vector<Work> dist(n, 0);  // longest path ending at v, inclusive of v
  total_work_ = 0;
  for (std::size_t v = 0; v < n; ++v) {
    total_work_ += work_[v];
    if (indeg[v] == 0) {
      queue.push_back(static_cast<NodeId>(v));
      sources_.push_back(static_cast<NodeId>(v));
      dist[v] = work_[v];
    }
  }
  std::size_t processed = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    ++processed;
    critical_path_ = std::max(critical_path_, dist[u]);
    for (std::uint32_t e = succ_off_[u]; e < succ_off_[u + 1]; ++e) {
      const NodeId v = succ_flat_[e];
      dist[v] = std::max(dist[v], dist[u] + work_[v]);
      if (--indeg[v] == 0) queue.push_back(v);
    }
  }
  if (processed != n) throw std::invalid_argument("Dag::seal: graph has a cycle");
  sealed_ = true;
}

std::span<const NodeId> Dag::successors(NodeId v) const {
  return {succ_flat_.data() + succ_off_[v], succ_off_[v + 1] - succ_off_[v]};
}

std::span<const NodeId> Dag::predecessors(NodeId v) const {
  return {pred_flat_.data() + pred_off_[v], pred_off_[v + 1] - pred_off_[v]};
}

ReadyTracker::ReadyTracker(const Dag& dag) { reset(dag); }

void ReadyTracker::reset(const Dag& dag) {
  if (!dag.sealed())
    throw std::invalid_argument("ReadyTracker: DAG must be sealed");
  dag_ = &dag;
  completed_ = 0;
  const std::size_t n = dag.node_count();
  pending_preds_.resize(n);
  state_.assign(n, 0);
  ready_.clear();
  for (std::size_t v = 0; v < n; ++v)
    pending_preds_[v] =
        static_cast<std::uint32_t>(dag.predecessors(static_cast<NodeId>(v)).size());
  for (NodeId s : dag.sources()) {
    ready_.push_back(s);
    state_[s] = 1;
  }
}

void ReadyTracker::claim(NodeId v) {
  if (v >= state_.size() || state_[v] != 1)
    throw std::logic_error("ReadyTracker::claim: node is not ready");
  auto it = std::find(ready_.begin(), ready_.end(), v);
  ready_.erase(it);
  state_[v] = 2;
}

std::size_t ReadyTracker::complete(NodeId v, std::vector<NodeId>* out_enabled) {
  if (v >= state_.size() || state_[v] != 2)
    throw std::logic_error("ReadyTracker::complete: node was not claimed");
  state_[v] = 3;
  ++completed_;
  std::size_t enabled = 0;
  for (NodeId w : dag_->successors(v)) {
    if (--pending_preds_[w] == 0) {
      state_[w] = 1;
      ready_.push_back(w);
      if (out_enabled != nullptr) out_enabled->push_back(w);
      ++enabled;
    }
  }
  return enabled;
}

}  // namespace pjsched::dag
