// DAG composition combinators: build realistic job graphs from smaller
// pieces (series-parallel composition, shuffle stages, pipelines).  All
// functions return sealed DAGs and accept only sealed inputs.
#pragma once

#include <vector>

#include "src/dag/dag.h"

namespace pjsched::dag {

/// Series composition: every sink of `first` precedes every source of
/// `second` (so all of `first` finishes before any of `second` starts).
/// W = W1 + W2; P = P1 + P2.
Dag sequence(const Dag& first, const Dag& second);

/// Parallel composition: disjoint union; the two subgraphs are
/// independent.  W = W1 + W2; P = max(P1, P2).
Dag parallel_compose(const Dag& first, const Dag& second);

/// Map-reduce job: `mappers` independent map nodes, an all-to-all shuffle
/// edge set, and `reducers` reduce nodes.  Classic two-stage shape with a
/// dense precedence layer.
Dag map_reduce_dag(std::size_t mappers, Work map_work, std::size_t reducers,
                   Work reduce_work);

/// Pipeline: `stages` layers of `width` nodes; node (s, i) precedes
/// nodes (s+1, i) and (s+1, i+1 mod width) — a wrapped stencil, the common
/// software-pipeline dependence shape.
Dag pipeline_dag(std::size_t stages, std::size_t width, Work node_work);

}  // namespace pjsched::dag
