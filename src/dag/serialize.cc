#include "src/dag/serialize.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pjsched::dag {

void write_text(std::ostream& os, const Dag& d) {
  if (!d.sealed()) throw std::invalid_argument("write_text: DAG not sealed");
  os << "dag " << d.node_count() << ' ' << d.edge_count() << '\n';
  for (std::size_t v = 0; v < d.node_count(); ++v)
    os << "node " << v << ' ' << d.work_of(static_cast<NodeId>(v)) << '\n';
  for (std::size_t v = 0; v < d.node_count(); ++v)
    for (NodeId w : d.successors(static_cast<NodeId>(v)))
      os << "edge " << v << ' ' << w << '\n';
  os << "end\n";
}

std::string to_text(const Dag& d) {
  std::ostringstream oss;
  write_text(oss, d);
  return oss.str();
}

namespace {
// Pulls the next whitespace-separated token, skipping '#' comments.
bool next_token(std::istream& is, std::string& tok) {
  while (is >> tok) {
    if (tok[0] == '#') {
      is.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
      continue;
    }
    return true;
  }
  return false;
}

std::uint64_t parse_u64(const std::string& tok, const char* what) {
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(tok, &pos);
    if (pos != tok.size()) throw std::invalid_argument(tok);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("read_text: bad ") + what + " '" +
                                tok + "'");
  }
}

std::uint64_t expect_u64(std::istream& is, const char* what) {
  std::string tok;
  if (!next_token(is, tok))
    throw std::invalid_argument(std::string("read_text: missing ") + what);
  return parse_u64(tok, what);
}
}  // namespace

Dag read_text(std::istream& is) {
  std::string tok;
  if (!next_token(is, tok) || tok != "dag")
    throw std::invalid_argument("read_text: expected 'dag' header");
  const std::uint64_t n = expect_u64(is, "node count");
  const std::uint64_t e = expect_u64(is, "edge count");

  Dag d;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!next_token(is, tok) || tok != "node")
      throw std::invalid_argument("read_text: expected 'node' record");
    const std::uint64_t id = expect_u64(is, "node id");
    if (id != i) throw std::invalid_argument("read_text: node ids must be 0..n-1 in order");
    const std::uint64_t work = expect_u64(is, "node work");
    d.add_node(work);
  }
  for (std::uint64_t i = 0; i < e; ++i) {
    if (!next_token(is, tok) || tok != "edge")
      throw std::invalid_argument("read_text: expected 'edge' record");
    const std::uint64_t from = expect_u64(is, "edge source");
    const std::uint64_t to = expect_u64(is, "edge target");
    if (from >= n || to >= n)
      throw std::invalid_argument("read_text: edge endpoint out of range");
    d.add_edge(static_cast<NodeId>(from), static_cast<NodeId>(to));
  }
  if (!next_token(is, tok) || tok != "end")
    throw std::invalid_argument("read_text: expected 'end' trailer");
  d.seal();
  return d;
}

Dag from_text(const std::string& text) {
  std::istringstream iss(text);
  return read_text(iss);
}

}  // namespace pjsched::dag
