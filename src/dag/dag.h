// Dynamic-multithreaded job DAGs (paper Section 2).
//
// A job is a directed acyclic graph G whose nodes carry integer processing
// times (in abstract *work units*).  A node may execute only after all of its
// predecessors have completed; multiple ready nodes of the same job may run
// simultaneously on distinct processors.  Schedulers in this library never
// inspect the DAG beyond its ready frontier: the graph "unfolds dynamically"
// exactly as in the paper's non-clairvoyant model (see ReadyTracker below).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace pjsched::sim {
class PackedDag;  // SoA execution layout (src/sim/packed_dag.h)
}  // namespace pjsched::sim

namespace pjsched::dag {

/// Index of a node within one job's DAG.
using NodeId = std::uint32_t;

/// Processing time of a node, in abstract integer work units.  One unit is
/// the amount of work an s-speed processor finishes in 1/s time (paper
/// Section 3, "time step").  The workload layer decides how many real
/// milliseconds one unit represents.
using Work = std::uint64_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Immutable-after-construction DAG of sequential tasks.
///
/// Build with add_node / add_edge, then call seal().  seal() validates the
/// graph (acyclicity, edge sanity) and freezes it; the scheduling engines
/// require a sealed DAG.  All query methods are safe on a sealed DAG and
/// never mutate, so one Dag can back many concurrent simulations.
class Dag {
 public:
  Dag() = default;

  /// Adds a node with the given processing time (must be >= 1: the machine
  /// model is built from unit-work steps, so zero-work nodes are banned).
  /// Returns the new node's id.  Only valid before seal().
  NodeId add_node(Work processing_time);

  /// Adds a precedence edge: `to` may not start until `from` completes.
  /// Duplicate edges are rejected in seal().  Only valid before seal().
  void add_edge(NodeId from, NodeId to);

  /// Validates and freezes the DAG.  Throws std::invalid_argument on a
  /// cycle, duplicate edge, out-of-range endpoint, or an empty graph.
  void seal();

  bool sealed() const { return sealed_; }

  std::size_t node_count() const { return work_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  Work work_of(NodeId v) const { return work_[v]; }

  /// Successors / predecessors of a node (sealed only).
  std::span<const NodeId> successors(NodeId v) const;
  std::span<const NodeId> predecessors(NodeId v) const;

  std::size_t in_degree(NodeId v) const { return predecessors(v).size(); }
  std::size_t out_degree(NodeId v) const { return successors(v).size(); }

  /// Nodes with no predecessors, in node-id order (sealed only).
  std::span<const NodeId> sources() const { return sources_; }

  /// Total work W: sum of all node processing times (sealed only; O(1)).
  Work total_work() const { return total_work_; }

  /// Critical-path length P: the longest path weighted by processing times
  /// (sealed only; computed once in seal(), O(1) afterwards).  This is the
  /// paper's P_i, a lower bound on the job's execution time at speed 1.
  Work critical_path() const { return critical_path_; }

  /// Average parallelism W/P.
  double parallelism() const {
    return static_cast<double>(total_work_) / static_cast<double>(critical_path_);
  }

 private:
  friend class ReadyTracker;
  // The arena's packed slot layout copies the CSR arrays wholesale instead
  // of re-deriving them through the per-node query API.
  friend class sim::PackedDag;

  std::vector<Work> work_;
  // CSR adjacency, filled by seal() from the edge list.
  std::vector<NodeId> succ_flat_, pred_flat_;
  std::vector<std::uint32_t> succ_off_, pred_off_;
  std::vector<std::pair<NodeId, NodeId>> pending_edges_;
  std::vector<NodeId> sources_;
  std::size_t edge_count_ = 0;
  Work total_work_ = 0;
  Work critical_path_ = 0;
  bool sealed_ = false;
};

/// Tracks the dynamically unfolding ready frontier of one executing job.
///
/// This is the *only* view of a DAG that the non-clairvoyant schedulers get:
/// which nodes are currently ready, and which become ready when a node
/// completes.  The tracker never reveals work of unreached nodes, the total
/// node count remaining, or graph structure ahead of the frontier.
class ReadyTracker {
 public:
  /// Unbound tracker; call reset() before any other member.  Exists so the
  /// simulation engines' recycling job arenas can keep tracker capacity
  /// alive across the jobs that successively occupy one slot.
  ReadyTracker() = default;

  /// Binds to a sealed DAG.  Initially every source node is ready.
  explicit ReadyTracker(const Dag& dag);

  /// Rebinds to `dag` and restarts from the initial frontier, reusing the
  /// existing vector capacity (no allocation when `dag` is no larger than
  /// any previously bound DAG).
  void reset(const Dag& dag);

  /// Nodes currently ready (unblocked, not yet claimed).  Order is
  /// deterministic: ascending node id of insertion batches.
  std::span<const NodeId> ready() const { return ready_; }
  std::size_t ready_count() const { return ready_.size(); }

  /// Removes one ready node from the frontier (the scheduler claimed it and
  /// will execute it).  `v` must currently be ready.
  void claim(NodeId v);

  /// Marks a claimed node as completed; appends any newly enabled
  /// successors to `out_enabled` (may be null) and to the ready frontier.
  /// Returns the number of successors enabled.
  std::size_t complete(NodeId v, std::vector<NodeId>* out_enabled = nullptr);

  /// Number of nodes completed so far.
  std::size_t completed_count() const { return completed_; }

  /// True when every node of the DAG has completed.
  bool done() const { return completed_ == dag_->node_count(); }

  const Dag& dag() const { return *dag_; }

 private:
  const Dag* dag_ = nullptr;
  std::vector<std::uint32_t> pending_preds_;  // per node: unmet predecessors
  std::vector<NodeId> ready_;
  std::vector<std::uint8_t> state_;  // 0 = blocked, 1 = ready, 2 = claimed, 3 = done
  std::size_t completed_ = 0;
};

}  // namespace pjsched::dag
