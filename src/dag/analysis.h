// Structural analysis of sealed DAGs: topological order, independent
// recomputation of work/span, Brent-bound estimates, and degree statistics.
// seal() already caches W and P; this header provides slower, independent
// recomputations (used by tests as an oracle) plus derived quantities used
// by the bound calculators in src/core/bounds.h.
#pragma once

#include <vector>

#include "src/dag/dag.h"

namespace pjsched::dag {

/// A topological order of the DAG's nodes (Kahn; deterministic: smallest
/// ready node id first).
std::vector<NodeId> topological_order(const Dag& d);

/// Recomputes the critical-path length from scratch (oracle for
/// Dag::critical_path()).
Work compute_critical_path(const Dag& d);

/// Recomputes total work from scratch (oracle for Dag::total_work()).
Work compute_total_work(const Dag& d);

/// Brent's bound on greedy m-processor makespan at speed 1:
/// W/m + P * (m-1)/m.  Any greedy schedule of this single DAG finishes
/// within this time; used as a sanity ceiling in tests.
double brent_bound(const Dag& d, unsigned m);

/// Earliest possible start time of each node given unlimited processors
/// (the "level" of the node weighted by processing times): node v's entry is
/// the length of the longest path ending just before v.
std::vector<Work> earliest_start_times(const Dag& d);

/// Maximum number of nodes that can be simultaneously in flight given
/// unlimited processors (width of the DAG under the ASAP schedule).  An
/// upper bound on realized parallelism.
std::size_t max_parallelism_asap(const Dag& d);

/// Summary statistics bundle.
struct DagStats {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  Work total_work = 0;
  Work critical_path = 0;
  double average_parallelism = 0.0;
  std::size_t sources = 0;
  std::size_t sinks = 0;
  std::size_t max_out_degree = 0;
  std::size_t max_in_degree = 0;
};

DagStats compute_stats(const Dag& d);

}  // namespace pjsched::dag
