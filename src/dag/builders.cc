#include "src/dag/builders.h"

#include <stdexcept>

namespace pjsched::dag {

Dag serial_chain(std::size_t length, Work work_per_node) {
  if (length == 0) throw std::invalid_argument("serial_chain: length == 0");
  Dag d;
  NodeId prev = d.add_node(work_per_node);
  for (std::size_t i = 1; i < length; ++i) {
    const NodeId cur = d.add_node(work_per_node);
    d.add_edge(prev, cur);
    prev = cur;
  }
  d.seal();
  return d;
}

Dag single_node(Work work) {
  Dag d;
  d.add_node(work);
  d.seal();
  return d;
}

Dag parallel_for_dag(std::size_t grains, Work body_work, Work root_work,
                     Work join_work) {
  if (grains == 0) throw std::invalid_argument("parallel_for_dag: grains == 0");
  return parallel_for_dag_fn(
      grains, [body_work](std::size_t) { return body_work; }, root_work,
      join_work);
}

namespace {
// Recursively emits the fork tree: a fork node splits into two subtrees whose
// leaves carry the work, mirrored by a join tree below.
// Returns {entry, exit} node ids of the emitted subgraph.
std::pair<NodeId, NodeId> emit_dc(Dag& d, std::size_t depth, Work leaf_work) {
  if (depth == 0) {
    const NodeId leaf = d.add_node(leaf_work);
    return {leaf, leaf};
  }
  const NodeId fork = d.add_node(1);
  const NodeId join = d.add_node(1);
  for (int child = 0; child < 2; ++child) {
    const auto [entry, exit] = emit_dc(d, depth - 1, leaf_work);
    d.add_edge(fork, entry);
    d.add_edge(exit, join);
  }
  return {fork, join};
}
}  // namespace

Dag divide_and_conquer(std::size_t depth, Work leaf_work) {
  Dag d;
  emit_dc(d, depth, leaf_work);
  d.seal();
  return d;
}

Dag star(std::size_t children) {
  if (children == 0) throw std::invalid_argument("star: children == 0");
  Dag d;
  const NodeId root = d.add_node(1);
  for (std::size_t c = 0; c < children; ++c) {
    const NodeId leaf = d.add_node(1);
    d.add_edge(root, leaf);
  }
  d.seal();
  return d;
}

namespace {
// Emits a random series-parallel subprogram; returns {entry, exit}.
std::pair<NodeId, NodeId> emit_random_fj(Dag& d, sim::Rng& rng,
                                         const RandomForkJoinOptions& opt,
                                         std::size_t depth) {
  const Work w = static_cast<Work>(rng.uniform_range(
      static_cast<std::int64_t>(opt.min_work),
      static_cast<std::int64_t>(opt.max_work)));
  if (depth >= opt.max_depth || !rng.bernoulli(opt.fork_probability)) {
    const NodeId leaf = d.add_node(w);
    return {leaf, leaf};
  }
  const NodeId fork = d.add_node(1);
  const NodeId join = d.add_node(1);
  const auto fanout = static_cast<std::size_t>(rng.uniform_range(
      static_cast<std::int64_t>(opt.min_fanout),
      static_cast<std::int64_t>(opt.max_fanout)));
  for (std::size_t c = 0; c < fanout; ++c) {
    const auto [entry, exit] = emit_random_fj(d, rng, opt, depth + 1);
    d.add_edge(fork, entry);
    d.add_edge(exit, join);
  }
  return {fork, join};
}
}  // namespace

Dag random_fork_join(sim::Rng& rng, const RandomForkJoinOptions& opt) {
  if (opt.max_depth == 0)
    throw std::invalid_argument("random_fork_join: max_depth == 0");
  if (opt.min_fanout < 1 || opt.min_fanout > opt.max_fanout)
    throw std::invalid_argument("random_fork_join: bad fanout range");
  if (opt.min_work == 0 || opt.min_work > opt.max_work)
    throw std::invalid_argument("random_fork_join: bad work range");
  if (opt.fork_probability < 0.0 || opt.fork_probability > 1.0)
    throw std::invalid_argument("random_fork_join: bad fork probability");
  Dag d;
  emit_random_fj(d, rng, opt, 0);
  d.seal();
  return d;
}

Dag random_layered(sim::Rng& rng, const RandomLayeredOptions& opt) {
  if (opt.layers == 0) throw std::invalid_argument("random_layered: layers == 0");
  if (opt.min_width == 0 || opt.min_width > opt.max_width)
    throw std::invalid_argument("random_layered: bad width range");
  if (opt.min_work == 0 || opt.min_work > opt.max_work)
    throw std::invalid_argument("random_layered: bad work range");
  if (opt.edge_probability < 0.0 || opt.edge_probability > 1.0)
    throw std::invalid_argument("random_layered: bad edge probability");

  Dag d;
  std::vector<NodeId> prev_layer;
  for (std::size_t layer = 0; layer < opt.layers; ++layer) {
    const std::size_t width = static_cast<std::size_t>(rng.uniform_range(
        static_cast<std::int64_t>(opt.min_width),
        static_cast<std::int64_t>(opt.max_width)));
    std::vector<NodeId> cur_layer;
    cur_layer.reserve(width);
    for (std::size_t i = 0; i < width; ++i) {
      const Work w = static_cast<Work>(rng.uniform_range(
          static_cast<std::int64_t>(opt.min_work),
          static_cast<std::int64_t>(opt.max_work)));
      cur_layer.push_back(d.add_node(w));
    }
    if (!prev_layer.empty()) {
      for (NodeId v : cur_layer) {
        bool has_pred = false;
        for (NodeId u : prev_layer) {
          if (rng.bernoulli(opt.edge_probability)) {
            d.add_edge(u, v);
            has_pred = true;
          }
        }
        // Guarantee the DAG really is `layers` deep: each non-source node
        // gets at least one predecessor from the previous layer.
        if (!has_pred) {
          const NodeId u =
              prev_layer[rng.uniform_int(prev_layer.size())];
          d.add_edge(u, v);
        }
      }
    }
    prev_layer = std::move(cur_layer);
  }
  d.seal();
  return d;
}

}  // namespace pjsched::dag
