#include "src/cli/cli.h"

#include <fstream>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "src/core/bounds.h"
#include "src/core/multi_trial.h"
#include "src/core/run.h"
#include "src/metrics/gantt.h"
#include "src/metrics/table.h"
#include "src/workload/distributions.h"
#include "src/workload/generator.h"
#include "src/workload/instance_io.h"
#include "src/workload/streaming_source.h"

namespace pjsched::cli {

namespace {

struct Options {
  std::string command;
  std::string workload = "bing";
  std::string scheduler = "steal-16-first";
  std::size_t jobs = 2000;
  double qps = 1000.0;
  std::uint64_t seed = 42;
  std::size_t grains = 32;
  double units_per_ms = 100.0;
  unsigned m = 16;
  double speed = 1.0;
  std::string load_file;
  std::optional<std::size_t> gantt_width;
  std::string chrome_trace_file;
  std::optional<std::size_t> utilization_buckets;
  bool csv = false;
  std::vector<double> weight_classes = {1.0};
  std::size_t trials = 1;
  /// Memory-bounded run: stream the workload through the engine (O(live
  /// jobs) state) and report ratio vs the streamed lower bounds.
  bool streamed = false;
  /// Spill-mode trace file (sim::FileTraceSink); works at 10^6 jobs where
  /// an in-core trace would not.
  std::string trace_out_file;
  /// Machine-degradation events (--degrade).  Events whose speed was not
  /// given carry the sentinel speed < 0 and inherit --speed at use time.
  std::vector<core::MachineEvent> degradation;
};

/// Resolves the machine config for a run: base (m, speed) plus any
/// --degrade events, with unspecified event speeds inheriting --speed.
core::MachineConfig make_machine(const Options& opt) {
  core::MachineConfig machine{opt.m, opt.speed, opt.degradation};
  for (core::MachineEvent& e : machine.degradation)
    if (e.speed < 0.0) e.speed = opt.speed;
  return machine;
}

[[noreturn]] void usage_error(const std::string& message) {
  throw std::invalid_argument(message);
}

bool consume(const std::string& arg, const char* key, std::string* value) {
  const std::string prefix = std::string("--") + key + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

Options parse(const std::vector<std::string>& args) {
  if (args.empty()) usage_error("missing command (run | generate | bounds)");
  Options opt;
  opt.command = args[0];
  if (opt.command != "run" && opt.command != "generate" &&
      opt.command != "bounds")
    usage_error("unknown command '" + opt.command + "'");

  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    std::string v;
    try {
      if (consume(arg, "workload", &v)) {
        opt.workload = v;
      } else if (consume(arg, "scheduler", &v)) {
        opt.scheduler = v;
      } else if (consume(arg, "jobs", &v)) {
        opt.jobs = std::stoull(v);
      } else if (consume(arg, "qps", &v)) {
        opt.qps = std::stod(v);
      } else if (consume(arg, "seed", &v)) {
        opt.seed = std::stoull(v);
      } else if (consume(arg, "grains", &v)) {
        opt.grains = std::stoull(v);
      } else if (consume(arg, "units-per-ms", &v)) {
        opt.units_per_ms = std::stod(v);
      } else if (consume(arg, "m", &v)) {
        opt.m = static_cast<unsigned>(std::stoul(v));
      } else if (consume(arg, "speed", &v)) {
        opt.speed = std::stod(v);
      } else if (consume(arg, "load", &v)) {
        opt.load_file = v;
      } else if (arg == "--gantt") {
        opt.gantt_width = 100;
      } else if (consume(arg, "gantt", &v)) {
        opt.gantt_width = std::stoull(v);
      } else if (consume(arg, "chrome-trace", &v)) {
        opt.chrome_trace_file = v;
      } else if (consume(arg, "utilization", &v)) {
        opt.utilization_buckets = std::stoull(v);
      } else if (arg == "--csv") {
        opt.csv = true;
      } else if (arg == "--streamed") {
        opt.streamed = true;
      } else if (consume(arg, "trace-out", &v)) {
        opt.trace_out_file = v;
      } else if (consume(arg, "weights", &v)) {
        opt.weight_classes.clear();
        std::istringstream iss(v);
        std::string tok;
        while (std::getline(iss, tok, ','))
          opt.weight_classes.push_back(std::stod(tok));
        if (opt.weight_classes.empty())
          usage_error("--weights needs at least one value");
      } else if (consume(arg, "trials", &v)) {
        opt.trials = std::stoull(v);
        if (opt.trials == 0) usage_error("--trials must be >= 1");
      } else if (consume(arg, "degrade", &v)) {
        // Comma-separated machine events "t:m[:s]": at simulated time t the
        // machine drops (or recovers) to m processors, optionally changing
        // speed to s.  Work-stealing (step-engine) schedulers reject speed
        // changes — their step length is fixed at 1/s.
        std::istringstream events(v);
        std::string tok;
        while (std::getline(events, tok, ',')) {
          std::istringstream fields(tok);
          std::string t_str, m_str, s_str;
          if (!std::getline(fields, t_str, ':') ||
              !std::getline(fields, m_str, ':'))
            usage_error("--degrade events are t:m[:s], got '" + tok + "'");
          core::MachineEvent e;
          e.time = std::stod(t_str);
          e.processors = static_cast<unsigned>(std::stoul(m_str));
          e.speed = std::getline(fields, s_str, ':') ? std::stod(s_str)
                                                     : -1.0;  // inherit
          opt.degradation.push_back(e);
        }
        if (opt.degradation.empty())
          usage_error("--degrade needs at least one t:m[:s] event");
      } else {
        usage_error("unknown flag '" + arg + "'");
      }
    } catch (const std::invalid_argument&) {
      throw;
    } catch (const std::exception&) {
      usage_error("bad value in '" + arg + "'");
    }
  }
  return opt;
}

std::unique_ptr<workload::WorkDistribution> make_distribution(
    const std::string& name) {
  if (name == "bing")
    return std::make_unique<workload::DiscreteWorkDistribution>(
        workload::bing_distribution());
  if (name == "finance")
    return std::make_unique<workload::DiscreteWorkDistribution>(
        workload::finance_distribution());
  if (name == "lognormal")
    return std::make_unique<workload::LognormalWorkDistribution>(
        workload::default_lognormal_distribution());
  usage_error("unknown workload '" + name + "'");
}

core::Instance obtain_instance(const Options& opt) {
  if (!opt.load_file.empty()) {
    std::ifstream in(opt.load_file);
    if (!in) usage_error("cannot open instance file '" + opt.load_file + "'");
    return workload::read_instance(in);
  }
  const auto dist = make_distribution(opt.workload);
  workload::GeneratorConfig gen;
  gen.num_jobs = opt.jobs;
  gen.qps = opt.qps;
  gen.seed = opt.seed;
  gen.grains = opt.grains;
  gen.units_per_ms = opt.units_per_ms;
  gen.weight_classes = opt.weight_classes;
  return workload::generate_instance(*dist, gen);
}

// Multi-trial run: aggregate statistics across seeds (no trace options).
int cmd_run_trials(const Options& opt, std::ostream& out) {
  if (!opt.load_file.empty())
    usage_error("--trials cannot be combined with --load (trials resample "
                "the workload)");
  const auto dist = make_distribution(opt.workload);
  core::TrialConfig cfg;
  cfg.trials = opt.trials;
  cfg.generator.num_jobs = opt.jobs;
  cfg.generator.qps = opt.qps;
  cfg.generator.seed = opt.seed;
  cfg.generator.grains = opt.grains;
  cfg.generator.units_per_ms = opt.units_per_ms;
  cfg.generator.weight_classes = opt.weight_classes;
  cfg.machine = make_machine(opt);
  cfg.scheduler = core::parse_scheduler(opt.scheduler);
  cfg.scheduler.seed = opt.seed;
  const auto res = core::run_trials(*dist, cfg);

  metrics::Table table({"metric", "mean", "stddev", "min", "max"});
  const auto add = [&](const char* name, const metrics::Summary& s,
                       double scale) {
    table.add_row({name, metrics::Table::cell(s.mean / scale),
                   metrics::Table::cell(s.stddev / scale),
                   metrics::Table::cell(s.min / scale),
                   metrics::Table::cell(s.max / scale)});
  };
  out << "scheduler " << opt.scheduler << ", " << opt.trials
      << " trials, jobs " << opt.jobs << ", m=" << opt.m << ", speed "
      << opt.speed << " (flow rows in ms)\n";
  add("max_flow_ms", res.max_flow, opt.units_per_ms);
  add("mean_flow_ms", res.mean_flow, opt.units_per_ms);
  add("max_weighted_flow_ms", res.max_weighted_flow, opt.units_per_ms);
  add("ratio_to_opt", res.ratio_to_opt, 1.0);
  table.print(out);
  return 0;
}

int cmd_generate(const Options& opt, std::ostream& out) {
  const core::Instance inst = obtain_instance(opt);
  workload::write_instance(out, inst);
  return 0;
}

/// Builds the generator config the run/bounds commands share.
workload::GeneratorConfig make_generator(const Options& opt) {
  workload::GeneratorConfig gen;
  gen.num_jobs = opt.jobs;
  gen.qps = opt.qps;
  gen.seed = opt.seed;
  gen.grains = opt.grains;
  gen.units_per_ms = opt.units_per_ms;
  gen.weight_classes = opt.weight_classes;
  return gen;
}

void print_bounds_table(const core::LowerBoundSet& b, double units_per_ms,
                        std::ostream& out) {
  metrics::Table table({"bound", "value_units", "value_ms"});
  const auto add = [&](const char* name, double v) {
    table.add_row({name, metrics::Table::cell(v),
                   metrics::Table::cell(v / units_per_ms)});
  };
  add("span (max P_i)", b.span);
  add("work (max W_i/m)", b.work);
  add("opt-sim (Sec 6)", b.opt_sim);
  add("combined", b.combined);
  add("weighted span", b.weighted_span);
  add("weighted combined", b.weighted_combined);
  table.print(out);
}

int cmd_bounds(const Options& opt, std::ostream& out) {
  if (opt.streamed && opt.load_file.empty()) {
    // One O(1)-state pass over the generated stream — no instance in
    // memory, so --jobs can be 10^6+.  Bitwise-equal to the materialized
    // path below on the same config.
    const auto dist = make_distribution(opt.workload);
    workload::GeneratedJobSource source(*dist, make_generator(opt));
    print_bounds_table(core::stream_lower_bounds(source, opt.m),
                       opt.units_per_ms, out);
    return 0;
  }
  const core::Instance inst = obtain_instance(opt);
  core::InstanceSource source(inst);
  print_bounds_table(core::stream_lower_bounds(source, opt.m),
                     opt.units_per_ms, out);
  return 0;
}

// Memory-bounded run: streams the workload twice — one O(1)-state pass for
// the lower bounds, one O(live jobs) pass for the scheduler — and reports
// the competitive ratio without ever materializing the instance.
int cmd_run_streamed(const Options& opt, std::ostream& out) {
  if (opt.trials > 1)
    usage_error("--streamed cannot be combined with --trials");
  if (opt.gantt_width.has_value() || !opt.chrome_trace_file.empty() ||
      opt.utilization_buckets.has_value())
    usage_error(
        "--streamed records traces via --trace-out=FILE; in-core trace views "
        "(--gantt/--chrome-trace/--utilization) need a materialized run");
  auto spec = core::parse_scheduler(opt.scheduler);
  spec.seed = opt.seed;
  const core::MachineConfig machine = make_machine(opt);

  std::unique_ptr<sim::FileTraceSink> sink;
  std::unique_ptr<sim::Trace> trace;
  if (!opt.trace_out_file.empty()) {
    sink = std::make_unique<sim::FileTraceSink>(opt.trace_out_file);
    trace = std::make_unique<sim::Trace>(sink.get());
  }

  core::StreamRatioResult res;
  if (!opt.load_file.empty()) {
    const core::Instance inst = obtain_instance(opt);
    core::InstanceSource bound_source(inst);
    core::InstanceSource run_source(inst);
    res = core::run_scheduler_streamed_with_bounds(
        run_source, bound_source, spec, machine, nullptr, trace.get());
  } else {
    const auto dist = make_distribution(opt.workload);
    const workload::GeneratorConfig gen = make_generator(opt);
    workload::GeneratedJobSource bound_source(*dist, gen);
    workload::GeneratedJobSource run_source(*dist, gen);
    res = core::run_scheduler_streamed_with_bounds(
        run_source, bound_source, spec, machine, nullptr, trace.get());
  }
  const double u = opt.units_per_ms;

  if (opt.csv) {
    metrics::Table table({"scheduler", "jobs", "m", "speed", "max_flow_ms",
                          "mean_flow_ms", "max_weighted_flow_ms",
                          "makespan_ms", "combined_bound_ms", "ratio"});
    table.add_row(
        {res.run.scheduler_name, metrics::Table::cell(std::uint64_t{
                                     res.run.jobs}),
         metrics::Table::cell(std::uint64_t{opt.m}),
         metrics::Table::cell(opt.speed),
         metrics::Table::cell(res.run.max_flow / u),
         metrics::Table::cell(res.run.mean_flow / u),
         metrics::Table::cell(res.run.max_weighted_flow / u),
         metrics::Table::cell(res.run.makespan / u),
         metrics::Table::cell(res.bounds.combined / u),
         metrics::Table::cell(res.ratio)});
    table.print_csv(out);
  } else {
    out << "scheduler:        " << res.run.scheduler_name << " (streamed)\n"
        << "jobs:             " << res.run.jobs << "\n"
        << "machine:          m=" << opt.m << ", speed " << opt.speed << "\n"
        << "max flow:         " << res.run.max_flow / u << " ms (job "
        << res.run.argmax_flow << ")\n"
        << "mean flow:        " << res.run.mean_flow / u << " ms\n"
        << "p99 flow:         " << res.run.flow.p99 / u << " ms ("
        << (res.run.flow_quantiles_exact ? "exact" : "reservoir estimate")
        << ")\n"
        << "max weighted:     " << res.run.max_weighted_flow / u
        << " weighted-ms\n"
        << "makespan:         " << res.run.makespan / u << " ms\n"
        << "combined bound:   " << res.bounds.combined / u << " ms\n"
        << "opt-sim bound:    " << res.bounds.opt_sim / u << " ms\n"
        << "ratio to bound:   " << res.ratio << "\n";
    if (res.weighted_ratio > 0.0 && res.weighted_ratio != res.ratio)
      out << "weighted ratio:   " << res.weighted_ratio << "\n";
    if (res.run.stats.steal_attempts > 0 || res.run.stats.admissions > 0)
      out << "steals:           " << res.run.stats.successful_steals << "/"
          << res.run.stats.steal_attempts << " successful, "
          << res.run.stats.admissions << " admissions\n";
  }
  if (sink != nullptr)
    out << "trace written to " << opt.trace_out_file << " ("
        << sink->intervals_written() << " intervals, "
        << sink->steals_written() << " steals, "
        << sink->admissions_written() << " admissions)\n";
  return 0;
}

int cmd_run(const Options& opt, std::ostream& out) {
  if (opt.streamed) return cmd_run_streamed(opt, out);
  if (opt.trials > 1) return cmd_run_trials(opt, out);
  const core::Instance inst = obtain_instance(opt);
  auto spec = core::parse_scheduler(opt.scheduler);
  spec.seed = opt.seed;

  const bool want_trace = opt.gantt_width.has_value() ||
                          !opt.chrome_trace_file.empty() ||
                          opt.utilization_buckets.has_value();
  std::unique_ptr<sim::FileTraceSink> sink;
  std::unique_ptr<sim::Trace> spill;
  if (!opt.trace_out_file.empty()) {
    if (want_trace)
      usage_error(
          "--trace-out spills the trace to disk and cannot feed the in-core "
          "views (--gantt/--chrome-trace/--utilization)");
    sink = std::make_unique<sim::FileTraceSink>(opt.trace_out_file);
    spill = std::make_unique<sim::Trace>(sink.get());
  }
  sim::Trace trace;
  const core::MachineConfig machine = make_machine(opt);
  sim::Trace* trace_ptr =
      spill != nullptr ? spill.get() : (want_trace ? &trace : nullptr);
  const auto res = core::run_scheduler(inst, spec, machine, trace_ptr);

  if (opt.csv) {
    metrics::Table table({"scheduler", "jobs", "m", "speed", "max_flow_ms",
                          "mean_flow_ms", "max_weighted_flow_ms",
                          "makespan_ms", "steals", "admissions"});
    table.add_row({res.scheduler_name, metrics::Table::cell(std::uint64_t{
                                           inst.size()}),
                   metrics::Table::cell(std::uint64_t{opt.m}),
                   metrics::Table::cell(opt.speed),
                   metrics::Table::cell(res.max_flow / opt.units_per_ms),
                   metrics::Table::cell(res.mean_flow / opt.units_per_ms),
                   metrics::Table::cell(res.max_weighted_flow / opt.units_per_ms),
                   metrics::Table::cell(res.makespan / opt.units_per_ms),
                   metrics::Table::cell(res.stats.steal_attempts),
                   metrics::Table::cell(res.stats.admissions)});
    table.print_csv(out);
  } else {
    out << "scheduler:        " << res.scheduler_name << "\n"
        << "jobs:             " << inst.size() << "\n"
        << "machine:          m=" << opt.m << ", speed " << opt.speed;
    for (const core::MachineEvent& e : machine.degradation)
      out << ", @" << e.time << "->m=" << e.processors << "/s=" << e.speed;
    out << "\n"
        << "max flow:         " << res.max_flow / opt.units_per_ms
        << " ms (job " << res.argmax_flow << ")\n"
        << "mean flow:        " << res.mean_flow / opt.units_per_ms << " ms\n"
        << "max weighted:     " << res.max_weighted_flow / opt.units_per_ms
        << " weighted-ms\n"
        << "makespan:         " << res.makespan / opt.units_per_ms << " ms\n"
        << "opt lower bound:  "
        << core::opt_sim_lower_bound(inst, opt.m) / opt.units_per_ms
        << " ms\n";
    if (res.stats.steal_attempts > 0 || res.stats.admissions > 0)
      out << "steals:           " << res.stats.successful_steals << "/"
          << res.stats.steal_attempts << " successful, "
          << res.stats.admissions << " admissions\n";
  }

  if (opt.gantt_width.has_value()) {
    metrics::GanttOptions gopt;
    gopt.width = *opt.gantt_width;
    out << "\n" << metrics::ascii_gantt(trace, opt.m, gopt);
  }
  if (opt.utilization_buckets.has_value()) {
    const auto busy =
        metrics::utilization_timeline(trace, *opt.utilization_buckets);
    out << "\nutilization profile (busy processors per bucket):\n";
    for (std::size_t b = 0; b < busy.size(); ++b) {
      out << "  [" << b << "] " << busy[b] << " ";
      out << std::string(static_cast<std::size_t>(busy[b] * 2.0), '#') << "\n";
    }
  }
  if (!opt.chrome_trace_file.empty()) {
    std::ofstream f(opt.chrome_trace_file);
    if (!f)
      usage_error("cannot write chrome trace '" + opt.chrome_trace_file + "'");
    metrics::write_chrome_trace(f, trace);
    out << "\nchrome trace written to " << opt.chrome_trace_file
        << " (open in chrome://tracing)\n";
  }
  if (sink != nullptr)
    out << "trace written to " << opt.trace_out_file << " ("
        << sink->intervals_written() << " intervals, "
        << sink->steals_written() << " steals, "
        << sink->admissions_written() << " admissions)\n";
  return 0;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  try {
    const Options opt = parse(args);
    if (opt.command == "generate") return cmd_generate(opt, out);
    if (opt.command == "bounds") return cmd_bounds(opt, out);
    return cmd_run(opt, out);
  } catch (const std::invalid_argument& e) {
    err << "pjsched_cli: " << e.what() << "\n"
        << "usage: pjsched_cli <run|generate|bounds> [--workload=bing|"
           "finance|lognormal] [--scheduler=NAME] [--jobs=N] [--qps=Q]\n"
           "       [--m=M] [--speed=S] [--seed=S] [--grains=G]\n"
           "       [--units-per-ms=U] [--load=FILE] [--gantt[=W]]\n"
           "       [--chrome-trace=FILE] [--utilization=B] [--csv]\n"
           "       [--weights=w1,w2,...] [--trials=R]\n"
           "       [--streamed]  (memory-bounded run/bounds: O(live jobs) "
           "state,\n"
           "        reports ratio vs the streamed lower bounds)\n"
           "       [--trace-out=FILE]  (bounded-memory spill trace; works "
           "at 10^6 jobs)\n"
           "       [--degrade=t:m[:s],...]  (machine loses/recovers "
           "processors at time t;\n"
           "        work-stealing schedulers reject speed changes)\n";
    return 2;
  }
}

}  // namespace pjsched::cli
