// Command-line front end for the library, factored as a testable function.
// The `pjsched_cli` binary (tools/pjsched_cli.cc) forwards argv here.
//
// Commands:
//   run       simulate a scheduler on a generated or loaded instance and
//             print a result summary (optionally a Gantt chart, a Chrome
//             trace file, CSV, a utilization profile)
//   generate  write a generated instance to stdout in instance_io format
//   bounds    print every lower bound for an instance
//
// Common flags:
//   --workload=bing|finance|lognormal   (default bing)
//   --jobs=N --qps=Q --seed=S --grains=G --units-per-ms=U
//   --load=FILE                         read instance instead of generating
// run flags:
//   --scheduler=NAME   (fifo, bwf, admit-first, steal-<k>-first, opt,
//                       lifo, sjf, round-robin; default steal-16-first)
//   --m=M --speed=S
//   --gantt[=WIDTH]    print an ASCII Gantt chart (records a trace)
//   --chrome-trace=F   write Chrome trace JSON to file F
//   --utilization=B    print the B-bucket busy-processor profile
//   --csv              machine-readable summary line
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pjsched::cli {

/// Returns a process exit code (0 success, 2 usage error).
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace pjsched::cli
