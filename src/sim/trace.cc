#include "src/sim/trace.h"

#include <algorithm>

namespace pjsched::sim {

void Trace::coalesce() {
  if (intervals_.empty()) return;
  std::stable_sort(intervals_.begin(), intervals_.end(),
                   [](const WorkInterval& a, const WorkInterval& b) {
                     if (a.proc != b.proc) return a.proc < b.proc;
                     return a.start < b.start;
                   });
  std::vector<WorkInterval> merged;
  merged.reserve(intervals_.size());
  for (const WorkInterval& iv : intervals_) {
    if (!merged.empty()) {
      WorkInterval& last = merged.back();
      if (last.proc == iv.proc && last.job == iv.job && last.node == iv.node &&
          last.end == iv.start) {
        last.end = iv.end;
        continue;
      }
    }
    merged.push_back(iv);
  }
  intervals_ = std::move(merged);
}

void SpanRecorder::reconcile(unsigned proc, core::JobId job, dag::NodeId node,
                             core::Time t) {
  if (trace_ == nullptr) return;
  if (proc >= spans_.size()) spans_.resize(proc + 1);
  OpenSpan& span = spans_[proc];
  if (span.open) {
    if (span.job == job && span.node == node) return;  // occupant unchanged
    if (t > span.start)
      trace_->add_interval({span.job, span.node, proc, span.start, t});
  }
  span = OpenSpan{job, node, t, true};
}

void SpanRecorder::close(unsigned proc, core::Time t) {
  if (trace_ == nullptr || proc >= spans_.size()) return;
  OpenSpan& span = spans_[proc];
  if (!span.open) return;
  if (t > span.start)
    trace_->add_interval({span.job, span.node, proc, span.start, t});
  span.open = false;
}

}  // namespace pjsched::sim
