#include "src/sim/trace.h"

#include <algorithm>

namespace pjsched::sim {

void Trace::coalesce() {
  if (intervals_.empty()) return;
  std::stable_sort(intervals_.begin(), intervals_.end(),
                   [](const WorkInterval& a, const WorkInterval& b) {
                     if (a.proc != b.proc) return a.proc < b.proc;
                     return a.start < b.start;
                   });
  std::vector<WorkInterval> merged;
  merged.reserve(intervals_.size());
  for (const WorkInterval& iv : intervals_) {
    if (!merged.empty()) {
      WorkInterval& last = merged.back();
      if (last.proc == iv.proc && last.job == iv.job && last.node == iv.node &&
          last.end == iv.start) {
        last.end = iv.end;
        continue;
      }
    }
    merged.push_back(iv);
  }
  intervals_ = std::move(merged);
}

}  // namespace pjsched::sim
