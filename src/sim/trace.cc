#include "src/sim/trace.h"

#include <algorithm>
#include <stdexcept>

namespace pjsched::sim {

void Trace::coalesce() {
  if (sink_ != nullptr) {
    // Spill mode: the merge already happened incrementally; drain whatever
    // windows are still open, in processor order, then let the sink flush.
    for (std::size_t proc = 0; proc < pending_.size(); ++proc) {
      PendingSpan& p = pending_[proc];
      if (p.open) {
        sink_->on_interval(p.iv);
        p.open = false;
      }
    }
    sink_->flush();
    return;
  }
  if (intervals_.empty()) return;
  std::stable_sort(intervals_.begin(), intervals_.end(),
                   [](const WorkInterval& a, const WorkInterval& b) {
                     if (a.proc != b.proc) return a.proc < b.proc;
                     return a.start < b.start;
                   });
  std::vector<WorkInterval> merged;
  merged.reserve(intervals_.size());
  for (const WorkInterval& iv : intervals_) {
    if (!merged.empty()) {
      WorkInterval& last = merged.back();
      if (last.proc == iv.proc && last.job == iv.job && last.node == iv.node &&
          last.end == iv.start) {
        last.end = iv.end;
        continue;
      }
    }
    merged.push_back(iv);
  }
  intervals_ = std::move(merged);
}

void Trace::spill_interval(const WorkInterval& iv) {
  if (iv.proc >= pending_.size()) pending_.resize(iv.proc + 1);
  PendingSpan& p = pending_[iv.proc];
  if (p.open) {
    // Engines emit each processor's intervals in nondecreasing start order,
    // so extending the single open window reproduces exactly the merge
    // coalesce() performs after its (proc, start) sort.
    if (p.iv.job == iv.job && p.iv.node == iv.node && p.iv.end == iv.start) {
      p.iv.end = iv.end;
      return;
    }
    sink_->on_interval(p.iv);
  }
  p.iv = iv;
  p.open = true;
}

void SpanRecorder::reconcile(unsigned proc, core::JobId job, dag::NodeId node,
                             core::Time t) {
  if (trace_ == nullptr) return;
  if (proc >= spans_.size()) spans_.resize(proc + 1);
  OpenSpan& span = spans_[proc];
  if (span.open) {
    if (span.job == job && span.node == node) return;  // occupant unchanged
    if (t > span.start)
      trace_->add_interval({span.job, span.node, proc, span.start, t});
  }
  span = OpenSpan{job, node, t, true};
}

void SpanRecorder::close(unsigned proc, core::Time t) {
  if (trace_ == nullptr || proc >= spans_.size()) return;
  OpenSpan& span = spans_[proc];
  if (!span.open) return;
  if (t > span.start)
    trace_->add_interval({span.job, span.node, proc, span.start, t});
  span.open = false;
}

FileTraceSink::FileTraceSink(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr)
    throw std::runtime_error("FileTraceSink: cannot open '" + path + "'");
}

FileTraceSink::~FileTraceSink() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

void FileTraceSink::on_interval(const WorkInterval& iv) {
  std::fprintf(file_, "i %llu %u %u %.17g %.17g\n",
               static_cast<unsigned long long>(iv.job), iv.node, iv.proc,
               iv.start, iv.end);
  ++intervals_written_;
}

void FileTraceSink::on_steal(const StealEvent& ev) {
  std::fprintf(file_, "s %u %u %d %llu\n", ev.thief, ev.victim,
               ev.success ? 1 : 0, static_cast<unsigned long long>(ev.step));
  ++steals_written_;
}

void FileTraceSink::on_admission(const AdmissionEvent& ev) {
  std::fprintf(file_, "a %u %llu %llu\n", ev.worker,
               static_cast<unsigned long long>(ev.job),
               static_cast<unsigned long long>(ev.step));
  ++admissions_written_;
}

void FileTraceSink::flush() { std::fflush(file_); }

}  // namespace pjsched::sim
