// Deterministic random-number generation for the simulators.
//
// Every source of randomness in pjsched (victim selection in work stealing,
// workload sampling, random DAG construction) flows from a single user seed
// through xoshiro256** streams, so any experiment is reproducible
// bit-for-bit from (seed, parameters) alone.  Independent streams are forked
// with fork(), which derives a child seed through SplitMix64 — the
// recommended seeding procedure for the xoshiro family.
#pragma once

#include <cstdint>

namespace pjsched::sim {

/// SplitMix64 step: used for seeding and for cheap stateless hashing of
/// (seed, stream-id) pairs into independent stream seeds.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** 1.0 (Blackman & Vigna, public domain reference algorithm):
/// fast, 256-bit state, passes BigCrush.  Not cryptographic.
class Rng {
 public:
  /// Seeds the four state words from SplitMix64(seed); a zero seed is valid.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next 64 uniformly random bits.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound), bound >= 1.  Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::uint64_t uniform_int(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 random mantissa bits.
  double uniform_double();

  /// Standard normal deviate (Box–Muller; consumes two uniforms per pair,
  /// caches the second).
  double normal();

  /// Exponential deviate with the given rate (mean 1/rate); rate > 0.
  double exponential(double rate);

  /// Log-normal deviate: exp(mu + sigma * N(0,1)).
  double lognormal(double mu, double sigma);

  /// Derives an independent child generator.  Children with distinct
  /// `stream` values (under the same parent) have uncorrelated sequences;
  /// forking does not perturb the parent's own sequence.
  Rng fork(std::uint64_t stream) const;

  /// `true` with the given probability p in [0, 1].
  bool bernoulli(double p) { return uniform_double() < p; }

 private:
  std::uint64_t s_[4];
  std::uint64_t base_seed_;  // for fork()
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace pjsched::sim
