// Synchronous step-level simulation of the paper's multiprogrammed
// work-stealing machine (Section 4).
//
// The machine has m workers of speed s.  Time advances in *steps* of length
// 1/s (one step = the time an s-speed processor needs for one unit of work).
// In each step every worker either
//   (a) executes one unit of work of its current node,
//   (b) pops a node from the bottom of its own deque (a free local
//       operation) and executes one unit of it,
//   (c) admits the job at the head of the global FIFO queue (free, modelling
//       the paper's accounting where only steals cost steps) and executes
//       one unit of its first ready node, or
//   (d) spends the whole step on one steal attempt at a uniformly random
//       other worker, taking the *top* node of the victim's deque on
//       success.
// The steal-k-first policy gates (c): a worker may admit only after k
// consecutive failed steal attempts (k = 0 — "admit-first" — admits whenever
// the global queue is non-empty).  When a node completes and enables
// successors, the worker continues with one of them and pushes the rest on
// the *bottom* of its deque; an admitted job's ready sources are treated the
// same way.  Jobs enter the global FIFO queue at (the first step boundary
// at or after) their arrival time.
//
// Within one step, workers act in a uniformly random permutation; a steal
// succeeds if the victim's deque is non-empty at the moment the thief acts.
// All randomness comes from the seed in StepEngineOptions.
//
// The permutation is only *drawn* on steps where it is observable: some
// live worker is idle (it will pop/admit/steal, racing the others for
// shared state) or some live worker finishes its node this step (enabled
// successors are claimed in permutation order).  On an all-busy step with
// every remaining counter >= 2, each worker just decrements its own
// counter, so the shuffle is skipped — and, by default, whole runs of such
// steps are advanced in one macro-step (the work-quantum fast path, see
// docs/simulation-model.md "Performance model").  Setting `exact_steps`
// keeps the per-step loop for every step; both modes draw the same RNG
// stream and produce bit-identical results.
// Memory model: the engine pulls jobs from a core::JobSource and keeps
// per-job state (tracker, DAG) in a recycling slot arena (sim::JobArena);
// deque and queue entries reference slots, and a job's slot — including its
// DAG storage — is freed when its last node completes.  Resident state is
// O(live jobs), independent of the instance length.  run_step_engine is the
// materialized wrapper over the same loop; run_step_engine_streamed is the
// memory-bounded entry point (see docs/simulation-model.md, "Scaling to
// 10^6+ jobs").  The two draw the same RNG stream, so they are
// bit-identical on equivalent inputs.
#pragma once

#include <cstdint>

#include "src/core/job_source.h"
#include "src/core/types.h"
#include "src/sim/rng.h"
#include "src/sim/trace.h"

namespace pjsched::metrics {
class StreamingFlowStats;
}  // namespace pjsched::metrics

namespace pjsched::sim {

struct StepEngineOptions {
  /// Machine to simulate.  `machine.degradation` events model fail-stop
  /// worker failure and recovery: at each event the live worker set becomes
  /// workers [0, processors) (lowest indices survive — deterministic).  A
  /// failing worker loses the progress on its in-flight node, which is
  /// returned to the front of its deque and restarts from scratch when a
  /// live worker steals it; its deque stays stealable (fail-stop with work
  /// recovery through stealing).  Speed changes are not supported — the
  /// step length is 1/s for the configured speed — and throw
  /// std::invalid_argument.
  core::MachineConfig machine;
  /// Number of consecutive failed steal attempts a worker needs before it
  /// may admit from the global queue.  0 = admit-first.
  unsigned steal_k = 0;
  /// Extension (not in the paper): admit the *heaviest* queued job instead
  /// of the oldest — a BWF-flavoured admission order for the weighted
  /// objective.  FIFO admission when false (the paper's scheduler).
  bool admit_by_weight = false;
  /// Extension: on a successful steal, take *half* of the victim's deque
  /// (rounded up, oldest half) instead of one node — the steal-half
  /// variant common in runtime systems.  The stolen batch's first node
  /// becomes the thief's current node; the rest land in its own deque.
  bool steal_half = false;
  std::uint64_t seed = 1;
  Trace* trace = nullptr;
  /// Reference mode: simulate every step individually instead of batching
  /// runs of all-busy steps into macro-steps.  Results are bit-identical
  /// either way (the cross-check tests rely on this); exact mode exists for
  /// that cross-check and for step-level debugging.
  bool exact_steps = false;
  /// Defensive cap on simulated steps (0 = automatic: generous bound from
  /// total work, arrival span, and job count).
  std::uint64_t max_steps = 0;
};

/// Runs the instance to completion under steal-k-first work stealing and
/// returns per-job completion times plus steal/admission counters.
core::ScheduleResult run_step_engine(const core::Instance& instance,
                                     const StepEngineOptions& options);

/// Memory-bounded entry point: runs `source` to exhaustion, recording each
/// completion into `stats` (an internal default StreamingFlowStats when
/// null) instead of a per-job completion vector.  Draws the same RNG stream
/// as run_step_engine, so the returned extremes (max flow, max weighted
/// flow, argmax, makespan) and EngineStats counters are bit-identical to a
/// materialized run of the equivalent instance; see StreamRunResult for the
/// exactness contract of the remaining fields.  Note the automatic step
/// budget (max_steps == 0) grows incrementally with the jobs acquired so
/// far — the final budget matches the materialized formula.
core::StreamRunResult run_step_engine_streamed(
    core::JobSource& source, const StepEngineOptions& options,
    metrics::StreamingFlowStats* stats = nullptr);

}  // namespace pjsched::sim
