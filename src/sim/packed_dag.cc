#include "src/sim/packed_dag.h"

#include <algorithm>
#include <stdexcept>

namespace pjsched::sim {

void PackedDag::assign(const dag::Dag& dag) {
  if (!dag.sealed())
    throw std::invalid_argument("PackedDag::assign: DAG must be sealed");
  nodes_ = dag.node_count();
  total_work_ = dag.total_work_;
  critical_path_ = dag.critical_path_;
  work_.assign(dag.work_.begin(), dag.work_.end());
  succ_off_.assign(dag.succ_off_.begin(), dag.succ_off_.end());
  succ_.assign(dag.succ_flat_.begin(), dag.succ_flat_.end());
  pending_preds_.resize(nodes_);
  for (std::size_t v = 0; v < nodes_; ++v)
    pending_preds_[v] = dag.pred_off_[v + 1] - dag.pred_off_[v];
  state_.assign(nodes_, 0);
  ready_.assign(dag.sources_.begin(), dag.sources_.end());
  for (const dag::NodeId s : dag.sources_) state_[s] = 1;
  ready_head_ = 0;
  completed_ = 0;
  bound_ = true;
}

void PackedDag::claim(dag::NodeId v) {
  if (v >= nodes_ || state_[v] != 1)
    throw std::logic_error("PackedDag::claim: node is not ready");
  if (ready_[ready_head_] == v) {
    // The engines always claim the frontier head; consuming it by index
    // leaves the remaining sequence identical to ReadyTracker's
    // erase-from-front, without the O(frontier) shift.
    ++ready_head_;
    if (ready_head_ == ready_.size()) {
      ready_.clear();
      ready_head_ = 0;
    }
  } else {
    const auto it =
        std::find(ready_.begin() + static_cast<std::ptrdiff_t>(ready_head_),
                  ready_.end(), v);
    ready_.erase(it);
  }
  state_[v] = 2;
}

std::size_t PackedDag::complete(dag::NodeId v,
                                std::vector<dag::NodeId>* out_enabled) {
  if (v >= nodes_ || state_[v] != 2)
    throw std::logic_error("PackedDag::complete: node was not claimed");
  state_[v] = 3;
  ++completed_;
  std::size_t enabled = 0;
  const std::uint32_t end = succ_off_[v + 1];
  for (std::uint32_t e = succ_off_[v]; e < end; ++e) {
    const dag::NodeId w = succ_[e];
    if (--pending_preds_[w] == 0) {
      state_[w] = 1;
      ready_.push_back(w);
      if (out_enabled != nullptr) out_enabled->push_back(w);
      ++enabled;
    }
  }
  return enabled;
}

}  // namespace pjsched::sim
