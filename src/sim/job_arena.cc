#include "src/sim/job_arena.h"

#include <stdexcept>
#include <utility>

namespace pjsched::sim {

std::uint32_t JobArena::acquire(core::StreamedJob&& job) {
  const dag::Dag& g = job.dag();
  if (!g.sealed())
    throw std::invalid_argument("JobArena: job DAG must be sealed");
  if (g.node_count() == 0)
    throw std::invalid_argument("JobArena: job DAG is empty");
  if (job.arrival < 0.0)
    throw std::invalid_argument("JobArena: negative arrival time");
  if (!(job.weight > 0.0))
    throw std::invalid_argument("JobArena: weight must be > 0");
  if (any_acquired_ && job.arrival < last_arrival_)
    throw std::invalid_argument(
        "JobArena: jobs must be acquired in non-decreasing arrival order");
  last_arrival_ = job.arrival;
  any_acquired_ = true;

  std::uint32_t s;
  if (!free_.empty()) {
    s = free_.back();
    free_.pop_back();
  } else {
    s = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[s];
  slot.id = job.id;
  slot.arrival = job.arrival;
  slot.weight = job.weight;
  // Pack the DAG into the slot's grow-only arrays; the source Dag (owned or
  // borrowed) is not referenced afterwards, so a streamed job's heap-backed
  // graph is freed as soon as `job` leaves scope.
  slot.graph.assign(g);

  if (!slot_of_.emplace(slot.id, s).second) {
    slot.graph.release();
    free_.push_back(s);
    throw std::invalid_argument("JobArena: duplicate live job id");
  }
  ++live_;
  if (live_ > peak_live_) peak_live_ = live_;
  return s;
}

void JobArena::retire(std::uint32_t slot) {
  Slot& s = slots_[slot];
  if (!s.graph.bound())
    throw std::logic_error("JobArena::retire: slot is not live");
  slot_of_.erase(s.id);
  // The packed arrays deliberately keep their capacity for the slot's next
  // occupant; resident state stays O(peak live jobs x largest hosted DAG).
  s.graph.release();
  free_.push_back(slot);
  --live_;
}

std::uint32_t JobArena::slot_of(core::JobId id) const {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end())
    throw std::logic_error("JobArena::slot_of: job is not live");
  return it->second;
}

}  // namespace pjsched::sim
