// The simulation engines' shared floating-point formulas, each at exactly
// one program point.
//
// Both engines promise bit-identical results against their reference paths
// (fast vs exact, streamed vs materialized — pinned by the cross-check
// tests), and those equivalences only hold while every flow/clock formula
// is evaluated by ONE expression.  A second inlined copy of a formula in an
// engine is a drift risk the moment either site is edited — two
// syntactically equal expressions can diverge by a single reassociation or
// a fused multiply-add.  The determinism audit
// (tools/analysis/determinism_audit.py, rule dup-fp-formula) enforces that
// the expressions below appear only in this header; -ffp-contract=off on
// the sim library (src/CMakeLists.txt) keeps the compiler from contracting
// them into FMA forms that round differently across targets.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace pjsched::sim {

/// Absolute tolerance for completion-coordinate and event-due comparisons.
/// One value for both engines: the step engine's boundary rounding and the
/// event engine's work-clock tolerance must agree for the cross-checks to
/// see the same completion sets.
inline constexpr double kSimEps = 1e-9;

/// Real time until the node with completion coordinate `coord` finishes,
/// given the virtual work clock at `W` advancing at speed `s` (event
/// engine; C = W + r keying is described at the top of event_engine.cc).
inline double completion_dt(double coord, double W, double s) {
  return (coord - W) / s;
}

/// True once completion coordinate `coord` is within tolerance of the work
/// clock `W` — the node is done.
inline bool coord_due(double coord, double W) {
  return coord - W <= kSimEps;
}

/// True once an event scheduled at real time `when` is due at sim clock
/// `t` (arrival admission, machine events).
inline bool event_due(double when, double t) { return when <= t + kSimEps; }

/// First step boundary at or after real time `t` with step length 1/s:
/// step T spans [T/s, (T+1)/s).  The epsilon forgives times that sit
/// exactly on a boundary but arrived through a rounded division.
inline std::uint64_t time_to_step(double t, double s) {
  return static_cast<std::uint64_t>(std::ceil(t * s - 1e-9));
}

/// Real time of step boundary `step` with step length 1/s (step engine:
/// interval endpoints and completion times).
inline double step_time(std::uint64_t step, double s) {
  return static_cast<double>(step) / s;
}

/// Fully-parallelizable relaxation of a job (paper Section 6): `work_units`
/// units of work become one sequential task of length W / (m s) on a single
/// machine.  Shared by the streamed lower bounds (core/bounds, s = 1) and
/// the OPT comparator scheduler (sched/opt_bound) so the two round
/// identically — the streamed experiment driver pins opt_sim ==
/// OptLowerBound::run's max flow bit for bit.
inline double relaxed_job_length(double work_units, double m, double s) {
  return work_units / (m * s);
}

/// FIFO single-machine frontier advance over relaxed jobs (the simulated
/// OPT bound): the machine finishes its backlog at `frontier`, idles until
/// `arrival` if early, then runs the new job for `length`.
inline double fifo_frontier_advance(double frontier, double arrival,
                                    double length) {
  return std::max(frontier, arrival) + length;
}

}  // namespace pjsched::sim
