// Structure-of-arrays DAG slot layout for the recycling job arena.
//
// The engines' inner loops used to walk a slot's dag::Dag (CSR queries
// through a pointer) plus a separate dag::ReadyTracker (frontier state).
// PackedDag fuses the two into one per-slot object whose storage is three
// contiguous grow-only array groups, reused across the jobs that
// successively occupy the slot:
//
//   node work        work_[v]                     (copied from the Dag)
//   CSR successors   succ_off_[v] .. succ_off_[v+1] into succ_
//   in-degree state  pending_preds_[v], state_[v], ready_
//
// assign() copies a sealed dag::Dag into those arrays (std::vector::assign
// keeps capacity, so a recycled slot's steady state allocates nothing) and
// the source Dag can be freed immediately — streamed jobs no longer park a
// heap-backed Dag in the slot until retirement.  dag::Dag remains the
// build/serialize representation; this is purely the execution layout.
//
// Frontier semantics are *exactly* ReadyTracker's (the bitwise cross-check
// tests pin this): the initial frontier is the sources in node-id order,
// complete() appends newly enabled successors in CSR order, and ready()
// presents the un-claimed nodes in the same sequence ReadyTracker's vector
// holds.  The representational difference is that claim() of the frontier
// head — the only claim the engines ever make — advances a head index
// instead of erasing from the vector front, turning the engines' hottest
// O(frontier) operation into O(1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/dag/dag.h"

namespace pjsched::sim {

class PackedDag {
 public:
  PackedDag() = default;

  /// Packs `dag` (sealed, non-empty) into the slot arrays and restarts the
  /// frontier from the sources.  Reuses existing capacity; only a DAG
  /// larger than any previous occupant of this slot allocates.
  void assign(const dag::Dag& dag);

  /// Marks the slot unoccupied.  Keeps every array's capacity for the next
  /// occupant — the grow-only contract the scaling benches' allocation
  /// probe measures.
  void release() { bound_ = false; }

  /// True while a DAG is assigned (the slot is live).
  bool bound() const { return bound_; }

  std::size_t node_count() const { return nodes_; }
  dag::Work total_work() const { return total_work_; }
  dag::Work critical_path() const { return critical_path_; }
  dag::Work work_of(dag::NodeId v) const { return work_[v]; }

  /// Successors of `v` in the packed CSR (same order as the source Dag).
  std::span<const dag::NodeId> successors(dag::NodeId v) const {
    return {succ_.data() + succ_off_[v], succ_off_[v + 1] - succ_off_[v]};
  }

  /// Nodes currently ready, in ReadyTracker's deterministic order.
  std::span<const dag::NodeId> ready() const {
    return {ready_.data() + ready_head_, ready_.size() - ready_head_};
  }
  std::size_t ready_count() const { return ready_.size() - ready_head_; }

  /// Removes one ready node from the frontier.  O(1) for the frontier head
  /// (the engines' only call pattern); O(frontier) otherwise.  `v` must
  /// currently be ready.
  void claim(dag::NodeId v);

  /// Marks a claimed node completed; appends newly enabled successors to
  /// the frontier (CSR order) and to `out_enabled` (may be null).  Returns
  /// the number of successors enabled.
  std::size_t complete(dag::NodeId v,
                       std::vector<dag::NodeId>* out_enabled = nullptr);

  std::size_t completed_count() const { return completed_; }
  bool done() const { return completed_ == nodes_; }

 private:
  std::size_t nodes_ = 0;
  dag::Work total_work_ = 0;
  dag::Work critical_path_ = 0;
  bool bound_ = false;

  std::vector<dag::Work> work_;             // [0, nodes_)
  std::vector<std::uint32_t> succ_off_;     // [0, nodes_]
  std::vector<dag::NodeId> succ_;           // CSR successor lists
  std::vector<std::uint32_t> pending_preds_;  // per node: unmet predecessors
  std::vector<std::uint8_t> state_;  // 0 blocked, 1 ready, 2 claimed, 3 done
  std::vector<dag::NodeId> ready_;   // frontier, consumed from ready_head_
  std::size_t ready_head_ = 0;
  std::size_t completed_ = 0;
};

}  // namespace pjsched::sim
