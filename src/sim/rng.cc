#include "src/sim/rng.h"

#include <cmath>
#include <stdexcept>

namespace pjsched::sim {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : base_seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_int(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::uniform_int: bound == 0");
  // Lemire's method: multiply-shift with rejection of the biased low range.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_range: lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_int(span));
}

double Rng::uniform_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller on (0,1]-clamped uniforms to avoid log(0).
  double u1 = uniform_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate <= 0");
  double u = uniform_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(mu + sigma * normal());
}

Rng Rng::fork(std::uint64_t stream) const {
  std::uint64_t sm = base_seed_ ^ (0xa0761d6478bd642fULL * (stream + 1));
  const std::uint64_t child_seed = splitmix64(sm);
  return Rng(child_seed);
}

}  // namespace pjsched::sim
