// Execution traces: an optional, replayable record of which processor ran
// which node of which job over which time interval, plus work-stealing
// events.  Traces feed the audit layer (src/metrics/audit.h), which verifies
// that a simulated schedule obeyed the machine model and the jobs'
// precedence constraints.  Recording is off by default — traces for large
// experiments are big — and turned on by tests.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/types.h"
#include "src/dag/dag.h"

namespace pjsched::sim {

/// A maximal interval during which `proc` continuously ran `node` of `job`.
/// The amount of work performed equals (end - start) * speed.
struct WorkInterval {
  core::JobId job = 0;
  dag::NodeId node = 0;
  unsigned proc = 0;
  core::Time start = 0.0;
  core::Time end = 0.0;
};

/// One steal attempt in the step engine.
struct StealEvent {
  unsigned thief = 0;
  unsigned victim = 0;
  bool success = false;
  std::uint64_t step = 0;  ///< step index at which the attempt happened
};

/// One admission of a job from the global FIFO queue.
struct AdmissionEvent {
  unsigned worker = 0;
  core::JobId job = 0;
  std::uint64_t step = 0;
};

class Trace {
 public:
  explicit Trace(bool record_steal_events = true)
      : record_steal_events_(record_steal_events) {}

  void add_interval(const WorkInterval& iv) { intervals_.push_back(iv); }
  void add_steal(const StealEvent& ev) {
    if (record_steal_events_) steals_.push_back(ev);
  }
  void add_admission(const AdmissionEvent& ev) {
    if (record_steal_events_) admissions_.push_back(ev);
  }

  const std::vector<WorkInterval>& intervals() const { return intervals_; }
  const std::vector<StealEvent>& steals() const { return steals_; }
  const std::vector<AdmissionEvent>& admissions() const { return admissions_; }

  /// Merges adjacent intervals with identical (job, node, proc) where one
  /// ends exactly when the next begins; engines emit per-decision-slice
  /// intervals and call this once at the end.  Idempotent, and invariant
  /// under refinement: any splitting of the maximal runs into contiguous
  /// pieces coalesces to the same canonical vector, which is what lets the
  /// event engine's fast path emit pre-merged spans while the reference
  /// path emits one interval per slice.
  void coalesce();

 private:
  std::vector<WorkInterval> intervals_;
  std::vector<StealEvent> steals_;
  std::vector<AdmissionEvent> admissions_;
  bool record_steal_events_;
};

/// Lazy span recorder for the event engine's fast path: instead of one
/// add_interval per decision slice per assigned node, the engine keeps one
/// *open span* per processor slot and only emits an interval when the slot's
/// occupant changes (preemption, migration, completion) or the run ends.  A
/// node continuously assigned to one processor across thousands of slices
/// produces exactly one interval — the same interval Trace::coalesce would
/// have merged the per-slice pieces into.  Zero-length spans (opened and
/// closed at the same instant by a zero-dt slice) are dropped, matching the
/// reference path's `dt > 0` emission guard.
class SpanRecorder {
 public:
  /// Records into *trace; `trace` may be null (every call is then a no-op).
  explicit SpanRecorder(Trace* trace) : trace_(trace) {}

  /// Reconciles processor slot `proc` with the node now assigned there at
  /// time `t`: keeps the span open if the occupant is unchanged, otherwise
  /// closes the old span at `t` and opens a new one.
  void reconcile(unsigned proc, core::JobId job, dag::NodeId node,
                 core::Time t);

  /// Closes slot `proc`'s open span (if any) at time `t`.
  void close(unsigned proc, core::Time t);

  /// Number of slots ever opened — the upper bound callers sweep when the
  /// assignment shrinks.
  std::size_t slots() const { return spans_.size(); }

 private:
  struct OpenSpan {
    core::JobId job = 0;
    dag::NodeId node = 0;
    core::Time start = 0.0;
    bool open = false;
  };

  Trace* trace_;
  std::vector<OpenSpan> spans_;  // indexed by processor slot
};

}  // namespace pjsched::sim
