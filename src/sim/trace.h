// Execution traces: an optional, replayable record of which processor ran
// which node of which job over which time interval, plus work-stealing
// events.  Traces feed the audit layer (src/metrics/audit.h), which verifies
// that a simulated schedule obeyed the machine model and the jobs'
// precedence constraints.  Recording is off by default — traces for large
// experiments are big — and turned on by tests.
//
// Two recording modes:
//
//   * In-core (default): intervals accumulate in a vector; callers run
//     coalesce() at the end and read intervals().  O(all intervals) memory.
//   * Spill (construct with a TraceSink*): the trace keeps one pending
//     span per processor and hands every *maximal* merged interval to the
//     sink as soon as the next interval on that processor fails to extend
//     it.  Because both engines emit each processor's intervals in
//     nondecreasing start order, this single-open-window merge produces
//     exactly the intervals Trace::coalesce would — coalesce-equivalent by
//     construction — while holding O(processors) state, which is what makes
//     --trace viable at 10^6 jobs.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/types.h"
#include "src/dag/dag.h"

namespace pjsched::sim {

/// A maximal interval during which `proc` continuously ran `node` of `job`.
/// The amount of work performed equals (end - start) * speed.
struct WorkInterval {
  core::JobId job = 0;
  dag::NodeId node = 0;
  unsigned proc = 0;
  core::Time start = 0.0;
  core::Time end = 0.0;
};

/// One steal attempt in the step engine.
struct StealEvent {
  unsigned thief = 0;
  unsigned victim = 0;
  bool success = false;
  std::uint64_t step = 0;  ///< step index at which the attempt happened
};

/// One admission of a job from the global FIFO queue.
struct AdmissionEvent {
  unsigned worker = 0;
  core::JobId job = 0;
  std::uint64_t step = 0;
};

/// Receives trace records from a spill-mode Trace as they are finalized.
/// on_interval sees maximal coalesced intervals grouped by processor in
/// nondecreasing start order per processor (cross-processor order is
/// emission order, not sorted — sort downstream if a global order matters).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_interval(const WorkInterval& iv) = 0;
  virtual void on_steal(const StealEvent& ev) { (void)ev; }
  virtual void on_admission(const AdmissionEvent& ev) { (void)ev; }
  /// Called once from Trace::coalesce after the pending windows drain.
  virtual void flush() {}
};

class Trace {
 public:
  explicit Trace(bool record_steal_events = true)
      : record_steal_events_(record_steal_events) {}

  /// Spill mode: intervals stream to `sink` (which must outlive the trace)
  /// instead of accumulating; intervals() stays empty.  Steal/admission
  /// events forward to the sink immediately when recorded.
  explicit Trace(TraceSink* sink, bool record_steal_events = true)
      : sink_(sink), record_steal_events_(record_steal_events) {}

  /// True when records stream to a sink instead of accumulating in-core.
  bool spilling() const { return sink_ != nullptr; }

  void add_interval(const WorkInterval& iv) {
    if (sink_ != nullptr) {
      spill_interval(iv);
      return;
    }
    intervals_.push_back(iv);
  }
  void add_steal(const StealEvent& ev) {
    if (!record_steal_events_) return;
    if (sink_ != nullptr) {
      sink_->on_steal(ev);
      return;
    }
    steals_.push_back(ev);
  }
  void add_admission(const AdmissionEvent& ev) {
    if (!record_steal_events_) return;
    if (sink_ != nullptr) {
      sink_->on_admission(ev);
      return;
    }
    admissions_.push_back(ev);
  }

  /// Empty in spill mode — the records went to the sink.
  const std::vector<WorkInterval>& intervals() const { return intervals_; }
  const std::vector<StealEvent>& steals() const { return steals_; }
  const std::vector<AdmissionEvent>& admissions() const { return admissions_; }

  /// Merges adjacent intervals with identical (job, node, proc) where one
  /// ends exactly when the next begins; engines emit per-decision-slice
  /// intervals and call this once at the end.  Idempotent, and invariant
  /// under refinement: any splitting of the maximal runs into contiguous
  /// pieces coalesces to the same canonical vector, which is what lets the
  /// event engine's fast path emit pre-merged spans while the reference
  /// path emits one interval per slice.
  ///
  /// In spill mode this instead drains the per-processor pending windows to
  /// the sink (in processor order) and calls sink->flush(); the merge
  /// already happened incrementally.
  void coalesce();

 private:
  void spill_interval(const WorkInterval& iv);

  /// Spill mode's per-processor merge window: at most one open span each.
  struct PendingSpan {
    WorkInterval iv;
    bool open = false;
  };

  TraceSink* sink_ = nullptr;
  std::vector<WorkInterval> intervals_;
  std::vector<StealEvent> steals_;
  std::vector<AdmissionEvent> admissions_;
  std::vector<PendingSpan> pending_;  // indexed by proc; spill mode only
  bool record_steal_events_;
};

/// TraceSink writing a plain-text trace file: one record per line,
/// `i <job> <node> <proc> <start> <end>` for intervals,
/// `s <thief> <victim> <success> <step>` for steal attempts and
/// `a <worker> <job> <proc-step>` for admissions, doubles in %.17g so a
/// reader recovers them bit-exactly.  Buffered through stdio; the
/// destructor flushes and closes.
class FileTraceSink final : public TraceSink {
 public:
  /// Opens `path` for writing (truncates).  Throws std::runtime_error if
  /// the file cannot be opened.
  explicit FileTraceSink(const std::string& path);
  ~FileTraceSink() override;

  FileTraceSink(const FileTraceSink&) = delete;
  FileTraceSink& operator=(const FileTraceSink&) = delete;

  void on_interval(const WorkInterval& iv) override;
  void on_steal(const StealEvent& ev) override;
  void on_admission(const AdmissionEvent& ev) override;
  void flush() override;

  std::uint64_t intervals_written() const { return intervals_written_; }
  std::uint64_t steals_written() const { return steals_written_; }
  std::uint64_t admissions_written() const { return admissions_written_; }

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t intervals_written_ = 0;
  std::uint64_t steals_written_ = 0;
  std::uint64_t admissions_written_ = 0;
};

/// Lazy span recorder for the event engine's fast path: instead of one
/// add_interval per decision slice per assigned node, the engine keeps one
/// *open span* per processor slot and only emits an interval when the slot's
/// occupant changes (preemption, migration, completion) or the run ends.  A
/// node continuously assigned to one processor across thousands of slices
/// produces exactly one interval — the same interval Trace::coalesce would
/// have merged the per-slice pieces into.  Zero-length spans (opened and
/// closed at the same instant by a zero-dt slice) are dropped, matching the
/// reference path's `dt > 0` emission guard.
class SpanRecorder {
 public:
  /// Records into *trace; `trace` may be null (every call is then a no-op).
  explicit SpanRecorder(Trace* trace) : trace_(trace) {}

  /// Reconciles processor slot `proc` with the node now assigned there at
  /// time `t`: keeps the span open if the occupant is unchanged, otherwise
  /// closes the old span at `t` and opens a new one.
  void reconcile(unsigned proc, core::JobId job, dag::NodeId node,
                 core::Time t);

  /// Closes slot `proc`'s open span (if any) at time `t`.
  void close(unsigned proc, core::Time t);

  /// Number of slots ever opened — the upper bound callers sweep when the
  /// assignment shrinks.
  std::size_t slots() const { return spans_.size(); }

 private:
  struct OpenSpan {
    core::JobId job = 0;
    dag::NodeId node = 0;
    core::Time start = 0.0;
    bool open = false;
  };

  Trace* trace_;
  std::vector<OpenSpan> spans_;  // indexed by processor slot
};

}  // namespace pjsched::sim
