// Recycling per-run job arena shared by the two simulation engines.
//
// Both engines used to key every per-job structure by JobId, sized to the
// whole instance — O(all jobs) resident state even though only the jobs
// between arrival and completion are ever touched.  The arena replaces that
// indexing scheme: a live job occupies a dense *slot*, slots are retired and
// reused as jobs complete (LIFO freelist, so the hottest slot's caches are
// reused first), and a retired slot's owned DAG storage is freed
// immediately.  Resident state is therefore O(peak live jobs), which for a
// stable system is O(1) in the instance length — the property the 10^6-job
// scaling gate (bench_sim_engine's BM_Scaling suite) asserts.
//
// The arena owns what both engines need per job — identity, arrival,
// weight, the DAG, and its ReadyTracker (whose internal vectors' capacity
// survives recycling, see ReadyTracker::reset) — plus the live id->slot map
// the event engine's policy context uses.  Engine-specific per-slot arrays
// (completion coordinates, deques, ...) live in the engines, indexed by the
// slot ids this class hands out; `size()` never shrinks, so grow-only
// parallel arrays stay in sync by resizing whenever acquire() returns a
// fresh slot.
//
// acquire() also centralizes the per-job validation that Instance::validate
// performed up front for materialized runs (sealed non-empty DAG,
// non-negative arrival, positive weight) and enforces the JobSource
// contract that arrivals be non-decreasing.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "src/core/job_source.h"
#include "src/core/types.h"
#include "src/dag/dag.h"

namespace pjsched::sim {

class JobArena {
 public:
  /// One live job's engine-independent state.  Slot references are stable:
  /// slots live in a deque and are never destroyed until the arena is.
  struct Slot {
    core::JobId id = 0;
    core::Time arrival = 0.0;
    double weight = 1.0;
    /// The DAG in play: &owned_ for streamed jobs, the source's storage for
    /// borrowed ones.  Null while the slot is free.
    const dag::Dag* dag = nullptr;
    dag::ReadyTracker tracker;

   private:
    friend class JobArena;
    dag::Dag owned_;
  };

  /// Claims a slot (recycling a retired one when available) for `job`,
  /// taking ownership of its DAG if it owns one.  Validates the job and
  /// throws std::invalid_argument on an unsealed/empty DAG, negative
  /// arrival, non-positive weight, out-of-order arrival, or a duplicate
  /// live id.  Returns the slot index.
  std::uint32_t acquire(core::StreamedJob&& job);

  /// Releases a live slot: frees its owned DAG storage (the tracker keeps
  /// its capacity for the next occupant) and recycles the index.
  void retire(std::uint32_t slot);

  Slot& operator[](std::uint32_t slot) { return slots_[slot]; }
  const Slot& operator[](std::uint32_t slot) const { return slots_[slot]; }

  /// Slots ever created (== the engines' parallel-array length).  Monotone.
  std::size_t size() const { return slots_.size(); }

  std::size_t live() const { return live_; }
  std::uint64_t peak_live() const { return peak_live_; }

  /// Slot of a live job.  Throws std::logic_error for ids not currently
  /// live (the engines only look up jobs they know to be active).
  std::uint32_t slot_of(core::JobId id) const;

 private:
  std::deque<Slot> slots_;
  std::vector<std::uint32_t> free_;  // retired slot indices, LIFO
  std::unordered_map<core::JobId, std::uint32_t> slot_of_;
  std::size_t live_ = 0;
  std::uint64_t peak_live_ = 0;
  core::Time last_arrival_ = 0.0;
  bool any_acquired_ = false;
};

}  // namespace pjsched::sim
