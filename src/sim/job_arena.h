// Recycling per-run job arena shared by the two simulation engines.
//
// Both engines used to key every per-job structure by JobId, sized to the
// whole instance — O(all jobs) resident state even though only the jobs
// between arrival and completion are ever touched.  The arena replaces that
// indexing scheme: a live job occupies a dense *slot*, slots are retired and
// reused as jobs complete (LIFO freelist, so the hottest slot's caches are
// reused first).  Resident state is therefore O(peak live jobs), which for
// a stable system is O(1) in the instance length — the property the
// 10^6-job scaling gate (bench_sim_engine's BM_Scaling suite) asserts.
//
// Each slot's DAG lives in a PackedDag: node work, CSR successor lists, and
// the in-degree/ready frontier state packed into contiguous grow-only
// arrays (src/sim/packed_dag.h).  acquire() copies the job's sealed
// dag::Dag into those arrays and drops the source immediately — a streamed
// job's heap-backed Dag is freed at admission, not retirement — and a
// recycled slot's steady state allocates nothing, since every array reuses
// the capacity left by previous occupants.  The engines' ready-frontier and
// completion inner loops run entirely on the packed layout; dag::Dag stays
// the build/serialize representation.
//
// Engine-specific per-slot arrays (completion coordinates, deques, ...)
// live in the engines, indexed by the slot ids this class hands out;
// `size()` never shrinks, so grow-only parallel arrays stay in sync by
// resizing whenever acquire() returns a fresh slot.
//
// acquire() also centralizes the per-job validation that Instance::validate
// performed up front for materialized runs (sealed non-empty DAG,
// non-negative arrival, positive weight) and enforces the JobSource
// contract that arrivals be non-decreasing.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "src/core/job_source.h"
#include "src/core/types.h"
#include "src/sim/packed_dag.h"

namespace pjsched::sim {

class JobArena {
 public:
  /// One live job's engine-independent state.  Slot references are stable:
  /// slots live in a deque and are never destroyed until the arena is.
  struct Slot {
    core::JobId id = 0;
    core::Time arrival = 0.0;
    double weight = 1.0;
    /// The packed DAG + ready frontier in play; unbound while the slot is
    /// free (its arrays keep their capacity for the next occupant).
    PackedDag graph;
  };

  /// Claims a slot (recycling a retired one when available) for `job`,
  /// packing its DAG into the slot's arrays; the job's own DAG storage is
  /// released when `job` goes out of scope.  Validates the job and throws
  /// std::invalid_argument on an unsealed/empty DAG, negative arrival,
  /// non-positive weight, out-of-order arrival, or a duplicate live id.
  /// Returns the slot index.
  std::uint32_t acquire(core::StreamedJob&& job);

  /// Releases a live slot: marks its packed DAG unbound (the arrays keep
  /// their capacity for the next occupant) and recycles the index.
  void retire(std::uint32_t slot);

  Slot& operator[](std::uint32_t slot) { return slots_[slot]; }
  const Slot& operator[](std::uint32_t slot) const { return slots_[slot]; }

  /// Slots ever created (== the engines' parallel-array length).  Monotone.
  std::size_t size() const { return slots_.size(); }

  std::size_t live() const { return live_; }
  std::uint64_t peak_live() const { return peak_live_; }

  /// Slot of a live job.  Throws std::logic_error for ids not currently
  /// live (the engines only look up jobs they know to be active).
  std::uint32_t slot_of(core::JobId id) const;

 private:
  std::deque<Slot> slots_;
  std::vector<std::uint32_t> free_;  // retired slot indices, LIFO
  std::unordered_map<core::JobId, std::uint32_t> slot_of_;
  std::size_t live_ = 0;
  std::uint64_t peak_live_ = 0;
  core::Time last_arrival_ = 0.0;
  bool any_acquired_ = false;
};

}  // namespace pjsched::sim
