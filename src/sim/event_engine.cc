#include "src/sim/event_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/dag/dag.h"

namespace pjsched::sim {

namespace {

constexpr double kEps = 1e-9;

struct JobState {
  explicit JobState(const dag::Dag& g) : tracker(g), remaining(g.node_count(), 0.0) {}

  dag::ReadyTracker tracker;
  // Nodes available for execution: ready, or started and preempted.
  std::vector<dag::NodeId> available;
  std::vector<double> remaining;  // work units left, per node
  bool arrived = false;
  bool finished = false;
};

// Claims every currently-ready node of the tracker into the available list.
void absorb_ready(JobState& js) {
  while (js.tracker.ready_count() > 0) {
    const dag::NodeId v = js.tracker.ready().front();
    js.tracker.claim(v);
    js.remaining[v] = static_cast<double>(js.tracker.dag().work_of(v));
    js.available.push_back(v);
  }
}

class ContextImpl final : public PolicyContext {
 public:
  explicit ContextImpl(const core::Instance& inst) : inst_(inst) {}

  core::Time now() const override { return now_; }
  core::Time arrival(core::JobId j) const override { return inst_.jobs[j].arrival; }
  double weight(core::JobId j) const override { return inst_.jobs[j].weight; }
  double remaining_work(core::JobId j) const override {
    return static_cast<double>(inst_.jobs[j].graph.total_work()) -
           (*processed_)[j];
  }

  void set_now(core::Time t) { now_ = t; }
  void set_processed(const std::vector<double>* p) { processed_ = p; }

 private:
  const core::Instance& inst_;
  const std::vector<double>* processed_ = nullptr;
  core::Time now_ = 0.0;
};

}  // namespace

core::ScheduleResult run_event_engine(const core::Instance& instance,
                                      OrderPolicy& policy,
                                      const EventEngineOptions& options) {
  instance.validate();
  unsigned m = options.machine.processors;
  double s = options.machine.speed;
  if (m == 0) throw std::invalid_argument("run_event_engine: zero processors");
  if (!(s > 0.0)) throw std::invalid_argument("run_event_engine: speed must be > 0");

  // Degradation timeline: machine events are decision points like arrivals
  // and completions; (m, s) are piecewise constant between them.
  std::vector<core::MachineEvent> machine_events = options.machine.degradation;
  for (const core::MachineEvent& e : machine_events) {
    if (e.processors == 0)
      throw std::invalid_argument("run_event_engine: machine event with zero processors");
    if (!(e.speed > 0.0))
      throw std::invalid_argument("run_event_engine: machine event speed must be > 0");
    if (e.time < 0.0)
      throw std::invalid_argument("run_event_engine: machine event before time 0");
  }
  std::stable_sort(machine_events.begin(), machine_events.end(),
                   [](const core::MachineEvent& a, const core::MachineEvent& b) {
                     return a.time < b.time;
                   });
  std::size_t next_machine_event = 0;

  const std::size_t n = instance.size();
  std::vector<JobState> states;
  states.reserve(n);
  for (const core::JobSpec& j : instance.jobs) states.emplace_back(j.graph);

  // Cumulative processed work per job, for clairvoyant policies.
  std::vector<double> processed(n, 0.0);

  const std::vector<core::JobId> by_arrival = instance.arrival_order();
  std::size_t next_arrival_idx = 0;
  std::size_t unfinished = n;

  core::ScheduleResult result;
  result.scheduler_name = policy.name();
  result.completion.assign(n, core::kNoTime);

  ContextImpl ctx(instance);
  ctx.set_processed(&processed);

  core::Time t = 0.0;
  std::vector<core::JobId> active;
  std::vector<std::pair<core::JobId, dag::NodeId>> assigned;

  // Defensive cap: every slice either completes a node, admits an arrival,
  // applies a machine event, or some combination, so slices <= total nodes
  // + n + machine events + 1.
  std::uint64_t max_slices =
      static_cast<std::uint64_t>(n) + machine_events.size() + 1;
  for (const core::JobSpec& j : instance.jobs)
    max_slices += j.graph.node_count();
  max_slices = max_slices * 2 + 16;

  std::uint64_t slices = 0;
  while (unfinished > 0) {
    if (++slices > max_slices)
      throw std::logic_error("run_event_engine: simulation failed to make progress");

    // Apply machine events whose time has come.
    while (next_machine_event < machine_events.size() &&
           machine_events[next_machine_event].time <= t + kEps) {
      m = machine_events[next_machine_event].processors;
      s = machine_events[next_machine_event].speed;
      ++next_machine_event;
    }

    // Admit arrivals at the current time.
    while (next_arrival_idx < n &&
           instance.jobs[by_arrival[next_arrival_idx]].arrival <= t + kEps) {
      const core::JobId j = by_arrival[next_arrival_idx++];
      states[j].arrived = true;
      absorb_ready(states[j]);
    }

    // Collect active jobs (arrival order is the deterministic base order).
    active.clear();
    for (std::size_t k = 0; k < next_arrival_idx; ++k) {
      const core::JobId j = by_arrival[k];
      if (!states[j].finished) active.push_back(j);
    }

    if (active.empty()) {
      // Idle until the next arrival (but not across a machine event: m may
      // change, which alters the idle-time accounting).
      if (next_arrival_idx >= n)
        throw std::logic_error("run_event_engine: no active jobs but jobs unfinished");
      core::Time t_next = instance.jobs[by_arrival[next_arrival_idx]].arrival;
      if (next_machine_event < machine_events.size())
        t_next = std::min(t_next, machine_events[next_machine_event].time);
      t_next = std::max(t_next, t);
      result.stats.idle_processor_time += static_cast<double>(m) * (t_next - t);
      t = t_next;
      continue;
    }

    // Ask the policy for a priority order and allocate greedily.
    ctx.set_now(t);
    policy.order(ctx, active);
    ++result.stats.decision_points;

    assigned.clear();
    // Pass 1: each job in priority order receives up to its policy cap.
    // Pass 2 (work conservation): leftover processors go to still-hungry
    // jobs in the same order, ignoring caps.
    std::vector<std::size_t> taken(active.size(), 0);
    for (std::size_t rank = 0; rank < active.size(); ++rank) {
      const core::JobId j = active[rank];
      const JobState& js = states[j];
      const unsigned cap = policy.processor_cap(ctx, j, m, active.size());
      for (dag::NodeId v : js.available) {
        if (assigned.size() >= m || taken[rank] >= cap) break;
        assigned.emplace_back(j, v);
        ++taken[rank];
      }
      if (assigned.size() >= m) break;
    }
    for (std::size_t rank = 0;
         rank < active.size() && assigned.size() < m; ++rank) {
      const core::JobId j = active[rank];
      const JobState& js = states[j];
      for (std::size_t vi = taken[rank];
           vi < js.available.size() && assigned.size() < m; ++vi)
        assigned.emplace_back(j, js.available[vi]);
    }
    if (assigned.empty())
      throw std::logic_error("run_event_engine: active jobs but nothing to run");

    // Time to the next event: the earliest assigned-node completion, the
    // next arrival, or the next machine event.
    double dt = std::numeric_limits<double>::infinity();
    for (const auto& [j, v] : assigned)
      dt = std::min(dt, states[j].remaining[v] / s);
    if (next_arrival_idx < n) {
      const core::Time t_next = instance.jobs[by_arrival[next_arrival_idx]].arrival;
      dt = std::min(dt, t_next - t);
    }
    if (next_machine_event < machine_events.size())
      dt = std::min(dt, machine_events[next_machine_event].time - t);
    dt = std::max(dt, 0.0);

    // Advance all assigned nodes by s * dt.
    const core::Time t_end = t + dt;
    unsigned proc = 0;
    for (const auto& [j, v] : assigned) {
      JobState& js = states[j];
      js.remaining[v] -= s * dt;
      processed[j] += s * dt;
      if (options.trace != nullptr && dt > 0.0)
        options.trace->add_interval({j, v, proc, t, t_end});
      ++proc;
    }
    result.stats.idle_processor_time +=
        static_cast<double>(m - assigned.size()) * dt;

    // Process completions (remaining within tolerance of zero).
    for (const auto& [j, v] : assigned) {
      JobState& js = states[j];
      if (js.finished) continue;  // (cannot happen: one completion per node)
      if (js.remaining[v] <= kEps) {
        js.remaining[v] = 0.0;
        // Swap-and-pop: `available` is an unordered working set — the
        // allocation pass takes nodes from it in whatever order it holds,
        // and no invariant depends on that order (nodes of one job are
        // interchangeable up to their precedence constraints, which the
        // ReadyTracker enforces before a node ever enters the set).
        auto it = std::find(js.available.begin(), js.available.end(), v);
        *it = js.available.back();
        js.available.pop_back();
        js.tracker.complete(v);
        absorb_ready(js);
        if (js.tracker.done()) {
          js.finished = true;
          result.completion[j] = t_end;
          --unfinished;
        }
      }
    }

    t = t_end;
  }

  if (options.trace != nullptr) options.trace->coalesce();
  result.finalize(instance.jobs);
  return result;
}

}  // namespace pjsched::sim
