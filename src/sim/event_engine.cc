#include "src/sim/event_engine.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

#include "src/dag/dag.h"

namespace pjsched::sim {

namespace {

constexpr double kEps = 1e-9;
constexpr unsigned kNoProc = std::numeric_limits<unsigned>::max();
constexpr std::uint32_t kNoPos = std::numeric_limits<std::uint32_t>::max();

// Both execution paths share one arithmetic: a node entering the assigned
// set at virtual work time W with r units left is keyed by its completion
// coordinate C = W + r; while it stays assigned nothing is decremented, and
// its remaining work r = C - W is only materialized when it leaves (is
// preempted) or completes.  The reference path scans assigned nodes for
// min(C) and the fast path reads a heap top, but fl(C - W) / s is monotone
// in C, so the two minima are the same float — that is what makes the paths
// bit-identical rather than merely close.
struct JobState {
  explicit JobState(const dag::Dag& g)
      : tracker(g),
        remaining(g.node_count(), 0.0),
        coord(g.node_count(), 0.0),
        proc_of(g.node_count(), kNoProc),
        stint(g.node_count(), 0),
        mark(g.node_count(), 0),
        pos_in_available(g.node_count(), kNoPos) {}

  dag::ReadyTracker tracker;
  // Nodes available for execution: ready, or started and preempted.
  std::vector<dag::NodeId> available;
  std::vector<double> remaining;  // work units left; valid while unassigned
  std::vector<double> coord;      // completion coordinate; valid while assigned
  std::vector<unsigned> proc_of;  // processor slot, kNoProc while unassigned
  std::vector<std::uint32_t> stint;  // bumped on every assign/leave; heap
                                     // entries carry the stint they were
                                     // pushed with and are stale otherwise
  std::vector<std::uint32_t> mark;   // epoch stamp for the assignment diff
  std::vector<std::uint32_t> pos_in_available;  // node -> index in available
  bool arrived = false;
  bool finished = false;
};

// Completion-heap entry; lazy deletion via the stint counter.
struct HeapEntry {
  double coord = 0.0;
  core::JobId job = 0;
  dag::NodeId node = 0;
  std::uint32_t stint = 0;
};

// Min-heap on coord; the remaining fields only pin a total order so heap
// internals cannot depend on the standard library's tie handling.
struct HeapLater {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.coord != b.coord) return a.coord > b.coord;
    if (a.job != b.job) return a.job > b.job;
    if (a.node != b.node) return a.node > b.node;
    return a.stint > b.stint;
  }
};

class Engine {
 public:
  Engine(const core::Instance& instance, OrderPolicy& policy,
         const EventEngineOptions& options)
      : inst_(instance), policy_(policy), opts_(options), ctx_(*this),
        spans_(options.trace) {}

  core::ScheduleResult run();

 private:
  class Context final : public PolicyContext {
   public:
    explicit Context(Engine& e) : e_(e) {}
    core::Time now() const override { return e_.t_; }
    core::Time arrival(core::JobId j) const override {
      return e_.inst_.jobs[j].arrival;
    }
    double weight(core::JobId j) const override {
      return e_.inst_.jobs[j].weight;
    }
    double remaining_work(core::JobId j) const override {
      return e_.remaining_work(j);
    }

   private:
    Engine& e_;
  };

  double remaining_work(core::JobId j) const;
  void absorb_ready(core::JobId j);
  void apply_machine_events();
  void admit_arrivals();
  void idle_jump();
  void allocate(const std::vector<core::JobId>& active);
  void apply_assignment();
  double bound_dt(double dt) const;
  void advance(double dt);
  void complete_node(core::JobId j, dag::NodeId v);
  void insert_ordered(core::JobId j);
  void erase_ordered(core::JobId j);
  double next_completion_dt_fast();
  void run_exact();
  void run_fast();

  const core::Instance& inst_;
  OrderPolicy& policy_;
  const EventEngineOptions& opts_;
  Context ctx_;

  unsigned m_ = 1;
  double s_ = 1.0;
  std::vector<core::MachineEvent> machine_events_;
  std::size_t next_machine_event_ = 0;

  std::size_t n_ = 0;
  std::vector<JobState> states_;
  std::vector<double> processed_;  // exact path: cumulative work per job
  std::vector<double> absorbed_;   // fast path: work claimed from trackers
  std::vector<core::JobId> by_arrival_;
  std::size_t next_arrival_idx_ = 0;
  std::size_t unfinished_ = 0;

  core::Time t_ = 0.0;  // wall-clock simulated time
  double W_ = 0.0;      // virtual work clock, integral of s dt

  std::vector<std::pair<core::JobId, dag::NodeId>> assigned_;
  std::vector<std::pair<core::JobId, dag::NodeId>> assigned_new_;
  std::vector<std::size_t> taken_;  // allocator pass-1 per-rank node counts
  std::uint32_t epoch_ = 0;

  // Fast path only.
  bool fast_ = false;
  std::vector<double> keys_;            // static priority key per job
  std::vector<core::JobId> ordered_;    // active jobs in policy order
  std::vector<std::uint32_t> pos_of_job_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLater> heap_;
  std::vector<std::pair<core::JobId, dag::NodeId>> completed_;
  SpanRecorder spans_;

  std::uint64_t max_slices_ = 0;
  core::ScheduleResult result_;
};

double Engine::remaining_work(core::JobId j) const {
  if (!fast_)
    return static_cast<double>(inst_.jobs[j].graph.total_work()) -
           processed_[j];
  // Fast path (defensive: static-order policies must not call this, see the
  // OrderPolicy contract): unreached work plus what is left of every
  // available node, assigned nodes valued through their coordinate.
  const JobState& js = states_[j];
  double rem = static_cast<double>(inst_.jobs[j].graph.total_work()) -
               absorbed_[j];
  for (dag::NodeId v : js.available)
    rem += (js.proc_of[v] == kNoProc) ? js.remaining[v] : js.coord[v] - W_;
  return rem;
}

// Claims every currently-ready node of the tracker into the available list.
void Engine::absorb_ready(core::JobId j) {
  JobState& js = states_[j];
  while (js.tracker.ready_count() > 0) {
    const dag::NodeId v = js.tracker.ready().front();
    js.tracker.claim(v);
    const double w = static_cast<double>(js.tracker.dag().work_of(v));
    js.remaining[v] = w;
    absorbed_[j] += w;
    js.pos_in_available[v] = static_cast<std::uint32_t>(js.available.size());
    js.available.push_back(v);
  }
}

// Applies machine events whose time has come.
void Engine::apply_machine_events() {
  while (next_machine_event_ < machine_events_.size() &&
         machine_events_[next_machine_event_].time <= t_ + kEps) {
    m_ = machine_events_[next_machine_event_].processors;
    s_ = machine_events_[next_machine_event_].speed;
    ++next_machine_event_;
  }
}

// Admits arrivals at the current time.
void Engine::admit_arrivals() {
  while (next_arrival_idx_ < n_ &&
         inst_.jobs[by_arrival_[next_arrival_idx_]].arrival <= t_ + kEps) {
    const core::JobId j = by_arrival_[next_arrival_idx_++];
    states_[j].arrived = true;
    absorb_ready(j);
    if (fast_) insert_ordered(j);
  }
}

// Idles until the next arrival (but not across a machine event: m may
// change, which alters the idle-time accounting).
void Engine::idle_jump() {
  if (next_arrival_idx_ >= n_)
    throw std::logic_error(
        "run_event_engine: no active jobs but jobs unfinished");
  core::Time t_next = inst_.jobs[by_arrival_[next_arrival_idx_]].arrival;
  if (next_machine_event_ < machine_events_.size())
    t_next = std::min(t_next, machine_events_[next_machine_event_].time);
  t_next = std::max(t_next, t_);
  result_.stats.idle_processor_time += static_cast<double>(m_) * (t_next - t_);
  t_ = t_next;
}

// Greedy ordered allocation into assigned_new_.
// Pass 1: each job in priority order receives up to its policy cap.
// Pass 2 (work conservation): leftover processors go to still-hungry jobs in
// the same order, ignoring caps.
void Engine::allocate(const std::vector<core::JobId>& active) {
  assigned_new_.clear();
  taken_.clear();
  for (std::size_t rank = 0; rank < active.size(); ++rank) {
    const core::JobId j = active[rank];
    const JobState& js = states_[j];
    const unsigned cap = policy_.processor_cap(ctx_, j, m_, active.size());
    std::size_t took = 0;
    for (dag::NodeId v : js.available) {
      if (assigned_new_.size() >= m_ || took >= cap) break;
      assigned_new_.emplace_back(j, v);
      ++took;
    }
    taken_.push_back(took);
    if (assigned_new_.size() >= m_) break;
  }
  for (std::size_t rank = 0;
       rank < active.size() && assigned_new_.size() < m_; ++rank) {
    const core::JobId j = active[rank];
    const JobState& js = states_[j];
    for (std::size_t vi = rank < taken_.size() ? taken_[rank] : 0;
         vi < js.available.size() && assigned_new_.size() < m_; ++vi)
      assigned_new_.emplace_back(j, js.available[vi]);
  }
}

// Diffs assigned_new_ against assigned_: entering nodes bind a completion
// coordinate C = W + remaining (and a heap entry on the fast path); leaving
// nodes materialize remaining = C - W.  A node that merely changes slot
// keeps its coordinate — the work axis does not care which processor runs
// it, so its heap entry stays valid across migrations.
void Engine::apply_assignment() {
  ++epoch_;
  for (std::size_t slot = 0; slot < assigned_new_.size(); ++slot) {
    const auto [j, v] = assigned_new_[slot];
    JobState& js = states_[j];
    js.mark[v] = epoch_;
    if (js.proc_of[v] == kNoProc) {
      js.coord[v] = W_ + js.remaining[v];
      if (fast_) {
        ++js.stint[v];
        heap_.push(HeapEntry{js.coord[v], j, v, js.stint[v]});
      }
    }
    js.proc_of[v] = static_cast<unsigned>(slot);
  }
  for (const auto& [j, v] : assigned_) {
    JobState& js = states_[j];
    if (js.proc_of[v] == kNoProc) continue;  // completed last slice
    if (js.mark[v] == epoch_) continue;      // still assigned
    js.remaining[v] = js.coord[v] - W_;
    js.proc_of[v] = kNoProc;
    if (fast_) ++js.stint[v];  // invalidate the heap entry
  }
  if (fast_ && opts_.trace != nullptr) {
    for (std::size_t slot = 0; slot < assigned_new_.size(); ++slot) {
      const auto [j, v] = assigned_new_[slot];
      spans_.reconcile(static_cast<unsigned>(slot), j, v, t_);
    }
    for (std::size_t slot = assigned_new_.size(); slot < spans_.slots();
         ++slot)
      spans_.close(static_cast<unsigned>(slot), t_);
  }
  assigned_.swap(assigned_new_);
}

// Clamps dt to the next arrival and the next machine event.
double Engine::bound_dt(double dt) const {
  if (next_arrival_idx_ < n_)
    dt = std::min(dt, inst_.jobs[by_arrival_[next_arrival_idx_]].arrival - t_);
  if (next_machine_event_ < machine_events_.size())
    dt = std::min(dt, machine_events_[next_machine_event_].time - t_);
  return std::max(dt, 0.0);
}

// Advances both clocks; the reference path also does its per-slice
// bookkeeping (clairvoyant processed-work accumulation and one trace
// interval per assigned node — the fast path records spans instead).
void Engine::advance(double dt) {
  const core::Time t_end = t_ + dt;
  const double dw = s_ * dt;
  if (!fast_) {
    unsigned proc = 0;
    for (const auto& [j, v] : assigned_) {
      processed_[j] += dw;
      if (opts_.trace != nullptr && dt > 0.0)
        opts_.trace->add_interval({j, v, proc, t_, t_end});
      ++proc;
    }
  }
  result_.stats.idle_processor_time +=
      static_cast<double>(m_ - assigned_.size()) * dt;
  W_ += dw;
  t_ = t_end;
}

// Completion bookkeeping at the current time t_.
void Engine::complete_node(core::JobId j, dag::NodeId v) {
  JobState& js = states_[j];
  const unsigned slot = js.proc_of[v];
  js.remaining[v] = 0.0;
  js.proc_of[v] = kNoProc;
  if (fast_) {
    ++js.stint[v];
    spans_.close(slot, t_);
  }
  // Swap-and-pop via the position index (O(1)): `available` is an unordered
  // working set — the allocation pass takes nodes from it in whatever order
  // it holds, and no invariant depends on that order (nodes of one job are
  // interchangeable up to their precedence constraints, which the
  // ReadyTracker enforces before a node ever enters the set).
  const std::uint32_t pos = js.pos_in_available[v];
  const dag::NodeId back = js.available.back();
  js.available[pos] = back;
  js.pos_in_available[back] = pos;
  js.available.pop_back();
  js.pos_in_available[v] = kNoPos;
  js.tracker.complete(v);
  absorb_ready(j);
  if (js.tracker.done()) {
    js.finished = true;
    result_.completion[j] = t_;
    --unfinished_;
    if (fast_) erase_ordered(j);
  }
}

// Inserts j into the incrementally maintained policy order.  upper_bound on
// the static key over admissions in (arrival, index) order reproduces a
// stable sort by that key over the arrival base order — exactly what the
// reference path's policy.order() computes.
void Engine::insert_ordered(core::JobId j) {
  const double key = keys_[j];
  std::size_t lo = 0;
  std::size_t hi = ordered_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (keys_[ordered_[mid]] <= key)
      lo = mid + 1;
    else
      hi = mid;
  }
  ordered_.insert(ordered_.begin() + static_cast<std::ptrdiff_t>(lo), j);
  for (std::size_t k = lo; k < ordered_.size(); ++k)
    pos_of_job_[ordered_[k]] = static_cast<std::uint32_t>(k);
}

void Engine::erase_ordered(core::JobId j) {
  const std::size_t p = pos_of_job_[j];
  ordered_.erase(ordered_.begin() + static_cast<std::ptrdiff_t>(p));
  pos_of_job_[j] = kNoPos;
  for (std::size_t k = p; k < ordered_.size(); ++k)
    pos_of_job_[ordered_[k]] = static_cast<std::uint32_t>(k);
}

// Time to the earliest assigned-node completion, from the heap top.  Stale
// entries (stint mismatch) are popped here; every currently assigned node
// owns exactly one live entry, so the heap cannot run dry while anything is
// assigned.
double Engine::next_completion_dt_fast() {
  while (!heap_.empty()) {
    const HeapEntry& e = heap_.top();
    if (e.stint != states_[e.job].stint[e.node]) {
      heap_.pop();
      continue;
    }
    return (e.coord - W_) / s_;
  }
  return std::numeric_limits<double>::infinity();
}

// Reference loop: per slice, rebuild the active list in arrival base order,
// let the policy sort it, scan all assigned nodes for the next completion.
void Engine::run_exact() {
  std::vector<core::JobId> active;
  std::uint64_t slices = 0;
  while (unfinished_ > 0) {
    if (++slices > max_slices_)
      throw std::logic_error(
          "run_event_engine: simulation failed to make progress");

    apply_machine_events();
    admit_arrivals();

    // Collect active jobs (arrival order is the deterministic base order).
    active.clear();
    for (std::size_t k = 0; k < next_arrival_idx_; ++k) {
      const core::JobId j = by_arrival_[k];
      if (!states_[j].finished) active.push_back(j);
    }
    if (active.empty()) {
      idle_jump();
      continue;
    }

    policy_.order(ctx_, active);
    ++result_.stats.decision_points;
    allocate(active);
    if (assigned_new_.empty())
      throw std::logic_error(
          "run_event_engine: active jobs but nothing to run");
    apply_assignment();

    double dt = std::numeric_limits<double>::infinity();
    for (const auto& [j, v] : assigned_)
      dt = std::min(dt, (states_[j].coord[v] - W_) / s_);
    advance(bound_dt(dt));

    // Process completions (coordinate within tolerance of the work clock),
    // in processor-slot order.
    for (const auto& [j, v] : assigned_) {
      JobState& js = states_[j];
      if (js.finished) continue;  // (cannot happen: one completion per node)
      if (js.coord[v] - W_ <= kEps) complete_node(j, v);
    }
  }
}

// Fast loop: the active list is maintained incrementally in policy order and
// the next completion comes off the heap — no per-slice rebuild, sort, or
// assigned-set scan.
void Engine::run_fast() {
  std::uint64_t slices = 0;
  while (unfinished_ > 0) {
    if (++slices > max_slices_)
      throw std::logic_error(
          "run_event_engine: simulation failed to make progress");

    apply_machine_events();
    admit_arrivals();
    if (ordered_.empty()) {
      idle_jump();
      continue;
    }

    ++result_.stats.decision_points;
    ++result_.stats.fast_decisions;
    allocate(ordered_);
    if (assigned_new_.empty())
      throw std::logic_error(
          "run_event_engine: active jobs but nothing to run");
    apply_assignment();

    advance(bound_dt(next_completion_dt_fast()));

    // Pop every completing node (they occupy the heap top, in coordinate
    // order), then process in processor-slot order — the order the
    // reference path's assigned-set scan uses, which downstream state
    // (available-vector layout, ready absorption) depends on.
    completed_.clear();
    while (!heap_.empty()) {
      const HeapEntry e = heap_.top();
      JobState& js = states_[e.job];
      if (e.stint != js.stint[e.node]) {
        heap_.pop();
        continue;
      }
      if (js.coord[e.node] - W_ > kEps) break;
      heap_.pop();
      completed_.emplace_back(e.job, e.node);
    }
    if (completed_.size() > 1)
      std::sort(completed_.begin(), completed_.end(),
                [this](const std::pair<core::JobId, dag::NodeId>& a,
                       const std::pair<core::JobId, dag::NodeId>& b) {
                  return states_[a.first].proc_of[a.second] <
                         states_[b.first].proc_of[b.second];
                });
    for (const auto& [j, v] : completed_) complete_node(j, v);
  }
}

core::ScheduleResult Engine::run() {
  inst_.validate();
  m_ = opts_.machine.processors;
  s_ = opts_.machine.speed;
  if (m_ == 0) throw std::invalid_argument("run_event_engine: zero processors");
  if (!(s_ > 0.0))
    throw std::invalid_argument("run_event_engine: speed must be > 0");

  // Degradation timeline: machine events are decision points like arrivals
  // and completions; (m, s) are piecewise constant between them.
  machine_events_ = opts_.machine.degradation;
  for (const core::MachineEvent& e : machine_events_) {
    if (e.processors == 0)
      throw std::invalid_argument(
          "run_event_engine: machine event with zero processors");
    if (!(e.speed > 0.0))
      throw std::invalid_argument(
          "run_event_engine: machine event speed must be > 0");
    if (e.time < 0.0)
      throw std::invalid_argument(
          "run_event_engine: machine event before time 0");
  }
  std::stable_sort(machine_events_.begin(), machine_events_.end(),
                   [](const core::MachineEvent& a, const core::MachineEvent& b) {
                     return a.time < b.time;
                   });

  n_ = inst_.size();
  states_.reserve(n_);
  for (const core::JobSpec& j : inst_.jobs) states_.emplace_back(j.graph);
  processed_.assign(n_, 0.0);
  absorbed_.assign(n_, 0.0);
  by_arrival_ = inst_.arrival_order();
  unfinished_ = n_;

  result_.scheduler_name = policy_.name();
  result_.completion.assign(n_, core::kNoTime);

  // Defensive cap: every slice either completes a node, admits an arrival,
  // applies a machine event, or some combination, so slices <= total nodes
  // + n + machine events + 1.
  max_slices_ = static_cast<std::uint64_t>(n_) + machine_events_.size() + 1;
  for (const core::JobSpec& j : inst_.jobs)
    max_slices_ += j.graph.node_count();
  max_slices_ = max_slices_ * 2 + 16;

  keys_.assign(n_, 0.0);
  fast_ = !opts_.exact && policy_.static_order(ctx_, keys_);
  if (fast_) pos_of_job_.assign(n_, kNoPos);

  if (fast_)
    run_fast();
  else
    run_exact();

  if (opts_.trace != nullptr) opts_.trace->coalesce();
  result_.finalize(inst_.jobs);
  return result_;
}

}  // namespace

core::ScheduleResult run_event_engine(const core::Instance& instance,
                                      OrderPolicy& policy,
                                      const EventEngineOptions& options) {
  Engine engine(instance, policy, options);
  return engine.run();
}

}  // namespace pjsched::sim
