#include "src/sim/event_engine.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

#include "src/dag/dag.h"
#include "src/metrics/streaming_stats.h"
#include "src/sim/job_arena.h"
#include "src/sim/sim_math.h"

namespace pjsched::sim {

namespace {

constexpr unsigned kNoProc = std::numeric_limits<unsigned>::max();
constexpr std::uint32_t kNoPos = std::numeric_limits<std::uint32_t>::max();

// Both execution paths share one arithmetic: a node entering the assigned
// set at virtual work time W with r units left is keyed by its completion
// coordinate C = W + r; while it stays assigned nothing is decremented, and
// its remaining work r = C - W is only materialized when it leaves (is
// preempted) or completes.  The reference path scans assigned nodes for
// min(C) and the fast path reads a heap top, but fl(C - W) / s is monotone
// in C, so the two minima are the same float — that is what makes the paths
// bit-identical rather than merely close.
//
// Engine-side per-slot state, parallel to the JobArena's slots.  The node
// arrays are *grow-only* across slot occupants: they resize up to the
// largest DAG the slot has hosted and are never shrunk or wholesale reset.
// That is safe because each array's invariant is per-occupancy:
//  * remaining/coord are written (absorb / assign) before they are read;
//  * proc_of and pos_in_available end every occupancy all-kNoProc/kNoPos
//    (complete_node restores them node by node), so stale values never
//    leak into the next occupant;
//  * stint and mark are *deliberately* never reset: stint is the lazy-
//    deletion token for heap entries and mark the epoch stamp of the
//    assignment diff, and both stay monotone per (slot, node) across
//    occupants — a heap entry or epoch mark left by a previous occupant
//    can therefore never collide with the current one.
struct SlotState {
  std::vector<dag::NodeId> available;  // ready or preempted nodes
  std::vector<double> remaining;  // work units left; valid while unassigned
  std::vector<double> coord;      // completion coordinate; valid while assigned
  std::vector<unsigned> proc_of;  // processor slot, kNoProc while unassigned
  std::vector<std::uint64_t> stint;  // bumped on every assign/leave; heap
                                     // entries carry the stint they were
                                     // pushed with and are stale otherwise
  std::vector<std::uint64_t> mark;   // epoch stamp for the assignment diff
  std::vector<std::uint32_t> pos_in_available;  // node -> index in available
  double processed = 0.0;  // exact path: cumulative work this occupancy
  double absorbed = 0.0;   // fast path: work claimed from the tracker
  double key = 0.0;        // fast path: static priority key
  std::uint32_t pos_in_ordered = kNoPos;
};

// Completion-heap entry; lazy deletion via the stint counter.
struct HeapEntry {
  double coord = 0.0;
  std::uint32_t slot = 0;
  dag::NodeId node = 0;
  std::uint64_t stint = 0;
};

// Min-heap on coord; the remaining fields only pin a total order so heap
// internals cannot depend on the standard library's tie handling.  (Slot
// rather than job id in the tie-break is observationally irrelevant: every
// same-coordinate batch is popped whole and re-sorted by processor slot
// before any completion is processed.)
struct HeapLater {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.coord != b.coord) return a.coord > b.coord;
    if (a.slot != b.slot) return a.slot > b.slot;
    if (a.node != b.node) return a.node > b.node;
    return a.stint > b.stint;
  }
};

class Engine {
 public:
  Engine(core::JobSource& source, OrderPolicy& policy,
         const EventEngineOptions& options,
         std::vector<core::Time>* completion_out,
         metrics::StreamingFlowStats* stream)
      : source_(source), policy_(policy), opts_(options), ctx_(*this),
        completion_out_(completion_out), stream_(stream),
        spans_(options.trace) {}

  core::EngineStats run();

 private:
  class Context final : public PolicyContext {
   public:
    explicit Context(Engine& e) : e_(e) {}
    core::Time now() const override { return e_.t_; }
    core::Time arrival(core::JobId j) const override {
      return e_.arena_[e_.arena_.slot_of(j)].arrival;
    }
    double weight(core::JobId j) const override {
      return e_.arena_[e_.arena_.slot_of(j)].weight;
    }
    double remaining_work(core::JobId j) const override {
      return e_.remaining_work(e_.arena_.slot_of(j));
    }

   private:
    Engine& e_;
  };

  double remaining_work(std::uint32_t s) const;
  void absorb_ready(std::uint32_t s);
  void apply_machine_events();
  void admit_arrivals();
  void idle_jump();
  void allocate(const std::vector<std::uint32_t>& active);
  void apply_assignment();
  double bound_dt(double dt);
  void advance(double dt);
  void complete_node(std::uint32_t s, dag::NodeId v);
  void record_completion(std::uint32_t s);
  void insert_ordered(std::uint32_t s);
  void erase_ordered(std::uint32_t s);
  double next_completion_dt_fast();
  void run_exact();
  void run_fast();

  core::JobSource& source_;
  OrderPolicy& policy_;
  const EventEngineOptions& opts_;
  Context ctx_;
  std::vector<core::Time>* completion_out_;   // materialized runs
  metrics::StreamingFlowStats* stream_;       // streamed runs

  unsigned m_ = 1;
  double s_ = 1.0;
  std::vector<core::MachineEvent> machine_events_;
  std::size_t next_machine_event_ = 0;

  JobArena arena_;
  std::vector<SlotState> slots_;  // parallel to arena_, grow-only

  core::Time t_ = 0.0;  // wall-clock simulated time
  double W_ = 0.0;      // virtual work clock, integral of s dt

  std::vector<std::pair<std::uint32_t, dag::NodeId>> assigned_;
  std::vector<std::pair<std::uint32_t, dag::NodeId>> assigned_new_;
  std::vector<std::size_t> taken_;  // allocator pass-1 per-rank node counts
  std::uint64_t epoch_ = 0;

  // Exact path: live slots in admission (= arrival base) order, plus the
  // engine-owned scratch the per-slice rebuild and policy call reuse.
  std::vector<std::uint32_t> live_;
  std::vector<core::JobId> active_jobs_;
  std::vector<std::uint32_t> active_slots_;

  // Fast path only.
  bool fast_ = false;
  std::vector<std::uint32_t> ordered_;  // active slots in policy order
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLater> heap_;
  std::vector<std::pair<std::uint32_t, dag::NodeId>> completed_;
  SpanRecorder spans_;

  std::uint64_t max_slices_ = 0;
  core::EngineStats stats_;
};

double Engine::remaining_work(std::uint32_t s) const {
  const SlotState& ss = slots_[s];
  if (!fast_)
    return static_cast<double>(arena_[s].graph.total_work()) - ss.processed;
  // Fast path (defensive: static-order policies must not call this, see the
  // OrderPolicy contract): unreached work plus what is left of every
  // available node, assigned nodes valued through their coordinate.
  double rem = static_cast<double>(arena_[s].graph.total_work()) - ss.absorbed;
  for (dag::NodeId v : ss.available)
    rem += (ss.proc_of[v] == kNoProc) ? ss.remaining[v] : ss.coord[v] - W_;
  return rem;
}

// Claims every currently-ready node of the packed frontier into the
// available list.
void Engine::absorb_ready(std::uint32_t s) {
  SlotState& ss = slots_[s];
  PackedDag& graph = arena_[s].graph;
  while (graph.ready_count() > 0) {
    const dag::NodeId v = graph.ready().front();
    graph.claim(v);
    const double w = static_cast<double>(graph.work_of(v));
    ss.remaining[v] = w;
    ss.absorbed += w;
    ss.pos_in_available[v] = static_cast<std::uint32_t>(ss.available.size());
    ss.available.push_back(v);
  }
}

// Applies machine events whose time has come.
void Engine::apply_machine_events() {
  while (next_machine_event_ < machine_events_.size() &&
         event_due(machine_events_[next_machine_event_].time, t_)) {
    m_ = machine_events_[next_machine_event_].processors;
    s_ = machine_events_[next_machine_event_].speed;
    ++next_machine_event_;
  }
}

// Pulls every job whose arrival has come out of the source and into the
// arena.  Per-slot node arrays grow to the occupant's DAG here (amortized:
// a recycled slot usually needs no growth); the defensive slice budget
// grows with each admission, matching what the materialized formula would
// have pre-computed.
void Engine::admit_arrivals() {
  while (!source_.done() && event_due(source_.next_arrival(), t_)) {
    const std::uint32_t s = arena_.acquire(source_.take());
    if (s >= slots_.size()) slots_.emplace_back();
    SlotState& ss = slots_[s];
    const std::size_t nodes = arena_[s].graph.node_count();
    if (ss.remaining.size() < nodes) {
      ss.remaining.resize(nodes);
      ss.coord.resize(nodes);
      ss.proc_of.resize(nodes, kNoProc);
      ss.stint.resize(nodes, 0);
      ss.mark.resize(nodes, 0);
      ss.pos_in_available.resize(nodes, kNoPos);
    }
    ss.processed = 0.0;
    ss.absorbed = 0.0;
    max_slices_ += 2 * (1 + static_cast<std::uint64_t>(nodes));
    absorb_ready(s);
    if (fast_) {
      ss.key = policy_.static_key(ctx_, arena_[s].id);
      insert_ordered(s);
    } else {
      live_.push_back(s);
    }
  }
}

// Idles until the next arrival (but not across a machine event: m may
// change, which alters the idle-time accounting).
void Engine::idle_jump() {
  if (source_.done())
    throw std::logic_error(
        "run_event_engine: no active jobs but jobs unfinished");
  core::Time t_next = source_.next_arrival();
  if (next_machine_event_ < machine_events_.size())
    t_next = std::min(t_next, machine_events_[next_machine_event_].time);
  t_next = std::max(t_next, t_);
  stats_.idle_processor_time += static_cast<double>(m_) * (t_next - t_);
  t_ = t_next;
}

// Greedy ordered allocation into assigned_new_.
// Pass 1: each job in priority order receives up to its policy cap.
// Pass 2 (work conservation): leftover processors go to still-hungry jobs in
// the same order, ignoring caps.
void Engine::allocate(const std::vector<std::uint32_t>& active) {
  assigned_new_.clear();
  taken_.clear();
  for (std::size_t rank = 0; rank < active.size(); ++rank) {
    const std::uint32_t s = active[rank];
    const SlotState& ss = slots_[s];
    const unsigned cap =
        policy_.processor_cap(ctx_, arena_[s].id, m_, active.size());
    std::size_t took = 0;
    for (dag::NodeId v : ss.available) {
      if (assigned_new_.size() >= m_ || took >= cap) break;
      assigned_new_.emplace_back(s, v);
      ++took;
    }
    taken_.push_back(took);
    if (assigned_new_.size() >= m_) break;
  }
  for (std::size_t rank = 0;
       rank < active.size() && assigned_new_.size() < m_; ++rank) {
    const std::uint32_t s = active[rank];
    const SlotState& ss = slots_[s];
    for (std::size_t vi = rank < taken_.size() ? taken_[rank] : 0;
         vi < ss.available.size() && assigned_new_.size() < m_; ++vi)
      assigned_new_.emplace_back(s, ss.available[vi]);
  }
}

// Diffs assigned_new_ against assigned_: entering nodes bind a completion
// coordinate C = W + remaining (and a heap entry on the fast path); leaving
// nodes materialize remaining = C - W.  A node that merely changes slot
// keeps its coordinate — the work axis does not care which processor runs
// it, so its heap entry stays valid across migrations.
void Engine::apply_assignment() {
  ++epoch_;
  for (std::size_t proc = 0; proc < assigned_new_.size(); ++proc) {
    const auto [s, v] = assigned_new_[proc];
    SlotState& ss = slots_[s];
    ss.mark[v] = epoch_;
    if (ss.proc_of[v] == kNoProc) {
      ss.coord[v] = W_ + ss.remaining[v];
      if (fast_) {
        ++ss.stint[v];
        heap_.push(HeapEntry{ss.coord[v], s, v, ss.stint[v]});
      }
    }
    ss.proc_of[v] = static_cast<unsigned>(proc);
  }
  for (const auto& [s, v] : assigned_) {
    SlotState& ss = slots_[s];
    if (ss.proc_of[v] == kNoProc) continue;  // completed last slice
    if (ss.mark[v] == epoch_) continue;      // still assigned
    ss.remaining[v] = ss.coord[v] - W_;
    ss.proc_of[v] = kNoProc;
    if (fast_) ++ss.stint[v];  // invalidate the heap entry
  }
  if (fast_ && opts_.trace != nullptr) {
    for (std::size_t proc = 0; proc < assigned_new_.size(); ++proc) {
      const auto [s, v] = assigned_new_[proc];
      spans_.reconcile(static_cast<unsigned>(proc), arena_[s].id, v, t_);
    }
    for (std::size_t proc = assigned_new_.size(); proc < spans_.slots();
         ++proc)
      spans_.close(static_cast<unsigned>(proc), t_);
  }
  assigned_.swap(assigned_new_);
}

// Clamps dt to the next arrival and the next machine event.
double Engine::bound_dt(double dt) {
  if (!source_.done()) dt = std::min(dt, source_.next_arrival() - t_);
  if (next_machine_event_ < machine_events_.size())
    dt = std::min(dt, machine_events_[next_machine_event_].time - t_);
  return std::max(dt, 0.0);
}

// Advances both clocks; the reference path also does its per-slice
// bookkeeping (clairvoyant processed-work accumulation and one trace
// interval per assigned node — the fast path records spans instead).
void Engine::advance(double dt) {
  const core::Time t_end = t_ + dt;
  const double dw = s_ * dt;
  if (!fast_) {
    unsigned proc = 0;
    for (const auto& [s, v] : assigned_) {
      slots_[s].processed += dw;
      if (opts_.trace != nullptr && dt > 0.0)
        opts_.trace->add_interval({arena_[s].id, v, proc, t_, t_end});
      ++proc;
    }
  }
  stats_.idle_processor_time +=
      static_cast<double>(m_ - assigned_.size()) * dt;
  W_ += dw;
  t_ = t_end;
}

void Engine::record_completion(std::uint32_t s) {
  const JobArena::Slot& slot = arena_[s];
  if (completion_out_ != nullptr) (*completion_out_)[slot.id] = t_;
  if (stream_ != nullptr)
    stream_->record(slot.id, slot.arrival, slot.weight, t_);
}

// Completion bookkeeping at the current time t_.  When the job's last node
// finishes, the completion is recorded and the slot retired — the slot's
// packed arrays are released for the next occupant right here, which is
// what keeps a long streamed run's footprint at O(live jobs).
void Engine::complete_node(std::uint32_t s, dag::NodeId v) {
  SlotState& ss = slots_[s];
  const unsigned proc = ss.proc_of[v];
  ss.remaining[v] = 0.0;
  ss.proc_of[v] = kNoProc;
  if (fast_) {
    ++ss.stint[v];
    spans_.close(proc, t_);
  }
  // Swap-and-pop via the position index (O(1)): `available` is an unordered
  // working set — the allocation pass takes nodes from it in whatever order
  // it holds, and no invariant depends on that order (nodes of one job are
  // interchangeable up to their precedence constraints, which the
  // ReadyTracker enforces before a node ever enters the set).
  const std::uint32_t pos = ss.pos_in_available[v];
  const dag::NodeId back = ss.available.back();
  ss.available[pos] = back;
  ss.pos_in_available[back] = pos;
  ss.available.pop_back();
  ss.pos_in_available[v] = kNoPos;
  arena_[s].graph.complete(v);
  absorb_ready(s);
  if (arena_[s].graph.done()) {
    record_completion(s);
    if (fast_)
      erase_ordered(s);
    else
      live_.erase(std::find(live_.begin(), live_.end(), s));
    arena_.retire(s);
  }
}

// Inserts s into the incrementally maintained policy order.  upper_bound on
// the static key over admissions in (arrival, index) order reproduces a
// stable sort by that key over the arrival base order — exactly what the
// reference path's policy.order() computes.
void Engine::insert_ordered(std::uint32_t s) {
  const double key = slots_[s].key;
  std::size_t lo = 0;
  std::size_t hi = ordered_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (slots_[ordered_[mid]].key <= key)
      lo = mid + 1;
    else
      hi = mid;
  }
  ordered_.insert(ordered_.begin() + static_cast<std::ptrdiff_t>(lo), s);
  for (std::size_t k = lo; k < ordered_.size(); ++k)
    slots_[ordered_[k]].pos_in_ordered = static_cast<std::uint32_t>(k);
}

void Engine::erase_ordered(std::uint32_t s) {
  const std::size_t p = slots_[s].pos_in_ordered;
  ordered_.erase(ordered_.begin() + static_cast<std::ptrdiff_t>(p));
  slots_[s].pos_in_ordered = kNoPos;
  for (std::size_t k = p; k < ordered_.size(); ++k)
    slots_[ordered_[k]].pos_in_ordered = static_cast<std::uint32_t>(k);
}

// Time to the earliest assigned-node completion, from the heap top.  Stale
// entries (stint mismatch) are popped here; every currently assigned node
// owns exactly one live entry, so the heap cannot run dry while anything is
// assigned.
double Engine::next_completion_dt_fast() {
  while (!heap_.empty()) {
    const HeapEntry& e = heap_.top();
    if (e.stint != slots_[e.slot].stint[e.node]) {
      heap_.pop();
      continue;
    }
    return completion_dt(e.coord, W_, s_);
  }
  return std::numeric_limits<double>::infinity();
}

// Reference loop: per slice, rebuild the active list in arrival base order,
// let the policy sort it, scan all assigned nodes for the next completion.
void Engine::run_exact() {
  std::uint64_t slices = 0;
  while (arena_.live() > 0 || !source_.done()) {
    if (++slices > max_slices_)
      throw std::logic_error(
          "run_event_engine: simulation failed to make progress");

    apply_machine_events();
    admit_arrivals();

    // Live jobs in admission order — the deterministic (arrival, index)
    // base order the policy's stable sort refines.
    active_jobs_.clear();
    for (std::uint32_t s : live_) active_jobs_.push_back(arena_[s].id);
    if (active_jobs_.empty()) {
      idle_jump();
      continue;
    }

    policy_.order(ctx_, active_jobs_);
    ++stats_.decision_points;
    active_slots_.clear();
    for (core::JobId j : active_jobs_)
      active_slots_.push_back(arena_.slot_of(j));
    allocate(active_slots_);
    if (assigned_new_.empty())
      throw std::logic_error(
          "run_event_engine: active jobs but nothing to run");
    apply_assignment();

    double dt = std::numeric_limits<double>::infinity();
    for (const auto& [s, v] : assigned_)
      dt = std::min(dt, completion_dt(slots_[s].coord[v], W_, s_));
    advance(bound_dt(dt));

    // Process completions (coordinate within tolerance of the work clock),
    // in processor-slot order.  A slot retired by an earlier pair in this
    // scan cannot recur in a later one: retirement means every node
    // completed, and each (slot, node) pair appears at most once.
    for (const auto& [s, v] : assigned_) {
      SlotState& ss = slots_[s];
      if (ss.proc_of[v] == kNoProc) continue;  // completed earlier this scan
      if (coord_due(ss.coord[v], W_)) complete_node(s, v);
    }
  }
}

// Fast loop: the active list is maintained incrementally in policy order and
// the next completion comes off the heap — no per-slice rebuild, sort, or
// assigned-set scan.  The steady state allocates nothing: every container
// here is engine-owned and reuses its capacity across slices (the scaling
// bench's allocation probe pins this).
void Engine::run_fast() {
  std::uint64_t slices = 0;
  while (arena_.live() > 0 || !source_.done()) {
    if (++slices > max_slices_)
      throw std::logic_error(
          "run_event_engine: simulation failed to make progress");

    apply_machine_events();
    admit_arrivals();
    if (ordered_.empty()) {
      idle_jump();
      continue;
    }

    ++stats_.decision_points;
    ++stats_.fast_decisions;
    allocate(ordered_);
    if (assigned_new_.empty())
      throw std::logic_error(
          "run_event_engine: active jobs but nothing to run");
    apply_assignment();

    advance(bound_dt(next_completion_dt_fast()));

    // Pop every completing node (they occupy the heap top, in coordinate
    // order), then process in processor-slot order — the order the
    // reference path's assigned-set scan uses, which downstream state
    // (available-vector layout, ready absorption) depends on.
    completed_.clear();
    while (!heap_.empty()) {
      const HeapEntry e = heap_.top();
      SlotState& ss = slots_[e.slot];
      if (e.stint != ss.stint[e.node]) {
        heap_.pop();
        continue;
      }
      if (!coord_due(ss.coord[e.node], W_)) break;
      heap_.pop();
      completed_.emplace_back(e.slot, e.node);
    }
    if (completed_.size() > 1)
      std::sort(completed_.begin(), completed_.end(),
                [this](const std::pair<std::uint32_t, dag::NodeId>& a,
                       const std::pair<std::uint32_t, dag::NodeId>& b) {
                  return slots_[a.first].proc_of[a.second] <
                         slots_[b.first].proc_of[b.second];
                });
    for (const auto& [s, v] : completed_) complete_node(s, v);
  }
}

core::EngineStats Engine::run() {
  m_ = opts_.machine.processors;
  s_ = opts_.machine.speed;
  if (m_ == 0) throw std::invalid_argument("run_event_engine: zero processors");
  if (!(s_ > 0.0))
    throw std::invalid_argument("run_event_engine: speed must be > 0");

  // Degradation timeline: machine events are decision points like arrivals
  // and completions; (m, s) are piecewise constant between them.
  machine_events_ = opts_.machine.degradation;
  for (const core::MachineEvent& e : machine_events_) {
    if (e.processors == 0)
      throw std::invalid_argument(
          "run_event_engine: machine event with zero processors");
    if (!(e.speed > 0.0))
      throw std::invalid_argument(
          "run_event_engine: machine event speed must be > 0");
    if (e.time < 0.0)
      throw std::invalid_argument(
          "run_event_engine: machine event before time 0");
  }
  std::stable_sort(machine_events_.begin(), machine_events_.end(),
                   [](const core::MachineEvent& a, const core::MachineEvent& b) {
                     return a.time < b.time;
                   });

  // Defensive cap: every slice either completes a node, admits an arrival,
  // applies a machine event, or some combination, so slices <= total nodes
  // + jobs + machine events + 1.  Jobs stream in, so the budget starts with
  // the job-independent part and admit_arrivals() grows it per admission —
  // the total matches what the materialized formula would pre-compute.
  max_slices_ =
      (static_cast<std::uint64_t>(machine_events_.size()) + 1) * 2 + 16;

  fast_ = !opts_.exact && policy_.has_static_order();

  if (fast_)
    run_fast();
  else
    run_exact();

  if (opts_.trace != nullptr) opts_.trace->coalesce();
  stats_.arena_slots = arena_.size();
  stats_.peak_live_jobs = arena_.peak_live();
  return stats_;
}

}  // namespace

core::ScheduleResult run_event_engine(const core::Instance& instance,
                                      OrderPolicy& policy,
                                      const EventEngineOptions& options) {
  instance.validate();
  core::InstanceSource source(instance);
  core::ScheduleResult result;
  result.scheduler_name = policy.name();
  result.completion.assign(instance.size(), core::kNoTime);
  Engine engine(source, policy, options, &result.completion, nullptr);
  result.stats = engine.run();
  result.finalize(instance.jobs);
  return result;
}

core::StreamRunResult run_event_engine_streamed(
    core::JobSource& source, OrderPolicy& policy,
    const EventEngineOptions& options, metrics::StreamingFlowStats* stats) {
  metrics::StreamingFlowStats local;
  metrics::StreamingFlowStats* sink = stats != nullptr ? stats : &local;
  core::StreamRunResult out;
  out.scheduler_name = policy.name();
  Engine engine(source, policy, options, nullptr, sink);
  out.stats = engine.run();
  out.jobs = sink->count();
  out.max_flow = sink->max_flow();
  out.max_weighted_flow = sink->max_weighted_flow();
  out.mean_flow = sink->mean_flow();
  out.makespan = sink->makespan();
  out.argmax_flow = sink->argmax_flow();
  out.flow = sink->summary();
  out.flow_quantiles_exact = sink->quantiles_exact();
  return out;
}

}  // namespace pjsched::sim
