#include "src/sim/step_engine.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/dag/dag.h"
#include "src/metrics/streaming_stats.h"
#include "src/sim/job_arena.h"
#include "src/sim/sim_math.h"

namespace pjsched::sim {

namespace {

// Deque/queue entries reference arena slots, not job ids: a slot is only
// retired when its job's last node completes, and every entry is a
// claimed-but-unexecuted node, so no entry can outlive its slot.
struct NodeRef {
  std::uint32_t slot;
  dag::NodeId node;
};

struct Worker {
  std::deque<NodeRef> deque;
  NodeRef current{0, 0};
  bool has_current = false;
  dag::Work remaining = 0;         // work units left on current
  unsigned fail_count = 0;         // consecutive failed steal attempts
  std::uint64_t work_start = 0;    // step at which current's execution began
};

// The global admission queue.  FIFO admission is a plain deque; weighted
// admission keeps a binary max-heap on (weight, enqueue order) so each
// admission pops the heaviest job — earliest-queued on ties — in O(log q)
// instead of rescanning the whole queue.  Jobs only leave via admission, so
// no lazy deletion is needed and the heap pop picks exactly the job the old
// linear scan picked (strict `>` comparison kept the earliest maximum).
// Weights are captured at push time: entries hold slots, and the weight is
// part of the slot's occupancy.
class GlobalQueue {
 public:
  explicit GlobalQueue(bool by_weight) : by_weight_(by_weight) {}

  bool empty() const { return by_weight_ ? heap_.empty() : fifo_.empty(); }

  void push(std::uint32_t slot, double weight) {
    if (!by_weight_) {
      fifo_.push_back(slot);
      return;
    }
    heap_.push_back({weight, seq_++, slot});
    std::push_heap(heap_.begin(), heap_.end());
  }

  std::uint32_t pop() {
    if (!by_weight_) {
      const std::uint32_t s = fifo_.front();
      fifo_.pop_front();
      return s;
    }
    std::pop_heap(heap_.begin(), heap_.end());
    const std::uint32_t s = heap_.back().slot;
    heap_.pop_back();
    return s;
  }

 private:
  struct Entry {
    double weight;
    std::uint64_t seq;
    std::uint32_t slot;
    // Max-heap priority: heavier first, then earlier-queued.
    bool operator<(const Entry& o) const {
      if (weight != o.weight) return weight < o.weight;
      return seq > o.seq;
    }
  };

  const bool by_weight_;
  std::deque<std::uint32_t> fifo_;
  std::vector<Entry> heap_;
  std::uint64_t seq_ = 0;
};

core::EngineStats run_impl(core::JobSource& source,
                           const StepEngineOptions& options,
                           std::vector<core::Time>* completion_out,
                           metrics::StreamingFlowStats* stream) {
  const unsigned m = options.machine.processors;
  const double s = options.machine.speed;
  if (m == 0) throw std::invalid_argument("run_step_engine: zero processors");
  if (!(s > 0.0)) throw std::invalid_argument("run_step_engine: speed must be > 0");
  const unsigned k = options.steal_k;

  // Degradation events (processor count changes only; the step length is
  // tied to the configured speed, so speed changes are rejected).
  std::vector<core::MachineEvent> machine_events = options.machine.degradation;
  for (const core::MachineEvent& e : machine_events) {
    if (e.processors == 0)
      throw std::invalid_argument("run_step_engine: machine event with zero workers");
    if (e.time < 0.0)
      throw std::invalid_argument("run_step_engine: machine event before time 0");
    if (e.speed != s)
      throw std::invalid_argument(
          "run_step_engine: speed changes are not supported (step length is 1/s)");
  }
  std::stable_sort(machine_events.begin(), machine_events.end(),
                   [](const core::MachineEvent& a, const core::MachineEvent& b) {
                     return a.time < b.time;
                   });
  // Total worker slots ever needed (dead workers keep their deques).
  unsigned total_workers = m;
  for (const core::MachineEvent& e : machine_events)
    total_workers = std::max(total_workers, e.processors);

  // Jobs enter the global queue at the first step boundary at or after
  // their arrival time (step T spans real time [T/s, (T+1)/s)).
  const auto arrival_to_step = [s](core::Time arrival) {
    return time_to_step(arrival, s);
  };

  core::EngineStats stats;
  JobArena arena;
  std::vector<std::uint64_t> arrival_step;  // per slot, set at acquisition

  Rng rng(options.seed);
  std::vector<Worker> workers(total_workers);
  // Worker w is live iff w < live_count: lowest-index workers survive a
  // degradation event (deterministic fail-stop).
  unsigned live_count = m;
  std::vector<std::uint64_t> machine_event_step(machine_events.size());
  for (std::size_t e = 0; e < machine_events.size(); ++e)
    machine_event_step[e] = time_to_step(machine_events[e].time, s);
  std::size_t next_machine_event = 0;
  GlobalQueue global_queue(options.admit_by_weight);

  // Defensive step budget.  The automatic budget is the materialized
  // formula — last arrival + total work per failure interval + per-job
  // admission slack — but jobs stream in, so its components grow with each
  // acquisition (and with idle fast-forward targets); once every job has
  // been acquired it equals what the materialized computation would have
  // produced up front.  Each failure event can discard one in-flight
  // node's progress, so budget one extra total_work per event.
  const bool auto_budget = options.max_steps == 0;
  std::uint64_t budget_last_arrival = 0;
  std::uint64_t budget_total_work = 0;
  std::uint64_t budget_jobs = 0;
  std::uint64_t max_steps = options.max_steps;
  const auto recompute_budget = [&] {
    max_steps = budget_last_arrival +
                budget_total_work * (machine_events.size() + 1) +
                (budget_jobs + 1) * (k + total_workers + 1) + 1024;
    if (!machine_event_step.empty()) max_steps += machine_event_step.back();
    max_steps *= 4;
  };
  if (auto_budget) recompute_budget();

  std::vector<unsigned> perm(total_workers);
  std::iota(perm.begin(), perm.end(), 0);
  std::vector<dag::NodeId> enabled;

  // Claims all of a slot's currently-ready nodes: the first becomes the
  // worker's current node, the rest go to the bottom of its deque.
  const auto take_ready = [&](Worker& w, std::uint32_t slot,
                              std::uint64_t step) {
    PackedDag& graph = arena[slot].graph;
    bool first = true;
    while (graph.ready_count() > 0) {
      const dag::NodeId v = graph.ready().front();
      graph.claim(v);
      if (first) {
        w.current = {slot, v};
        w.has_current = true;
        w.remaining = graph.work_of(v);
        w.work_start = step;
        first = false;
      } else {
        w.deque.push_back({slot, v});
      }
    }
  };

  std::uint64_t step = 0;
  for (; arena.live() > 0 || !source.done(); ++step) {
    if (step >= max_steps)
      throw std::logic_error("run_step_engine: step budget exhausted");

    // Apply machine events whose step has come.  Workers at or above the
    // new count fail stop: the in-flight node loses its progress and
    // returns to the front of the failed worker's deque, where it stays
    // stealable; workers below the count (re)start fresh.
    while (next_machine_event < machine_events.size() &&
           machine_event_step[next_machine_event] <= step) {
      const unsigned new_count = machine_events[next_machine_event].processors;
      for (unsigned wi = new_count; wi < live_count; ++wi) {
        Worker& w = workers[wi];
        if (w.has_current) {
          w.deque.push_front(w.current);
          w.has_current = false;
          w.remaining = 0;
        }
      }
      live_count = new_count;
      ++next_machine_event;
    }

    // Pull ALL arrivals whose step has come into the arena and global
    // queue as one batch: the budget accumulators are folded per arrival
    // but the (multiplicative) budget formula is recomputed once per
    // batch.  Bit-identical to per-arrival recomputation — the budget is
    // only consulted at the top of the step loop, never mid-batch.
    bool any_arrivals = false;
    while (!source.done() && arrival_to_step(source.next_arrival()) <= step) {
      const std::uint32_t slot = arena.acquire(source.take());
      if (slot >= arrival_step.size()) arrival_step.emplace_back();
      arrival_step[slot] = arrival_to_step(arena[slot].arrival);
      if (auto_budget) {
        budget_last_arrival =
            std::max(budget_last_arrival, arrival_step[slot]);
        budget_total_work += arena[slot].graph.total_work();
        ++budget_jobs;
        any_arrivals = true;
      }
      global_queue.push(slot, arena[slot].weight);
    }
    if (auto_budget && any_arrivals) recompute_budget();

    // Fast-forward across machine-wide idle gaps: if no worker holds work,
    // all deques are empty, and no job is admissible, nothing can change
    // until the next arrival.  The skipped steps are pure idling; a real
    // machine would burn them on failed steals, so saturate fail counters.
    if (global_queue.empty() && !source.done()) {
      bool any_work = false;
      for (const Worker& w : workers)
        if (w.has_current || !w.deque.empty()) {
          any_work = true;
          break;
        }
      if (!any_work) {
        std::uint64_t next = arrival_to_step(source.next_arrival());
        // Never skip across a machine event: the live set changes there.
        if (next_machine_event < machine_events.size())
          next = std::min(next, machine_event_step[next_machine_event]);
        if (next > step) {
          const std::uint64_t skipped = next - step;
          stats.idle_steps += skipped * live_count;
          for (Worker& w : workers) w.fail_count = std::max(w.fail_count, k);
          // The jump target must fit the incremental budget even though
          // the job landing there is not yet acquired.
          if (auto_budget && next > budget_last_arrival) {
            budget_last_arrival = next;
            recompute_budget();
          }
          step = next - 1;  // ++step in the loop header lands on `next`
          continue;
        }
      }
    }

    // The within-step permutation is observable only when some live worker
    // is *not* simply executing its current node: an idle worker pops /
    // admits / steals (racing the others for deques and the global queue),
    // and a completing worker claims enabled successors in permutation
    // order.  On an all-busy step with every remaining counter >= 2, each
    // worker just decrements its own counter, so the shuffle — and the RNG
    // draws producing it — is skipped in both engine modes, keeping their
    // streams aligned.
    bool interactive = false;
    std::uint64_t min_remaining = std::numeric_limits<std::uint64_t>::max();
    for (unsigned wi = 0; wi < live_count; ++wi) {
      if (!workers[wi].has_current) {
        interactive = true;
        break;
      }
      min_remaining = std::min(min_remaining, workers[wi].remaining);
    }

    // Work-quantum fast path: with every live worker busy and nothing due
    // before the earliest completion, advance the machine to one step
    // before the first observable step (completion, arrival, or machine
    // event) in one shot.  The skipped steps perform live_count work units
    // each and nothing else; that final observable step runs through the
    // per-step machinery below.
    if (!interactive && min_remaining > 1 && !options.exact_steps) {
      std::uint64_t delta = min_remaining;
      if (!source.done())
        delta = std::min(delta, arrival_to_step(source.next_arrival()) - step);
      if (next_machine_event < machine_events.size())
        delta = std::min(delta, machine_event_step[next_machine_event] - step);
      if (delta > 1) {
        const std::uint64_t advance = delta - 1;
        for (unsigned wi = 0; wi < live_count; ++wi)
          workers[wi].remaining -= advance;
        stats.work_steps += advance * live_count;
        ++stats.macro_jumps;
        step += advance;
        if (step >= max_steps)
          throw std::logic_error("run_step_engine: step budget exhausted");
        min_remaining -= advance;
      }
    }
    if (min_remaining <= 1) interactive = true;

    // Random worker order within the step (Fisher–Yates), drawn only when
    // observable (see above).
    if (interactive) {
      for (unsigned i = total_workers - 1; i > 0; --i) {
        const auto j = static_cast<unsigned>(rng.uniform_int(i + 1));
        std::swap(perm[i], perm[j]);
      }
    }

    for (unsigned wi = 0; wi < total_workers; ++wi) {
      if (perm[wi] >= live_count) continue;  // failed worker: takes no steps
      Worker& w = workers[perm[wi]];
      if (!w.has_current) {
        if (!w.deque.empty()) {
          // Local pop from the bottom: free.
          const NodeRef r = w.deque.back();
          w.deque.pop_back();
          w.current = r;
          w.has_current = true;
          w.remaining = arena[r.slot].graph.work_of(r.node);
          w.work_start = step;
        } else if (w.fail_count >= k && !global_queue.empty()) {
          // Admit from the global queue: the FIFO head, or — under the
          // weighted-admission extension — the heaviest queued job
          // (ties: earliest queued).  Admission itself is free.
          const std::uint32_t slot = global_queue.pop();
          ++stats.admissions;
          if (options.trace != nullptr)
            options.trace->add_admission({perm[wi], arena[slot].id, step});
          w.fail_count = 0;
          take_ready(w, slot, step);
        } else {
          // Steal attempt: consumes the whole step.
          ++stats.steal_attempts;
          ++stats.idle_steps;
          bool success = false;
          unsigned victim = perm[wi];
          if (total_workers > 1) {
            // Victims include failed workers: their deques survive the
            // failure, and stealing from them is exactly how queued work is
            // recovered.
            victim = static_cast<unsigned>(rng.uniform_int(total_workers - 1));
            if (victim >= perm[wi]) ++victim;  // uniform over the others
            Worker& v = workers[victim];
            if (!v.deque.empty()) {
              // Steal from the top (the oldest work).  Under steal-half,
              // take ceil(|deque|/2) nodes in one attempt.
              const std::size_t grab =
                  options.steal_half ? (v.deque.size() + 1) / 2 : 1;
              const NodeRef r = v.deque.front();
              v.deque.pop_front();
              w.current = r;
              w.has_current = true;
              w.remaining = arena[r.slot].graph.work_of(r.node);
              w.work_start = step + 1;  // execution begins next step
              for (std::size_t g = 1; g < grab; ++g) {
                w.deque.push_back(v.deque.front());
                v.deque.pop_front();
              }
              success = true;
            }
          }
          if (options.trace != nullptr)
            options.trace->add_steal({perm[wi], victim, success, step});
          if (success)
            ++stats.successful_steals, w.fail_count = 0;
          else
            ++w.fail_count;
          continue;  // the step is spent; no work this step
        }
      }

      // Execute one unit of work on the current node.
      --w.remaining;
      ++stats.work_steps;
      if (w.remaining == 0) {
        const std::uint32_t slot = w.current.slot;
        const dag::NodeId v = w.current.node;
        if (options.trace != nullptr)
          options.trace->add_interval({arena[slot].id, v, perm[wi],
                                       step_time(w.work_start, s),
                                       step_time(step + 1, s)});
        w.has_current = false;
        PackedDag& graph = arena[slot].graph;
        enabled.clear();
        graph.complete(v, &enabled);
        if (!enabled.empty()) take_ready(w, slot, step + 1);
        if (graph.done()) {
          const core::Time completion = step_time(step + 1, s);
          if (completion_out != nullptr)
            (*completion_out)[arena[slot].id] = completion;
          if (stream != nullptr)
            stream->record(arena[slot].id, arena[slot].arrival,
                           arena[slot].weight, completion);
          arena.retire(slot);
        }
      }
    }
  }

  if (options.trace != nullptr) options.trace->coalesce();
  stats.arena_slots = arena.size();
  stats.peak_live_jobs = arena.peak_live();
  return stats;
}

std::string step_scheduler_name(const StepEngineOptions& options) {
  std::string name =
      options.steal_k == 0
          ? "admit-first"
          : ("steal-" + std::to_string(options.steal_k) + "-first");
  if (options.admit_by_weight) name += "-bwf";
  if (options.steal_half) name += "-half";
  return name;
}

}  // namespace

core::ScheduleResult run_step_engine(const core::Instance& instance,
                                     const StepEngineOptions& options) {
  instance.validate();
  core::InstanceSource source(instance);
  core::ScheduleResult result;
  result.scheduler_name = step_scheduler_name(options);
  result.completion.assign(instance.size(), core::kNoTime);
  result.stats = run_impl(source, options, &result.completion, nullptr);
  result.finalize(instance.jobs);
  return result;
}

core::StreamRunResult run_step_engine_streamed(
    core::JobSource& source, const StepEngineOptions& options,
    metrics::StreamingFlowStats* stats) {
  metrics::StreamingFlowStats local;
  metrics::StreamingFlowStats* sink = stats != nullptr ? stats : &local;
  core::StreamRunResult out;
  out.scheduler_name = step_scheduler_name(options);
  out.stats = run_impl(source, options, nullptr, sink);
  out.jobs = sink->count();
  out.max_flow = sink->max_flow();
  out.max_weighted_flow = sink->max_weighted_flow();
  out.mean_flow = sink->mean_flow();
  out.makespan = sink->makespan();
  out.argmax_flow = sink->argmax_flow();
  out.flow = sink->summary();
  out.flow_quantiles_exact = sink->quantiles_exact();
  return out;
}

}  // namespace pjsched::sim
