// Centralized, preemptive, event-driven m-processor simulation.
//
// This engine models the paper's *idealized* centralized schedulers (FIFO,
// Section 3; BWF, Section 7; plus baselines): at every decision point the
// scheduler orders the active jobs by its policy and greedily hands each
// job's available nodes to unique processors until processors or nodes run
// out.  Reallocation (including preemption of partially executed nodes, at
// zero cost) happens at every event — job arrival or node completion —
// which is exactly the set of instants at which such an allocation can
// change, so the event-driven simulation is exact, not a discretization.
//
// Processors run at speed `s`: an assigned node's remaining work decreases
// at rate s per unit time.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/core/types.h"
#include "src/sim/trace.h"

namespace pjsched::sim {

/// Read-only view the ordering policy gets at each decision point.
class PolicyContext {
 public:
  virtual ~PolicyContext() = default;
  virtual core::Time now() const = 0;
  virtual core::Time arrival(core::JobId j) const = 0;
  virtual double weight(core::JobId j) const = 0;
  /// Remaining unprocessed work of job j, in work units.  Only clairvoyant
  /// policies (e.g. shortest-job-first baselines) may use this.
  virtual double remaining_work(core::JobId j) const = 0;
};

/// Orders active jobs, highest priority first.  Implementations must be
/// deterministic given their own state; they may keep state across calls
/// (e.g. round robin) since the engine invokes order() exactly once per
/// decision point in simulated-time order.
class OrderPolicy {
 public:
  virtual ~OrderPolicy() = default;
  virtual std::string name() const = 0;
  virtual void order(const PolicyContext& ctx,
                     std::vector<core::JobId>& active) = 0;

  /// Maximum processors the engine may hand to `job` at this decision
  /// point (before any leftover redistribution: after every job in
  /// priority order has been offered its cap, remaining processors are
  /// re-offered cap-free in the same order, keeping the machine
  /// work-conserving).  Default: unlimited — the greedy ordered allocation
  /// of FIFO/BWF.  Equipartition-style policies override this.
  virtual unsigned processor_cap(const PolicyContext& ctx, core::JobId job,
                                 unsigned processors,
                                 std::size_t active_jobs) {
    (void)ctx;
    (void)job;
    (void)active_jobs;
    return processors;
  }
};

struct EventEngineOptions {
  /// Machine to simulate.  `machine.degradation` events are honored exactly:
  /// each event is a decision point at which (m, s) change, so processor
  /// loss/restore and slowdown/recovery are simulated without
  /// discretization error.
  core::MachineConfig machine;
  /// If non-null, the engine records per-slice work intervals into *trace
  /// (coalesced at the end).
  Trace* trace = nullptr;
};

/// Runs the instance to completion under the given policy.  Throws
/// std::invalid_argument on invalid instances/options.
core::ScheduleResult run_event_engine(const core::Instance& instance,
                                      OrderPolicy& policy,
                                      const EventEngineOptions& options);

}  // namespace pjsched::sim
