// Centralized, preemptive, event-driven m-processor simulation.
//
// This engine models the paper's *idealized* centralized schedulers (FIFO,
// Section 3; BWF, Section 7; plus baselines): at every decision point the
// scheduler orders the active jobs by its policy and greedily hands each
// job's available nodes to unique processors until processors or nodes run
// out.  Reallocation (including preemption of partially executed nodes, at
// zero cost) happens at every event — job arrival, node completion, or
// machine event — which is exactly the set of instants at which such an
// allocation can change, so the event-driven simulation is exact, not a
// discretization.
//
// Processors run at speed `s`: an assigned node's remaining work decreases
// at rate s per unit time.
//
// The engine has two execution paths producing bit-identical results (see
// docs/simulation-model.md, "Performance model"):
//
//  * The *reference* path (EventEngineOptions::exact) re-derives everything
//    at every decision point: it rebuilds the active list, asks the policy
//    to order it, and scans every assigned node for the next completion —
//    O(active log active + assigned) per event.
//  * The *fast* path (the default, taken whenever the policy declares a
//    static order) maintains a virtual work clock W = ∫ s dt and keys each
//    continuously assigned node by its absolute completion coordinate
//    W₀ + remaining in a min-heap, so the next completion is O(log) and
//    per-slice remaining-work decrements disappear; the active list is
//    maintained incrementally in policy order, and traces are emitted as
//    coalesced spans instead of one interval per slice.  Remaining work is
//    only materialized when a node is preempted or completes.
//
// Both paths share the same floating-point formulas and materialization
// points, so completions, stats, and coalesced traces agree bitwise;
// tests/event_fast_path_test.cc cross-checks them.
//
// Memory model: both paths pull jobs from a core::JobSource and keep per-job
// state in a recycling slot arena (sim::JobArena) — a job occupies a slot
// only between arrival and completion, and its DAG storage is freed when
// its last node finishes.  Resident state is O(live jobs + heap entries),
// independent of the instance length, which is what lets streamed 10^6-job
// runs fit in memory (see docs/simulation-model.md, "Scaling to 10^6+
// jobs").  run_event_engine(Instance, ...) is the materialized wrapper: it
// streams the instance through the same loop (borrowing the DAGs instead of
// owning them) and returns the classic per-job ScheduleResult, bit-identical
// to run_event_engine_streamed on an equivalent source.
//
// Thread safety: each run keeps all simulation state on the stack of the
// calling thread and only reads the (immutable, sealed) instance, so
// concurrent calls on distinct policy objects are safe — the parallel
// multi-trial harness (runtime::run_trials_parallel) relies on this.  The
// OrderPolicy is mutated (order() may keep state) and must not be shared
// across concurrent runs; a JobSource is consumed by its run and must not
// be shared at all.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/core/job_source.h"
#include "src/core/types.h"
#include "src/sim/trace.h"

namespace pjsched::metrics {
class StreamingFlowStats;
}  // namespace pjsched::metrics

namespace pjsched::sim {

/// Read-only view the ordering policy gets at each decision point.  Job
/// lookups are valid for *live* jobs — the jobs the engine passes to the
/// policy — and throw std::logic_error otherwise (a policy holding ids of
/// completed jobs is a bug, not a silent stale read).
class PolicyContext {
 public:
  virtual ~PolicyContext() = default;
  virtual core::Time now() const = 0;
  virtual core::Time arrival(core::JobId j) const = 0;
  virtual double weight(core::JobId j) const = 0;
  /// Remaining unprocessed work of job j, in work units.  Only clairvoyant
  /// policies (e.g. shortest-job-first baselines) may use this.
  virtual double remaining_work(core::JobId j) const = 0;
};

/// Orders active jobs, highest priority first.  Implementations must be
/// deterministic given their own state; they may keep state across calls
/// (e.g. round robin) since the engine invokes order() exactly once per
/// decision point in simulated-time order.
class OrderPolicy {
 public:
  virtual ~OrderPolicy() = default;
  virtual std::string name() const = 0;
  virtual void order(const PolicyContext& ctx,
                     std::vector<core::JobId>& active) = 0;

  /// Static-order hint.  Return true if the policy's priority order is
  /// *time-invariant* — a fixed strict weak ordering over jobs, as for FIFO
  /// (by arrival), BWF (by weight), and the arrival-ordered baselines.  The
  /// engine then calls static_key() once per job at admission, maintains
  /// the active list incrementally in ascending-key order (ties broken by
  /// admission order, i.e. the (arrival, index) base order), and skips the
  /// per-slice re-sort; order() is never called.  Return false (the
  /// default) for dynamic policies — they keep the exact per-slice path.
  virtual bool has_static_order() const { return false; }

  /// The time-invariant priority key of `job` (lower = higher priority).
  /// Called exactly once per job, at its admission, so a streamed run never
  /// materializes a whole-instance key vector.  Must satisfy: a stable sort
  /// of any active set by this key over the admission base order reproduces
  /// order() exactly.  Only consulted when has_static_order() is true; a
  /// policy declaring a static order must not consult
  /// PolicyContext::remaining_work() here or in order() (its order would
  /// not be time-invariant).  processor_cap() is still consulted at every
  /// decision point either way.
  virtual double static_key(const PolicyContext& ctx, core::JobId job) {
    (void)ctx;
    (void)job;
    return 0.0;
  }

  /// Maximum processors the engine may hand to `job` at this decision
  /// point (before any leftover redistribution: after every job in
  /// priority order has been offered its cap, remaining processors are
  /// re-offered cap-free in the same order, keeping the machine
  /// work-conserving).  Default: unlimited — the greedy ordered allocation
  /// of FIFO/BWF.  Equipartition-style policies override this.
  virtual unsigned processor_cap(const PolicyContext& ctx, core::JobId job,
                                 unsigned processors,
                                 std::size_t active_jobs) {
    (void)ctx;
    (void)job;
    (void)active_jobs;
    return processors;
  }
};

struct EventEngineOptions {
  /// Machine to simulate.  `machine.degradation` events are honored exactly:
  /// each event is a decision point at which (m, s) change, so processor
  /// loss/restore and slowdown/recovery are simulated without
  /// discretization error.  Speed changes compose with the fast path for
  /// free: completion coordinates live on the work axis, which is
  /// speed-independent.
  core::MachineConfig machine;
  /// If non-null, the engine records per-slice work intervals into *trace
  /// (coalesced at the end).  Traces are O(all jobs) — leave null for
  /// memory-bounded streamed runs.
  Trace* trace = nullptr;
  /// Reference mode: re-derive the active list, policy order, and next
  /// completion from scratch at every decision point instead of taking the
  /// incremental virtual-work-clock path.  Results are bit-identical either
  /// way (the cross-check tests rely on this); exact mode exists for that
  /// cross-check and for decision-level debugging, mirroring
  /// StepEngineOptions::exact_steps.
  bool exact = false;
};

/// Runs the instance to completion under the given policy.  Throws
/// std::invalid_argument on invalid instances/options.
core::ScheduleResult run_event_engine(const core::Instance& instance,
                                      OrderPolicy& policy,
                                      const EventEngineOptions& options);

/// Memory-bounded entry point: runs `source` to exhaustion under the given
/// policy, recording each completion into `stats` (an internal default
/// StreamingFlowStats when null) instead of a per-job completion vector.
/// The returned extremes (max flow, max weighted flow, argmax, makespan)
/// are bit-identical to what run_event_engine computes on the materialized
/// equivalent of `source`; see StreamRunResult for the exactness contract
/// of the remaining fields.  Throws std::invalid_argument on invalid jobs
/// (unsealed DAG, negative arrival, non-positive weight, out-of-order
/// arrivals) or options.
core::StreamRunResult run_event_engine_streamed(
    core::JobSource& source, OrderPolicy& policy,
    const EventEngineOptions& options,
    metrics::StreamingFlowStats* stats = nullptr);

}  // namespace pjsched::sim
