#include "src/service/record.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <sstream>

namespace pjsched::service {

namespace {

bool tenant_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '.' || c == '-';
}

bool parse_double(std::string_view tok, double* out) {
  if (tok.empty() || tok.size() > 64) return false;
  // strtod needs a terminator; tokens are short, so a stack copy is fine.
  char buf[65];
  tok.copy(buf, tok.size());
  buf[tok.size()] = '\0';
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (end != buf + tok.size()) return false;
  // Reject inf/nan and anything non-finite a hostile client can encode.
  if (!(v > -1e300 && v < 1e300)) return false;
  *out = v;
  return true;
}

bool parse_u64(std::string_view tok, std::uint64_t* out) {
  if (tok.empty()) return false;
  const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), *out);
  return res.ec == std::errc() && res.ptr == tok.data() + tok.size();
}

/// Advances past whitespace and returns the next token of `rest`, or an
/// empty view at end of line / start of comment.  Tokens are never empty,
/// so emptiness is an unambiguous end marker.
std::string_view next_token(std::string_view& rest) {
  std::size_t i = 0;
  while (i < rest.size() && std::isspace(static_cast<unsigned char>(rest[i])))
    ++i;
  if (i >= rest.size() || rest[i] == '#') {
    rest = {};
    return {};
  }
  std::size_t j = i;
  while (j < rest.size() && !std::isspace(static_cast<unsigned char>(rest[j])))
    ++j;
  const std::string_view tok = rest.substr(i, j - i);
  rest.remove_prefix(j);
  return tok;
}

ParseStatus malformed(const char** error, const char* why) {
  if (error != nullptr) *error = why;
  return ParseStatus::kMalformed;
}

}  // namespace

ParseStatus parse_record_view(std::string_view line, JobRecord* out,
                              const char** error) {
  if (line.size() > kMaxLineBytes) {
    if (error != nullptr) *error = "line exceeds the byte bound";
    return ParseStatus::kOversize;
  }
  std::string_view rest = line;
  const std::string_view verb = next_token(rest);
  if (verb.empty()) return ParseStatus::kEmpty;
  if (verb == "metrics") {
    if (!next_token(rest).empty())
      return malformed(error, "metrics takes no arguments");
    return ParseStatus::kCommand;
  }
  if (verb != "job") return malformed(error, "unknown verb");

  const std::string_view tenant = next_token(rest);
  const std::string_view work_tok = next_token(rest);
  if (tenant.empty() || work_tok.empty())
    return malformed(error, "job needs <tenant> <work>");
  if (tenant.size() > kMaxTenantBytes)
    return malformed(error, "tenant name length out of range");
  for (char c : tenant)
    if (!tenant_char(c))
      return malformed(error, "tenant name has an invalid character");

  // Scalars first so a malformed later token never leaves half-stale
  // values behind a kRecord (the tenant assign reuses the slot's capacity —
  // the one permitted allocation per job, and none at all under SSO).
  out->work = 1.0;
  out->fanout = 1;
  out->weight = 1.0;
  out->deadline_ms = 0;
  out->client_id = 0;
  if (!parse_double(work_tok, &out->work) || !(out->work > 0.0) ||
      out->work > kMaxWork)
    return malformed(error, "work out of range");

  for (std::string_view tok = next_token(rest); !tok.empty();
       tok = next_token(rest)) {
    const std::size_t eq = tok.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 >= tok.size())
      return malformed(error, "expected key=value");
    const std::string_view key = tok.substr(0, eq);
    const std::string_view val = tok.substr(eq + 1);
    if (key == "fanout") {
      std::uint64_t v = 0;
      if (!parse_u64(val, &v) || v < 1 || v > kMaxFanout)
        return malformed(error, "fanout out of range");
      out->fanout = static_cast<unsigned>(v);
    } else if (key == "weight") {
      if (!parse_double(val, &out->weight) || !(out->weight > 0.0) ||
          out->weight > kMaxWeight)
        return malformed(error, "weight out of range");
    } else if (key == "deadline_ms") {
      if (!parse_u64(val, &out->deadline_ms) || out->deadline_ms < 1 ||
          out->deadline_ms > kMaxDeadlineMs)
        return malformed(error, "deadline_ms out of range");
    } else if (key == "id") {
      if (!parse_u64(val, &out->client_id))
        return malformed(error, "id must be a uint64");
    } else {
      return malformed(error, "unknown key");
    }
  }
  out->tenant.assign(tenant);
  return ParseStatus::kRecord;
}

ParseStatus parse_record(std::string_view line, JobRecord* out,
                         std::string* error) {
  JobRecord rec;
  const char* why = nullptr;
  ParseStatus status = parse_record_view(line, &rec, &why);
  if (status == ParseStatus::kOversize) status = ParseStatus::kMalformed;
  if (status == ParseStatus::kMalformed && error != nullptr)
    *error = why != nullptr ? why : "malformed";
  if (status == ParseStatus::kRecord) *out = std::move(rec);
  return status;
}

BatchParse parse_batch(std::string_view buffer, std::span<ParsedRecord> out) {
  BatchParse result;
  std::size_t pos = 0;
  while (result.produced < out.size()) {
    const std::size_t nl = buffer.find('\n', pos);
    if (nl == std::string_view::npos) break;
    const std::string_view line = buffer.substr(pos, nl - pos);
    pos = nl + 1;
    ParsedRecord& entry = out[result.produced];
    entry.line = line;
    entry.error = nullptr;
    entry.status = parse_record_view(line, &entry.record, &entry.error);
    if (entry.status == ParseStatus::kEmpty) continue;  // no entry to emit
    ++result.produced;
  }
  result.consumed = pos;
  return result;
}

std::string format_record(const JobRecord& record) {
  std::ostringstream os;
  os << "job " << record.tenant << ' ' << record.work;
  if (record.fanout != 1) os << " fanout=" << record.fanout;
  if (record.weight != 1.0) os << " weight=" << record.weight;
  if (record.deadline_ms != 0) os << " deadline_ms=" << record.deadline_ms;
  if (record.client_id != 0) os << " id=" << record.client_id;
  return os.str();
}

}  // namespace pjsched::service
