#include "src/service/record.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace pjsched::service {

namespace {

bool tenant_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '.' || c == '-';
}

bool parse_double(std::string_view tok, double* out) {
  if (tok.empty() || tok.size() > 64) return false;
  // strtod needs a terminator; tokens are short, so a stack copy is fine.
  char buf[65];
  tok.copy(buf, tok.size());
  buf[tok.size()] = '\0';
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (end != buf + tok.size()) return false;
  // Reject inf/nan and anything non-finite a hostile client can encode.
  if (!(v > -1e300 && v < 1e300)) return false;
  *out = v;
  return true;
}

bool parse_u64(std::string_view tok, std::uint64_t* out) {
  if (tok.empty()) return false;
  const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), *out);
  return res.ec == std::errc() && res.ptr == tok.data() + tok.size();
}

std::vector<std::string_view> split_ws(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i >= line.size() || line[i] == '#') break;
    std::size_t j = i;
    while (j < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[j])))
      ++j;
    out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

ParseStatus malformed(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return ParseStatus::kMalformed;
}

}  // namespace

ParseStatus parse_record(std::string_view line, JobRecord* out,
                         std::string* error) {
  if (line.size() > kMaxLineBytes)
    return malformed(error, "line exceeds " + std::to_string(kMaxLineBytes) +
                                " bytes");
  const std::vector<std::string_view> toks = split_ws(line);
  if (toks.empty()) return ParseStatus::kEmpty;
  if (toks[0] != "job")
    return malformed(error,
                     "unknown verb '" + std::string(toks[0]) + "'");
  if (toks.size() < 3) return malformed(error, "job needs <tenant> <work>");

  JobRecord rec;
  const std::string_view tenant = toks[1];
  if (tenant.empty() || tenant.size() > kMaxTenantBytes)
    return malformed(error, "tenant name length out of range");
  for (char c : tenant)
    if (!tenant_char(c))
      return malformed(error, "tenant name has an invalid character");
  rec.tenant.assign(tenant);

  if (!parse_double(toks[2], &rec.work) || !(rec.work > 0.0) ||
      rec.work > kMaxWork)
    return malformed(error, "work out of range");

  for (std::size_t i = 3; i < toks.size(); ++i) {
    const std::string_view tok = toks[i];
    const std::size_t eq = tok.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 >= tok.size())
      return malformed(error,
                       "expected key=value, got '" + std::string(tok) + "'");
    const std::string_view key = tok.substr(0, eq);
    const std::string_view val = tok.substr(eq + 1);
    if (key == "fanout") {
      std::uint64_t v = 0;
      if (!parse_u64(val, &v) || v < 1 || v > kMaxFanout)
        return malformed(error, "fanout out of range");
      rec.fanout = static_cast<unsigned>(v);
    } else if (key == "weight") {
      if (!parse_double(val, &rec.weight) || !(rec.weight > 0.0) ||
          rec.weight > kMaxWeight)
        return malformed(error, "weight out of range");
    } else if (key == "deadline_ms") {
      if (!parse_u64(val, &rec.deadline_ms) || rec.deadline_ms < 1 ||
          rec.deadline_ms > kMaxDeadlineMs)
        return malformed(error, "deadline_ms out of range");
    } else if (key == "id") {
      if (!parse_u64(val, &rec.client_id))
        return malformed(error, "id must be a uint64");
    } else {
      return malformed(error, "unknown key '" + std::string(key) + "'");
    }
  }
  *out = std::move(rec);
  return ParseStatus::kRecord;
}

std::string format_record(const JobRecord& record) {
  std::ostringstream os;
  os << "job " << record.tenant << ' ' << record.work;
  if (record.fanout != 1) os << " fanout=" << record.fanout;
  if (record.weight != 1.0) os << " weight=" << record.weight;
  if (record.deadline_ms != 0) os << " deadline_ms=" << record.deadline_ms;
  if (record.client_id != 0) os << " id=" << record.client_id;
  return os.str();
}

}  // namespace pjsched::service
