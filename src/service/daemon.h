// The scheduling daemon core: streaming ingest -> per-tenant fair admission
// (TenantRouter) -> ThreadPool execution, with full terminal-outcome
// accounting per tenant.
//
// Threads owned by a Daemon:
//
//   dispatcher   pops weighted-fair from the router and submits to the
//                pool; enforces per-record deadline budgets (time already
//                spent queued in the router counts against the budget);
//   maintenance  ticks the degradation ladder (utilization + watchdog
//                stall signal), accounts tick-time evictions, and reaps
//                finished pool jobs into per-tenant counters;
//   io (optional) a poll()-based loop over the configured Unix/TCP
//                listeners and their connections: bounded line lengths,
//                per-connection read deadlines, malformed-record
//                quarantine.  One thread regardless of connection count —
//                a flood of connections cannot exhaust daemon threads.
//
// The accounting invariant the chaos campaign leans on: every record that
// enters submit_record() reaches EXACTLY ONE terminal outcome —
// completed, failed, deadline-expired, shed, or rejected — visible in the
// per-tenant counters; after a successful drain(), submitted ==
// completed + failed + deadline_expired + shed + rejected for every
// tenant.  Malformed input never becomes a record: it is quarantined and
// counted, never submitted, never crashes the daemon.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/runtime/annotations.h"
#include "src/runtime/mutex.h"
#include "src/runtime/thread_pool.h"
#include "src/service/record.h"
#include "src/service/stream_feed.h"
#include "src/service/tenant_router.h"

namespace pjsched::service {

struct DaemonConfig {
  runtime::PoolOptions pool;
  RouterConfig router;

  /// Unix-domain listener path ("" = no unix listener).
  std::string unix_socket_path;
  /// Loopback TCP listener port (-1 = none, 0 = ephemeral; see
  /// Daemon::tcp_port() for the bound port).
  int tcp_port = -1;
  /// A connection that sends no bytes for this long is closed (a stalled
  /// feed must not pin a connection slot forever).
  std::chrono::milliseconds read_deadline{5000};
  /// Ladder/reaper cadence.
  std::chrono::milliseconds tick_interval{10};
  /// Connections beyond this are accepted and immediately closed.
  std::size_t max_connections = 64;
  /// CPU time rendered per work unit (see runtime::spin_for_units).
  double ns_per_unit = 1000.0;
  /// Max jobs dispatched to the pool but not yet reaped (0 = 4x workers).
  /// The dispatcher stops popping at the window so the backlog stays in
  /// the ROUTER — where weighted fairness and the ladder's utilization
  /// signal live — instead of leaking into the pool's FIFO queue.
  std::size_t dispatch_window = 0;
  /// How many recent malformed-line samples to keep for diagnosis.
  std::size_t quarantine_keep = 16;
};

/// Per-tenant terminal-outcome books.  submitted counts every parsed
/// record routed for the tenant; the five outcome counters partition the
/// records that have reached a terminal state, so
///   submitted == terminal() + (records still queued or executing)
/// at all times, with the parenthetical zero after a drain.
struct TenantCounters {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t shed = 0;      ///< fair-share / shed-new / shed-queued, plus
                               ///< pool-level shed
  std::uint64_t rejected = 0;  ///< reject-tenant / drain, plus pool-level
                               ///< rejection
  /// Flow accounting over *completed* records, measured from ingest (router
  /// queueing counts — the whole point of max flow time).
  double max_flow_seconds = 0.0;
  double sum_flow_seconds = 0.0;
  std::uint64_t flow_samples = 0;

  std::uint64_t terminal() const {
    return completed + failed + deadline_expired + shed + rejected;
  }
};

/// Ingest-side counters (socket feed plumbing).
struct FeedStats {
  std::uint64_t records = 0;        ///< well-formed records submitted
  std::uint64_t malformed = 0;      ///< lines quarantined by the parser
  std::uint64_t oversize = 0;       ///< lines over kMaxLineBytes
  std::uint64_t partial = 0;        ///< unterminated final lines (disconnect)
  std::uint64_t connections = 0;    ///< accepted
  std::uint64_t refused = 0;        ///< over max_connections
  std::uint64_t disconnects = 0;    ///< peer closed
  std::uint64_t read_timeouts = 0;  ///< closed by the read deadline
};

/// One coherent cross-layer snapshot (each layer contributes its own
/// coherent snapshot; see TenantRouter::Stats / AdmissionQueue::Stats).
struct DaemonSnapshot {
  Rung rung = Rung::kNormal;
  TenantRouter::Stats router;
  runtime::PoolStats pool;
  runtime::AdmissionQueue::Stats admission;
  FeedStats feed;
  std::map<std::string, TenantCounters> tenants;
  std::size_t inflight = 0;  ///< dispatched to the pool, not yet reaped
  std::vector<std::string> quarantine;  ///< recent malformed-line samples
};

class Daemon {
 public:
  /// Starts the pool and the dispatcher/maintenance threads; the io thread
  /// too when a listener is configured.  Throws std::runtime_error when a
  /// configured listener cannot be created.
  explicit Daemon(const DaemonConfig& config);
  /// Stops ingest, cancels nothing that is running, sheds whatever is
  /// still queued in the router (terminal outcome: rejected/drain), drains
  /// the pool, joins all threads.
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Sets a tenant's fair-share weight in the router.
  void set_weight(const std::string& tenant, double weight);

  /// Routes one parsed record (in-process feed: tests, replay, chaos).
  /// Every call lands in the tenant's books; the return mirrors the
  /// router's decision for the *pushed* record.
  PushOutcome submit_record(JobRecord record);

  /// Parses and routes one feed line (no trailing newline).  Returns false
  /// when the line was malformed (quarantined, counted, never fatal).
  bool feed_line(std::string_view line);

  /// Replay-file feed: loads a workload instance (runtime/replayer.*
  /// loader, so truncated/corrupt files surface as ReplayFileError) and
  /// submits each job as a record for `tenant`, pacing arrivals by
  /// `time_scale` seconds per instance time unit (0 = submit all at once).
  /// Returns the number of records submitted.
  std::size_t feed_replay_file(const std::string& path,
                               const std::string& tenant, double time_scale);

  /// Stops accepting new records (drain rung), then waits for the router
  /// and the pool to empty.  True when fully drained within the timeout;
  /// false means something is wedged (the chaos campaign treats false as a
  /// deadlock verdict).
  bool drain(std::chrono::milliseconds timeout);

  DaemonSnapshot snapshot() const;
  /// Human-readable snapshot (the `pjschedd` status output).
  std::string metrics_text() const;

  TenantRouter& router() { return router_; }
  runtime::ThreadPool& pool() { return pool_; }
  /// Bound TCP port, or -1 when no TCP listener was configured.
  int tcp_port() const { return tcp_port_; }

 private:
  struct PendingJob {
    runtime::JobHandle handle;
    std::string tenant;
    Clock::time_point ingest{};
  };

  /// One live feed connection (io thread only).
  struct Connection {
    int fd = -1;
    LineReader reader{kMaxLineBytes};
    Clock::time_point last_activity{};
  };

  void dispatcher_main();
  void maintenance_main();
  void io_main();

  /// Submits one popped record to the pool (dispatcher thread).
  void dispatch(QueuedRecord rec);
  /// Books a terminal outcome for a record the router gave up on.
  void account_shed_reason(const std::string& tenant, ShedReason reason);
  void account_shed(const QueuedRecord& rec, ShedReason reason);
  void account_sheds(const std::vector<ShedRecord>& sheds);
  /// Moves finished pending jobs into tenant counters; returns how many
  /// jobs are still in flight.
  std::size_t reap_finished();
  void quarantine_line(std::string_view line, const std::string& why);

  const DaemonConfig config_;
  runtime::ThreadPool pool_;
  TenantRouter router_;

  mutable runtime::Mutex state_mu_;
  std::map<std::string, TenantCounters> tenants_ PJSCHED_GUARDED_BY(state_mu_);
  std::vector<PendingJob> pending_ PJSCHED_GUARDED_BY(state_mu_);
  FeedStats feed_ PJSCHED_GUARDED_BY(state_mu_);
  std::deque<std::string> quarantine_ PJSCHED_GUARDED_BY(state_mu_);

  /// Dispatcher wakeup: submit_record notifies after a successful push.
  runtime::Mutex work_mu_;
  runtime::CondVar work_cv_;

  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> last_watchdog_dumps_{0};

  int unix_listen_fd_ = -1;
  int tcp_listen_fd_ = -1;
  int tcp_port_ = -1;

  std::thread dispatcher_;
  std::thread maintenance_;
  std::thread io_;
};

}  // namespace pjsched::service
