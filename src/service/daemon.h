// The scheduling daemon core: streaming ingest -> per-tenant fair admission
// (TenantRouter) -> ThreadPool execution, with full terminal-outcome
// accounting per tenant.
//
// Threads owned by a Daemon:
//
//   dispatcher   pops weighted-fair from the router and submits to the
//                pool; enforces per-record deadline budgets (time already
//                spent queued in the router counts against the budget);
//   maintenance  ticks the degradation ladder (utilization + watchdog
//                stall signal), accounts tick-time evictions, and reaps
//                finished pool jobs into per-tenant counters;
//   io shards (optional) N poll()-based event loops (--io-threads; default
//                hw_concurrency/4) over the configured Unix/TCP listeners
//                and their connections.  Shard 0 accepts and hands each new
//                connection to the least-loaded shard over a wake pipe;
//                every shard owns its connections' read buffers outright
//                (zero-copy batched parsing via IngestBuffer/parse_batch,
//                batched admission via TenantRouter::admit_batch), so io
//                shards never share connection state and a flood of
//                connections still cannot exhaust daemon threads: the
//                thread count is fixed at startup.
//
// The accounting invariant the chaos campaign leans on: every record that
// enters submit_record() reaches EXACTLY ONE terminal outcome —
// completed, failed, deadline-expired, shed, or rejected — visible in the
// per-tenant counters; after a successful drain(), submitted ==
// completed + failed + deadline_expired + shed + rejected for every
// tenant.  Malformed input never becomes a record: it is quarantined and
// counted, never submitted, never crashes the daemon.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/metrics/streaming_stats.h"
#include "src/runtime/annotations.h"
#include "src/runtime/mutex.h"
#include "src/runtime/thread_pool.h"
#include "src/service/record.h"
#include "src/service/stream_feed.h"
#include "src/service/tenant_router.h"

namespace pjsched::service {

struct DaemonConfig {
  runtime::PoolOptions pool;
  RouterConfig router;

  /// Unix-domain listener path ("" = no unix listener).
  std::string unix_socket_path;
  /// Loopback TCP listener port (-1 = none, 0 = ephemeral; see
  /// Daemon::tcp_port() for the bound port).
  int tcp_port = -1;
  /// A connection that sends no bytes for this long is closed (a stalled
  /// feed must not pin a connection slot forever).  The same deadline
  /// bounds line progress: a peer that keeps dribbling bytes without ever
  /// completing a line is cut off (one slow_drip event) once this long
  /// passes without a completed line.
  std::chrono::milliseconds read_deadline{5000};
  /// Sharded io event loops: how many io threads serve the configured
  /// listeners.  0 = auto (hardware_concurrency / 4, at least 1).
  std::size_t io_threads = 0;
  /// Byte cap on the slow-dribble guard: a connection is closed once this
  /// many bytes arrive without a completed line, however fast they come.
  std::size_t slow_drip_byte_cap = 16 * kMaxLineBytes;
  /// Ladder/reaper cadence.
  std::chrono::milliseconds tick_interval{10};
  /// Connections beyond this are accepted and immediately closed.
  std::size_t max_connections = 64;
  /// CPU time rendered per work unit (see runtime::spin_for_units).
  double ns_per_unit = 1000.0;
  /// Max jobs dispatched to the pool but not yet reaped (0 = 4x workers).
  /// The dispatcher stops popping at the window so the backlog stays in
  /// the ROUTER — where weighted fairness and the ladder's utilization
  /// signal live — instead of leaking into the pool's FIFO queue.
  std::size_t dispatch_window = 0;
  /// How many recent malformed-line samples to keep for diagnosis.
  std::size_t quarantine_keep = 16;
};

/// Per-tenant terminal-outcome books.  submitted counts every parsed
/// record routed for the tenant; the five outcome counters partition the
/// records that have reached a terminal state, so
///   submitted == terminal() + (records still queued or executing)
/// at all times, with the parenthetical zero after a drain.
struct TenantCounters {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t shed = 0;      ///< fair-share / shed-new / shed-queued, plus
                               ///< pool-level shed
  std::uint64_t rejected = 0;  ///< reject-tenant / drain, plus pool-level
                               ///< rejection
  /// Flow accounting over *completed* records, measured from ingest (router
  /// queueing counts — the whole point of max flow time).
  double max_flow_seconds = 0.0;
  double sum_flow_seconds = 0.0;
  std::uint64_t flow_samples = 0;
  /// Reservoir-estimated p99 flow (exact while samples fit the per-tenant
  /// reservoir).  Filled in snapshot(); 0 with no completed records.
  double p99_flow_seconds = 0.0;

  std::uint64_t terminal() const {
    return completed + failed + deadline_expired + shed + rejected;
  }
};

/// Ingest-side counters (socket feed plumbing).
struct FeedStats {
  std::uint64_t records = 0;        ///< well-formed records submitted
  std::uint64_t malformed = 0;      ///< lines quarantined by the parser
  std::uint64_t oversize = 0;       ///< lines over kMaxLineBytes
  std::uint64_t partial = 0;        ///< unterminated final lines (disconnect)
  std::uint64_t connections = 0;    ///< accepted
  std::uint64_t refused = 0;        ///< over max_connections
  std::uint64_t disconnects = 0;    ///< peer closed
  std::uint64_t read_timeouts = 0;  ///< closed by the read deadline (silent)
  std::uint64_t slow_drip = 0;      ///< closed by the dribble guard: bytes
                                    ///< flowed but no line completed within
                                    ///< the deadline/byte cap (ONE event per
                                    ///< connection, distinct from malformed)
  std::uint64_t commands = 0;       ///< control verbs served ("metrics")
  std::uint64_t batches = 0;        ///< admission batches (records/batches
                                    ///< is the achieved coalescing factor)
};

/// One coherent cross-layer snapshot (each layer contributes its own
/// coherent snapshot; see TenantRouter::Stats / AdmissionQueue::Stats).
struct DaemonSnapshot {
  Rung rung = Rung::kNormal;
  TenantRouter::Stats router;
  runtime::PoolStats pool;
  runtime::AdmissionQueue::Stats admission;
  FeedStats feed;
  std::map<std::string, TenantCounters> tenants;
  std::size_t inflight = 0;  ///< dispatched to the pool, not yet reaped
  std::vector<std::string> quarantine;  ///< recent malformed-line samples
};

class Daemon {
 public:
  /// Starts the pool and the dispatcher/maintenance threads; the io thread
  /// too when a listener is configured.  Throws std::runtime_error when a
  /// configured listener cannot be created.
  explicit Daemon(const DaemonConfig& config);
  /// Stops ingest, cancels nothing that is running, sheds whatever is
  /// still queued in the router (terminal outcome: rejected/drain), drains
  /// the pool, joins all threads.
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Sets a tenant's fair-share weight in the router.
  void set_weight(const std::string& tenant, double weight);

  /// Routes one parsed record (in-process feed: tests, replay, chaos).
  /// Every call lands in the tenant's books; the return mirrors the
  /// router's decision for the *pushed* record.
  PushOutcome submit_record(JobRecord record);

  /// Parses and routes one feed line (no trailing newline).  Returns false
  /// when the line was malformed (quarantined, counted, never fatal).
  bool feed_line(std::string_view line);

  /// Replay-file feed: loads a workload instance (runtime/replayer.*
  /// loader, so truncated/corrupt files surface as ReplayFileError) and
  /// submits each job as a record for `tenant`, pacing arrivals by
  /// `time_scale` seconds per instance time unit (0 = submit all at once).
  /// Returns the number of records submitted.
  std::size_t feed_replay_file(const std::string& path,
                               const std::string& tenant, double time_scale);

  /// Stops accepting new records (drain rung), then waits for the router
  /// and the pool to empty.  True when fully drained within the timeout;
  /// false means something is wedged (the chaos campaign treats false as a
  /// deadlock verdict).
  bool drain(std::chrono::milliseconds timeout);

  DaemonSnapshot snapshot() const;
  /// Human-readable snapshot (the `pjschedd` status output).
  std::string metrics_text() const;
  /// Machine-readable snapshot: newline-delimited `key value` pairs ending
  /// with `end` — the payload of the feed protocol's `metrics` command, so
  /// callers scrape this instead of parsing metrics_text().  Includes the
  /// ladder rung, router/pool/ingest counters, and per-tenant books with
  /// reservoir p99 flow.
  std::string metrics_machine() const;

  TenantRouter& router() { return router_; }
  runtime::ThreadPool& pool() { return pool_; }
  /// Bound TCP port, or -1 when no TCP listener was configured.
  int tcp_port() const { return tcp_port_; }

 private:
  struct PendingJob {
    runtime::JobHandle handle;
    std::string tenant;
    Clock::time_point ingest{};
  };

  /// One live feed connection, owned by exactly one io shard.
  struct Connection {
    int fd = -1;
    IngestBuffer buffer{kMaxLineBytes};
    Clock::time_point last_activity{};
    /// Last time a complete line was parsed (or the accept time): the
    /// slow-dribble guard fires when a partial line outlives this by
    /// read_deadline.
    Clock::time_point last_progress{};
  };

  /// One io event loop.  Loop-local state (connections, pollfds, parse and
  /// admission scratch) lives on the shard thread's stack; only the accept
  /// handoff is shared, under `mu`.
  struct IoShard {
    runtime::Mutex mu;
    std::vector<int> incoming PJSCHED_GUARDED_BY(mu);  ///< accepted fds
                                                       ///< awaiting adoption
    int wake_rd = -1;  ///< wake pipe: poke the shard out of poll()
    int wake_wr = -1;
    /// Connections currently owned (approximate: the acceptor reads it to
    /// balance; the owner updates it on adopt/close).
    std::atomic<std::size_t> load{0};
    std::thread thread;
  };

  void dispatcher_main();
  void maintenance_main();
  void io_shard_main(std::size_t shard_index);
  /// Accept-side of shard 0: drains a readable listener, balancing new
  /// connections across shards.
  void accept_ready(int listen_fd);
  /// Runs the parse->classify->admit pipeline over a connection's buffered
  /// bytes (io shard threads).  Returns false when the connection must be
  /// closed (unresponsive metrics peer).
  bool drain_parsed(Connection& c, std::span<ParsedRecord> parsed,
                    std::vector<JobRecord>& batch,
                    std::vector<TenantRouter::BatchOutcome>& outcomes,
                    std::vector<ShedRecord>& evictions,
                    TenantRouter::BatchScratch& scratch);
  /// Batched submission: books `submitted` for the whole batch under one
  /// state lock, admits via TenantRouter::admit_batch, accounts sheds under
  /// one more lock hold.  Clears `records`.
  void admit_records(std::vector<JobRecord>& records,
                     std::vector<TenantRouter::BatchOutcome>& outcomes,
                     std::vector<ShedRecord>& evictions,
                     TenantRouter::BatchScratch& scratch);

  /// Submits one popped record to the pool (dispatcher thread).
  void dispatch(QueuedRecord rec);
  /// Books a terminal outcome for a record the router gave up on.
  void account_shed_reason(const std::string& tenant, ShedReason reason);
  void account_shed(const QueuedRecord& rec, ShedReason reason);
  void account_sheds(const std::vector<ShedRecord>& sheds);
  /// Moves finished pending jobs into tenant counters; returns how many
  /// jobs are still in flight.
  std::size_t reap_finished();
  /// Saves a quarantine sample for diagnosis.  `count_malformed` is false
  /// for slow-drip closes, which have their own counter.
  void quarantine_line(std::string_view line, std::string_view why,
                       bool count_malformed = true);

  const DaemonConfig config_;
  runtime::ThreadPool pool_;
  TenantRouter router_;

  mutable runtime::Mutex state_mu_;
  std::map<std::string, TenantCounters> tenants_ PJSCHED_GUARDED_BY(state_mu_);
  /// Per-tenant completed-flow reservoirs backing the p99 export.
  std::map<std::string, metrics::StreamingFlowStats> flow_
      PJSCHED_GUARDED_BY(state_mu_);
  std::vector<PendingJob> pending_ PJSCHED_GUARDED_BY(state_mu_);
  FeedStats feed_ PJSCHED_GUARDED_BY(state_mu_);
  std::deque<std::string> quarantine_ PJSCHED_GUARDED_BY(state_mu_);

  /// Dispatcher wakeup: submit_record notifies after a successful push.
  // lint: allow(wait-lock): pairs with work_cv_ only; guards no data — the
  // dispatcher's pop predicate reads the router under its own locks, this
  // lock just closes the check-then-block window.
  runtime::Mutex work_mu_;
  runtime::CondVar work_cv_;

  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> last_watchdog_dumps_{0};
  /// Open connections across all io shards (max_connections gate).
  std::atomic<std::size_t> open_conns_{0};

  int unix_listen_fd_ = -1;
  int tcp_listen_fd_ = -1;
  int tcp_port_ = -1;
  Clock::time_point started_{};

  std::thread dispatcher_;
  std::thread maintenance_;
  std::vector<std::unique_ptr<IoShard>> io_shards_;
};

}  // namespace pjsched::service
