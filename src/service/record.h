// Wire format of the scheduling daemon's streaming job feed: one
// newline-delimited record per job, plain text, designed to be parsed
// defensively — a misbehaving client must never be able to crash or wedge
// the daemon, so every limit is explicit and every failure is a value, not
// an exception.
//
//   job <tenant> <work> [key=value ...]
//
//   tenant       [A-Za-z0-9_.-], at most kMaxTenantBytes
//   work         total work units, (0, kMaxWork]
//   fanout=N     parallel subtasks the work is split across (1..kMaxFanout)
//   weight=W     tenant-relative job weight, (0, kMaxWeight]
//   deadline_ms=D  per-job deadline budget, 1..kMaxDeadlineMs
//   id=N         client-chosen tag (uint64), echoed in accounting
//
// One control verb rides on the same framing:
//
//   metrics      request a machine-readable metrics snapshot; the daemon
//                replies with `key value` lines terminated by `end`.
//
// Blank lines and '#'-to-end-of-line comments are ignored.  Lines longer
// than kMaxLineBytes are malformed by definition (the stream layer
// quarantines them and resyncs at the next newline).
//
// Two parse entry points share one core: parse_record() is the per-line
// convenience API (std::string error, record untouched on failure), and
// parse_batch() is the zero-copy ingest path — it scans a whole read
// buffer in place, emitting string_view line slices and static error
// strings, allocating nothing beyond each record's tenant assignment
// (which is SSO-free for short names and at most one allocation per job).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace pjsched::service {

inline constexpr std::size_t kMaxLineBytes = 4096;
inline constexpr std::size_t kMaxTenantBytes = 64;
inline constexpr unsigned kMaxFanout = 4096;
inline constexpr double kMaxWork = 1e9;
inline constexpr double kMaxWeight = 1e6;
inline constexpr std::uint64_t kMaxDeadlineMs = 3'600'000;  // one hour

/// One parsed job submission.
struct JobRecord {
  std::string tenant;
  double work = 1.0;
  unsigned fanout = 1;
  double weight = 1.0;
  std::uint64_t deadline_ms = 0;  ///< 0 = no deadline
  std::uint64_t client_id = 0;    ///< opaque client tag (id=), 0 if unset
};

enum class ParseStatus {
  kRecord,     ///< a job record was parsed into *out
  kEmpty,      ///< blank line or comment — nothing to do
  kMalformed,  ///< quarantine the line; *error says why
  kCommand,    ///< a control verb ("metrics"); no record was produced
  kOversize,   ///< batch path only: a complete line over kMaxLineBytes
};

/// Parses one line of the feed.  Never throws: malformed input — bad
/// numbers, out-of-range values, oversize tokens, unknown keys — comes
/// back as kMalformed with a diagnostic in *error.  `line` must not
/// contain the trailing newline.  Never returns kOversize (an over-limit
/// line is kMalformed here); *out is untouched unless kRecord.
ParseStatus parse_record(std::string_view line, JobRecord* out,
                         std::string* error);

/// Zero-allocation core shared by parse_record and parse_batch: the error
/// comes back as a pointer to a static string, and *out is written in
/// place (its tenant string's capacity is reused — the reason the batch
/// path stays at <= 1 allocation per job).  On kMalformed *out may hold a
/// partially-updated record; callers must treat it as garbage.  Lines over
/// kMaxLineBytes are kOversize.
ParseStatus parse_record_view(std::string_view line, JobRecord* out,
                              const char** error);

/// One entry of a parse batch.  `line` (and therefore any diagnostics
/// derived from it) points into the scanned buffer and is valid only until
/// the buffer's bytes are overwritten or compacted.
struct ParsedRecord {
  ParseStatus status = ParseStatus::kEmpty;
  JobRecord record;             ///< valid when status == kRecord
  std::string_view line;        ///< the raw line, newline excluded
  const char* error = nullptr;  ///< static diagnostic when malformed/oversize
};

/// Result of one parse_batch scan.
struct BatchParse {
  std::size_t consumed = 0;  ///< buffer bytes consumed (complete lines only)
  std::size_t produced = 0;  ///< entries of `out` filled
};

/// Scans `buffer` in place for newline-terminated lines, filling `out`
/// with one entry per non-empty line (blank/comment lines are consumed but
/// produce no entry).  Stops when `out` is full or no complete line
/// remains; trailing bytes without a newline are never consumed — the
/// caller carries them into the next read (see IngestBuffer).  Per-field
/// parsing allocates nothing; each kRecord entry's tenant assignment reuses
/// the slot's string capacity, so a warm batch over short tenant names is
/// allocation-free.
BatchParse parse_batch(std::string_view buffer, std::span<ParsedRecord> out);

/// Renders a record as a feed line (inverse of parse_record; used by the
/// load generator and replay-file writer).
std::string format_record(const JobRecord& record);

}  // namespace pjsched::service
