// Wire format of the scheduling daemon's streaming job feed: one
// newline-delimited record per job, plain text, designed to be parsed
// defensively — a misbehaving client must never be able to crash or wedge
// the daemon, so every limit is explicit and every failure is a value, not
// an exception.
//
//   job <tenant> <work> [key=value ...]
//
//   tenant       [A-Za-z0-9_.-], at most kMaxTenantBytes
//   work         total work units, (0, kMaxWork]
//   fanout=N     parallel subtasks the work is split across (1..kMaxFanout)
//   weight=W     tenant-relative job weight, (0, kMaxWeight]
//   deadline_ms=D  per-job deadline budget, 1..kMaxDeadlineMs
//   id=N         client-chosen tag (uint64), echoed in accounting
//
// Blank lines and '#'-to-end-of-line comments are ignored.  Lines longer
// than kMaxLineBytes are malformed by definition (the stream layer
// quarantines them and resyncs at the next newline).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace pjsched::service {

inline constexpr std::size_t kMaxLineBytes = 4096;
inline constexpr std::size_t kMaxTenantBytes = 64;
inline constexpr unsigned kMaxFanout = 4096;
inline constexpr double kMaxWork = 1e9;
inline constexpr double kMaxWeight = 1e6;
inline constexpr std::uint64_t kMaxDeadlineMs = 3'600'000;  // one hour

/// One parsed job submission.
struct JobRecord {
  std::string tenant;
  double work = 1.0;
  unsigned fanout = 1;
  double weight = 1.0;
  std::uint64_t deadline_ms = 0;  ///< 0 = no deadline
  std::uint64_t client_id = 0;    ///< opaque client tag (id=), 0 if unset
};

enum class ParseStatus {
  kRecord,     ///< a job record was parsed into *out
  kEmpty,      ///< blank line or comment — nothing to do
  kMalformed,  ///< quarantine the line; *error says why
};

/// Parses one line of the feed.  Never throws: malformed input — bad
/// numbers, out-of-range values, oversize tokens, unknown keys — comes
/// back as kMalformed with a diagnostic in *error.  `line` must not
/// contain the trailing newline.
ParseStatus parse_record(std::string_view line, JobRecord* out,
                         std::string* error);

/// Renders a record as a feed line (inverse of parse_record; used by the
/// load generator and replay-file writer).
std::string format_record(const JobRecord& record);

}  // namespace pjsched::service
